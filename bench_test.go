// Benchmarks regenerating the paper's evaluation: one benchmark per
// table and figure, each driving the corresponding experiment harness.
// The reported time is the cost of regenerating that artifact on this
// machine; the artifact's *content* (flip counts, runtimes, accuracy) is
// printed by `go run ./cmd/experiments all` and recorded in
// EXPERIMENTS.md.
//
// The heavyweight campaigns (Table 6, Fig. 9, Fig. 11) run at a reduced
// scale here so the full bench suite completes in minutes; pass a larger
// -scale to cmd/experiments for paper-sized budgets.
package rhohammer

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/experiments"
)

// benchCfg returns a deterministic experiment configuration; seeds vary
// with b.N iterations deliberately not at all — each iteration runs the
// identical experiment, which is what we want to time.
func benchCfg(scale float64) experiments.Config {
	return experiments.Config{Seed: 42, Scale: scale}
}

func BenchmarkTable1MachineSetups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(benchCfg(1))
	}
}

func BenchmarkTable2DIMMInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(benchCfg(1))
	}
}

func BenchmarkFig3Threshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3(benchCfg(1))
	}
}

func BenchmarkFig4DuetHeatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4(benchCfg(0.5))
	}
}

func BenchmarkTable4Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(benchCfg(1))
	}
}

func BenchmarkTable5RETools(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5(benchCfg(0.5))
	}
}

func BenchmarkFig6PrimitiveTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(benchCfg(1))
	}
}

func BenchmarkFig8MultiBank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig8(benchCfg(1))
	}
}

func BenchmarkFig9FuzzBanks(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig9(benchCfg(0.5))
	}
}

func BenchmarkFig10NopSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig10(benchCfg(0.7))
	}
}

func BenchmarkTable3Barriers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(benchCfg(0.7))
	}
}

func BenchmarkTable6Fuzzing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table6(benchCfg(0.4))
	}
}

func BenchmarkFig11Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig11(benchCfg(0.5))
	}
}

func BenchmarkEndToEndExploit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.E2E(benchCfg(0.7))
	}
}

// Component micro-benchmarks: the hot paths downstream users care about.

func BenchmarkMappingRecovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		atk, err := NewAttack(Options{Arch: RaptorLake(), Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if res := atk.RecoverMappingDetailed(); !res.OK() {
			b.Fatal(res.Err)
		}
	}
}

func BenchmarkHammerThroughput(b *testing.B) {
	atk, err := NewAttack(Options{Arch: RaptorLake(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := atk.RecommendedConfig()
	b.ReportAllocs()
	b.ResetTimer()
	var acts uint64
	for i := 0; i < b.N; i++ {
		res, err := atk.Hammer(KnownGood(), cfg, 0, 4096, 20e6)
		if err != nil {
			b.Fatal(err)
		}
		acts += res.ACTs
	}
	b.ReportMetric(float64(acts)/float64(b.N), "ACTs/op")
}

// BenchmarkHammerPatternSteadyState measures the per-call cost of the
// hammer loop once everything is warm: the program is cached, every
// reachable weak cell has already flipped, and all row state is
// materialized. This is the regime long fuzzing campaigns live in, and
// it must not allocate at all.
func BenchmarkHammerPatternSteadyState(b *testing.B) {
	atk, err := NewAttack(Options{Arch: RaptorLake(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	cfg := atk.RecommendedConfig()
	s := atk.Session()
	pat := KnownGood()
	// Warm-up pass: builds the program, materializes the neighborhood,
	// and exhausts the reachable flips.
	if _, err := s.HammerPattern(pat, cfg, 0, 4096, 2_000_000); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.HammerPattern(pat, cfg, 0, 4096, 200_000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkActivate isolates dram.Device.Activate — the innermost
// simulation operation — with a realistic double-sided access pattern
// and REF cadence (~173 ACTs per tREFI at ~45ns per activation).
func BenchmarkActivate(b *testing.B) {
	dev := dram.NewDevice(arch.DIMMS1(), 1)
	rows := [4]uint64{4096, 4098, 4100, 4102}
	b.ReportAllocs()
	b.ResetTimer()
	now := 0.0
	for i := 0; i < b.N; i++ {
		dev.Activate(0, rows[i&3], now)
		now += 45
		if i%173 == 172 {
			dev.Refresh(now)
		}
	}
}

func BenchmarkMitigations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Mitigations(benchCfg(0.5))
	}
}

func BenchmarkAblationCounterSpec(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationCounterSpec(benchCfg(0.5))
	}
}

func BenchmarkAblationSamplerSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationSamplerSize(benchCfg(0.5))
	}
}
