GO ?= go
FUZZTIME ?= 10s
SERVESMOKE_OUT ?= smoke-artifacts
DISTSMOKE_OUT ?= distsmoke-artifacts

.PHONY: build vet test race determinism doccheck verify bench benchdiff fuzz servesmoke distsmoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The experiments package alone runs for many minutes (campaign grids
# plus golden renders); the explicit -timeout keeps a noisy shared CI
# host from tripping go test's 10m per-package default.
test:
	$(GO) test -timeout 20m ./...

# The race detector runs across the whole tree; -short skips the
# multi-minute campaign tests and trims the differential-oracle trace
# count so the check stays within a few minutes.
race:
	$(GO) test -race -short -timeout 20m ./...

# determinism proves the campaign contract under the race detector:
# rendered experiment bytes are identical at 1 and 8 workers, the
# runner's and the stealing pool's synthetic grids agree across worker
# counts, and the distributed fabric produces byte-identical canonical
# envelopes for standalone, 1-, 2- and 4-worker-node topologies
# (SCALING.md has the argument).
determinism:
	$(GO) test -race -run 'Determinism' ./internal/campaign ./internal/experiments ./internal/serve

# doccheck keeps the documentation from rotting: every package must
# carry a package doc comment, every relative link in the root
# markdown documents must resolve, and API.md must document every
# route the campaign server registers. (vet is listed so `make
# doccheck` stands alone as the docs gate; verify already runs it.)
doccheck: vet
	$(GO) test -run 'TestPackageDocComments|TestDocLinks|TestAPIDocCoversRoutes|TestOperationsDocCoversMetrics' .

verify: build vet test race determinism doccheck

# fuzz gives each native fuzz target a short budget on top of the
# checked-in seed corpus: the differential oracle (random command
# traces through fast and reference substrates), the dram sampler /
# pTRR table policies against naive mirrors, and the trace-replay codec
# (arbitrary bytes must decode to typed errors or replayable files,
# never panic). Override FUZZTIME for a longer soak, e.g.
# `make fuzz FUZZTIME=5m`.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzDifferentialTrace$$' -fuzztime $(FUZZTIME) ./internal/refmodel
	$(GO) test -run '^$$' -fuzz '^FuzzTRRSampler$$' -fuzztime $(FUZZTIME) ./internal/dram
	$(GO) test -run '^$$' -fuzz '^FuzzPTRRTable$$' -fuzztime $(FUZZTIME) ./internal/dram
	$(GO) test -run '^$$' -fuzz '^FuzzChainPlan$$' -fuzztime $(FUZZTIME) ./internal/chain
	$(GO) test -run '^$$' -fuzz '^FuzzTraceDecode$$' -fuzztime $(FUZZTIME) ./internal/replay

# bench regenerates the machine-readable benchmark snapshot
# (BENCH_<date>.json); see cmd/bench for flags.
bench:
	$(GO) run ./cmd/bench

# benchdiff is the benchmark regression gate: it compares the two
# newest checked-in BENCH_*.json snapshots and fails on a >10% ns/op
# or any allocs/op regression in the pinned steady-state benchmarks
# (the cmd/bench -micro set). The report lands in benchdiff-report.txt
# for CI to upload.
benchdiff:
	$(GO) run ./cmd/benchdiff -report benchdiff-report.txt

# servesmoke boots the real serverd binary, submits a short campaign
# job over HTTP, diffs the served result against the golden canonical
# envelope, then SIGTERM-drains it with a job still in flight and
# requires a clean exit. Artifacts (result, metrics, per-job
# manifests) land in SERVESMOKE_OUT; CI uploads them.
servesmoke:
	RHOHAMMER_SERVESMOKE=1 SERVESMOKE_OUT=$(abspath $(SERVESMOKE_OUT)) \
		$(GO) test -count=1 -v -run 'TestServeSmoke' ./cmd/serverd

# distsmoke boots the real distributed fabric: one serverd coordinator
# plus two serverd workers (separate processes on localhost), submits a
# golden-pinned campaign, diffs the merged envelope against a
# standalone serverd run byte for byte, checks the manifest records
# both nodes, then SIGTERM-drains all three and requires clean exits.
# A second leg SIGKILLs a -store-dir coordinator mid-job and requires a
# restarted process on the same address to resume from the journal and
# produce the same bytes (OPERATIONS.md describes the recovery it
# exercises). Artifacts (envelopes, metrics, manifests, the store
# directory with its journal and snapshots) land in DISTSMOKE_OUT; CI
# uploads them.
distsmoke:
	RHOHAMMER_DISTSMOKE=1 DISTSMOKE_OUT=$(abspath $(DISTSMOKE_OUT)) \
		$(GO) test -count=1 -v -timeout 10m -run 'TestDistSmoke' ./cmd/serverd
