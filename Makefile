GO ?= go

.PHONY: build vet test race determinism verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector runs on the packages that spawn goroutines (the
# campaign runner and the experiment grids built on it); -short skips
# the multi-minute campaign tests so the check stays under ~2 minutes.
race:
	$(GO) test -race -short ./internal/campaign ./internal/experiments

# determinism proves the campaign contract under the race detector:
# rendered experiment bytes are identical at 1 and 8 workers, and the
# runner's synthetic grids agree across worker counts.
determinism:
	$(GO) test -race -run 'Determinism' ./internal/campaign ./internal/experiments

verify: build vet test race determinism

# bench regenerates the machine-readable benchmark snapshot
# (BENCH_<date>.json); see cmd/bench for flags.
bench:
	$(GO) run ./cmd/bench
