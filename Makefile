GO ?= go

.PHONY: build vet test race verify bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The race detector runs on the one package that spawns goroutines (the
# parMap experiment fan-out); -short skips the multi-minute campaign
# tests so the check stays under ~2 minutes.
race:
	$(GO) test -race -short ./internal/experiments

verify: build vet test race

# bench regenerates the machine-readable benchmark snapshot
# (BENCH_<date>.json); see cmd/bench for flags.
bench:
	$(GO) run ./cmd/bench
