// Package rhohammer is a full-system reproduction of "ρHammer: Reviving
// RowHammer Attacks on New Architectures via Prefetching" (MICRO 2025)
// on a simulated substrate.
//
// The package exposes the paper's complete attack pipeline against
// behavioral models of the four evaluated Intel platforms (Comet,
// Rocket, Alder and Raptor Lake) and seven DDR4 DIMMs:
//
//   - DRAM address-mapping reverse-engineering (Algorithm 1: the
//     Duet/Trios/Quartet structured deduction), plus re-implementations
//     of the DRAMA/DRAMDig/DARE baselines it is compared against;
//   - prefetch-based hammering with multi-bank parallelism and the
//     counter-speculation technique (control-flow obfuscation + NOP
//     pseudo-barriers, with the automatic tuning phase);
//   - non-uniform (frequency-domain) pattern fuzzing and sweeping;
//   - the end-to-end PTE-corruption exploit with buddy-allocator
//     massaging, decomposed into swappable Allocator / Hammerer /
//     Victim stages (internal/chain) selectable via ChainPlan.
//
// A minimal session:
//
//	atk, err := rhohammer.NewAttack(rhohammer.Options{
//		Arch: rhohammer.RaptorLake(),
//		DIMM: rhohammer.DIMMS3(),
//		Seed: 1,
//	})
//	m, _ := atk.RecoverMapping()     // Algorithm 1
//	tuned, _ := atk.TuneCounterSpec() // NOP pseudo-barrier optimum
//	rep, _ := atk.Fuzz(rhohammer.FuzzOptions{})
//	res, _ := atk.Sweep(rep.Best.Pattern, rhohammer.SweepOptions{})
//
// Everything is deterministic in the seed. See DESIGN.md for the
// simulation model and EXPERIMENTS.md for paper-vs-measured results.
package rhohammer

import (
	"fmt"

	"rhohammer/internal/arch"
	"rhohammer/internal/chain"
	"rhohammer/internal/exploit"
	"rhohammer/internal/hammer"
	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/pattern"
	"rhohammer/internal/reverse"
	"rhohammer/internal/sweep"
	"rhohammer/internal/timing"
)

// Re-exported core types. The aliases give downstream users direct
// access to the full types while the implementation lives in internal
// packages.
type (
	// Arch is a CPU architecture profile (Table 1).
	Arch = arch.Arch
	// DIMM is a DDR4 module profile (Table 2).
	DIMM = arch.DIMM
	// Mapping is a DRAM address mapping (bank XOR functions + row bits).
	Mapping = mapping.Mapping
	// BankFunc is one XOR bank-addressing function.
	BankFunc = mapping.BankFunc
	// Pattern is a non-uniform hammering pattern.
	Pattern = pattern.Pattern
	// Tuple is one aggressor tuple of a pattern.
	Tuple = pattern.Tuple
	// HammerConfig selects instruction, style, banks and barriers.
	HammerConfig = hammer.Config
	// HammerResult is the outcome of hammering one location.
	HammerResult = hammer.Result
	// FuzzOptions configures a fuzzing campaign.
	FuzzOptions = hammer.FuzzOptions
	// FuzzReport summarizes a fuzzing campaign.
	FuzzReport = hammer.FuzzReport
	// TuneResult is the NOP-count tuning outcome.
	TuneResult = hammer.TuneResult
	// RefineResult is a pattern-refinement outcome.
	RefineResult = hammer.RefineResult
	// SweepOptions configures a sweeping (templating) run.
	SweepOptions = sweep.Options
	// SweepResult aggregates a sweep.
	SweepResult = sweep.Result
	// ExploitOptions configures the end-to-end PTE attack.
	ExploitOptions = exploit.Options
	// ExploitResult is the end-to-end outcome.
	ExploitResult = exploit.Result
	// ChainPlan names an allocator/hammerer/victim attack composition.
	ChainPlan = chain.Plan
	// ChainResult is a composed chain's end-to-end outcome.
	ChainResult = chain.Result
	// RecoverResult is a reverse-engineering outcome.
	RecoverResult = reverse.Result
)

// Architecture profiles (Table 1).
var (
	CometLake  = arch.CometLake
	RocketLake = arch.RocketLake
	AlderLake  = arch.AlderLake
	RaptorLake = arch.RaptorLake
	AllArchs   = arch.All
)

// DIMM profiles (Table 2).
var (
	DIMMS1 = arch.DIMMS1
	DIMMS2 = arch.DIMMS2
	DIMMS3 = arch.DIMMS3
	DIMMS4 = arch.DIMMS4
	DIMMS5 = arch.DIMMS5
	DIMMH1 = arch.DIMMH1
	DIMMM1 = arch.DIMMM1
	// DIMMD1 is the DDR5 module with refresh management (§6).
	DIMMD1   = arch.DIMMD1
	AllDIMMs = arch.AllDIMMs
)

// Pattern constructors.
var (
	// DoubleSided is the classic uniform pattern TRR defeats.
	DoubleSided = pattern.DoubleSided
	// KnownGood is a hand-crafted TRR-bypassing non-uniform pattern.
	KnownGood = pattern.KnownGood
	// CompactPattern fits within a 4 MiB contiguous region (exploit).
	CompactPattern = exploit.CompactPattern
	// HugePattern fits within a 2 MiB THP region (thp allocator).
	HugePattern = chain.HugePattern
)

// Chain stage listings: the names a ChainPlan accepts.
var (
	// ChainAllocators lists the allocator stages (buddy, thp).
	ChainAllocators = chain.Allocators
	// ChainHammerers lists the hammerer stages (rho, load).
	ChainHammerers = chain.Hammerers
	// ChainVictims lists the victim stages (pte, key).
	ChainVictims = chain.Victims
)

// Hammer configuration constructors.
var (
	// BaselineConfig is the conventional load-based attack.
	BaselineConfig = hammer.Baseline
	// RhoConfig is ρHammer's prefetch + counter-speculation attack for
	// the given architecture, bank count and NOP count.
	RhoConfig = hammer.RhoHammer
)

// Options configures an attack session.
type Options struct {
	// Arch selects the CPU platform; defaults to Raptor Lake.
	Arch *Arch
	// DIMM selects the memory module; defaults to S3.
	DIMM *DIMM
	// Seed fixes all randomness; the same seed reproduces identical
	// flips. Defaults to 1.
	Seed int64
	// PTRR enables the platform "Rowhammer Prevention" mitigation
	// (§6), which suppresses nearly all flips.
	PTRR bool
}

// Attack is one attack session against a (CPU, DIMM) platform. It is
// not safe for concurrent use; create one Attack per goroutine.
type Attack struct {
	session *hammer.Session
	opts    Options
}

// NewAttack creates a session for the given platform.
func NewAttack(o Options) (*Attack, error) {
	if o.Arch == nil {
		o.Arch = RaptorLake()
	}
	if o.DIMM == nil {
		o.DIMM = DIMMS3()
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	s, err := hammer.NewSession(o.Arch, o.DIMM, o.Seed)
	if err != nil {
		return nil, fmt.Errorf("rhohammer: %w", err)
	}
	s.EnablePTRR(o.PTRR)
	return &Attack{session: s, opts: o}, nil
}

// Arch returns the session's architecture profile.
func (a *Attack) Arch() *Arch { return a.session.Arch }

// DIMM returns the session's DIMM profile.
func (a *Attack) DIMM() *DIMM { return a.session.DIMM }

// GroundTruthMapping returns the platform's real DRAM address mapping —
// what RecoverMapping is expected to find.
func (a *Attack) GroundTruthMapping() *Mapping { return a.session.Map }

// Session exposes the underlying hammer session for advanced use.
func (a *Attack) Session() *hammer.Session { return a.session }

// RecoverMapping reverse-engineers the platform's DRAM address mapping
// with Algorithm 1 (Duet/Trios/Quartet) over the timing side channel.
func (a *Attack) RecoverMapping() (*Mapping, error) {
	res := a.RecoverMappingDetailed()
	if !res.OK() {
		return nil, fmt.Errorf("rhohammer: mapping recovery failed: %w", res.Err)
	}
	return res.Mapping, nil
}

// RecoverMappingDetailed returns the full reverse-engineering result
// (threshold calibration, measurement counts, simulated runtime).
func (a *Attack) RecoverMappingDetailed() RecoverResult {
	r := a.session.Rand
	meas := timing.NewMeasurer(a.session.Ctrl, r)
	pool := mem.NewPool(a.session.Map.Size(), 0.7, r)
	return reverse.Recover(meas, pool, reverse.Options{})
}

// TuneCounterSpec runs the counter-speculation tuning phase: it sweeps
// the NOP pseudo-barrier count and returns the platform optimum.
func (a *Attack) TuneCounterSpec() (TuneResult, error) {
	base := hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1, Obfuscate: true}
	return a.session.TuneNops(pattern.KnownGood(), base, 1000, 50, 150e6, 2)
}

// Hammer executes one pattern at a location for a simulated duration.
func (a *Attack) Hammer(p *Pattern, cfg HammerConfig, bank int, baseRow uint64, durationNS float64) (HammerResult, error) {
	a.session.ResetDevice()
	return a.session.HammerPatternFor(p, cfg, bank, baseRow, durationNS)
}

// Fuzz runs a non-uniform pattern fuzzing campaign under cfg (use
// RhoConfig or BaselineConfig).
func (a *Attack) FuzzWith(cfg HammerConfig, opt FuzzOptions) (FuzzReport, error) {
	return a.session.Fuzz(cfg, opt)
}

// Fuzz runs a campaign with ρHammer's recommended configuration for the
// session's architecture (prefetch, counter-speculation, 3 banks).
func (a *Attack) Fuzz(opt FuzzOptions) (FuzzReport, error) {
	return a.session.Fuzz(a.RecommendedConfig(), opt)
}

// RecommendedConfig is ρHammer's multi-bank counter-speculation
// configuration with NOP counts pre-tuned for the architecture. The
// optimal pseudo-barrier length depends on bank parallelism (the
// interleaving itself spreads per-bank accesses), so the single-bank
// variant below uses larger counts; both draw from the tuned tables in
// internal/hammer.
func (a *Attack) RecommendedConfig() HammerConfig {
	return hammer.Recommended(a.session.Arch)
}

// RecommendedSingleBankConfig is the single-bank equivalent of
// RecommendedConfig (used where the workload is confined to one bank,
// e.g. templating a contiguous region).
func (a *Attack) RecommendedSingleBankConfig() HammerConfig {
	return hammer.RecommendedSingleBank(a.session.Arch)
}

// Refine hill-climbs from an effective pattern by replaying mutated
// variants and keeping improvements — the step the fuzzing workflow
// applies to campaign winners before sweeping them at scale.
func (a *Attack) Refine(p *Pattern, rounds int) (RefineResult, error) {
	return a.session.Refine(p, a.RecommendedConfig(), rounds, 3, 150e6)
}

// Sweep re-applies a pattern across many physical locations (the
// templating operation) with the recommended configuration.
func (a *Attack) Sweep(p *Pattern, opt SweepOptions) (SweepResult, error) {
	return sweep.Run(a.session, p, a.RecommendedConfig(), opt)
}

// SweepWith sweeps under an explicit configuration.
func (a *Attack) SweepWith(p *Pattern, cfg HammerConfig, opt SweepOptions) (SweepResult, error) {
	return sweep.Run(a.session, p, cfg, opt)
}

// Exploit runs the end-to-end PTE-corruption attack.
func (a *Attack) Exploit(opt ExploitOptions) (ExploitResult, error) {
	if opt.Config == (hammer.Config{}) {
		opt.Config = a.RecommendedSingleBankConfig()
	}
	return exploit.Run(a.session, opt)
}

// Chain runs an arbitrary allocator/hammerer/victim composition as one
// end-to-end attack. The zero plan is the paper's buddy/rho/pte triple
// (equivalent to Exploit, reported through the chain's phase-structured
// result).
func (a *Attack) Chain(p ChainPlan) (ChainResult, error) {
	return p.Run(a.session)
}
