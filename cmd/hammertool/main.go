// Command hammertool drives the hammering engine: fuzz for effective
// non-uniform patterns, tune the counter-speculation NOP count, or sweep
// a known-good pattern across physical locations.
//
// Usage:
//
//	hammertool [-arch A] [-dimm D] [-seed N] fuzz  [-patterns P] [-baseline]
//	hammertool [-arch A] [-dimm D] [-seed N] tune
//	hammertool [-arch A] [-dimm D] [-seed N] sweep [-locations L] [-baseline]
package main

import (
	"flag"
	"fmt"
	"os"

	"rhohammer/internal/arch"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
	"rhohammer/internal/sweep"
)

func main() {
	archName := flag.String("arch", "Raptor Lake", "architecture")
	dimmID := flag.String("dimm", "S3", "DIMM (S1..S5, H1, M1)")
	seed := flag.Int64("seed", 1, "random seed")
	patterns := flag.Int("patterns", 20, "fuzz: candidate patterns")
	locations := flag.Int("locations", 24, "sweep: locations")
	baseline := flag.Bool("baseline", false, "use the load-based baseline instead of rhoHammer")
	banks := flag.Int("banks", 3, "multi-bank parallelism for rhoHammer")
	nops := flag.Int("nops", 0, "NOP pseudo-barrier count (0 = tune automatically)")
	ptrr := flag.Bool("ptrr", false, "enable the platform pTRR mitigation")
	flag.Parse()

	if flag.NArg() != 1 {
		fatal("usage: hammertool [flags] fuzz|tune|sweep")
	}

	a, ok := arch.ByName(*archName)
	if !ok {
		fatal("unknown architecture %q", *archName)
	}
	d, ok := arch.DIMMByID(*dimmID)
	if !ok {
		fatal("unknown DIMM %q", *dimmID)
	}
	s, err := hammer.NewSession(a, d, *seed)
	if err != nil {
		fatal("%v", err)
	}
	s.EnablePTRR(*ptrr)
	fmt.Printf("platform: %s with DIMM %s (pTRR %v)\n", a, d, *ptrr)

	cfg := hammer.Baseline()
	if !*baseline {
		n := *nops
		if n == 0 {
			n = autoTune(s, *banks)
		}
		cfg = hammer.RhoHammer(a, *banks, n)
	}
	fmt.Printf("strategy: %s\n", cfg)

	switch flag.Arg(0) {
	case "fuzz":
		rep, err := s.Fuzz(cfg, hammer.FuzzOptions{Patterns: *patterns})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("fuzzed %d patterns: %d effective, %d total flips\n",
			rep.Tried, rep.Effective, rep.TotalFlips)
		if rep.Best.Pattern != nil {
			fmt.Printf("best pattern (%d flips): %s\n", rep.Best.Flips, rep.Best.Pattern)
			ref, err := s.Refine(rep.Best.Pattern, cfg, 4, 3, 150e6)
			if err != nil {
				fatal("%v", err)
			}
			fmt.Printf("refined over %d rounds (%d improvements): %d flips\n",
				ref.Rounds, ref.Improvements, ref.Best.Flips)
			if data, err := ref.Best.Pattern.Encode(); err == nil {
				fmt.Printf("refined pattern JSON:\n%s\n", data)
			}
		}
	case "tune":
		base := cfg
		base.Banks = 1
		tune, err := s.TuneNops(pattern.KnownGood(), base, 1000, 50, 150e6, 2)
		if err != nil {
			fatal("%v", err)
		}
		for _, p := range tune.Curve {
			fmt.Printf("nops %4d: %d flips\n", p.Nops, p.Flips)
		}
		fmt.Printf("optimum: %d NOPs (%d flips)\n", tune.BestNops, tune.BestFlips)
	case "sweep":
		res, err := sweep.Run(s, pattern.KnownGood(), cfg, sweep.Options{
			Locations: *locations, Bank: -1,
		})
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("swept %d locations: %d flips, %.0f flips/min (simulated)\n",
			*locations, res.TotalFlips, res.FlipsPerMinute())
	default:
		fatal("unknown subcommand %q", flag.Arg(0))
	}
}

// autoTune runs a quick tuning pass at the configured bank width and
// returns the optimal NOP count (the optimum shrinks as interleaving
// itself spreads per-bank accesses).
func autoTune(s *hammer.Session, banks int) int {
	base := hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: banks, Obfuscate: true}
	tune, err := s.TuneNops(pattern.KnownGood(), base, 600, 100, 120e6, 1)
	if err != nil || tune.BestFlips == 0 {
		return 200 // sensible fallback
	}
	return tune.BestNops
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
