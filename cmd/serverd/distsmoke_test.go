package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"rhohammer/internal/experiments"
)

// TestDistSmoke is the `make distsmoke` harness: the distributed fabric
// exercised with real processes. It builds the serverd binary once and
// boots three instances on localhost — one `-role coordinator` and two
// `-role worker` — submits the golden-pinned chain campaign to the
// coordinator, and requires the merged envelope to be byte-identical to
// both a fourth, standalone serverd process running the same job and
// the in-process golden (the CLI code path). It then checks the
// manifest attributes cells to both worker nodes, SIGTERMs all
// processes, and requires clean exits.
//
// It only runs under RHOHAMMER_DISTSMOKE=1 so `go test ./...` stays
// fast; artifacts (envelopes, metrics, manifests) land in DISTSMOKE_OUT
// for CI to upload.
func TestDistSmoke(t *testing.T) {
	if os.Getenv("RHOHAMMER_DISTSMOKE") != "1" {
		t.Skip("distributed smoke harness runs via `make distsmoke` (RHOHAMMER_DISTSMOKE=1)")
	}
	artifacts := os.Getenv("DISTSMOKE_OUT")
	if artifacts == "" {
		artifacts = t.TempDir()
	}
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(t.TempDir(), "serverd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building serverd: %v\n%s", err, out)
	}

	// The job under test: the attack-chain grid, the same golden-pinned
	// (spec, seed, scale) the serve smoke uses. No "parallel" in the
	// body — an explicit worker count forces local execution, and the
	// point here is the lease fabric.
	const spec, seed, scale = "chain", 42, 0.2
	body := fmt.Sprintf(`{"spec":%q,"seed":%d,"scale":%v}`, spec, seed, scale)

	// Golden envelope via the exact CLI code path, computed in-process.
	cfg := experiments.Config{Seed: seed, Scale: scale, Workers: 2}
	res, out, err := experiments.RunOutcome(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var golden bytes.Buffer
	if err := experiments.WriteCanonicalOutcomeJSON(&golden, spec, cfg, res, out); err != nil {
		t.Fatal(err)
	}

	// A standalone serverd process runs the job the classic way; its
	// envelope is the distributed run's reference bytes.
	standalone := startServerd(t, bin, listenPrefix,
		"-addr", "127.0.0.1:0", "-drain-timeout", "60s")
	soJob := submitJob(t, standalone.base, body)
	waitDone(t, standalone.base, soJob, 120*time.Second)
	code, soEnvelope := httpGet(t, standalone.base+"/v1/jobs/"+soJob+"/result")
	if code != http.StatusOK {
		t.Fatalf("standalone result = %d: %s", code, soEnvelope)
	}
	if !bytes.Equal(soEnvelope, golden.Bytes()) {
		t.Errorf("standalone serverd envelope diverges from golden CLI envelope\n got: %s\nwant: %s", soEnvelope, golden.Bytes())
	}
	if err := os.WriteFile(filepath.Join(artifacts, "standalone-result.json"), soEnvelope, 0o644); err != nil {
		t.Fatal(err)
	}
	stopServerd(t, standalone, "standalone")

	// The fabric: one coordinator, two workers. Lease batch 1 makes the
	// coordinator hand out one cell per lease, so with eight ~1s cells
	// and a 50ms worker poll both nodes are guaranteed a share of the
	// grid.
	coord := startServerd(t, bin, listenPrefix,
		"-role", "coordinator",
		"-addr", "127.0.0.1:0",
		"-manifest-dir", artifacts,
		"-lease-ttl", "10s",
		"-lease-batch", "1",
		"-drain-timeout", "60s")
	workers := []*serverdProc{
		startServerd(t, bin, workerPrefix,
			"-role", "worker", "-coordinator", coord.base,
			"-worker-name", "smoke-a", "-poll", "50ms"),
		startServerd(t, bin, workerPrefix,
			"-role", "worker", "-coordinator", coord.base,
			"-worker-name", "smoke-b", "-poll", "50ms"),
	}

	// Both workers must appear in the coordinator's listing before the
	// job goes in, so neither misses the grid.
	waitForWorkers(t, coord.base, 2, 30*time.Second)

	distJob := submitJob(t, coord.base, body)
	waitDone(t, coord.base, distJob, 120*time.Second)
	code, distEnvelope := httpGet(t, coord.base+"/v1/jobs/"+distJob+"/result")
	if code != http.StatusOK {
		t.Fatalf("distributed result = %d: %s", code, distEnvelope)
	}
	if !bytes.Equal(distEnvelope, soEnvelope) {
		t.Errorf("distributed envelope diverges from standalone serverd envelope\n got: %s\nwant: %s", distEnvelope, soEnvelope)
	}
	if err := os.WriteFile(filepath.Join(artifacts, "distributed-result.json"), distEnvelope, 0o644); err != nil {
		t.Fatal(err)
	}

	// The manifest must attribute every cell to a node and list both
	// workers in its node summary.
	code, manifest := httpGet(t, coord.base+"/v1/jobs/"+distJob+"/manifest")
	if code != http.StatusOK {
		t.Fatalf("GET manifest = %d", code)
	}
	var m struct {
		Nodes []struct {
			Name  string `json:"name"`
			Cells int    `json:"cells"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(manifest, &m); err != nil {
		t.Fatalf("invalid manifest JSON: %v\n%s", err, manifest)
	}
	total := 0
	for _, n := range m.Nodes {
		total += n.Cells
	}
	if len(m.Nodes) != 2 || total != 8 {
		t.Errorf("manifest nodes = %+v, want 2 nodes covering all 8 cells", m.Nodes)
	}

	// The worker listing and the lease counters tell the same story.
	code, workerList := httpGet(t, coord.base+"/v1/workers")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/workers = %d", code)
	}
	var ws []struct {
		Name  string `json:"name"`
		Cells int    `json:"cells_completed"`
	}
	if err := json.Unmarshal(workerList, &ws); err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Cells+ws[1].Cells != 8 {
		t.Errorf("GET /v1/workers = %s, want 2 workers covering all 8 cells", workerList)
	}
	if err := os.WriteFile(filepath.Join(artifacts, "workers.json"), workerList, 0o644); err != nil {
		t.Fatal(err)
	}

	code, metrics := httpGet(t, coord.base+"/metrics")
	if code != http.StatusOK || !bytes.Contains(metrics, []byte("rhohammer_lease_grants_total 8")) {
		t.Errorf("metrics = %d, missing the 8 lease grants:\n%s", code, metrics)
	}
	if err := os.WriteFile(filepath.Join(artifacts, "metrics.txt"), metrics, 0o644); err != nil {
		t.Fatal(err)
	}

	// Orderly teardown: workers first (they exit on the first signal;
	// any lease they held would be reclaimed), then the coordinator
	// drains.
	for i, w := range workers {
		stopServerd(t, w, fmt.Sprintf("worker-%d", i))
	}
	stopServerd(t, coord, "coordinator")

	// The coordinator's per-job manifest landed on disk.
	data, err := os.ReadFile(filepath.Join(artifacts, distJob+".json"))
	if err != nil {
		t.Fatalf("missing distributed job manifest: %v", err)
	}
	var onDisk map[string]any
	if err := json.Unmarshal(data, &onDisk); err != nil {
		t.Fatalf("invalid manifest JSON on disk: %v", err)
	}

	// Kill/restart leg: a -store-dir coordinator is SIGKILLed mid-job —
	// no drain, no shutdown hook, exactly what OPERATIONS.md calls a
	// crash — and a fresh process on the same address and store
	// directory must resume the job from its journaled cells, let the
	// same (still-running, never-restarted) workers finish it, and
	// serve an envelope byte-identical to the standalone run. The store
	// directory lands in the artifacts dir so CI uploads the journal
	// and snapshots alongside the envelopes.
	storeDir := filepath.Join(artifacts, "store")
	durable := startServerd(t, bin, listenPrefix,
		"-role", "coordinator",
		"-addr", "127.0.0.1:0",
		"-store-dir", storeDir,
		"-lease-ttl", "10s",
		"-lease-batch", "1",
		"-drain-timeout", "60s")
	addr := strings.TrimPrefix(durable.base, "http://")
	durWorkers := []*serverdProc{
		startServerd(t, bin, workerPrefix,
			"-role", "worker", "-coordinator", durable.base,
			"-worker-name", "survivor-a", "-poll", "50ms", "-drain-grace", "30s"),
		startServerd(t, bin, workerPrefix,
			"-role", "worker", "-coordinator", durable.base,
			"-worker-name", "survivor-b", "-poll", "50ms", "-drain-grace", "30s"),
	}
	waitForWorkers(t, durable.base, 2, 30*time.Second)

	durJob := submitJob(t, durable.base, body)
	waitCellsDone(t, durable.base, durJob, 2, 60*time.Second)
	killServerd(t, durable, "durable coordinator")

	restarted := startServerd(t, bin, listenPrefix,
		"-role", "coordinator",
		"-addr", addr,
		"-store-dir", storeDir,
		"-lease-ttl", "10s",
		"-lease-batch", "1",
		"-drain-timeout", "60s")
	code, stData := httpGet(t, restarted.base+"/v1/jobs/"+durJob)
	if code != http.StatusOK {
		t.Fatalf("restarted coordinator does not know job %s: %d", durJob, code)
	}
	var recSt struct {
		Persisted bool `json:"persisted"`
		Recovered bool `json:"recovered"`
		CellsDone int  `json:"cells_done"`
	}
	if err := json.Unmarshal(stData, &recSt); err != nil {
		t.Fatal(err)
	}
	if !recSt.Persisted || !recSt.Recovered || recSt.CellsDone < 2 {
		t.Errorf("recovered status = %s, want persisted+recovered with >=2 journaled cells", stData)
	}

	waitDone(t, restarted.base, durJob, 120*time.Second)
	code, durEnvelope := httpGet(t, restarted.base+"/v1/jobs/"+durJob+"/result")
	if code != http.StatusOK {
		t.Fatalf("post-restart result = %d: %s", code, durEnvelope)
	}
	if !bytes.Equal(durEnvelope, soEnvelope) {
		t.Errorf("post-restart envelope diverges from standalone serverd envelope\n got: %s\nwant: %s", durEnvelope, soEnvelope)
	}
	if err := os.WriteFile(filepath.Join(artifacts, "restarted-result.json"), durEnvelope, 0o644); err != nil {
		t.Fatal(err)
	}

	// Teardown: the workers were started against the first incarnation
	// and were never restarted — their clean exits prove the fabric
	// tolerates a coordinator swap underneath live workers.
	for i, w := range durWorkers {
		stopServerd(t, w, fmt.Sprintf("survivor-%d", i))
	}
	stopServerd(t, restarted, "restarted coordinator")
}

// waitCellsDone polls a job until at least n cells are complete (or the
// job finishes first — with fast cells the kill may lose the race, and
// snapshot recovery is then what the restart exercises).
func waitCellsDone(t *testing.T, base, id string, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		code, data := httpGet(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s = %d", id, code)
		}
		var st struct {
			State     string `json:"state"`
			Error     string `json:"error"`
			CellsDone int    `json:"cells_done"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "failed", "canceled":
			t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
		case "done":
			return
		}
		if st.CellsDone >= n {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never completed %d cells within %v", id, n, timeout)
}

// killServerd SIGKILLs one process — the crash half of the durability
// story; stopServerd is the polite half.
func killServerd(t *testing.T, p *serverdProc, label string) {
	t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		t.Fatalf("killing %s: %v", label, err)
	}
	<-p.exited
	p.exitSeen = true
}

const (
	listenPrefix = "serverd listening on "
	workerPrefix = "serverd worker polling "
)

// serverdProc is one running serverd process started by startServerd.
type serverdProc struct {
	cmd      *exec.Cmd
	exited   chan error
	exitSeen bool
	// base is the process's own URL for servers, the coordinator's URL
	// for workers (the suffix of its startup line either way).
	base string
}

// startServerd boots one serverd process and waits for its startup line
// (the listener address for server roles, the coordinator URL for
// workers). The process is killed at test cleanup if the test didn't
// already reap it via stopServerd.
func startServerd(t *testing.T, bin, wantPrefix string, args ...string) *serverdProc {
	t.Helper()
	p := &serverdProc{cmd: exec.Command(bin, args...), exited: make(chan error, 1)}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = os.Stderr
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	started := false
	t.Cleanup(func() {
		if !started || p.exitSeen {
			return
		}
		p.cmd.Process.Kill()
		<-p.exited
	})

	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		p.cmd.Process.Kill()
		t.Fatalf("serverd %v wrote no startup line: %v", args, sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, wantPrefix) {
		p.cmd.Process.Kill()
		t.Fatalf("unexpected first line %q, want prefix %q", line, wantPrefix)
	}
	suffix := strings.TrimPrefix(line, wantPrefix)
	if wantPrefix == listenPrefix {
		p.base = "http://" + suffix
	} else {
		p.base = suffix
	}
	go io.Copy(io.Discard, stdout)
	go func() { p.exited <- p.cmd.Wait() }()
	started = true
	return p
}

// stopServerd SIGTERMs one process and requires a clean (exit 0)
// shutdown within a minute.
func stopServerd(t *testing.T, p *serverdProc, label string) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p.exited:
		p.exitSeen = true
		if err != nil {
			t.Fatalf("%s exited non-zero after SIGTERM: %v", label, err)
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("%s did not exit within 60s of SIGTERM", label)
	}
}

// waitForWorkers polls GET /v1/workers until n workers are registered.
func waitForWorkers(t *testing.T, base string, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		code, data := httpGet(t, base+"/v1/workers")
		if code == http.StatusOK {
			var ws []json.RawMessage
			if err := json.Unmarshal(data, &ws); err == nil && len(ws) >= n {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("fewer than %d workers registered within %v", n, timeout)
}
