// Command serverd is the long-lived campaign service: the experiment
// registry behind an HTTP job API (see API.md for the wire contract,
// SCALING.md for the distributed fabric).
//
// Usage:
//
//	serverd [-role standalone|coordinator|worker]
//	        [-addr :8077] [-shards N] [-queue N] [-retain N]
//	        [-retry-after D] [-manifest-dir DIR] [-seed N]
//	        [-drain-timeout D] [-cache N] [-trace-cap N]
//	        [-replay-max-bytes N] [-store-dir DIR]
//	        [-lease-ttl D] [-lease-batch N]
//	        [-coordinator URL] [-worker-name S] [-poll D] [-parallel N]
//	        [-drain-grace D]
//
// Jobs are admitted with POST /v1/jobs (a registered spec name or an
// inline cell grid), execute on a pool of -shards concurrent campaign
// runners with at most -queue jobs waiting (beyond that POST returns
// 429 with Retry-After), and are polled via GET /v1/jobs/{id}. The
// result endpoint serves the canonical envelope — byte-identical to
// `experiments -json -canon -only <spec>` at the same seed and scale.
//
// Roles: the default standalone server executes every job locally. A
// -role coordinator server additionally registers the lease routes and
// executes registered-spec jobs on worker nodes — processes started
// with -role worker -coordinator URL, which lease batches of cells,
// run them against their own copy of the registry, and post results
// back. The merged envelope is byte-identical to a standalone run at
// any node count (`make determinism` proves it; SCALING.md has the
// argument). A dead worker's leases expire after -lease-ttl and its
// cells are re-leased.
//
// With -store-dir the server is durable: registered-spec jobs journal
// their admission, every completed cell, and their terminal envelope to
// that directory (fsynced at each commit point), and a restarted server
// pointed at the same directory resumes in-flight jobs from their last
// completed cell and keeps serving finished results. Even a SIGKILL
// loses at most the unacknowledged tail; the resumed job's envelope is
// byte-identical to an uninterrupted run. OPERATIONS.md is the runbook.
//
// On SIGTERM or SIGINT the server drains: admission stops (POST
// returns 503, /healthz reports "draining"), in-flight and queued jobs
// run to completion, results stay fetchable throughout, and the
// process exits 0 once idle. If the drain exceeds -drain-timeout the
// remaining jobs are cancelled first. A worker drains on the first
// signal — it finishes the lease it is serving (up to -drain-grace),
// tells the coordinator to stop offering it work, and exits 0; a
// second signal, or the grace expiring, abandons the lease instead,
// and the coordinator re-leases its cells at the deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rhohammer/internal/experiments"
	"rhohammer/internal/obs"
	"rhohammer/internal/serve"
)

func main() {
	role := flag.String("role", "standalone", "standalone, coordinator (lease cells to workers) or worker (execute leased cells)")
	addr := flag.String("addr", ":8077", "listen address (host:port; port 0 picks a free port)")
	shards := flag.Int("shards", 2, "jobs executing concurrently")
	queue := flag.Int("queue", 16, "admitted jobs waiting beyond the running ones; full queue returns 429")
	retain := flag.Int("retain", 64, "terminal jobs kept for result retrieval before oldest-first eviction")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429 responses")
	manifestDir := flag.String("manifest-dir", "", "write one obs manifest per finished job into this directory")
	seed := flag.Int64("seed", 42, "default seed for jobs that do not specify one")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight jobs before cancelling them")
	cacheSize := flag.Int("cache", 64, "completed results cached per (spec, seed, scale) for instant resubmission; 0 disables")
	traceCap := flag.Int("trace-cap", 0, "per-session event ring for the per-job trace endpoint (0 = default cap, negative disables capture)")
	replayMax := flag.Int64("replay-max-bytes", 0, "POST /v1/replay body bound in bytes (0 = 4 MiB default)")
	storeDir := flag.String("store-dir", "", "durable job store directory; empty keeps jobs in memory only (see OPERATIONS.md)")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "coordinator: lease lifetime without renewal before cells are reclaimed")
	leaseBatch := flag.Int("lease-batch", 4, "coordinator: max cells per lease; worker: max cells requested per lease")
	coordinator := flag.String("coordinator", "", "worker: coordinator base URL, e.g. http://127.0.0.1:8077")
	workerName := flag.String("worker-name", "", "worker: label shown in GET /v1/workers and manifests")
	poll := flag.Duration("poll", 200*time.Millisecond, "worker: sleep between lease attempts when the coordinator has no work")
	parallel := flag.Int("parallel", 0, "worker: cell concurrency within a leased batch (0 = GOMAXPROCS)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "worker: how long the first signal waits for the current lease before abandoning it")
	flag.Parse()

	// Counter aggregation is always on in the serving process — the
	// /metrics endpoint is part of the API, and obs provably never
	// perturbs results (TestObsDoesNotPerturbResults).
	obs.SetEnabled(true)

	switch *role {
	case "worker":
		runWorker(*coordinator, *workerName, *parallel, *leaseBatch, *poll, *drainGrace)
		return
	case "standalone", "coordinator":
	default:
		log.Fatalf("serverd: unknown -role %q (standalone, coordinator or worker)", *role)
	}

	if *cacheSize <= 0 {
		*cacheSize = -1 // Config treats 0 as "default"; the flag's 0 means off
	}
	srv, err := serve.New(serve.Config{
		Registry:       experiments.Registry,
		Shards:         *shards,
		QueueDepth:     *queue,
		Retain:         *retain,
		RetryAfter:     *retryAfter,
		ManifestDir:    *manifestDir,
		DefaultSeed:    *seed,
		CacheSize:      *cacheSize,
		TraceCap:       *traceCap,
		MaxReplayBytes: *replayMax,
		StoreDir:       *storeDir,
		Coordinator:    *role == "coordinator",
		LeaseTTL:       *leaseTTL,
		LeaseBatch:     *leaseBatch,
	})
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The resolved address line is load-bearing: the smoke harness
	// parses it to find a port-0 listener.
	fmt.Printf("serverd listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case s := <-sig:
		log.Printf("serverd: %v: draining (timeout %v)", s, *drainTimeout)
	case err := <-serveErr:
		log.Fatalf("serverd: %v", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("serverd: drain: %v (remaining jobs cancelled)", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		log.Printf("serverd: shutdown: %v", err)
	}
	log.Printf("serverd: drained, exiting")
}

// runWorker is the -role worker main loop: register with the
// coordinator and process leases until a signal arrives. The first
// signal drains — the worker finishes the lease it is serving (up to
// grace), tells the coordinator to stop offering it work, and exits
// cleanly; a second signal or the grace expiring cancels the run
// outright. Killing a worker at any moment is safe regardless: the
// coordinator reclaims its leases at their deadlines.
func runWorker(coordinator, name string, parallel, maxCells int, poll, grace time.Duration) {
	if coordinator == "" {
		log.Fatal("serverd: -role worker requires -coordinator URL")
	}
	w := &serve.Worker{
		Coordinator: coordinator,
		Registry:    experiments.Registry,
		Name:        name,
		Parallel:    parallel,
		MaxCells:    maxCells,
		Poll:        poll,
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	// The worker line is load-bearing for the distsmoke harness, like
	// the listener line above.
	fmt.Printf("serverd worker polling %s\n", coordinator)
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	var err error
	select {
	case err = <-done:
	case s := <-sig:
		log.Printf("serverd worker %s: %v: draining (grace %v)", w.ID(), s, grace)
		w.BeginDrain(ctx)
		t := time.NewTimer(grace)
		defer t.Stop()
		select {
		case err = <-done:
		case <-sig:
			log.Printf("serverd worker %s: second signal, abandoning lease", w.ID())
			cancel()
			err = <-done
		case <-t.C:
			log.Printf("serverd worker %s: drain grace expired, abandoning lease", w.ID())
			cancel()
			err = <-done
		}
	}
	if err != nil && !errors.Is(err, context.Canceled) {
		log.Fatalf("serverd worker: %v", err)
	}
	log.Printf("serverd worker %s: exiting", w.ID())
}
