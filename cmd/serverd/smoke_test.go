package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/dram"
	"rhohammer/internal/experiments"
	"rhohammer/internal/obs"
	"rhohammer/internal/replay"
)

// TestServeSmoke is the `make servesmoke` harness: it builds the real
// serverd binary, boots it on a free port, drives one short campaign
// job plus one attack-chain grid job over HTTP, diffs each served
// result against the golden canonical envelope (computed in-process
// through the exact CLI code path), resubmits the chain job to prove
// the result cache answers repeat keys, then SIGTERM-drains the server
// with a job still in flight and requires a clean exit with the job
// manifests on disk.
//
// It only runs under RHOHAMMER_SERVESMOKE=1 so `go test ./...` stays
// fast; artifacts (result, metrics, manifests) land in SERVESMOKE_OUT
// for CI to upload.
func TestServeSmoke(t *testing.T) {
	if os.Getenv("RHOHAMMER_SERVESMOKE") != "1" {
		t.Skip("smoke harness runs via `make servesmoke` (RHOHAMMER_SERVESMOKE=1)")
	}
	artifacts := os.Getenv("SERVESMOKE_OUT")
	if artifacts == "" {
		artifacts = t.TempDir()
	}
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(t.TempDir(), "serverd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building serverd: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-shards", "2",
		"-manifest-dir", artifacts,
		"-drain-timeout", "60s",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// exited carries cmd.Wait's single result; exitSeen records that the
	// body already consumed it, so the cleanup below must not wait again.
	exited := make(chan error, 1)
	exitSeen := false
	started := false
	defer func() {
		if !started || exitSeen {
			return
		}
		cmd.Process.Kill()
		<-exited
	}()

	// The first stdout line carries the resolved listen address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("serverd wrote no address line: %v", sc.Err())
	}
	line := sc.Text()
	const prefix = "serverd listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected first line %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, prefix)
	go io.Copy(io.Discard, stdout)
	go func() { exited <- cmd.Wait() }()
	started = true

	if code, _ := httpGet(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}

	// One short campaign job, matching the CI obs-smoke budget.
	const spec, seed, scale, parallel = "fig3", 42, 0.2, 2
	job1 := submitJob(t, base, fmt.Sprintf(`{"spec":%q,"seed":%d,"scale":%v,"parallel":%d}`, spec, seed, scale, parallel))
	waitDone(t, base, job1, 120*time.Second)

	code, result := httpGet(t, base+"/v1/jobs/"+job1+"/result")
	if code != http.StatusOK {
		t.Fatalf("GET result = %d: %s", code, result)
	}
	// Golden envelope: the exact CLI path (`experiments -json -canon
	// -only fig3 -seed 42 -scale 0.2`) computed in-process.
	cfg := experiments.Config{Seed: seed, Scale: scale, Workers: parallel}
	res, out, err := experiments.RunOutcome(spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := experiments.WriteCanonicalOutcomeJSON(&want, spec, cfg, res, out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result, want.Bytes()) {
		t.Errorf("served envelope diverges from golden CLI envelope\n got: %s\nwant: %s", result, want.Bytes())
	}
	if err := os.WriteFile(filepath.Join(artifacts, "result.json"), result, 0o644); err != nil {
		t.Fatal(err)
	}
	// One attack-chain grid job: the 2x2x2 allocator x hammerer x victim
	// campaign served through the same binary, golden-diffed against the
	// in-process CLI envelope, then resubmitted to prove the result cache
	// answers repeat (spec, seed, scale) keys without re-running.
	const chainSpec, chainScale = "chain", 0.2
	chainBody := fmt.Sprintf(`{"spec":%q,"seed":%d,"scale":%v,"parallel":%d}`, chainSpec, seed, chainScale, parallel)
	chainJob := submitJob(t, base, chainBody)
	waitDone(t, base, chainJob, 120*time.Second)
	code, chainResult := httpGet(t, base+"/v1/jobs/"+chainJob+"/result")
	if code != http.StatusOK {
		t.Fatalf("GET chain result = %d: %s", code, chainResult)
	}
	chainCfg := experiments.Config{Seed: seed, Scale: chainScale, Workers: parallel}
	chainRes, chainOut, err := experiments.RunOutcome(chainSpec, chainCfg)
	if err != nil {
		t.Fatal(err)
	}
	var chainWant bytes.Buffer
	if err := experiments.WriteCanonicalOutcomeJSON(&chainWant, chainSpec, chainCfg, chainRes, chainOut); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chainResult, chainWant.Bytes()) {
		t.Errorf("served chain envelope diverges from golden CLI envelope\n got: %s\nwant: %s", chainResult, chainWant.Bytes())
	}
	if err := os.WriteFile(filepath.Join(artifacts, "chain-result.json"), chainResult, 0o644); err != nil {
		t.Fatal(err)
	}
	cachedJob := submitJob(t, base, chainBody)
	codeSt, cachedSt := httpGet(t, base+"/v1/jobs/"+cachedJob)
	var cached struct {
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(cachedSt, &cached); err != nil {
		t.Fatalf("bad status body %s: %v", cachedSt, err)
	}
	if codeSt != http.StatusOK || cached.State != "done" || !cached.Cached {
		t.Errorf("resubmitted chain job not served from cache (%d): %s", codeSt, cachedSt)
	}
	code, cachedResult := httpGet(t, base+"/v1/jobs/"+cachedJob+"/result")
	if code != http.StatusOK || !bytes.Equal(cachedResult, chainResult) {
		t.Errorf("cached chain result (%d) differs from the original", code)
	}

	// One trace-replay job: record a deterministic ACT/REF trace from an
	// instrumented device, POST it through the real binary's /v1/replay,
	// and golden-diff the served verdict envelope against the in-process
	// Runner over the same decoded trace. The trace and the served
	// envelope both land in the artifact directory. Submitted exactly
	// once, so the cache-hit metric asserted below stays at 1.
	const replaySeed = 42
	recDev := dram.NewDevice(arch.DIMMS3(), replaySeed)
	recTrace := obs.NewTrace(1 << 14)
	recDev.SetTrace(recTrace)
	tns := 0.0
	for i := 0; i < 3000; i++ {
		tns += 50
		recDev.Activate(0, uint64(1000+(i%2)*2), tns)
		if i%156 == 155 {
			tns += 400
			recDev.Refresh(tns)
		}
	}
	var traceBuf bytes.Buffer
	traceBuf.WriteString(replay.HeaderLine("S3", replaySeed))
	if err := recTrace.WriteJSONL(&traceBuf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(artifacts, "replay-trace.jsonl"), traceBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := replay.DecodeBytes(traceBuf.Bytes(), replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replaySpec := replay.Spec(f)
	replayOut, err := campaign.Runner{Workers: 1}.Run(replaySpec)
	if err != nil {
		t.Fatal(err)
	}
	var replayWant bytes.Buffer
	replayCfg := experiments.Config{Seed: f.Seed, Scale: 1, Workers: 1}
	if err := experiments.WriteCanonicalOutcomeJSON(&replayWant, replaySpec.Name, replayCfg, replayOut.Result, replayOut); err != nil {
		t.Fatal(err)
	}
	replayBody, err := json.Marshal(map[string]string{"trace": traceBuf.String()})
	if err != nil {
		t.Fatal(err)
	}
	replayJob := submitTo(t, base+"/v1/replay", string(replayBody))
	waitDone(t, base, replayJob, 60*time.Second)
	code, replayResult := httpGet(t, base+"/v1/jobs/"+replayJob+"/result")
	if code != http.StatusOK {
		t.Fatalf("GET replay result = %d: %s", code, replayResult)
	}
	if !bytes.Equal(replayResult, replayWant.Bytes()) {
		t.Errorf("served replay envelope diverges from golden Runner envelope\n got: %s\nwant: %s", replayResult, replayWant.Bytes())
	}
	if err := os.WriteFile(filepath.Join(artifacts, "replay-result.json"), replayResult, 0o644); err != nil {
		t.Fatal(err)
	}

	code, metrics := httpGet(t, base+"/metrics")
	if code != http.StatusOK || !bytes.Contains(metrics, []byte("rhohammer_serve_jobs_completed_total")) {
		t.Errorf("metrics = %d, missing serve counters:\n%s", code, metrics)
	}
	if !bytes.Contains(metrics, []byte("rhohammer_serve_result_cache_hits_total 1")) {
		t.Errorf("metrics missing the cache hit:\n%s", metrics)
	}
	if err := os.WriteFile(filepath.Join(artifacts, "metrics.txt"), metrics, 0o644); err != nil {
		t.Fatal(err)
	}

	// SIGTERM with a job still in flight: it must drain, keep serving
	// its results, and exit 0. Polling during the drain races the
	// listener shutdown, so a connection error here means the server
	// already finished draining — job2's manifest on disk is the proof
	// that it completed rather than being dropped.
	job2 := submitJob(t, base, fmt.Sprintf(`{"spec":"table2","seed":%d,"parallel":1}`, seed))
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	pollUntilDoneOrGone(t, base, job2, 60*time.Second)
	select {
	case err := <-exited:
		exitSeen = true
		if err != nil {
			t.Fatalf("serverd exited non-zero after drain: %v", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("serverd did not exit within 60s of SIGTERM")
	}

	for _, id := range []string{job1, job2} {
		path := filepath.Join(artifacts, id+".json")
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("missing job manifest: %v", err)
			continue
		}
		var m map[string]any
		if err := json.Unmarshal(data, &m); err != nil {
			t.Errorf("%s: invalid manifest JSON: %v", path, err)
		}
	}
}

// submitJob posts a job and returns its ID.
func submitJob(t *testing.T, base, body string) string {
	t.Helper()
	return submitTo(t, base+"/v1/jobs", body)
}

// submitTo posts a submission body to an admitting endpoint
// (/v1/jobs or /v1/replay) and returns the accepted job ID.
func submitTo(t *testing.T, url, body string) string {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d: %s", resp.StatusCode, data)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &acc); err != nil || acc.ID == "" {
		t.Fatalf("bad accept body %s: %v", data, err)
	}
	return acc.ID
}

// waitDone polls a job to the done state.
func waitDone(t *testing.T, base, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		code, data := httpGet(t, base+"/v1/jobs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET job %s = %d", id, code)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s reached %s: %s", id, st.State, st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
}

// pollUntilDoneOrGone polls a job during drain, stopping when it is
// done or the server has shut its listener (drain finished between
// polls). A failed/canceled state is still fatal.
func pollUntilDoneOrGone(t *testing.T, base, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			return // listener gone: drain completed
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET job %s = %d during drain", id, resp.StatusCode)
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatal(err)
		}
		switch st.State {
		case "done":
			return
		case "failed", "canceled":
			t.Fatalf("job %s reached %s during drain: %s", id, st.State, st.Error)
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v of SIGTERM", id, timeout)
}

// httpGet fetches one URL.
func httpGet(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}
