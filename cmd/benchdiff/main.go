// Command benchdiff is the benchmark regression gate: it compares the
// two newest BENCH_<date>.json snapshots (as written by cmd/bench) and
// fails when a pinned steady-state benchmark regressed — more than 10%
// on ns/op, or on allocs/op (any real increase; a 0.1% relative slack
// absorbs one-time setup allocations amortized over differing
// iteration counts, so a 0-alloc loop gaining a single allocation
// still fails).
//
// Only the pinned micro-benchmarks participate in the gate: they are
// re-measured at a multi-second -benchtime, so their numbers are
// stable enough to diff. The campaign-sized entries run once each and
// are reported for context but never fail the gate.
//
// Usage:
//
//	go run ./cmd/benchdiff                    # two newest BENCH_*.json in .
//	go run ./cmd/benchdiff -old A.json -new B.json
//	go run ./cmd/benchdiff -report benchdiff-report.txt
//
// Snapshot files sort chronologically by name (BENCH_2026-08-08.json;
// an optional tag like BENCH_2026-08-08_payload.json sorts after the
// untagged file of the same date), so "two newest" is the lexical tail
// of the glob.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Benchmark mirrors the cmd/bench entry fields the gate reads.
type Benchmark struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Benchtime   string  `json:"benchtime"`
}

// Report mirrors the cmd/bench top-level document.
type Report struct {
	Date       string      `json:"date"`
	GitRev     string      `json:"git_rev"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// defaultPins matches cmd/bench's -micro set: the hot-path benchmarks
// measured long enough to be diffable.
const defaultPins = "BenchmarkHammerThroughput|BenchmarkHammerPatternSteadyState|BenchmarkActivate|BenchmarkMappingRecovery"

func main() {
	dir := flag.String("dir", ".", "directory holding BENCH_*.json snapshots")
	oldPath := flag.String("old", "", "baseline snapshot (default: second-newest in -dir)")
	newPath := flag.String("new", "", "candidate snapshot (default: newest in -dir)")
	pins := flag.String("pin", defaultPins,
		"regexp of steady-state benchmarks the gate applies to")
	maxNs := flag.Float64("max-ns-regress", 0.10,
		"maximum tolerated fractional ns/op regression on pinned benchmarks")
	allocSlack := flag.Float64("alloc-slack", 0.001,
		"fractional allocs/op jitter tolerated (one-time setup amortized over differing iteration counts); 0->N always fails")
	reportPath := flag.String("report", "", "also write the comparison report to this file")
	flag.Parse()

	if (*oldPath == "") != (*newPath == "") {
		fatal(fmt.Errorf("-old and -new must be given together"))
	}
	if *oldPath == "" {
		var err error
		*oldPath, *newPath, err = newestPair(*dir)
		if err != nil {
			fatal(err)
		}
	}
	pinRe, err := regexp.Compile(*pins)
	if err != nil {
		fatal(fmt.Errorf("bad -pin regexp: %w", err))
	}

	oldRep, err := load(*oldPath)
	if err != nil {
		fatal(err)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fatal(err)
	}

	var b strings.Builder
	failures := diff(&b, oldRep, newRep, *oldPath, *newPath, pinRe, *maxNs, *allocSlack)

	fmt.Print(b.String())
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, []byte(b.String()), 0o644); err != nil {
			fatal(err)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d pinned benchmark(s) regressed\n", failures)
		os.Exit(1)
	}
}

// newestPair returns the two lexically-last BENCH_*.json files in dir
// (second-newest first).
func newestPair(dir string) (oldPath, newPath string, err error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", "", err
	}
	if len(paths) < 2 {
		return "", "", fmt.Errorf("need at least two BENCH_*.json snapshots in %s, found %d", dir, len(paths))
	}
	sort.Strings(paths)
	return paths[len(paths)-2], paths[len(paths)-1], nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks recorded", path)
	}
	return &r, nil
}

// diff writes the comparison report and returns the number of gate
// failures among pinned benchmarks.
func diff(w io.Writer, oldRep, newRep *Report, oldPath, newPath string, pin *regexp.Regexp, maxNs, allocSlack float64) int {
	fmt.Fprintf(w, "benchdiff: %s (%s) -> %s (%s)\n",
		filepath.Base(oldPath), rev(oldRep), filepath.Base(newPath), rev(newRep))
	fmt.Fprintf(w, "gate: pinned ns/op regression > %.0f%% or any allocs/op regression fails\n\n", maxNs*100)

	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}

	failures := 0
	fmt.Fprintf(w, "%-44s %14s %14s %8s %10s  %s\n",
		"benchmark", "old ns/op", "new ns/op", "delta", "allocs", "verdict")
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14s %14.0f %8s %10.0f  new\n", nb.Name, "-", nb.NsPerOp, "-", nb.AllocsPerOp)
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = nb.NsPerOp/ob.NsPerOp - 1
		}
		pinned := pin.MatchString(nb.Name)
		verdict := "ok"
		switch {
		case !pinned:
			verdict = "unpinned"
		case delta > maxNs:
			verdict = fmt.Sprintf("FAIL ns/op +%.1f%%", delta*100)
			failures++
		case nb.AllocsPerOp > ob.AllocsPerOp*(1+allocSlack):
			verdict = fmt.Sprintf("FAIL allocs/op %.0f -> %.0f", ob.AllocsPerOp, nb.AllocsPerOp)
			failures++
		case delta < -0.05:
			verdict = fmt.Sprintf("ok (%.1f%% faster)", -delta*100)
		}
		allocs := fmt.Sprintf("%.0f->%.0f", ob.AllocsPerOp, nb.AllocsPerOp)
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.1f%% %10s  %s\n",
			nb.Name, ob.NsPerOp, nb.NsPerOp, delta*100, allocs, verdict)
	}
	for _, ob := range oldRep.Benchmarks {
		found := false
		for _, nb := range newRep.Benchmarks {
			if nb.Name == ob.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "%-44s %14.0f %14s  (dropped)\n", ob.Name, ob.NsPerOp, "-")
			if pin.MatchString(ob.Name) {
				fmt.Fprintf(w, "%-44s pinned benchmark missing from new snapshot: FAIL\n", "")
				failures++
			}
		}
	}
	return failures
}

func rev(r *Report) string {
	if r.GitRev == "" {
		return r.Date
	}
	if len(r.GitRev) > 8 {
		return r.Date + "@" + r.GitRev[:8]
	}
	return r.Date + "@" + r.GitRev
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
