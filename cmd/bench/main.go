// Command bench runs the repository benchmark suite and emits a
// machine-readable snapshot (BENCH_<date>.json) so performance can be
// tracked as a trajectory across commits rather than eyeballed from
// scrollback.
//
// Usage:
//
//	go run ./cmd/bench                     # full suite
//	go run ./cmd/bench -bench Hammer -benchtime 20x
//	go run ./cmd/bench -out custom.json
//
// The campaign-sized experiment benchmarks run once each (-benchtime),
// then the hot-path micro-benchmarks (-micro) are re-measured at
// -micro-benchtime, where one iteration would be warmup-dominated, and
// the results merged. Set -micro-benchtime 0x to skip the second pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"rhohammer/internal/experiments"
	"rhohammer/internal/obs"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics carries custom b.ReportMetric units (e.g. "ACTs/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// ACTsPerSec is derived from the ACTs/op metric and ns/op; zero when
	// the benchmark does not report activations.
	ACTsPerSec float64 `json:"acts_per_sec,omitempty"`
	// Benchtime records which pass measured this entry.
	Benchtime string `json:"benchtime"`
}

// CampaignTiming is one (campaign, worker-count) wall-clock sample from
// the parallel-grid pass. Identical output bytes at every worker count
// are guaranteed by the runner; these entries track only the time.
type CampaignTiming struct {
	Name    string  `json:"name"`
	Workers int     `json:"workers"`
	WallMS  float64 `json:"wall_ms"`
	// Speedup is wall(1 worker)/wall(this entry); 0 for the 1-worker row.
	Speedup float64 `json:"speedup,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// NumCPU bounds any parallel speedup the campaign grid can show; on
	// a single-CPU host the 8-worker rows legitimately match 1 worker.
	NumCPU     int              `json:"num_cpu"`
	Benchtime  string           `json:"benchtime"`
	Bench      string           `json:"bench"`
	WallTime   string           `json:"wall_time"`
	Benchmarks []Benchmark      `json:"benchmarks"`
	Campaigns  []CampaignTiming `json:"campaigns,omitempty"`
	// Counters is the obs-layer snapshot accumulated over the in-process
	// campaign grid pass (substrate activity: activations, refreshes,
	// TRR triggers, flips, cache hit/miss totals, worker occupancy).
	Counters map[string]int64 `json:"counters,omitempty"`
	// GitRev identifies the measured commit when the build carries VCS
	// info.
	GitRev string `json:"git_rev,omitempty"`
}

func main() {
	benchRe := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime for the full-suite pass")
	microRe := flag.String("micro",
		"BenchmarkHammerThroughput|BenchmarkHammerPatternSteadyState|BenchmarkActivate|BenchmarkMappingRecovery",
		"micro-benchmark regexp for the second pass")
	microBenchtime := flag.String("micro-benchtime", "2s",
		"go test -benchtime for the micro pass (0x skips it)")
	gridNames := flag.String("grid", "table3,fig6,fig9",
		"comma-separated campaigns for the parallel-grid pass (empty skips it)")
	gridScale := flag.Float64("grid-scale", 0.2, "experiment scale for the grid pass")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	tag := flag.String("tag", "", "suffix for the default output name (BENCH_<date>_<tag>.json); sorts after the untagged snapshot of the same date")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the in-process grid pass")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile taken after the grid pass")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		if *tag != "" {
			path = fmt.Sprintf("BENCH_%s_%s.json", date, *tag)
		} else {
			path = fmt.Sprintf("BENCH_%s.json", date)
		}
	}

	start := time.Now()
	benches, err := runPass(*benchRe, *benchtime)
	if err != nil {
		fatal(err)
	}
	if *microBenchtime != "0x" && *microRe != "" {
		micro, err := runPass(*microRe, *microBenchtime)
		if err != nil {
			fatal(err)
		}
		byName := make(map[string]int, len(benches))
		for i, b := range benches {
			byName[b.Name] = i
		}
		for _, m := range micro {
			if i, ok := byName[m.Name]; ok {
				benches[i] = m
			} else {
				benches = append(benches, m)
			}
		}
	}

	var campaigns []CampaignTiming
	var counters map[string]int64
	if *gridNames != "" {
		// The grid pass runs in-process, so the obs layer can attribute
		// the substrate activity behind the wall-clock numbers.
		obs.SetEnabled(true)
		obs.Default.Reset()
		if *cpuProfile != "" {
			f, err := os.Create(*cpuProfile)
			if err != nil {
				fatal(err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				fatal(err)
			}
		}
		campaigns, err = runGrid(strings.Split(*gridNames, ","), *gridScale)
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if err != nil {
			fatal(err)
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
		counters = obs.Default.Values()
		obs.SetEnabled(false)
	}

	rep := Report{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Benchtime:  *benchtime,
		Bench:      *benchRe,
		WallTime:   time.Since(start).Round(time.Second).String(),
		Benchmarks: benches,
		Campaigns:  campaigns,
		Counters:   counters,
		GitRev:     gitRev(),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(benches))
}

// runGrid times each named campaign in-process at 1 and 8 workers.
// The runner guarantees identical bytes at every worker count, so the
// interesting number is the wall-clock ratio — which NumCPU caps.
func runGrid(names []string, scale float64) ([]CampaignTiming, error) {
	var out []CampaignTiming
	for _, name := range names {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		var serialMS float64
		for _, workers := range []int{1, 8} {
			cfg := experiments.Config{Seed: 42, Scale: scale, Workers: workers}
			t0 := time.Now()
			if _, err := experiments.Run(name, cfg); err != nil {
				return nil, fmt.Errorf("grid pass: %w", err)
			}
			wallMS := float64(time.Since(t0)) / float64(time.Millisecond)
			ct := CampaignTiming{Name: name, Workers: workers, WallMS: wallMS}
			if workers == 1 {
				serialMS = wallMS
			} else if wallMS > 0 {
				ct.Speedup = serialMS / wallMS
			}
			fmt.Printf("campaign %-12s workers=%d wall=%.0fms\n", name, workers, wallMS)
			out = append(out, ct)
		}
	}
	return out, nil
}

// runPass executes one `go test -bench` invocation and parses its
// benchmark lines, echoing output so the run is observable.
func runPass(benchRe, benchtime string) ([]Benchmark, error) {
	cmd := exec.Command("go", "test", "-run", "NONE",
		"-bench", benchRe, "-benchmem", "-benchtime", benchtime, ".")
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var benches []Benchmark
	sc := bufio.NewScanner(outPipe)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if b, ok := parseLine(line); ok {
			b.Benchtime = benchtime
			benches = append(benches, b)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench %q failed: %w", benchRe, err)
	}
	return benches, nil
}

// parseLine decodes one benchmark result line of the form
//
//	BenchmarkName-8  20  53147975 ns/op  777797 ACTs/op  1331342 B/op  15477 allocs/op
//
// returning ok=false for non-benchmark output.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix; the report records GOARCH anyway.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	if acts, ok := b.Metrics["ACTs/op"]; ok && b.NsPerOp > 0 {
		b.ACTsPerSec = acts / (b.NsPerOp * 1e-9)
	}
	return b, true
}

// gitRev resolves the measured commit: build info when stamped, `git
// rev-parse` under `go run`, empty when neither works.
func gitRev() string {
	if rev := obs.GitRev(); rev != "" {
		return rev
	}
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
