// Command bench runs the repository benchmark suite and emits a
// machine-readable snapshot (BENCH_<date>.json) so performance can be
// tracked as a trajectory across commits rather than eyeballed from
// scrollback.
//
// Usage:
//
//	go run ./cmd/bench                     # full suite
//	go run ./cmd/bench -bench Hammer -benchtime 20x
//	go run ./cmd/bench -out custom.json
//
// The campaign-sized experiment benchmarks run once each (-benchtime),
// then the hot-path micro-benchmarks (-micro) are re-measured at
// -micro-benchtime, where one iteration would be warmup-dominated, and
// the results merged. Set -micro-benchtime 0x to skip the second pass.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	// Metrics carries custom b.ReportMetric units (e.g. "ACTs/op").
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// ACTsPerSec is derived from the ACTs/op metric and ns/op; zero when
	// the benchmark does not report activations.
	ACTsPerSec float64 `json:"acts_per_sec,omitempty"`
	// Benchtime records which pass measured this entry.
	Benchtime string `json:"benchtime"`
}

// Report is the top-level JSON document.
type Report struct {
	Date       string      `json:"date"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchtime  string      `json:"benchtime"`
	Bench      string      `json:"bench"`
	WallTime   string      `json:"wall_time"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	benchRe := flag.String("bench", ".", "benchmark regexp passed to go test -bench")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime for the full-suite pass")
	microRe := flag.String("micro",
		"BenchmarkHammerThroughput|BenchmarkHammerPatternSteadyState|BenchmarkActivate|BenchmarkMappingRecovery",
		"micro-benchmark regexp for the second pass")
	microBenchtime := flag.String("micro-benchtime", "2s",
		"go test -benchtime for the micro pass (0x skips it)")
	out := flag.String("out", "", "output path (default BENCH_<date>.json)")
	flag.Parse()

	date := time.Now().Format("2006-01-02")
	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", date)
	}

	start := time.Now()
	benches, err := runPass(*benchRe, *benchtime)
	if err != nil {
		fatal(err)
	}
	if *microBenchtime != "0x" && *microRe != "" {
		micro, err := runPass(*microRe, *microBenchtime)
		if err != nil {
			fatal(err)
		}
		byName := make(map[string]int, len(benches))
		for i, b := range benches {
			byName[b.Name] = i
		}
		for _, m := range micro {
			if i, ok := byName[m.Name]; ok {
				benches[i] = m
			} else {
				benches = append(benches, m)
			}
		}
	}

	rep := Report{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchtime:  *benchtime,
		Bench:      *benchRe,
		WallTime:   time.Since(start).Round(time.Second).String(),
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(benches))
}

// runPass executes one `go test -bench` invocation and parses its
// benchmark lines, echoing output so the run is observable.
func runPass(benchRe, benchtime string) ([]Benchmark, error) {
	cmd := exec.Command("go", "test", "-run", "NONE",
		"-bench", benchRe, "-benchmem", "-benchtime", benchtime, ".")
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var benches []Benchmark
	sc := bufio.NewScanner(outPipe)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if b, ok := parseLine(line); ok {
			b.Benchtime = benchtime
			benches = append(benches, b)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go test -bench %q failed: %w", benchRe, err)
	}
	return benches, nil
}

// parseLine decodes one benchmark result line of the form
//
//	BenchmarkName-8  20  53147975 ns/op  777797 ACTs/op  1331342 B/op  15477 allocs/op
//
// returning ok=false for non-benchmark output.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	name := fields[0]
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		// Strip the -GOMAXPROCS suffix; the report records GOARCH anyway.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	b := Benchmark{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	if acts, ok := b.Metrics["ACTs/op"]; ok && b.NsPerOp > 0 {
		b.ACTsPerSec = acts / (b.NsPerOp * 1e-9)
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
