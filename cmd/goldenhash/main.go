// Command goldenhash prints the sha256 of the pinned experiments'
// rendered output at the golden configuration (Seed 42, Scale 0.5).
// Run it after any change that intentionally alters RNG streams (e.g.
// a new seed-derivation scheme) and paste the hashes into
// internal/experiments/golden_test.go.
package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"time"

	"rhohammer/internal/experiments"
)

func main() {
	cfg := experiments.Config{Seed: 42, Scale: 0.5}
	for _, name := range []string{"table3", "table6", "fig9"} {
		t0 := time.Now()
		r, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var buf bytes.Buffer
		r.Render(&buf)
		fmt.Printf("%s: sha256=%x wall=%s bytes=%d\n", name, sha256.Sum256(buf.Bytes()), time.Since(t0).Round(time.Millisecond), buf.Len())
	}
}
