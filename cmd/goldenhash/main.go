package main

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"time"

	"rhohammer/internal/experiments"
)

func main() {
	cfg := experiments.Config{Seed: 42, Scale: 0.5}
	for _, e := range []struct {
		name string
		run  func(experiments.Config) experiments.Renderer
	}{
		{"Table3", func(c experiments.Config) experiments.Renderer { return experiments.Table3(c) }},
		{"Table6", func(c experiments.Config) experiments.Renderer { return experiments.Table6(c) }},
		{"Fig9", func(c experiments.Config) experiments.Renderer { return experiments.Fig9(c) }},
	} {
		t0 := time.Now()
		r := e.run(cfg)
		var buf bytes.Buffer
		r.Render(&buf)
		fmt.Printf("%s: sha256=%x wall=%s bytes=%d\n", e.name, sha256.Sum256(buf.Bytes()), time.Since(t0).Round(time.Millisecond), buf.Len())
	}
}
