// Command goldenhash prints the sha256 of the pinned experiments'
// rendered output at the golden configuration (Seed 42, Scale 0.5).
//
// Without flags it prints each hash for pasting into
// internal/experiments/golden.go after an intentional output change.
// With -check it compares against the pinned hashes instead and exits
// nonzero on the first mismatch, naming the diverging experiment — the
// command-line twin of TestGoldenOutputs, usable without the test
// harness (e.g. from a bisect script).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"rhohammer/internal/experiments"
)

func main() {
	check := flag.Bool("check", false, "compare against the pinned golden hashes; exit 1 on mismatch")
	flag.Parse()
	os.Exit(run(os.Stdout, *check, compute))
}

// compute runs one golden campaign for real. Tests substitute a stub.
func compute(name string) (hash string, size int, err error) {
	return experiments.GoldenHash(name)
}

// run drives every pinned experiment through compute, printing either
// the hashes (check=false) or a pass/fail verdict per experiment
// (check=true). Returns the process exit code; in check mode every
// experiment is evaluated even after a mismatch so the report is
// complete, but the first mismatch fixes the verdict.
func run(w io.Writer, check bool, compute func(name string) (string, int, error)) int {
	exit := 0
	firstBad := ""
	for _, g := range experiments.Goldens() {
		t0 := time.Now()
		got, size, err := compute(g.Name)
		if err != nil {
			fmt.Fprintf(w, "%s: error: %v\n", g.Name, err)
			return 1
		}
		wall := time.Since(t0).Round(time.Millisecond)
		if !check {
			fmt.Fprintf(w, "%s: sha256=%s wall=%s bytes=%d\n", g.Name, got, wall, size)
			continue
		}
		if got == g.SHA256 {
			fmt.Fprintf(w, "%s: ok (wall=%s)\n", g.Name, wall)
			continue
		}
		fmt.Fprintf(w, "%s: MISMATCH got=%s want=%s\n", g.Name, got, g.SHA256)
		if exit == 0 {
			exit = 1
			firstBad = g.Name
		}
	}
	if firstBad != "" {
		fmt.Fprintf(w, "golden check failed: first diverging experiment is %s\n", firstBad)
	}
	return exit
}
