package main

import (
	"fmt"
	"strings"
	"testing"

	"rhohammer/internal/experiments"
)

// stubCompute returns the pinned hash for every experiment except the
// ones overridden in bad.
func stubCompute(bad map[string]string) func(string) (string, int, error) {
	pinned := map[string]string{}
	for _, g := range experiments.Goldens() {
		pinned[g.Name] = g.SHA256
	}
	return func(name string) (string, int, error) {
		if h, ok := bad[name]; ok {
			return h, 1, nil
		}
		h, ok := pinned[name]
		if !ok {
			return "", 0, fmt.Errorf("unknown experiment %q", name)
		}
		return h, 1, nil
	}
}

func TestCheckModePasses(t *testing.T) {
	var out strings.Builder
	if code := run(&out, true, stubCompute(nil)); code != 0 {
		t.Fatalf("check against pinned hashes exited %d:\n%s", code, out.String())
	}
	for _, g := range experiments.Goldens() {
		if !strings.Contains(out.String(), g.Name+": ok") {
			t.Errorf("missing ok line for %s:\n%s", g.Name, out.String())
		}
	}
}

func TestCheckModeNamesFirstMismatch(t *testing.T) {
	// table6 is the second pinned experiment; table3 before it passes,
	// fig9 after it must still be evaluated.
	bad := map[string]string{
		"table6": "deadbeef",
		"fig9":   "cafef00d",
	}
	var out strings.Builder
	code := run(&out, true, stubCompute(bad))
	if code != 1 {
		t.Fatalf("mismatch exited %d, want 1:\n%s", code, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"table3: ok",
		"table6: MISMATCH got=deadbeef",
		"fig9: MISMATCH",
		"first diverging experiment is table6",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("check output missing %q:\n%s", want, s)
		}
	}
}

func TestCheckModeErrorExitsNonzero(t *testing.T) {
	failing := func(name string) (string, int, error) {
		return "", 0, fmt.Errorf("campaign blew up")
	}
	var out strings.Builder
	if code := run(&out, true, failing); code != 1 {
		t.Fatalf("compute error exited %d, want 1", code)
	}
	if !strings.Contains(out.String(), "campaign blew up") {
		t.Errorf("error not surfaced:\n%s", out.String())
	}
}

func TestPrintModeListsHashes(t *testing.T) {
	var out strings.Builder
	if code := run(&out, false, stubCompute(nil)); code != 0 {
		t.Fatalf("print mode exited %d", code)
	}
	for _, g := range experiments.Goldens() {
		if !strings.Contains(out.String(), g.Name+": sha256="+g.SHA256) {
			t.Errorf("missing hash line for %s:\n%s", g.Name, out.String())
		}
	}
}
