// Command remap reverse-engineers a platform's DRAM address mapping
// with ρHammer's Algorithm 1 (or one of the baseline tools) and checks
// the result against the platform's ground truth.
//
// Usage:
//
//	remap [-arch "Raptor Lake"] [-dimm S3] [-tool rhohammer|drama|dramdig|dare] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/reverse"
	"rhohammer/internal/stats"
	"rhohammer/internal/timing"
)

func main() {
	archName := flag.String("arch", "Raptor Lake", "architecture (Comet Lake, Rocket Lake, Alder Lake, Raptor Lake)")
	dimmID := flag.String("dimm", "S3", "DIMM (S1..S5, H1, M1)")
	tool := flag.String("tool", "rhohammer", "rhohammer, drama, dramdig or dare")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	a, ok := arch.ByName(*archName)
	if !ok {
		fatal("unknown architecture %q", *archName)
	}
	d, ok := arch.DIMMByID(*dimmID)
	if !ok {
		fatal("unknown DIMM %q", *dimmID)
	}
	truth, ok := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	if !ok {
		fatal("no mapping for %s at %d GiB", a.MappingFamily, d.SizeGiB)
	}

	r := stats.NewRand(*seed)
	dev := dram.NewDevice(d, *seed)
	ctrl := memctrl.New(a, truth, dev)
	meas := timing.NewMeasurer(ctrl, r)
	pool := mem.NewPool(truth.Size(), 0.7, r)

	fmt.Printf("platform: %s with DIMM %s\n", a, d)
	fmt.Printf("tool:     %s\n", *tool)

	var res reverse.Result
	switch *tool {
	case "rhohammer":
		res = reverse.Recover(meas, pool, reverse.Options{})
	case "drama":
		res = reverse.RecoverDRAMA(meas, pool, reverse.Options{})
	case "dramdig":
		res = reverse.RecoverDRAMDig(meas, pool, reverse.Options{})
	case "dare":
		res = reverse.RecoverDARE(meas, pool, reverse.Options{})
	default:
		fatal("unknown tool %q", *tool)
	}

	fmt.Printf("threshold: %.1f ns (fast mode %.1f, slow mode %.1f)\n",
		res.Threshold.Threshold, res.Threshold.FastMode, res.Threshold.SlowMode)
	fmt.Printf("measurements: %d (%d DRAM accesses), simulated runtime %.1f s\n",
		res.Measurements, res.Accesses, res.Seconds())
	if !res.OK() {
		fmt.Printf("recovery FAILED: %v\n", res.Err)
		os.Exit(1)
	}
	fmt.Printf("recovered: %s\n", res.Mapping)
	fmt.Printf("truth:     %s\n", truth)
	if res.Mapping.Equal(truth) {
		fmt.Println("result: CORRECT")
	} else {
		fmt.Println("result: INCORRECT")
		os.Exit(1)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
