// Command experiments regenerates the paper's tables and figures on the
// simulated substrate.
//
// Usage:
//
//	experiments [-seed N] [-scale X] all
//	experiments [-seed N] [-scale X] table1 table2 ... fig11 e2e
//
// Scale 1 is the fast default; larger values approach the paper's
// budgets (table6 at scale 1 takes a couple of minutes).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rhohammer/internal/experiments"
)

var runners = []struct {
	name string
	run  func(experiments.Config) experiments.Renderer
}{
	{"table1", func(c experiments.Config) experiments.Renderer { return experiments.Table1(c) }},
	{"table2", func(c experiments.Config) experiments.Renderer { return experiments.Table2(c) }},
	{"fig3", func(c experiments.Config) experiments.Renderer { return experiments.Fig3(c) }},
	{"fig4", func(c experiments.Config) experiments.Renderer { return experiments.Fig4(c) }},
	{"table4", func(c experiments.Config) experiments.Renderer { return experiments.Table4(c) }},
	{"table5", func(c experiments.Config) experiments.Renderer { return experiments.Table5(c) }},
	{"fig6", func(c experiments.Config) experiments.Renderer { return experiments.Fig6(c) }},
	{"fig8", func(c experiments.Config) experiments.Renderer { return experiments.Fig8(c) }},
	{"fig9", func(c experiments.Config) experiments.Renderer { return experiments.Fig9(c) }},
	{"fig10", func(c experiments.Config) experiments.Renderer { return experiments.Fig10(c) }},
	{"table3", func(c experiments.Config) experiments.Renderer { return experiments.Table3(c) }},
	{"table6", func(c experiments.Config) experiments.Renderer { return experiments.Table6(c) }},
	{"fig11", func(c experiments.Config) experiments.Renderer { return experiments.Fig11(c) }},
	{"e2e", func(c experiments.Config) experiments.Renderer { return experiments.E2E(c) }},
	{"mitigations", func(c experiments.Config) experiments.Renderer { return experiments.Mitigations(c) }},
	{"ablation-cs", func(c experiments.Config) experiments.Renderer { return experiments.AblationCounterSpec(c) }},
	{"ablation-sampler", func(c experiments.Config) experiments.Renderer { return experiments.AblationSamplerSize(c) }},
}

func main() {
	seed := flag.Int64("seed", 42, "random seed (results are deterministic in the seed)")
	scale := flag.Float64("scale", 1, "workload scale; >1 approaches the paper's budgets")
	asJSON := flag.Bool("json", false, "emit structured JSON instead of text")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale}

	selected := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, r := range runners {
				selected[r.name] = true
			}
			continue
		}
		found := false
		for _, r := range runners {
			if r.name == a {
				selected[a] = true
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			usage()
			os.Exit(2)
		}
	}

	for _, r := range runners {
		if !selected[r.name] {
			continue
		}
		start := time.Now()
		res := r.run(cfg)
		if *asJSON {
			if err := experiments.WriteJSON(os.Stdout, r.name, cfg, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		res.Render(os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: experiments [-seed N] [-scale X] <experiment...|all>\nexperiments:")
	for _, r := range runners {
		fmt.Fprintf(os.Stderr, " %s", r.name)
	}
	fmt.Fprintln(os.Stderr)
}
