// Command experiments regenerates the paper's tables and figures on the
// simulated substrate, driven by the campaign registry.
//
// Usage:
//
//	experiments -list
//	experiments [-seed N] [-scale X] [-parallel W] all
//	experiments [-seed N] [-scale X] [-parallel W] table1 fig9 ...
//	experiments [-seed N] [-scale X] -only table6
//
// Scale 1 is the fast default; larger values approach the paper's
// budgets (table6 at scale 1 takes a couple of minutes). -parallel
// bounds the campaign worker pool; every experiment's bytes are
// identical for any worker count — parallelism only changes wall-clock
// time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rhohammer/internal/experiments"
	"rhohammer/internal/hammer"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed (results are deterministic in the seed)")
	scale := flag.Float64("scale", 1, "workload scale; >1 approaches the paper's budgets")
	parallel := flag.Int("parallel", 0, "campaign worker pool size; 0 means GOMAXPROCS (results are identical for every value)")
	only := flag.String("only", "", "run exactly one named experiment")
	list := flag.Bool("list", false, "list registered experiments and exit")
	asJSON := flag.Bool("json", false, "emit structured JSON instead of text")
	simcheck := flag.Bool("simcheck", false, "audit every simulated session against the slow reference model (order-of-magnitude slower; panics on divergence)")
	flag.Parse()

	if *simcheck {
		// Sessions are created deep inside the experiment code; the env
		// gate is how the audit reaches them without threading a flag
		// through every constructor.
		os.Setenv(hammer.SimcheckEnv, "1")
	}

	names := experiments.Registry.Names()

	if *list {
		for _, n := range names {
			e, _ := experiments.Registry.Lookup(n)
			fmt.Printf("%-18s %-7s %s\n", e.Name, e.Kind, e.Title)
		}
		return
	}

	args := flag.Args()
	if *only != "" {
		if len(args) > 0 {
			fmt.Fprintln(os.Stderr, "-only cannot be combined with positional experiment names")
			os.Exit(2)
		}
		args = []string{*only}
	}
	if len(args) == 0 {
		usage(names)
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Workers: *parallel}

	selected := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, n := range names {
				selected[n] = true
			}
			continue
		}
		if _, ok := experiments.Registry.Lookup(a); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			usage(names)
			os.Exit(2)
		}
		selected[a] = true
	}

	// Registration order is rendering order, matching the paper's
	// narrative.
	for _, name := range names {
		if !selected[name] {
			continue
		}
		start := time.Now()
		res, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *asJSON {
			if err := experiments.WriteJSON(os.Stdout, name, cfg, res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		res.Render(os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func usage(names []string) {
	fmt.Fprintf(os.Stderr, "usage: experiments [-seed N] [-scale X] [-parallel W] [-json] <experiment...|all>\n")
	fmt.Fprintf(os.Stderr, "       experiments -only <experiment>\n")
	fmt.Fprintf(os.Stderr, "       experiments -list\nexperiments:")
	for _, n := range names {
		fmt.Fprintf(os.Stderr, " %s", n)
	}
	fmt.Fprintln(os.Stderr)
}
