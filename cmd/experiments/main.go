// Command experiments regenerates the paper's tables and figures on the
// simulated substrate, driven by the campaign registry.
//
// Usage:
//
//	experiments -list
//	experiments [-seed N] [-scale X] [-parallel W] all
//	experiments [-seed N] [-scale X] [-parallel W] table1 fig9 ...
//	experiments [-seed N] [-scale X] -only table6
//
// Scale 1 is the fast default; larger values approach the paper's
// budgets (table6 at scale 1 takes a couple of minutes). -parallel
// bounds the campaign worker pool; every experiment's bytes are
// identical for any worker count — parallelism only changes wall-clock
// time. -json -canon emits the canonical envelope (scheduling noise
// zeroed), the exact bytes serverd's result endpoint serves; see
// API.md.
//
// Observability (see ARCHITECTURE.md):
//
//	-manifest out.json   write a run manifest (git rev, seed, flags,
//	                     per-cell timings and seeds, counter snapshot);
//	                     any artifact is reproducible from it alone
//	-metrics out.txt     write a Prometheus-style counter snapshot
//	                     ("-" for stdout)
//	-trace out.jsonl     record structured substrate events per session
//	                     (also enabled via RHOHAMMER_TRACE=out.jsonl)
//	-trace-cap N         per-session event-ring bound
//	-cpuprofile / -memprofile write pprof profiles of the run
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rhohammer/internal/campaign"
	"rhohammer/internal/experiments"
	"rhohammer/internal/hammer"
	"rhohammer/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 42, "random seed (results are deterministic in the seed)")
	scale := flag.Float64("scale", 1, "workload scale; >1 approaches the paper's budgets")
	parallel := flag.Int("parallel", 0, "campaign worker pool size; 0 means GOMAXPROCS (results are identical for every value)")
	only := flag.String("only", "", "run exactly one named experiment")
	list := flag.Bool("list", false, "list registered experiments and exit")
	asJSON := flag.Bool("json", false, "emit structured JSON (with per-cell stats) instead of text")
	canon := flag.Bool("canon", false, "with -json, zero the scheduling-dependent fields (workers, wall times) so the bytes depend only on seed and scale — the envelope serverd serves")
	simcheck := flag.Bool("simcheck", false, "audit every simulated session against the slow reference model (order-of-magnitude slower; panics on divergence)")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this path")
	metricsPath := flag.String("metrics", "", "write a Prometheus-style counter snapshot to this path (\"-\" for stdout)")
	tracePath := flag.String("trace", os.Getenv(obs.TraceEnv), "record structured substrate events to this JSONL path (default $RHOHAMMER_TRACE)")
	traceCap := flag.Int("trace-cap", obs.DefaultTraceCap, "per-session event ring capacity for -trace")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this path")
	flag.Parse()

	if *simcheck {
		// Sessions are created deep inside the experiment code; the env
		// gate is how the audit reaches them without threading a flag
		// through every constructor.
		os.Setenv(hammer.SimcheckEnv, "1")
	}
	if *tracePath != "" {
		// Same depth problem, same solution: arming the global collector
		// makes every session record into its own seed-keyed ring.
		obs.EnableTracing(*traceCap)
	}
	if *metricsPath != "" || *manifestPath != "" {
		obs.SetEnabled(true)
	}

	names := experiments.Registry.Names()

	if *list {
		// Lexical order, not registration order: listings must be stable
		// however the registry is assembled (GET /v1/specs shares this
		// contract; TestListSortedOrder pins it).
		for _, e := range experiments.Registry.SortedEntries() {
			fmt.Printf("%-18s %-7s %s\n", e.Name, e.Kind, e.Title)
		}
		return
	}

	args := flag.Args()
	if *only != "" {
		if len(args) > 0 {
			fmt.Fprintln(os.Stderr, "-only cannot be combined with positional experiment names")
			os.Exit(2)
		}
		args = []string{*only}
	}
	if len(args) == 0 {
		usage(names)
		os.Exit(2)
	}
	cfg := experiments.Config{Seed: *seed, Scale: *scale, Workers: *parallel}

	selected := map[string]bool{}
	for _, a := range args {
		if a == "all" {
			for _, n := range names {
				selected[n] = true
			}
			continue
		}
		if _, ok := experiments.Registry.Lookup(a); !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", a)
			usage(names)
			os.Exit(2)
		}
		selected[a] = true
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}

	manifest := obs.NewManifest("experiments", os.Args[1:])
	manifest.Date = time.Now().UTC().Format(time.RFC3339)
	manifest.Seed, manifest.Scale, manifest.Workers = *seed, *scale, *parallel
	if manifest.GitRev == "" {
		manifest.GitRev = gitRevFallback()
	}

	// Registration order is rendering order, matching the paper's
	// narrative.
	exitCode := 0
	for _, name := range names {
		if !selected[name] {
			continue
		}
		start := time.Now()
		res, out, err := experiments.RunOutcome(name, cfg)
		manifest.Runs = append(manifest.Runs, runRecord(name, out, err))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exitCode = 1
			continue
		}
		if *asJSON {
			write := experiments.WriteOutcomeJSON
			if *canon {
				write = experiments.WriteCanonicalOutcomeJSON
			}
			if err := write(os.Stdout, name, cfg, res, out); err != nil {
				fatal(err)
			}
			continue
		}
		res.Render(os.Stdout)
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fatal(err)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	if *manifestPath != "" {
		manifest.Counters = obs.Default.Values()
		if err := manifest.WriteFile(*manifestPath); err != nil {
			fatal(err)
		}
	}
	if *metricsPath != "" {
		w := os.Stdout
		var f *os.File
		if *metricsPath != "-" {
			var err error
			if f, err = os.Create(*metricsPath); err != nil {
				fatal(err)
			}
			w = f
		}
		if err := obs.Default.WritePrometheus(w); err != nil {
			fatal(err)
		}
		if f != nil {
			f.Close()
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := obs.Traces.WriteJSONL(f); err != nil {
			fatal(err)
		}
		f.Close()
	}
	os.Exit(exitCode)
}

// runRecord converts one campaign outcome into its manifest record.
func runRecord(name string, out *campaign.Outcome, err error) obs.RunRecord {
	rec := obs.RunRecord{Name: name}
	if err != nil {
		rec.Err = err.Error()
	}
	if out == nil {
		return rec
	}
	rec.WallNS = int64(out.Wall)
	rec.Workers = out.Workers
	for _, c := range out.Cells {
		rec.Cells = append(rec.Cells, obs.CellRecord{
			Key: c.Key, Seed: c.Seed, WallNS: int64(c.Wall),
			Attempts: c.Attempts, Err: c.Err,
		})
	}
	return rec
}

func usage(names []string) {
	fmt.Fprintf(os.Stderr, "usage: experiments [-seed N] [-scale X] [-parallel W] [-json [-canon]] [-manifest M] [-metrics P] [-trace T] <experiment...|all>\n")
	fmt.Fprintf(os.Stderr, "       experiments -only <experiment>\n")
	fmt.Fprintf(os.Stderr, "       experiments -list\nexperiments:")
	for _, n := range names {
		fmt.Fprintf(os.Stderr, " %s", n)
	}
	fmt.Fprintln(os.Stderr)
}

// gitRevFallback shells out to git when the binary carries no build
// info (e.g. `go run` on a toolchain that stamps no VCS data).
func gitRevFallback() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
