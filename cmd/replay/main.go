// Command replay feeds a recorded ACT/REF trace through the dram
// substrate with the refmodel differential oracle attached and prints
// the verdict: replayed flips, TRR trigger counts, the cumulative
// counter snapshot, and the oracle's first-divergence report if the
// fast substrate and the reference model ever disagree.
//
// Usage:
//
//	replay [-dimm ID] [-seed N] [-session KEY] [-max-events N]
//	       [-envelope] [FILE]
//
// FILE is a JSONL trace — obs.Trace.WriteJSONL output, a collector
// dump (cmd/experiments -trace, or GET /v1/jobs/{id}/trace from
// serverd), or a file opening with a rhohammer_trace header line.
// With no FILE the trace is read from stdin.
//
// -dimm and -seed override the trace header; both are required when
// the trace has no header. For a trace recorded by a hammer session,
// the device seed is hammer.DeviceSeed(sessionSeed), not the session
// seed itself. -session selects one session of a multi-session
// collector dump.
//
// The default output is the indented replay verdict. -envelope prints
// the canonical campaign envelope instead — byte-identical to what
// serverd's POST /v1/replay result endpoint serves for the same trace,
// DIMM and seed.
//
// Exit status: 0 on a clean replay, 1 on a decode error or when the
// oracle reports a divergence.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"rhohammer/internal/campaign"
	"rhohammer/internal/experiments"
	"rhohammer/internal/replay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("replay: ")
	dimm := flag.String("dimm", "", "module profile ID the trace was recorded against (overrides the trace header)")
	seed := flag.Int64("seed", 0, "dram device seed (overrides the trace header; hammer.DeviceSeed of the session seed)")
	session := flag.String("session", "", "session key to select from a multi-session collector dump")
	maxEvents := flag.Int("max-events", 0, "event bound (0 = default)")
	envelope := flag.Bool("envelope", false, "print the canonical campaign envelope instead of the verdict")
	flag.Parse()

	var in io.Reader = os.Stdin
	if flag.NArg() > 1 {
		log.Fatalf("at most one trace file, got %d args", flag.NArg())
	}
	if flag.NArg() == 1 {
		fh, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer fh.Close()
		in = fh
	}

	opts := replay.Options{DIMM: *dimm, Session: *session, MaxEvents: *maxEvents}
	// Only an explicitly passed -seed overrides the header: a header
	// seed must survive the flag's zero default.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			opts.Seed = seed
		}
	})
	f, err := replay.Decode(in, opts)
	if err != nil {
		log.Fatal(err)
	}

	if *envelope {
		// The exact serve code path: the trace as a one-cell campaign
		// spec, run and exported canonically.
		spec := replay.Spec(f)
		out, err := campaign.Runner{Workers: 1}.Run(spec)
		if err != nil {
			log.Fatal(err)
		}
		cfg := experiments.Config{Seed: f.Seed, Scale: 1, Workers: 1}
		var buf bytes.Buffer
		if err := experiments.WriteCanonicalOutcomeJSON(&buf, spec.Name, cfg, out.Result, out); err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(buf.Bytes())
		v, ok := out.Result.(*replay.Verdict)
		if ok && v.Divergence != "" {
			log.Fatalf("oracle divergence: %s", v.Divergence)
		}
		return
	}

	v := replay.Run(f)
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", data)
	if v.Divergence != "" {
		log.Fatalf("oracle divergence: %s", v.Divergence)
	}
}
