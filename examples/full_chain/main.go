// Full chain: the complete ρHammer workflow end to end, exactly as the
// paper's Fig. 5 lays it out — reverse-engineer the mapping, tune the
// counter-speculation pseudo-barrier, fuzz for TRR-bypassing patterns,
// refine the campaign winner, sweep it across physical locations, and
// finally run the PTE-corruption attack as a composed chain plan
// (buddy allocator → ρHammer hammerer → pte victim).
package main

import (
	"fmt"
	"log"

	"rhohammer"
)

func main() {
	atk, err := rhohammer.NewAttack(rhohammer.Options{
		Arch: rhohammer.RaptorLake(),
		DIMM: rhohammer.DIMMS4(),
		Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target: %s with %s\n\n", atk.Arch(), atk.DIMM())

	// ① Reverse-engineer the DRAM address mapping (Algorithm 1).
	re := atk.RecoverMappingDetailed()
	if !re.OK() {
		log.Fatalf("step 1 failed: %v", re.Err)
	}
	fmt.Printf("[1] mapping recovered in %.1fs simulated (%d measurements)\n",
		re.Seconds(), re.Measurements)

	// ② Tune the NOP pseudo-barrier for this platform.
	tune, err := atk.TuneCounterSpec()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[2] counter-speculation tuned: %d NOPs (%d flips in the probe)\n",
		tune.BestNops, tune.BestFlips)

	// ③ Fuzz for effective non-uniform patterns.
	rep, err := atk.Fuzz(rhohammer.FuzzOptions{Patterns: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[3] fuzzing: %d/%d patterns effective, %d flips; best = %d flips\n",
		rep.Effective, rep.Tried, rep.TotalFlips, rep.Best.Flips)
	if rep.Best.Pattern == nil {
		log.Fatal("no effective pattern; increase the budget or change the seed")
	}

	// ④ Refine the winner by hill climbing over mutations.
	ref, err := atk.Refine(rep.Best.Pattern, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[4] refinement: %d rounds, %d improvements, best now %d flips\n",
		ref.Rounds, ref.Improvements, ref.Best.Flips)

	// ⑤ Sweep (template) the refined pattern across fresh locations.
	sw, err := atk.Sweep(ref.Best.Pattern, rhohammer.SweepOptions{Locations: 12})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("[5] sweep: %d flips over 12 locations (%.0f flips/min simulated)\n",
		sw.TotalFlips, sw.FlipsPerMinute())

	// ⑥ End-to-end exploitation, composed from chain stages.
	plan := rhohammer.ChainPlan{Allocator: "buddy", Hammerer: "rho", Victim: "pte", Regions: 10}
	ex, err := atk.Chain(plan)
	if err != nil {
		log.Fatalf("step 6 failed: %v", err)
	}
	fmt.Printf("[6] chain %s: %d templated flips, %d exploitable, PTE %#x corrupted\n",
		plan.Key(), ex.TotalFlips, len(ex.Targets), ex.Addr)
	fmt.Printf("\npage-table read/write achieved in %.1f simulated seconds end-to-end\n",
		ex.Phases.TotalNS()/1e9)
}
