// DDR5 outlook (§6): run ρHammer's full pipeline against a DDR5 module
// with refresh management (RFM). The mapping — now including a
// sub-channel function — is still recovered in seconds, but no hammering
// strategy produces a single bit flip: RFM's per-RAAIMT mitigation
// window is too tight for decoy patterns, matching the paper's (and
// Posthammer's) observation that DDR5 resists all known non-uniform
// patterns.
package main

import (
	"fmt"
	"log"

	"rhohammer"
)

func main() {
	atk, err := rhohammer.NewAttack(rhohammer.Options{
		Arch: rhohammer.RaptorLake(),
		DIMM: rhohammer.DIMMD1(), // DDR5-4800 with RFM
		Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s, DIMM %s (DDR5, RAAIMT=%d)\n",
		atk.Arch(), atk.DIMM(), atk.DIMM().RAAIMT)

	// Reverse-engineering still works: the sub-channel function shows
	// up as one more XOR bank function, which is all the attack needs.
	res := atk.RecoverMappingDetailed()
	if !res.OK() {
		log.Fatalf("recovery failed: %v", res.Err)
	}
	fmt.Printf("recovered DDR5 mapping (%.1fs simulated):\n  %s\n", res.Seconds(), res.Mapping)
	if res.Mapping.Equal(atk.GroundTruthMapping()) {
		fmt.Println("  (matches ground truth, sub-channel function included)")
	}

	// Hammering, however, finds nothing — under any strategy.
	for _, st := range []struct {
		name string
		cfg  rhohammer.HammerConfig
	}{
		{"baseline load", rhohammer.BaselineConfig()},
		{"rhoHammer single-bank", atk.RecommendedSingleBankConfig()},
		{"rhoHammer multi-bank", atk.RecommendedConfig()},
	} {
		r, err := atk.Hammer(rhohammer.KnownGood(), st.cfg, 0, 4096, 300e6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %d flips (%d RFM sweeps fired)\n",
			st.name+":", r.FlipCount(), atk.Session().Dev.RFMEvents())
	}

	rep, err := atk.Fuzz(rhohammer.FuzzOptions{Patterns: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fuzzing campaign:         %d/%d effective patterns, %d flips\n",
		rep.Effective, rep.Tried, rep.TotalFlips)
	fmt.Println("\nDDR5 verdict: mapping recoverable, activation rate intact,")
	fmt.Println("but RFM denies every TRR-style evasion — future work, as §6 says.")
}
