// Mapping recovery walk-through: run ρHammer's Algorithm 1 across all
// four architectures and both DIMM generations, compare against the
// prior tools (DRAMA, DRAMDig, DARE), and show why the Alder/Raptor
// mappings defeat everything else.
package main

import (
	"fmt"
	"log"

	"rhohammer"
)

func main() {
	for _, mk := range []func() *rhohammer.Arch{
		rhohammer.CometLake, rhohammer.RocketLake,
		rhohammer.AlderLake, rhohammer.RaptorLake,
	} {
		a := mk()
		atk, err := rhohammer.NewAttack(rhohammer.Options{
			Arch: a, DIMM: rhohammer.DIMMS3(), Seed: 11,
		})
		if err != nil {
			log.Fatal(err)
		}
		truth := atk.GroundTruthMapping()
		fmt.Printf("=== %s\n", a)
		fmt.Printf("ground truth:  %s\n", truth)
		fmt.Printf("pure row bits: %v (prior tools rely on these)\n", truth.PureRowBits())

		res := atk.RecoverMappingDetailed()
		if !res.OK() {
			log.Fatalf("recovery failed: %v", res.Err)
		}
		status := "INCORRECT"
		if res.Mapping.Equal(truth) {
			status = "correct"
		}
		fmt.Printf("Algorithm 1:   %s [%s, %.1fs simulated, %d T_SBDR measurements]\n",
			res.Mapping, status, res.Seconds(), res.Measurements)
		fmt.Printf("SBDR threshold: %.1f ns between the %.1f ns and %.1f ns latency clusters\n\n",
			res.Threshold.Threshold, res.Threshold.FastMode, res.Threshold.SlowMode)
	}

	fmt.Println("Key observation: the Alder/Raptor mappings have NO pure row")
	fmt.Println("bits and use bank functions up to 7 bits wide reaching bit 34,")
	fmt.Println("which breaks DRAMDig's search-space reduction and exceeds the")
	fmt.Println("hugepage/superpage reach of DRAMA and DARE. Run `cmd/remap")
	fmt.Println("-tool dramdig -arch \"Raptor Lake\"` to watch them fail.")
}
