// Quickstart: the minimal ρHammer session — recover the platform's DRAM
// address mapping, run the counter-speculation tuning phase, hammer a
// known-good non-uniform pattern, and count the induced bit flips.
package main

import (
	"fmt"
	"log"

	"rhohammer"
)

func main() {
	// A Raptor Lake machine with the vendor-S S3 DIMM: the platform on
	// which conventional load-based attacks produce zero flips.
	atk, err := rhohammer.NewAttack(rhohammer.Options{
		Arch: rhohammer.RaptorLake(),
		DIMM: rhohammer.DIMMS3(),
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s, DIMM %s\n", atk.Arch(), atk.DIMM())

	// Step 1: reverse-engineer the DRAM address mapping (Algorithm 1).
	detail := atk.RecoverMappingDetailed()
	if !detail.OK() {
		log.Fatalf("mapping recovery failed: %v", detail.Err)
	}
	fmt.Printf("recovered mapping in %.1f simulated seconds (%d measurements):\n  %s\n",
		detail.Seconds(), detail.Measurements, detail.Mapping)
	if detail.Mapping.Equal(atk.GroundTruthMapping()) {
		fmt.Println("  (matches the platform ground truth)")
	}

	// Step 2: the baseline fails here — demonstrate it.
	base, err := atk.Hammer(rhohammer.KnownGood(), rhohammer.BaselineConfig(), 0, 4096, 300e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("load-based baseline: %d flips (activation rate %.1f M/s)\n",
		base.FlipCount(), base.ActivationsPerSecond()/1e6)

	// Step 3: ρHammer with counter-speculation revives the attack.
	rho, err := atk.Hammer(rhohammer.KnownGood(), atk.RecommendedConfig(), 0, 4096, 300e6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rhoHammer (%v): %d flips (activation rate %.1f M/s)\n",
		atk.RecommendedConfig(), rho.FlipCount(), rho.ActivationsPerSecond()/1e6)
	for i, f := range rho.Flips {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(rho.Flips)-5)
			break
		}
		fmt.Printf("  flip: %s\n", f)
	}
}
