// Fuzzing campaign: reproduce the Table 6 methodology on one platform —
// fuzz random non-uniform patterns under both the load-based baseline
// and ρHammer's multi-bank counter-speculation strategy, then sweep the
// best pattern across physical locations to estimate the practical flip
// rate (the Fig. 11 metric).
package main

import (
	"fmt"
	"log"

	"rhohammer"
)

func main() {
	atk, err := rhohammer.NewAttack(rhohammer.Options{
		Arch: rhohammer.AlderLake(),
		DIMM: rhohammer.DIMMS4(), // the most flip-prone module
		Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform: %s, DIMM %s\n\n", atk.Arch(), atk.DIMM())

	opt := rhohammer.FuzzOptions{Patterns: 12}

	// Baseline (BL-S): load-based, single bank, no counter-speculation.
	bl, err := atk.FuzzWith(rhohammer.BaselineConfig(), opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline fuzzing:  %d/%d effective patterns, %d total flips\n",
		bl.Effective, bl.Tried, bl.TotalFlips)

	// ρHammer (ρ-M): prefetch, 3 banks, obfuscation + tuned NOPs.
	rho, err := atk.Fuzz(opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rhoHammer fuzzing: %d/%d effective patterns, %d total flips\n",
		rho.Effective, rho.Tried, rho.TotalFlips)
	if rho.Best.Pattern == nil {
		fmt.Println("no effective pattern found; try more patterns or another seed")
		return
	}
	fmt.Printf("best pattern (%d flips during fuzzing):\n  %s\n\n",
		rho.Best.Flips, rho.Best.Pattern)

	// Sweep the best pattern across fresh locations — the templating
	// step real exploits run.
	sw, err := atk.Sweep(rho.Best.Pattern, rhohammer.SweepOptions{Locations: 16})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep over 16 locations: %d flips, %.0f flips/min simulated\n",
		sw.TotalFlips, sw.FlipsPerMinute())
	hit := 0
	for _, p := range sw.Series {
		if p.Flips > 0 {
			hit++
		}
	}
	fmt.Printf("flippable locations: %d/16 (flips depend on physical location)\n", hit)
}
