package rhohammer

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"rhohammer/internal/serve"
)

// docDirs returns every Go package directory the doc check covers: the
// root package, every internal package, and every command.
func docDirs(t *testing.T) []string {
	t.Helper()
	dirs := []string{"."}
	for _, parent := range []string{"internal", "cmd"} {
		entries, err := os.ReadDir(parent)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				dirs = append(dirs, filepath.Join(parent, e.Name()))
			}
		}
	}
	return dirs
}

// TestPackageDocComments requires every package in the repository to
// carry a package doc comment on at least one non-test file. The doc
// comments are the entry points ARCHITECTURE.md links into; a package
// without one is invisible to godoc and to the next reader.
func TestPackageDocComments(t *testing.T) {
	fset := token.NewFileSet()
	for _, dir := range docDirs(t) {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			t.Fatal(err)
		}
		documented := false
		checked := 0
		for _, path := range files {
			if strings.HasSuffix(path, "_test.go") {
				continue
			}
			checked++
			f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.PackageClauseOnly)
			if err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if checked == 0 {
			continue // no non-test Go files (not a package)
		}
		if !documented {
			t.Errorf("package %s has no package doc comment on any file", dir)
		}
	}
}

// TestAPIDocCoversRoutes requires API.md to document every route the
// campaign server registers. serve.Routes() and
// serve.CoordinatorRoutes() are the single sources of truth New
// registers handlers from, so a route added there without a matching
// "## METHOD /path" section fails here — the wire contract and its
// documentation cannot drift apart.
func TestAPIDocCoversRoutes(t *testing.T) {
	data, err := os.ReadFile("API.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	routes := append(serve.Routes(), serve.CoordinatorRoutes()...)
	for _, route := range routes {
		if !strings.Contains(doc, "## "+route) {
			t.Errorf("API.md has no \"## %s\" section", route)
		}
	}
}

// TestOperationsDocCoversMetrics requires OPERATIONS.md (the runbook)
// to explain every metric series the serve layer exposes at /metrics.
// serve.Metrics() is the authoritative name list, so a counter or gauge
// added to the server without a runbook entry fails here — an operator
// paging through an incident never meets an undocumented number.
func TestOperationsDocCoversMetrics(t *testing.T) {
	data, err := os.ReadFile("OPERATIONS.md")
	if err != nil {
		t.Fatal(err)
	}
	doc := string(data)
	for _, name := range serve.Metrics() {
		if !strings.Contains(doc, name) {
			t.Errorf("OPERATIONS.md does not mention the %s metric", name)
		}
	}
}

// mdLink matches markdown inline links, capturing the target.
var mdLink = regexp.MustCompile(`\]\(([^)]+)\)`)

// TestDocLinks checks that every relative link in the root markdown
// documents points at a file that exists, so the doc set cannot rot as
// files move.
func TestDocLinks(t *testing.T) {
	docs, err := filepath.Glob("*.md")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			if _, err := os.Stat(filepath.FromSlash(target)); err != nil {
				t.Errorf("%s: broken relative link %q", doc, m[1])
			}
		}
	}
}
