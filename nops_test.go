package rhohammer

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/experiments"
	"rhohammer/internal/hammer"
)

// TestRecommendedConfigsShareTunedTables pins the single-home property:
// the Attack recommendations and the experiments package must both
// consume the tuned NOP/bank tables in internal/hammer, so the numbers
// can never drift apart again.
func TestRecommendedConfigsShareTunedTables(t *testing.T) {
	for _, a := range arch.All() {
		atk, err := NewAttack(Options{Arch: a})
		if err != nil {
			t.Fatal(err)
		}

		multi := atk.RecommendedConfig()
		if multi.Nops != hammer.TunedNopsMulti(a) {
			t.Errorf("%s: RecommendedConfig Nops %d != hammer.TunedNopsMulti %d",
				a.Name, multi.Nops, hammer.TunedNopsMulti(a))
		}
		if multi.Banks != hammer.OptimalBanks(a) {
			t.Errorf("%s: RecommendedConfig Banks %d != hammer.OptimalBanks %d",
				a.Name, multi.Banks, hammer.OptimalBanks(a))
		}

		single := atk.RecommendedSingleBankConfig()
		if single.Nops != hammer.TunedNops(a) {
			t.Errorf("%s: RecommendedSingleBankConfig Nops %d != hammer.TunedNops %d",
				a.Name, single.Nops, hammer.TunedNops(a))
		}
		if single.Banks != 1 {
			t.Errorf("%s: RecommendedSingleBankConfig Banks = %d, want 1", a.Name, single.Banks)
		}

		// The experiments package draws from the same tables.
		if got := experiments.TunedNops(a); got != hammer.TunedNops(a) {
			t.Errorf("%s: experiments.TunedNops %d != hammer.TunedNops %d",
				a.Name, got, hammer.TunedNops(a))
		}
		if got := experiments.TunedNopsMulti(a); got != hammer.TunedNopsMulti(a) {
			t.Errorf("%s: experiments.TunedNopsMulti %d != hammer.TunedNopsMulti %d",
				a.Name, got, hammer.TunedNopsMulti(a))
		}
		if rhoM := experiments.RhoM(a); rhoM != multi {
			t.Errorf("%s: experiments.RhoM %+v != Attack.RecommendedConfig %+v", a.Name, rhoM, multi)
		}
		if rhoS := experiments.RhoS(a); rhoS != single {
			t.Errorf("%s: experiments.RhoS %+v != Attack.RecommendedSingleBankConfig %+v", a.Name, rhoS, single)
		}
	}
}
