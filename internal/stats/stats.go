// Package stats provides small statistical utilities shared by the
// simulator and the experiment harness: deterministic random sources,
// summary statistics, and fixed-bin histograms.
//
// Everything in this package is purely computational and allocation-light;
// the hot paths of the DRAM and CPU models call into it millions of times
// per experiment.
package stats

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Rand is the random source used throughout the simulator. It is a thin
// alias for *rand.Rand so call sites read naturally while keeping the
// door open for swapping the generator.
type Rand = rand.Rand

// NewRand returns a deterministic random source for the given seed.
// Every experiment threads one of these through explicitly; the simulator
// never touches the global rand state, so runs are reproducible.
func NewRand(seed int64) *Rand {
	return rand.New(rand.NewSource(seed))
}

// SplitSeed derives an independent child seed from a base seed and a
// textual key. The derivation is a pure function of (seed, key) — it
// does not consume any RNG state — so every consumer that knows its own
// key obtains the same stream no matter how many siblings exist, in
// what order they run, or on which goroutine. The campaign runner keys
// every grid cell this way to make parallel execution bit-identical to
// serial execution.
//
// Distinct keys yield decorrelated seeds (FNV-1a avalanches the key
// bytes over the seed); identical keys under different base seeds yield
// distinct streams.
func SplitSeed(seed int64, key string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(key))
	return int64(h.Sum64())
}

// Gaussian draws from N(mean, stddev).
func Gaussian(r *Rand, mean, stddev float64) float64 {
	return r.NormFloat64()*stddev + mean
}

// LogNormal draws from a log-normal distribution where the underlying
// normal has the given mu and sigma. Used for per-cell RowHammer
// thresholds, which are heavily right-skewed on real DIMMs.
func LogNormal(r *Rand, mu, sigma float64) float64 {
	return math.Exp(r.NormFloat64()*sigma + mu)
}

// Summary holds order statistics for a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes summary statistics over xs. It copies and sorts the
// input; callers on hot paths should batch.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = Percentile(sorted, 0.50)
	s.P90 = Percentile(sorted, 0.90)
	s.P99 = Percentile(sorted, 0.99)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range sorted {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-quantile (0 <= p <= 1) of a pre-sorted slice
// using linear interpolation between closest ranks.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Histogram is a fixed-bin histogram over [Lo, Hi). Samples outside the
// range are clamped into the first/last bin so no observation is lost —
// the threshold-finding code depends on seeing the full mass.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	Total  int
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range must be non-empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Bins) {
		i = len(h.Bins) - 1
	}
	h.Bins[i]++
	h.Total++
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + w*(float64(i)+0.5)
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 {
	return (h.Hi - h.Lo) / float64(len(h.Bins))
}

// Density returns the fraction of all samples that landed in bin i.
func (h *Histogram) Density(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Bins[i]) / float64(h.Total)
}

// Modes returns the bin centers of the two latency clusters ("assembly
// areas", Fig. 3): the global maximum (the abundant non-conflict
// cluster) and the strongest peak at a meaningfully separated position
// (the sparse row-conflict cluster), lowest first. ok is false when no
// second cluster with sufficient mass exists.
func (h *Histogram) Modes() (lo, hi float64, ok bool) {
	main := 0
	for i := range h.Bins {
		if h.Bins[i] > h.Bins[main] {
			main = i
		}
	}
	if h.Bins[main] == 0 {
		return 0, 0, false
	}
	// Require the second cluster to be separated from the first by at
	// least 5% of the histogram span and to hold non-trivial mass.
	minSep := len(h.Bins) / 20
	if minSep < 2 {
		minSep = 2
	}
	minMass := h.Total / 400
	if minMass < 2 {
		minMass = 2
	}
	second := -1
	for i := range h.Bins {
		if absInt(i-main) < minSep || h.Bins[i] < minMass {
			continue
		}
		if second < 0 || h.Bins[i] > h.Bins[second] {
			second = i
		}
	}
	if second < 0 {
		return 0, 0, false
	}
	a, b := main, second
	if a > b {
		a, b = b, a
	}
	return h.BinCenter(a), h.BinCenter(b), true
}

// ValleyBetween returns the center of the sparsest bin strictly between
// values a and b — the natural two-cluster separation threshold.
func (h *Histogram) ValleyBetween(a, b float64) float64 {
	if a > b {
		a, b = b, a
	}
	w := h.BinWidth()
	iA := int((a - h.Lo) / w)
	iB := int((b - h.Lo) / w)
	if iA < 0 {
		iA = 0
	}
	if iB >= len(h.Bins) {
		iB = len(h.Bins) - 1
	}
	best, bestCount := (a+b)/2, math.MaxInt
	for i := iA + 1; i < iB; i++ {
		if h.Bins[i] < bestCount {
			bestCount = h.Bins[i]
			best = h.BinCenter(i)
		}
	}
	return best
}

// String renders a compact ASCII sketch of the histogram, useful in the
// experiment harness output.
func (h *Histogram) String() string {
	var sb strings.Builder
	maxC := 0
	for _, c := range h.Bins {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Bins {
		if c == 0 {
			continue
		}
		bar := 1
		if maxC > 0 {
			bar = 1 + c*40/maxC
		}
		fmt.Fprintf(&sb, "%8.1f | %s %d\n", h.BinCenter(i), strings.Repeat("#", bar), c)
	}
	return sb.String()
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
