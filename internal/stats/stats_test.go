package stats

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestNewRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRand(8)
	same := true
	a2 := NewRand(7)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGaussianMoments(t *testing.T) {
	r := NewRand(1)
	n := 20000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := Gaussian(r, 10, 3)
		sum += x
		ss += x * x
	}
	mean := sum / float64(n)
	variance := ss/float64(n) - mean*mean
	if math.Abs(mean-10) > 0.1 {
		t.Errorf("mean = %.3f, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.1 {
		t.Errorf("stddev = %.3f, want ~3", math.Sqrt(variance))
	}
}

func TestLogNormalPositiveAndMedian(t *testing.T) {
	r := NewRand(2)
	n := 20000
	below := 0
	for i := 0; i < n; i++ {
		x := LogNormal(r, 11, 0.25)
		if x <= 0 {
			t.Fatalf("log-normal draw %v <= 0", x)
		}
		if x < math.Exp(11) {
			below++
		}
	}
	// The median of a log-normal is exp(mu).
	frac := float64(below) / float64(n)
	if frac < 0.47 || frac > 0.53 {
		t.Errorf("fraction below exp(mu) = %.3f, want ~0.5", frac)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{5, 1, 3, 2, 4})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if math.Abs(s.Mean-3) > 1e-9 {
		t.Errorf("mean = %v, want 3", s.Mean)
	}
	if math.Abs(s.Stddev-math.Sqrt(2.5)) > 1e-9 {
		t.Errorf("stddev = %v, want sqrt(2.5)", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("input mutated: %v", in)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("Percentile(nil) should be NaN")
	}
	if Percentile([]float64{7}, 0.9) != 7 {
		t.Error("single-element percentile")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean([2 4]) != 3")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	h.Add(5)    // bin 0
	h.Add(95)   // bin 9
	h.Add(-10)  // clamps to bin 0
	h.Add(1000) // clamps to bin 9
	if h.Total != 4 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Bins[0] != 2 || h.Bins[9] != 2 {
		t.Errorf("clamping failed: %v", h.Bins)
	}
	if h.BinWidth() != 10 {
		t.Errorf("bin width = %v", h.BinWidth())
	}
	if h.BinCenter(0) != 5 {
		t.Errorf("bin center = %v", h.BinCenter(0))
	}
	if h.Density(0) != 0.5 {
		t.Errorf("density = %v", h.Density(0))
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics(t, func() { NewHistogram(0, 10, 0) })
	assertPanics(t, func() { NewHistogram(10, 10, 5) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestModesTwoClusters(t *testing.T) {
	h := NewHistogram(0, 400, 100)
	r := NewRand(3)
	// Dominant fast cluster at ~64, sparse slow cluster at ~120 — the
	// Fig. 3 situation.
	for i := 0; i < 1000; i++ {
		h.Add(Gaussian(r, 64, 4))
	}
	for i := 0; i < 40; i++ {
		h.Add(Gaussian(r, 120, 4))
	}
	lo, hi, ok := h.Modes()
	if !ok {
		t.Fatal("modes not found")
	}
	if math.Abs(lo-64) > 8 {
		t.Errorf("fast mode %v, want ~64", lo)
	}
	if math.Abs(hi-120) > 8 {
		t.Errorf("slow mode %v, want ~120", hi)
	}
}

func TestModesSingleCluster(t *testing.T) {
	h := NewHistogram(0, 400, 100)
	r := NewRand(4)
	for i := 0; i < 1000; i++ {
		h.Add(Gaussian(r, 64, 3))
	}
	if _, _, ok := h.Modes(); ok {
		t.Error("found a second mode in unimodal data")
	}
}

func TestModesEmpty(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if _, _, ok := h.Modes(); ok {
		t.Error("modes on empty histogram")
	}
}

func TestValleyBetween(t *testing.T) {
	h := NewHistogram(0, 100, 20)
	for i := 0; i < 50; i++ {
		h.Add(10)
		h.Add(90)
	}
	h.Add(50) // lone middle sample
	v := h.ValleyBetween(10, 90)
	if v < 10 || v > 90 {
		t.Errorf("valley %v outside cluster range", v)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(1)
	h.Add(1)
	if h.String() == "" {
		t.Error("empty rendering for non-empty histogram")
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: histogram total equals the number of Add calls and density
// sums to 1.
func TestHistogramMassProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(-100, 100, 37)
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		if h.Total != n {
			return false
		}
		var mass float64
		for i := range h.Bins {
			mass += h.Density(i)
		}
		return n == 0 || math.Abs(mass-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitSeedProperties(t *testing.T) {
	// Pure function of (seed, key).
	if SplitSeed(42, "table6/Comet Lake/S3/rho-M") != SplitSeed(42, "table6/Comet Lake/S3/rho-M") {
		t.Error("SplitSeed is not deterministic")
	}
	// Distinct keys and distinct base seeds must decorrelate.
	seen := map[int64]string{}
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		for _, key := range []string{"", "a", "b", "a/0", "a/1", "cell/Comet Lake"} {
			s := SplitSeed(seed, key)
			id := fmt.Sprintf("%d|%s", seed, key)
			if prev, dup := seen[s]; dup {
				t.Errorf("collision: %s and %s both derive %d", prev, id, s)
			}
			seen[s] = id
		}
	}
	// Derived streams must differ from each other, not just the seeds.
	a := NewRand(SplitSeed(42, "a")).Int63()
	b := NewRand(SplitSeed(42, "b")).Int63()
	if a == b {
		t.Error("sibling streams coincide")
	}
}
