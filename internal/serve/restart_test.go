package serve

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rhohammer/internal/campaign"
	"rhohammer/internal/store"
)

// completeGrant executes a grant's cells against a locally rebuilt spec
// and posts the completion, exactly as a live worker would.
func completeGrant(t *testing.T, ts *httptest.Server, reg *campaign.Registry, workerID string, grant *leaseGrant) {
	t.Helper()
	entry, _ := reg.Lookup(grant.Spec)
	spec := entry.Build(campaign.Params{Seed: grant.Seed, Scale: grant.Scale})
	comp := completeRequest{Worker: workerID}
	for _, c := range grant.Cells {
		result, err := spec.Exec(spec.Cells[c.Index], spec.CellSeed(c.Key))
		if err != nil {
			t.Fatal(err)
		}
		data, err := campaign.EncodeResult(result)
		if err != nil {
			t.Fatal(err)
		}
		comp.Cells = append(comp.Cells, completedCell{
			Index: c.Index, Key: c.Key, Result: data,
			Stat: campaign.CellStat{Key: c.Key, Seed: spec.CellSeed(c.Key), Attempts: 1},
		})
	}
	body, _ := jsonBody(comp)
	code, _ := doJSON(t, "POST", ts.URL+"/v1/leases/"+grant.LeaseID+"/complete", body, nil)
	if code != http.StatusOK {
		t.Fatalf("complete = %d, want 200", code)
	}
}

// acquireLease polls POST /v1/leases until the coordinator grants one
// (the job may not have reached the distributor yet).
func acquireLease(t *testing.T, ts *httptest.Server, workerID string) *leaseGrant {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		var grant leaseGrant
		code, _ := doJSON(t, "POST", ts.URL+"/v1/leases", `{"worker":"`+workerID+`"}`, &grant)
		switch code {
		case http.StatusCreated:
			return &grant
		case http.StatusNoContent:
			time.Sleep(2 * time.Millisecond)
		default:
			t.Fatalf("lease = %d", code)
		}
	}
	t.Fatal("no lease granted")
	return nil
}

// TestRestartRecoveryDeterminism is the durability pin: a coordinator
// accepts a job, workers complete half the cells over the wire, and the
// coordinator is killed without any shutdown courtesy (the store is
// closed as a crash would leave it). A fresh coordinator on the same
// store directory must resume the job, re-lease only the incomplete
// cells, and publish an envelope byte-identical to an uninterrupted
// standalone run — and a further restart must keep serving the terminal
// result from its snapshot.
func TestRestartRecoveryDeterminism(t *testing.T) {
	reg := tinyRegistry()
	want := standaloneEnvelope(t, reg, `{"spec":"tiny","seed":7}`)
	cfg := Config{
		Registry: reg, Coordinator: true, StoreDir: t.TempDir(),
		LeaseBatch: 2, LeaseTTL: 30 * time.Second,
	}

	// Incarnation 1: half the job completes, then the process "dies".
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	var wr registerResponse
	doJSON(t, "POST", ts1.URL+"/v1/workers", `{"name":"pre-crash"}`, &wr)
	id := submit(t, ts1, `{"spec":"tiny","seed":7}`)
	grant := acquireLease(t, ts1, wr.ID)
	if len(grant.Cells) != 2 {
		t.Fatalf("grant has %d cells, want the batch bound 2", len(grant.Cells))
	}
	completeGrant(t, ts1, reg, wr.ID, grant)
	var st jobStatus
	if code, _ := doJSON(t, "GET", ts1.URL+"/v1/jobs/"+id, "", &st); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !st.Persisted || st.Recovered || st.CellsDone != 2 {
		t.Fatalf("pre-crash status = %+v, want persisted with 2 cells done", st)
	}
	s1.crash()
	ts1.Close()

	// Incarnation 2: the job comes back with its completed cells intact
	// and finishes on fresh workers.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	code, _ := doJSON(t, "GET", ts2.URL+"/v1/jobs/"+id, "", &st)
	if code != http.StatusOK {
		t.Fatalf("recovered status = %d", code)
	}
	if !st.Recovered || !st.Persisted || st.CellsDone != 2 || st.State.terminal() {
		t.Fatalf("recovered status = %+v, want in-flight with 2 cells recovered", st)
	}
	startWorkers(t, ts2, reg, 2)
	fin := waitTerminal(t, ts2, id)
	if fin.State != StateDone {
		t.Fatalf("recovered job = %s (%s)", fin.State, fin.Error)
	}
	code, got := fetch(t, ts2.URL+fin.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("post-restart envelope differs from standalone:\n got: %s\nwant: %s", got, want)
	}
	s2.crash()
	ts2.Close()

	// Incarnation 3: the terminal job is served from its snapshot, and
	// its envelope has re-warmed the result cache.
	_, ts3 := newTestServer(t, cfg)
	code, _ = doJSON(t, "GET", ts3.URL+"/v1/jobs/"+id, "", &st)
	if code != http.StatusOK || st.State != StateDone || !st.Recovered || st.CellsDone != 4 {
		t.Fatalf("snapshot status = %d %+v, want recovered done job", code, st)
	}
	code, got = fetch(t, ts3.URL+st.ResultURL)
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("snapshot result = %d, bytes equal %v", code, bytes.Equal(got, want))
	}
	id2 := submit(t, ts3, `{"spec":"tiny","seed":7}`)
	if st2 := waitTerminal(t, ts3, id2); !st2.Cached {
		t.Errorf("resubmission after restart not served from cache: %+v", st2)
	}
	if id2 == id {
		t.Errorf("job ID sequence not advanced past recovered IDs: %s", id2)
	}
}

// TestResumeLocalRunDeterminism covers the non-coordinator resume path:
// a journal holding a half-complete local job is replayed by a plain
// server, which must execute only the missing cells and assemble the
// byte-identical envelope.
func TestResumeLocalRunDeterminism(t *testing.T) {
	reg := tinyRegistry()
	want := standaloneEnvelope(t, reg, `{"spec":"tiny","seed":7}`)

	dir := t.TempDir()
	st, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	const id = "job-000005"
	if err := st.AppendJob(store.JobMeta{
		ID: id, Spec: "tiny", Seed: 7, Scale: 1, Created: time.Unix(0, 42).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	entry, _ := reg.Lookup("tiny")
	spec := entry.Build(campaign.Params{Seed: 7, Scale: 1})
	for _, idx := range []int{1, 3} {
		key := spec.Cells[idx].Key
		seed := spec.CellSeed(key)
		result, execErr := spec.Exec(spec.Cells[idx], seed)
		if execErr != nil {
			t.Fatal(execErr)
		}
		data, encErr := campaign.EncodeResult(result)
		if encErr != nil {
			t.Fatal(encErr)
		}
		if err := st.AppendCell(id, store.CellResult{
			Index: idx, Key: key, Node: "w-gone",
			Stat:   campaign.CellStat{Key: key, Seed: seed, Attempts: 1},
			Result: data,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, Config{Registry: reg, StoreDir: dir})
	fin := waitTerminal(t, ts, id)
	if fin.State != StateDone || !fin.Recovered || !fin.Persisted || fin.CellsDone != 4 {
		t.Fatalf("resumed job = %+v, want recovered done job with 4 cells", fin)
	}
	code, got := fetch(t, ts.URL+fin.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("resumed envelope differs from standalone:\n got: %s\nwant: %s", got, want)
	}
}

// TestRecoveryUnknownSpecFailsLoud: a journaled job whose spec is no
// longer in the registry cannot be rebuilt. It must fail terminally —
// visible in the API, snapshotted so the journal stops carrying it —
// without blocking jobs that can recover.
func TestRecoveryUnknownSpecFailsLoud(t *testing.T) {
	dir := t.TempDir()
	st, _, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendJob(store.JobMeta{
		ID: "job-000001", Spec: "retired", Seed: 1, Scale: 1, Created: time.Unix(0, 42).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendJob(store.JobMeta{
		ID: "job-000002", Spec: "tiny", Seed: 7, Scale: 1, Created: time.Unix(0, 43).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	reg := tinyRegistry()
	_, ts := newTestServer(t, Config{Registry: reg, StoreDir: dir})

	ghost := waitTerminal(t, ts, "job-000001")
	if ghost.State != StateFailed || ghost.Error == "" {
		t.Fatalf("unknown-spec job = %+v, want failed with explanatory error", ghost)
	}
	if want := `"retired"`; !bytes.Contains([]byte(ghost.Error), []byte(want)) {
		t.Errorf("error %q does not name the missing spec", ghost.Error)
	}
	survivor := waitTerminal(t, ts, "job-000002")
	if survivor.State != StateDone || !survivor.Recovered {
		t.Errorf("recoverable job held hostage: %+v", survivor)
	}

	// A restart must not resurrect the failed job as in-flight: its
	// failure was snapshotted.
	_, recovered, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range recovered.Jobs {
		if j.Meta.ID == "job-000001" {
			t.Errorf("failed job still journaled as in-flight")
		}
	}
	found := false
	for _, snap := range recovered.Snapshots {
		if snap.ID == "job-000001" && snap.State == string(StateFailed) {
			found = true
		}
	}
	if !found {
		t.Errorf("failed job has no terminal snapshot")
	}
}

// TestWorkerDrainRoute walks POST /v1/workers/{name}/drain: resolution
// by ID and by unique name, 404 for strangers, 409 for ambiguous names,
// and the core behavior — a draining worker is refused leases even when
// cells are pending, while a healthy worker still gets them.
func TestWorkerDrainRoute(t *testing.T) {
	reg := tinyRegistry()
	_, ts := newTestServer(t, Config{Registry: reg, Coordinator: true, LeaseBatch: 2, LeaseTTL: 30 * time.Second})

	var alpha, dup1, dup2 registerResponse
	doJSON(t, "POST", ts.URL+"/v1/workers", `{"name":"alpha"}`, &alpha)
	doJSON(t, "POST", ts.URL+"/v1/workers", `{"name":"dup"}`, &dup1)
	doJSON(t, "POST", ts.URL+"/v1/workers", `{"name":"dup"}`, &dup2)

	if code, _ := doJSON(t, "POST", ts.URL+"/v1/workers/ghost/drain", "", nil); code != http.StatusNotFound {
		t.Errorf("drain unknown worker = %d, want 404", code)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/workers/dup/drain", "", nil); code != http.StatusConflict {
		t.Errorf("drain ambiguous name = %d, want 409", code)
	}
	var ws workerStatus
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/workers/alpha/drain", "", &ws); code != http.StatusOK || !ws.Draining || ws.ID != alpha.ID {
		t.Fatalf("drain by name = %d %+v", code, ws)
	}
	// Idempotent, and IDs resolve too.
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/workers/"+alpha.ID+"/drain", "", &ws); code != http.StatusOK || !ws.Draining {
		t.Fatalf("drain by ID = %d %+v", code, ws)
	}

	// Work arrives; the healthy worker leases half and holds it, so
	// cells are verifiably pending when the draining worker asks.
	id := submit(t, ts, `{"spec":"tiny","seed":7}`)
	grant := acquireLease(t, ts, dup1.ID)
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/leases", `{"worker":"`+alpha.ID+`"}`, nil); code != http.StatusNoContent {
		t.Errorf("draining worker acquired work: %d, want 204", code)
	}

	// The listing shows who is draining and who holds leases.
	var list []workerStatus
	doJSON(t, "GET", ts.URL+"/v1/workers", "", &list)
	byID := map[string]workerStatus{}
	for _, w := range list {
		byID[w.ID] = w
	}
	if !byID[alpha.ID].Draining || byID[dup1.ID].Draining {
		t.Errorf("draining flags wrong in listing: %+v", list)
	}
	if byID[dup1.ID].LeasesHeld != 1 || byID[alpha.ID].LeasesHeld != 0 {
		t.Errorf("leases_held wrong in listing: %+v", list)
	}

	// The job still completes through the healthy worker.
	completeGrant(t, ts, reg, dup1.ID, grant)
	completeGrant(t, ts, reg, dup1.ID, acquireLease(t, ts, dup1.ID))
	if fin := waitTerminal(t, ts, id); fin.State != StateDone {
		t.Errorf("job with draining worker = %s (%s)", fin.State, fin.Error)
	}
}

// TestWorkerClientBeginDrain: BeginDrain makes Run return nil once idle
// and flips the coordinator-side draining flag so no further leases are
// offered in the meantime.
func TestWorkerClientBeginDrain(t *testing.T) {
	reg := tinyRegistry()
	_, ts := newTestServer(t, Config{Registry: reg, Coordinator: true})
	w := &Worker{Coordinator: ts.URL, Registry: reg, Name: "leaver", Poll: 2 * time.Millisecond}
	done := make(chan error, 1)
	go func() { done <- w.Run(context.Background()) }()

	deadline := time.Now().Add(10 * time.Second)
	for w.ID() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if w.ID() == "" {
		t.Fatal("worker never registered")
	}
	w.BeginDrain(context.Background())
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drained Run returned %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not exit after BeginDrain")
	}
	var list []workerStatus
	doJSON(t, "GET", ts.URL+"/v1/workers", "", &list)
	if len(list) != 1 || !list[0].Draining {
		t.Errorf("coordinator not told about the drain: %+v", list)
	}
}

// TestStoreGaugesExposed: the queue-depth gauges land in /metrics with
// live values.
func TestStoreGaugesExposed(t *testing.T) {
	reg := tinyRegistry()
	_, ts := newTestServer(t, Config{Registry: reg, Coordinator: true, LeaseTTL: 30 * time.Second})
	id := submit(t, ts, `{"spec":"tiny","seed":7}`)

	// With no workers, all four cells sit pending.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, body := fetch(t, ts.URL+"/metrics")
		if bytes.Contains(body, []byte("rhohammer_serve_pending_cells 4")) {
			if !bytes.Contains(body, []byte("rhohammer_serve_oldest_pending_seconds")) {
				t.Errorf("oldest-pending gauge missing:\n%s", body)
			}
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("pending-cells gauge never reached 4:\n%s", body)
		}
		time.Sleep(2 * time.Millisecond)
	}

	startWorkers(t, ts, reg, 1)
	if fin := waitTerminal(t, ts, id); fin.State != StateDone {
		t.Fatalf("job = %s", fin.State)
	}
	_, body := fetch(t, ts.URL+"/metrics")
	if !bytes.Contains(body, []byte("rhohammer_serve_pending_cells 0")) {
		t.Errorf("pending-cells gauge not drained:\n%s", body)
	}
}
