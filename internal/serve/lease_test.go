package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rhohammer/internal/campaign"
)

// startWorkers runs n in-process Workers against a coordinator until
// test cleanup. Tests must wait for their jobs to finish before
// returning — cleanup stops the workers before the server drains.
func startWorkers(t *testing.T, ts *httptest.Server, reg *campaign.Registry, n int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{
			Coordinator: ts.URL,
			Registry:    reg,
			Name:        fmt.Sprintf("node-%d", i),
			Poll:        5 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		wg.Wait()
	})
}

// standaloneEnvelope runs a spec to completion on a plain
// (non-coordinator) server and returns its canonical result bytes.
func standaloneEnvelope(t *testing.T, reg *campaign.Registry, body string) []byte {
	t.Helper()
	_, ts := newTestServer(t, Config{Registry: reg})
	id := submit(t, ts, body)
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("standalone job = %s (%s)", st.State, st.Error)
	}
	code, data := fetch(t, ts.URL+st.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("standalone result = %d", code)
	}
	return data
}

// TestLeaseLifecycle walks the wire protocol by hand: register,
// acquire, renew, complete, and every error path API.md documents.
func TestLeaseLifecycle(t *testing.T) {
	reg := tinyRegistry()
	want := standaloneEnvelope(t, reg, `{"spec":"tiny","seed":7}`)

	_, ts := newTestServer(t, Config{Registry: reg, Coordinator: true, LeaseBatch: 2, LeaseTTL: 30 * time.Second})

	// Register a worker; the coordinator assigns the ID and shares its TTL.
	var wr registerResponse
	code, _ := doJSON(t, "POST", ts.URL+"/v1/workers", `{"name":"handwork"}`, &wr)
	if code != http.StatusCreated || wr.ID == "" || wr.LeaseTTLNS != int64(30*time.Second) {
		t.Fatalf("register = %d %+v", code, wr)
	}

	// No jobs yet: acquiring returns 204 No Content.
	code, _ = doJSON(t, "POST", ts.URL+"/v1/leases", `{"worker":"`+wr.ID+`"}`, nil)
	if code != http.StatusNoContent {
		t.Fatalf("lease with no work = %d, want 204", code)
	}
	// And an unregistered acquire is a 400.
	code, _ = doJSON(t, "POST", ts.URL+"/v1/leases", `{}`, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("lease without worker = %d, want 400", code)
	}

	id := submit(t, ts, `{"spec":"tiny","seed":7}`)

	// Drain the job two cells at a time, exactly as a worker would.
	entry, _ := reg.Lookup("tiny")
	spec := entry.Build(campaign.Params{Seed: 7, Scale: 1})
	seen := map[string]bool{}
	for lease := 0; lease < 2; lease++ {
		var grant leaseGrant
		code, _ = doJSON(t, "POST", ts.URL+"/v1/leases", `{"worker":"`+wr.ID+`"}`, &grant)
		if code != http.StatusCreated {
			t.Fatalf("lease %d = %d, want 201", lease, code)
		}
		if grant.JobID != id || grant.Spec != "tiny" || grant.Seed != 7 || grant.Scale != 1 {
			t.Fatalf("grant = %+v", grant)
		}
		if len(grant.Cells) != 2 {
			t.Fatalf("grant %d has %d cells, want the batch bound 2", lease, len(grant.Cells))
		}

		// Renewing an active lease extends the deadline.
		var rn renewResponse
		code, _ = doJSON(t, "POST", ts.URL+"/v1/leases/"+grant.LeaseID+"/renew", `{}`, &rn)
		if code != http.StatusOK || rn.Deadline == "" {
			t.Fatalf("renew = %d %+v", code, rn)
		}

		// Execute the granted cells with the derived seeds and post back.
		comp := completeRequest{Worker: wr.ID}
		for _, c := range grant.Cells {
			if seen[c.Key] {
				t.Fatalf("cell %s leased twice", c.Key)
			}
			seen[c.Key] = true
			result, err := spec.Exec(spec.Cells[c.Index], spec.CellSeed(c.Key))
			if err != nil {
				t.Fatal(err)
			}
			data, err := campaign.EncodeResult(result)
			if err != nil {
				t.Fatal(err)
			}
			comp.Cells = append(comp.Cells, completedCell{
				Index: c.Index, Key: c.Key, Result: data,
				Stat: campaign.CellStat{Key: c.Key, Seed: spec.CellSeed(c.Key), Attempts: 1},
			})
		}
		body, _ := jsonBody(comp)
		code, _ = doJSON(t, "POST", ts.URL+"/v1/leases/"+grant.LeaseID+"/complete", body, nil)
		if code != http.StatusOK {
			t.Fatalf("complete %d = %d, want 200", lease, code)
		}
	}

	// All four cells completed over the wire: the job finishes and the
	// merged envelope is byte-identical to the standalone run.
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job = %s (%s)", st.State, st.Error)
	}
	code, got := fetch(t, ts.URL+st.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("merged envelope differs from standalone:\n got: %s\nwant: %s", got, want)
	}

	// The manifest records which node ran each cell.
	_, manifest := fetch(t, ts.URL+st.ManifestURL)
	if !strings.Contains(string(manifest), `"node": "`+wr.ID+`"`) || !strings.Contains(string(manifest), `"nodes"`) {
		t.Errorf("manifest missing node records: %s", manifest)
	}

	// Worker listing reflects the work done.
	var workers []workerStatus
	code, _ = doJSON(t, "GET", ts.URL+"/v1/workers", "", &workers)
	if code != http.StatusOK || len(workers) != 1 || workers[0].Cells != 4 || workers[0].Leases != 2 {
		t.Errorf("GET /v1/workers = %d %+v", code, workers)
	}

	// Exhausted queue: 204 again. Stale lease IDs: 410 on both routes.
	code, _ = doJSON(t, "POST", ts.URL+"/v1/leases", `{"worker":"`+wr.ID+`"}`, nil)
	if code != http.StatusNoContent {
		t.Errorf("lease after completion = %d, want 204", code)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/leases/lease-999999/renew", `{}`, nil)
	if code != http.StatusGone {
		t.Errorf("renew unknown lease = %d, want 410", code)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/leases/lease-999999/complete", `{"worker":"`+wr.ID+`","cells":[]}`, nil)
	if code != http.StatusGone {
		t.Errorf("complete unknown lease = %d, want 410", code)
	}
}

// TestLeaseReclaimFaultInjection kills a worker mid-lease: a client
// that acquires cells and silently dies (never renews, never
// completes). The coordinator must reclaim the cells at the deadline,
// re-lease them to a live worker, and still produce the byte-identical
// envelope — the fabric's whole failure-tolerance story.
func TestLeaseReclaimFaultInjection(t *testing.T) {
	reg := tinyRegistry()
	want := standaloneEnvelope(t, reg, `{"spec":"tiny","seed":7}`)

	_, ts := newTestServer(t, Config{
		Registry: reg, Coordinator: true,
		LeaseBatch: 2, LeaseTTL: 100 * time.Millisecond,
	})

	// The doomed worker grabs a lease and vanishes.
	var dead registerResponse
	doJSON(t, "POST", ts.URL+"/v1/workers", `{"name":"doomed"}`, &dead)
	id := submit(t, ts, `{"spec":"tiny","seed":7}`)
	var grant leaseGrant
	code, _ := doJSON(t, "POST", ts.URL+"/v1/leases", `{"worker":"`+dead.ID+`"}`, &grant)
	if code != http.StatusCreated || len(grant.Cells) != 2 {
		t.Fatalf("doomed lease = %d %+v", code, grant)
	}

	// A healthy worker joins; after the TTL passes, the dead worker's
	// cells are re-leased to it and the job completes.
	startWorkers(t, ts, reg, 1)
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job after reclaim = %s (%s)", st.State, st.Error)
	}
	code, got := fetch(t, ts.URL+st.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("envelope after reclaim differs from standalone:\n got: %s\nwant: %s", got, want)
	}

	// The dead worker rising from the grave gets 410 — its lease was
	// reclaimed, its late results are discarded.
	code, _ = doJSON(t, "POST", ts.URL+"/v1/leases/"+grant.LeaseID+"/renew", `{}`, nil)
	if code != http.StatusGone {
		t.Errorf("late renew = %d, want 410", code)
	}
	code, _ = doJSON(t, "POST", ts.URL+"/v1/leases/"+grant.LeaseID+"/complete", `{"worker":"`+dead.ID+`","cells":[]}`, nil)
	if code != http.StatusGone {
		t.Errorf("late complete = %d, want 410", code)
	}
}

// TestDistributedCancel: DELETE on a distributed job with no workers
// must cancel promptly — pending cells are withdrawn, nothing hangs.
func TestDistributedCancel(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry(), Coordinator: true})
	id := submit(t, ts, `{"spec":"tiny","seed":7}`)
	// No workers exist, so the job sits with all cells pending.
	time.Sleep(10 * time.Millisecond)
	code, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, "", nil)
	if code != http.StatusAccepted {
		t.Fatalf("DELETE = %d", code)
	}
	st := waitTerminal(t, ts, id)
	if st.State != StateCanceled {
		t.Errorf("state = %s, want canceled", st.State)
	}
}

// TestWorkerSubSpecVerification: a worker must refuse a grant whose
// cells don't match its local registry build (registry skew).
func TestWorkerSubSpecVerification(t *testing.T) {
	w := &Worker{Registry: tinyRegistry()}
	if _, err := w.subSpec(&leaseGrant{Spec: "nope", Seed: 7, Scale: 1}); err == nil {
		t.Error("unknown spec accepted")
	}
	if _, err := w.subSpec(&leaseGrant{Spec: "tiny", Seed: 7, Scale: 1,
		Cells: []leaseCell{{Index: 0, Key: "wrong"}}}); err == nil || !strings.Contains(err.Error(), "skew") {
		t.Errorf("key mismatch: %v", err)
	}
	if _, err := w.subSpec(&leaseGrant{Spec: "tiny", Seed: 7, Scale: 1,
		Cells: []leaseCell{{Index: 99, Key: "a"}}}); err == nil {
		t.Error("out-of-range index accepted")
	}
	sub, err := w.subSpec(&leaseGrant{Spec: "tiny", Seed: 7, Scale: 1,
		Cells: []leaseCell{{Index: 2, Key: "c"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub.Cells) != 1 || sub.Cells[0].Key != "c" || sub.CellSeed("c") == 0 {
		t.Errorf("sub-spec = %+v", sub.Cells)
	}
}

// jsonBody marshals a request body for doJSON.
func jsonBody(v any) (string, error) {
	data, err := json.Marshal(v)
	return string(data), err
}
