package serve

import (
	"bytes"
	"net/http"
	"strconv"
	"testing"

	"rhohammer/internal/experiments"
)

// TestHTTPResultMatchesCLIEnvelope pins the serving determinism
// contract end to end on the real experiment registry: the result a
// job produces over HTTP with seed S is byte-identical to what
// `cmd/experiments -json -canon -only <spec> -seed S` writes (the CLI
// calls exactly the RunOutcome + WriteCanonicalOutcomeJSON pair used
// below), for every per-job parallelism and shard-pool size.
func TestHTTPResultMatchesCLIEnvelope(t *testing.T) {
	const spec, seed = "table2", 123

	// The CLI path: registry build, Runner run, canonical envelope.
	cliBytes := func(workers int) []byte {
		cfg := experiments.Config{Seed: seed, Scale: 1, Workers: workers}
		res, out, err := experiments.RunOutcome(spec, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := experiments.WriteCanonicalOutcomeJSON(&buf, spec, cfg, res, out); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	want := cliBytes(1)

	for _, shards := range []int{1, 3} {
		_, ts := newTestServer(t, Config{Registry: experiments.Registry, Shards: shards})
		for _, parallel := range []int{1, 2, 8} {
			id := submit(t, ts, `{"spec":"`+spec+`","seed":123,"parallel":`+strconv.Itoa(parallel)+`}`)
			st := waitTerminal(t, ts, id)
			if st.State != StateDone {
				t.Fatalf("shards=%d parallel=%d: job = %s (%s)", shards, parallel, st.State, st.Error)
			}
			code, got := fetch(t, ts.URL+st.ResultURL)
			if code != http.StatusOK {
				t.Fatalf("GET result = %d", code)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("shards=%d parallel=%d: HTTP envelope differs from CLI envelope\n got: %s\nwant: %s",
					shards, parallel, got, want)
			}
		}
	}

	// And the CLI itself is worker-count independent, so the comparison
	// above is against a canonical artifact, not a coincidence.
	if !bytes.Equal(cliBytes(4), want) {
		t.Error("CLI canonical envelope varies with -parallel")
	}
}
