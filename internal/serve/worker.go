package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"rhohammer/internal/campaign"
)

// Worker is the fabric's data plane: a client that registers with a
// coordinator, leases batches of cells, executes them locally against
// its own copy of the registry, and posts gob-encoded results back.
// Determinism needs nothing from the worker beyond the obvious: it
// rebuilds the spec from (name, seed, scale) — both binaries embed the
// same registry — verifies each leased cell's key, and runs the cells
// with the seeds those keys derive. Where a cell runs can then never
// change what it computes.
//
// A renewer goroutine heartbeats each lease at a third of its TTL; if
// the worker dies instead, the coordinator reclaims the lease at its
// deadline and re-leases the cells elsewhere (see SCALING.md).
type Worker struct {
	// Coordinator is the coordinator's base URL (e.g.
	// "http://127.0.0.1:8077"). Required.
	Coordinator string
	// Registry resolves leased spec names. It must be the same registry
	// the coordinator serves — the experiments registry in serverd.
	// Required.
	Registry *campaign.Registry
	// Name is the worker's human-readable label in GET /v1/workers and
	// manifests. Optional.
	Name string
	// Parallel bounds cell concurrency within a leased batch
	// (campaign.Runner workers; 0 = GOMAXPROCS).
	Parallel int
	// MaxCells caps the batch requested per lease; 0 defers to the
	// coordinator's bound.
	MaxCells int
	// Poll is how long to sleep when the coordinator has no work.
	// Default 200ms.
	Poll time.Duration
	// Client is the HTTP client used for every call; nil means
	// http.DefaultClient.
	Client *http.Client

	// id is atomic because BeginDrain and ID are meant to be called
	// from outside the Run goroutine (signal handlers, tests) while
	// registration may still be in flight.
	id  atomic.Pointer[string]
	ttl time.Duration

	// draining is set by BeginDrain: Run finishes the lease it is
	// serving (if any) and then acquires no more.
	draining atomic.Bool
}

// Run registers the worker and processes leases until ctx is
// cancelled, which is the only non-error way out. Transient coordinator
// failures (connection refused, 5xx) are retried with the poll delay;
// the first successful registration pins the worker's ID and the
// coordinator's lease TTL.
func (w *Worker) Run(ctx context.Context) error {
	if w.Coordinator == "" || w.Registry == nil {
		return errors.New("serve: Worker needs Coordinator and Registry")
	}
	poll := w.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	for w.ID() == "" {
		if err := w.register(ctx); err != nil {
			if sleepErr := sleepCtx(ctx, poll); sleepErr != nil {
				return sleepErr
			}
			continue
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.draining.Load() {
			// BeginDrain: any in-flight lease has already been served to
			// completion by the time the loop comes back around, so the
			// worker is idle and can exit cleanly.
			return nil
		}
		grant, err := w.acquire(ctx)
		if err != nil || grant == nil {
			// No work (204) and transient errors look the same from the
			// loop: wait and ask again.
			if sleepErr := sleepCtx(ctx, poll); sleepErr != nil {
				return sleepErr
			}
			continue
		}
		w.serve(ctx, grant)
	}
}

// ID returns the coordinator-assigned worker ID ("" before
// registration succeeds).
func (w *Worker) ID() string {
	if p := w.id.Load(); p != nil {
		return *p
	}
	return ""
}

// BeginDrain asks the worker to wind down: Run finishes whatever lease
// it is currently serving, acquires no more, and returns nil. When the
// worker has registered, the coordinator is also told (best-effort) so
// it stops offering this worker leases immediately rather than at the
// worker's next acquire — the operator-facing equivalent is
// POST /v1/workers/{name}/drain (see OPERATIONS.md). Idempotent.
func (w *Worker) BeginDrain(ctx context.Context) {
	if w.draining.Swap(true) {
		return
	}
	if id := w.ID(); id != "" {
		_, _ = w.call(ctx, "POST", "/v1/workers/"+id+"/drain", struct{}{}, nil)
	}
}

// register performs POST /v1/workers, adopting the assigned ID and the
// coordinator's lease TTL.
func (w *Worker) register(ctx context.Context) error {
	var resp registerResponse
	code, err := w.call(ctx, "POST", "/v1/workers", registerRequest{Name: w.Name}, &resp)
	if err != nil {
		return err
	}
	if code != http.StatusCreated {
		return fmt.Errorf("serve: register: coordinator returned %d", code)
	}
	w.ttl = time.Duration(resp.LeaseTTLNS)
	w.id.Store(&resp.ID)
	return nil
}

// acquire performs POST /v1/leases; nil grant means no work (204).
func (w *Worker) acquire(ctx context.Context) (*leaseGrant, error) {
	var grant leaseGrant
	code, err := w.call(ctx, "POST", "/v1/leases", acquireRequest{Worker: w.ID(), MaxCells: w.MaxCells}, &grant)
	if err != nil {
		return nil, err
	}
	switch code {
	case http.StatusCreated:
		return &grant, nil
	case http.StatusNoContent:
		return nil, nil
	default:
		return nil, fmt.Errorf("serve: lease: coordinator returned %d", code)
	}
}

// serve executes one granted lease end to end: rebuild the sub-spec,
// heartbeat while running, post completion. Failures inside a cell are
// reported through the cell's stat; a lost lease (410) means the
// results belong to nobody and are dropped.
func (w *Worker) serve(ctx context.Context, grant *leaseGrant) {
	sub, err := w.subSpec(grant)
	if err != nil {
		// A spec mismatch is unrecoverable for this lease; let it expire
		// so the coordinator re-leases (possibly to a compatible worker).
		return
	}

	// Renew at a third of the TTL until execution finishes. A failed
	// renewal (coordinator restart, lease reclaimed) stops the
	// heartbeat; completion will then get 410 and drop the batch.
	renewCtx, stopRenew := context.WithCancel(ctx)
	defer stopRenew()
	go w.renewLoop(renewCtx, grant.LeaseID)

	out, runErr := campaign.Runner{Workers: w.Parallel}.RunContext(ctx, sub)
	stopRenew()
	if out == nil {
		// Validation failure only; nothing to report.
		_ = runErr
		return
	}

	req := completeRequest{Worker: w.ID()}
	for i := range sub.Cells {
		cc := completedCell{Index: grant.Cells[i].Index, Key: grant.Cells[i].Key, Stat: out.Cells[i]}
		if out.Cells[i].Err == "" {
			data, encErr := campaign.EncodeResult(out.Results[i])
			if encErr != nil {
				cc.Stat.Err = encErr.Error()
			} else {
				cc.Result = data
			}
		}
		req.Cells = append(req.Cells, cc)
	}
	// Completion is best-effort: on 410 the lease expired and the cells
	// are already back in the pending queue; a re-run elsewhere is
	// byte-identical, so dropping this batch is safe.
	w.call(ctx, "POST", "/v1/leases/"+grant.LeaseID+"/complete", req, nil)
}

// subSpec rebuilds the leased sub-grid: the full spec from the
// registry at the grant's (seed, scale), narrowed to the granted cells,
// with every key cross-checked — a registry skew between coordinator
// and worker must fail loudly, not compute wrong cells.
func (w *Worker) subSpec(grant *leaseGrant) (campaign.Spec, error) {
	entry, ok := w.Registry.Lookup(grant.Spec)
	if !ok {
		return campaign.Spec{}, fmt.Errorf("serve: leased spec %q not in worker registry", grant.Spec)
	}
	full := entry.Build(campaign.Params{Seed: grant.Seed, Scale: grant.Scale})
	sub := full
	sub.Cells = nil
	for _, c := range grant.Cells {
		if c.Index < 0 || c.Index >= len(full.Cells) {
			return campaign.Spec{}, fmt.Errorf("serve: leased cell index %d out of range for %q", c.Index, grant.Spec)
		}
		if full.Cells[c.Index].Key != c.Key {
			return campaign.Spec{}, fmt.Errorf("serve: leased cell %d key %q != local %q (registry skew?)", c.Index, c.Key, full.Cells[c.Index].Key)
		}
		sub.Cells = append(sub.Cells, full.Cells[c.Index])
	}
	return sub, nil
}

// renewLoop heartbeats one lease until its context is cancelled or a
// renewal is refused.
func (w *Worker) renewLoop(ctx context.Context, leaseID string) {
	interval := w.ttl / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			code, err := w.call(ctx, "POST", "/v1/leases/"+leaseID+"/renew", struct{}{}, nil)
			if err == nil && code != http.StatusOK {
				return // lease gone; completion will 410 and drop
			}
		}
	}
}

// call issues one JSON request against the coordinator, decoding a
// JSON response body into out when non-nil and the status is 2xx.
func (w *Worker) call(ctx context.Context, method, path string, body, out any) (int, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, method, w.Coordinator+path, bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	client := w.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// sleepCtx sleeps for d or until ctx is done, returning ctx's error in
// the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
