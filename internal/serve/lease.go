package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"rhohammer/internal/campaign"
	"rhohammer/internal/obs"
)

// Coordinator mode: the distributed campaign fabric's control plane
// (SCALING.md is the design document, API.md the wire contract).
//
// A coordinator does not execute registered-spec cells itself. Each
// distributable job's cells enter a pending queue; worker nodes lease
// batches of them (POST /v1/leases), execute them locally with the
// exact per-cell seeds the coordinator derives, and post back
// gob-encoded results (POST /v1/leases/{id}/complete). Leases carry a
// deadline: a worker that stops renewing (crash, partition) forfeits
// its lease and the cells return to the pending queue for re-lease —
// work is re-run, never lost, and because cell seeds derive from
// stable keys the re-run is bit-identical to what the dead worker
// would have produced. The coordinator gathers completed cells through
// campaign.AssembleOutcome, the same merge the in-process schedulers
// use, so the canonical envelope is byte-identical to a standalone run
// at any node count.

// Lease-layer counters (cold path, unconditional like the serve ones).
var (
	leaseExpired = obs.Default.Counter("rhohammer_lease_expired_completions_total")
)

// CoordinatorRoutes returns the additional route patterns a
// coordinator-mode server registers, in API.md order. The doccheck
// suite pins that API.md documents each of them, exactly like Routes.
func CoordinatorRoutes() []string {
	return []string{
		"POST /v1/workers",
		"GET /v1/workers",
		"POST /v1/workers/{name}/drain",
		"POST /v1/leases",
		"POST /v1/leases/{id}/renew",
		"POST /v1/leases/{id}/complete",
	}
}

// distJob is one job executing on the fabric. All fields are guarded
// by the owning Server's mutex except results/stats/nodes entries,
// which are written once each (per-index ownership, like the Pool's).
type distJob struct {
	job  *Job
	spec campaign.Spec
	// pending is the ordered queue of cell indices awaiting lease
	// (lowest index out first — initial fill, reclaims and restarts all
	// converge on the same front-to-back schedule). Every mutation goes
	// through the push/pop helpers so the pending-cells gauge stays
	// exact.
	pending campaign.CellQueue

	results []any
	stats   []campaign.CellStat
	nodes   []string // per-cell worker ID, "" until completed

	remaining int
	finished  chan struct{}
	canceled  bool
}

// lease is one outstanding batch of cells granted to a worker.
type lease struct {
	id      string
	dj      *distJob
	worker  string
	cells   []int
	expires time.Time
}

// workerInfo is the coordinator's view of one registered worker.
type workerInfo struct {
	id         string
	name       string
	registered time.Time
	lastSeen   time.Time
	leases     int // leases ever granted
	cells      int // cells completed
	// draining marks a worker being rolled out: it keeps its held
	// leases (renew and complete still work) but acquire returns 204,
	// so it winds down to zero and can exit cleanly (OPERATIONS.md).
	draining bool
}

// registerRequest is the POST /v1/workers body.
type registerRequest struct {
	// Name is a human-readable label for listings and manifests; the
	// coordinator assigns the authoritative worker ID.
	Name string `json:"name,omitempty"`
}

// registerResponse is the POST /v1/workers success body. The worker
// adopts the coordinator's lease TTL so both sides agree on deadlines.
type registerResponse struct {
	ID         string `json:"id"`
	LeaseTTLNS int64  `json:"lease_ttl_ns"`
}

// workerStatus is one GET /v1/workers entry (and the drain-route
// response body).
type workerStatus struct {
	ID         string `json:"id"`
	Name       string `json:"name,omitempty"`
	Registered string `json:"registered"`
	LastSeen   string `json:"last_seen"`
	Leases     int    `json:"leases"`
	Cells      int    `json:"cells_completed"`
	Draining   bool   `json:"draining,omitempty"`
	LeasesHeld int    `json:"leases_held"`
}

// leaseCell is one cell of a lease grant: the index into the spec's
// grid and the stable key the worker must verify before executing.
type leaseCell struct {
	Index int    `json:"index"`
	Key   string `json:"key"`
}

// acquireRequest is the POST /v1/leases body.
type acquireRequest struct {
	Worker string `json:"worker"`
	// MaxCells caps the batch; 0 means the coordinator's default. The
	// grant never exceeds the coordinator's own batch bound.
	MaxCells int `json:"max_cells,omitempty"`
}

// leaseGrant is the POST /v1/leases success body: everything a worker
// needs to rebuild the sub-grid locally — the registered spec name plus
// seed and scale reproduce the exact Spec, and each cell's key pins its
// derived seed.
type leaseGrant struct {
	LeaseID  string      `json:"lease_id"`
	JobID    string      `json:"job_id"`
	Spec     string      `json:"spec"`
	Seed     int64       `json:"seed"`
	Scale    float64     `json:"scale"`
	TTLNS    int64       `json:"ttl_ns"`
	Deadline string      `json:"deadline"`
	Cells    []leaseCell `json:"cells"`
}

// renewResponse is the POST /v1/leases/{id}/renew success body.
type renewResponse struct {
	Deadline string `json:"deadline"`
}

// completedCell is one executed cell in a completion body. Result is
// the campaign gob wire encoding (base64 in JSON); Stat carries the
// worker-side attempt/timing/error record.
type completedCell struct {
	Index  int               `json:"index"`
	Key    string            `json:"key"`
	Result []byte            `json:"result,omitempty"`
	Stat   campaign.CellStat `json:"stat"`
}

// completeRequest is the POST /v1/leases/{id}/complete body.
type completeRequest struct {
	Worker string          `json:"worker"`
	Cells  []completedCell `json:"cells"`
}

// runDistributed executes one job through the lease fabric: cells go
// to the pending queue, workers drain it, and the completed grid is
// merged by the same AssembleOutcome the local schedulers use.
func (s *Server) runDistributed(ctx context.Context, j *Job) (*campaign.Outcome, error) {
	n := len(j.spec.Cells)
	dj := &distJob{
		job:       j,
		spec:      j.spec,
		results:   make([]any, n),
		stats:     make([]campaign.CellStat, n),
		nodes:     make([]string, n),
		remaining: n,
		finished:  make(chan struct{}),
	}
	// A recovered job enters the fabric with its journaled cells
	// already complete: only the rest are queued for lease, and the
	// merge below is identical to an uninterrupted run because results
	// land at their index either way.
	var incomplete []int
	for i, c := range j.spec.Cells {
		dj.stats[i] = campaign.CellStat{Key: c.Key, Seed: j.spec.CellSeed(c.Key)}
		if j.recoveredResults != nil && j.recoveredResults[i] != nil {
			dj.results[i] = j.recoveredResults[i]
			dj.stats[i] = j.cellStats[i]
			dj.nodes[i] = j.recoveredNodes[i]
			dj.remaining--
			continue
		}
		incomplete = append(incomplete, i)
	}
	start := time.Now()

	s.mu.Lock()
	s.pushPendingLocked(dj, incomplete...)
	if dj.remaining == 0 {
		close(dj.finished)
	}
	j.cellNodes = dj.nodes // manifest records per-cell placement
	s.distQueue = append(s.distQueue, dj)
	s.mu.Unlock()

	select {
	case <-dj.finished:
	case <-ctx.Done():
		s.cancelDist(dj)
		<-dj.finished
	}

	s.mu.Lock()
	for i, q := range s.distQueue {
		if q == dj {
			s.distQueue = append(s.distQueue[:i], s.distQueue[i+1:]...)
			break
		}
	}
	workers := map[string]bool{}
	for _, node := range dj.nodes {
		if node != "" {
			workers[node] = true
		}
	}
	s.mu.Unlock()

	nodeCount := len(workers)
	if nodeCount == 0 {
		nodeCount = 1
	}
	return campaign.AssembleOutcome(j.spec, nodeCount, time.Since(start), dj.results, dj.stats)
}

// cancelDist withdraws a cancelled job's unfinished cells from the
// fabric: pending cells and outstanding leases both record the context
// error, and the leases are revoked so late completions get 410.
func (s *Server) cancelDist(dj *distJob) {
	errText := context.Canceled.Error()
	s.mu.Lock()
	defer s.mu.Unlock()
	if dj.canceled {
		return
	}
	dj.canceled = true
	for _, idx := range s.popPendingLocked(dj, dj.pending.Len()) {
		dj.stats[idx].Err = errText
		s.finishDistCellLocked(dj)
	}
	for id, l := range s.leases {
		if l.dj != dj {
			continue
		}
		for _, idx := range l.cells {
			dj.stats[idx].Err = errText
			s.finishDistCellLocked(dj)
		}
		delete(s.leases, id)
	}
}

// finishDistCellLocked marks one cell of a distributed job handled,
// closing finished on the last. Caller holds s.mu.
func (s *Server) finishDistCellLocked(dj *distJob) {
	dj.remaining--
	if dj.remaining == 0 {
		close(dj.finished)
	}
}

// pushPendingLocked / popPendingLocked are the only mutators of a
// distributed job's pending queue, keeping the pending-cells gauge
// (an atomic, so /metrics reads it without s.mu) exact. Caller holds
// s.mu.
func (s *Server) pushPendingLocked(dj *distJob, indices ...int) {
	before := dj.pending.Len()
	dj.pending.Push(indices...)
	s.pendingCells.Add(int64(dj.pending.Len() - before))
}

func (s *Server) popPendingLocked(dj *distJob, n int) []int {
	out := dj.pending.Pop(n)
	s.pendingCells.Add(-int64(len(out)))
	return out
}

// reclaimExpiredLocked returns every expired lease's cells to their
// job's pending queue for re-lease. Deadline-based reclaim is the
// fabric's whole failure story: a worker that dies mid-lease simply
// stops renewing, and its cells are re-run elsewhere with the same
// derived seeds — byte-identical results, nothing lost. Caller holds
// s.mu.
func (s *Server) reclaimExpiredLocked(now time.Time) {
	for id, l := range s.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(s.leases, id)
		if l.dj.canceled {
			continue
		}
		// The ordered queue puts reclaimed low indices back at the
		// front, so the post-reclaim lease schedule matches what an
		// uninterrupted run would have handed out next.
		s.pushPendingLocked(l.dj, l.cells...)
		obs.LeaseReclaims.Inc()
	}
}

// janitor periodically reclaims expired leases so re-lease does not
// wait for the next worker call. It runs until the server finishes
// draining — reclaim must stay live while distributed jobs drain, or a
// dead worker would wedge Drain forever.
func (s *Server) janitor(period time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			s.reclaimExpiredLocked(time.Now())
			s.mu.Unlock()
		case <-stop:
			return
		}
	}
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid register request: " + err.Error()})
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.workerSeq++
	info := &workerInfo{
		id:         fmt.Sprintf("w-%03d", s.workerSeq),
		name:       req.Name,
		registered: now,
		lastSeen:   now,
	}
	s.workers[info.id] = info
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, registerResponse{ID: info.id, LeaseTTLNS: int64(s.cfg.LeaseTTL)})
}

// workerStatusLocked snapshots one worker for listings and the drain
// response, counting the leases it currently holds. Caller holds s.mu.
func (s *Server) workerStatusLocked(info *workerInfo) workerStatus {
	held := 0
	for _, l := range s.leases {
		if l.worker == info.id {
			held++
		}
	}
	return workerStatus{
		ID:         info.id,
		Name:       info.name,
		Registered: info.registered.UTC().Format(time.RFC3339Nano),
		LastSeen:   info.lastSeen.UTC().Format(time.RFC3339Nano),
		Leases:     info.leases,
		Cells:      info.cells,
		Draining:   info.draining,
		LeasesHeld: held,
	}
}

func (s *Server) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]workerStatus, 0, len(s.workers))
	for _, info := range s.workers {
		out = append(out, s.workerStatusLocked(info))
	}
	s.mu.Unlock()
	// Stable listing order for clients and tests.
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleWorkerDrain marks one worker draining (addressed by its
// coordinator-assigned ID or, when unambiguous, its registered name):
// it keeps renewing and completing the leases it holds, but every
// subsequent acquire returns 204, so it winds down to zero leases and
// can be stopped without losing work. Draining is idempotent and
// one-way; a replacement worker simply registers fresh.
func (s *Server) handleWorkerDrain(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("name")
	s.mu.Lock()
	info := s.workers[key]
	if info == nil {
		var matches []*workerInfo
		for _, wi := range s.workers {
			if wi.name == key {
				matches = append(matches, wi)
			}
		}
		if len(matches) > 1 {
			s.mu.Unlock()
			writeJSON(w, http.StatusConflict,
				apiError{Error: fmt.Sprintf("%d workers are named %q; drain by ID (GET /v1/workers lists them)", len(matches), key)})
			return
		}
		if len(matches) == 1 {
			info = matches[0]
		}
	}
	if info == nil {
		s.mu.Unlock()
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such worker (GET /v1/workers lists them)"})
		return
	}
	info.draining = true
	st := s.workerStatusLocked(info)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleLeaseAcquire(w http.ResponseWriter, r *http.Request) {
	var req acquireRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid lease request: " + err.Error()})
		return
	}
	if req.Worker == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "\"worker\" is required (POST /v1/workers first)"})
		return
	}
	batch := req.MaxCells
	if batch <= 0 || batch > s.cfg.LeaseBatch {
		batch = s.cfg.LeaseBatch
	}
	now := time.Now()

	s.mu.Lock()
	if info := s.workers[req.Worker]; info != nil {
		info.lastSeen = now
		if info.draining {
			// Draining workers finish what they hold but get no new
			// work — 204 is indistinguishable from "no work", so the
			// worker loop winds down without a special case.
			s.mu.Unlock()
			w.WriteHeader(http.StatusNoContent)
			return
		}
	}
	s.reclaimExpiredLocked(now)
	var dj *distJob
	for _, q := range s.distQueue {
		if !q.canceled && q.pending.Len() > 0 {
			dj = q
			break
		}
	}
	if dj == nil {
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
		return
	}
	cells := s.popPendingLocked(dj, batch)
	s.leaseSeq++
	l := &lease{
		id:      fmt.Sprintf("lease-%06d", s.leaseSeq),
		dj:      dj,
		worker:  req.Worker,
		cells:   cells,
		expires: now.Add(s.cfg.LeaseTTL),
	}
	s.leases[l.id] = l
	if info := s.workers[req.Worker]; info != nil {
		info.leases++
	}
	grant := leaseGrant{
		LeaseID:  l.id,
		JobID:    dj.job.ID,
		Spec:     dj.job.SpecName,
		Seed:     dj.job.Seed,
		Scale:    dj.job.Scale,
		TTLNS:    int64(s.cfg.LeaseTTL),
		Deadline: l.expires.UTC().Format(time.RFC3339Nano),
	}
	for _, idx := range cells {
		grant.Cells = append(grant.Cells, leaseCell{Index: idx, Key: dj.spec.Cells[idx].Key})
	}
	s.mu.Unlock()

	obs.LeaseGrants.Inc()
	obs.LeaseCellsLeased.Add(int64(len(cells)))
	writeJSON(w, http.StatusCreated, grant)
}

func (s *Server) handleLeaseRenew(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	now := time.Now()
	s.mu.Lock()
	s.reclaimExpiredLocked(now)
	l := s.leases[id]
	if l == nil {
		s.mu.Unlock()
		writeJSON(w, http.StatusGone, apiError{Error: "lease expired or unknown; its cells may have been re-leased"})
		return
	}
	l.expires = now.Add(s.cfg.LeaseTTL)
	if info := s.workers[l.worker]; info != nil {
		info.lastSeen = now
	}
	deadline := l.expires
	s.mu.Unlock()
	obs.LeaseRenewals.Inc()
	writeJSON(w, http.StatusOK, renewResponse{Deadline: deadline.UTC().Format(time.RFC3339Nano)})
}

func (s *Server) handleLeaseComplete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req completeRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid completion: " + err.Error()})
		return
	}
	// Decode the gob payloads before taking the server mutex: result
	// blobs can be large and decode cost must not serialize the API.
	decoded := make([]any, len(req.Cells))
	for i, c := range req.Cells {
		if c.Stat.Err != "" || len(c.Result) == 0 {
			continue
		}
		v, err := campaign.DecodeResult(c.Result)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("cell %s: %v", c.Key, err)})
			return
		}
		decoded[i] = v
	}

	now := time.Now()
	s.mu.Lock()
	s.reclaimExpiredLocked(now)
	l := s.leases[id]
	if l == nil {
		s.mu.Unlock()
		leaseExpired.Inc()
		writeJSON(w, http.StatusGone, apiError{Error: "lease expired or unknown; results discarded (cells will be re-run elsewhere, byte-identically)"})
		return
	}
	delete(s.leases, id)
	dj := l.dj
	if dj.canceled {
		// The job was cancelled while this batch executed; nothing to
		// record, the cells were already accounted for.
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"status": "discarded (job canceled)"})
		return
	}
	leased := map[int]bool{}
	for _, idx := range l.cells {
		leased[idx] = true
	}
	accepted := 0
	for i, c := range req.Cells {
		if !leased[c.Index] || c.Index >= len(dj.spec.Cells) || dj.spec.Cells[c.Index].Key != c.Key {
			s.mu.Unlock()
			writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("cell %d/%s was not part of lease %s", c.Index, c.Key, id)})
			return
		}
		delete(leased, c.Index)
		dj.results[c.Index] = decoded[i]
		dj.stats[c.Index] = c.Stat
		dj.nodes[c.Index] = req.Worker
		dj.job.cellStats[c.Index] = c.Stat
		dj.job.cellsDone++
		accepted++
		if dj.job.persisted && c.Stat.Err == "" {
			// Journal before acknowledging: the wire gob bytes are
			// reused as-is, so what recovery decodes is exactly what
			// this completion carried.
			s.persistCell(dj.job.ID, c.Index, req.Worker, c.Stat, nil, c.Result)
		}
		s.finishDistCellLocked(dj)
	}
	// Cells the worker leased but did not report go straight back to
	// pending (a worker may return a partial batch after an error).
	for idx := range leased {
		s.pushPendingLocked(dj, idx)
	}
	if info := s.workers[req.Worker]; info != nil {
		info.lastSeen = now
		info.cells += accepted
	}
	s.mu.Unlock()
	obs.LeaseCompletions.Inc()
	writeJSON(w, http.StatusOK, map[string]int{"accepted": accepted})
}
