package serve

import (
	"context"
	"fmt"
	"log"
	"time"

	"rhohammer/internal/campaign"
	"rhohammer/internal/store"
)

// Durability integration (OPERATIONS.md is the runbook view). With
// Config.StoreDir set, every registered-spec job journals its commit
// points to the durable store: admission (persistAdmitLocked), each
// successfully completed cell (persistCell — locally executed cells
// stage their result until OnCell has the final stat; leased cells
// reuse the wire gob bytes the worker posted), and the terminal
// transition (persistTerminalLocked: snapshot first, done record
// second, so a crash between the two recovers the job as in-flight
// with every cell complete, converging to the same terminal state).
// recoverState is the other half: New replays the store into servable
// terminal jobs and re-queued in-flight jobs before the shard pool
// starts.

// Metrics returns the name of every serve-layer metric series exposed
// at GET /metrics — the admission counters, the cache counters, the
// scaling gauges, and the lease-fabric counters. OPERATIONS.md must
// document each of them; the doccheck suite pins that, so a metric
// added here cannot ship unexplained.
func Metrics() []string {
	return []string{
		"rhohammer_serve_jobs_accepted_total",
		"rhohammer_serve_jobs_rejected_total",
		"rhohammer_serve_jobs_completed_total",
		"rhohammer_serve_jobs_failed_total",
		"rhohammer_serve_jobs_canceled_total",
		"rhohammer_serve_result_cache_hits_total",
		"rhohammer_serve_result_cache_misses_total",
		"rhohammer_serve_queue_depth",
		"rhohammer_serve_jobs_running",
		"rhohammer_serve_pending_cells",
		"rhohammer_serve_oldest_pending_seconds",
		"rhohammer_lease_grants_total",
		"rhohammer_lease_renewals_total",
		"rhohammer_lease_completions_total",
		"rhohammer_lease_reclaims_total",
		"rhohammer_lease_cells_leased_total",
		"rhohammer_lease_expired_completions_total",
	}
}

// recoverState folds everything Open recovered from the store into the
// server: snapshots become servable terminal jobs (warming the result
// cache), in-flight journal jobs are rebuilt against the registry and
// re-queued with their completed cells prefilled. Runs before the
// shard pool starts, so nothing races admission.
func (s *Server) recoverState(state *store.State) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, warn := range state.Warnings {
		log.Printf("serve: store recovery: %s", warn)
	}

	for _, snap := range state.Snapshots {
		s.bumpSeqLocked(snap.ID)
		j := &Job{
			ID: snap.ID, SpecName: snap.Spec, Seed: snap.Seed, Scale: snap.Scale,
			Parallel:  snap.Parallel,
			state:     State(snap.State), err: snap.Error,
			persisted: true, recovered: true,
			created:   snap.Created, started: snap.Started, finished: snap.Finished,
			cellsTotal: snap.CellsTotal, cellsDone: snap.CellsDone,
			result:    snap.Canonical, resultTimed: snap.Timed, manifest: snap.Manifest,
		}
		if entry, ok := s.cfg.Registry.Lookup(snap.Spec); ok {
			j.spec = entry.Build(campaign.Params{Seed: snap.Seed, Scale: snap.Scale})
			j.cacheable = true
		}
		s.jobs[j.ID] = j
		s.done = append(s.done, j.ID)
		if s.cache != nil && j.cacheable && j.state == StateDone && len(j.result) > 0 {
			s.cache.put(cacheKey{spec: j.SpecName, seed: j.Seed, scale: j.Scale},
				cacheEntry{canon: j.result, timed: j.resultTimed})
		}
	}
	for len(s.done) > s.cfg.Retain {
		evict := s.done[0]
		s.done = s.done[1:]
		delete(s.jobs, evict)
		if err := s.store.DeleteSnapshot(evict); err != nil {
			log.Printf("serve: store recovery: evicting %s: %v", evict, err)
		}
	}

	for _, sj := range state.Jobs {
		s.bumpSeqLocked(sj.Meta.ID)
		entry, ok := s.cfg.Registry.Lookup(sj.Meta.Spec)
		if !ok {
			// Loud skip: this job cannot be rebuilt, but the jobs that
			// can must not be held hostage. It fails terminally — and is
			// snapshotted as failed, so the journal stops carrying it.
			log.Printf("serve: store recovery: job %s names spec %q absent from the registry; failing it (other jobs recover)",
				sj.Meta.ID, sj.Meta.Spec)
			j := &Job{
				ID: sj.Meta.ID, SpecName: sj.Meta.Spec, Seed: sj.Meta.Seed,
				Scale: sj.Meta.Scale, Parallel: sj.Meta.Parallel,
				persisted: true, recovered: true,
				created:   sj.Meta.Created,
				cellsDone: len(sj.Cells),
			}
			s.jobs[j.ID] = j
			s.finishLocked(j, StateFailed,
				fmt.Sprintf("recovered job names spec %q, absent from this server's registry", sj.Meta.Spec))
			s.attachManifestLocked(j, nil)
			s.persistTerminalLocked(j)
			continue
		}
		spec := entry.Build(campaign.Params{Seed: sj.Meta.Seed, Scale: sj.Meta.Scale})
		j := &Job{
			ID: sj.Meta.ID, SpecName: sj.Meta.Spec, Seed: sj.Meta.Seed,
			Scale: sj.Meta.Scale, Parallel: sj.Meta.Parallel,
			state: StateQueued, created: sj.Meta.Created, spec: spec,
			cacheable: true, distributable: true,
			persisted: true, recovered: true,
		}
		j.cellStats = make([]campaign.CellStat, len(spec.Cells))
		for i, c := range spec.Cells {
			j.cellStats[i] = campaign.CellStat{Key: c.Key, Seed: spec.CellSeed(c.Key)}
		}
		j.recoveredResults = make([]any, len(spec.Cells))
		j.recoveredNodes = make([]string, len(spec.Cells))
		kept := 0
		for idx, cell := range sj.Cells {
			if idx < 0 || idx >= len(spec.Cells) || spec.Cells[idx].Key != cell.Key {
				log.Printf("serve: store recovery: job %s cell %d/%s does not match the rebuilt spec; re-running it",
					j.ID, idx, cell.Key)
				continue
			}
			if cell.Stat.Err != "" {
				continue
			}
			v, err := campaign.DecodeResult(cell.Result)
			if err != nil {
				log.Printf("serve: store recovery: job %s cell %s result unreadable; re-running it: %v",
					j.ID, cell.Key, err)
				continue
			}
			if v == nil {
				// A nil result is indistinguishable from "never ran";
				// re-running it is deterministic either way.
				continue
			}
			j.recoveredResults[idx] = v
			j.recoveredNodes[idx] = cell.Node
			j.cellStats[idx] = cell.Stat
			j.cellsDone++
			kept++
		}
		if kept == 0 {
			j.recoveredResults, j.recoveredNodes = nil, nil
		}
		s.jobs[j.ID] = j
		s.queue <- j // capacity reserved by New; never blocks
		s.queued.Add(1)
		log.Printf("serve: store recovery: job %s (%s) resumed with %d/%d cells complete",
			j.ID, j.SpecName, kept, len(spec.Cells))
	}
	s.recomputeOldestLocked()
}

// bumpSeqLocked advances the job-ID sequence past a recovered ID so
// new admissions never collide with recovered jobs. Caller holds s.mu.
func (s *Server) bumpSeqLocked(id string) {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err == nil && n > s.seq {
		s.seq = n
	}
}

// recomputeOldestLocked refreshes the oldest-pending gauge source: the
// creation time of the oldest non-terminal job, 0 when none. Caller
// holds s.mu; the gauge itself reads only the atomic.
func (s *Server) recomputeOldestLocked() {
	var oldest int64
	for _, j := range s.jobs {
		if j.state.terminal() {
			continue
		}
		if ns := j.created.UnixNano(); oldest == 0 || ns < oldest {
			oldest = ns
		}
	}
	s.oldestPending.Store(oldest)
}

// persistAdmitLocked journals a newly admitted persisted job; the
// fsync inside AppendJob is the commit point that makes the 202
// acknowledgment durable. A store failure demotes the job to
// non-persisted (loudly) rather than failing admission. Caller holds
// s.mu.
func (s *Server) persistAdmitLocked(j *Job) {
	if s.store == nil || !j.persisted {
		return
	}
	err := s.store.AppendJob(store.JobMeta{
		ID: j.ID, Spec: j.SpecName, Seed: j.Seed, Scale: j.Scale,
		Parallel: j.Parallel, Created: j.created,
	})
	if err != nil {
		j.persisted = false
		log.Printf("serve: job %s will not survive a restart: %v", j.ID, err)
	}
}

// persistCell journals one successfully completed cell. raw, when
// non-nil, is the campaign wire gob exactly as a worker posted it and
// is reused byte-for-byte; otherwise v (a locally computed result) is
// encoded here. Store failures are logged, never fatal — the cell
// would simply re-run after a restart, byte-identically.
func (s *Server) persistCell(jobID string, index int, node string, stat campaign.CellStat, v any, raw []byte) {
	if s.store == nil {
		return
	}
	data := raw
	if data == nil {
		var err error
		if data, err = campaign.EncodeResult(v); err != nil {
			log.Printf("serve: job %s cell %s not journaled: %v", jobID, stat.Key, err)
			return
		}
	}
	err := s.store.AppendCell(jobID, store.CellResult{
		Index: index, Key: stat.Key, Node: node, Stat: stat, Result: data,
	})
	if err != nil {
		log.Printf("serve: job %s cell %s not journaled: %v", jobID, stat.Key, err)
	}
}

// persistTerminalLocked snapshots a terminal persisted job and marks
// it done in the journal. The snapshot lands first: a crash between
// the two recovers the job as in-flight with every cell complete,
// which converges to the same terminal state on resume. Caller holds
// s.mu.
func (s *Server) persistTerminalLocked(j *Job) {
	if s.store == nil || !j.persisted || !j.state.terminal() {
		return
	}
	snap := &store.Snapshot{
		ID: j.ID, Spec: j.SpecName, Seed: j.Seed, Scale: j.Scale, Parallel: j.Parallel,
		State: string(j.state), Error: j.err,
		CellsTotal: max(len(j.spec.Cells), j.cellsTotal), CellsDone: j.cellsDone,
		Created: j.created, Started: j.started, Finished: j.finished,
		Canonical: j.result, Timed: j.resultTimed, Manifest: j.manifest,
	}
	if err := s.store.WriteSnapshot(snap); err != nil {
		log.Printf("serve: job %s snapshot not written: %v", j.ID, err)
		return
	}
	if err := s.store.AppendDone(j.ID, string(j.state), j.err); err != nil {
		log.Printf("serve: job %s done record not written: %v", j.ID, err)
	}
}

// crash simulates coordinator death for the restart tests: the store
// is closed first — as in a real crash, no further journal or snapshot
// writes land — then every job is cancelled and the machinery torn
// down. Only tests call it; a production exit is Drain.
func (s *Server) crash() {
	s.mu.Lock()
	if s.store != nil {
		s.store.Close()
	}
	s.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx)
}

// runResumed executes a recovered job's incomplete cells locally and
// merges them with the recovered results into a full-grid Outcome via
// the same AssembleOutcome every other scheduler uses — which is why
// the envelope bytes cannot differ from an uninterrupted run. runSpec
// holds only the incomplete cells; idxMap maps its indices back to the
// full grid.
func (s *Server) runResumed(ctx context.Context, j *Job, runSpec campaign.Spec, idxMap []int, onCell func(int, campaign.CellStat)) (*campaign.Outcome, error) {
	start := time.Now()
	n := len(j.spec.Cells)
	results := make([]any, n)
	stats := make([]campaign.CellStat, n)
	s.mu.Lock()
	for i := 0; i < n; i++ {
		if j.recoveredResults[i] != nil {
			results[i] = j.recoveredResults[i]
			stats[i] = j.cellStats[i]
		}
	}
	s.mu.Unlock()

	workers := 1
	if len(runSpec.Cells) > 0 {
		var sub *campaign.Outcome
		var err error
		if j.Parallel == 0 && s.pool != nil {
			sub, err = s.pool.RunContext(ctx, runSpec, campaign.RunOpts{OnCell: onCell})
		} else {
			sub, err = campaign.Runner{Workers: j.Parallel, OnCell: onCell}.RunContext(ctx, runSpec)
		}
		if sub == nil {
			return nil, err
		}
		workers = sub.Workers
		for k, full := range idxMap {
			results[full] = sub.Results[k]
			stats[full] = sub.Cells[k]
		}
	}
	return campaign.AssembleOutcome(j.spec, workers, time.Since(start), results, stats)
}
