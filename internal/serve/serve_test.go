package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rhohammer/internal/campaign"
	"rhohammer/internal/experiments"
	"rhohammer/internal/obs"
)

// tinyRegistry registers one four-cell spec whose results are pure
// functions of the derived cell seeds — cheap and fully deterministic.
func tinyRegistry() *campaign.Registry {
	r := campaign.NewRegistry()
	r.Register(campaign.Entry{
		Name: "tiny", Kind: campaign.KindAux, Title: "four deterministic cells",
		Build: func(p campaign.Params) campaign.Spec {
			return campaign.Spec{
				Name: "tiny", Kind: campaign.KindAux, Seed: p.Seed,
				Cells: []campaign.Cell{{Key: "a"}, {Key: "b"}, {Key: "c"}, {Key: "d"}},
				Exec: func(c campaign.Cell, seed int64) (any, error) {
					return fmt.Sprintf("%s#%d", c.Key, seed), nil
				},
			}
		},
	})
	return r
}

// blockingRegistry registers a one-cell spec that blocks until gate is
// closed, for backpressure and drain scenarios.
func blockingRegistry(gate chan struct{}) *campaign.Registry {
	r := campaign.NewRegistry()
	r.Register(campaign.Entry{
		Name: "block", Kind: campaign.KindAux, Title: "blocks until released",
		Build: func(p campaign.Params) campaign.Spec {
			return campaign.Spec{
				Name: "block", Seed: p.Seed,
				Cells: []campaign.Cell{{Key: "only"}},
				Exec: func(c campaign.Cell, seed int64) (any, error) {
					<-gate
					return "released", nil
				},
			}
		},
	})
	return r
}

// slowRegistry registers a many-cell spec where each cell sleeps, so a
// cancellation lands mid-run with cells still undispatched.
func slowRegistry(cells int, perCell time.Duration) *campaign.Registry {
	r := campaign.NewRegistry()
	r.Register(campaign.Entry{
		Name: "slow", Kind: campaign.KindAux, Title: "sleeping cells",
		Build: func(p campaign.Params) campaign.Spec {
			s := campaign.Spec{Name: "slow", Seed: p.Seed, Exec: func(c campaign.Cell, seed int64) (any, error) {
				time.Sleep(perCell)
				return seed, nil
			}}
			for i := 0; i < cells; i++ {
				s.Cells = append(s.Cells, campaign.Cell{Key: fmt.Sprintf("c%03d", i)})
			}
			return s
		},
	})
	return r
}

// newTestServer boots a Server and an httptest listener, draining both
// at cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// doJSON issues one request and decodes the JSON response into out
// (skipped when out is nil), returning status code and headers.
func doJSON(t *testing.T, method, url, body string, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// submit posts a job body and returns the accepted job ID.
func submit(t *testing.T, ts *httptest.Server, body string) string {
	t.Helper()
	var acc jobAccepted
	code, hdr := doJSON(t, "POST", ts.URL+"/v1/jobs", body, &acc)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d, want 202", code)
	}
	if acc.ID == "" || hdr.Get("Location") != "/v1/jobs/"+acc.ID {
		t.Fatalf("bad accept response: %+v location %q", acc, hdr.Get("Location"))
	}
	return acc.ID
}

// waitTerminal polls a job until it leaves the queued/running states.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var st jobStatus
		code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, "", &st)
		if code != http.StatusOK {
			t.Fatalf("GET job %s = %d", id, code)
		}
		if st.State.terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return jobStatus{}
}

// fetch returns a raw response body and status code.
func fetch(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func TestJobLifecycleAndResultEnvelope(t *testing.T) {
	reg := tinyRegistry()
	_, ts := newTestServer(t, Config{Registry: reg})

	id := submit(t, ts, `{"spec":"tiny","seed":7,"parallel":2}`)
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	if st.CellsTotal != 4 || st.CellsDone != 4 {
		t.Errorf("cells = %d/%d, want 4/4", st.CellsDone, st.CellsTotal)
	}
	if st.ResultURL == "" || st.ManifestURL == "" {
		t.Errorf("missing result/manifest URLs in %+v", st)
	}
	for _, c := range st.Cells {
		if c.Attempts != 1 || c.Err != "" {
			t.Errorf("cell %s: attempts=%d err=%q", c.Key, c.Attempts, c.Err)
		}
	}

	// The served envelope must be byte-identical to writing the direct
	// Runner outcome through the canonical exporter.
	entry, _ := reg.Lookup("tiny")
	out, err := campaign.Runner{Workers: 2}.Run(entry.Build(campaign.Params{Seed: 7, Scale: 1}))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	cfg := experiments.Config{Seed: 7, Scale: 1, Workers: 2}
	if err := experiments.WriteCanonicalOutcomeJSON(&want, "tiny", cfg, out.Result, out); err != nil {
		t.Fatal(err)
	}
	code, got := fetch(t, ts.URL+st.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("served envelope differs from direct Runner envelope:\n got: %s\nwant: %s", got, want.Bytes())
	}

	// ?timings=1 keeps the envelope shape but restores scheduling data.
	code, timed := fetch(t, ts.URL+st.ResultURL+"?timings=1")
	if code != http.StatusOK {
		t.Fatalf("GET result?timings=1 = %d", code)
	}
	var env experiments.Envelope
	if err := json.Unmarshal(timed, &env); err != nil {
		t.Fatal(err)
	}
	if env.Workers != 2 || env.Experiment != "tiny" {
		t.Errorf("timed envelope: workers=%d experiment=%q", env.Workers, env.Experiment)
	}

	// The manifest records the run: one RunRecord with all four cells.
	code, mdata := fetch(t, ts.URL+st.ManifestURL)
	if code != http.StatusOK {
		t.Fatalf("GET manifest = %d", code)
	}
	var m obs.Manifest
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatal(err)
	}
	if m.Tool != "serverd" || len(m.Runs) != 1 || len(m.Runs[0].Cells) != 4 || m.Seed != 7 {
		t.Errorf("manifest = tool %q, %d runs, seed %d", m.Tool, len(m.Runs), m.Seed)
	}
}

func TestBackpressure429(t *testing.T) {
	gate := make(chan struct{})
	defer func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
	}()
	srv, ts := newTestServer(t, Config{
		Registry: blockingRegistry(gate), Shards: 1, QueueDepth: 1,
		RetryAfter: 7 * time.Second,
	})

	a := submit(t, ts, `{"spec":"block"}`)
	// Wait for the shard to pop job A so B occupies the whole queue.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.running.Load() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	b := submit(t, ts, `{"spec":"block"}`)

	var apiErr apiError
	code, hdr := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"spec":"block"}`, &apiErr)
	if code != http.StatusTooManyRequests {
		t.Fatalf("third POST = %d, want 429", code)
	}
	if hdr.Get("Retry-After") != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", hdr.Get("Retry-After"))
	}
	if apiErr.Error == "" {
		t.Error("429 carried no error body")
	}

	close(gate)
	for _, id := range []string{a, b} {
		if st := waitTerminal(t, ts, id); st.State != StateDone {
			t.Errorf("job %s = %s, want done", id, st.State)
		}
	}
}

func TestCancelQueuedJob(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	srv, ts := newTestServer(t, Config{Registry: blockingRegistry(gate), Shards: 1, QueueDepth: 2})

	a := submit(t, ts, `{"spec":"block"}`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if srv.running.Load() == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job A never started")
		}
		time.Sleep(time.Millisecond)
	}
	b := submit(t, ts, `{"spec":"block"}`)

	var st jobStatus
	code, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+b, "", &st)
	if code != http.StatusAccepted || st.State != StateCanceled {
		t.Fatalf("DELETE queued job = %d state %s, want 202 canceled", code, st.State)
	}
	if code, _ := fetch(t, ts.URL+"/v1/jobs/"+b+"/result"); code != http.StatusConflict {
		t.Errorf("result of canceled job = %d, want 409", code)
	}
	_ = a
}

func TestCancelMidRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: slowRegistry(60, 10*time.Millisecond), Shards: 1})

	id := submit(t, ts, `{"spec":"slow","parallel":2}`)
	// Let a few cells complete before cancelling.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st jobStatus
		doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, "", &st)
		if st.CellsDone >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no cells completed")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, "", nil); code != http.StatusAccepted {
		t.Fatalf("DELETE running job = %d, want 202", code)
	}
	st := waitTerminal(t, ts, id)
	if st.State != StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", st.State)
	}
	if st.CellsDone >= st.CellsTotal {
		t.Errorf("cancellation ran the whole grid (%d/%d cells)", st.CellsDone, st.CellsTotal)
	}
	var sawCtxErr bool
	for _, c := range st.Cells {
		if strings.Contains(c.Err, "context canceled") {
			sawCtxErr = true
		}
	}
	if !sawCtxErr {
		t.Error("no cell stat recorded the cancellation")
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/"+id, "", nil); code != http.StatusConflict {
		t.Errorf("DELETE of terminal job = %d, want 409", code)
	}
}

func TestDrainFinishesInFlightAndRejectsNew(t *testing.T) {
	gate := make(chan struct{})
	srv, ts := newTestServer(t, Config{Registry: blockingRegistry(gate), Shards: 1})

	id := submit(t, ts, `{"spec":"block","seed":3}`)

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()

	// Admission must stop while the in-flight job keeps running.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var h healthStatus
		code, _ := doJSON(t, "GET", ts.URL+"/healthz", "", &h)
		if code == http.StatusServiceUnavailable && h.Status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"spec":"block"}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining = %d, want 503", code)
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Results stay fetchable after the drain completes.
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job after drain = %s, want done", st.State)
	}
	if code, _ := fetch(t, ts.URL+st.ResultURL); code != http.StatusOK {
		t.Errorf("result after drain = %d, want 200", code)
	}
}

func TestRetentionEvictsOldestFinished(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry(), Retain: 1})

	first := submit(t, ts, `{"spec":"tiny"}`)
	waitTerminal(t, ts, first)
	second := submit(t, ts, `{"spec":"tiny"}`)
	waitTerminal(t, ts, second)

	if code, _ := fetch(t, ts.URL+"/v1/jobs/"+first); code != http.StatusNotFound {
		t.Errorf("evicted job = %d, want 404", code)
	}
	if code, _ := fetch(t, ts.URL+"/v1/jobs/"+second); code != http.StatusOK {
		t.Errorf("retained job = %d, want 200", code)
	}
}

func TestSpecsListingSorted(t *testing.T) {
	// Register deliberately out of lexical order: the listing must not
	// depend on registration order.
	reg := campaign.NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		n := name
		reg.Register(campaign.Entry{
			Name: n, Kind: campaign.KindAux, Title: "spec " + n,
			Build: func(p campaign.Params) campaign.Spec {
				return campaign.Spec{Name: n, Seed: p.Seed, Cells: []campaign.Cell{{Key: "k"}},
					Exec: func(campaign.Cell, int64) (any, error) { return nil, nil }}
			},
		})
	}
	_, ts := newTestServer(t, Config{Registry: reg})

	var specs []specInfo
	code, _ := doJSON(t, "GET", ts.URL+"/v1/specs", "", &specs)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/specs = %d", code)
	}
	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	want := []string{"alpha", "mid", "zeta"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("spec names = %v, want %v", names, want)
	}
	for _, s := range specs {
		if s.Kind != "aux" || !strings.HasPrefix(s.Title, "spec ") {
			t.Errorf("spec entry %+v lost kind/title", s)
		}
	}
}

func TestSubmitAndLookupErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry()})

	cases := []struct {
		name, body string
		want       int
	}{
		{"unknown spec", `{"spec":"nope"}`, http.StatusNotFound},
		{"invalid json", `{"spec":`, http.StatusBadRequest},
		{"both spec and inline", `{"spec":"tiny","inline":{"name":"x","cells":[]}}`, http.StatusBadRequest},
		{"neither", `{}`, http.StatusBadRequest},
		{"unknown field", `{"spec":"tiny","bogus":1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		var apiErr apiError
		code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", c.body, &apiErr)
		if code != c.want {
			t.Errorf("%s: POST = %d, want %d", c.name, code, c.want)
		}
		if apiErr.Error == "" {
			t.Errorf("%s: no error body", c.name)
		}
	}

	for _, path := range []string{"/v1/jobs/job-000099", "/v1/jobs/job-000099/result", "/v1/jobs/job-000099/manifest"} {
		if code, _ := fetch(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
	if code, _ := doJSON(t, "DELETE", ts.URL+"/v1/jobs/job-000099", "", nil); code != http.StatusNotFound {
		t.Errorf("DELETE unknown job = %d, want 404", code)
	}
}

func TestInlineJob(t *testing.T) {
	if testing.Short() {
		t.Skip("inline job hammers a real session")
	}
	_, ts := newTestServer(t, Config{Registry: tinyRegistry()})

	body := `{"inline":{"name":"demo","cells":[
		{"key":"c0","arch":"Raptor Lake","dimm":"S3",
		 "config":{"instr":"prefetcht2","banks":4,"barrier":"nop","nops":21,"obfuscate":true},
		 "budget":{"patterns":2,"locations":1,"duration_ns":5e7}}
	]},"seed":9}`
	id := submit(t, ts, body)
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("inline job = %s (%s), want done", st.State, st.Error)
	}
	code, data := fetch(t, ts.URL+st.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("GET result = %d", code)
	}
	var env struct {
		Experiment string `json:"experiment"`
		Result     []any  `json:"result"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Experiment != "inline/demo" || len(env.Result) != 1 {
		t.Errorf("inline envelope: experiment %q, %d results", env.Experiment, len(env.Result))
	}

	// Client errors out of the inline builder.
	bad := []string{
		`{"inline":{"name":"x","cells":[{"key":"a","arch":"NoSuch","dimm":"S3","config":{"instr":"load"}}]}}`,
		`{"inline":{"name":"x","cells":[{"key":"a","arch":"Raptor Lake","dimm":"??","config":{"instr":"load"}}]}}`,
		`{"inline":{"name":"x","cells":[{"key":"a","arch":"Raptor Lake","dimm":"S3","config":{"instr":"mov"}}]}}`,
		`{"inline":{"name":"x","cells":[{"key":"a","arch":"Raptor Lake","dimm":"S3","config":{"instr":"load"}},{"key":"a","arch":"Raptor Lake","dimm":"S3","config":{"instr":"load"}}]}}`,
		`{"inline":{"name":"","cells":[]}}`,
	}
	for _, b := range bad {
		if code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", b, nil); code != http.StatusBadRequest {
			t.Errorf("bad inline %s: POST = %d, want 400", b, code)
		}
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry()})
	waitTerminal(t, ts, submit(t, ts, `{"spec":"tiny"}`))

	code, data := fetch(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, metric := range []string{
		"rhohammer_serve_jobs_accepted_total",
		"rhohammer_serve_jobs_completed_total",
		"rhohammer_serve_queue_depth",
		"rhohammer_serve_jobs_running",
	} {
		if !strings.Contains(string(data), metric) {
			t.Errorf("/metrics missing %s", metric)
		}
	}

	var h healthStatus
	code, _ = doJSON(t, "GET", ts.URL+"/healthz", "", &h)
	if code != http.StatusOK || h.Status != "ok" {
		t.Errorf("healthz = %d %q, want 200 ok", code, h.Status)
	}
}
