// Package serve exposes the campaign engine as a long-lived HTTP
// service: the serving layer the ROADMAP's "heavy traffic" goal needs
// on top of the one-shot CLIs.
//
// A Server wraps a campaign Registry behind a small job API
// (cmd/serverd is the binary; API.md is the wire contract). Clients
// POST a job — a registered spec name or an inline cell grid, plus
// seed/scale/parallel — and poll it to completion; the result endpoint
// serves the canonical JSON envelope, byte-identical to
// `experiments -json -canon -only <spec>` at the same seed and scale,
// for any shard-pool size and any per-job parallelism. Determinism is
// inherited from internal/campaign (per-cell seeds derive from stable
// keys) and pinned by this package's tests.
//
// Capacity is bounded at two levels: Shards jobs execute concurrently
// (each on its own campaign.Runner pool of Parallel workers) and at
// most QueueDepth more wait. When both are full POST returns 429 with
// a Retry-After hint — backpressure, never unbounded buffering.
// DELETE cancels a job (queued jobs never start; running jobs stop
// dispatching cells at the next boundary), Drain stops admission and
// waits for everything admitted to finish (SIGTERM in serverd), and
// completed jobs are retained up to a bound, oldest-evicted-first.
// Every finished job carries an obs run manifest recording exactly
// what executed.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"rhohammer/internal/campaign"
	"rhohammer/internal/experiments"
	"rhohammer/internal/obs"
	"rhohammer/internal/store"
)

// Serve-layer counters, exposed at /metrics next to the substrate's.
// They count unconditionally (admission is cold path, so the
// obs.Enabled gate that protects the hot layers is unnecessary here).
var (
	jobsAccepted  = obs.Default.Counter("rhohammer_serve_jobs_accepted_total")
	jobsRejected  = obs.Default.Counter("rhohammer_serve_jobs_rejected_total")
	jobsCompleted = obs.Default.Counter("rhohammer_serve_jobs_completed_total")
	jobsFailed    = obs.Default.Counter("rhohammer_serve_jobs_failed_total")
	jobsCanceled  = obs.Default.Counter("rhohammer_serve_jobs_canceled_total")
)

// Config parameterizes a Server. The zero value of every field gets a
// sensible default from New.
type Config struct {
	// Registry names the specs POST /v1/jobs accepts. Required.
	Registry *campaign.Registry
	// Shards is the number of jobs executing concurrently. Each running
	// job gets its own campaign.Runner worker pool (the job's parallel
	// field), so total cell concurrency is at most Shards×parallel.
	// Default 2.
	Shards int
	// QueueDepth bounds the number of admitted-but-not-running jobs.
	// Default 16.
	QueueDepth int
	// Retain is how many terminal jobs are kept for result retrieval;
	// beyond it the oldest-finished job is evicted. Default 64.
	Retain int
	// RetryAfter is the hint returned in the Retry-After header with
	// 429 responses. Default 1s.
	RetryAfter time.Duration
	// ManifestDir, when non-empty, receives one <job-id>.json obs
	// manifest per finished job (the manifest endpoint serves the same
	// bytes either way).
	ManifestDir string
	// DefaultSeed seeds jobs that do not specify one. Default 42,
	// matching cmd/experiments.
	DefaultSeed int64
	// CacheSize bounds the completed-result cache: resubmitting a
	// registered spec at a (seed, scale) that already completed yields a
	// job born done, serving the cached envelopes without re-running the
	// campaign (results are deterministic, so the bytes are identical).
	// Default 64; negative disables caching. Inline specs bypass the
	// cache entirely.
	CacheSize int
	// TraceCap bounds each per-session obs trace ring recorded for a
	// running job (served at GET /v1/jobs/{id}/trace). 0 means
	// obs.DefaultTraceCap; negative disables per-job trace capture.
	TraceCap int
	// MaxReplayBytes bounds the POST /v1/replay request body. Default
	// 4 MiB.
	MaxReplayBytes int64
	// CellWorkers sizes the shared work-stealing cell pool that runs
	// jobs submitted without an explicit parallel value: cells from all
	// such jobs interleave on one campaign.Pool, so a small grid never
	// serializes behind a large one. Jobs with parallel > 0 keep a
	// dedicated per-job runner. Default Shards×GOMAXPROCS (the same
	// total capacity the dedicated runners had); negative disables the
	// pool (every job gets a dedicated runner, the pre-fabric behavior).
	CellWorkers int
	// Coordinator enables the distributed control plane (SCALING.md):
	// the lease routes are registered, and registered-spec jobs execute
	// on worker nodes instead of locally — the coordinator derives the
	// cell seeds, leases batches of cells out, and merges the completed
	// grid into the same canonical envelope a standalone server
	// produces. Inline and replay jobs still run locally.
	Coordinator bool
	// LeaseTTL is how long a granted lease lives without a renewal
	// before its cells are reclaimed and re-leased. Default 10s.
	LeaseTTL time.Duration
	// LeaseBatch caps the cells granted per lease. Default 4.
	LeaseBatch int
	// StoreDir, when non-empty, enables the durable job store
	// (internal/store, OPERATIONS.md): registered-spec jobs journal
	// their admission, every completed cell, and their terminal
	// envelopes to this directory, and New replays it so a restarted
	// server resumes in-flight jobs (incomplete cells re-queue,
	// completed cells keep their results) and re-serves finished ones.
	StoreDir string
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.Retain <= 0 {
		c.Retain = 64
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DefaultSeed == 0 {
		c.DefaultSeed = 42
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxReplayBytes == 0 {
		c.MaxReplayBytes = 4 << 20
	}
	if c.CellWorkers == 0 {
		c.CellWorkers = c.Shards * runtime.GOMAXPROCS(0)
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.LeaseBatch <= 0 {
		c.LeaseBatch = 4
	}
	return c
}

// Server is the HTTP campaign service. Create with New, serve its
// Handler, and Drain it before exit.
type Server struct {
	cfg Config
	mux *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*Job
	done     []string // terminal job IDs in completion order, for eviction
	seq      int
	draining bool
	queue    chan *Job
	cache    *resultCache // nil when caching is disabled

	// pool is the shared work-stealing cell scheduler for jobs without
	// an explicit parallel value; nil when CellWorkers < 0.
	pool *campaign.Pool

	// store is the durable job store; nil without Config.StoreDir.
	store *store.Store

	// Coordinator-mode state (lease.go), guarded by mu.
	distQueue   []*distJob
	leases      map[string]*lease
	workers     map[string]*workerInfo
	leaseSeq    int
	workerSeq   int
	janitorStop chan struct{}

	// queued/running/pendingCells/oldestPending are atomics, not
	// mu-guarded fields: the /metrics gauges read them from inside the
	// obs registry's snapshot lock, which would deadlock against a
	// manifest emission holding mu (attachManifestLocked → obs.Values →
	// gauge). pendingCells counts cells awaiting lease across all
	// distributed jobs; oldestPending is the UnixNano creation time of
	// the oldest non-terminal job (0 when none) — together the
	// autoscaling signals OPERATIONS.md interprets.
	queued        atomic.Int64
	running       atomic.Int64
	pendingCells  atomic.Int64
	oldestPending atomic.Int64

	shards sync.WaitGroup
}

// Routes returns every route pattern the server registers, in API.md
// order. The doccheck suite pins that API.md documents each of them;
// keep the two in sync.
func Routes() []string {
	return []string{
		"POST /v1/jobs",
		"GET /v1/jobs/{id}",
		"GET /v1/jobs/{id}/result",
		"GET /v1/jobs/{id}/manifest",
		"GET /v1/jobs/{id}/trace",
		"DELETE /v1/jobs/{id}",
		"POST /v1/replay",
		"GET /v1/specs",
		"GET /metrics",
		"GET /healthz",
	}
}

// New builds a Server and starts its shard pool. The caller owns the
// HTTP listener (httptest in tests, net.Listen in serverd) and must
// call Drain to stop the pool.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Registry == nil {
		return nil, errors.New("serve: Config.Registry is required")
	}
	// The store is opened (and its journal replayed) before anything
	// else so the queue can be sized to hold every recovered in-flight
	// job on top of the configured depth — recovery must never trip its
	// own backpressure.
	var st *store.Store
	var recovered *store.State
	if cfg.StoreDir != "" {
		var err error
		st, recovered, err = store.Open(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("serve: opening job store: %w", err)
		}
	}
	extra := 0
	if recovered != nil {
		extra = len(recovered.Jobs)
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		jobs:  map[string]*Job{},
		queue: make(chan *Job, cfg.QueueDepth+extra),
		store: st,
	}
	if cfg.CacheSize > 0 {
		s.cache = newResultCache(cfg.CacheSize)
	}
	handlers := map[string]http.HandlerFunc{
		"POST /v1/jobs":              s.handleSubmit,
		"GET /v1/jobs/{id}":          s.handleStatus,
		"GET /v1/jobs/{id}/result":   s.handleResult,
		"GET /v1/jobs/{id}/manifest": s.handleManifest,
		"GET /v1/jobs/{id}/trace":    s.handleTrace,
		"DELETE /v1/jobs/{id}":       s.handleCancel,
		"POST /v1/replay":            s.handleReplay,
		"GET /v1/specs":              s.handleSpecs,
		"GET /metrics":               s.handleMetrics,
		"GET /healthz":               s.handleHealthz,
	}
	for _, pattern := range Routes() {
		h, ok := handlers[pattern]
		if !ok {
			return nil, fmt.Errorf("serve: route %q has no handler", pattern)
		}
		s.mux.HandleFunc(pattern, h)
	}
	if cfg.CellWorkers > 0 {
		s.pool = campaign.NewPool(cfg.CellWorkers)
	}
	if cfg.Coordinator {
		s.leases = map[string]*lease{}
		s.workers = map[string]*workerInfo{}
		s.janitorStop = make(chan struct{})
		coordHandlers := map[string]http.HandlerFunc{
			"POST /v1/workers":              s.handleWorkerRegister,
			"GET /v1/workers":               s.handleWorkerList,
			"POST /v1/workers/{name}/drain": s.handleWorkerDrain,
			"POST /v1/leases":               s.handleLeaseAcquire,
			"POST /v1/leases/{id}/renew":    s.handleLeaseRenew,
			"POST /v1/leases/{id}/complete": s.handleLeaseComplete,
		}
		for _, pattern := range CoordinatorRoutes() {
			h, ok := coordHandlers[pattern]
			if !ok {
				return nil, fmt.Errorf("serve: coordinator route %q has no handler", pattern)
			}
			s.mux.HandleFunc(pattern, h)
		}
		go s.janitor(cfg.LeaseTTL/2, s.janitorStop)
	}
	if recovered != nil {
		// Shards are not running yet, so recovery fills the jobs map and
		// queue without racing admission.
		s.recoverState(recovered)
	}
	obs.Default.Gauge("rhohammer_serve_queue_depth", s.queued.Load)
	obs.Default.Gauge("rhohammer_serve_jobs_running", s.running.Load)
	obs.Default.Gauge("rhohammer_serve_pending_cells", s.pendingCells.Load)
	obs.Default.Gauge("rhohammer_serve_oldest_pending_seconds", func() int64 {
		ns := s.oldestPending.Load()
		if ns == 0 {
			return 0
		}
		sec := int64(time.Since(time.Unix(0, ns)) / time.Second)
		if sec < 0 {
			sec = 0
		}
		return sec
	})
	for i := 0; i < cfg.Shards; i++ {
		s.shards.Add(1)
		go s.shard()
	}
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain stops admitting jobs (POST returns 503) and blocks until every
// already-admitted job reaches a terminal state and the shard pool has
// exited. Status, result and manifest endpoints keep serving
// throughout, so clients can collect results while the server drains.
// If ctx expires first, every unfinished job is cancelled and Drain
// waits for the (now short) tail before returning ctx's error.
// Drain is idempotent; only the first call closes the queue.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	finished := make(chan struct{})
	go func() {
		s.shards.Wait()
		close(finished)
	}()
	select {
	case <-finished:
		s.stopSchedulers()
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for _, j := range s.jobs {
			if !j.state.terminal() {
				j.canceled = true
				if j.cancel != nil {
					j.cancel()
				}
			}
		}
		s.mu.Unlock()
		<-finished
		s.stopSchedulers()
		return ctx.Err()
	}
}

// stopSchedulers releases the shared cell pool and the lease janitor
// once every admitted job is terminal. Idempotent (Drain can be called
// repeatedly); the janitor must outlive the drain itself so expired
// leases from dead workers keep being reclaimed while distributed jobs
// finish.
func (s *Server) stopSchedulers() {
	s.mu.Lock()
	stop := s.janitorStop
	s.janitorStop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	if s.pool != nil {
		s.pool.Close()
	}
}

// shard is one worker of the job pool: it pops admitted jobs and runs
// them to completion, one at a time.
func (s *Server) shard() {
	defer s.shards.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job's campaign and finalizes it.
func (s *Server) runJob(j *Job) {
	ctx := context.Background()
	s.mu.Lock()
	s.queued.Add(-1)
	if j.canceled || j.state.terminal() {
		// Cancelled while queued: it never starts.
		s.finishLocked(j, StateCanceled, "canceled before start")
		s.attachManifestLocked(j, nil)
		s.persistTerminalLocked(j)
		s.mu.Unlock()
		return
	}
	var cancel context.CancelFunc
	ctx, cancel = context.WithCancel(ctx)
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	s.running.Add(1)
	// Distributable jobs execute on worker nodes (lease.go); local
	// execution uses the shared stealing pool unless the client pinned
	// an explicit per-job parallelism. Neither choice can change result
	// bytes — that is the package's determinism contract.
	distributed := s.cfg.Coordinator && j.distributable
	// Per-job trace capture: every cell seed is reserved before any cell
	// runs, so the hammer sessions the campaign creates record into this
	// job's rings regardless of global tracing state. The dump becomes
	// GET /v1/jobs/{id}/trace. Distributed jobs execute no local
	// sessions, so there is nothing to capture.
	var capt *obs.Capture
	if s.cfg.TraceCap >= 0 && !distributed {
		capt = obs.NewCapture(s.cfg.TraceCap)
		for _, cs := range j.cellStats {
			capt.Reserve(cs.Seed)
		}
	}
	s.mu.Unlock()
	defer cancel()

	// Local execution of a recovered job runs only the cells the store
	// has no result for; idxMap maps the run spec's indices back to the
	// full grid (identity for fresh jobs). Distributed jobs prefill
	// inside runDistributed instead.
	runSpec := j.spec
	var idxMap []int
	if !distributed && j.recoveredResults != nil {
		runSpec.Cells = nil
		for i, c := range j.spec.Cells {
			if j.recoveredResults[i] == nil {
				runSpec.Cells = append(runSpec.Cells, c)
				idxMap = append(idxMap, i)
			}
		}
	} else {
		idxMap = make([]int, len(j.spec.Cells))
		for i := range idxMap {
			idxMap[i] = i
		}
	}
	// Persisted local jobs stage each cell's result from Exec until
	// OnCell (which has the index and final stat) journals it; leased
	// cells are journaled in handleLeaseComplete instead.
	var staged sync.Map
	if s.store != nil && j.persisted && !distributed {
		exec := runSpec.Exec
		runSpec.Exec = func(c campaign.Cell, seed int64) (any, error) {
			v, execErr := exec(c, seed)
			if execErr == nil {
				staged.Store(c.Key, v)
			}
			return v, execErr
		}
	}
	onCell := func(i int, stat campaign.CellStat) {
		full := idxMap[i]
		s.mu.Lock()
		j.cellStats[full] = stat
		j.cellsDone++
		s.mu.Unlock()
		if v, ok := staged.LoadAndDelete(stat.Key); ok && stat.Err == "" {
			s.persistCell(j.ID, full, "", stat, v, nil)
		}
	}
	var out *campaign.Outcome
	var err error
	switch {
	case distributed:
		out, err = s.runDistributed(ctx, j)
	case j.recoveredResults != nil:
		out, err = s.runResumed(ctx, j, runSpec, idxMap, onCell)
	case j.Parallel == 0 && s.pool != nil:
		out, err = s.pool.RunContext(ctx, runSpec, campaign.RunOpts{OnCell: onCell})
	default:
		out, err = campaign.Runner{Workers: j.Parallel, OnCell: onCell}.RunContext(ctx, runSpec)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.running.Add(-1)
	if capt != nil {
		capt.Release()
		if capt.Len() > 0 {
			var buf bytes.Buffer
			if err := capt.WriteJSONL(&buf); err == nil {
				j.trace = buf.Bytes()
			}
		}
	}
	if out != nil {
		// The runner's view is authoritative (it includes never-started
		// cells after a cancellation).
		copy(j.cellStats, out.Cells)
	}
	switch {
	case j.canceled:
		s.finishLocked(j, StateCanceled, "canceled")
	case err != nil:
		s.finishLocked(j, StateFailed, err.Error())
	default:
		cfg := experiments.Config{Seed: j.Seed, Scale: j.Scale, Workers: j.Parallel}
		var canon, timed bytes.Buffer
		encErr := experiments.WriteCanonicalOutcomeJSON(&canon, j.SpecName, cfg, out.Result, out)
		if encErr == nil {
			encErr = experiments.WriteOutcomeJSON(&timed, j.SpecName, cfg, out.Result, out)
		}
		if encErr != nil {
			s.finishLocked(j, StateFailed, encErr.Error())
			break
		}
		j.result = canon.Bytes()
		j.resultTimed = timed.Bytes()
		s.finishLocked(j, StateDone, "")
		if s.cache != nil && j.cacheable {
			s.cache.put(cacheKey{spec: j.SpecName, seed: j.Seed, scale: j.Scale},
				cacheEntry{canon: j.result, timed: j.resultTimed})
		}
	}
	s.attachManifestLocked(j, out)
	s.persistTerminalLocked(j)
}

// finishLocked moves a job to a terminal state, updates counters and
// evicts beyond the retention bound. Caller holds s.mu.
func (s *Server) finishLocked(j *Job, st State, errText string) {
	if j.state.terminal() {
		return
	}
	j.state = st
	j.err = errText
	j.finished = time.Now()
	switch st {
	case StateDone:
		jobsCompleted.Inc()
	case StateFailed:
		jobsFailed.Inc()
	case StateCanceled:
		jobsCanceled.Inc()
	}
	s.done = append(s.done, j.ID)
	for len(s.done) > s.cfg.Retain {
		evict := s.done[0]
		s.done = s.done[1:]
		delete(s.jobs, evict)
		if s.store != nil {
			// Retention and durable retention evict together; a failed
			// delete only means the snapshot reappears after a restart.
			_ = s.store.DeleteSnapshot(evict)
		}
	}
	s.recomputeOldestLocked()
}

// attachManifestLocked records the job's obs manifest (and writes it to
// ManifestDir when configured). Caller holds s.mu.
func (s *Server) attachManifestLocked(j *Job, out *campaign.Outcome) {
	if j.manifest != nil {
		return
	}
	labels := []string{"job", j.ID, "spec", j.SpecName}
	if j.cached {
		labels = append(labels, "cached", "true")
	}
	m := obs.NewManifest("serverd", labels)
	m.Date = j.finished.UTC().Format(time.RFC3339)
	m.Seed, m.Scale, m.Workers = j.Seed, j.Scale, j.Parallel
	rec := obs.RunRecord{Name: j.SpecName, Err: j.err}
	if out != nil {
		rec.WallNS = int64(out.Wall)
		rec.Workers = out.Workers
		for i, c := range out.Cells {
			cr := obs.CellRecord{
				Key: c.Key, Seed: c.Seed, WallNS: int64(c.Wall),
				Attempts: c.Attempts, Err: c.Err,
			}
			if i < len(j.cellNodes) {
				cr.Node = j.cellNodes[i]
			}
			rec.Cells = append(rec.Cells, cr)
		}
	}
	m.Runs = []obs.RunRecord{rec}
	if len(j.cellNodes) > 0 {
		// Distributed run: summarize per-node contribution (placement is
		// scheduling noise, so it lives only in this as-executed record).
		counts := map[string]int{}
		for _, node := range j.cellNodes {
			if node != "" {
				counts[node]++
			}
		}
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m.Nodes = append(m.Nodes, obs.NodeRecord{Name: name, Cells: counts[name]})
		}
	}
	if obs.Enabled() {
		m.Counters = obs.Default.Values()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return
	}
	data = append(data, '\n')
	j.manifest = data
	if s.cfg.ManifestDir != "" {
		// Best-effort: a failed manifest write must not fail the job.
		_ = writeManifestFile(s.cfg.ManifestDir, j.ID, data)
	}
}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	// Spec names a registered campaign; Inline supplies an ad-hoc grid.
	// Exactly one must be set.
	Spec   string      `json:"spec,omitempty"`
	Inline *InlineSpec `json:"inline,omitempty"`
	// Seed defaults to the server's DefaultSeed, Scale to 1. Parallel
	// (the per-job campaign worker pool; 0 = GOMAXPROCS) never changes
	// result bytes.
	Seed     *int64  `json:"seed,omitempty"`
	Scale    float64 `json:"scale,omitempty"`
	Parallel int     `json:"parallel,omitempty"`
}

// jobAccepted is the POST /v1/jobs success body.
type jobAccepted struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	StatusURL string `json:"status_url"`
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid job request: " + err.Error()})
		return
	}
	if (req.Spec == "") == (req.Inline == nil) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "exactly one of \"spec\" and \"inline\" must be set"})
		return
	}
	seed := s.cfg.DefaultSeed
	if req.Seed != nil {
		seed = *req.Seed
	}
	scale := req.Scale
	if scale <= 0 {
		scale = 1
	}

	var spec campaign.Spec
	name := req.Spec
	if req.Inline != nil {
		var err error
		spec, err = req.Inline.build(seed)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
			return
		}
		name = spec.Name
	} else {
		entry, ok := s.cfg.Registry.Lookup(req.Spec)
		if !ok {
			writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown spec %q (GET /v1/specs lists them)", req.Spec)})
			return
		}
		spec = entry.Build(campaign.Params{Seed: seed, Scale: scale})
	}
	if err := spec.Validate(); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}

	j := &Job{
		SpecName: name,
		Seed:     seed,
		Scale:    scale,
		Parallel: req.Parallel,
		state:    StateQueued,
		created:  time.Now(),
		spec:     spec,
	}
	j.cacheable = req.Inline == nil
	// Only registry-built jobs can execute on worker nodes: a worker
	// rebuilds the spec from (name, seed, scale) against its own
	// registry, which inline grids and replay traces are absent from.
	// The same property makes them the persistable jobs — recovery
	// rebuilds the spec the identical way.
	j.distributable = req.Inline == nil
	j.persisted = s.store != nil && req.Inline == nil
	j.cellStats = make([]campaign.CellStat, len(spec.Cells))
	for i, c := range spec.Cells {
		j.cellStats[i] = campaign.CellStat{Key: c.Key, Seed: spec.CellSeed(c.Key)}
	}
	s.admit(w, j)
}

// admit runs the shared admission tail for a fully built job — the
// same machinery whether the job came from POST /v1/jobs or
// POST /v1/replay: drain check, result-cache lookup (a hit is born
// done without consuming queue or shard capacity), then queue
// admission with 429 backpressure.
func (s *Server) admit(w http.ResponseWriter, j *Job) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, apiError{Error: "server is draining"})
		return
	}
	if s.cache != nil && j.cacheable {
		if e, ok := s.cache.get(cacheKey{spec: j.SpecName, seed: j.Seed, scale: j.Scale}); ok {
			// Cache hit: the job is born done, serving the completed
			// envelopes without consuming queue or shard capacity.
			s.seq++
			j.ID = fmt.Sprintf("job-%06d", s.seq)
			s.jobs[j.ID] = j
			j.cached = true
			j.started = j.created
			j.cellsDone = len(j.spec.Cells)
			j.result = e.canon
			j.resultTimed = e.timed
			s.persistAdmitLocked(j)
			s.finishLocked(j, StateDone, "")
			s.attachManifestLocked(j, nil)
			s.persistTerminalLocked(j)
			s.mu.Unlock()
			jobsAccepted.Inc()
			cacheHits.Inc()
			w.Header().Set("Location", "/v1/jobs/"+j.ID)
			writeJSON(w, http.StatusAccepted, jobAccepted{ID: j.ID, State: StateDone, StatusURL: "/v1/jobs/" + j.ID})
			return
		}
		cacheMisses.Inc()
	}
	s.seq++
	j.ID = fmt.Sprintf("job-%06d", s.seq)
	select {
	case s.queue <- j:
		s.queued.Add(1)
		s.jobs[j.ID] = j
		s.recomputeOldestLocked()
		s.persistAdmitLocked(j)
	default:
		s.seq-- // the ID was never issued
		s.mu.Unlock()
		jobsRejected.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, apiError{Error: "job queue is full"})
		return
	}
	s.mu.Unlock()
	jobsAccepted.Inc()

	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, jobAccepted{ID: j.ID, State: StateQueued, StatusURL: "/v1/jobs/" + j.ID})
}

// lookupJob fetches a job by path id, writing 404 when absent.
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *Job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job (completed jobs are evicted beyond the retention bound)"})
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state, errText := j.state, j.err
	body := j.result
	if r.URL.Query().Get("timings") == "1" {
		body = j.resultTimed
	}
	s.mu.Unlock()
	switch {
	case state == StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	case state.terminal():
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("job %s: %s", state, errText)})
	default:
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("job is %s; poll the status endpoint", state)})
	}
}

func (s *Server) handleManifest(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	body := j.manifest
	s.mu.Unlock()
	if body == nil {
		writeJSON(w, http.StatusConflict, apiError{Error: "manifest is written when the job finishes"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	switch {
	case j.state.terminal():
		st := j.state
		s.mu.Unlock()
		writeJSON(w, http.StatusConflict, apiError{Error: fmt.Sprintf("job already %s", st)})
		return
	case j.state == StateQueued:
		// The queued entry is skipped when a shard pops it.
		j.canceled = true
		s.finishLocked(j, StateCanceled, "canceled before start")
	default: // running
		j.canceled = true
		if j.cancel != nil {
			j.cancel()
		}
	}
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, st)
}

// specInfo is one GET /v1/specs entry.
type specInfo struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Title string `json:"title"`
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	entries := s.cfg.Registry.SortedEntries()
	out := make([]specInfo, len(entries))
	for i, e := range entries {
		out[i] = specInfo{Name: e.Name, Kind: e.Kind.String(), Title: e.Title}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	obs.Default.WritePrometheus(w)
}

// healthStatus is the GET /healthz body.
type healthStatus struct {
	Status  string `json:"status"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := healthStatus{Status: "ok", Queued: int(s.queued.Load()), Running: int(s.running.Load())}
	if s.draining {
		h.Status = "draining"
	}
	s.mu.Unlock()
	code := http.StatusOK
	if h.Status != "ok" {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
