package serve

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"rhohammer/internal/experiments"
)

// TestNodeCountDeterminism is the fabric's acceptance proof, the
// node-count extension of worker-count determinism (make determinism
// runs it under -race): the same registered spec at the same seed and
// scale produces byte-identical canonical envelopes whether it runs
// standalone or on a coordinator with 1, 2 or 4 worker nodes. Cell
// seeds derive from stable keys, results travel the wire losslessly
// (gob), and the coordinator's merge is the same AssembleOutcome +
// WriteCanonicalOutcomeJSON path a local run uses — so placement can
// never leak into the bytes.
func TestNodeCountDeterminism(t *testing.T) {
	const body = `{"spec":"tiny","seed":123}`
	reg := tinyRegistry()

	// Standalone: the whole grid runs in-process (on the shared
	// stealing pool — parallel is unset).
	want := standaloneEnvelope(t, reg, body)

	for _, nodes := range []int{1, 2, 4} {
		_, ts := newTestServer(t, Config{
			Registry: reg, Coordinator: true,
			// Batch 1 forces one lease per cell, so multi-worker
			// topologies genuinely interleave nodes within the grid.
			LeaseBatch: 1, LeaseTTL: 5 * time.Second,
		})
		startWorkers(t, ts, reg, nodes)

		id := submit(t, ts, body)
		st := waitTerminal(t, ts, id)
		if st.State != StateDone {
			t.Fatalf("nodes=%d: job = %s (%s)", nodes, st.State, st.Error)
		}
		code, got := fetch(t, ts.URL+st.ResultURL)
		if code != http.StatusOK {
			t.Fatalf("nodes=%d: result = %d", nodes, code)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("nodes=%d: envelope differs from standalone\n got: %s\nwant: %s", nodes, got, want)
		}
	}
}

// TestNodeCountDeterminismRealSpec repeats the proof on the real
// experiment registry — the `chain` grid, whose cells return real
// result structs that must survive the gob wire — comparing a
// standalone run against a 2-node topology byte for byte.
func TestNodeCountDeterminismRealSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the chain grid twice")
	}
	const body = `{"spec":"chain","seed":123,"scale":0.05}`
	want := standaloneEnvelope(t, experiments.Registry, body)

	_, ts := newTestServer(t, Config{
		Registry: experiments.Registry, Coordinator: true,
		LeaseBatch: 2, LeaseTTL: 10 * time.Second,
	})
	startWorkers(t, ts, experiments.Registry, 2)

	id := submit(t, ts, body)
	deadline := time.Now().Add(2 * time.Minute)
	var st jobStatus
	for {
		if time.Now().After(deadline) {
			t.Fatalf("distributed chain job did not finish")
		}
		code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id, "", &st)
		if code != http.StatusOK {
			t.Fatalf("GET job = %d", code)
		}
		if st.State.terminal() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.State != StateDone {
		t.Fatalf("job = %s (%s)", st.State, st.Error)
	}
	code, got := fetch(t, ts.URL+st.ResultURL)
	if code != http.StatusOK {
		t.Fatalf("result = %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("2-node chain envelope differs from standalone\n got: %s\nwant: %s", got, want)
	}
}
