package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/dram"
	"rhohammer/internal/experiments"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
	"rhohammer/internal/replay"
)

// synthTrace returns a small headered ACT/REF trace: enough commands to
// exercise the engine, cheap enough to POST in a unit test.
func synthTrace(seed int64) string {
	var b strings.Builder
	b.WriteString(replay.HeaderLine("S3", seed))
	t, seq := 0.0, 0
	for i := 0; i < 500; i++ {
		t += 50
		fmt.Fprintf(&b, `{"seq":%d,"t_ns":%g,"layer":"dram","kind":"act","bank":%d,"row":%d}`+"\n",
			seq, t, i%4, 1000+uint64(i%16)*2)
		seq++
		if i%100 == 99 {
			t += 400
			fmt.Fprintf(&b, `{"seq":%d,"t_ns":%g,"layer":"dram","kind":"ref"}`+"\n", seq, t)
			seq++
		}
	}
	return b.String()
}

// replayBody JSON-encodes a POST /v1/replay request.
func replayBody(t *testing.T, req map[string]any) string {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestReplayEndpointDeterministicAcrossShards pins the tentpole serving
// contract: POST /v1/replay produces the same canonical verdict
// envelope as running the replay spec through the campaign Runner
// directly, byte-identical at any shard count — and resubmitting the
// same trace is served from the result cache.
func TestReplayEndpointDeterministicAcrossShards(t *testing.T) {
	trace := synthTrace(77)
	body := replayBody(t, map[string]any{"trace": trace})

	// The direct path: decode, wrap, run, canonical envelope.
	f, err := replay.DecodeBytes([]byte(trace), replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := replay.Spec(f)
	out, err := campaign.Runner{Workers: 1}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	cfg := experiments.Config{Seed: f.Seed, Scale: 1, Workers: 1}
	if err := experiments.WriteCanonicalOutcomeJSON(&want, spec.Name, cfg, out.Result, out); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{1, 3} {
		_, ts := newTestServer(t, Config{Registry: tinyRegistry(), Shards: shards})
		var acc jobAccepted
		code, _ := doJSON(t, "POST", ts.URL+"/v1/replay", body, &acc)
		if code != http.StatusAccepted {
			t.Fatalf("shards=%d: POST /v1/replay = %d", shards, code)
		}
		st := waitTerminal(t, ts, acc.ID)
		if st.State != StateDone {
			t.Fatalf("shards=%d: job = %s (%s)", shards, st.State, st.Error)
		}
		if !strings.HasPrefix(st.Spec, "replay/") {
			t.Errorf("replay job spec = %q, want a replay/<hash> name", st.Spec)
		}
		code, got := fetch(t, ts.URL+st.ResultURL)
		if code != http.StatusOK {
			t.Fatalf("GET result = %d", code)
		}
		if !bytes.Equal(got, want.Bytes()) {
			t.Errorf("shards=%d: served replay envelope differs from direct Runner envelope\n got: %s\nwant: %s",
				shards, got, want.Bytes())
		}

		// Same trace again: served from the result cache, byte-identical.
		var acc2 jobAccepted
		code, _ = doJSON(t, "POST", ts.URL+"/v1/replay", body, &acc2)
		if code != http.StatusAccepted || acc2.State != StateDone {
			t.Fatalf("shards=%d: replay resubmit = %d state=%s, want 202/done", shards, code, acc2.State)
		}
		if st2 := waitTerminal(t, ts, acc2.ID); !st2.Cached {
			t.Errorf("shards=%d: replay resubmit not served from cache", shards)
		}
		_, got2 := fetch(t, ts.URL+"/v1/jobs/"+acc2.ID+"/result")
		if !bytes.Equal(got2, want.Bytes()) {
			t.Errorf("shards=%d: cached replay envelope differs", shards)
		}

		// A different device seed is a different content hash, so it
		// must miss the cache.
		var acc3 jobAccepted
		code, _ = doJSON(t, "POST", ts.URL+"/v1/replay",
			replayBody(t, map[string]any{"trace": trace, "seed": 78}), &acc3)
		if code != http.StatusAccepted {
			t.Fatalf("shards=%d: reseeded replay = %d", shards, code)
		}
		if st3 := waitTerminal(t, ts, acc3.ID); st3.Cached || st3.State != StateDone {
			t.Errorf("shards=%d: reseeded replay state=%s cached=%v, want fresh done", shards, st3.State, st3.Cached)
		}
	}
}

// TestReplayEndpointValidation pins the rejection paths: malformed
// request bodies and malformed traces are typed 400s at submission
// (never failed jobs), and oversize bodies are a 413 bounded by
// MaxReplayBytes.
func TestReplayEndpointValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry()})
	cases := []struct {
		name, body, wantFrag string
	}{
		{"invalid JSON", `{not json`, "invalid replay request"},
		{"unknown field", `{"trace":"x","bogus":1}`, "invalid replay request"},
		{"missing trace", `{"dimm":"S3"}`, `"trace" is required`},
		{"unknown event kind", replayBody(t, map[string]any{
			"trace": `{"seq":0,"layer":"dram","kind":"zap"}`, "dimm": "S3"}), "unknown-kind"},
		{"no module profile", replayBody(t, map[string]any{
			"trace": `{"seq":0,"layer":"dram","kind":"act","bank":0,"row":1}`}), "dimm"},
		{"empty trace", replayBody(t, map[string]any{"trace": "\n\n", "dimm": "S3"}), "empty"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var apiErr apiError
			code, _ := doJSON(t, "POST", ts.URL+"/v1/replay", tc.body, &apiErr)
			if code != http.StatusBadRequest {
				t.Fatalf("POST = %d, want 400", code)
			}
			if !strings.Contains(apiErr.Error, tc.wantFrag) {
				t.Errorf("error %q does not mention %q", apiErr.Error, tc.wantFrag)
			}
		})
	}

	_, small := newTestServer(t, Config{Registry: tinyRegistry(), MaxReplayBytes: 1024})
	big := replayBody(t, map[string]any{"trace": synthTrace(1), "dimm": "S3"})
	var apiErr apiError
	code, _ := doJSON(t, "POST", small.URL+"/v1/replay", big, &apiErr)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize POST = %d, want 413", code)
	}
	if !strings.Contains(apiErr.Error, "1024") {
		t.Errorf("413 error %q does not state the bound", apiErr.Error)
	}
}

// TestTraceEndpointUnavailable pins the two 409 paths of
// GET /v1/jobs/{id}/trace: the job is still running, or it finished
// without recording any sessions.
func TestTraceEndpointUnavailable(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Config{Registry: blockingRegistry(gate)})
	id := submit(t, ts, `{"spec":"block","seed":1}`)
	var apiErr apiError
	code, _ := doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/trace", "", &apiErr)
	if code != http.StatusConflict {
		t.Fatalf("GET trace while pending = %d, want 409", code)
	}
	close(gate)
	if st := waitTerminal(t, ts, id); st.State != StateDone {
		t.Fatalf("job = %s", st.State)
	}
	// The blocking spec runs no hammer sessions, so there is no trace.
	code, _ = doJSON(t, "GET", ts.URL+"/v1/jobs/"+id+"/trace", "", &apiErr)
	if code != http.StatusConflict {
		t.Fatalf("GET trace of sessionless job = %d, want 409", code)
	}
}

// hammerRegistry registers a one-cell spec that hammers the vulnerable
// S4 module for real, stashing the session's flips in sink so the test
// can compare them against a replay of the job's served trace.
func hammerRegistry(mu *sync.Mutex, sink *[]dram.Flip) *campaign.Registry {
	r := campaign.NewRegistry()
	r.Register(campaign.Entry{
		Name: "hot", Kind: campaign.KindAux, Title: "one real hammer cell",
		Build: func(p campaign.Params) campaign.Spec {
			return campaign.Spec{
				Name: "hot", Kind: campaign.KindAux, Seed: p.Seed,
				Cells: []campaign.Cell{{Key: "only"}},
				Exec: func(c campaign.Cell, seed int64) (any, error) {
					a := arch.RaptorLake()
					s, err := hammer.NewSession(a, arch.DIMMS4(), seed)
					if err != nil {
						return nil, err
					}
					if _, err := s.HammerPatternFor(pattern.KnownGood(), hammer.RecommendedSingleBank(a), 0, 1000, 25e6); err != nil {
						return nil, err
					}
					flips := append([]dram.Flip(nil), s.Dev.Flips()...)
					mu.Lock()
					*sink = append((*sink)[:0], flips...)
					mu.Unlock()
					return len(flips), nil
				},
			}
		},
	})
	return r
}

// TestJobTraceRoundTrip is the trace-serving satellite end to end: a
// real hammer job's trace fetched from GET /v1/jobs/{id}/trace decodes
// and replays to exactly the flip set the job's session observed, and
// the same bytes are accepted back through POST /v1/replay.
func TestJobTraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 25ms hammer session; skipped in -short")
	}
	var mu sync.Mutex
	var sessionFlips []dram.Flip
	// The ring must hold the full session (~440k events at 25ms), and the
	// replay bound must admit the resulting ~25MB dump for the POST below.
	_, ts := newTestServer(t, Config{
		Registry: hammerRegistry(&mu, &sessionFlips), TraceCap: 1 << 19, MaxReplayBytes: 64 << 20,
	})

	id := submit(t, ts, `{"spec":"hot","seed":99}`)
	st := waitTerminal(t, ts, id)
	if st.State != StateDone {
		t.Fatalf("job = %s (%s)", st.State, st.Error)
	}
	if st.TraceURL != "/v1/jobs/"+id+"/trace" {
		t.Fatalf("trace_url = %q", st.TraceURL)
	}
	code, trace := fetch(t, ts.URL+st.TraceURL)
	if code != http.StatusOK {
		t.Fatalf("GET trace = %d", code)
	}
	code, again := fetch(t, ts.URL+st.TraceURL)
	if code != http.StatusOK || !bytes.Equal(trace, again) {
		t.Error("trace endpoint is not deterministic across fetches")
	}

	// Replay locally with the cell's derived device seed.
	devSeed := hammer.DeviceSeed(st.Cells[0].Seed)
	f, err := replay.DecodeBytes(trace, replay.Options{DIMM: "S4", Seed: &devSeed})
	if err != nil {
		t.Fatal(err)
	}
	v := replay.Run(f)
	if v.Divergence != "" {
		t.Fatalf("auditor divergence replaying the served trace: %s", v.Divergence)
	}
	if v.RecordedMissing != 0 {
		t.Errorf("%d flips recorded in the served trace were not reproduced", v.RecordedMissing)
	}
	mu.Lock()
	want := append([]dram.Flip(nil), sessionFlips...)
	mu.Unlock()
	if len(want) == 0 {
		t.Fatal("hammer job produced no flips; round trip would be vacuous")
	}
	if v.FlipCount != len(want) {
		t.Fatalf("replayed %d flips, job session observed %d", v.FlipCount, len(want))
	}
	for i, fl := range want {
		got := v.Flips[i]
		if got.Bank != fl.Bank || got.Row != fl.Row || got.Byte != fl.ByteInRow ||
			got.Bit != int(fl.Bit) || got.OneToZero != fl.OneToZero || got.TimeNS != fl.Time {
			t.Errorf("flip %d: replayed %+v, session observed %+v", i, got, fl)
		}
	}

	// And the served bytes round-trip through the replay endpoint.
	var acc jobAccepted
	code, _ = doJSON(t, "POST", ts.URL+"/v1/replay",
		replayBody(t, map[string]any{"trace": string(trace), "dimm": "S4", "seed": devSeed}), &acc)
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/replay of served trace = %d", code)
	}
	if rst := waitTerminal(t, ts, acc.ID); rst.State != StateDone {
		t.Fatalf("replay of served trace = %s (%s)", rst.State, rst.Error)
	}
}
