package serve

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
)

// TestCacheHitServesIdenticalBytesInstantly pins the cache satellite's
// contract: resubmitting a completed (spec, seed, scale) yields a job
// that is born done, marked cached, and serves byte-identical result
// envelopes — without consuming queue or shard capacity.
func TestCacheHitServesIdenticalBytesInstantly(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry()})

	first := submit(t, ts, `{"spec":"tiny","seed":7}`)
	st := waitTerminal(t, ts, first)
	if st.State != StateDone || st.Cached {
		t.Fatalf("first run: state=%s cached=%v, want done/uncached", st.State, st.Cached)
	}
	_, want := fetch(t, ts.URL+"/v1/jobs/"+first+"/result")
	_, wantTimed := fetch(t, ts.URL+"/v1/jobs/"+first+"/result?timings=1")

	// The resubmission is already terminal in the accept response.
	var acc jobAccepted
	code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"spec":"tiny","seed":7,"parallel":3}`, &acc)
	if code != http.StatusAccepted || acc.State != StateDone {
		t.Fatalf("cached POST = %d state=%s, want 202/done", code, acc.State)
	}
	st = waitTerminal(t, ts, acc.ID)
	if !st.Cached || st.State != StateDone {
		t.Fatalf("cached job status: state=%s cached=%v", st.State, st.Cached)
	}
	_, got := fetch(t, ts.URL+"/v1/jobs/"+acc.ID+"/result")
	if !bytes.Equal(got, want) {
		t.Error("cached canonical envelope differs from the original")
	}
	_, gotTimed := fetch(t, ts.URL+"/v1/jobs/"+acc.ID+"/result?timings=1")
	if !bytes.Equal(gotTimed, wantTimed) {
		t.Error("cached timed envelope differs from the original")
	}
	_, manifest := fetch(t, ts.URL+"/v1/jobs/"+acc.ID+"/manifest")
	if !bytes.Contains(manifest, []byte(`"cached"`)) {
		t.Error("cached job manifest does not record the cache hit")
	}

	// Different seed and different scale are different keys.
	for _, body := range []string{`{"spec":"tiny","seed":8}`, `{"spec":"tiny","seed":7,"scale":0.5}`} {
		id := submit(t, ts, body)
		if st := waitTerminal(t, ts, id); st.Cached {
			t.Errorf("submission %s wrongly served from cache", body)
		}
	}
}

// TestCacheDisabledAndInlineBypass pins the two opt-outs: CacheSize<0
// disables caching entirely, and inline specs never hit the cache even
// when it is on.
func TestCacheDisabledAndInlineBypass(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry(), CacheSize: -1})
	for i := 0; i < 2; i++ {
		id := submit(t, ts, `{"spec":"tiny","seed":7}`)
		if st := waitTerminal(t, ts, id); st.Cached {
			t.Fatal("cache hit with caching disabled")
		}
	}

	if testing.Short() {
		return // the inline jobs below hammer a real session
	}
	_, ts2 := newTestServer(t, Config{Registry: tinyRegistry()})
	inline := `{"inline":{"name":"adhoc","cells":[
		{"key":"x","arch":"Raptor Lake","dimm":"S3",
		 "config":{"instr":"prefetcht2","banks":4,"barrier":"nop","nops":21,"obfuscate":true},
		 "budget":{"patterns":1,"locations":1,"duration_ns":2e7}}]},"seed":7}`
	// Inline submissions at the same (name, seed, scale) must re-run.
	ids := []string{}
	for i := 0; i < 2; i++ {
		var acc jobAccepted
		code, _ := doJSON(t, "POST", ts2.URL+"/v1/jobs", inline, &acc)
		if code != http.StatusAccepted {
			t.Fatalf("inline POST = %d", code)
		}
		ids = append(ids, acc.ID)
	}
	for _, id := range ids {
		if st := waitTerminal(t, ts2, id); st.Cached {
			t.Error("inline spec wrongly served from cache")
		}
	}
}

// TestResultCacheEvictionOrder pins the eviction *order*, not just the
// bound: FIFO by first insertion, overwrites keep the original slot
// (and age), and a re-inserted key after eviction goes to the back of
// the line.
func TestResultCacheEvictionOrder(t *testing.T) {
	cases := []struct {
		name    string
		cap     int
		puts    []string // keys inserted in order (repeats overwrite or re-insert)
		present []string
		absent  []string
	}{
		{
			name: "capacity one holds only the newest",
			cap:  1, puts: []string{"a", "b"},
			present: []string{"b"}, absent: []string{"a"},
		},
		{
			name: "fifo evicts the first insertion",
			cap:  2, puts: []string{"a", "b", "c"},
			present: []string{"b", "c"}, absent: []string{"a"},
		},
		{
			name: "re-insert after evict joins the back of the line",
			cap:  2, puts: []string{"a", "b", "c", "a"}, // c evicts a; a re-enters, evicting b
			present: []string{"c", "a"}, absent: []string{"b"},
		},
		{
			name: "overwrite keeps the original slot and age",
			cap:  2, puts: []string{"a", "b", "a", "c"}, // overwrite of a is not a new slot; c still evicts a
			present: []string{"b", "c"}, absent: []string{"a"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newResultCache(tc.cap)
			for i, k := range tc.puts {
				c.put(cacheKey{spec: k}, cacheEntry{canon: []byte{byte(i)}})
			}
			if len(c.m) > tc.cap || len(c.order) > tc.cap {
				t.Fatalf("cache exceeded its bound: %d entries, %d order slots, cap %d",
					len(c.m), len(c.order), tc.cap)
			}
			for _, k := range tc.present {
				if _, ok := c.get(cacheKey{spec: k}); !ok {
					t.Errorf("key %q wrongly evicted", k)
				}
			}
			for _, k := range tc.absent {
				if _, ok := c.get(cacheKey{spec: k}); ok {
					t.Errorf("key %q should have been evicted", k)
				}
			}
		})
	}
}

// TestConcurrentCacheHits hammers one completed (spec, seed, scale)
// with concurrent resubmissions: every one must be born done, marked
// cached:true in both status and manifest, and serve byte-identical
// envelopes. `make verify` runs this under -race, so it also shakes
// out cache/admission data races.
func TestConcurrentCacheHits(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry()})
	first := submit(t, ts, `{"spec":"tiny","seed":7}`)
	if st := waitTerminal(t, ts, first); st.State != StateDone {
		t.Fatalf("priming job = %s", st.State)
	}
	_, want := fetch(t, ts.URL+"/v1/jobs/"+first+"/result")

	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var acc jobAccepted
			code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"spec":"tiny","seed":7}`, &acc)
			if code != http.StatusAccepted || acc.State != StateDone {
				t.Errorf("hit %d: POST = %d state=%s, want 202/done", i, code, acc.State)
				return
			}
			ids[i] = acc.ID
		}(i)
	}
	wg.Wait()
	for i, id := range ids {
		if id == "" {
			continue // already reported
		}
		st := waitTerminal(t, ts, id)
		if !st.Cached || st.State != StateDone {
			t.Errorf("hit %d: state=%s cached=%v, want done/cached", i, st.State, st.Cached)
		}
		if _, got := fetch(t, ts.URL+"/v1/jobs/"+id+"/result"); !bytes.Equal(got, want) {
			t.Errorf("hit %d: cached envelope differs from the original", i)
		}
		if _, manifest := fetch(t, ts.URL+"/v1/jobs/"+id+"/manifest"); !bytes.Contains(manifest, []byte(`"cached"`)) {
			t.Errorf("hit %d: manifest does not record the cache hit", i)
		}
	}
}

// TestResultCacheEviction pins the FIFO bound.
func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(2)
	c.put(cacheKey{spec: "a"}, cacheEntry{canon: []byte("a")})
	c.put(cacheKey{spec: "b"}, cacheEntry{canon: []byte("b")})
	c.put(cacheKey{spec: "a"}, cacheEntry{canon: []byte("a2")}) // overwrite, no new slot
	if e, ok := c.get(cacheKey{spec: "a"}); !ok || string(e.canon) != "a2" {
		t.Fatalf("overwrite lost: %v %q", ok, e.canon)
	}
	c.put(cacheKey{spec: "c"}, cacheEntry{canon: []byte("c")})
	if _, ok := c.get(cacheKey{spec: "a"}); ok {
		t.Error("oldest entry not evicted")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(cacheKey{spec: k}); !ok {
			t.Errorf("entry %q wrongly evicted", k)
		}
	}
}
