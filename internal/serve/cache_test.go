package serve

import (
	"bytes"
	"net/http"
	"testing"
)

// TestCacheHitServesIdenticalBytesInstantly pins the cache satellite's
// contract: resubmitting a completed (spec, seed, scale) yields a job
// that is born done, marked cached, and serves byte-identical result
// envelopes — without consuming queue or shard capacity.
func TestCacheHitServesIdenticalBytesInstantly(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry()})

	first := submit(t, ts, `{"spec":"tiny","seed":7}`)
	st := waitTerminal(t, ts, first)
	if st.State != StateDone || st.Cached {
		t.Fatalf("first run: state=%s cached=%v, want done/uncached", st.State, st.Cached)
	}
	_, want := fetch(t, ts.URL+"/v1/jobs/"+first+"/result")
	_, wantTimed := fetch(t, ts.URL+"/v1/jobs/"+first+"/result?timings=1")

	// The resubmission is already terminal in the accept response.
	var acc jobAccepted
	code, _ := doJSON(t, "POST", ts.URL+"/v1/jobs", `{"spec":"tiny","seed":7,"parallel":3}`, &acc)
	if code != http.StatusAccepted || acc.State != StateDone {
		t.Fatalf("cached POST = %d state=%s, want 202/done", code, acc.State)
	}
	st = waitTerminal(t, ts, acc.ID)
	if !st.Cached || st.State != StateDone {
		t.Fatalf("cached job status: state=%s cached=%v", st.State, st.Cached)
	}
	_, got := fetch(t, ts.URL+"/v1/jobs/"+acc.ID+"/result")
	if !bytes.Equal(got, want) {
		t.Error("cached canonical envelope differs from the original")
	}
	_, gotTimed := fetch(t, ts.URL+"/v1/jobs/"+acc.ID+"/result?timings=1")
	if !bytes.Equal(gotTimed, wantTimed) {
		t.Error("cached timed envelope differs from the original")
	}
	_, manifest := fetch(t, ts.URL+"/v1/jobs/"+acc.ID+"/manifest")
	if !bytes.Contains(manifest, []byte(`"cached"`)) {
		t.Error("cached job manifest does not record the cache hit")
	}

	// Different seed and different scale are different keys.
	for _, body := range []string{`{"spec":"tiny","seed":8}`, `{"spec":"tiny","seed":7,"scale":0.5}`} {
		id := submit(t, ts, body)
		if st := waitTerminal(t, ts, id); st.Cached {
			t.Errorf("submission %s wrongly served from cache", body)
		}
	}
}

// TestCacheDisabledAndInlineBypass pins the two opt-outs: CacheSize<0
// disables caching entirely, and inline specs never hit the cache even
// when it is on.
func TestCacheDisabledAndInlineBypass(t *testing.T) {
	_, ts := newTestServer(t, Config{Registry: tinyRegistry(), CacheSize: -1})
	for i := 0; i < 2; i++ {
		id := submit(t, ts, `{"spec":"tiny","seed":7}`)
		if st := waitTerminal(t, ts, id); st.Cached {
			t.Fatal("cache hit with caching disabled")
		}
	}

	if testing.Short() {
		return // the inline jobs below hammer a real session
	}
	_, ts2 := newTestServer(t, Config{Registry: tinyRegistry()})
	inline := `{"inline":{"name":"adhoc","cells":[
		{"key":"x","arch":"Raptor Lake","dimm":"S3",
		 "config":{"instr":"prefetcht2","banks":4,"barrier":"nop","nops":21,"obfuscate":true},
		 "budget":{"patterns":1,"locations":1,"duration_ns":2e7}}]},"seed":7}`
	// Inline submissions at the same (name, seed, scale) must re-run.
	ids := []string{}
	for i := 0; i < 2; i++ {
		var acc jobAccepted
		code, _ := doJSON(t, "POST", ts2.URL+"/v1/jobs", inline, &acc)
		if code != http.StatusAccepted {
			t.Fatalf("inline POST = %d", code)
		}
		ids = append(ids, acc.ID)
	}
	for _, id := range ids {
		if st := waitTerminal(t, ts2, id); st.Cached {
			t.Error("inline spec wrongly served from cache")
		}
	}
}

// TestResultCacheEviction pins the FIFO bound.
func TestResultCacheEviction(t *testing.T) {
	c := newResultCache(2)
	c.put(cacheKey{spec: "a"}, cacheEntry{canon: []byte("a")})
	c.put(cacheKey{spec: "b"}, cacheEntry{canon: []byte("b")})
	c.put(cacheKey{spec: "a"}, cacheEntry{canon: []byte("a2")}) // overwrite, no new slot
	if e, ok := c.get(cacheKey{spec: "a"}); !ok || string(e.canon) != "a2" {
		t.Fatalf("overwrite lost: %v %q", ok, e.canon)
	}
	c.put(cacheKey{spec: "c"}, cacheEntry{canon: []byte("c")})
	if _, ok := c.get(cacheKey{spec: "a"}); ok {
		t.Error("oldest entry not evicted")
	}
	for _, k := range []string{"b", "c"} {
		if _, ok := c.get(cacheKey{spec: k}); !ok {
			t.Errorf("entry %q wrongly evicted", k)
		}
	}
}
