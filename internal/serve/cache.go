package serve

import "rhohammer/internal/obs"

// Result-cache counters, exposed at /metrics next to the job counters.
var (
	cacheHits   = obs.Default.Counter("rhohammer_serve_result_cache_hits_total")
	cacheMisses = obs.Default.Counter("rhohammer_serve_result_cache_misses_total")
)

// cacheKey identifies a completed result. Campaign outputs are pure
// functions of (spec, seed, scale) — parallelism never changes result
// bytes (pinned by the determinism tests) — so those three fields are
// the whole key. Inline specs are never cached: their identity is the
// request body, not a registry name.
type cacheKey struct {
	spec  string
	seed  int64
	scale float64
}

// cacheEntry holds both result envelopes of a completed job.
type cacheEntry struct {
	canon, timed []byte
}

// resultCache is a bounded FIFO map of completed result envelopes,
// guarded by the owning Server's mutex. Resubmitting a completed
// (spec, seed, scale) yields a job that is born done, serving the
// cached bytes without re-running the campaign.
type resultCache struct {
	cap   int
	m     map[cacheKey]cacheEntry
	order []cacheKey // insertion order, for eviction
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{cap: capacity, m: map[cacheKey]cacheEntry{}}
}

func (c *resultCache) get(k cacheKey) (cacheEntry, bool) {
	e, ok := c.m[k]
	return e, ok
}

func (c *resultCache) put(k cacheKey, e cacheEntry) {
	if _, exists := c.m[k]; exists {
		c.m[k] = e
		return
	}
	c.m[k] = e
	c.order = append(c.order, k)
	for len(c.order) > c.cap {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.m, evict)
	}
}
