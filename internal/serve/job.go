package serve

import (
	"context"
	"time"

	"rhohammer/internal/campaign"
)

// State is a job's lifecycle phase. Transitions only move forward:
// queued → running → {done, failed}, and queued/running → canceled.
type State string

const (
	// StateQueued means the job is admitted but no shard has picked it
	// up yet.
	StateQueued State = "queued"
	// StateRunning means a shard is executing the job's campaign.
	StateRunning State = "running"
	// StateDone means the campaign completed and the result envelope is
	// available.
	StateDone State = "done"
	// StateFailed means the campaign returned an error (the partial
	// per-cell stats are still reported).
	StateFailed State = "failed"
	// StateCanceled means DELETE reached the job before it finished.
	StateCanceled State = "canceled"
)

// terminal reports whether the state is final.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one admitted campaign execution. All mutable fields are
// guarded by the owning Server's mutex; the HTTP handlers only ever see
// snapshots (jobStatus) taken under it.
type Job struct {
	ID       string
	SpecName string
	Seed     int64
	Scale    float64
	Parallel int

	state    State
	err      string
	canceled bool // cancellation requested (DELETE observed)
	cancel   context.CancelFunc

	// cacheable marks jobs whose completed envelopes may enter the
	// result cache (registered specs; inline specs have no stable
	// identity). cached marks jobs that were served from it — born done,
	// never queued.
	cacheable bool
	cached    bool
	// distributable marks jobs a coordinator may lease to worker nodes:
	// registered specs only, since a worker rebuilds the spec from
	// (name, seed, scale) against its own registry.
	distributable bool
	// persisted marks jobs journaled to the durable store (registered
	// specs on a server configured with StoreDir): every commit point —
	// admission, each completed cell, the terminal transition — is
	// fsynced before it is acknowledged, so a restart resumes the job.
	// recovered marks jobs reloaded from the store by a restarted
	// server rather than submitted over HTTP in this process's
	// lifetime. Both surface in the status body (API.md).
	persisted bool
	recovered bool

	created  time.Time
	started  time.Time
	finished time.Time

	spec campaign.Spec
	// cellsTotal overrides len(spec.Cells) in the status body for
	// snapshot-recovered jobs whose spec was not rebuilt (the registry
	// no longer carries it); 0 defers to the spec.
	cellsTotal int
	cellsDone  int
	// recoveredResults / recoveredNodes are index-aligned with
	// spec.Cells on recovered in-flight jobs: the decoded results (and
	// the worker that produced each) of cells the journal shows
	// complete. runJob and runDistributed seed their merge arrays from
	// them so only the incomplete cells re-execute; nil on jobs with
	// nothing recovered.
	recoveredResults []any
	recoveredNodes   []string
	// cellNodes is index-aligned with spec.Cells for distributed jobs:
	// the worker ID that completed each cell ("" until then, and for
	// locally executed jobs it stays nil).
	cellNodes []string
	// cellStats is index-aligned with spec.Cells. Key and Seed are
	// prefilled at admission (both are pure functions of the spec), so
	// the status endpoint can show the full grid with per-cell progress
	// before and during the run; OnCell fills in the rest.
	cellStats []campaign.CellStat

	// result holds the canonical envelope (scheduling noise zeroed),
	// resultTimed the as-executed envelope (?timings=1), manifest the
	// per-job obs manifest. All are set exactly once, at completion.
	result      []byte
	resultTimed []byte
	manifest    []byte
	// trace holds the job's per-session obs trace dump (JSONL, collector
	// format), captured while the job ran and served at
	// GET /v1/jobs/{id}/trace. Empty for cached and replay jobs, which
	// execute no hammer sessions.
	trace []byte
}

// jobStatus is the GET /v1/jobs/{id} response body.
type jobStatus struct {
	ID       string  `json:"id"`
	Spec     string  `json:"spec"`
	State    State   `json:"state"`
	Seed     int64   `json:"seed"`
	Scale    float64 `json:"scale"`
	Parallel int     `json:"parallel,omitempty"`

	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`

	CellsTotal int                 `json:"cells_total"`
	CellsDone  int                 `json:"cells_done"`
	Cells      []campaign.CellStat `json:"cells,omitempty"`

	Error       string `json:"error,omitempty"`
	Cached      bool   `json:"cached,omitempty"`
	Persisted   bool   `json:"persisted,omitempty"`
	Recovered   bool   `json:"recovered,omitempty"`
	ResultURL   string `json:"result_url,omitempty"`
	ManifestURL string `json:"manifest_url,omitempty"`
	TraceURL    string `json:"trace_url,omitempty"`
}

// status snapshots the job for the status endpoint. Caller holds the
// server mutex.
func (j *Job) status() jobStatus {
	st := jobStatus{
		ID:         j.ID,
		Spec:       j.SpecName,
		State:      j.state,
		Seed:       j.Seed,
		Scale:      j.Scale,
		Parallel:   j.Parallel,
		Created:    j.created.UTC().Format(time.RFC3339Nano),
		CellsTotal: max(len(j.spec.Cells), j.cellsTotal),
		CellsDone:  j.cellsDone,
		Error:      j.err,
		Cached:     j.cached,
		Persisted:  j.persisted,
		Recovered:  j.recovered,
	}
	if !j.started.IsZero() {
		st.Started = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339Nano)
	}
	st.Cells = make([]campaign.CellStat, len(j.cellStats))
	copy(st.Cells, j.cellStats)
	if j.state == StateDone {
		st.ResultURL = "/v1/jobs/" + j.ID + "/result"
	}
	if j.manifest != nil {
		st.ManifestURL = "/v1/jobs/" + j.ID + "/manifest"
	}
	if len(j.trace) > 0 {
		st.TraceURL = "/v1/jobs/" + j.ID + "/trace"
	}
	return st
}
