package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rhohammer/internal/campaign"
	"rhohammer/internal/replay"
)

// replayRequest is the POST /v1/replay body: an inline JSONL trace
// plus the replay parameters the trace's header may omit.
type replayRequest struct {
	// Trace is the JSONL trace text (obs.Trace.WriteJSONL output, a
	// collector dump, or a headered file; see internal/replay).
	Trace string `json:"trace"`
	// DIMM / Seed override the trace header's module profile and device
	// seed (required when the trace has no header).
	DIMM string `json:"dimm,omitempty"`
	Seed *int64 `json:"seed,omitempty"`
	// Session selects one session of a multi-session collector dump —
	// e.g. one cell of a GET /v1/jobs/{id}/trace body.
	Session string `json:"session,omitempty"`
	// Parallel is accepted for symmetry with POST /v1/jobs; a replay is
	// one cell, so it never changes anything but the envelope's
	// as-executed metadata.
	Parallel int `json:"parallel,omitempty"`
}

// handleReplay admits a trace-replay job: the body's trace is decoded
// eagerly (malformed traces are a 400 at submission, never a failed
// job), wrapped as a one-cell campaign spec named by the trace's
// content hash, and pushed through the same admission tail as spec
// jobs — drain check, result cache, queue backpressure. The verdict
// envelope is canonical and byte-identical at any shard count.
func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxReplayBytes)
	var req replayRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("replay body exceeds %d bytes", s.cfg.MaxReplayBytes)})
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid replay request: " + err.Error()})
		return
	}
	if req.Trace == "" {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "\"trace\" is required"})
		return
	}
	f, err := replay.DecodeBytes([]byte(req.Trace), replay.Options{
		DIMM: req.DIMM, Seed: req.Seed, Session: req.Session,
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	spec := replay.Spec(f)
	j := &Job{
		SpecName: spec.Name,
		Seed:     spec.Seed,
		Scale:    1,
		Parallel: req.Parallel,
		state:    StateQueued,
		created:  time.Now(),
		spec:     spec,
		// The spec name embeds the trace content hash (which covers the
		// resolved DIMM and seed), so the (spec, seed, scale) cache key
		// is collision-free and replay jobs participate in the result
		// cache like registered specs.
		cacheable: true,
	}
	j.cellStats = make([]campaign.CellStat, len(spec.Cells))
	for i, c := range spec.Cells {
		j.cellStats[i] = campaign.CellStat{Key: c.Key, Seed: spec.CellSeed(c.Key)}
	}
	s.admit(w, j)
}

// handleTrace serves the per-job obs trace dump recorded while the job
// ran: JSONL in the collector format (one session per campaign cell,
// keyed by the cell's derived seed), ready to feed back through
// POST /v1/replay. The dump order is a pure function of the job's
// seeds, so the bytes are deterministic across shard counts and
// schedules.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	state := j.state
	body := j.trace
	s.mu.Unlock()
	switch {
	case !state.terminal():
		writeJSON(w, http.StatusConflict, apiError{Error: "trace is recorded while the job runs and served when it finishes"})
	case len(body) == 0:
		writeJSON(w, http.StatusConflict, apiError{Error: "job recorded no trace (cached and replay jobs execute no sessions, and capture may be disabled)"})
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	}
}
