package serve

import (
	"fmt"
	"os"
	"path/filepath"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/cpu"
	"rhohammer/internal/hammer"
)

// InlineSpec is an ad-hoc campaign grid submitted directly in the POST
// body, for jobs the registry does not name: every cell runs a fuzzing
// campaign (hammer.Session.Fuzz) on its own platform/module pair under
// its own strategy and budget. Like registered specs, the grid is
// deterministic in (seed, cell key) — resubmitting the same inline
// body with the same seed reproduces the same bytes.
type InlineSpec struct {
	// Name identifies the job in envelopes and manifests. Required.
	Name string `json:"name"`
	// Cells is the grid. Required, non-empty, keys unique.
	Cells []InlineCell `json:"cells"`
}

// InlineCell is one inline grid point.
type InlineCell struct {
	// Key is the cell's stable identity; the cell seed derives from it.
	Key string `json:"key"`
	// Arch names a platform profile (arch.ByName, e.g. "Raptor Lake").
	Arch string `json:"arch"`
	// DIMM names a module profile (arch.DIMMByID, e.g. "S3").
	DIMM string `json:"dimm"`
	// Config is the hammering strategy.
	Config InlineConfig `json:"config"`
	// Budget bounds the fuzzing campaign; zero fields take the
	// evaluation defaults (hammer.FuzzOptions).
	Budget InlineBudget `json:"budget"`
}

// InlineConfig mirrors hammer.Config with wire-friendly enum strings.
type InlineConfig struct {
	// Instr is "load", "prefetcht0", "prefetcht1", "prefetcht2" or
	// "prefetchnta".
	Instr string `json:"instr"`
	// Banks is the bank parallelism (>= 1; default 1).
	Banks int `json:"banks,omitempty"`
	// Barrier is "none", "nop", "lfence", "mfence" or "cpuid".
	Barrier string `json:"barrier,omitempty"`
	// Nops is the NOP count for the "nop" barrier.
	Nops int `json:"nops,omitempty"`
	// Obfuscate enables control-flow obfuscation (§4.4).
	Obfuscate bool `json:"obfuscate,omitempty"`
	// SyncRefresh aligns the hammer loop with the next REF.
	SyncRefresh bool `json:"sync_refresh,omitempty"`
}

// InlineBudget mirrors the fuzzing fields of campaign.Budget.
type InlineBudget struct {
	// Patterns is the number of fuzzing candidates tried.
	Patterns int `json:"patterns,omitempty"`
	// Locations is the number of trial locations per pattern.
	Locations int `json:"locations,omitempty"`
	// DurationNS is the simulated hammering time per trial.
	DurationNS float64 `json:"duration_ns,omitempty"`
}

// instrs and barriers map the wire strings onto the hammer enums.
var instrs = map[string]hammer.Instr{
	"load":        hammer.InstrLoad,
	"prefetcht0":  hammer.InstrPrefetchT0,
	"prefetcht1":  hammer.InstrPrefetchT1,
	"prefetcht2":  hammer.InstrPrefetchT2,
	"prefetchnta": hammer.InstrPrefetchNTA,
}

var barriers = map[string]hammer.Barrier{
	"":       hammer.BarrierNone,
	"none":   hammer.BarrierNone,
	"nop":    hammer.BarrierNop,
	"lfence": hammer.BarrierLFence,
	"mfence": hammer.BarrierMFence,
	"cpuid":  hammer.BarrierCPUID,
}

// build materializes the inline grid as a campaign Spec. Errors are
// client errors (400): unknown profiles, bad enum strings, structural
// misuse.
func (in *InlineSpec) build(seed int64) (campaign.Spec, error) {
	if in.Name == "" {
		return campaign.Spec{}, fmt.Errorf("inline spec has no name")
	}
	cells := make([]campaign.Cell, len(in.Cells))
	for i, ic := range in.Cells {
		a, ok := arch.ByName(ic.Arch)
		if !ok {
			return campaign.Spec{}, fmt.Errorf("inline cell %q: unknown arch %q", ic.Key, ic.Arch)
		}
		d, ok := arch.DIMMByID(ic.DIMM)
		if !ok {
			return campaign.Spec{}, fmt.Errorf("inline cell %q: unknown dimm %q", ic.Key, ic.DIMM)
		}
		instr, ok := instrs[ic.Config.Instr]
		if !ok {
			return campaign.Spec{}, fmt.Errorf("inline cell %q: unknown instr %q", ic.Key, ic.Config.Instr)
		}
		barrier, ok := barriers[ic.Config.Barrier]
		if !ok {
			return campaign.Spec{}, fmt.Errorf("inline cell %q: unknown barrier %q", ic.Key, ic.Config.Barrier)
		}
		banks := ic.Config.Banks
		if banks < 1 {
			banks = 1
		}
		cells[i] = campaign.Cell{
			Key:  ic.Key,
			Arch: a,
			DIMM: d,
			Config: hammer.Config{
				Instr: instr, Style: cpu.StyleCPP, Banks: banks,
				Barrier: barrier, Nops: ic.Config.Nops,
				Obfuscate: ic.Config.Obfuscate, SyncRefresh: ic.Config.SyncRefresh,
			},
			Budget: campaign.Budget{
				Patterns:   ic.Budget.Patterns,
				Locations:  ic.Budget.Locations,
				DurationNS: ic.Budget.DurationNS,
			},
		}
	}
	spec := campaign.Spec{
		Name:  "inline/" + in.Name,
		Kind:  campaign.KindAux,
		Seed:  seed,
		Cells: cells,
		Exec:  fuzzExec,
	}
	return spec, spec.Validate()
}

// fuzzExec is the inline grid's Exec: a fuzzing campaign in a fresh
// session, exactly the shape of the registry's table6 cells.
func fuzzExec(c campaign.Cell, seed int64) (any, error) {
	s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
	if err != nil {
		return nil, err
	}
	return s.Fuzz(c.Config, hammer.FuzzOptions{
		Patterns:   c.Budget.Patterns,
		Locations:  c.Budget.Locations,
		DurationNS: c.Budget.DurationNS,
	})
}

// writeManifestFile persists one job manifest under dir.
func writeManifestFile(dir, jobID string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, jobID+".json"), data, 0o644)
}
