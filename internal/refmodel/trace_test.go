package refmodel

import (
	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
)

// Trace encoding for the differential tests and the fuzz target: a
// byte string decodes into a substrate event program executed against a
// production dram.Device with a reference-model Auditor attached.
//
// Layout: data[0] is a flags byte (bit 0 = pTRR, bit 1 = row-swap),
// data[1] seeds the base row of an 8-row aggressor pool, and the rest
// is an op stream. ACT ops are burst-amplified (one op byte plus one
// count byte issue up to ~25k activations) so short inputs reach the
// tens-of-thousands activation counts real flip thresholds require;
// the pool rows are clustered so bursts on different rows pressure
// shared victims, double-sided style. REF ops land often enough that
// TRR sampling, epoch rollover (base rows sit in low refresh slices)
// and the per-boundary audit diff are all exercised.

// traceMaxActs caps the activations one trace may issue, so a
// pathological fuzz input cannot run unbounded.
const traceMaxActs = 300_000

// runTrace decodes data and executes it against a fresh device/auditor
// pair for the DIMM profile, returning the auditor after a final
// refresh boundary (so at least one full diff always runs).
func runTrace(d *arch.DIMM, seed int64, data []byte) *Auditor {
	dev := dram.NewDevice(d, seed)
	aud := NewAuditor(dev)
	if len(data) > 0 && data[0]&1 != 0 {
		dev.PTRR = true
	}
	if len(data) > 0 && data[0]&2 != 0 {
		dev.EnableRowSwap(1024)
	}
	base := uint64(16)
	if len(data) > 1 {
		// Low base rows live in low refresh slices, whose epoch rolls
		// over within the first few dozen REFs of a trace.
		base = 16 + uint64(data[1])*13
	}
	var pool [8]uint64
	for i := range pool {
		pool[i] = base + uint64(i)
	}

	i := 2
	next := func() byte {
		if i < len(data) {
			b := data[i]
			i++
			return b
		}
		return 7
	}
	now := 0.0
	acts := 0
	burst := func(bank int, row uint64, n int) {
		if acts+n > traceMaxActs {
			n = traceMaxActs - acts
		}
		for k := 0; k < n; k++ {
			dev.Activate(bank, row, now)
			now += 6
		}
		acts += n
	}

	for i < len(data) && acts < traceMaxActs {
		b := data[i]
		i++
		switch b & 3 {
		case 0, 1:
			burst(0, pool[(b>>2)&7], (1+int(next()))*96)
		case 2:
			dev.Refresh(now)
			now += 60
		default:
			switch (b >> 2) & 3 {
			case 0:
				pool[(b>>4)&7] = base + uint64(next())%48
			case 1:
				dev.Reset()
				now += 60
			case 2:
				burst(1%dev.Banks(), pool[(b>>4)&7], (1+int(next()))*24)
			case 3:
				// A refresh run, deep enough to cross the pool rows'
				// slice boundaries and trigger epoch rollover.
				for k := 0; k < 8; k++ {
					dev.Refresh(now)
					now += 60
				}
			}
		}
	}
	dev.Refresh(now)
	return aud
}

// traceProfiles are the DIMM profiles the differential tests sweep:
// the full DDR4 matrix including the invulnerable M1, plus the DDR5
// module D1 so the RFM path is exercised.
func traceProfiles() []*arch.DIMM {
	return append(arch.AllDIMMs(), arch.DIMMD1())
}
