package refmodel

import (
	"fmt"
	"strings"

	"rhohammer/internal/dram"
)

// The simcheck audit mode: an Auditor shadows a live dram.Device
// event-for-event (via dram.Device.AttachShadow), maintains a reference
// Device fed the identical event stream, and diffs the two models at
// every refresh boundary — flip sets, targeted-refresh trigger
// sequences, mitigation counters, and effective per-row state. The
// first divergence is captured with full context (the event indices and
// a tail of recent events) and, by default, raised as a panic: a
// divergence means the optimized substrate no longer implements the
// model, and nothing downstream of it can be trusted.

// auditRecentEvents is how many trailing events a Divergence report
// carries as context.
const auditRecentEvents = 8

// auditEvent is one substrate event retained for divergence context.
type auditEvent struct {
	kind string // "ACT", "REF", "RESET"
	bank int
	row  uint64
	at   float64
	idx  uint64 // global event index
}

func (e auditEvent) String() string {
	if e.kind == "ACT" {
		return fmt.Sprintf("#%d %s bank=%d row=%d t=%.1f", e.idx, e.kind, e.bank, e.row, e.at)
	}
	return fmt.Sprintf("#%d %s t=%.1f", e.idx, e.kind, e.at)
}

// Divergence describes the first point at which the production model
// and the reference model disagreed.
type Divergence struct {
	// Field names the diverging observable: "flip", "trr-trigger",
	// "act-count", "ref-count", "trr-events", "rfm-events",
	// "rowswap-events", "row-disturbance", or "row-acts".
	Field string
	// Bank and Row locate the divergence for per-row fields; Index is
	// the position in the flip or trigger sequence for sequence fields.
	Bank  int
	Row   uint64
	Index int
	// Fast and Ref render the two models' values.
	Fast string
	Ref  string
	// EventIndex and RefIndex say when the divergence was detected:
	// after the EventIndex-th substrate event, at the RefIndex-th
	// refresh boundary. The divergent event itself lies between the
	// previous audited boundary and this one.
	EventIndex uint64
	RefIndex   uint64
	// Recent is the tail of substrate events leading up to detection.
	Recent []auditEvent
}

// String renders the actionable first-divergence report.
func (d *Divergence) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "simcheck: fast model diverged from reference model\n")
	fmt.Fprintf(&sb, "  field: %s", d.Field)
	switch d.Field {
	case "flip", "trr-trigger":
		fmt.Fprintf(&sb, " (sequence position %d)", d.Index)
	case "row-disturbance", "row-acts":
		fmt.Fprintf(&sb, " (bank=%d row=%d)", d.Bank, d.Row)
	}
	fmt.Fprintf(&sb, "\n  fast:  %s\n  ref:   %s\n", d.Fast, d.Ref)
	fmt.Fprintf(&sb, "  detected after event #%d, at refresh boundary #%d\n", d.EventIndex, d.RefIndex)
	fmt.Fprintf(&sb, "  recent events:\n")
	for _, e := range d.Recent {
		fmt.Fprintf(&sb, "    %s\n", e)
	}
	sb.WriteString("  (replay the same seed with RHOHAMMER_SIMCHECK=1 to reproduce deterministically)")
	return sb.String()
}

// Error makes a Divergence usable as an error value.
func (d *Divergence) Error() string { return d.String() }

// Auditor shadows a dram.Device with a reference Device and diffs the
// two at refresh boundaries. Create one with NewAuditor; it attaches
// itself as the device's shadow.
type Auditor struct {
	Fast *dram.Device
	Ref  *Device

	// PanicOnDivergence raises the first divergence as a panic instead
	// of just recording it. The env-gated simcheck mode sets it: a
	// diverging substrate must not keep producing results.
	PanicOnDivergence bool

	// Every diffs only every N-th refresh boundary (default 1). Row
	// state diffing walks every touched row, so sparse checking trades
	// detection latency for audit speed on long runs.
	Every uint64

	div       *Divergence
	diffCount uint64
	eventIdx  uint64
	recent    []auditEvent
}

// NewAuditor builds a reference model mirroring the device's profile,
// seed and mitigation configuration, and attaches it as the device's
// shadow. From this point every Activate/Refresh/Reset on the device is
// replayed into the reference model, and every refresh boundary is
// audited.
//
// The device must be freshly created (or Reset): the reference model
// starts empty, so shadowing a device with accumulated state diverges
// immediately.
func NewAuditor(fast *dram.Device) *Auditor {
	a := &Auditor{
		Fast:  fast,
		Ref:   NewDevice(fast.DIMM, fast.Seed),
		Every: 1,
	}
	fast.AttachShadow(a)
	return a
}

// syncConfig mirrors mitigation toggles that may be flipped after
// device creation (EnablePTRR, EnableRowSwap).
func (a *Auditor) syncConfig() {
	a.Ref.PTRR = a.Fast.PTRR
	if on, period := a.Fast.RowSwapConfig(); on && !a.Ref.swap.enabled {
		a.Ref.EnableRowSwap(period)
	}
}

// record retains an event in the context tail.
func (a *Auditor) record(kind string, bank int, row uint64, at float64) {
	a.eventIdx++
	a.recent = append(a.recent, auditEvent{kind: kind, bank: bank, row: row, at: at, idx: a.eventIdx})
	if len(a.recent) > auditRecentEvents {
		a.recent = a.recent[1:]
	}
}

// Activate implements dram.Shadow.
func (a *Auditor) Activate(bank int, row uint64, now float64) {
	a.record("ACT", bank, row, now)
	a.syncConfig()
	a.Ref.Activate(bank, row, now)
}

// Refresh implements dram.Shadow: the reference model processes the
// same REF, then the two models are diffed.
func (a *Auditor) Refresh(now float64) {
	a.record("REF", 0, 0, now)
	a.syncConfig()
	a.Ref.Refresh(now)
	a.diffCount++
	every := a.Every
	if every == 0 {
		every = 1
	}
	if a.div == nil && a.diffCount%every == 0 {
		a.diff()
	}
}

// Reset implements dram.Shadow.
func (a *Auditor) Reset() {
	a.record("RESET", 0, 0, 0)
	a.Ref.Reset()
}

// Divergence returns the first recorded divergence, or nil.
func (a *Auditor) Divergence() *Divergence { return a.div }

// Err returns the first divergence as an error, or nil if the models
// agree on every audited boundary so far.
func (a *Auditor) Err() error {
	if a.div == nil {
		return nil
	}
	return a.div
}

// Check diffs the two models immediately (outside a refresh boundary,
// e.g. at the end of a run) and returns the first divergence as an
// error, or nil.
func (a *Auditor) Check() error {
	if a.div == nil {
		a.diff()
	}
	return a.Err()
}

// InjectRefDisturbance perturbs the reference model's accumulator for
// one row. Tests use it to prove the audit detects — and usefully
// reports — a seeded divergence.
func (a *Auditor) InjectRefDisturbance(bank int, row uint64, delta float64) {
	a.Ref.rowState(bank, row).disturbance += delta
}

// report records the first divergence and, if configured, panics.
func (a *Auditor) report(d *Divergence) {
	d.EventIndex = a.eventIdx
	d.RefIndex = a.Fast.RefreshCount()
	d.Recent = append([]auditEvent(nil), a.recent...)
	a.div = d
	if a.PanicOnDivergence {
		panic(d.String())
	}
}

// diff compares every audited observable, stopping at the first
// mismatch: the flip sequence, the targeted-refresh trigger sequence,
// the event counters, then effective per-row state.
func (a *Auditor) diff() {
	fastFlips, refFlips := a.Fast.Flips(), a.Ref.Flips()
	for i := 0; i < len(fastFlips) || i < len(refFlips); i++ {
		var f, r string
		switch {
		case i >= len(fastFlips):
			f, r = "(missing)", flipString(refFlips[i])
		case i >= len(refFlips):
			f, r = flipString(fastFlips[i]), "(missing)"
		case fastFlips[i] != refFlips[i]:
			f, r = flipString(fastFlips[i]), flipString(refFlips[i])
		default:
			continue
		}
		a.report(&Divergence{Field: "flip", Index: i, Fast: f, Ref: r})
		return
	}

	fastTRR, refTRR := a.Fast.TakeTRRTriggers(), a.Ref.TakeTRRTriggers()
	for i := 0; i < len(fastTRR) || i < len(refTRR); i++ {
		var f, r string
		switch {
		case i >= len(fastTRR):
			f, r = "(missing)", fmt.Sprintf("%+v", refTRR[i])
		case i >= len(refTRR):
			f, r = fmt.Sprintf("%+v", fastTRR[i]), "(missing)"
		case fastTRR[i] != refTRR[i]:
			f, r = fmt.Sprintf("%+v", fastTRR[i]), fmt.Sprintf("%+v", refTRR[i])
		default:
			continue
		}
		a.report(&Divergence{Field: "trr-trigger", Index: i, Fast: f, Ref: r})
		return
	}

	counters := []struct {
		field     string
		fast, ref uint64
	}{
		{"act-count", a.Fast.ActivationCount(), a.Ref.ActivationCount()},
		{"ref-count", a.Fast.RefreshCount(), a.Ref.RefreshCount()},
		{"trr-events", a.Fast.TRREvents(), a.Ref.TRREvents()},
		{"rfm-events", a.Fast.RFMEvents(), a.Ref.RFMEvents()},
		{"rowswap-events", a.Fast.RowSwapEvents(), a.Ref.RowSwapEvents()},
	}
	for _, c := range counters {
		if c.fast != c.ref {
			a.report(&Divergence{Field: c.field, Fast: fmt.Sprint(c.fast), Ref: fmt.Sprint(c.ref)})
			return
		}
	}

	a.diffRows()
}

// rowKey packs (bank, row) for the row-state diff maps.
func auditKey(bank int, row uint64) uint64 { return row | uint64(bank)<<48 }

// rowObs is one model's view of a row.
type rowObs struct {
	disturbance float64
	acts        uint64
}

// diffRows compares effective disturbance and activation counts across
// the union of both models' touched rows, reporting the first mismatch
// in (bank, row) order. Rows absent from one model compare as zero.
func (a *Auditor) diffRows() {
	fast := map[uint64]rowObs{}
	keys := []uint64{}
	a.Fast.VisitRows(func(bank int, row uint64, disturbance float64, acts uint64) {
		k := auditKey(bank, row)
		fast[k] = rowObs{disturbance, acts}
		keys = append(keys, k)
	})
	seen := map[uint64]bool{}
	var firstDiv *Divergence
	a.Ref.VisitRows(func(bank int, row uint64, disturbance float64, acts uint64) {
		if firstDiv != nil {
			return
		}
		k := auditKey(bank, row)
		seen[k] = true
		if f := fast[k]; f.disturbance != disturbance || f.acts != acts {
			firstDiv = a.rowDivergence(bank, row, f, rowObs{disturbance, acts})
		}
	})
	if firstDiv == nil {
		for _, k := range keys {
			if !seen[k] {
				f := fast[k]
				if f.disturbance != 0 || f.acts != 0 {
					bank, row := int(k>>48), k&((1<<48)-1)
					firstDiv = a.rowDivergence(bank, row, f, rowObs{})
					break
				}
			}
		}
	}
	if firstDiv != nil {
		a.report(firstDiv)
	}
}

// rowDivergence builds the per-row report, naming the first differing
// component.
func (a *Auditor) rowDivergence(bank int, row uint64, f, r rowObs) *Divergence {
	if f.disturbance != r.disturbance {
		return &Divergence{
			Field: "row-disturbance", Bank: bank, Row: row,
			Fast: fmt.Sprintf("%g", f.disturbance), Ref: fmt.Sprintf("%g", r.disturbance),
		}
	}
	return &Divergence{
		Field: "row-acts", Bank: bank, Row: row,
		Fast: fmt.Sprint(f.acts), Ref: fmt.Sprint(r.acts),
	}
}

// flipString renders one flip with its timestamp for reports.
func flipString(f dram.Flip) string {
	return fmt.Sprintf("%s t=%.1f", f.String(), f.Time)
}
