// Package refmodel is a deliberately slow, obviously-correct reference
// implementation of the disturbance substrate modeled by internal/dram:
// per-row charge accumulation within refresh windows, per-cell flip
// thresholds, regular refresh, DDR4 TRR sampling, platform pTRR, DDR5
// RFM, randomized row-swap, and the two-row blast radius.
//
// Everything is straight-line, map-based code with no caches: no
// direct-mapped row cache, no neighbor pinning, no epoch memoization,
// no gate fast path, no deferred TRR-log replay, no open-addressing
// counter table. Where internal/dram earns its speed with layered
// memoization, this package recomputes from first principles on every
// event — which is exactly what makes it a useful differential oracle.
// The two implementations must agree bit-for-bit on every observable:
// flip sets (including order and timestamps), targeted-refresh trigger
// sequences, mitigation event counters, and effective per-row
// disturbance at any refresh boundary.
//
// The package serves two consumers: property/fuzz tests that replay the
// same random trace into both models and diff the results, and the
// simcheck audit mode (see Auditor), which shadows a live production
// device event-for-event and reports the first divergence with full
// context.
package refmodel

import (
	"math"
	"sort"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
)

// blastWeight returns the disturbance one activation deposits on a
// neighbor at the given row distance (the same two-distance coupling
// internal/dram uses: full strength at distance 1, an order of
// magnitude weaker at distance 2).
func blastWeight(dist uint64) float64 {
	switch dist {
	case 1:
		return 1.0
	case 2:
		return 0.08
	default:
		return 0
	}
}

// weakCell is one flippable cell of a row.
type weakCell struct {
	threshold float64
	byteInRow int
	bit       uint8
	oneToZero bool
	flipped   bool
}

// row is the complete state of one touched row: activation count (on
// the logical address), in-window disturbance (on the physical
// address), the refresh epoch of the last disturbance update, and the
// row's seeded weak-cell population.
type row struct {
	acts        uint64
	disturbance float64
	epoch       uint64
	cells       []weakCell
}

// Device is the reference DIMM model. It implements the same substrate
// interface as dram.Device (Activate/Refresh/Reset) and the same
// observables, from an independent implementation.
type Device struct {
	DIMM *arch.DIMM
	Seed int64

	// PTRR enables the platform pseudo-TRR mitigation, mirroring
	// dram.Device.PTRR.
	PTRR bool

	banks        int
	rows         uint64
	rowsPerSlice uint64

	// state maps bank -> row -> state; rows materialize (weak cells and
	// all) on first touch.
	state []map[uint64]*row

	// trr holds the per-bank DDR4 TRR samplers, fed at activation time
	// (the production model defers sampling to the REF boundary via a
	// log; feeding at activation time is semantically identical and
	// independently implemented).
	trr []sampler

	// ptrr is the per-interval activation counter behind pTRR, as a
	// plain insertion-ordered list.
	ptrr []ptrrCount

	// rfm is the per-bank DDR5 refresh-management state.
	rfm []rfmBank

	swap swapState

	flips      []dram.Flip
	triggers   []dram.TRRTrigger
	refCount   uint64
	actCount   uint64
	trrEvents  uint64
	rfmEvents  uint64
	swapEvents uint64
}

// ptrrCount is one per-interval (bank, row) activation counter.
type ptrrCount struct {
	bank  int
	row   uint64
	count int
}

// rfmBank is the per-bank RFM bookkeeping.
type rfmBank struct {
	raa     int
	sampler sampler
}

// swapState is the row-swap mitigation state.
type swapState struct {
	enabled bool
	period  uint64
	counter uint64
	remap   []map[uint64]uint64
	counts  []map[uint64]uint64
}

// NewDevice builds a reference device for the DIMM profile. The seed
// must match the production device's for the two vulnerability maps to
// coincide.
func NewDevice(d *arch.DIMM, seed int64) *Device {
	dev := &Device{
		DIMM:  d,
		Seed:  seed,
		banks: d.TotalBanks(),
		rows:  d.RowsPerBank,
	}
	dev.rowsPerSlice = dev.rows / dram.RefreshSlices
	if dev.rowsPerSlice == 0 {
		dev.rowsPerSlice = 1
	}
	dev.state = make([]map[uint64]*row, dev.banks)
	for i := range dev.state {
		dev.state[i] = make(map[uint64]*row)
	}
	dev.trr = make([]sampler, dev.banks)
	for i := range dev.trr {
		dev.trr[i] = newSampler(d.TRRSamplerSize)
	}
	if d.DDR5 {
		dev.rfm = make([]rfmBank, dev.banks)
		for i := range dev.rfm {
			dev.rfm[i].sampler = newSampler(d.RFMSamplerSize)
		}
	}
	return dev
}

// Banks returns the number of geographic banks.
func (d *Device) Banks() int { return d.banks }

// Rows returns the number of rows per bank.
func (d *Device) Rows() uint64 { return d.rows }

// row returns the state record for (bank, row), materializing the row —
// weak cells included — on first touch. Eager materialization is safe:
// the lowest threshold any profile can draw is exp(mu - sigma*maxNorm)
// with maxNorm ≈ 8.6 (the Box-Muller reach of a 53-bit uniform), which
// is above 6000 for every profile in internal/arch — far beyond the
// production model's 512-activation deferral floor, so deferral can
// never change which cells flip or when.
func (d *Device) rowState(bank int, r uint64) *row {
	st := d.state[bank][r]
	if st == nil {
		st = &row{epoch: d.rowEpoch(r)}
		d.materialize(bank, r, st)
		d.state[bank][r] = st
	}
	return st
}

// materialize draws the row's weak-cell population from the keyed
// stream — a pure function of (seed, bank, row).
func (d *Device) materialize(bank int, r uint64, st *row) {
	if !d.DIMM.Flippable {
		return
	}
	h := newKeyedRand(d.Seed, uint64(bank), r)
	n := h.poisson(d.DIMM.WeakCellsPerRowLambda)
	for i := 0; i < n; i++ {
		st.cells = append(st.cells, weakCell{
			threshold: math.Exp(h.norm()*d.DIMM.ThresholdSigma + d.DIMM.ThresholdMu),
			byteInRow: int(h.next() % dram.RowBytes),
			bit:       uint8(h.next() % 8),
			oneToZero: h.next()&1 == 0,
		})
	}
}

// rowEpoch returns how many times the row's refresh slice has been
// refreshed so far, computed directly from the REF counter.
func (d *Device) rowEpoch(r uint64) uint64 {
	slice := r / d.rowsPerSlice
	if slice >= dram.RefreshSlices {
		slice = dram.RefreshSlices - 1
	}
	return (d.refCount + dram.RefreshSlices - 1 - slice) / dram.RefreshSlices
}

// Activate registers one ACT on the logical (bank, row) at time now.
func (d *Device) Activate(bank int, r uint64, now float64) {
	d.actCount++
	d.rowState(bank, r).acts++
	if d.swap.enabled {
		d.swapObserve(bank, r)
		r = d.swapTarget(bank, r)
	}
	d.trr[bank].observe(r)
	if d.PTRR {
		d.ptrrAdd(bank, r)
	}
	if d.DIMM.DDR5 {
		d.rfmObserve(bank, r)
	}
	// Blast radius, near pair before far pair — the flip log order
	// contract.
	for _, dist := range []uint64{1, 2} {
		w := blastWeight(dist)
		if r >= dist {
			d.disturb(bank, r-dist, w, now)
		}
		if r+dist < d.rows {
			d.disturb(bank, r+dist, w, now)
		}
	}
}

// disturb deposits disturbance w on the victim (bank, row), restarting
// the accumulator if the row's refresh slice has passed since its last
// update, and records every threshold crossing as a flip.
func (d *Device) disturb(bank int, r uint64, w float64, now float64) {
	st := d.rowState(bank, r)
	if e := d.rowEpoch(r); e != st.epoch {
		st.epoch = e
		st.disturbance = 0
	}
	st.disturbance += w
	for i := range st.cells {
		c := &st.cells[i]
		if !c.flipped && st.disturbance >= c.threshold {
			c.flipped = true
			d.flips = append(d.flips, dram.Flip{
				Bank: bank, Row: r,
				ByteInRow: c.byteInRow, Bit: c.bit,
				OneToZero: c.oneToZero, Time: now,
			})
		}
	}
}

// Refresh executes one REF command: the REF counter advances (regular
// refresh is modeled by the epoch arithmetic), each bank's TRR logic
// refreshes the neighborhoods of its top sampled aggressors, and pTRR
// sweeps if enabled.
func (d *Device) Refresh(now float64) {
	d.refCount++
	for bank := range d.trr {
		for _, r := range d.trr[bank].top(d.DIMM.TRRRefreshPerREF) {
			d.refreshNeighborhood(bank, r)
		}
		d.trr[bank].clear()
	}
	if d.PTRR {
		d.ptrrSweep()
	}
}

// refreshNeighborhood resets the disturbance of rows within the blast
// radius of an identified aggressor.
func (d *Device) refreshNeighborhood(bank int, r uint64) {
	d.trrEvents++
	d.triggers = append(d.triggers, dram.TRRTrigger{Bank: bank, Row: r})
	for dist := uint64(1); dist <= 2; dist++ {
		if r >= dist {
			if st := d.state[bank][r-dist]; st != nil {
				st.disturbance = 0
			}
		}
		if r+dist < d.rows {
			if st := d.state[bank][r+dist]; st != nil {
				st.disturbance = 0
			}
		}
	}
}

// ptrrAdd counts one activation for the pTRR sweep.
func (d *Device) ptrrAdd(bank int, r uint64) {
	for i := range d.ptrr {
		if d.ptrr[i].bank == bank && d.ptrr[i].row == r {
			d.ptrr[i].count++
			return
		}
	}
	d.ptrr = append(d.ptrr, ptrrCount{bank: bank, row: r, count: 1})
}

// ptrrSweep refreshes the neighborhoods of every row activated at least
// 3 times this interval: highest count first, first-seen order breaking
// ties, at most 64 rows per sweep.
func (d *Device) ptrrSweep() {
	var hot []ptrrCount
	for _, e := range d.ptrr {
		if e.count >= 3 {
			hot = append(hot, e)
		}
	}
	sort.SliceStable(hot, func(i, j int) bool { return hot[i].count > hot[j].count })
	if len(hot) > 64 {
		hot = hot[:64]
	}
	for _, e := range hot {
		d.refreshNeighborhood(e.bank, e.row)
	}
	d.ptrr = d.ptrr[:0]
}

// rfmObserve accounts one activation against the bank's RAA counter and
// performs the RFM mitigation sweep at the threshold.
func (d *Device) rfmObserve(bank int, r uint64) {
	st := &d.rfm[bank]
	st.sampler.observe(r)
	st.raa++
	if st.raa < d.DIMM.RAAIMT {
		return
	}
	for _, victim := range st.sampler.popTop(d.DIMM.RFMRefreshPerSweep) {
		d.refreshNeighborhood(bank, victim)
	}
	st.raa = 0
	d.rfmEvents++
}

// EnableRowSwap turns on the randomized row-swap mitigation with the
// given swap period.
func (d *Device) EnableRowSwap(period uint64) {
	if period == 0 {
		period = 2048
	}
	d.swap.enabled = true
	d.swap.period = period
	d.swap.remap = make([]map[uint64]uint64, d.banks)
	d.swap.counts = make([]map[uint64]uint64, d.banks)
	for i := range d.swap.remap {
		d.swap.remap[i] = make(map[uint64]uint64)
		d.swap.counts[i] = make(map[uint64]uint64)
	}
}

// swapTarget resolves a logical row through the remap table.
func (d *Device) swapTarget(bank int, r uint64) uint64 {
	if phys, ok := d.swap.remap[bank][r]; ok {
		return phys
	}
	return r
}

// swapObserve counts an activation and, when the swap period elapses,
// relocates every row whose in-interval count crossed the threshold —
// ascending row order, at most 8 per sweep.
func (d *Device) swapObserve(bank int, r uint64) {
	s := &d.swap
	s.counts[bank][r]++
	s.counter++
	if s.counter%s.period != 0 {
		return
	}
	threshold := s.period / 32
	if threshold < 4 {
		threshold = 4
	}
	var hot []uint64
	for candidate, n := range s.counts[bank] {
		if n >= threshold {
			hot = append(hot, candidate)
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	if len(hot) > 8 {
		hot = hot[:8]
	}
	for _, candidate := range hot {
		h := newKeyedRand(d.Seed^0x505A, uint64(bank)<<32|candidate, s.counter)
		partner := h.next() % d.rows
		va, pa := d.swapTarget(bank, candidate), d.swapTarget(bank, partner)
		s.remap[bank][candidate] = pa
		s.remap[bank][partner] = va
		d.swapEvents++
	}
	clear(s.counts[bank])
}

// Reset clears disturbance state, flips and mitigation counters,
// preserving the seeded vulnerability map and (device-internal) row-swap
// remap table — the same contract as dram.Device.Reset.
func (d *Device) Reset() {
	for bank := range d.state {
		for _, st := range d.state[bank] {
			st.acts = 0
			st.disturbance = 0
			st.epoch = 0
			for i := range st.cells {
				st.cells[i].flipped = false
			}
		}
	}
	d.flips = d.flips[:0]
	d.triggers = d.triggers[:0]
	for i := range d.trr {
		d.trr[i].clear()
	}
	d.ptrr = d.ptrr[:0]
	for i := range d.rfm {
		d.rfm[i].raa = 0
		d.rfm[i].sampler.clear()
	}
	d.swap.counter = 0
	for i := range d.swap.counts {
		clear(d.swap.counts[i])
	}
	d.refCount = 0
	d.actCount = 0
	d.trrEvents = 0
	d.rfmEvents = 0
	d.swapEvents = 0
}

// Flips returns all flips recorded since the last Reset.
func (d *Device) Flips() []dram.Flip { return d.flips }

// ActivationCount returns the total ACTs seen since the last Reset.
func (d *Device) ActivationCount() uint64 { return d.actCount }

// RefreshCount returns the REFs processed since the last Reset.
func (d *Device) RefreshCount() uint64 { return d.refCount }

// TRREvents returns the number of targeted refreshes performed.
func (d *Device) TRREvents() uint64 { return d.trrEvents }

// RFMEvents returns the number of RFM mitigation sweeps performed.
func (d *Device) RFMEvents() uint64 { return d.rfmEvents }

// RowSwapEvents returns the number of row swaps performed.
func (d *Device) RowSwapEvents() uint64 { return d.swapEvents }

// TakeTRRTriggers drains the targeted-refresh log accumulated since the
// last call.
func (d *Device) TakeTRRTriggers() []dram.TRRTrigger {
	t := d.triggers
	d.triggers = nil
	return t
}

// ActCount reports the activations the logical row has received since
// the last Reset.
func (d *Device) ActCount(bank int, r uint64) uint64 {
	if st := d.state[bank][r]; st != nil {
		return st.acts
	}
	return 0
}

// RowDisturbance reports the row's current effective in-window
// disturbance.
func (d *Device) RowDisturbance(bank int, r uint64) float64 {
	st := d.state[bank][r]
	if st == nil {
		return 0
	}
	return d.effective(r, st)
}

// effective is the disturbance the next disturb would start from: zero
// if the row's slice has been refreshed since the last update.
func (d *Device) effective(r uint64, st *row) float64 {
	if d.rowEpoch(r) != st.epoch {
		return 0
	}
	return st.disturbance
}

// WeakCellCount reports how many weak cells a row holds.
func (d *Device) WeakCellCount(bank int, r uint64) int {
	return len(d.rowState(bank, r).cells)
}

// VisitRows calls fn for every touched row in (bank, row) order with
// its effective disturbance and activation count — the same audit
// traversal dram.Device.VisitRows provides.
func (d *Device) VisitRows(fn func(bank int, row uint64, disturbance float64, acts uint64)) {
	rows := make([]uint64, 0, 64)
	for bank := range d.state {
		rows = rows[:0]
		for r := range d.state[bank] {
			rows = append(rows, r)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		for _, r := range rows {
			st := d.state[bank][r]
			fn(bank, r, d.effective(r, st), st.acts)
		}
	}
}
