package refmodel

import (
	"rhohammer/internal/dram"
	"rhohammer/internal/memctrl"
)

// Substrate is the event surface shared by the production dram.Device
// and the reference Device: everything a controller-issued command
// stream can do to a module. Both models implement it, which lets one
// recorded trace drive either — the basis of the trace-replay tests.
type Substrate interface {
	Activate(bank int, row uint64, now float64)
	Refresh(now float64)
	Flips() []dram.Flip
}

var (
	_ Substrate = (*dram.Device)(nil)
	_ Substrate = (*Device)(nil)
)

// Replay feeds a recorded controller command stream into a substrate.
// ACT and REF map directly; PRE only closes the row buffer and never
// reaches the module's disturbance machinery, so it is skipped. The
// number of replayed commands is returned.
func Replay(s Substrate, cmds []memctrl.Cmd) int {
	n := 0
	for _, c := range cmds {
		switch c.Kind {
		case memctrl.CmdACT:
			s.Activate(c.Bank, c.Row, c.At)
			n++
		case memctrl.CmdREF:
			s.Refresh(c.At)
			n++
		}
	}
	return n
}
