package refmodel

import (
	"math/rand"
	"strings"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
)

// tracesPerProfile returns how many random traces the differential
// sweep runs per DIMM profile: 1000 in full mode (the acceptance bar),
// 100 under -short.
func tracesPerProfile() int {
	if testing.Short() {
		return 100
	}
	return 1000
}

// randomTrace draws one encoded trace from rng.
func randomTrace(rng *rand.Rand) []byte {
	data := make([]byte, 4+rng.Intn(28))
	rng.Read(data)
	return data
}

// TestDifferentialRandomTraces is the tentpole property: for every DIMM
// profile, random activation traces produce bit-identical observables
// in the production model and the reference model — flip sets (order
// and timestamps included), targeted-refresh trigger sequences, event
// counters, and effective per-row state at every refresh boundary.
func TestDifferentialRandomTraces(t *testing.T) {
	n := tracesPerProfile()
	for pi, d := range traceProfiles() {
		pi, d := pi, d
		t.Run(d.ID, func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(0xD1FF + int64(pi)))
			var flips, triggers, rfmSweeps int
			for trial := 0; trial < n; trial++ {
				seed := rng.Int63()
				data := randomTrace(rng)
				aud := runTrace(d, seed, data)
				if err := aud.Check(); err != nil {
					t.Fatalf("trace %d (seed=%d data=%x) diverged:\n%v", trial, seed, data, err)
				}
				flips += len(aud.Fast.Flips())
				triggers += int(aud.Fast.TRREvents())
				rfmSweeps += int(aud.Fast.RFMEvents())
			}
			t.Logf("%s: %d traces, %d flips, %d targeted refreshes, %d RFM sweeps",
				d.ID, n, flips, triggers, rfmSweeps)
			if triggers == 0 {
				t.Errorf("%s: no targeted refresh fired across %d traces; traces are not exercising TRR", d.ID, n)
			}
			if !d.Flippable && flips != 0 {
				t.Errorf("%s is modeled as invulnerable but flipped %d cells", d.ID, flips)
			}
			if d.DDR5 && rfmSweeps == 0 {
				t.Errorf("%s: no RFM sweep fired across %d traces; traces are not exercising RFM", d.ID, n)
			}
			// The sweep must not be vacuous: on the most flip-prone
			// module the traces have to actually cross cell thresholds.
			if d.ID == "S4" && flips == 0 {
				t.Errorf("S4: no flips across %d traces; traces never reach flip thresholds", n)
			}
		})
	}
}

// TestDifferentialMitigationTraces pins the mitigation machinery
// specifically: pTRR and row-swap both enabled, which routes every
// trace through the counter table, the sweep sort, and the remap layer
// of both models.
func TestDifferentialMitigationTraces(t *testing.T) {
	n := tracesPerProfile() / 4
	d := arch.DIMMS4()
	rng := rand.New(rand.NewSource(0x5EED))
	var swaps uint64
	for trial := 0; trial < n; trial++ {
		seed := rng.Int63()
		data := randomTrace(rng)
		if len(data) > 0 {
			data[0] |= 3 // force pTRR + row-swap on
		}
		aud := runTrace(d, seed, data)
		if err := aud.Check(); err != nil {
			t.Fatalf("trace %d (seed=%d data=%x) diverged:\n%v", trial, seed, data, err)
		}
		swaps += aud.Fast.RowSwapEvents()
	}
	if swaps == 0 {
		t.Errorf("no row swap occurred across %d mitigation traces", n)
	}
}

// TestInjectedDivergence proves the audit actually detects and usefully
// reports a divergence: perturbing one row of the reference model must
// surface at the next refresh boundary with the row named and event
// context attached.
func TestInjectedDivergence(t *testing.T) {
	d := arch.DIMMS4()
	dev := dram.NewDevice(d, 99)
	aud := NewAuditor(dev)

	now := 0.0
	for i := 0; i < 3000; i++ {
		dev.Activate(0, 100, now)
		now += 6
	}
	// Row 500 is far outside the hammered neighborhood, so no targeted
	// refresh can clear the perturbation before the boundary diff.
	aud.InjectRefDisturbance(0, 500, 7.5)
	dev.Refresh(now)

	div := aud.Divergence()
	if div == nil {
		t.Fatal("injected reference perturbation was not detected at the refresh boundary")
	}
	if div.Field != "row-disturbance" {
		t.Fatalf("divergence field = %q, want row-disturbance", div.Field)
	}
	if div.Bank != 0 || div.Row != 500 {
		t.Fatalf("divergence located at bank=%d row=%d, want bank=0 row=500", div.Bank, div.Row)
	}
	msg := div.String()
	for _, want := range []string{"row-disturbance", "bank=0 row=500", "recent events", "ACT bank=0 row=100", "refresh boundary"} {
		if !strings.Contains(msg, want) {
			t.Errorf("divergence report missing %q:\n%s", want, msg)
		}
	}
	if err := aud.Err(); err == nil {
		t.Error("Err() = nil after a recorded divergence")
	}
}

// TestAuditorPanicOnDivergence verifies the env-gated mode's contract:
// with PanicOnDivergence set, the first divergence raises a panic whose
// message carries the report.
func TestAuditorPanicOnDivergence(t *testing.T) {
	d := arch.DIMMS1()
	dev := dram.NewDevice(d, 7)
	aud := NewAuditor(dev)
	aud.PanicOnDivergence = true
	aud.InjectRefDisturbance(0, 50, 3)

	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("no panic despite PanicOnDivergence and an injected divergence")
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "simcheck") {
			t.Fatalf("panic payload %v does not carry the simcheck report", p)
		}
	}()
	dev.Activate(0, 200, 0)
	dev.Refresh(100)
}

// TestSeedDeterminism is the metamorphic seed invariant: the same trace
// under the same seed yields byte-identical flip logs and counters on
// two independent device instances — including with row-swap enabled,
// whose sweep once iterated a Go map nondeterministically.
func TestSeedDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(0xDE7))
	d := arch.DIMMS3()
	for trial := 0; trial < 20; trial++ {
		seed := rng.Int63()
		data := randomTrace(rng)
		data = append([]byte{3}, data...) // pTRR + row-swap on
		a1 := runTrace(d, seed, data)
		a2 := runTrace(d, seed, data)
		f1, f2 := a1.Fast.Flips(), a2.Fast.Flips()
		if len(f1) != len(f2) {
			t.Fatalf("trial %d: run1 %d flips, run2 %d flips", trial, len(f1), len(f2))
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("trial %d flip %d: %+v vs %+v", trial, i, f1[i], f2[i])
			}
		}
		if a1.Fast.RowSwapEvents() != a2.Fast.RowSwapEvents() || a1.Fast.TRREvents() != a2.Fast.TRREvents() {
			t.Fatalf("trial %d: mitigation counters differ across identical runs", trial)
		}
	}
}

// TestFlipMonotonicity is the metamorphic hammer-count invariant:
// within one refresh interval, hammering the same aggressor longer
// never un-flips a cell — the flip log of N activations is a prefix of
// the flip log of 2N.
func TestFlipMonotonicity(t *testing.T) {
	d := arch.DIMMS4()
	run := func(n int) []dram.Flip {
		dev := dram.NewDevice(d, 4242)
		now := 0.0
		for i := 0; i < n; i++ {
			dev.Activate(0, 300, now)
			dev.Activate(0, 302, now+3)
			now += 6
		}
		return append([]dram.Flip(nil), dev.Flips()...)
	}
	prev := []dram.Flip{}
	for _, n := range []int{10_000, 20_000, 40_000, 80_000} {
		cur := run(n)
		if len(cur) < len(prev) {
			t.Fatalf("flips decreased from %d to %d when doubling to %d activations", len(prev), len(cur), n)
		}
		for i := range prev {
			if cur[i] != prev[i] {
				t.Fatalf("flip %d changed between budgets: %+v vs %+v", i, prev[i], cur[i])
			}
		}
		prev = cur
	}
	if len(prev) == 0 {
		t.Fatal("double-sided hammering at 80k activations produced no flips; invariant test is vacuous")
	}
}

// TestM1Invulnerable is the paper's M1 observation as a property: no
// trace, however heavy, flips a cell on the M1 module — in either
// model.
func TestM1Invulnerable(t *testing.T) {
	d := arch.DIMMM1()
	rng := rand.New(rand.NewSource(0x0041))
	for trial := 0; trial < 25; trial++ {
		aud := runTrace(d, rng.Int63(), randomTrace(rng))
		if err := aud.Check(); err != nil {
			t.Fatalf("trial %d diverged:\n%v", trial, err)
		}
		if n := len(aud.Fast.Flips()); n != 0 {
			t.Fatalf("trial %d: M1 flipped %d cells", trial, n)
		}
		if n := len(aud.Ref.Flips()); n != 0 {
			t.Fatalf("trial %d: reference model flipped %d cells on M1", trial, n)
		}
	}
}

// TestResetPreservesEquivalence drives both models through a
// Reset-heavy trace and confirms the post-Reset contract (vulnerability
// map preserved, disturbance and counters cleared) holds identically.
func TestResetPreservesEquivalence(t *testing.T) {
	d := arch.DIMMS2()
	dev := dram.NewDevice(d, 11)
	aud := NewAuditor(dev)
	now := 0.0
	for round := 0; round < 3; round++ {
		for i := 0; i < 70_000; i++ {
			dev.Activate(0, 40, now)
			dev.Activate(0, 42, now+3)
			now += 6
		}
		dev.Refresh(now)
		if err := aud.Check(); err != nil {
			t.Fatalf("round %d diverged:\n%v", round, err)
		}
		if round == 0 && len(dev.Flips()) == 0 {
			t.Fatal("no flips before Reset; test is vacuous")
		}
		dev.Reset()
		if err := aud.Check(); err != nil {
			t.Fatalf("post-Reset round %d diverged:\n%v", round, err)
		}
	}
}
