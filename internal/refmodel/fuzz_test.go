package refmodel

import (
	"testing"
)

// FuzzDifferentialTrace feeds arbitrary encoded traces (see
// trace_test.go for the encoding) through the production device with
// the reference auditor attached: any observable divergence between the
// two models is a finding. The seed selects the DIMM profile alongside
// the vulnerability map, so one corpus covers the whole profile matrix
// including M1 (invulnerable) and D1 (DDR5/RFM).
func FuzzDifferentialTrace(f *testing.F) {
	f.Add(int64(1), []byte{0x00, 0x10, 0x04, 0xff, 0x04, 0xff, 0x02, 0x04, 0xff})
	f.Add(int64(2), []byte{0x03, 0x40, 0x08, 0x80, 0x02, 0x0f, 0x08, 0x80, 0x02})
	f.Add(int64(6), []byte{0x01, 0x05, 0x0c, 0xc0, 0x0b, 0x30, 0x2c, 0x90, 0x07, 0x02})
	f.Add(int64(7), []byte{0x02, 0xff, 0x04, 0xff, 0x04, 0xff, 0x04, 0xff, 0x02, 0x10, 0xff})
	f.Fuzz(func(t *testing.T, seed int64, data []byte) {
		profiles := traceProfiles()
		idx := int(uint64(seed) % uint64(len(profiles)))
		aud := runTrace(profiles[idx], seed, data)
		if err := aud.Check(); err != nil {
			t.Fatalf("models diverged on %s (seed=%d data=%x):\n%v",
				profiles[idx].ID, seed, data, err)
		}
	})
}
