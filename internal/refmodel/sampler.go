package refmodel

import "sort"

// sampler is the reference TRR/RFM aggressor sampler: the same policy
// internal/dram reverse-engineers from TRRespass/Blacksmith — track the
// first `capacity` distinct rows seen since the last clear, count their
// activations, and select the top-counted entries with ties broken by
// table position — written as the plainest possible list code. No
// scratch buffers, no deferred replay: every operation builds what it
// needs from scratch.
//
// One behaviour is deliberately mirrored from the production model
// rather than idealized: popTop removes entries by swapping with the
// last slot, which reorders the survivors. Subsequent tie-breaks use
// the post-swap positions, and the DDR5 RFM fairness behaviour the
// repository reproduces depends on exactly that.
type sampler struct {
	capacity int
	rows     []uint64
	counts   []int
}

func newSampler(capacity int) sampler {
	if capacity < 1 {
		capacity = 1
	}
	return sampler{capacity: capacity}
}

// observe records one activation of row.
func (s *sampler) observe(row uint64) {
	for i, r := range s.rows {
		if r == row {
			s.counts[i]++
			return
		}
	}
	if len(s.rows) < s.capacity {
		s.rows = append(s.rows, row)
		s.counts = append(s.counts, 1)
	}
}

// top returns up to n tracked rows ordered by count descending, with
// ties broken by lower table position.
func (s *sampler) top(n int) []uint64 {
	if n <= 0 || len(s.rows) == 0 {
		return nil
	}
	if n > len(s.rows) {
		n = len(s.rows)
	}
	pos := make([]int, len(s.rows))
	for i := range pos {
		pos[i] = i
	}
	sort.Slice(pos, func(a, b int) bool {
		i, j := pos[a], pos[b]
		if s.counts[i] != s.counts[j] {
			return s.counts[i] > s.counts[j]
		}
		return i < j
	})
	out := make([]uint64, n)
	for k := 0; k < n; k++ {
		out[k] = s.rows[pos[k]]
	}
	return out
}

// popTop returns the top-n rows and removes them from the table by
// swap-with-last, preserving every other entry's count.
func (s *sampler) popTop(n int) []uint64 {
	out := s.top(n)
	for _, row := range out {
		for i, r := range s.rows {
			if r == row {
				last := len(s.rows) - 1
				s.rows[i], s.rows[last] = s.rows[last], s.rows[i]
				s.counts[i], s.counts[last] = s.counts[last], s.counts[i]
				s.rows = s.rows[:last]
				s.counts = s.counts[:last]
				break
			}
		}
	}
	return out
}

// clear resets the sampler for the next interval.
func (s *sampler) clear() {
	s.rows = s.rows[:0]
	s.counts = s.counts[:0]
}
