package refmodel

import "math"

// Deterministic per-row random stream, keyed by (seed, bank, row).
//
// This mirrors internal/dram's hashRand on purpose: the keyed stream IS
// the specification of a DIMM's vulnerability map — two models of the
// same module must draw the same weak cells, the same way two runs of
// the same binary must. It is deliberately a fresh transcription of the
// splitmix64 algorithm rather than a shared helper, so an accidental
// edit to either copy shows up as a differential failure instead of
// silently changing both models at once.
type keyedRand struct {
	state uint64
}

func newKeyedRand(seed int64, bank, row uint64) keyedRand {
	s := uint64(seed)
	s = splitmix(s ^ 0x9e3779b97f4a7c15)
	s = splitmix(s ^ bank*0xbf58476d1ce4e5b9)
	s = splitmix(s ^ row*0x94d049bb133111eb)
	return keyedRand{state: s}
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (h *keyedRand) next() uint64 {
	h.state += 0x9e3779b97f4a7c15
	z := h.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (h *keyedRand) float64() float64 {
	return float64(h.next()>>11) / (1 << 53)
}

func (h *keyedRand) norm() float64 {
	u1 := h.float64()
	for u1 == 0 {
		u1 = h.float64()
	}
	u2 := h.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

func (h *keyedRand) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= h.float64()
		if p <= l {
			return k
		}
		k++
		if k > 64 {
			return k
		}
	}
}
