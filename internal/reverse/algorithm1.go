package reverse

import (
	"fmt"

	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/timing"
)

// Recover runs ρHammer's reverse-engineering pipeline (Algorithm 1):
//
//	Step 0  calibrate the SBDR threshold from the latency density;
//	        classify pure row bits with single-bit measurements
//	Step 1  Duet: scan bit pairs for SBDR timings — every hit is a
//	        row-inclusive bank-function pair; the higher bits plus the
//	        pure row bits yield the full row-bit range
//	Step 2  Trios: borrow one recovered pair's SBDR state and probe each
//	        remaining bit; fast timings expose non-row bank bits
//	Step 3  Quartet: probe pairs of non-row bank bits on top of the
//	        borrowed SBDR state; slow timings mean same-function pairs
//	merge   union overlapping pairs into complete bank functions
//
// The method is layout-agnostic: it assumes nothing about the number of
// bank bits, the width of individual functions, or whether pure row bits
// exist — which is why it is the only method here that survives the
// Alder/Raptor Lake mappings.
func Recover(m *timing.Measurer, pool *mem.Pool, opt Options) Result {
	opt = opt.withDefaults(pool)
	ms := newMeasurer(m, pool, opt)
	res := Result{}
	accessesBefore := m.Accesses()
	timeBefore := m.Now()

	res.Threshold = ms.calibrate()

	// Step 0b: classify pure row bits. A single-bit difference that
	// times slow keeps the bank and changes the row: a pure row bit.
	pureRow := make([]uint, 0, opt.MaxBit-opt.MinBit+1)
	nonPureRow := make([]uint, 0, opt.MaxBit-opt.MinBit+1)
	for b := opt.MinBit; b <= opt.MaxBit; b++ {
		slow, ok := ms.sbdr(maskOf(b))
		if !ok {
			continue
		}
		if slow {
			pureRow = append(pureRow, b)
		} else {
			nonPureRow = append(nonPureRow, b)
		}
	}

	// Step 1: Duet. An SBDR timing for {bx, by} means bx and by belong
	// to the same bank function and at least one of them is a row bit.
	var pairs [][2]uint
	rowBits := map[uint]bool{}
	for _, b := range pureRow {
		rowBits[b] = true
	}
	for i := 0; i < len(nonPureRow); i++ {
		for j := i + 1; j < len(nonPureRow); j++ {
			bx, by := nonPureRow[i], nonPureRow[j]
			slow, ok := ms.sbdr(maskOf(bx, by))
			if !ok || !slow {
				continue
			}
			pairs = append(pairs, [2]uint{bx, by})
			// collect_higher: the higher bit of a duet is a row bit.
			if by > bx {
				rowBits[by] = true
			} else {
				rowBits[bx] = true
			}
		}
	}
	if len(pairs) == 0 {
		res.Err = fmt.Errorf("reverse: no row-inclusive bank functions found (threshold %.1f ns)", ms.thres)
		return finish(res, ms, m, accessesBefore, timeBefore, pool)
	}

	// Step 2: Trios. Borrow the SBDR state of one recovered pair and
	// probe every remaining non-row bit: a fast timing means the bit
	// moved the bank — a non-row bank bit.
	bBF, bBFp := pairs[0][0], pairs[0][1]
	var nonRowBank []uint
	for _, bx := range nonPureRow {
		if rowBits[bx] || bx == bBF || bx == bBFp {
			continue
		}
		slow, ok := ms.sbdr(maskOf(bBF, bBFp, bx))
		if !ok {
			continue
		}
		if !slow {
			nonRowBank = append(nonRowBank, bx)
		}
	}

	// Step 3: Quartet. Non-row bits that restore the SBDR state in
	// pairs share a bank function.
	for i := 0; i < len(nonRowBank); i++ {
		for j := i + 1; j < len(nonRowBank); j++ {
			bx, by := nonRowBank[i], nonRowBank[j]
			slow, ok := ms.sbdr(maskOf(bBF, bBFp, bx, by))
			if !ok || !slow {
				continue
			}
			pairs = append(pairs, [2]uint{bx, by})
		}
	}

	// Merge pairs into complete functions and assemble the mapping.
	funcs := mergePairs(pairs)
	lo, hi, err := contiguousRange(rowBits)
	if err != nil {
		res.Err = err
		return finish(res, ms, m, accessesBefore, timeBefore, pool)
	}
	res.Mapping = (&mapping.Mapping{
		Name:  "recovered",
		Funcs: funcs,
		RowLo: lo,
		RowHi: hi,
	}).Canonical()
	return finish(res, ms, m, accessesBefore, timeBefore, pool)
}

// finish fills the bookkeeping fields of a result.
func finish(res Result, ms *measurer, m *timing.Measurer, accessesBefore uint64, timeBefore float64, pool *mem.Pool) Result {
	res.Measurements = ms.measurements
	res.Accesses = m.Accesses() - accessesBefore
	res.SimTimeNS = (m.Now() - timeBefore) + allocOverheadNS(pool)
	return res
}
