package reverse

import (
	"sort"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/stats"
	"rhohammer/internal/timing"
)

// setup builds the measurement stack for one platform.
func setup(t *testing.T, a *arch.Arch, d *arch.DIMM, seed int64) (*timing.Measurer, *mem.Pool, *mapping.Mapping) {
	t.Helper()
	truth, ok := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	if !ok {
		t.Fatalf("no mapping for %s/%d", a.MappingFamily, d.SizeGiB)
	}
	r := stats.NewRand(seed)
	dev := dram.NewDevice(d, seed)
	ctrl := memctrl.New(a, truth, dev)
	return timing.NewMeasurer(ctrl, r), mem.NewPool(truth.Size(), 0.7, r), truth
}

// Algorithm 1 must recover every platform/geometry combination exactly —
// the Table 4 result.
func TestRecoverAllPlatforms(t *testing.T) {
	cases := []struct {
		name string
		a    *arch.Arch
		d    *arch.DIMM
	}{
		{"comet-8g", arch.CometLake(), arch.DIMMS2()},
		{"comet-16g", arch.CometLake(), arch.DIMMS3()},
		{"rocket-32g", arch.RocketLake(), arch.DIMMM1()},
		{"alder-8g", arch.AlderLake(), arch.DIMMS2()},
		{"raptor-16g", arch.RaptorLake(), arch.DIMMS1()},
		{"raptor-32g", arch.RaptorLake(), arch.DIMMM1()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			meas, pool, truth := setup(t, c.a, c.d, 17)
			res := Recover(meas, pool, Options{})
			if !res.OK() {
				t.Fatalf("recovery failed: %v", res.Err)
			}
			if !res.Mapping.Equal(truth) {
				t.Fatalf("wrong mapping:\n got  %s\n want %s", res.Mapping, truth)
			}
			if res.Seconds() <= 0 || res.Seconds() > 60 {
				t.Errorf("implausible simulated runtime %.1fs", res.Seconds())
			}
			if res.Measurements == 0 || res.Accesses == 0 {
				t.Error("no measurements recorded")
			}
		})
	}
}

// The recovery must be seed-independent (deterministic in outcome, not
// in exact measurements).
func TestRecoverStableAcrossSeeds(t *testing.T) {
	for seed := int64(100); seed < 103; seed++ {
		meas, pool, truth := setup(t, arch.RaptorLake(), arch.DIMMS3(), seed)
		res := Recover(meas, pool, Options{})
		if !res.OK() || !res.Mapping.Equal(truth) {
			t.Fatalf("seed %d: recovery unstable (%v)", seed, res.Err)
		}
	}
}

func TestRecoverPolynomialMeasurementCount(t *testing.T) {
	meas, pool, _ := setup(t, arch.RaptorLake(), arch.DIMMS3(), 5)
	res := Recover(meas, pool, Options{})
	// 28 candidate bits: singles (28) + duets (C(28,2)=378) + trios
	// (<28) + quartets (C(6,2)=15) ~= 450. Anything over 1000 means the
	// deduction degraded toward brute force.
	if res.Measurements > 1000 {
		t.Errorf("measurement count %d too high for structured deduction", res.Measurements)
	}
}

func TestDRAMAFailsOnAllPlatforms(t *testing.T) {
	for _, a := range []*arch.Arch{arch.CometLake(), arch.RaptorLake()} {
		meas, pool, truth := setup(t, a, arch.DIMMS3(), 23)
		res := RecoverDRAMA(meas, pool, Options{})
		if res.OK() && sameFuncSets(res.Mapping, truth) {
			t.Errorf("%s: DRAMA unexpectedly succeeded (hugepage reach)", a.Name)
		}
	}
}

func TestDRAMDigSucceedsOnlyWithPureRowBits(t *testing.T) {
	meas, pool, truth := setup(t, arch.CometLake(), arch.DIMMS3(), 29)
	res := RecoverDRAMDig(meas, pool, Options{})
	if !res.OK() {
		t.Fatalf("DRAMDig failed on Comet Lake: %v", res.Err)
	}
	if !sameFuncSets(res.Mapping, truth) {
		t.Errorf("DRAMDig wrong functions: %s", res.Mapping)
	}
	// Orders of magnitude slower than Algorithm 1 (Table 5).
	if res.Seconds() < 60 {
		t.Errorf("DRAMDig runtime %.1fs implausibly fast", res.Seconds())
	}

	meas2, pool2, _ := setup(t, arch.RaptorLake(), arch.DIMMS3(), 29)
	res2 := RecoverDRAMDig(meas2, pool2, Options{})
	if res2.OK() {
		t.Error("DRAMDig succeeded without pure row bits")
	}
}

func TestDAREFailsOnAlderRaptor(t *testing.T) {
	meas, pool, _ := setup(t, arch.RaptorLake(), arch.DIMMS3(), 31)
	res := RecoverDARE(meas, pool, Options{})
	if res.OK() {
		t.Errorf("DARE succeeded beyond superpage reach: %s", res.Mapping)
	}
}

func TestDAREMostlyCorrectOnComet(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed accuracy check")
	}
	ok := 0
	runs := 10
	for seed := int64(0); seed < int64(runs); seed++ {
		meas, pool, truth := setup(t, arch.CometLake(), arch.DIMMS3(), seed)
		res := RecoverDARE(meas, pool, Options{})
		if res.OK() && sameFuncSets(res.Mapping, truth) {
			ok++
		}
	}
	// The paper reports 34/50 accuracy: partially non-deterministic,
	// but mostly working.
	if ok < runs/2 {
		t.Errorf("DARE accuracy %d/%d, want at least half", ok, runs)
	}
	if ok == runs {
		t.Logf("note: DARE fully deterministic over %d seeds (paper: partially non-deterministic)", runs)
	}
}

func sameFuncSets(got, want *mapping.Mapping) bool {
	g, w := got.Canonical(), want.Canonical()
	if len(g.Funcs) != len(w.Funcs) {
		return false
	}
	for i := range g.Funcs {
		if g.Funcs[i] != w.Funcs[i] {
			return false
		}
	}
	return true
}

func TestMergePairs(t *testing.T) {
	funcs := mergePairs([][2]uint{{12, 19}, {8, 12}, {3, 5}})
	var masks []uint64
	for _, f := range funcs {
		masks = append(masks, uint64(f))
	}
	sort.Slice(masks, func(i, j int) bool { return masks[i] < masks[j] })
	want := []uint64{1<<3 | 1<<5, 1<<8 | 1<<12 | 1<<19}
	if len(masks) != 2 || masks[0] != want[0] || masks[1] != want[1] {
		t.Errorf("merged = %#x, want %#x", masks, want)
	}
}

func TestMergePairsTransitive(t *testing.T) {
	funcs := mergePairs([][2]uint{{1, 2}, {3, 4}, {2, 3}})
	if len(funcs) != 1 {
		t.Fatalf("got %d functions, want 1", len(funcs))
	}
	if uint64(funcs[0]) != 1<<1|1<<2|1<<3|1<<4 {
		t.Errorf("merged mask %#x", uint64(funcs[0]))
	}
}

func TestContiguousRange(t *testing.T) {
	lo, hi, err := contiguousRange(map[uint]bool{18: true, 19: true, 20: true})
	if err != nil || lo != 18 || hi != 20 {
		t.Errorf("contiguousRange = (%d,%d,%v)", lo, hi, err)
	}
	if _, _, err := contiguousRange(map[uint]bool{18: true, 20: true}); err == nil {
		t.Error("gap not detected")
	}
	if _, _, err := contiguousRange(nil); err == nil {
		t.Error("empty set not rejected")
	}
}

func TestMaskOf(t *testing.T) {
	if maskOf(3, 7) != 1<<3|1<<7 {
		t.Error("maskOf")
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{SimTimeNS: 2.5e9}
	if r.Seconds() != 2.5 {
		t.Error("Seconds")
	}
	if r.OK() {
		t.Error("nil mapping should not be OK")
	}
}

// The method is layout-agnostic (§3.3): it must also recover mappings it
// has never seen, e.g. a dual-channel variant with an extra low-order
// channel function, or synthetic future mappings with wider functions.
func TestRecoverNovelMappings(t *testing.T) {
	novel := []*mapping.Mapping{
		{
			// Dual-channel Comet-style: one extra channel function.
			Name: "dual-channel-comet",
			Funcs: []mapping.BankFunc{
				mapping.NewBankFunc(7, 8, 9, 12),
				mapping.NewBankFunc(17, 21),
				mapping.NewBankFunc(16, 20),
				mapping.NewBankFunc(15, 19),
				mapping.NewBankFunc(14, 18),
				mapping.NewBankFunc(6, 13),
			},
			RowLo: 18, RowHi: 33,
		},
		{
			// A hypothetical future mapping: 8-bit-wide function.
			Name: "future-wide",
			Funcs: []mapping.BankFunc{
				mapping.NewBankFunc(10, 12),
				mapping.NewBankFunc(14, 17, 20, 23, 26, 28, 30, 32),
				mapping.NewBankFunc(15, 18, 21, 24, 27, 29, 31, 33),
				mapping.NewBankFunc(16, 19),
			},
			RowLo: 17, RowHi: 33,
		},
	}
	for _, truth := range novel {
		t.Run(truth.Name, func(t *testing.T) {
			a := arch.RaptorLake()
			d := arch.DIMMS1()
			d.RowsPerBank = truth.Rows()
			d.BanksPerRank = truth.Banks() / d.Ranks
			r := stats.NewRand(83)
			dev := dram.NewDevice(d, 83)
			ctrl := memctrl.New(a, truth, dev)
			meas := timing.NewMeasurer(ctrl, r)
			pool := mem.NewPool(truth.Size(), 0.7, r)
			res := Recover(meas, pool, Options{})
			if !res.OK() {
				t.Fatalf("recovery failed: %v", res.Err)
			}
			if !res.Mapping.Equal(truth) {
				t.Fatalf("wrong mapping:\n got  %s\n want %s", res.Mapping, truth)
			}
		})
	}
}
