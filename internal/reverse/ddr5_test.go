package reverse

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/stats"
	"rhohammer/internal/timing"
)

// The §6 DDR5 observation: Algorithm 1 recovers the function set of the
// DDR5 mapping (the sub-channel function appears as one more bank
// function, which is all Rowhammer needs).
func TestRecoverDDR5Mapping(t *testing.T) {
	truth := mapping.AlderRaptorDDR5()
	a := arch.RaptorLake()
	d := arch.DIMMD1()
	r := stats.NewRand(41)
	dev := dram.NewDevice(d, 41)
	ctrl := memctrl.New(a, truth, dev)
	meas := timing.NewMeasurer(ctrl, r)
	pool := mem.NewPool(truth.Size(), 0.7, r)
	res := Recover(meas, pool, Options{})
	if !res.OK() {
		t.Fatalf("DDR5 recovery failed: %v", res.Err)
	}
	if !res.Mapping.Equal(truth) {
		t.Fatalf("DDR5 mapping mismatch:\n got  %s\n want %s", res.Mapping, truth)
	}
}
