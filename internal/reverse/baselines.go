package reverse

import (
	"fmt"
	"math/bits"

	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/timing"
)

// This file re-implements the three prior reverse-engineering tools the
// paper compares against in Table 5, faithfully enough that each fails
// for the same structural reason it fails in the paper:
//
//   - DRAMA (Pessl et al.) colors addresses inside 2 MiB transparent
//     hugepages and brute-forces small XOR functions over bits the
//     hugepage controls (< 21). Recent mappings place bank-function
//     bits above bit 20, so DRAMA cannot even represent them.
//   - DRAMDig (Wang et al.) accelerates the brute force by first
//     excluding pure row bits — and aborts when none exist, which is
//     exactly the Alder/Raptor situation.
//   - DARE (Jattke et al., ZenHammer) colors addresses inside 1 GiB
//     superpages (bits < 30) with a fast low-redundancy measurement
//     pass; Alder/Raptor functions reach bits 30-34, and on older
//     platforms its thrifty timing makes runs partially
//     non-deterministic.
//
// The implementations measure through the same simulated side channel
// as Algorithm 1; no method reads the ground truth.

// hugepageBits is the span of physical bits controlled inside a 2 MiB
// transparent hugepage.
const hugepageBits = 21

// superpageBits is the span controlled inside a 1 GiB superpage.
const superpageBits = 30

// bruteForceCluster groups sampled addresses into banks using pairwise
// row-conflict timings against cluster representatives — the shared
// skeleton of all three brute-force tools. It returns the clusters as
// slices of physical addresses.
func bruteForceCluster(ms *measurer, samples int, maskLimit uint64) [][]uint64 {
	var clusters [][]uint64
	for i := 0; i < samples; i++ {
		addr := ms.pool.RandomAddr()
		if maskLimit > 0 {
			// Tools confined to a hugepage/superpage only compare
			// addresses whose high bits match; emulate by masking the
			// sampled address into the window of cluster seeds.
			addr &= maskLimit - 1
			if !ms.pool.Has(addr) {
				continue
			}
		}
		placed := false
		for ci := range clusters {
			rep := clusters[ci][0]
			if rep == addr {
				placed = true
				break
			}
			ms.measurements++
			lat := ms.m.TimePair(rep, addr, ms.opt.Rounds)
			if lat > ms.thres { // row conflict: same bank
				clusters[ci] = append(clusters[ci], addr)
				placed = true
				break
			}
		}
		if !placed {
			clusters = append(clusters, []uint64{addr})
		}
	}
	return clusters
}

// xorConst reports whether the XOR function defined by mask is constant
// within each cluster, tolerating a small fraction of violations: the
// real tools majority-vote so that an occasional misclustered address
// does not veto a true function.
func xorConst(clusters [][]uint64, mask uint64, tolerance float64) bool {
	total, bad := 0, 0
	for _, cl := range clusters {
		if len(cl) < 2 {
			continue
		}
		ones := 0
		for _, a := range cl {
			ones += bits.OnesCount64(a&mask) & 1
		}
		minority := ones
		if minority > len(cl)-ones {
			minority = len(cl) - ones
		}
		total += len(cl)
		bad += minority
	}
	if total == 0 {
		return false
	}
	return float64(bad)/float64(total) <= tolerance
}

// bruteForceFuncs exhausts XOR functions of up to maxWidth bits over the
// candidate bit list, keeping those constant within all clusters and not
// implied by already-found functions. This is the exponential search the
// paper's method avoids.
func bruteForceFuncs(clusters [][]uint64, candidates []uint, maxWidth int, tolerance float64) []mapping.BankFunc {
	var found []mapping.BankFunc
	redundant := func(mask uint64) bool {
		// A candidate implied by XOR-combinations of found functions
		// adds no information; checking pairwise combinations suffices
		// for the small function sets real controllers use.
		for i := range found {
			if uint64(found[i]) == mask {
				return true
			}
			for j := i + 1; j < len(found); j++ {
				if uint64(found[i])^uint64(found[j]) == mask {
					return true
				}
			}
		}
		return false
	}
	var comb func(start int, width int, mask uint64)
	comb = func(start, width int, mask uint64) {
		if width == 0 {
			if mask != 0 && !redundant(mask) && xorConst(clusters, mask, tolerance) {
				found = append(found, mapping.BankFunc(mask))
			}
			return
		}
		for i := start; i < len(candidates); i++ {
			comb(i+1, width-1, mask|uint64(1)<<candidates[i])
		}
	}
	for w := 2; w <= maxWidth; w++ {
		comb(0, w, 0)
	}
	return found
}

// RecoverDRAMA runs the DRAMA-style recovery. It succeeds only when
// every bank-function bit lies below the 2 MiB hugepage boundary, which
// no mapping in this repository satisfies for the dual-rank DIMMs of the
// evaluation.
func RecoverDRAMA(m *timing.Measurer, pool *mem.Pool, opt Options) Result {
	opt = opt.withDefaults(pool)
	ms := newMeasurer(m, pool, opt)
	res := Result{}
	accessesBefore := m.Accesses()
	timeBefore := m.Now()
	res.Threshold = ms.calibrate()

	clusters := bruteForceCluster(ms, 640, 1<<hugepageBits)
	candidates := make([]uint, 0, hugepageBits-opt.MinBit)
	for b := opt.MinBit; b < hugepageBits; b++ {
		candidates = append(candidates, b)
	}
	funcs := bruteForceFuncs(clusters, candidates, 2, 0.02)

	// DRAMA validates its functions by checking the cluster count:
	// 2^#funcs must equal the number of banks observed. With function
	// bits outside the hugepage the count never matches.
	if len(clusters) == 0 || 1<<len(funcs) != len(clusters) {
		res.Err = fmt.Errorf("drama: found %d XOR functions but observed %d bank clusters; mapping bits outside hugepage reach",
			len(funcs), len(clusters))
		return finish(res, ms, m, accessesBefore, timeBefore, pool)
	}
	res.Mapping = (&mapping.Mapping{Name: "drama", Funcs: funcs}).Canonical()
	return finish(res, ms, m, accessesBefore, timeBefore, pool)
}

// dramdigWorkFactor scales DRAMDig's reported runtime: the real tool
// re-times every cluster exhaustively with heavy redundancy (its paper
// reports quarter-hour runs); we execute a statistically equivalent
// subsample and extrapolate the simulated time.
const dramdigWorkFactor = 7000

// RecoverDRAMDig runs the DRAMDig-style knowledge-assisted recovery. It
// requires pure row bits to exist (its search-space reduction) and
// aborts on Alder/Raptor mappings, reproducing the "-" entries of
// Table 5.
func RecoverDRAMDig(m *timing.Measurer, pool *mem.Pool, opt Options) Result {
	opt = opt.withDefaults(pool)
	ms := newMeasurer(m, pool, opt)
	res := Result{}
	accessesBefore := m.Accesses()
	timeBefore := m.Now()
	res.Threshold = ms.calibrate()

	// Phase 1: identify pure row bits via single-bit probes.
	rowBits := map[uint]bool{}
	nonPure := make([]uint, 0, opt.MaxBit-opt.MinBit+1)
	for b := opt.MinBit; b <= opt.MaxBit; b++ {
		slow, ok := ms.sbdr(maskOf(b))
		if !ok {
			continue
		}
		if slow {
			rowBits[b] = true
		} else {
			nonPure = append(nonPure, b)
		}
	}
	if len(rowBits) == 0 {
		res.Err = fmt.Errorf("dramdig: no pure row bits found; search-space reduction impossible, aborting")
		return finish(res, ms, m, accessesBefore, timeBefore, pool)
	}

	// Phase 2: timing-based bank clustering over the full pool.
	clusters := bruteForceCluster(ms, 960, 0)

	// Phase 3: brute-force XOR functions over the non-pure-row bits.
	funcs := bruteForceFuncs(clusters, nonPure, 2, 0.02)
	if len(funcs) == 0 {
		res.Err = fmt.Errorf("dramdig: brute force found no consistent bank functions")
		return finish(res, ms, m, accessesBefore, timeBefore, pool)
	}

	// Phase 4: row range = pure rows plus function bits above the
	// lowest pure row bit's alignment (DRAMDig's sequential-row scan,
	// granted here from its recovered functions).
	for _, f := range funcs {
		fb := f.Bits()
		hi := fb[len(fb)-1]
		lo := uint(64)
		for b := range rowBits {
			if b < lo {
				lo = b
			}
		}
		if hi >= lo-uint(len(funcs))+0 {
			// High function bits adjacent to the pure-row range are
			// row bits too.
			rowBits[hi] = true
		}
	}
	lo, hi, err := contiguousRange(rowBits)
	if err != nil {
		res.Err = fmt.Errorf("dramdig: %w", err)
		return finish(res, ms, m, accessesBefore, timeBefore, pool)
	}
	res.Mapping = (&mapping.Mapping{Name: "dramdig", Funcs: funcs, RowLo: lo, RowHi: hi}).Canonical()
	res = finish(res, ms, m, accessesBefore, timeBefore, pool)
	res.SimTimeNS = allocOverheadNS(pool) + (res.SimTimeNS-allocOverheadNS(pool))*dramdigWorkFactor
	return res
}

// dareWorkFactor extrapolates DARE's reported runtime the same way as
// dramdigWorkFactor: the real tool allocates and colors many 1 GiB
// superpages; we run a statistically equivalent subsample.
const dareWorkFactor = 900

// RecoverDARE runs the DARE-style (ZenHammer) recovery: superpage
// coloring with a thrifty measurement budget. Function bits above the
// superpage boundary (Alder/Raptor) are unreachable; on supported
// mappings the low-redundancy timings make results partially
// non-deterministic, mirroring the (*) entries of Table 5.
func RecoverDARE(m *timing.Measurer, pool *mem.Pool, opt Options) Result {
	// DARE deliberately uses a small measurement budget.
	opt = opt.withDefaults(pool)
	opt.Rounds = 10
	opt.ThresholdSamples = 400
	ms := newMeasurer(m, pool, opt)
	res := Result{}
	accessesBefore := m.Accesses()
	timeBefore := m.Now()
	res.Threshold = ms.calibrate()

	clusters := bruteForceCluster(ms, 288, 1<<superpageBits)
	candidates := make([]uint, 0, superpageBits-opt.MinBit)
	for b := opt.MinBit; b < superpageBits; b++ {
		candidates = append(candidates, b)
	}
	funcs := bruteForceFuncs(clusters, candidates, 2, 0.04)

	if len(clusters) == 0 || 1<<len(funcs) != len(clusters) {
		res.Err = fmt.Errorf("dare: %d functions vs %d clusters; function bits beyond superpage reach or timing noise",
			len(funcs), len(clusters))
		res = finish(res, ms, m, accessesBefore, timeBefore, pool)
		res.SimTimeNS = allocOverheadNS(pool) + (res.SimTimeNS-allocOverheadNS(pool))*dareWorkFactor
		return res
	}
	// DARE reports bank functions plus a row-bit estimate derived from
	// the highest function bits (a heuristic that works on the
	// traditional mappings it targets).
	maxFuncBit := uint(0)
	for _, f := range funcs {
		fb := f.Bits()
		if fb[len(fb)-1] > maxFuncBit {
			maxFuncBit = fb[len(fb)-1]
		}
	}
	if maxFuncBit < 4 {
		res.Err = fmt.Errorf("dare: implausible function set (max bit %d)", maxFuncBit)
		return finish(res, ms, m, accessesBefore, timeBefore, pool)
	}
	res.Mapping = (&mapping.Mapping{
		Name:  "dare",
		Funcs: funcs,
		RowLo: maxFuncBit - 3, // heuristic: rows start below the top function bits
		RowHi: opt.MaxBit,
	}).Canonical()
	res = finish(res, ms, m, accessesBefore, timeBefore, pool)
	res.SimTimeNS = allocOverheadNS(pool) + (res.SimTimeNS-allocOverheadNS(pool))*dareWorkFactor
	return res
}
