package reverse

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/mapping"
)

func TestCrossValidationPasses(t *testing.T) {
	for _, c := range []struct {
		a *arch.Arch
		d *arch.DIMM
	}{
		{arch.CometLake(), arch.DIMMS3()},
		{arch.RaptorLake(), arch.DIMMS1()},
	} {
		meas, pool, truth := setup(t, c.a, c.d, 51)
		res, v := RecoverValidated(meas, pool, Options{})
		if !res.OK() || !res.Mapping.Equal(truth) {
			t.Fatalf("%s: recovery failed: %v", c.a.Name, res.Err)
		}
		if !v.OK() {
			t.Errorf("%s: cross-validation %d/%d failures", c.a.Name, v.Failures, v.Checks)
		}
		if v.Checks < len(truth.Funcs) {
			t.Errorf("%s: only %d validation checks for %d functions", c.a.Name, v.Checks, len(truth.Funcs))
		}
	}
}

// A deliberately corrupted mapping must fail cross-validation — the
// property that makes the pass useful.
func TestCrossValidationDetectsCorruption(t *testing.T) {
	meas, pool, truth := setup(t, arch.RaptorLake(), arch.DIMMS1(), 53)
	opt := Options{}.withDefaults(pool)
	ms := newMeasurer(meas, pool, opt)
	ms.calibrate()

	bad := truth.Canonical()
	// Move one bit of one wide function: (14,18,26,29,32) -> (14,18,26,29,30).
	funcs := append([]mapping.BankFunc{}, bad.Funcs...)
	for i, f := range funcs {
		if uint64(f)&(1<<32) != 0 {
			funcs[i] = mapping.BankFunc(uint64(f)&^(1<<32) | 1<<30)
		}
	}
	bad.Funcs = funcs
	v, err := CrossValidate(ms, bad)
	if err != nil {
		t.Fatal(err)
	}
	if v.Failures == 0 {
		t.Error("corrupted mapping passed cross-validation")
	}
}
