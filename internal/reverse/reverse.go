// Package reverse implements DRAM address-mapping reverse-engineering:
// ρHammer's structured-deduction method (Algorithm 1 of the paper, the
// Duet/Trios/Quartet pipeline) and re-implementations of the three prior
// tools it is compared against in Table 5 — DRAMA, DRAMDig and DARE —
// each with the structural assumption that breaks it on recent
// platforms.
//
// All methods consume only the SBDR timing side channel exposed by
// timing.Measurer plus the attacker's allocated page pool; none of them
// peeks at the ground-truth mapping.
package reverse

import (
	"fmt"

	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/timing"
)

// Options tunes the measurement effort shared by all methods.
type Options struct {
	// Rounds is the number of timing rounds averaged per address pair
	// (the paper uses 50).
	Rounds int
	// PairsPerMeasure is how many random address pairs are averaged
	// per T_SBDR primitive (the paper uses 16).
	PairsPerMeasure int
	// ThresholdSamples is the number of random pairs used to locate
	// the SBDR threshold (Step 0 / Fig. 3).
	ThresholdSamples int
	// MaxBit is the highest physical address bit to consider; 0 means
	// derive it from the pool size.
	MaxBit uint
	// MinBit is the lowest bit considered; bits below the cache-line
	// boundary never matter. Defaults to 6.
	MinBit uint
}

func (o Options) withDefaults(pool *mem.Pool) Options {
	if o.Rounds == 0 {
		o.Rounds = 50
	}
	if o.PairsPerMeasure == 0 {
		o.PairsPerMeasure = 16
	}
	if o.ThresholdSamples == 0 {
		o.ThresholdSamples = 1500
	}
	if o.MinBit == 0 {
		o.MinBit = 6
	}
	if o.MaxBit == 0 {
		top := uint(0)
		for s := pool.PhysBytes; s > 1; s >>= 1 {
			top++
		}
		o.MaxBit = top - 1
	}
	return o
}

// Result is the outcome of one reverse-engineering run.
type Result struct {
	// Mapping is the recovered mapping (nil when the method failed).
	Mapping *mapping.Mapping
	// Err explains a failure in the method's own terms.
	Err error
	// Threshold is the Step-0 calibration actually used.
	Threshold timing.ThresholdResult
	// Measurements counts T_SBDR primitives evaluated.
	Measurements int
	// Accesses counts DRAM accesses issued.
	Accesses uint64
	// SimTimeNS is the simulated wall time of the whole run, including
	// the allocation phase.
	SimTimeNS float64
}

// OK reports whether the run produced a mapping.
func (r *Result) OK() bool { return r.Mapping != nil && r.Err == nil }

// Seconds returns the simulated runtime in seconds (Table 5 units).
func (r *Result) Seconds() float64 { return r.SimTimeNS / 1e9 }

// allocOverheadNS models the setup phase every tool pays before
// measuring: allocating the pool, touching pages, and walking
// /proc/self/pagemap — roughly 0.30 s per GiB of pool.
func allocOverheadNS(pool *mem.Pool) float64 {
	return float64(pool.Pages()) * mem.PageSize * 0.30
}

// measurer wraps the measurement bookkeeping shared by the methods.
type measurer struct {
	m    *timing.Measurer
	pool *mem.Pool
	opt  Options

	thres        float64
	measurements int
}

func newMeasurer(m *timing.Measurer, pool *mem.Pool, opt Options) *measurer {
	return &measurer{m: m, pool: pool, opt: opt}
}

// calibrate runs Step 0 and stores the SBDR threshold.
func (ms *measurer) calibrate() timing.ThresholdResult {
	res := ms.m.FindThreshold(ms.pool.RandomPair, ms.opt.ThresholdSamples, 8)
	ms.thres = res.Threshold
	return res
}

// sbdr evaluates the T_SBDR(M, Bdiff) primitive: the average timing of
// PairsPerMeasure random pairs differing exactly in mask, each timed
// Rounds times, compared against the calibrated threshold. ok is false
// when the pool cannot produce pairs for this mask.
func (ms *measurer) sbdr(mask uint64) (slow, ok bool) {
	ms.measurements++
	var sum float64
	n := 0
	for i := 0; i < ms.opt.PairsPerMeasure; i++ {
		a, b, found := ms.pool.PairDifferingIn(mask)
		if !found {
			continue
		}
		sum += ms.m.TimePair(a, b, ms.opt.Rounds)
		n++
	}
	if n == 0 {
		return false, false
	}
	return sum/float64(n) > ms.thres, true
}

// maskOf builds a Bdiff mask from bit positions.
func maskOf(bits ...uint) uint64 {
	var m uint64
	for _, b := range bits {
		m |= 1 << b
	}
	return m
}

// mergePairs unions overlapping bit-pair functions into complete bank
// functions (e.g. (12,19) and (8,12) merge into (8,12,19)), using a
// union-find over bit positions.
func mergePairs(pairs [][2]uint) []mapping.BankFunc {
	parent := map[uint]uint{}
	var find func(x uint) uint
	find = func(x uint) uint {
		if p, ok := parent[x]; ok && p != x {
			r := find(p)
			parent[x] = r
			return r
		}
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
		return parent[x]
	}
	union := func(a, b uint) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, p := range pairs {
		union(p[0], p[1])
	}
	groups := map[uint][]uint{}
	for x := range parent {
		r := find(x)
		groups[r] = append(groups[r], x)
	}
	var funcs []mapping.BankFunc
	for _, bits := range groups {
		funcs = append(funcs, mapping.NewBankFunc(bits...))
	}
	return funcs
}

// contiguousRange validates that a recovered row-bit set is contiguous
// and returns its bounds.
func contiguousRange(bits map[uint]bool) (lo, hi uint, err error) {
	if len(bits) == 0 {
		return 0, 0, fmt.Errorf("reverse: no row bits recovered")
	}
	first := true
	for b := range bits {
		if first {
			lo, hi = b, b
			first = false
			continue
		}
		if b < lo {
			lo = b
		}
		if b > hi {
			hi = b
		}
	}
	for b := lo; b <= hi; b++ {
		if !bits[b] {
			return 0, 0, fmt.Errorf("reverse: row bits not contiguous: missing bit %d in [%d,%d]", b, lo, hi)
		}
	}
	return lo, hi, nil
}
