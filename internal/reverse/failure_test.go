package reverse

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/stats"
	"rhohammer/internal/timing"
)

// Failure injection: the algorithms must degrade gracefully — return an
// error or a flagged result, never panic and never silently return a
// wrong mapping that also passes cross-validation.

func noisySetup(t *testing.T, sigma, spikeProb float64, seed int64) (*timing.Measurer, *mem.Pool, *mapping.Mapping) {
	t.Helper()
	a := arch.RaptorLake()
	d := arch.DIMMS3()
	truth, _ := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	r := stats.NewRand(seed)
	dev := dram.NewDevice(d, seed)
	ctrl := memctrl.New(a, truth, dev)
	meas := timing.NewMeasurer(ctrl, r)
	meas.NoiseSigmaNS = sigma
	meas.SpikeProb = spikeProb
	return meas, mem.NewPool(truth.Size(), 0.7, r), truth
}

func TestRecoverUnderModerateNoise(t *testing.T) {
	// 3x the default noise: averaging must still pull through.
	meas, pool, truth := noisySetup(t, 27, 0.03, 61)
	res := Recover(meas, pool, Options{})
	if !res.OK() {
		t.Fatalf("recovery failed under moderate noise: %v", res.Err)
	}
	if !res.Mapping.Equal(truth) {
		t.Errorf("moderate noise corrupted the mapping:\n got  %s\n want %s", res.Mapping, truth)
	}
}

func TestRecoverUnderExtremeNoiseFailsSafely(t *testing.T) {
	// Noise comparable to the SBDR contrast itself: the run may fail,
	// but it must fail loudly — either an error or a cross-validation
	// flag, never a silently wrong result.
	meas, pool, truth := noisySetup(t, 70, 0.25, 67)
	res, v := RecoverValidated(meas, pool, Options{})
	if !res.OK() {
		return // failed loudly: acceptable
	}
	if res.Mapping.Equal(truth) {
		return // survived: also acceptable
	}
	if v.OK() {
		t.Errorf("wrong mapping passed cross-validation under extreme noise:\n got %s", res.Mapping)
	}
}

func TestRecoverFromTinyPoolIsWindowLimited(t *testing.T) {
	// A pool covering only a sliver of the address space can only see
	// the mapping's restriction to that window — exactly the hugepage
	// limitation that cripples DRAMA, and the reason Step 0 allocates
	// 70% of system memory. The algorithm must not hang or fabricate
	// full-space structure it cannot observe.
	a := arch.RaptorLake()
	d := arch.DIMMS3()
	truth, _ := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	r := stats.NewRand(71)
	dev := dram.NewDevice(d, 71)
	ctrl := memctrl.New(a, truth, dev)
	meas := timing.NewMeasurer(ctrl, r)
	pool := mem.NewPool(1<<22, 0.7, r) // 4 MiB window
	res := Recover(meas, pool, Options{})
	if !res.OK() {
		return // refusing outright is acceptable too
	}
	if res.Mapping.Equal(truth) {
		t.Error("full mapping cannot be observable through a 4 MiB window")
	}
	if res.Mapping.RowHi >= truth.RowHi {
		t.Errorf("recovered row range %d-%d exceeds the pool window",
			res.Mapping.RowLo, res.Mapping.RowHi)
	}
	// Within the window, every recovered function must be the
	// truth's restriction to the visible bits.
	for _, f := range res.Mapping.Funcs {
		matched := false
		for _, tf := range truth.Funcs {
			if uint64(tf)&(1<<22-1) == uint64(f) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("recovered function %s is not a window restriction of the truth", f)
		}
	}
}

func TestRecoverWithSparsePool(t *testing.T) {
	// 30% allocation share: pair finding needs retries but must work.
	a := arch.CometLake()
	d := arch.DIMMS3()
	truth, _ := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	r := stats.NewRand(73)
	dev := dram.NewDevice(d, 73)
	ctrl := memctrl.New(a, truth, dev)
	meas := timing.NewMeasurer(ctrl, r)
	pool := mem.NewPool(truth.Size(), 0.3, r)
	res := Recover(meas, pool, Options{})
	if !res.OK() || !res.Mapping.Equal(truth) {
		t.Errorf("recovery failed with a 30%% pool: %v", res.Err)
	}
}

func TestBaselinesNeverPanicUnderNoise(t *testing.T) {
	for _, run := range []func(*timing.Measurer, *mem.Pool, Options) Result{
		RecoverDRAMA, RecoverDRAMDig, RecoverDARE,
	} {
		meas, pool, _ := noisySetup(t, 60, 0.2, 79)
		_ = run(meas, pool, Options{}) // outcome irrelevant; must not panic
	}
}
