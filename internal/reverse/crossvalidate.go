package reverse

import (
	"fmt"

	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/timing"
)

// Cross-validation, the §3.3 extension: "further expanding the size and
// combinations of B_diff can provide extra cross-validation". After the
// Duet/Trios/Quartet recovery completes, this pass re-derives a sample
// of the algorithm's conclusions with *different* borrowed SBDR states
// and larger B_diff sets, so a single mis-thresholded measurement cannot
// silently corrupt the output.
//
// Predicates checked, all relative to a borrowed row-inclusive pair
// (bBF, bBF') taken from a DIFFERENT function than the one under test:
//
//   - same-function pairs (x, y) within a recovered function must keep
//     the borrowed SBDR state slow (B_diff size 4);
//   - cross-function pairs must break it (the bank moves — fast);
//   - for functions of three or more bits, flipping any odd-sized
//     subset must break it and any even-sized subset must keep it
//     (B_diff sizes 5 and 6).

// Validation summarizes a cross-validation pass.
type Validation struct {
	Checks   int
	Failures int
}

// OK reports whether every predicate held.
func (v Validation) OK() bool { return v.Checks > 0 && v.Failures == 0 }

// CrossValidate verifies a recovered mapping against fresh measurements.
// It must be called with the same measurer/pool used for recovery (or an
// equivalently calibrated one); the threshold is re-derived internally.
func CrossValidate(ms *measurer, m *mapping.Mapping) (Validation, error) {
	var v Validation
	if len(m.Funcs) < 2 {
		return v, fmt.Errorf("reverse: cross-validation needs at least two functions")
	}
	// Find a borrowed row-inclusive pair for each function under test:
	// a pair (lo, hi) from a *different* function where hi is a row bit.
	borrowFor := func(exclude int) ([2]uint, bool) {
		for i, f := range m.Funcs {
			if i == exclude {
				continue
			}
			bits := f.Bits()
			hi := bits[len(bits)-1]
			lo := bits[0]
			if hi >= m.RowLo && hi <= m.RowHi && lo != hi {
				return [2]uint{lo, hi}, true
			}
		}
		return [2]uint{}, false
	}

	check := func(mask uint64, wantSlow bool) {
		slow, ok := ms.sbdr(mask)
		if !ok {
			return
		}
		v.Checks++
		if slow != wantSlow {
			v.Failures++
		}
	}

	for i, f := range m.Funcs {
		borrow, ok := borrowFor(i)
		if !ok {
			continue
		}
		base := maskOf(borrow[0], borrow[1])
		bits := f.Bits()
		last := bits[len(bits)-1]

		// Even subsets preserve the borrowed SBDR state. Pair every
		// bit with the function's last bit so each membership claim is
		// probed at least once.
		for _, b := range bits[:len(bits)-1] {
			check(base|maskOf(b, last), true)
		}
		if len(bits) >= 4 {
			check(base|maskOf(bits[0], bits[1], bits[2], last), true)
		}
		// Odd subsets break it.
		check(base|maskOf(bits[0]), false)
		if len(bits) >= 3 {
			check(base|maskOf(bits[0], bits[1], last), false)
		}
		// Cross-function pairs break it.
		for j, g := range m.Funcs {
			if j == i {
				continue
			}
			gb := g.Bits()
			check(base^maskOf(bits[0], gb[0]), false)
			break
		}
	}
	if v.Checks == 0 {
		return v, fmt.Errorf("reverse: no cross-validation predicates applicable")
	}
	return v, nil
}

// RecoverValidated runs Recover followed by the cross-validation pass,
// recording the outcome in the result. A validation failure does not
// discard the mapping — it flags it for re-measurement, mirroring how
// the real tool would retry.
func RecoverValidated(m *timing.Measurer, pool *mem.Pool, opt Options) (Result, Validation) {
	res := Recover(m, pool, opt)
	if !res.OK() {
		return res, Validation{}
	}
	opt = opt.withDefaults(pool)
	ms := newMeasurer(m, pool, opt)
	ms.calibrate()
	v, err := CrossValidate(ms, res.Mapping)
	if err != nil {
		res.Err = err
		return res, v
	}
	res.Measurements += ms.measurements
	return res, v
}
