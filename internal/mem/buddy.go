package mem

import (
	"fmt"
	"sort"

	"rhohammer/internal/stats"
)

// MaxOrder is the largest buddy order (order 10 = 4 MiB blocks), the
// largest physically contiguous allocation an unprivileged process can
// force out of Linux by exhausting the allocator — the contiguity size
// the paper's end-to-end attack relies on instead of superpages.
const MaxOrder = 10

// HugeOrder is the buddy order of a transparent huge page (order 9 =
// 2 MiB): the contiguity THP hands an attacker for free, without the
// allocator-exhaustion maneuver, on systems that leave THP enabled.
const HugeOrder = 9

// BlockBytes returns the size in bytes of a block of the given order.
func BlockBytes(order int) uint64 { return PageSize << order }

// Buddy is a simplified Linux-style binary buddy allocator over a
// physical address range. It supports exactly the operations the
// Rubicon-style massaging needs: allocate at a given order, free, and
// observe which physical block an allocation landed on.
type Buddy struct {
	physBytes uint64
	free      [MaxOrder + 1][]uint64 // free lists: block base addresses
	allocated map[uint64]int         // base -> order
	rand      *stats.Rand
}

// NewBuddy builds an allocator over physBytes of memory, fully free,
// split into MaxOrder blocks.
func NewBuddy(physBytes uint64, r *stats.Rand) *Buddy {
	if physBytes%BlockBytes(MaxOrder) != 0 {
		panic("mem: physical size must be a multiple of the max buddy block")
	}
	b := &Buddy{
		physBytes: physBytes,
		allocated: make(map[uint64]int),
		rand:      r,
	}
	for base := uint64(0); base < physBytes; base += BlockBytes(MaxOrder) {
		b.free[MaxOrder] = append(b.free[MaxOrder], base)
	}
	// Shuffle the top-order list: physical placement of fresh blocks
	// is unpredictable to the attacker.
	r.Shuffle(len(b.free[MaxOrder]), func(i, j int) {
		b.free[MaxOrder][i], b.free[MaxOrder][j] = b.free[MaxOrder][j], b.free[MaxOrder][i]
	})
	return b
}

// FreePages returns the total number of free 4 KiB pages.
func (b *Buddy) FreePages() uint64 {
	var n uint64
	for order := 0; order <= MaxOrder; order++ {
		n += uint64(len(b.free[order])) << order
	}
	return n
}

// Alloc returns the base physical address of a block of the given order,
// or an error if memory is exhausted. Like Linux, it prefers the exact
// order and splits larger blocks when needed.
func (b *Buddy) Alloc(order int) (uint64, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("mem: order %d out of range [0,%d]", order, MaxOrder)
	}
	o := order
	for o <= MaxOrder && len(b.free[o]) == 0 {
		o++
	}
	if o > MaxOrder {
		return 0, fmt.Errorf("mem: out of memory at order %d", order)
	}
	// Pop from the found order; split down to the requested order.
	base := b.free[o][len(b.free[o])-1]
	b.free[o] = b.free[o][:len(b.free[o])-1]
	for o > order {
		o--
		buddy := base + BlockBytes(o)
		b.free[o] = append(b.free[o], buddy)
	}
	b.allocated[base] = order
	return base, nil
}

// Free releases a previously allocated block, coalescing with free
// buddies like the kernel does.
func (b *Buddy) Free(base uint64) error {
	order, ok := b.allocated[base]
	if !ok {
		return fmt.Errorf("mem: free of unallocated block %#x", base)
	}
	delete(b.allocated, base)
	for order < MaxOrder {
		buddy := base ^ BlockBytes(order)
		idx := -1
		for i, fb := range b.free[order] {
			if fb == buddy {
				idx = i
				break
			}
		}
		if idx < 0 {
			break
		}
		b.free[order] = append(b.free[order][:idx], b.free[order][idx+1:]...)
		if buddy < base {
			base = buddy
		}
		order++
	}
	b.free[order] = append(b.free[order], base)
	return nil
}

// DrainToContiguous performs the exhaustion maneuver of the end-to-end
// attack: allocate everything below the maximum order so subsequent
// allocations must come from freshly split order-10 blocks, then grab n
// contiguous 4 MiB regions. It returns their base addresses, ascending.
func (b *Buddy) DrainToContiguous(n int) ([]uint64, error) {
	// Exhaust all fragments below max order.
	for order := 0; order < MaxOrder; order++ {
		for len(b.free[order]) > 0 {
			if _, err := b.Alloc(order); err != nil {
				return nil, err
			}
		}
	}
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		base, err := b.Alloc(MaxOrder)
		if err != nil {
			return out, fmt.Errorf("mem: only %d of %d contiguous regions available: %w", i, n, err)
		}
		out = append(out, base)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// AllocHugePages models THP-style allocation: back n anonymous 2 MiB
// mappings with huge pages, each a physically contiguous HugeOrder
// block, without draining the allocator first. Placement is whatever
// the (shuffled) free lists yield — the attacker gets contiguity but
// not choice. Returns the base addresses, ascending.
func (b *Buddy) AllocHugePages(n int) ([]uint64, error) {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		base, err := b.Alloc(HugeOrder)
		if err != nil {
			return out, fmt.Errorf("mem: only %d of %d huge pages available: %w", i, n, err)
		}
		out = append(out, base)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// AllocAt allocates a specific free block if available — the primitive
// the massaging step uses after carving a target frame out of a drained
// region (Rubicon's page-granular placement). Returns false if the block
// of that order at base is not currently free.
func (b *Buddy) AllocAt(base uint64, order int) bool {
	for i, fb := range b.free[order] {
		if fb == base {
			b.free[order] = append(b.free[order][:i], b.free[order][i+1:]...)
			b.allocated[base] = order
			return true
		}
	}
	return false
}
