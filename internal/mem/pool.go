// Package mem models the attacker-visible memory-management surface:
// a pool of allocated 4 KiB pages with pagemap-style virtual-to-physical
// translation (root-only, as the paper assumes for the offline RE phase),
// and a Linux-like buddy allocator used by the end-to-end exploit to
// obtain physically contiguous 4 MiB regions without superpages.
package mem

import (
	"fmt"

	"rhohammer/internal/stats"
)

// PageSize is the base allocation granularity.
const PageSize = 4096

// Pool is a set of allocated physical 4 KiB frames covering a fraction
// of the machine's physical address space, as obtained by a userspace
// process that allocates aggressively and reads /proc/self/pagemap.
type Pool struct {
	// PhysBytes is the size of the physical address space.
	PhysBytes uint64

	frames   []bool // frame index -> allocated
	allocIdx []uint64
	rand     *stats.Rand
}

// NewPool allocates `share` (0..1] of a physical address space of the
// given size, choosing frames pseudo-randomly like a fragmented buddy
// allocator would. The paper's tool allocates 70%.
func NewPool(physBytes uint64, share float64, r *stats.Rand) *Pool {
	if physBytes%PageSize != 0 {
		panic("mem: physical size must be page aligned")
	}
	if share <= 0 || share > 1 {
		panic(fmt.Sprintf("mem: allocation share %v out of (0,1]", share))
	}
	n := physBytes / PageSize
	p := &Pool{
		PhysBytes: physBytes,
		frames:    make([]bool, n),
		rand:      r,
	}
	want := uint64(float64(n) * share)
	// Sample distinct frames via a partial Fisher-Yates shuffle over
	// the frame index space.
	perm := make([]uint64, n)
	for i := range perm {
		perm[i] = uint64(i)
	}
	for i := uint64(0); i < want; i++ {
		j := i + uint64(r.Int63n(int64(n-i)))
		perm[i], perm[j] = perm[j], perm[i]
		p.frames[perm[i]] = true
		p.allocIdx = append(p.allocIdx, perm[i])
	}
	return p
}

// Pages returns the number of allocated pages.
func (p *Pool) Pages() int { return len(p.allocIdx) }

// Has reports whether the frame containing physical address pa is
// allocated to the attacker.
func (p *Pool) Has(pa uint64) bool {
	f := pa / PageSize
	return f < uint64(len(p.frames)) && p.frames[f]
}

// RandomAddr returns a random allocated, cache-line aligned physical
// address.
func (p *Pool) RandomAddr() uint64 {
	f := p.allocIdx[p.rand.Intn(len(p.allocIdx))]
	line := uint64(p.rand.Intn(PageSize/64)) * 64
	return f*PageSize + line
}

// maxPairTries bounds the search for an allocated address pair; with a
// 70% pool the expected number of tries is ~2.
const maxPairTries = 4096

// PairDifferingIn returns a random allocated physical address pair that
// differs exactly in the bits of mask (all other bits equal). This is
// the T_SBDR(M, B_diff) selection primitive of Algorithm 1. ok is false
// if the pool cannot produce such a pair (e.g. mask reaches beyond the
// populated address space).
func (p *Pool) PairDifferingIn(mask uint64) (a, b uint64, ok bool) {
	if mask == 0 || mask >= p.PhysBytes {
		return 0, 0, false
	}
	for try := 0; try < maxPairTries; try++ {
		a = p.RandomAddr() &^ mask // canonical low form
		b = a | mask
		if b >= p.PhysBytes {
			continue
		}
		// Sub-page mask bits never affect frame allocation.
		if p.Has(a) && p.Has(b) {
			// Randomize which side is "a" to avoid bias.
			if p.rand.Intn(2) == 0 {
				return a, b, true
			}
			return b, a, true
		}
	}
	return 0, 0, false
}

// RandomPair returns two independent random allocated addresses, used by
// threshold finding and by the DRAMA-style baselines.
func (p *Pool) RandomPair() (uint64, uint64) {
	return p.RandomAddr(), p.RandomAddr()
}
