package mem

import (
	"math/bits"
	"testing"
	"testing/quick"

	"rhohammer/internal/stats"
)

func TestPoolShare(t *testing.T) {
	r := stats.NewRand(1)
	p := NewPool(1<<28, 0.7, r) // 256 MiB
	pages := 1 << 28 / PageSize
	want := int(float64(pages) * 0.7)
	if p.Pages() != want {
		t.Errorf("pages = %d, want %d", p.Pages(), want)
	}
}

func TestPoolHasAndRandom(t *testing.T) {
	r := stats.NewRand(2)
	p := NewPool(1<<26, 0.5, r)
	for i := 0; i < 1000; i++ {
		a := p.RandomAddr()
		if !p.Has(a) {
			t.Fatalf("RandomAddr returned unallocated %#x", a)
		}
		if a >= p.PhysBytes {
			t.Fatalf("RandomAddr out of range %#x", a)
		}
		if a%64 != 0 {
			t.Fatalf("RandomAddr not line-aligned %#x", a)
		}
	}
	if p.Has(p.PhysBytes + PageSize) {
		t.Error("Has beyond range")
	}
}

func TestPairDifferingIn(t *testing.T) {
	r := stats.NewRand(3)
	p := NewPool(1<<30, 0.7, r)
	for _, mask := range []uint64{1 << 6, 1 << 18, 1<<14 | 1<<18, 1<<6 | 1<<13 | 1<<20 | 1<<25} {
		a, b, ok := p.PairDifferingIn(mask)
		if !ok {
			t.Fatalf("no pair for mask %#x", mask)
		}
		if a^b != mask {
			t.Errorf("pair differs in %#x, want %#x", a^b, mask)
		}
		if !p.Has(a) || !p.Has(b) {
			t.Error("pair members not allocated")
		}
	}
}

func TestPairDifferingInRejectsBadMasks(t *testing.T) {
	r := stats.NewRand(4)
	p := NewPool(1<<26, 0.7, r)
	if _, _, ok := p.PairDifferingIn(0); ok {
		t.Error("zero mask accepted")
	}
	if _, _, ok := p.PairDifferingIn(1 << 40); ok {
		t.Error("mask beyond pool accepted")
	}
}

func TestPoolPanics(t *testing.T) {
	r := stats.NewRand(5)
	for _, f := range []func(){
		func() { NewPool(12345, 0.5, r) }, // unaligned
		func() { NewPool(1<<20, 0, r) },   // zero share
		func() { NewPool(1<<20, 1.5, r) }, // share > 1
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: pairs always differ in exactly the requested mask.
func TestPairMaskProperty(t *testing.T) {
	r := stats.NewRand(6)
	p := NewPool(1<<30, 0.7, r)
	f := func(rawBits [3]uint8) bool {
		var mask uint64
		for _, b := range rawBits {
			mask |= 1 << (6 + uint(b)%24)
		}
		a, b, ok := p.PairDifferingIn(mask)
		return !ok || a^b == mask
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBuddyAllocSplit(t *testing.T) {
	r := stats.NewRand(7)
	b := NewBuddy(1<<24, r) // 16 MiB = 4 max-order blocks
	if b.FreePages() != 1<<24/PageSize {
		t.Fatalf("initial free pages = %d", b.FreePages())
	}
	base, err := b.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if base%PageSize != 0 {
		t.Errorf("unaligned order-0 block %#x", base)
	}
	if b.FreePages() != 1<<24/PageSize-1 {
		t.Errorf("free pages after order-0 alloc = %d", b.FreePages())
	}
}

func TestBuddyAlignment(t *testing.T) {
	r := stats.NewRand(8)
	b := NewBuddy(1<<24, r)
	for order := 0; order <= MaxOrder; order++ {
		base, err := b.Alloc(order)
		if err != nil {
			t.Fatal(err)
		}
		if base%BlockBytes(order) != 0 {
			t.Errorf("order-%d block %#x misaligned", order, base)
		}
	}
}

func TestBuddyFreeCoalesces(t *testing.T) {
	r := stats.NewRand(9)
	b := NewBuddy(1<<24, r)
	var blocks []uint64
	// Fragment the allocator fully at order 0.
	for {
		base, err := b.Alloc(0)
		if err != nil {
			break
		}
		blocks = append(blocks, base)
	}
	if b.FreePages() != 0 {
		t.Fatalf("allocator not exhausted: %d free", b.FreePages())
	}
	for _, base := range blocks {
		if err := b.Free(base); err != nil {
			t.Fatal(err)
		}
	}
	if b.FreePages() != 1<<24/PageSize {
		t.Errorf("free pages after full free = %d", b.FreePages())
	}
	// Everything must have coalesced back to max order.
	if _, err := b.Alloc(MaxOrder); err != nil {
		t.Errorf("max-order alloc after coalescing: %v", err)
	}
}

func TestBuddyDoubleFree(t *testing.T) {
	r := stats.NewRand(10)
	b := NewBuddy(1<<24, r)
	base, _ := b.Alloc(3)
	if err := b.Free(base); err != nil {
		t.Fatal(err)
	}
	if err := b.Free(base); err == nil {
		t.Error("double free accepted")
	}
}

func TestBuddyExhaustion(t *testing.T) {
	r := stats.NewRand(11)
	b := NewBuddy(1<<22, r) // one max-order block
	if _, err := b.Alloc(MaxOrder); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Alloc(0); err == nil {
		t.Error("allocation from empty allocator succeeded")
	}
	if _, err := b.Alloc(MaxOrder + 1); err == nil {
		t.Error("over-max order accepted")
	}
}

func TestDrainToContiguous(t *testing.T) {
	r := stats.NewRand(12)
	b := NewBuddy(1<<26, r) // 16 max-order blocks
	// Pre-fragment a little.
	for i := 0; i < 5; i++ {
		b.Alloc(3)
	}
	regions, err := b.DrainToContiguous(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 4 {
		t.Fatalf("got %d regions", len(regions))
	}
	for i, base := range regions {
		if base%BlockBytes(MaxOrder) != 0 {
			t.Errorf("region %d misaligned: %#x", i, base)
		}
		if i > 0 && regions[i] <= regions[i-1] {
			t.Error("regions not ascending")
		}
	}
	// After draining, nothing below max order remains free.
	if b.FreePages()%(1<<MaxOrder) != 0 {
		t.Errorf("sub-max fragments remain: %d pages", b.FreePages())
	}
}

func TestAllocAt(t *testing.T) {
	r := stats.NewRand(13)
	b := NewBuddy(1<<24, r)
	base, _ := b.Alloc(0)
	if err := b.Free(base); err != nil {
		t.Fatal(err)
	}
	// The freed block coalesced upward; carve back down to order 0 by
	// allocating and freeing a neighbor... simpler: AllocAt on a block
	// that is free at a known order.
	b2 := NewBuddy(1<<24, r)
	base2, _ := b2.Alloc(0) // splits a max block: its buddy at order 0 is free
	if !b2.AllocAt(base2^PageSize, 0) {
		t.Error("AllocAt on known-free buddy failed")
	}
	if b2.AllocAt(base2, 0) {
		t.Error("AllocAt on allocated block succeeded")
	}
}

// Property: free pages are conserved across alloc/free cycles.
func TestBuddyConservationProperty(t *testing.T) {
	r := stats.NewRand(14)
	f := func(orders []uint8) bool {
		b := NewBuddy(1<<24, r)
		total := b.FreePages()
		var allocated []uint64
		var pages uint64
		for _, o := range orders {
			order := int(o) % (MaxOrder + 1)
			base, err := b.Alloc(order)
			if err != nil {
				continue
			}
			allocated = append(allocated, base)
			pages += 1 << order
		}
		if b.FreePages()+pages != total {
			return false
		}
		for _, base := range allocated {
			if b.Free(base) != nil {
				return false
			}
		}
		return b.FreePages() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBlockBytes(t *testing.T) {
	if BlockBytes(0) != PageSize {
		t.Error("order 0 size")
	}
	if BlockBytes(MaxOrder) != 4<<20 {
		t.Errorf("max order = %d bytes, want 4 MiB", BlockBytes(MaxOrder))
	}
	if bits.OnesCount64(BlockBytes(5)) != 1 {
		t.Error("block sizes must be powers of two")
	}
}
