package mapping

// Ground-truth mappings reverse-engineered in the paper (Table 4).
//
// Comet/Rocket Lake share one scheme (traditional: small two-bit
// functions, plenty of pure row bits); Alder/Raptor Lake share another
// (wide functions spanning the full row range, no pure row bits, plus a
// low-order three-bit function that never touches a row bit).

// CometRocket8G is the Comet/Rocket Lake mapping for 8 GiB single-rank
// DIMMs (16 banks, rows 17-32).
func CometRocket8G() *Mapping {
	return &Mapping{
		Name: "comet-rocket-8g",
		Funcs: []BankFunc{
			NewBankFunc(16, 19),
			NewBankFunc(15, 18),
			NewBankFunc(14, 17),
			NewBankFunc(6, 13),
		},
		RowLo: 17, RowHi: 32,
	}
}

// CometRocket16G is the Comet/Rocket Lake mapping for 16 GiB dual-rank
// DIMMs (32 geographic banks, rows 18-33).
func CometRocket16G() *Mapping {
	return &Mapping{
		Name: "comet-rocket-16g",
		Funcs: []BankFunc{
			NewBankFunc(17, 21),
			NewBankFunc(16, 20),
			NewBankFunc(15, 19),
			NewBankFunc(14, 18),
			NewBankFunc(6, 13),
		},
		RowLo: 18, RowHi: 33,
	}
}

// CometRocket32G is the Comet/Rocket Lake mapping for 32 GiB dual-rank
// DIMMs (rows 18-34).
func CometRocket32G() *Mapping {
	m := CometRocket16G()
	m.Name = "comet-rocket-32g"
	m.RowHi = 34
	return m
}

// AlderRaptor8G is the Alder/Raptor Lake mapping for 8 GiB single-rank
// DIMMs. Note the wide functions covering every row bit: there are no
// pure row bits, and the (9, 11, 13) function contains no row bit at all.
func AlderRaptor8G() *Mapping {
	return &Mapping{
		Name: "alder-raptor-8g",
		Funcs: []BankFunc{
			NewBankFunc(14, 17, 21, 26, 29, 32),
			NewBankFunc(15, 18, 20, 23, 24, 27, 30),
			NewBankFunc(16, 19, 22, 25, 28, 31),
			NewBankFunc(9, 11, 13),
		},
		RowLo: 17, RowHi: 32,
	}
}

// AlderRaptor16G is the Alder/Raptor Lake mapping for 16 GiB dual-rank
// DIMMs (rows 18-33).
func AlderRaptor16G() *Mapping {
	return &Mapping{
		Name: "alder-raptor-16g",
		Funcs: []BankFunc{
			NewBankFunc(14, 18, 26, 29, 32),
			NewBankFunc(16, 20, 23, 24, 27, 30, 33),
			NewBankFunc(17, 21, 22, 25, 28, 31),
			NewBankFunc(15, 19),
			NewBankFunc(9, 11, 13),
		},
		RowLo: 18, RowHi: 33,
	}
}

// AlderRaptor32G is the Alder/Raptor Lake mapping for 32 GiB dual-rank
// DIMMs (rows 18-34).
func AlderRaptor32G() *Mapping {
	return &Mapping{
		Name: "alder-raptor-32g",
		Funcs: []BankFunc{
			NewBankFunc(14, 18, 26, 29, 32),
			NewBankFunc(16, 20, 23, 24, 27, 30, 33),
			NewBankFunc(17, 21, 22, 25, 28, 31, 34),
			NewBankFunc(15, 19),
			NewBankFunc(9, 11, 13),
		},
		RowLo: 18, RowHi: 34,
	}
}

// AlderRaptorDDR5 is the mapping observed on the paper's Alder/Raptor
// Lake DDR5 setups (§6): one additional low-order sub-channel function
// on top of six bank functions, 64 geographic banks per rank. The paper
// notes its reverse-engineering tool recovers these systems' functions
// but classifying which one selects the sub-channel requires extra work;
// in this repository the sub-channel function is simply another member
// of the bank-function set, which is all Rowhammer needs.
func AlderRaptorDDR5() *Mapping {
	return &Mapping{
		Name: "alder-raptor-ddr5-16g",
		Funcs: []BankFunc{
			NewBankFunc(6, 13), // sub-channel
			NewBankFunc(14, 18, 26, 29, 32),
			NewBankFunc(16, 20, 23, 24, 27, 30, 33),
			NewBankFunc(17, 21, 22, 25, 28, 31),
			NewBankFunc(15, 19),
			NewBankFunc(9, 11, 12),
		},
		RowLo: 18, RowHi: 33,
	}
}

// ForPlatform returns the ground-truth mapping for a platform family and
// DIMM capacity in GiB. family is "comet-rocket" or "alder-raptor".
func ForPlatform(family string, sizeGiB int) (*Mapping, bool) {
	switch family {
	case "comet-rocket":
		switch sizeGiB {
		case 8:
			return CometRocket8G(), true
		case 16:
			return CometRocket16G(), true
		case 32:
			return CometRocket32G(), true
		}
	case "alder-raptor":
		switch sizeGiB {
		case 8:
			return AlderRaptor8G(), true
		case 16:
			return AlderRaptor16G(), true
		case 32:
			return AlderRaptor32G(), true
		}
	case "alder-raptor-ddr5":
		if sizeGiB == 16 {
			return AlderRaptorDDR5(), true
		}
	}
	return nil, false
}

// All returns every known ground-truth mapping, keyed for Table 4.
func All() []*Mapping {
	return []*Mapping{
		CometRocket8G(), CometRocket16G(), CometRocket32G(),
		AlderRaptor8G(), AlderRaptor16G(), AlderRaptor32G(),
	}
}
