// Package mapping models the physical-address → DRAM-address translation
// performed by the memory controller.
//
// A mapping consists of a set of bank functions — each a linear XOR over a
// subset of physical address bits — and a contiguous range of row bits.
// The packages mirrors the paper's Table 4: Comet/Rocket Lake use the
// traditional scheme with pure row bits, while Alder/Raptor Lake spread
// wide bank functions across the entire row-bit range, leaving no pure row
// bits at all (the property that defeats prior reverse-engineering tools).
package mapping

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// BankFunc is one bank-addressing function: a bitmask over the physical
// address whose XOR-fold (parity) yields one bit of the bank index.
type BankFunc uint64

// NewBankFunc builds a function from explicit bit positions.
func NewBankFunc(bitPositions ...uint) BankFunc {
	var f BankFunc
	for _, b := range bitPositions {
		f |= 1 << b
	}
	return f
}

// Eval returns the parity (0 or 1) of the masked physical address.
func (f BankFunc) Eval(pa uint64) uint64 {
	return uint64(bits.OnesCount64(pa&uint64(f)) & 1)
}

// Bits returns the bit positions of the function in ascending order.
func (f BankFunc) Bits() []uint {
	var out []uint
	for v := uint64(f); v != 0; v &= v - 1 {
		out = append(out, uint(bits.TrailingZeros64(v)))
	}
	return out
}

// String renders the function like the paper: "(14, 18, 26, 29, 32)".
func (f BankFunc) String() string {
	parts := f.Bits()
	strs := make([]string, len(parts))
	for i, b := range parts {
		strs[i] = fmt.Sprintf("%d", b)
	}
	return "(" + strings.Join(strs, ", ") + ")"
}

// Mapping is a complete physical-to-DRAM address mapping.
type Mapping struct {
	Name  string
	Funcs []BankFunc // one per bank-index bit, low bit first
	RowLo uint       // lowest row bit (inclusive)
	RowHi uint       // highest row bit (inclusive)
}

// Banks returns the number of banks the mapping addresses (2^len(Funcs)).
// This counts every geographic bank location: channel, rank, bank group
// and intra-group bank bits are deliberately not distinguished, matching
// the paper's treatment.
func (m *Mapping) Banks() int { return 1 << len(m.Funcs) }

// Rows returns the number of rows per bank.
func (m *Mapping) Rows() uint64 { return 1 << (m.RowHi - m.RowLo + 1) }

// Size returns the number of addressable bytes.
func (m *Mapping) Size() uint64 { return 1 << (m.RowHi + 1) }

// Bank computes the bank index of a physical address.
func (m *Mapping) Bank(pa uint64) int {
	var b int
	for i, f := range m.Funcs {
		b |= int(f.Eval(pa)) << i
	}
	return b
}

// Row extracts the row address of a physical address.
func (m *Mapping) Row(pa uint64) uint64 {
	return (pa >> m.RowLo) & (m.Rows() - 1)
}

// RowMask returns the mask of all row bits in the physical address.
func (m *Mapping) RowMask() uint64 {
	return (m.Rows() - 1) << m.RowLo
}

// SameBank reports whether two physical addresses map to the same bank.
func (m *Mapping) SameBank(a, b uint64) bool { return m.Bank(a) == m.Bank(b) }

// SameRow reports whether two physical addresses map to the same row
// index (not necessarily the same bank).
func (m *Mapping) SameRow(a, b uint64) bool { return m.Row(a) == m.Row(b) }

// PureRowBits returns the row bits that participate in no bank function —
// the bits prior tools relied on and that vanish on Alder/Raptor Lake.
func (m *Mapping) PureRowBits() []uint {
	var used uint64
	for _, f := range m.Funcs {
		used |= uint64(f)
	}
	var out []uint
	for b := m.RowLo; b <= m.RowHi; b++ {
		if used&(1<<b) == 0 {
			out = append(out, b)
		}
	}
	return out
}

// BankBits returns every physical-address bit that participates in at
// least one bank function, ascending.
func (m *Mapping) BankBits() []uint {
	var used uint64
	for _, f := range m.Funcs {
		used |= uint64(f)
	}
	return BankFunc(used).Bits()
}

// PhysAddr constructs a physical address that maps to the given bank and
// row, with the low (column) bits taken from col. It fixes the row bits
// first, then solves for the bank index using only bits below RowLo so
// the row is undisturbed. Returns an error if the bank is unreachable,
// which cannot happen for any real mapping in this package.
func (m *Mapping) PhysAddr(bank int, row uint64, col uint64) (uint64, error) {
	if bank < 0 || bank >= m.Banks() {
		return 0, fmt.Errorf("mapping %s: bank %d out of range [0,%d)", m.Name, bank, m.Banks())
	}
	if row >= m.Rows() {
		return 0, fmt.Errorf("mapping %s: row %d out of range [0,%d)", m.Name, row, m.Rows())
	}
	lowMask := uint64(1)<<m.RowLo - 1
	pa := row<<m.RowLo | col&lowMask
	want := uint64(bank)
	have := uint64(m.Bank(pa))
	delta := want ^ have
	if delta == 0 {
		return pa, nil
	}
	fix, err := m.solveLowBits(delta, col&lowMask)
	if err != nil {
		return 0, err
	}
	return pa ^ fix, nil
}

// solveLowBits finds an XOR-mask over bits < RowLo that changes the bank
// index by delta, via Gaussian elimination over GF(2). The returned mask
// avoids, where possible, perturbing bits set in keep (best effort; the
// pivot choice prefers the lowest free bit of each function).
func (m *Mapping) solveLowBits(delta uint64, keep uint64) (uint64, error) {
	lowMask := uint64(1)<<m.RowLo - 1
	// rows[i] = (coefficient mask over low bits, rhs bit)
	type eq struct {
		coef uint64
		rhs  uint64
	}
	eqs := make([]eq, len(m.Funcs))
	for i, f := range m.Funcs {
		eqs[i] = eq{uint64(f) & lowMask, (delta >> i) & 1}
	}
	_ = keep
	var solution uint64
	used := uint64(0) // low bits already consumed as pivots
	for i := range eqs {
		if eqs[i].coef == 0 {
			if eqs[i].rhs != 0 {
				return 0, fmt.Errorf("mapping %s: bank function %s has no bits below row bit %d; bank unreachable at fixed row", m.Name, m.Funcs[i], m.RowLo)
			}
			continue
		}
		pivotMask := eqs[i].coef &^ used
		if pivotMask == 0 {
			pivotMask = eqs[i].coef
		}
		pivot := uint64(1) << uint(bits.TrailingZeros64(pivotMask))
		used |= pivot
		// Eliminate the pivot from all other equations.
		for j := range eqs {
			if j != i && eqs[j].coef&pivot != 0 {
				eqs[j].coef ^= eqs[i].coef
				eqs[j].rhs ^= eqs[i].rhs
			}
		}
	}
	// Back-substitute: with elimination done, each equation with a pivot
	// is independent; set its pivot bit iff rhs, accounting for already
	// chosen bits in its coefficient set.
	for i := range eqs {
		if eqs[i].coef == 0 {
			continue
		}
		cur := uint64(bits.OnesCount64(eqs[i].coef&solution) & 1)
		if cur != eqs[i].rhs {
			pivotMask := eqs[i].coef &^ (solution)
			if pivotMask == 0 {
				return 0, fmt.Errorf("mapping %s: inconsistent bank system", m.Name)
			}
			solution |= uint64(1) << uint(bits.TrailingZeros64(pivotMask))
		}
	}
	// Verify.
	for i, f := range m.Funcs {
		if f.Eval(solution)&1 != (delta>>i)&1 {
			return 0, fmt.Errorf("mapping %s: solver failed to realize bank delta %#x", m.Name, delta)
		}
	}
	return solution, nil
}

// Canonical returns a copy of the mapping with functions sorted by their
// lowest participating bit, the canonical ordering used when comparing a
// recovered mapping against ground truth.
func (m *Mapping) Canonical() *Mapping {
	out := &Mapping{Name: m.Name, RowLo: m.RowLo, RowHi: m.RowHi}
	out.Funcs = append(out.Funcs, m.Funcs...)
	sort.Slice(out.Funcs, func(a, b int) bool { return out.Funcs[a] < out.Funcs[b] })
	return out
}

// Equal reports whether two mappings describe the same translation:
// identical row-bit range and the same set of bank functions, modulo
// function order. (Strictly, any GF(2) basis of the same function space
// is equivalent; the recovery algorithm always produces the merged
// canonical basis, so set equality is the right check here.)
func (m *Mapping) Equal(o *Mapping) bool {
	if o == nil || m.RowLo != o.RowLo || m.RowHi != o.RowHi || len(m.Funcs) != len(o.Funcs) {
		return false
	}
	a, b := m.Canonical(), o.Canonical()
	for i := range a.Funcs {
		if a.Funcs[i] != b.Funcs[i] {
			return false
		}
	}
	return true
}

// String renders the mapping in the paper's Table 4 style.
func (m *Mapping) String() string {
	c := m.Canonical()
	funcs := make([]string, len(c.Funcs))
	for i, f := range c.Funcs {
		funcs[i] = f.String()
	}
	return fmt.Sprintf("Bank Func: %s; Row: %d-%d", strings.Join(funcs, ", "), m.RowLo, m.RowHi)
}
