package mapping

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBankFuncEval(t *testing.T) {
	f := NewBankFunc(3, 5)
	cases := []struct {
		pa   uint64
		want uint64
	}{
		{0, 0},
		{1 << 3, 1},
		{1 << 5, 1},
		{1<<3 | 1<<5, 0},
		{0xFFFF, 0},
	}
	for _, c := range cases {
		if got := f.Eval(c.pa); got != c.want {
			t.Errorf("Eval(%#x) = %d, want %d", c.pa, got, c.want)
		}
	}
}

func TestBankFuncBitsAndString(t *testing.T) {
	f := NewBankFunc(14, 18, 26)
	bits := f.Bits()
	want := []uint{14, 18, 26}
	if len(bits) != len(want) {
		t.Fatalf("bits = %v", bits)
	}
	for i := range bits {
		if bits[i] != want[i] {
			t.Errorf("bits[%d] = %d, want %d", i, bits[i], want[i])
		}
	}
	if f.String() != "(14, 18, 26)" {
		t.Errorf("String() = %q", f.String())
	}
}

func TestKnownMappingGeometry(t *testing.T) {
	cases := []struct {
		m          *Mapping
		banks      int
		rows       uint64
		pureRows   bool
		sizeGiB    uint64
		lowFuncBit uint
	}{
		{CometRocket8G(), 16, 1 << 16, true, 8, 6},
		{CometRocket16G(), 32, 1 << 16, true, 16, 6},
		{CometRocket32G(), 32, 1 << 17, true, 32, 6},
		{AlderRaptor8G(), 16, 1 << 16, false, 8, 9},
		{AlderRaptor16G(), 32, 1 << 16, false, 16, 9},
		{AlderRaptor32G(), 32, 1 << 17, false, 32, 9},
	}
	for _, c := range cases {
		if c.m.Banks() != c.banks {
			t.Errorf("%s: banks = %d, want %d", c.m.Name, c.m.Banks(), c.banks)
		}
		if c.m.Rows() != c.rows {
			t.Errorf("%s: rows = %d, want %d", c.m.Name, c.m.Rows(), c.rows)
		}
		if c.m.Size() != c.sizeGiB<<30 {
			t.Errorf("%s: size = %d, want %d GiB", c.m.Name, c.m.Size(), c.sizeGiB)
		}
		if got := len(c.m.PureRowBits()) > 0; got != c.pureRows {
			t.Errorf("%s: pure row bits present = %v, want %v (bits %v)",
				c.m.Name, got, c.pureRows, c.m.PureRowBits())
		}
	}
}

// The headline structural difference of the paper: Alder/Raptor mappings
// cover every row bit with bank functions.
func TestAlderRaptorNoPureRowBits(t *testing.T) {
	for _, m := range []*Mapping{AlderRaptor8G(), AlderRaptor16G(), AlderRaptor32G()} {
		if bits := m.PureRowBits(); len(bits) != 0 {
			t.Errorf("%s: unexpected pure row bits %v", m.Name, bits)
		}
	}
}

func TestCometPureRowBitsRange(t *testing.T) {
	m := CometRocket16G()
	bits := m.PureRowBits()
	if len(bits) == 0 {
		t.Fatal("no pure row bits on Comet Lake mapping")
	}
	if bits[0] != 22 || bits[len(bits)-1] != 33 {
		t.Errorf("pure row bits span %d-%d, want 22-33", bits[0], bits[len(bits)-1])
	}
}

func TestPhysAddrRoundTrip(t *testing.T) {
	for _, m := range All() {
		for bank := 0; bank < m.Banks(); bank += 3 {
			for _, row := range []uint64{0, 1, 12345, m.Rows() - 1} {
				pa, err := m.PhysAddr(bank, row, 64)
				if err != nil {
					t.Fatalf("%s: PhysAddr(%d,%d): %v", m.Name, bank, row, err)
				}
				if got := m.Bank(pa); got != bank {
					t.Errorf("%s: Bank(PhysAddr(%d,%d)) = %d", m.Name, bank, row, got)
				}
				if got := m.Row(pa); got != row {
					t.Errorf("%s: Row(PhysAddr(%d,%d)) = %d", m.Name, bank, row, got)
				}
				if pa >= m.Size() {
					t.Errorf("%s: PhysAddr %#x beyond size %#x", m.Name, pa, m.Size())
				}
			}
		}
	}
}

func TestPhysAddrErrors(t *testing.T) {
	m := CometRocket16G()
	if _, err := m.PhysAddr(-1, 0, 0); err == nil {
		t.Error("negative bank accepted")
	}
	if _, err := m.PhysAddr(m.Banks(), 0, 0); err == nil {
		t.Error("bank out of range accepted")
	}
	if _, err := m.PhysAddr(0, m.Rows(), 0); err == nil {
		t.Error("row out of range accepted")
	}
}

func TestSameBankSameRow(t *testing.T) {
	m := AlderRaptor16G()
	a, _ := m.PhysAddr(5, 100, 0)
	b, _ := m.PhysAddr(5, 200, 0)
	c, _ := m.PhysAddr(6, 100, 0)
	if !m.SameBank(a, b) {
		t.Error("same-bank pair not detected")
	}
	if m.SameBank(a, c) {
		t.Error("different banks reported equal")
	}
	if !m.SameRow(a, c) {
		t.Error("same row index not detected")
	}
	if m.SameRow(a, b) {
		t.Error("different rows reported equal")
	}
}

func TestRowMask(t *testing.T) {
	m := CometRocket16G()
	mask := m.RowMask()
	if mask != uint64(0xFFFF)<<18 {
		t.Errorf("row mask = %#x", mask)
	}
}

func TestBankBits(t *testing.T) {
	m := CometRocket8G()
	bits := m.BankBits()
	want := []uint{6, 13, 14, 15, 16, 17, 18, 19}
	if len(bits) != len(want) {
		t.Fatalf("bank bits %v", bits)
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Errorf("bank bit %d = %d, want %d", i, bits[i], want[i])
		}
	}
}

func TestEqualAndCanonical(t *testing.T) {
	a := CometRocket16G()
	b := CometRocket16G()
	// Shuffle function order.
	b.Funcs[0], b.Funcs[3] = b.Funcs[3], b.Funcs[0]
	if !a.Equal(b) {
		t.Error("function order should not affect equality")
	}
	c := CometRocket16G()
	c.Funcs[0] = NewBankFunc(17, 22)
	if a.Equal(c) {
		t.Error("different function sets reported equal")
	}
	d := CometRocket16G()
	d.RowHi = 34
	if a.Equal(d) {
		t.Error("different row ranges reported equal")
	}
	if a.Equal(nil) {
		t.Error("Equal(nil) = true")
	}
}

func TestMappingString(t *testing.T) {
	s := CometRocket16G().String()
	if !strings.Contains(s, "(6, 13)") || !strings.Contains(s, "Row: 18-33") {
		t.Errorf("String() = %q", s)
	}
}

func TestForPlatform(t *testing.T) {
	for _, c := range []struct {
		family string
		size   int
		ok     bool
	}{
		{"comet-rocket", 8, true},
		{"comet-rocket", 16, true},
		{"comet-rocket", 32, true},
		{"alder-raptor", 8, true},
		{"alder-raptor", 16, true},
		{"alder-raptor", 32, true},
		{"comet-rocket", 64, false},
		{"zen", 16, false},
	} {
		if _, ok := ForPlatform(c.family, c.size); ok != c.ok {
			t.Errorf("ForPlatform(%s, %d) ok = %v, want %v", c.family, c.size, ok, c.ok)
		}
	}
}

// Property: for every known mapping and any (bank, row) in range, the
// solver produces an address that decodes back exactly.
func TestPhysAddrRoundTripProperty(t *testing.T) {
	maps := All()
	f := func(mi uint8, bankRaw uint16, rowRaw uint32, col uint16) bool {
		m := maps[int(mi)%len(maps)]
		bank := int(bankRaw) % m.Banks()
		row := uint64(rowRaw) % m.Rows()
		pa, err := m.PhysAddr(bank, row, uint64(col))
		if err != nil {
			return false
		}
		return m.Bank(pa) == bank && m.Row(pa) == row
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the mapping is linear over GF(2) — XOR-ing any mask into an
// address changes the bank index by exactly the functions' evaluation of
// the mask, independent of the base address.
func TestBankLinearityProperty(t *testing.T) {
	maps := All()
	f := func(mi uint8, maskRaw uint64, addrRaw uint32) bool {
		m := maps[int(mi)%len(maps)]
		pa := uint64(addrRaw) % m.Size()
		mask := maskRaw % m.Size()
		want := 0
		for i, fn := range m.Funcs {
			want |= int(fn.Eval(mask)) << i
		}
		return m.Bank(pa)^m.Bank(pa^mask) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
