package memctrl

import (
	"strings"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
)

func newAuditController(t *testing.T) *Controller {
	t.Helper()
	a := arch.CometLake()
	d := arch.DIMMS3()
	m, ok := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	if !ok {
		t.Fatalf("no mapping for %s at %d GiB", a.MappingFamily, d.SizeGiB)
	}
	return New(a, m, dram.NewDevice(d, 1))
}

// TestAuditPassesOnHealthyCache runs audited accesses over a working
// decode cache: every hit re-derivation must agree, silently.
func TestAuditPassesOnHealthyCache(t *testing.T) {
	c := newAuditController(t)
	c.EnableAudit()
	now := 0.0
	for i := 0; i < 2000; i++ {
		pa := uint64(i%7) * 0x40
		now, _ = c.Access(pa, now)
	}
	if c.Stats().Accesses != 2000 {
		t.Fatalf("accesses = %d, want 2000", c.Stats().Accesses)
	}
}

// TestAuditCatchesCorruptDecodeEntry corrupts one cached translation
// and verifies the audit panics at its first use, naming the address
// and both translations. Without the audit the corruption silently
// mis-steers every subsequent activation of that address.
func TestAuditCatchesCorruptDecodeEntry(t *testing.T) {
	c := newAuditController(t)
	c.EnableAudit()
	const pa = uint64(0x1240)
	c.Access(pa, 0) // populate the cache entry

	e := &c.decode[((pa>>6)^(pa>>18))&decodeMask]
	if !e.OK || e.PA != pa {
		t.Fatal("decode entry not populated where expected")
	}
	e.Row++ // the corruption

	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("audit did not panic on a corrupted decode entry")
		}
		msg, ok := p.(string)
		if !ok {
			t.Fatalf("panic payload %v is not the audit message", p)
		}
		for _, want := range []string{"memctrl: audit", "0x1240", "mapping says"} {
			if !strings.Contains(msg, want) {
				t.Errorf("audit panic missing %q:\n%s", want, msg)
			}
		}
	}()
	c.Access(pa, 100)
}

// TestAuditOffIgnoresCorruption pins the gating: with audit disabled a
// corrupted entry is (silently) trusted — the exact failure mode the
// simcheck mode exists to expose.
func TestAuditOffIgnoresCorruption(t *testing.T) {
	c := newAuditController(t)
	const pa = uint64(0x2280)
	c.Access(pa, 0)
	e := &c.decode[((pa>>6)^(pa>>18))&decodeMask]
	e.Row++
	defer func() {
		if p := recover(); p != nil {
			t.Fatalf("unaudited access panicked: %v", p)
		}
	}()
	c.Access(pa, 100)
}
