package memctrl

import "testing"

// TestDecodeCacheStats checks the decode-cache hit/miss accounting: a
// cold line misses once, repeats hit, and the hit rate follows.
func TestDecodeCacheStats(t *testing.T) {
	c := testController()
	a := addr(t, c, 0, 100)
	b := addr(t, c, 1, 200)

	now := 0.0
	now, _ = c.Access(a, now) // cold: decode miss
	now, _ = c.Access(a, now) // same line: decode hit
	now, _ = c.Access(a, now) // decode hit
	now, _ = c.Access(b, now) // different line: decode miss
	_, _ = c.Access(b, now)   // decode hit

	st := c.Stats()
	if st.DecodeMisses != 2 {
		t.Errorf("DecodeMisses = %d, want 2", st.DecodeMisses)
	}
	if st.DecodeHits != 3 {
		t.Errorf("DecodeHits = %d, want 3", st.DecodeHits)
	}
	if got, want := st.DecodeHitRate(), 3.0/5.0; got != want {
		t.Errorf("DecodeHitRate() = %v, want %v", got, want)
	}
}

// TestDecodeHitRateEmpty guards the zero-access division.
func TestDecodeHitRateEmpty(t *testing.T) {
	c := testController()
	if got := c.Stats().DecodeHitRate(); got != 0 {
		t.Errorf("DecodeHitRate() on fresh controller = %v, want 0", got)
	}
}
