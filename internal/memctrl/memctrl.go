// Package memctrl models the CPU's integrated memory controller: DRAM
// command timing with an open-page policy, per-bank state machines,
// periodic refresh, and the address translation given by a
// mapping.Mapping.
//
// The controller is the source of the SBDR (same-bank different-row)
// timing side channel: a row-buffer conflict costs tRP + tRCD + tCL,
// a row hit only tCL, and accesses to different banks overlap. The
// reverse-engineering algorithms consume exactly this latency contrast.
package memctrl

import (
	"fmt"
	"math"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
)

// AccessKind classifies the DRAM-level behaviour of one access.
type AccessKind uint8

const (
	// KindRowHit means the target row was already open in its bank.
	KindRowHit AccessKind = iota
	// KindRowEmpty means the bank had no open row (ACT only).
	KindRowEmpty
	// KindRowConflict means another row was open (PRE + ACT): the slow
	// SBDR case.
	KindRowConflict
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case KindRowHit:
		return "row-hit"
	case KindRowEmpty:
		return "row-empty"
	case KindRowConflict:
		return "row-conflict"
	default:
		return fmt.Sprintf("AccessKind(%d)", uint8(k))
	}
}

// Stats aggregates controller activity. The decode-cache pair is the
// hot-path observability the obs layer snapshots: hammer loops should
// run at a hit rate near 1 once warm, and a falling rate flags a
// working set outgrowing the direct-mapped cache.
type Stats struct {
	Accesses  uint64
	RowHits   uint64
	RowEmpty  uint64
	Conflicts uint64
	Refreshes uint64
	// DecodeHits / DecodeMisses count direct-mapped decode-cache
	// outcomes in decodeAddr (one translation per access).
	DecodeHits   uint64
	DecodeMisses uint64
}

// ACTs returns the number of row activations issued.
func (s Stats) ACTs() uint64 { return s.RowEmpty + s.Conflicts }

// DecodeHitRate returns DecodeHits/(DecodeHits+DecodeMisses), 0 before
// any translation.
func (s Stats) DecodeHitRate() float64 {
	total := s.DecodeHits + s.DecodeMisses
	if total == 0 {
		return 0
	}
	return float64(s.DecodeHits) / float64(total)
}

// Timings holds the DRAM timing parameters in nanoseconds, derived from
// the module's transfer rate with standard DDR4 cycle counts.
type Timings struct {
	TCL   float64 // CAS latency
	TRCD  float64 // ACT to CAS
	TRP   float64 // PRE to ACT
	TRC   float64 // ACT to ACT, same bank
	TRFC  float64 // refresh cycle time (all banks busy)
	TBus  float64 // data burst occupancy
	TCtrl float64 // fixed controller + on-die overhead per request
}

// DeriveTimings computes DDR4 timings for a transfer rate in MT/s.
func DeriveTimings(freqMTs int) Timings {
	clock := 2000.0 / float64(freqMTs) // ns per DRAM clock
	return Timings{
		TCL:   22 * clock,
		TRCD:  22 * clock,
		TRP:   22 * clock,
		TRC:   76 * clock, // tRAS(54) + tRP(22)
		TRFC:  350,
		TBus:  4 * clock,
		TCtrl: 18, // uncore / ring / MC queue constant
	}
}

// Controller is one single-channel memory controller fronting a device.
type Controller struct {
	Arch *arch.Arch
	Map  *mapping.Mapping
	Dev  *dram.Device
	T    Timings

	// Trace optionally records the issued command stream; arm it with
	// Trace.Start. Disabled by default (zero overhead beyond a branch).
	Trace Trace

	// banks holds the per-bank state machines as one array of structs:
	// a bank's open row, ACT clock and busy clock share a cache line and
	// a single bounds check in the hot loops.
	banks   []BankState
	nextREF float64

	// decode is a direct-mapped cache of the Map.Bank/Map.Row
	// translation. Hammer loops revisit the same ~dozen physical
	// addresses millions of times, and evaluating the XOR bank
	// functions (a popcount per function) dominates the open-row
	// bookkeeping; the mapping is immutable, so entries never go stale.
	decode []DecodeEntry

	// audit, when set (simcheck mode), cross-checks every decode-cache
	// hit against a fresh mapping computation and panics on any stale
	// entry. Off by default: the only cost is a branch on the hit path.
	audit bool

	stats Stats
}

// EnableAudit turns on the controller-side invariant audit (simcheck
// mode): every decode-cache hit is re-derived from the immutable mapping
// and compared, so a corrupted or stale cache entry fails loudly at its
// first use instead of silently mis-steering activations.
func (c *Controller) EnableAudit() { c.audit = true }

// Decode-cache geometry: aggressor lines differ in row bits and in the
// low bits the bank solver flips, so both ranges feed the index.
const (
	decodeBits = 12
	decodeSize = 1 << decodeBits
	decodeMask = decodeSize - 1
)

// DecodeEntry caches one physical address translation. Exported so the
// compiled-payload executor (via Hot.Decode) can run the hit check
// inline; only the controller mutates entries.
type DecodeEntry struct {
	PA   uint64
	Row  int64
	Bank int32
	OK   bool
}

// decodeAddr resolves pa to (bank, row) through the cache.
func (c *Controller) decodeAddr(pa uint64) (int, int64) {
	e := &c.decode[((pa>>6)^(pa>>18))&decodeMask]
	if e.OK && e.PA == pa {
		c.stats.DecodeHits++
		if c.audit {
			if bank, row := c.Map.Bank(pa), int64(c.Map.Row(pa)); int32(bank) != e.Bank || row != e.Row {
				panic(fmt.Sprintf("memctrl: audit: decode cache for pa=%#x holds (bank=%d,row=%d), mapping says (bank=%d,row=%d)",
					pa, e.Bank, e.Row, bank, row))
			}
		}
		return int(e.Bank), e.Row
	}
	c.stats.DecodeMisses++
	bank := c.Map.Bank(pa)
	row := int64(c.Map.Row(pa))
	*e = DecodeEntry{PA: pa, Row: row, Bank: int32(bank), OK: true}
	return bank, row
}

// New creates a controller. The mapping's bank count must not exceed the
// device's; the real systems in the paper always match exactly.
func New(a *arch.Arch, m *mapping.Mapping, dev *dram.Device) *Controller {
	if m.Banks() > dev.Banks() {
		panic(fmt.Sprintf("memctrl: mapping %s addresses %d banks but device has %d",
			m.Name, m.Banks(), dev.Banks()))
	}
	c := &Controller{
		Arch: a, Map: m, Dev: dev,
		T:       DeriveTimings(min(a.MemFreqMHz, dev.DIMM.FreqMHz)),
		banks:   make([]BankState, m.Banks()),
		nextREF: dram.TREFIns,
		decode:  make([]DecodeEntry, decodeSize),
	}
	for i := range c.banks {
		c.banks[i].OpenRow = -1
		c.banks[i].LastACT = math.Inf(-1)
	}
	return c
}

// Stats returns the accumulated controller statistics.
func (c *Controller) Stats() Stats { return c.stats }

// NextRefresh returns the time of the next scheduled REF command, the
// anchor real attacks synchronize their hammer loops to.
func (c *Controller) NextRefresh() float64 { return c.nextREF }

// advanceRefresh issues every REF due at or before time now. During a
// REF all banks are blocked for tRFC and all rows are closed.
func (c *Controller) advanceRefresh(now float64) {
	for c.nextREF <= now {
		t := c.nextREF
		c.Dev.Refresh(t)
		c.Trace.record(Cmd{Kind: CmdREF, At: t})
		c.stats.Refreshes++
		for b := range c.banks {
			if c.banks[b].BusyUnit < t+c.T.TRFC {
				c.banks[b].BusyUnit = t + c.T.TRFC
			}
			c.banks[b].OpenRow = -1
		}
		c.nextREF += dram.TREFIns
	}
}

// Access services a memory read of the cache line at physical address pa
// issued at time `at`. It returns the completion time (when the line is
// available to the core) and the access classification.
func (c *Controller) Access(pa uint64, at float64) (complete float64, kind AccessKind) {
	c.advanceRefresh(at)
	bank, row := c.decodeAddr(pa)

	b := &c.banks[bank]
	start := at
	if b.BusyUnit > start {
		start = b.BusyUnit
	}

	c.stats.Accesses++
	switch {
	case b.OpenRow == row:
		kind = KindRowHit
		c.stats.RowHits++
		complete = start + c.T.TCL
		b.BusyUnit = start + c.T.TBus
	case b.OpenRow == -1:
		kind = KindRowEmpty
		c.stats.RowEmpty++
		actAt := start
		if tMin := b.LastACT + c.T.TRC; actAt < tMin {
			actAt = tMin
		}
		c.Trace.record(Cmd{Kind: CmdACT, Bank: bank, Row: uint64(row), At: actAt})
		c.Dev.Activate(bank, uint64(row), actAt)
		b.LastACT = actAt
		b.OpenRow = row
		complete = actAt + c.T.TRCD + c.T.TCL
		b.BusyUnit = actAt + c.T.TRCD + c.T.TBus
	default:
		kind = KindRowConflict
		c.stats.Conflicts++
		preAt := start
		actAt := preAt + c.T.TRP
		if tMin := b.LastACT + c.T.TRC; actAt < tMin {
			actAt = tMin
		}
		c.Trace.record(Cmd{Kind: CmdPRE, Bank: bank, At: preAt})
		c.Trace.record(Cmd{Kind: CmdACT, Bank: bank, Row: uint64(row), At: actAt})
		c.Dev.Activate(bank, uint64(row), actAt)
		b.LastACT = actAt
		b.OpenRow = row
		complete = actAt + c.T.TRCD + c.T.TCL
		b.BusyUnit = actAt + c.T.TRCD + c.T.TBus
	}
	return complete + c.T.TCtrl, kind
}

// Classify reports what kind of access pa would be right now, without
// issuing it. Used by diagnostics only.
func (c *Controller) Classify(pa uint64) AccessKind {
	bank, row := c.decodeAddr(pa)
	switch c.banks[bank].OpenRow {
	case row:
		return KindRowHit
	case -1:
		return KindRowEmpty
	default:
		return KindRowConflict
	}
}

// CloseAll precharges every bank (e.g. between timing measurements).
func (c *Controller) CloseAll() {
	for i := range c.banks {
		c.banks[i].OpenRow = -1
	}
}

// Reset restores the controller to its initial state (banks closed,
// clocks rewound, statistics cleared). The attached device is untouched.
func (c *Controller) Reset() {
	for i := range c.banks {
		c.banks[i] = BankState{OpenRow: -1, LastACT: math.Inf(-1)}
	}
	c.nextREF = dram.TREFIns
	c.stats = Stats{}
}
