package memctrl

import (
	"fmt"
	"io"
	"sort"

	"rhohammer/internal/dram"
)

// Command tracing: an optional recorder for the DRAM command stream the
// controller issues. The paper's central metric — activations per
// refresh interval — is a property of this stream, and the recorder
// makes it directly measurable in tests and experiments instead of
// being inferred from aggregate counters.

// CmdKind enumerates traced DRAM commands.
type CmdKind uint8

const (
	// CmdACT is a row activation.
	CmdACT CmdKind = iota
	// CmdPRE is a precharge (implicit in row conflicts).
	CmdPRE
	// CmdREF is a refresh command.
	CmdREF
)

// String implements fmt.Stringer.
func (k CmdKind) String() string {
	switch k {
	case CmdACT:
		return "ACT"
	case CmdPRE:
		return "PRE"
	case CmdREF:
		return "REF"
	default:
		return fmt.Sprintf("CmdKind(%d)", uint8(k))
	}
}

// Cmd is one traced command.
type Cmd struct {
	Kind CmdKind
	Bank int
	Row  uint64 // meaningful for ACT only
	At   float64
}

// Trace is a bounded recorder of controller commands. A zero Trace is
// disabled; arm it with Start.
type Trace struct {
	cmds  []Cmd
	limit int
	on    bool
}

// Start arms the trace with a command capacity. Once full, further
// commands are dropped (the prefix is kept): analyses want a contiguous
// window, and keeping the head makes recording O(1).
func (t *Trace) Start(limit int) {
	if limit <= 0 {
		limit = 1 << 20
	}
	t.limit = limit
	t.on = true
	t.cmds = t.cmds[:0]
}

// Stop disarms the trace, keeping recorded commands readable.
func (t *Trace) Stop() { t.on = false }

// Reset disarms the trace and discards its contents.
func (t *Trace) Reset() {
	t.on = false
	t.cmds = nil
}

// Commands returns the recorded stream in issue order.
func (t *Trace) Commands() []Cmd { return t.cmds }

// record appends a command if armed and capacity remains.
func (t *Trace) record(c Cmd) {
	if !t.on || len(t.cmds) >= t.limit {
		return
	}
	t.cmds = append(t.cmds, c)
}

// ACTsPerInterval buckets the traced activations of one bank into
// tREFI-sized intervals and returns the per-interval counts — the
// quantity the paper calls the activation rate, and the budget TRR
// samplers observe.
func (t *Trace) ACTsPerInterval(bank int) []int {
	var acts []float64
	for _, c := range t.cmds {
		if c.Kind == CmdACT && c.Bank == bank {
			acts = append(acts, c.At)
		}
	}
	if len(acts) == 0 {
		return nil
	}
	sort.Float64s(acts)
	first := acts[0]
	nIntervals := int((acts[len(acts)-1]-first)/dram.TREFIns) + 1
	out := make([]int, nIntervals)
	for _, at := range acts {
		out[int((at-first)/dram.TREFIns)]++
	}
	return out
}

// RowCounts returns per-row ACT totals for one bank.
func (t *Trace) RowCounts(bank int) map[uint64]int {
	out := map[uint64]int{}
	for _, c := range t.cmds {
		if c.Kind == CmdACT && c.Bank == bank {
			out[c.Row]++
		}
	}
	return out
}

// WriteTo dumps the trace in a compact textual form, one command per
// line, for offline inspection.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for _, c := range t.cmds {
		n, err := fmt.Fprintf(w, "%.1f %s bank=%d row=%d\n", c.At, c.Kind, c.Bank, c.Row)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
