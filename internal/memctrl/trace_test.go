package memctrl

import (
	"bytes"
	"strings"
	"testing"

	"rhohammer/internal/dram"
)

func TestTraceRecordsCommands(t *testing.T) {
	c := testController()
	c.Trace.Start(0)
	a := addr(t, c, 0, 100)
	b := addr(t, c, 0, 200)
	c.Access(a, 0) // ACT
	c.Access(b, 0) // PRE + ACT
	c.Access(b, 0) // row hit: nothing
	cmds := c.Trace.Commands()
	kinds := []CmdKind{}
	for _, cm := range cmds {
		kinds = append(kinds, cm.Kind)
	}
	want := []CmdKind{CmdACT, CmdPRE, CmdACT}
	if len(kinds) != len(want) {
		t.Fatalf("commands %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("cmd %d = %v, want %v", i, kinds[i], want[i])
		}
	}
	counts := c.Trace.RowCounts(0)
	if counts[100] != 1 || counts[200] != 1 {
		t.Errorf("row counts %v", counts)
	}
}

func TestTraceACTsPerInterval(t *testing.T) {
	c := testController()
	c.Trace.Start(0)
	a := addr(t, c, 0, 100)
	b := addr(t, c, 0, 200)
	// Two intervals of alternating conflicts.
	for i := 0; i < 10; i++ {
		c.Access(a, float64(i)*700)
		c.Access(b, float64(i)*700+350)
	}
	for i := 0; i < 6; i++ {
		c.Access(a, dram.TREFIns+float64(i)*700)
		c.Access(b, dram.TREFIns+float64(i)*700+350)
	}
	per := c.Trace.ACTsPerInterval(0)
	if len(per) < 2 {
		t.Fatalf("intervals %v", per)
	}
	if per[0] < per[1] {
		t.Errorf("first interval %d should hold more ACTs than second %d", per[0], per[1])
	}
	total := 0
	for _, n := range per {
		total += n
	}
	if total != 32 {
		t.Errorf("total traced ACTs = %d, want 32", total)
	}
}

func TestTraceLimitAndStop(t *testing.T) {
	c := testController()
	c.Trace.Start(4)
	a := addr(t, c, 0, 100)
	b := addr(t, c, 0, 200)
	for i := 0; i < 10; i++ {
		c.Access(a, float64(i)*500)
		c.Access(b, float64(i)*500+250)
	}
	if n := len(c.Trace.Commands()); n != 4 {
		t.Errorf("trace grew beyond limit: %d", n)
	}
	// Drop-new policy: the prefix is preserved.
	if c.Trace.Commands()[0].At != 0 {
		t.Errorf("head command displaced: %+v", c.Trace.Commands()[0])
	}
	c.Trace.Stop()
	before := len(c.Trace.Commands())
	c.Access(a, 1e6)
	if len(c.Trace.Commands()) != before {
		t.Error("trace recorded while stopped")
	}
}

func TestTraceWriteTo(t *testing.T) {
	c := testController()
	c.Trace.Start(0)
	c.Access(addr(t, c, 2, 123), 0)
	var buf bytes.Buffer
	if _, err := c.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ACT bank=2 row=123") {
		t.Errorf("dump: %q", buf.String())
	}
}

func TestCmdKindString(t *testing.T) {
	if CmdACT.String() != "ACT" || CmdPRE.String() != "PRE" || CmdREF.String() != "REF" {
		t.Error("command names")
	}
	if CmdKind(9).String() == "" {
		t.Error("unknown kind")
	}
}
