package memctrl

import "fmt"

// Compiled-payload fast path. The payload executor in internal/cpu
// replays precompiled activation schedules without walking Program ops;
// to do that at full speed it needs the controller's bank state machine
// inlined into its loop rather than behind a method call per access.
// This file is that contract: a Predecode step that resolves each
// payload line's translation once at compile time, a Hot view exposing
// the per-bank timing state and decode cache the executor advances in
// place, and the bookkeeping entry points (DecodeTouchSlow,
// AddAccessStats, AdvanceRefresh) that keep the controller's observable
// counters and decode-cache state bit-identical to the interpreted
// path.
//
// Bit-identity rules the executor relies on:
//
//   - The mapping is immutable, so a PreDecoded (bank, row) computed at
//     compile time equals what decodeAddr would return for the same
//     physical address at any later point.
//   - The decode-cache hit check runs inline against Hot.Decode (same
//     slot, same comparison as decodeAddr); anything else — a miss, or
//     any access in audit mode — goes through DecodeTouchSlow, which
//     replays decodeAddr's bookkeeping exactly. Inline hits are tallied
//     locally and folded in via AddAccessStats, which is observationally
//     identical because statistics are only read at run boundaries.
//   - The Hot slices alias the controller's own state; AdvanceRefresh
//     (the exported wrapper over the REF machinery) mutates them in
//     place, so the executor only reloads NextRefresh after calling it.

// PreDecoded is one payload line's compile-time address translation:
// the physical address, its (bank, row) decode, and the decode-cache
// slot the interpreted path would use for it.
type PreDecoded struct {
	PA   uint64
	Row  int64
	Bank int32
	Slot int32
}

// Predecode resolves pa through the immutable mapping without touching
// the decode cache or its statistics. Compile-time only.
func (c *Controller) Predecode(pa uint64) PreDecoded {
	return PreDecoded{
		PA:   pa,
		Row:  int64(c.Map.Row(pa)),
		Bank: int32(c.Map.Bank(pa)),
		Slot: int32(((pa >> 6) ^ (pa >> 18)) & decodeMask),
	}
}

// DecodeTouchSlow replays the decode-cache bookkeeping decodeAddr
// would perform for one DRAM-reaching access whose inline hit check
// (against Hot.Decode) did not take: a miss counts and refills the
// slot; in audit mode every access lands here, and a hit additionally
// cross-checks the cached entry against the predecoded truth.
func (c *Controller) DecodeTouchSlow(p *PreDecoded) {
	e := &c.decode[p.Slot]
	if e.OK && e.PA == p.PA {
		c.stats.DecodeHits++
		if e.Bank != p.Bank || e.Row != p.Row {
			panic(fmt.Sprintf("memctrl: audit: decode cache for pa=%#x holds (bank=%d,row=%d), predecode says (bank=%d,row=%d)",
				p.PA, e.Bank, e.Row, p.Bank, p.Row))
		}
		return
	}
	c.stats.DecodeMisses++
	*e = DecodeEntry{PA: p.PA, Row: p.Row, Bank: p.Bank, OK: true}
}

// BankState is one bank's state machine: the open row, the same-bank
// ACT clock and the bank busy clock, packed so a hot-loop access pays a
// single bounds check and stays within one cache line.
type BankState struct {
	OpenRow  int64   // -1 = precharged
	LastACT  float64 // last ACT issue time
	BusyUnit float64 // earliest next command
}

// Hot is the controller's per-bank timing state and decode cache,
// exposed by aliasing for the payload executor's inlined access loop.
// The slices share backing arrays with the controller: writes through
// either view are seen by both, and AdvanceRefresh's row closes land in
// Banks[b].OpenRow.
type Hot struct {
	Banks  []BankState   // per-bank state machines
	Decode []DecodeEntry // the decode cache, for the inline hit check
	T      Timings
	// Audit forces every decode touch through DecodeTouchSlow so the
	// cross-check runs (simcheck mode).
	Audit bool
}

// Hot returns the aliased hot view. Payload executor only.
func (c *Controller) Hot() Hot {
	return Hot{Banks: c.banks, Decode: c.decode, T: c.T, Audit: c.audit}
}

// AdvanceRefresh issues every REF due at or before now — the exported
// entry point the payload executor uses at the same decision points as
// the interpreted path (which calls the internal equivalent at the top
// of every Access). The executor must flush its buffered activations
// into the device first, so the REF's TRR scan sees them.
func (c *Controller) AdvanceRefresh(now float64) { c.advanceRefresh(now) }

// AddAccessStats folds the executor's locally tallied access
// classification counts and inline decode hits into the controller
// statistics at the end of a payload run. Refresh counts and decode
// misses are maintained live (by AdvanceRefresh and DecodeTouchSlow);
// only the hot-loop tallies are batched, which no observer can
// distinguish because statistics are read only between runs.
func (c *Controller) AddAccessStats(accesses, rowHits, rowEmpty, conflicts, decodeHits uint64) {
	c.stats.Accesses += accesses
	c.stats.RowHits += rowHits
	c.stats.RowEmpty += rowEmpty
	c.stats.Conflicts += conflicts
	c.stats.DecodeHits += decodeHits
}

// Armed reports whether the trace is recording. The payload executor
// does not record per-command trace entries, so sessions fall back to
// the interpreted engine while a command trace is armed.
func (t *Trace) Armed() bool { return t.on }
