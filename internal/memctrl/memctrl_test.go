package memctrl

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
)

func testController() *Controller {
	a := arch.CometLake()
	d := arch.DIMMS3()
	m, _ := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	return New(a, m, dram.NewDevice(d, 1))
}

func addr(t *testing.T, c *Controller, bank int, row uint64) uint64 {
	t.Helper()
	pa, err := c.Map.PhysAddr(bank, row, 0)
	if err != nil {
		t.Fatal(err)
	}
	return pa
}

func TestRowHitVsConflictLatency(t *testing.T) {
	c := testController()
	a := addr(t, c, 0, 100)
	b := addr(t, c, 0, 200) // same bank, different row
	now := 0.0

	// First access: bank empty.
	done, kind := c.Access(a, now)
	if kind != KindRowEmpty {
		t.Fatalf("first access kind = %v", kind)
	}
	emptyLat := done - now
	now = done

	// Repeat: row hit, strictly faster.
	done, kind = c.Access(a, now)
	if kind != KindRowHit {
		t.Fatalf("second access kind = %v", kind)
	}
	hitLat := done - now
	now = done

	// Other row: conflict, strictly slower than both.
	done, kind = c.Access(b, now)
	if kind != KindRowConflict {
		t.Fatalf("third access kind = %v", kind)
	}
	conflictLat := done - now

	if !(hitLat < emptyLat && emptyLat < conflictLat) {
		t.Errorf("latency ordering broken: hit %.1f, empty %.1f, conflict %.1f",
			hitLat, emptyLat, conflictLat)
	}
}

func TestSBDRContrast(t *testing.T) {
	c := testController()
	sameBank := [2]uint64{addr(t, c, 3, 100), addr(t, c, 3, 900)}
	diffBank := [2]uint64{addr(t, c, 4, 100), addr(t, c, 5, 900)}

	measure := func(pair [2]uint64) float64 {
		now := 1e6
		var total float64
		for i := 0; i < 20; i++ {
			d0, _ := c.Access(pair[0], now)
			d1, _ := c.Access(pair[1], d0)
			total += d1 - now
			now = d1 + 30
		}
		return total / 20
	}
	slow := measure(sameBank)
	fast := measure(diffBank)
	if slow <= fast+20 {
		t.Errorf("SBDR contrast too weak: same-bank %.1f vs diff-bank %.1f ns", slow, fast)
	}
}

func TestActivationsReachDevice(t *testing.T) {
	c := testController()
	a := addr(t, c, 0, 100)
	b := addr(t, c, 0, 200)
	for i := 0; i < 10; i++ {
		c.Access(a, float64(i)*1000)
		c.Access(b, float64(i)*1000+500)
	}
	st := c.Stats()
	if st.Accesses != 20 {
		t.Errorf("accesses = %d", st.Accesses)
	}
	if st.ACTs() != c.Dev.ActivationCount() {
		t.Errorf("controller ACTs %d != device %d", st.ACTs(), c.Dev.ActivationCount())
	}
	if c.Dev.ActCount(0, 100) == 0 || c.Dev.ActCount(0, 200) == 0 {
		t.Error("activations not attributed to rows")
	}
}

func TestRefreshAdvances(t *testing.T) {
	c := testController()
	a := addr(t, c, 0, 100)
	c.Access(a, 0)
	if got := c.Stats().Refreshes; got != 0 {
		t.Fatalf("refreshes before tREFI = %d", got)
	}
	// Jump past 10 refresh intervals.
	c.Access(a, 10.5*dram.TREFIns)
	if got := c.Stats().Refreshes; got != 10 {
		t.Errorf("refreshes = %d, want 10", got)
	}
}

func TestRefreshClosesRowsAndBlocks(t *testing.T) {
	c := testController()
	a := addr(t, c, 0, 100)
	done, _ := c.Access(a, 0)
	// Just after a REF boundary the row must be closed again and the
	// bank blocked for tRFC.
	start := dram.TREFIns + 1
	done2, kind := c.Access(a, start)
	if kind == KindRowHit {
		t.Error("row survived refresh")
	}
	if done2-start < c.T.TRFC-dram.TREFIns/2 && done2-start < c.T.TRFC {
		// The access must wait out the refresh blocking window.
		t.Errorf("access during REF completed too fast: %.1f ns", done2-start)
	}
	_ = done
}

func TestBankParallelism(t *testing.T) {
	c := testController()
	a := addr(t, c, 0, 100)
	b := addr(t, c, 1, 200)
	// Issue both at the same instant: different banks overlap, so the
	// second completes well before a serialized schedule would allow.
	d0, _ := c.Access(a, 0)
	d1, _ := c.Access(b, 0)
	if d1 >= d0+c.T.TRCD {
		t.Errorf("different banks serialized: %.1f vs %.1f", d0, d1)
	}
}

func TestSameBankACTsRespectTRC(t *testing.T) {
	c := testController()
	a := addr(t, c, 0, 100)
	b := addr(t, c, 0, 200)
	c.Access(a, 0)
	c.Access(b, 0) // conflict: PRE+ACT
	// Issue a third ACT immediately: it cannot start before lastACT+tRC.
	d3, _ := c.Access(a, 0)
	if d3 < c.T.TRC {
		t.Errorf("third ACT completed at %.1f, before tRC %.1f", d3, c.T.TRC)
	}
}

func TestClassify(t *testing.T) {
	c := testController()
	a := addr(t, c, 0, 100)
	b := addr(t, c, 0, 200)
	if c.Classify(a) != KindRowEmpty {
		t.Error("fresh bank should classify empty")
	}
	c.Access(a, 0)
	if c.Classify(a) != KindRowHit {
		t.Error("open row should classify hit")
	}
	if c.Classify(b) != KindRowConflict {
		t.Error("other row should classify conflict")
	}
	c.CloseAll()
	if c.Classify(a) != KindRowEmpty {
		t.Error("CloseAll did not precharge")
	}
}

func TestReset(t *testing.T) {
	c := testController()
	a := addr(t, c, 0, 100)
	c.Access(a, 5*dram.TREFIns)
	c.Reset()
	if c.Stats() != (Stats{}) {
		t.Error("stats survive Reset")
	}
	if c.Classify(a) != KindRowEmpty {
		t.Error("rows survive Reset")
	}
}

func TestDeriveTimings(t *testing.T) {
	tm := DeriveTimings(3200)
	if tm.TCL != 22*0.625 {
		t.Errorf("TCL = %v", tm.TCL)
	}
	if tm.TRC <= tm.TRP+tm.TRCD {
		t.Errorf("tRC %v should exceed tRP+tRCD", tm.TRC)
	}
	slow := DeriveTimings(2400)
	if slow.TCL <= tm.TCL {
		t.Error("slower module should have larger latencies")
	}
}

func TestControllerUsesSlowerOfCPUAndDIMM(t *testing.T) {
	a := arch.RaptorLake() // 3200
	d := arch.DIMMS5()     // 2400
	m, _ := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	c := New(a, m, dram.NewDevice(d, 1))
	want := DeriveTimings(2400)
	if c.T.TCL != want.TCL {
		t.Errorf("controller TCL %v, want DIMM-limited %v", c.T.TCL, want.TCL)
	}
}

func TestAccessKindString(t *testing.T) {
	if KindRowHit.String() != "row-hit" || KindRowConflict.String() != "row-conflict" ||
		KindRowEmpty.String() != "row-empty" {
		t.Error("AccessKind strings")
	}
	if AccessKind(99).String() == "" {
		t.Error("unknown kind renders empty")
	}
}

func TestMismatchedBankCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mapping larger than device")
		}
	}()
	a := arch.CometLake()
	m, _ := mapping.ForPlatform("comet-rocket", 16) // 32 banks
	d := arch.DIMMS2()                              // single-rank: 16 banks
	New(a, m, dram.NewDevice(d, 1))
}
