package hammer

import (
	"rhohammer/internal/obs"
	"rhohammer/internal/pattern"
)

// TuneResult reports the outcome of the counter-speculation tuning phase.
type TuneResult struct {
	BestNops  int
	BestFlips int
	// Curve records flips observed at each probed NOP count, in probe
	// order (the data behind Fig. 10).
	Curve []TunePoint
}

// TunePoint is one probe of the NOP sweep.
type TunePoint struct {
	Nops  int
	Flips int
}

// TuneNops runs ρHammer's tuning phase (§4.4): sweep the NOP count over
// [0, maxNops] in the given step, hammering `pat` for durationNS of
// simulated time per probe at `locations` distinct base rows, and
// return the count maximizing total flips. The optimum is
// platform-specific but transfers across patterns on the same platform,
// so the attack runs this once per target.
func (s *Session) TuneNops(pat *pattern.Pattern, cfg Config, maxNops, step int, durationNS float64, locations int) (TuneResult, error) {
	if step <= 0 {
		step = 50
	}
	if locations <= 0 {
		locations = 1
	}
	cfg.Barrier = BarrierNop
	var out TuneResult
	out.BestNops = -1
	rows := s.Map.Rows()
	span := uint64(pat.MaxOffset() + 8)
	for nops := 0; nops <= maxNops; nops += step {
		cfg.Nops = nops
		flips := 0
		for loc := 0; loc < locations; loc++ {
			s.ResetDevice()
			baseRow := (uint64(loc)*7919*span + 64) % (rows - span - 4)
			bank := loc % s.Map.Banks()
			res, err := s.HammerPatternFor(pat, cfg, bank, baseRow, durationNS)
			if err != nil {
				return out, err
			}
			flips += res.FlipCount()
		}
		out.Curve = append(out.Curve, TunePoint{Nops: nops, Flips: flips})
		if flips > out.BestFlips || out.BestNops < 0 {
			out.BestFlips = flips
			out.BestNops = nops
		}
	}
	// NOP-sled selection is an attack-shaping decision worth
	// attributing: record which count won and how hard it hit.
	if s.trace != nil {
		s.trace.Emit(obs.Event{Layer: "hammer", Kind: "tune", N: int64(out.BestNops)})
	}
	if obs.Enabled() {
		obs.HammerTunes.Inc()
	}
	return out, nil
}
