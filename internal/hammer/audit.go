package hammer

import (
	"os"

	"rhohammer/internal/refmodel"
)

// Simcheck: the session-level switch for the differential audit mode.
// When enabled, every activation and refresh the session's device
// processes is replayed into a slow reference model
// (internal/refmodel) and the two are diffed at each refresh boundary,
// and the memory controller cross-checks every decode-cache hit
// against the immutable mapping. Divergence panics with a first-event
// report. The mode exists to catch fast-path bugs the moment they
// happen instead of as skewed experiment results; it slows simulation
// by roughly an order of magnitude and is off by default.

// SimcheckEnv is the environment variable that turns on the audit for
// every new session: set RHOHAMMER_SIMCHECK=1 (any non-empty value but
// "0") and run any experiment or test unchanged.
const SimcheckEnv = "RHOHAMMER_SIMCHECK"

// simcheckFromEnv reports whether the environment requests audit mode.
func simcheckFromEnv() bool {
	v := os.Getenv(SimcheckEnv)
	return v != "" && v != "0"
}

// NoPayloadEnv is the environment variable that disables the
// compiled-payload fast path for every new session (A/B debugging: a
// suspected executor bug can be bisected against the interpreted
// engine without code changes). Set RHOHAMMER_NOPAYLOAD=1.
const NoPayloadEnv = "RHOHAMMER_NOPAYLOAD"

// noPayloadFromEnv reports whether the environment disables the
// compiled-payload path.
func noPayloadFromEnv() bool {
	v := os.Getenv(NoPayloadEnv)
	return v != "" && v != "0"
}

// EnableAudit attaches a reference-model auditor to the session's
// device and turns on the controller's decode-cache cross-check. The
// device must still be in its freshly-created (or Reset) state. The
// auditor panics on the first divergence.
func (s *Session) EnableAudit() *refmodel.Auditor {
	if s.auditor == nil {
		s.auditor = refmodel.NewAuditor(s.Dev)
		s.auditor.PanicOnDivergence = true
		s.Ctrl.EnableAudit()
	}
	return s.auditor
}

// Auditor returns the attached auditor, or nil when audit mode is off.
func (s *Session) Auditor() *refmodel.Auditor { return s.auditor }
