package hammer

import (
	"testing"

	"rhohammer/internal/arch"
)

// Table-driven edge cases for the pre-tuned counter-speculation
// constants: every known generation, plus unknown generations that must
// fall to the conservative default rather than misbehave.
func TestTunedNopsTable(t *testing.T) {
	cases := []struct {
		name       string
		gen        int
		wantSingle int
		wantMulti  int
	}{
		{"comet-lake", 10, 190, 70},
		{"rocket-lake", 11, 200, 80},
		{"alder-lake", 12, 230, 95},
		{"raptor-lake", 14, 260, 110},
		{"unknown-older", 9, 260, 110},
		{"unknown-newer", 15, 260, 110},
		{"unknown-zero", 0, 260, 110},
		{"unknown-negative", -1, 260, 110},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			a := &arch.Arch{Name: c.name, Generation: c.gen}
			if got := TunedNops(a); got != c.wantSingle {
				t.Errorf("TunedNops(gen %d) = %d, want %d", c.gen, got, c.wantSingle)
			}
			if got := TunedNopsMulti(a); got != c.wantMulti {
				t.Errorf("TunedNopsMulti(gen %d) = %d, want %d", c.gen, got, c.wantMulti)
			}
			if TunedNopsMulti(a) >= TunedNops(a) {
				t.Error("multi-bank NOP count must be below the single-bank one: interleaving already paces each bank")
			}
		})
	}
}

// The recommended configurations must be directly usable on every real
// platform/DIMM pair: positive NOPs, a bank width the platform mapping
// actually has, and acceptance by the session's config validation at
// the exact bank-count boundary.
func TestRecommendedConfigsValid(t *testing.T) {
	for _, a := range arch.All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			s := newTestSession(t, a, arch.DIMMS3())
			banks := s.Map.Banks()

			for _, cfg := range []Config{Recommended(a), RecommendedSingleBank(a)} {
				cfg := cfg
				if cfg.Nops <= 0 {
					t.Errorf("%s: non-positive tuned NOPs", cfg)
				}
				if cfg.Banks < 1 || cfg.Banks > banks {
					t.Errorf("%s: bank width %d outside [1, %d]", cfg, cfg.Banks, banks)
				}
				if err := cfg.validate(banks); err != nil {
					t.Errorf("%s rejected by validation: %v", cfg, err)
				}
			}

			// Boundary bank counts: the platform's full width is the
			// last accepted value, one past it the first rejected, and
			// zero is normalized up to a single bank.
			edge := Recommended(a)
			edge.Banks = banks
			if err := edge.validate(banks); err != nil {
				t.Errorf("full-width config rejected: %v", err)
			}
			edge.Banks = banks + 1
			if err := edge.validate(banks); err == nil {
				t.Errorf("config with %d banks accepted on a %d-bank platform", banks+1, banks)
			}
			edge.Banks = 0
			if err := edge.validate(banks); err != nil || edge.Banks != 1 {
				t.Errorf("zero bank width not normalized to 1 (banks=%d err=%v)", edge.Banks, err)
			}
		})
	}
}

// OptimalBanks must stay inside every supported platform's bank count —
// it feeds Recommended unconditionally.
func TestOptimalBanksWithinPlatforms(t *testing.T) {
	for _, a := range arch.All() {
		if OptimalBanks(a) < 1 {
			t.Errorf("%s: OptimalBanks < 1", a.Name)
		}
		s := newTestSession(t, a, arch.DIMMS1())
		if OptimalBanks(a) > s.Map.Banks() {
			t.Errorf("%s: OptimalBanks %d exceeds mapping banks %d", a.Name, OptimalBanks(a), s.Map.Banks())
		}
	}
}
