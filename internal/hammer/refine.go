package hammer

import (
	"rhohammer/internal/pattern"
)

// RefineResult reports a hill-climbing refinement run.
type RefineResult struct {
	// Best is the highest-yield pattern found (may be the input).
	Best PatternScore
	// Rounds is the number of mutation rounds executed.
	Rounds int
	// Improvements counts accepted mutations.
	Improvements int
}

// Refine hill-climbs from an effective pattern: each round evaluates a
// few mutated variants at fresh locations and keeps the best improver —
// the replay-and-refine step the non-uniform fuzzing workflow applies to
// campaign winners before sweeping them at scale.
func (s *Session) Refine(pat *pattern.Pattern, cfg Config, rounds, variantsPerRound int, durationNS float64) (RefineResult, error) {
	if rounds <= 0 {
		rounds = 4
	}
	if variantsPerRound <= 0 {
		variantsPerRound = 3
	}
	score := func(p *pattern.Pattern, salt uint64) (int, error) {
		span := uint64(p.MaxOffset() + 8)
		rows := s.Map.Rows()
		baseRow := (salt*104729*span + 256) % (rows - span - 4)
		s.ResetDevice()
		res, err := s.HammerPatternFor(p, cfg, int(salt)%s.Map.Banks(), baseRow, durationNS)
		if err != nil {
			return 0, err
		}
		return res.FlipCount(), nil
	}

	out := RefineResult{}
	baseline, err := score(pat, 1)
	if err != nil {
		return out, err
	}
	out.Best = PatternScore{Pattern: pat, Flips: baseline}

	for round := 0; round < rounds; round++ {
		out.Rounds++
		improved := false
		for v := 0; v < variantsPerRound; v++ {
			cand := pattern.Mutate(out.Best.Pattern, s.Rand)
			if cand.Validate() != nil {
				continue
			}
			flips, err := score(cand, uint64(round*variantsPerRound+v+2))
			if err != nil {
				return out, err
			}
			if flips > out.Best.Flips {
				out.Best = PatternScore{Pattern: cand, Flips: flips}
				out.Improvements++
				improved = true
			}
		}
		if !improved {
			break // local optimum: stop early like the real workflow
		}
	}
	return out, nil
}
