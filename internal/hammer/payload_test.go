package hammer

import (
	"fmt"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/cpu"
	"rhohammer/internal/pattern"
	"rhohammer/internal/stats"
)

// payloadFingerprint serializes every observable of a session after a
// hammer run: the cpu-level result, the full device and controller
// counter snapshots, each individual flip, and — via one probe draw —
// the position of the session RNG stream. Two runs with equal
// fingerprints executed the same simulation, consumed the same random
// numbers, and left the machine in the same state.
func payloadFingerprint(s *Session, res Result) string {
	c := s.Counters()
	fp := fmt.Sprintf("time=%.9f end=%.9f acc=%d hit=%d miss=%d acts=%d"+
		"|dram acts=%d refs=%d trr=%d rfm=%d swap=%d flips=%d"+
		"|ctrl acc=%d rh=%d re=%d cf=%d ref=%d dh=%d dm=%d|",
		res.TimeNS, res.EndTime, res.Accesses, res.Hits, res.Misses, res.ACTs,
		c.Dram.ACTs, c.Dram.REFs, c.Dram.TRRTriggers, c.Dram.RFMEvents,
		c.Dram.RowSwapRelocations, c.Dram.Flips,
		c.Ctrl.Accesses, c.Ctrl.RowHits, c.Ctrl.RowEmpty, c.Ctrl.Conflicts,
		c.Ctrl.Refreshes, c.Ctrl.DecodeHits, c.Ctrl.DecodeMisses)
	for _, f := range res.Flips {
		fp += fmt.Sprintf("f%d:%d:%d:%d:%v:%.9f|", f.Bank, f.Row, f.ByteInRow, f.Bit, f.OneToZero, f.Time)
	}
	return fp + fmt.Sprintf("rng=%.17g", s.Rand.Float64())
}

// payloadScenario is one compiled-vs-interpreted comparison case.
type payloadScenario struct {
	name    string
	arch    func() *arch.Arch
	dimm    func() *arch.DIMM
	cfg     Config
	setup   func(s *Session) // extra session configuration (mitigations, audit, ...)
	pattern func() *pattern.Pattern
	bank    int
	baseRow uint64
	// One of the two drives the run: activations via HammerPattern,
	// durationNS via HammerPatternFor.
	activations int
	durationNS  float64
	// wantInterpreted asserts the session must NOT have compiled any
	// payloads (fallback scenarios).
	wantInterpreted bool
}

// runScenario executes the scenario on a fresh session and returns the
// fingerprint, plus the payload-compile count for fallback assertions.
func runScenario(t *testing.T, sc payloadScenario, disablePayload bool) (string, uint64) {
	t.Helper()
	s, err := NewSession(sc.arch(), sc.dimm(), 7)
	if err != nil {
		t.Fatal(err)
	}
	s.DisablePayload = disablePayload
	if sc.setup != nil {
		sc.setup(s)
	}
	pat := sc.pattern()
	var res Result
	if sc.durationNS > 0 {
		res, err = s.HammerPatternFor(pat, sc.cfg, sc.bank, sc.baseRow, sc.durationNS)
	} else {
		res, err = s.HammerPattern(pat, sc.cfg, sc.bank, sc.baseRow, sc.activations)
	}
	if err != nil {
		t.Fatal(err)
	}
	return payloadFingerprint(s, res), s.Counters().PayloadCompiles
}

// payloadScenarios spans the configuration surface the compiled
// executor must reproduce bit-exactly: both instruction kinds, every
// barrier, both primitive styles, multi-bank interleave, obfuscation,
// refresh-synchronized starts, and all four mitigations (TRR is always
// on; pTRR, DDR5 RFM, row swap, plus the simcheck shadow auditor).
func payloadScenarios() []payloadScenario {
	base := func() payloadScenario {
		return payloadScenario{
			arch:       arch.RaptorLake,
			dimm:       arch.DIMMS3,
			cfg:        Config{Instr: InstrPrefetchT0, Barrier: BarrierNop, Nops: 240, Banks: 1},
			pattern:    pattern.KnownGood,
			baseRow:    4096,
			durationNS: 8e6,
		}
	}
	var scs []payloadScenario
	add := func(name string, mut func(*payloadScenario)) {
		sc := base()
		sc.name = name
		mut(&sc)
		scs = append(scs, sc)
	}

	add("prefetch-nop-cpp", func(sc *payloadScenario) {})
	add("prefetch-asmjit", func(sc *payloadScenario) { sc.cfg.Style = cpu.StyleAsmJit })
	add("load-none", func(sc *payloadScenario) {
		sc.cfg = Config{Instr: InstrLoad, Barrier: BarrierNone, Banks: 1}
	})
	add("load-lfence-cpp", func(sc *payloadScenario) {
		sc.cfg = Config{Instr: InstrLoad, Barrier: BarrierLFence, Banks: 1}
	})
	add("prefetch-lfence-asmjit", func(sc *payloadScenario) {
		sc.cfg = Config{Instr: InstrPrefetchT1, Barrier: BarrierLFence, Banks: 1, Style: cpu.StyleAsmJit}
	})
	add("load-mfence", func(sc *payloadScenario) {
		sc.cfg = Config{Instr: InstrLoad, Barrier: BarrierMFence, Banks: 1}
	})
	add("prefetch-cpuid", func(sc *payloadScenario) {
		sc.cfg = Config{Instr: InstrPrefetchNTA, Barrier: BarrierCPUID, Banks: 1}
	})
	add("multibank", func(sc *payloadScenario) { sc.cfg.Banks = 3; sc.bank = 5 })
	add("obfuscate", func(sc *payloadScenario) { sc.cfg.Obfuscate = true })
	add("sync-refresh", func(sc *payloadScenario) { sc.cfg.SyncRefresh = true })
	add("activation-budget", func(sc *payloadScenario) {
		sc.durationNS = 0
		sc.activations = 60000
	})
	add("comet-lake", func(sc *payloadScenario) { sc.arch = arch.CometLake; sc.dimm = arch.DIMMS1 })
	add("ptrr", func(sc *payloadScenario) { sc.setup = func(s *Session) { s.EnablePTRR(true) } })
	add("ddr5-rfm", func(sc *payloadScenario) { sc.arch = arch.AlderLake; sc.dimm = arch.DIMMD1 })
	add("row-swap", func(sc *payloadScenario) {
		sc.setup = func(s *Session) { s.Dev.EnableRowSwap(5000) }
	})
	add("simcheck-shadow", func(sc *payloadScenario) {
		sc.setup = func(s *Session) { s.EnableAudit() }
		sc.durationNS = 4e6 // the shadow replay doubles the cost
	})
	add("trace-armed-fallback", func(sc *payloadScenario) {
		sc.setup = func(s *Session) { s.Ctrl.Trace.Start(1 << 20) }
		sc.wantInterpreted = true
		sc.durationNS = 2e6
	})
	return scs
}

// TestPayloadDifferential is the bit-identity contract of the compiled
// executor: for every scenario, a session running compiled payloads and
// a session forced onto the interpreted engine must agree on every
// observable — results, flips, device and controller counters, and the
// RNG stream position.
func TestPayloadDifferential(t *testing.T) {
	for _, sc := range payloadScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			if testing.Short() && sc.durationNS > 4e6 {
				sc.durationNS = 4e6
			}
			compiled, builds := runScenario(t, sc, false)
			interpreted, _ := runScenario(t, sc, true)
			if compiled != interpreted {
				t.Errorf("compiled path diverged from interpreted:\ncompiled:    %s\ninterpreted: %s",
					compiled, interpreted)
			}
			if sc.wantInterpreted {
				if builds != 0 {
					t.Errorf("scenario must fall back to the interpreted engine, but compiled %d payloads", builds)
				}
			} else if builds == 0 {
				t.Error("scenario never exercised the compiled path (0 payload compiles)")
			}
		})
	}
}

// TestPayloadDifferentialRandomTraces drives both engines over fuzzer-
// generated patterns — irregular slot sequences, decoy tuples, varying
// amplitudes — at pseudorandom banks and rows.
func TestPayloadDifferentialRandomTraces(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		fz := pattern.NewFuzzer(pattern.FuzzParams{}, stats.NewRand(seed))
		pat := fz.Next()
		sc := payloadScenario{
			name:       fmt.Sprintf("seed%d", seed),
			arch:       arch.RaptorLake,
			dimm:       arch.DIMMS3,
			cfg:        Config{Instr: InstrPrefetchT0, Barrier: BarrierNop, Nops: 120 + int(seed)*17, Banks: 1 + int(seed)%2},
			pattern:    func() *pattern.Pattern { return pat },
			bank:       int(seed) % 8,
			baseRow:    3000 + uint64(seed)*977,
			durationNS: 5e6,
		}
		t.Run(sc.name, func(t *testing.T) {
			compiled, _ := runScenario(t, sc, false)
			interpreted, _ := runScenario(t, sc, true)
			if compiled != interpreted {
				t.Errorf("random trace diverged:\ncompiled:    %s\ninterpreted: %s", compiled, interpreted)
			}
		})
	}
}

// FuzzPayloadDifferential is the native fuzz target for the same
// contract: arbitrary (seed, config, placement) tuples must never
// produce a compiled/interpreted divergence.
func FuzzPayloadDifferential(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(0), uint8(1), uint16(4096))
	f.Add(int64(42), uint8(3), uint8(4), uint8(2), uint16(900))
	f.Add(int64(7), uint8(17), uint8(255), uint8(0), uint16(60000))
	f.Fuzz(func(t *testing.T, seed int64, cfgBits, barrierStyle, banks uint8, rowSel uint16) {
		archs := arch.All()
		a := archs[int(cfgBits)%len(archs)]
		dimm := arch.DIMMS3
		if cfgBits&0x20 != 0 {
			a = arch.AlderLake()
			dimm = arch.DIMMD1 // DDR5: RFM + extended mapping
		}
		instrs := []Instr{InstrLoad, InstrPrefetchT0, InstrPrefetchT1, InstrPrefetchT2, InstrPrefetchNTA}
		barriers := []Barrier{BarrierNone, BarrierNop, BarrierLFence, BarrierMFence, BarrierCPUID}
		cfg := Config{
			Instr:     instrs[int(cfgBits)%len(instrs)],
			Barrier:   barriers[int(barrierStyle)%len(barriers)],
			Nops:      int(barrierStyle)%512 + 1,
			Banks:     int(banks)%4 + 1,
			Obfuscate: cfgBits&0x40 != 0,
		}
		if barrierStyle&0x80 != 0 {
			cfg.Style = cpu.StyleAsmJit
		}
		fz := pattern.NewFuzzer(pattern.FuzzParams{}, stats.NewRand(seed))
		pat := fz.Next()
		sc := payloadScenario{
			arch:       func() *arch.Arch { return a },
			dimm:       dimm,
			cfg:        cfg,
			pattern:    func() *pattern.Pattern { return pat },
			bank:       int(cfgBits) % 8,
			baseRow:    2048 + uint64(rowSel),
			durationNS: 1.5e6,
		}
		if cfgBits&0x80 != 0 {
			sc.setup = func(s *Session) { s.Dev.EnableRowSwap(uint64(rowSel)%8000 + 100) }
		}
		compiled, _ := runScenario(t, sc, false)
		interpreted, _ := runScenario(t, sc, true)
		if compiled != interpreted {
			t.Errorf("divergence for seed=%d cfg=%+v:\ncompiled:    %s\ninterpreted: %s",
				seed, cfg, compiled, interpreted)
		}
	})
}

// TestPayloadSteadyStateAllocs pins the executor's zero-allocation
// contract: once the engine, payload and device are warm, RunPayload
// must not allocate (the activation buffer, line scratch, FIFOs and
// TRR logs are all reused across runs).
func TestPayloadSteadyStateAllocs(t *testing.T) {
	s, err := NewSession(arch.RaptorLake(), arch.DIMMS3(), 11)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Instr: InstrPrefetchT0, Barrier: BarrierNop, Nops: 240, Banks: 1}
	if err := cfg.validate(s.Map.Banks()); err != nil {
		t.Fatal(err)
	}
	prog, err := s.program(pattern.KnownGood(), cfg, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := s.Eng.Compile(prog, cpu.Config{Style: cfg.Style, Obfuscate: cfg.Obfuscate})
	if err != nil {
		t.Fatal(err)
	}
	// Warm every lazily grown structure: line scratch, activation
	// buffer, per-bank TRR logs, materialized row states.
	for i := 0; i < 3; i++ {
		s.Eng.RunPayload(pl, 2000)
	}
	if n := testing.AllocsPerRun(20, func() {
		s.Eng.RunPayload(pl, 200)
	}); n > 0 {
		t.Errorf("RunPayload allocates %.1f objects per run in steady state, want 0", n)
	}
}
