package hammer

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/pattern"
	"rhohammer/internal/refmodel"
)

// TestSessionAuditEndToEnd runs a real hammering workload — the full
// engine pipeline: pattern lowering, speculative execution, controller
// timing, refresh scheduling — with the simcheck auditor attached, and
// requires the production device and the reference model to agree at
// every refresh boundary the run crosses.
func TestSessionAuditEndToEnd(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS4())
	aud := s.EnableAudit()
	aud.PanicOnDivergence = false

	pat := pattern.DoubleSided(64)
	res, err := s.HammerPattern(pat, Recommended(s.Arch), 0, 5000, 400_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := aud.Check(); err != nil {
		t.Fatalf("audit diverged during a live hammering session:\n%v", err)
	}
	if res.ACTs == 0 {
		t.Fatal("session issued no activations; audit test is vacuous")
	}
	if aud.Ref.ActivationCount() != s.Dev.ActivationCount() {
		t.Fatalf("reference saw %d activations, device %d",
			aud.Ref.ActivationCount(), s.Dev.ActivationCount())
	}
}

// TestSessionAuditEnvGate verifies the RHOHAMMER_SIMCHECK environment
// switch: set, a fresh session comes up with the auditor attached and
// panicking on divergence; unset or "0", it does not.
func TestSessionAuditEnvGate(t *testing.T) {
	t.Setenv(SimcheckEnv, "1")
	s, err := NewSession(arch.CometLake(), arch.DIMMS1(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Auditor() == nil {
		t.Fatal("RHOHAMMER_SIMCHECK=1 did not attach an auditor")
	}
	if !s.Auditor().PanicOnDivergence {
		t.Error("env-gated auditor must panic on divergence")
	}

	t.Setenv(SimcheckEnv, "0")
	s2, err := NewSession(arch.CometLake(), arch.DIMMS1(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Auditor() != nil {
		t.Error("RHOHAMMER_SIMCHECK=0 attached an auditor")
	}
}

// TestTraceReplayMatchesLive records the controller's command stream
// during a live hammering run, then replays it into a fresh production
// device and a fresh reference device: both must reproduce the live
// run's flips exactly. This closes the loop between the controller's
// trace facility and the substrate models — a trace is a complete,
// faithful record of everything that determines disturbance.
func TestTraceReplayMatchesLive(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS4())
	s.Ctrl.Trace.Start(1 << 22)
	// Drive the TRR-bypassing pattern straight through the controller:
	// decoys own the sampler while the true aggressor pairs accumulate
	// disturbance, so flips appear within a bounded access budget.
	seq := pattern.KnownGood().Render()
	const baseRow = 9000
	now := 0.0
	for pass := 0; pass < 6000 && len(s.Dev.Flips()) < 3; pass++ {
		for _, off := range seq {
			pa, err := s.Map.PhysAddr(0, baseRow+uint64(off), 0)
			if err != nil {
				t.Fatal(err)
			}
			now, _ = s.Ctrl.Access(pa, now)
		}
	}
	s.Ctrl.Trace.Stop()
	if len(s.Dev.Flips()) == 0 {
		t.Fatal("live run produced no flips; replay test is vacuous")
	}
	cmds := s.Ctrl.Trace.Commands()

	liveFlips := s.Dev.Flips()

	fastReplay := dram.NewDevice(s.DIMM, s.Dev.Seed)
	refmodel.Replay(fastReplay, cmds)
	compareFlips(t, "fast replay", liveFlips, fastReplay.Flips())

	refReplay := refmodel.NewDevice(s.DIMM, s.Dev.Seed)
	refmodel.Replay(refReplay, cmds)
	compareFlips(t, "reference replay", liveFlips, refReplay.Flips())
}

func compareFlips(t *testing.T, label string, want, got []dram.Flip) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d flips, live run had %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: flip %d = %+v, live %+v", label, i, got[i], want[i])
		}
	}
}
