package hammer

import (
	"fmt"

	"rhohammer/internal/pattern"
	"rhohammer/internal/stats"
)

// ActivationProfile summarizes the DRAM command stream one hammering
// configuration achieves — the paper's core quantitative lens: how many
// activations fit into each refresh interval, and how they distribute
// over the pattern's rows.
type ActivationProfile struct {
	// PerInterval are the ACTs-per-tREFI statistics for the hammered
	// bank (the budget the TRR sampler observes).
	PerInterval stats.Summary
	// RowCounts maps hammered rows to their total activations.
	RowCounts map[uint64]int
	// TotalACTs is the number of activations traced.
	TotalACTs int
	// MissRate is the fraction of accesses that reached DRAM.
	MissRate float64
}

// MeasureActivationRate runs `pat` under cfg for durationNS with command
// tracing enabled and returns the activation profile of the first
// hammered bank. The device state is reset before and after, so the
// probe leaves no residue in the session.
func (s *Session) MeasureActivationRate(pat *pattern.Pattern, cfg Config, bank int, baseRow uint64, durationNS float64) (ActivationProfile, error) {
	var out ActivationProfile
	s.ResetDevice()
	s.Ctrl.Trace.Start(1 << 21)
	defer func() {
		s.Ctrl.Trace.Reset()
		s.ResetDevice()
	}()
	res, err := s.HammerPatternFor(pat, cfg, bank, baseRow, durationNS)
	if err != nil {
		return out, fmt.Errorf("hammer: activation probe: %w", err)
	}
	perInterval := s.Ctrl.Trace.ACTsPerInterval(bank)
	if len(perInterval) > 2 {
		// Drop the first and last (partial) intervals.
		perInterval = perInterval[1 : len(perInterval)-1]
	}
	xs := make([]float64, len(perInterval))
	total := 0
	for i, n := range perInterval {
		xs[i] = float64(n)
		total += n
	}
	out.PerInterval = stats.Summarize(xs)
	out.RowCounts = s.Ctrl.Trace.RowCounts(bank)
	out.TotalACTs = total
	out.MissRate = res.MissRate()
	return out, nil
}
