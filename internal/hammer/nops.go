package hammer

import "rhohammer/internal/arch"

// This file is the single home of the pre-tuned counter-speculation
// constants. The attack facade (rhohammer.Attack.RecommendedConfig) and
// the experiment harness (internal/experiments) both consume these;
// TestTunedNopsNearOptimum keeps them inside the plateau the actual
// tuning phase (TuneNops) finds.

// TunedNops returns the counter-speculation NOP count ρHammer's tuning
// phase converges to on each architecture for single-bank hammering.
// The optimum sits where ordering is restored AND the per-bank access
// pace clears the bank's activation cycle (so prefetches stop merging
// in the fill buffers); the attack discovers it with TuneNops once per
// target.
func TunedNops(a *arch.Arch) int {
	switch a.Generation {
	case 10:
		return 190
	case 11:
		return 200
	case 12:
		return 230
	default:
		return 260
	}
}

// TunedNopsMulti is the equivalent optimum for multi-bank hammering:
// bank interleaving already spreads each bank's accesses, so far fewer
// NOPs are needed before the rate penalty dominates.
func TunedNopsMulti(a *arch.Arch) int {
	switch a.Generation {
	case 10:
		return 70
	case 11:
		return 80
	case 12:
		return 95
	default:
		return 110
	}
}

// OptimalBanks is the multi-bank width fuzzing identifies as optimal
// (Fig. 9 peaks at 3 banks on Comet Lake; the newer platforms behave
// alike on this substrate).
func OptimalBanks(a *arch.Arch) int { return 3 }

// Recommended returns ρHammer's tuned multi-bank configuration for the
// architecture: prefetch hammering at the optimal bank width with
// counter-speculation NOPs pre-tuned for that width.
func Recommended(a *arch.Arch) Config {
	return RhoHammer(a, OptimalBanks(a), TunedNopsMulti(a))
}

// RecommendedSingleBank is the single-bank equivalent of Recommended
// (used where the workload is confined to one bank, e.g. templating a
// contiguous region).
func RecommendedSingleBank(a *arch.Arch) Config {
	return RhoHammer(a, 1, TunedNops(a))
}
