// Package hammer implements ρHammer's hammering engine: it lowers a
// non-uniform pattern into a micro-op program (hammer instruction +
// CLFLUSHOPT per aggressor, with the configured barrier strategy and
// optional control-flow obfuscation), optionally interleaves it across
// multiple banks (§4.3), executes it on the speculative CPU model, and
// collects the bit flips induced in the DRAM device.
//
// The package also provides the counter-speculation tuning phase (§4.4)
// that searches for the platform's optimal NOP count.
package hammer

import (
	"fmt"

	"rhohammer/internal/arch"
	"rhohammer/internal/cpu"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/obs"
	"rhohammer/internal/pattern"
	"rhohammer/internal/refmodel"
	"rhohammer/internal/stats"
)

// Instr selects the hammering instruction (§4.2, Fig. 6).
type Instr uint8

const (
	// InstrLoad is the conventional MOV-based baseline.
	InstrLoad Instr = iota
	// InstrPrefetchT0 .. InstrPrefetchNTA are the four PREFETCHh
	// variants; ρHammer uses T2 or NTA.
	InstrPrefetchT0
	InstrPrefetchT1
	InstrPrefetchT2
	InstrPrefetchNTA
)

// IsPrefetch reports whether the instruction is a software prefetch.
func (i Instr) IsPrefetch() bool { return i != InstrLoad }

// Hint returns the cpu-level prefetch hint for prefetch instructions.
func (i Instr) Hint() cpu.Hint {
	switch i {
	case InstrPrefetchT0:
		return cpu.HintT0
	case InstrPrefetchT1:
		return cpu.HintT1
	case InstrPrefetchT2:
		return cpu.HintT2
	default:
		return cpu.HintNTA
	}
}

// String implements fmt.Stringer.
func (i Instr) String() string {
	switch i {
	case InstrLoad:
		return "load"
	case InstrPrefetchT0:
		return "prefetcht0"
	case InstrPrefetchT1:
		return "prefetcht1"
	case InstrPrefetchT2:
		return "prefetcht2"
	case InstrPrefetchNTA:
		return "prefetchnta"
	default:
		return fmt.Sprintf("Instr(%d)", uint8(i))
	}
}

// Barrier selects the ordering strategy compared in Table 3.
type Barrier uint8

const (
	// BarrierNone issues hammer+flush pairs with no ordering at all.
	BarrierNone Barrier = iota
	// BarrierNop inserts Config.Nops NOPs after every hammer pair —
	// ρHammer's pseudo-barrier.
	BarrierNop
	// BarrierLFence / BarrierMFence / BarrierCPUID insert the
	// respective x86 instruction after every hammer pair.
	BarrierLFence
	BarrierMFence
	BarrierCPUID
)

// String implements fmt.Stringer.
func (b Barrier) String() string {
	switch b {
	case BarrierNone:
		return "none"
	case BarrierNop:
		return "nop"
	case BarrierLFence:
		return "lfence"
	case BarrierMFence:
		return "mfence"
	case BarrierCPUID:
		return "cpuid"
	default:
		return fmt.Sprintf("Barrier(%d)", uint8(b))
	}
}

// Config is one hammering strategy: instruction choice, primitive style,
// bank-level parallelism and counter-speculation settings.
type Config struct {
	Instr     Instr
	Style     cpu.Style
	Banks     int     // number of banks hammered in parallel (>= 1)
	Barrier   Barrier // ordering strategy
	Nops      int     // NOP count for BarrierNop
	Obfuscate bool    // control-flow obfuscation (§4.4)
	// SyncRefresh aligns the hammer loop's start with the next REF
	// command (the first step of Listing 1), pinning the pattern's
	// phase relative to the TRR observation intervals.
	SyncRefresh bool
}

// Baseline returns the conventional load-based configuration
// (Blacksmith/ZenHammer-style): C++ primitive, single bank, no barrier.
func Baseline() Config {
	return Config{Instr: InstrLoad, Style: cpu.StyleCPP, Banks: 1, Barrier: BarrierNone}
}

// RhoHammer returns ρHammer's recommended configuration for the given
// architecture: prefetch-based C++ primitive with counter-speculation
// (obfuscation + tuned NOPs) and the given bank parallelism.
func RhoHammer(a *arch.Arch, banks, nops int) Config {
	return Config{
		Instr: InstrPrefetchT2, Style: cpu.StyleCPP,
		Banks: banks, Barrier: BarrierNop, Nops: nops, Obfuscate: true,
	}
}

// String renders the strategy compactly for logs and reports.
func (c Config) String() string {
	s := fmt.Sprintf("%s/%s banks=%d barrier=%s", c.Instr, c.Style, c.Banks, c.Barrier)
	if c.Barrier == BarrierNop {
		s += fmt.Sprintf("(%d)", c.Nops)
	}
	if c.Obfuscate {
		s += " +obf"
	}
	return s
}

// validate normalizes a config and reports misuse.
func (c *Config) validate(banks int) error {
	if c.Banks < 1 {
		c.Banks = 1
	}
	if c.Banks > banks {
		return fmt.Errorf("hammer: config wants %d banks but platform has %d", c.Banks, banks)
	}
	if c.Nops < 0 {
		return fmt.Errorf("hammer: negative NOP count %d", c.Nops)
	}
	return nil
}

// Session binds one attack context: an architecture profile, a DIMM, the
// platform's DRAM address mapping, the memory controller and the
// speculative CPU model. All hammering, sweeping and fuzzing operations
// run through a session.
type Session struct {
	Arch *arch.Arch
	DIMM *arch.DIMM
	Map  *mapping.Mapping
	Dev  *dram.Device
	Ctrl *memctrl.Controller
	Eng  *cpu.Engine
	Rand *stats.Rand

	// progCache memoizes lowered programs: repeated HammerPattern calls
	// with the same (pattern, placement, strategy) — the templating and
	// benchmarking steady state — reuse the built cpu.Program instead of
	// re-rendering and re-lowering it. Keyed by pattern pointer;
	// patterns are immutable once built (the fuzzer and mutator always
	// construct fresh ones).
	progCache map[progKey]*cpu.Program

	// payloadCache memoizes compiled payloads (cpu.Compile) one level
	// below progCache: the same program under the same execution config
	// re-runs its flat schedule without re-lowering. Payloads bind
	// preresolved addresses, so the cache shares progCache's keying plus
	// the cpu.Config the compilation baked in.
	payloadCache map[payloadKey]*cpu.Payload

	// DisablePayload forces every run through the interpreted
	// cpu.Engine.Run path. The differential tests set it to compare the
	// two paths bit-for-bit; the RHOHAMMER_NOPAYLOAD environment
	// variable sets it at session creation for A/B debugging.
	DisablePayload bool

	// auditor is non-nil in simcheck mode; see EnableAudit.
	auditor *refmodel.Auditor

	// trace, when non-nil, receives pattern-level observability events;
	// see AttachTrace in obs.go. The per-pattern counters below are
	// plain fields on cold paths (never touched per access).
	trace            *obs.Trace
	patternsHammered uint64
	progBuilds       uint64
	progHits         uint64
	payloadBuilds    uint64
	payloadHits      uint64
}

// progKey identifies one lowered program: the pattern plus every config
// field the lowering depends on, and the placement.
type progKey struct {
	pat     *pattern.Pattern
	instr   Instr
	barrier Barrier
	nops    int
	banks   int
	bank    int
	baseRow uint64
}

// payloadKey identifies one compiled payload: the lowered program's
// identity plus the execution config the compilation baked in.
type payloadKey struct {
	pk    progKey
	style cpu.Style
	obf   bool
}

// progCacheLimit bounds the memoized programs per session; long fuzzing
// campaigns would otherwise accumulate one entry per (pattern, location).
// The cache is cleared wholesale when full — deterministic, and the
// steady-state workloads that matter reuse a handful of entries.
// payloadCache uses the same bound and policy.
const progCacheLimit = 256

// deviceSeedSalt decorrelates the device's vulnerability map from the
// engine's reordering stream while keeping both a pure function of the
// session seed.
const deviceSeedSalt = 0x5ca1ab1e

// DeviceSeed maps a session seed to the dram.Device seed NewSession
// derives from it. Replaying a trace recorded by a session requires
// the device seed, not the session seed — internal/replay clients use
// this to name it.
func DeviceSeed(sessionSeed int64) int64 { return sessionSeed ^ deviceSeedSalt }

// NewSession creates a session for the architecture/DIMM pair. The seed
// fixes both the DIMM's vulnerability map and the engine's stochastic
// reordering.
func NewSession(a *arch.Arch, d *arch.DIMM, seed int64) (*Session, error) {
	family := a.MappingFamily
	if d.DDR5 {
		// DDR5 systems use the extended mapping with the sub-channel
		// function (§6).
		family += "-ddr5"
	}
	m, ok := mapping.ForPlatform(family, d.SizeGiB)
	if !ok {
		return nil, fmt.Errorf("hammer: no mapping for family %q at %d GiB", family, d.SizeGiB)
	}
	r := stats.NewRand(seed)
	dev := dram.NewDevice(d, DeviceSeed(seed))
	ctrl := memctrl.New(a, m, dev)
	s := &Session{
		Arch: a, DIMM: d, Map: m, Dev: dev, Ctrl: ctrl,
		Eng:          cpu.NewEngine(a, ctrl, r),
		Rand:         r,
		progCache:    make(map[progKey]*cpu.Program),
		payloadCache: make(map[payloadKey]*cpu.Payload),
	}
	if noPayloadFromEnv() {
		s.DisablePayload = true
	}
	if simcheckFromEnv() {
		s.EnableAudit()
	}
	if t := obs.SessionTrace(seed); t != nil {
		s.AttachTrace(t)
	}
	return s, nil
}

// program returns the lowered program for (pat, cfg, bank, baseRow),
// building and memoizing it on first use.
func (s *Session) program(pat *pattern.Pattern, cfg Config, bank int, baseRow uint64) (*cpu.Program, error) {
	key := progKey{
		pat: pat, instr: cfg.Instr, barrier: cfg.Barrier,
		nops: cfg.Nops, banks: cfg.Banks, bank: bank, baseRow: baseRow,
	}
	if prog, ok := s.progCache[key]; ok {
		s.progHits++
		if obs.Enabled() {
			obs.HammerProgHits.Inc()
		}
		return prog, nil
	}
	prog, err := s.build(pat, cfg, bank, baseRow)
	if err != nil {
		return nil, err
	}
	s.progBuilds++
	if obs.Enabled() {
		obs.HammerProgBuilds.Inc()
	}
	if len(s.progCache) >= progCacheLimit {
		clear(s.progCache)
	}
	s.progCache[key] = prog
	return prog, nil
}

// usePayload reports whether runs may take the compiled-payload fast
// path. The executor does not record per-command traces, so an armed
// controller trace forces the interpreted engine; everything else
// (simcheck shadow, obs tracing, every mitigation) is handled on the
// compiled path.
func (s *Session) usePayload() bool {
	return !s.DisablePayload && !s.Ctrl.Trace.Armed()
}

// payload returns the compiled payload for (pat, cfg, bank, baseRow),
// compiling and memoizing it on first use. prog must be the program the
// same key resolves to.
func (s *Session) payload(prog *cpu.Program, pat *pattern.Pattern, cfg Config, bank int, baseRow uint64) (*cpu.Payload, error) {
	key := payloadKey{
		pk: progKey{
			pat: pat, instr: cfg.Instr, barrier: cfg.Barrier,
			nops: cfg.Nops, banks: cfg.Banks, bank: bank, baseRow: baseRow,
		},
		style: cfg.Style, obf: cfg.Obfuscate,
	}
	if pl, ok := s.payloadCache[key]; ok {
		s.payloadHits++
		if obs.Enabled() {
			obs.HammerPayloadHits.Inc()
		}
		return pl, nil
	}
	pl, err := s.Eng.Compile(prog, cpu.Config{Style: cfg.Style, Obfuscate: cfg.Obfuscate})
	if err != nil {
		return nil, err
	}
	s.payloadBuilds++
	if obs.Enabled() {
		obs.HammerPayloadCompiles.Inc()
		obs.HammerPayloadMiss.Inc()
	}
	if len(s.payloadCache) >= progCacheLimit {
		clear(s.payloadCache)
	}
	s.payloadCache[key] = pl
	return pl, nil
}

// EnablePTRR turns on the platform pTRR mitigation (§6).
func (s *Session) EnablePTRR(on bool) { s.Dev.PTRR = on }

// Result is the outcome of hammering one pattern at one location.
type Result struct {
	cpu.Result
	Flips []dram.Flip
}

// FlipCount returns the number of observed bit flips.
func (r Result) FlipCount() int { return len(r.Flips) }

// ActivationsPerSecond returns the achieved DRAM activation rate.
func (r Result) ActivationsPerSecond() float64 {
	if r.TimeNS <= 0 {
		return 0
	}
	return float64(r.ACTs) / (r.TimeNS * 1e-9)
}

// HammerPattern executes pat for approximately `activations` hammer
// accesses at the given base row and bank under cfg, and returns timing,
// ordering and flip results. For multi-bank configs the pattern is
// interleaved across cfg.Banks banks starting at `bank`.
func (s *Session) HammerPattern(pat *pattern.Pattern, cfg Config, bank int, baseRow uint64, activations int) (Result, error) {
	if err := pat.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.validate(s.Map.Banks()); err != nil {
		return Result{}, err
	}
	maxOff := uint64(pat.MaxOffset())
	if baseRow+maxOff+2 >= s.Map.Rows() {
		return Result{}, fmt.Errorf("hammer: base row %d + offset %d exceeds %d rows", baseRow, maxOff, s.Map.Rows())
	}
	prog, err := s.program(pat, cfg, bank, baseRow)
	if err != nil {
		return Result{}, err
	}
	perIter := prog.Accesses()
	if perIter == 0 {
		return Result{}, fmt.Errorf("hammer: pattern %d rendered to zero accesses", pat.ID)
	}
	iters := activations / perIter
	if iters < 1 {
		iters = 1
	}
	flipsBefore := len(s.Dev.Flips())
	devBefore, ctrlBefore, pbBefore := s.Dev.Counters(), s.Ctrl.Stats(), s.Eng.PayloadBatches()
	if cfg.SyncRefresh {
		s.Eng.SyncToRefresh()
	}
	var res cpu.Result
	if s.usePayload() {
		pl, err := s.payload(prog, pat, cfg, bank, baseRow)
		if err != nil {
			return Result{}, err
		}
		res = s.Eng.RunPayload(pl, iters)
	} else {
		res = s.Eng.Run(prog, iters, cpu.Config{Style: cfg.Style, Obfuscate: cfg.Obfuscate})
	}
	flips := s.Dev.Flips()[flipsBefore:]
	out := Result{Result: res}
	out.Flips = append(out.Flips, flips...)
	s.noteHammer(devBefore, ctrlBefore, pbBefore, &out)
	return out, nil
}

// HammerPatternFor hammers like HammerPattern but with a simulated-time
// budget instead of an access count: the pattern repeats until at least
// durationNS of simulated time has elapsed. Fixed-time budgets make
// strategy comparisons fair — a faster primitive simply lands more
// hammer attempts, exactly as in the paper's wall-clock-bounded
// campaigns — and guarantee every run spans multiple refresh windows.
func (s *Session) HammerPatternFor(pat *pattern.Pattern, cfg Config, bank int, baseRow uint64, durationNS float64) (Result, error) {
	if err := pat.Validate(); err != nil {
		return Result{}, err
	}
	if err := cfg.validate(s.Map.Banks()); err != nil {
		return Result{}, err
	}
	maxOff := uint64(pat.MaxOffset())
	if baseRow+maxOff+2 >= s.Map.Rows() {
		return Result{}, fmt.Errorf("hammer: base row %d + offset %d exceeds %d rows", baseRow, maxOff, s.Map.Rows())
	}
	prog, err := s.program(pat, cfg, bank, baseRow)
	if err != nil {
		return Result{}, err
	}
	perIter := prog.Accesses()
	if perIter == 0 {
		return Result{}, fmt.Errorf("hammer: pattern %d rendered to zero accesses", pat.ID)
	}
	flipsBefore := len(s.Dev.Flips())
	devBefore, ctrlBefore, pbBefore := s.Dev.Counters(), s.Ctrl.Stats(), s.Eng.PayloadBatches()
	var pl *cpu.Payload
	if s.usePayload() {
		if pl, err = s.payload(prog, pat, cfg, bank, baseRow); err != nil {
			return Result{}, err
		}
	}
	var out Result
	// Run in chunks, re-estimating the remaining iteration count from
	// the measured pace; a few passes converge for any configuration.
	if cfg.SyncRefresh {
		s.Eng.SyncToRefresh()
	}
	chunkIters := 200_000/perIter + 1
	deadline := s.Eng.Now() + durationNS
	first := true
	for s.Eng.Now() < deadline {
		remaining := deadline - s.Eng.Now()
		if out.TimeNS > 0 && out.Accesses > 0 {
			pace := out.TimeNS / float64(out.Accesses) // ns per access
			chunkIters = int(remaining/pace)/perIter + 1
		}
		var res cpu.Result
		if pl != nil {
			res = s.Eng.RunPayload(pl, chunkIters)
		} else {
			res = s.Eng.Run(prog, chunkIters, cpu.Config{Style: cfg.Style, Obfuscate: cfg.Obfuscate})
		}
		out.TimeNS += res.TimeNS
		out.Accesses += res.Accesses
		out.Hits += res.Hits
		out.Misses += res.Misses
		out.ACTs += res.ACTs
		if first {
			out.StartTime = res.StartTime
			first = false
		}
		out.EndTime = res.EndTime
	}
	out.Flips = append(out.Flips, s.Dev.Flips()[flipsBefore:]...)
	s.noteHammer(devBefore, ctrlBefore, pbBefore, &out)
	return out, nil
}

// build lowers a pattern into a cpu.Program under cfg.
func (s *Session) build(pat *pattern.Pattern, cfg Config, firstBank int, baseRow uint64) (*cpu.Program, error) {
	seq := pat.Render()
	if len(seq) == 0 {
		return nil, fmt.Errorf("hammer: pattern %d rendered empty", pat.ID)
	}

	// Line table: one cache line per (bank, row offset).
	type key struct {
		bank int
		off  int
	}
	lineOf := map[key]int32{}
	var prog cpu.Program
	addLine := func(bank, off int) (int32, error) {
		k := key{bank, off}
		if id, ok := lineOf[k]; ok {
			return id, nil
		}
		pa, err := s.Map.PhysAddr(bank, baseRow+uint64(off), 0)
		if err != nil {
			return 0, err
		}
		id := int32(len(prog.Lines))
		prog.Lines = append(prog.Lines, pa)
		lineOf[k] = id
		return id, nil
	}

	accessKind := cpu.OpLoad
	if cfg.Instr.IsPrefetch() {
		accessKind = cpu.OpPrefetch
	}
	hint := cfg.Instr.Hint()

	prog.Ops = append(prog.Ops, cpu.Op{Kind: cpu.OpIterStart})
	banks := cfg.Banks
	for _, off := range seq {
		// Multi-bank: the same pattern slot is replicated across the
		// parallel banks back-to-back (SledgeHammer interleaving).
		for b := 0; b < banks; b++ {
			bank := (firstBank + b) % s.Map.Banks()
			line, err := addLine(bank, off)
			if err != nil {
				return nil, err
			}
			prog.Ops = append(prog.Ops, cpu.Op{Kind: accessKind, Line: line, Hint: hint})
			prog.Ops = append(prog.Ops, cpu.Op{Kind: cpu.OpFlush, Line: line})
			switch cfg.Barrier {
			case BarrierNop:
				if cfg.Nops > 0 {
					prog.Ops = append(prog.Ops, cpu.Op{Kind: cpu.OpNop, N: int32(cfg.Nops)})
				}
			case BarrierLFence:
				prog.Ops = append(prog.Ops, cpu.Op{Kind: cpu.OpLFence})
			case BarrierMFence:
				prog.Ops = append(prog.Ops, cpu.Op{Kind: cpu.OpMFence})
			case BarrierCPUID:
				prog.Ops = append(prog.Ops, cpu.Op{Kind: cpu.OpCPUID})
			}
		}
	}
	return &prog, nil
}

// ResetDevice clears accumulated DRAM state (disturbance and recorded
// flips) — the equivalent of re-initializing victim memory between
// trials.
func (s *Session) ResetDevice() { s.Dev.Reset() }
