package hammer

import (
	"rhohammer/internal/pattern"
)

// FuzzOptions controls a fuzzing campaign. The paper's campaigns run for
// 2 hours of wall clock; here the budget is expressed as a number of
// candidate patterns, each executed at a few physical locations, which
// is the quantity the flip statistics actually depend on.
type FuzzOptions struct {
	Patterns   int                // candidate patterns to generate
	Locations  int                // trial locations per pattern
	DurationNS float64            // simulated hammer time per trial
	Params     pattern.FuzzParams // generator bounds
}

// withDefaults fills unset fields with the evaluation defaults.
func (o FuzzOptions) withDefaults() FuzzOptions {
	if o.Patterns == 0 {
		o.Patterns = 40
	}
	if o.Locations == 0 {
		o.Locations = 2
	}
	if o.DurationNS == 0 {
		o.DurationNS = 150e6 // ~2.3 refresh windows
	}
	return o
}

// PatternScore records one fuzzed pattern's aggregate effectiveness.
type PatternScore struct {
	Pattern *pattern.Pattern
	Flips   int
}

// FuzzReport summarizes a campaign, matching the quantities of Table 6:
// total flips over all effective patterns and the best pattern's flips.
type FuzzReport struct {
	TotalFlips int
	Best       PatternScore
	// Effective counts patterns that produced at least one flip.
	Effective int
	// Tried is the number of patterns executed.
	Tried int
}

// Fuzz runs a fuzzing campaign under the given hammering configuration
// and returns the report plus the best pattern found (nil if none
// flipped anything).
func (s *Session) Fuzz(cfg Config, opt FuzzOptions) (FuzzReport, error) {
	opt = opt.withDefaults()
	fz := pattern.NewFuzzer(opt.Params, s.Rand)
	var rep FuzzReport
	rows := s.Map.Rows()
	for i := 0; i < opt.Patterns; i++ {
		pat := fz.Next()
		span := uint64(pat.MaxOffset() + 8)
		flips := 0
		for loc := 0; loc < opt.Locations; loc++ {
			s.ResetDevice()
			baseRow := (uint64(i*opt.Locations+loc)*10007*span + 128) % (rows - span - 4)
			bank := (i + loc) % s.Map.Banks()
			res, err := s.HammerPatternFor(pat, cfg, bank, baseRow, opt.DurationNS)
			if err != nil {
				return rep, err
			}
			flips += res.FlipCount()
		}
		rep.Tried++
		if flips > 0 {
			rep.Effective++
			rep.TotalFlips += flips
		}
		if flips > rep.Best.Flips {
			rep.Best = PatternScore{Pattern: pat, Flips: flips}
		}
	}
	return rep, nil
}
