package hammer

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/pattern"
)

// The §4.5 quantitative core: a DDR4 bank admits ~164 activations per
// tREFI (7800 ns / ~47.5 ns tRC); ordered prefetch hammering approaches
// that budget while load hammering reaches roughly half of it.
func TestActivationBudgetPerInterval(t *testing.T) {
	if testing.Short() {
		t.Skip("activation probe")
	}
	pat := pattern.KnownGood()
	s := newTestSession(t, arch.CometLake(), arch.DIMMS3())

	pf, err := s.MeasureActivationRate(pat, RhoHammer(s.Arch, 1, 190), 0, 5000, 60e6)
	if err != nil {
		t.Fatal(err)
	}
	s2 := newTestSession(t, arch.CometLake(), arch.DIMMS3())
	ld, err := s2.MeasureActivationRate(pat, Baseline(), 0, 5000, 60e6)
	if err != nil {
		t.Fatal(err)
	}

	if pf.PerInterval.Mean < 110 || pf.PerInterval.Mean > 170 {
		t.Errorf("prefetch ACTs/tREFI = %.1f, want near the ~150 bank budget", pf.PerInterval.Mean)
	}
	if ld.PerInterval.Mean > pf.PerInterval.Mean*0.75 {
		t.Errorf("load ACTs/tREFI %.1f should sit well below prefetch %.1f (§4.5)",
			ld.PerInterval.Mean, pf.PerInterval.Mean)
	}
	if pf.TotalACTs == 0 || len(pf.RowCounts) == 0 {
		t.Error("empty profile")
	}
	// Decoy rows must dominate the per-row counts (TRR evasion).
	decoys := pf.RowCounts[5040] + pf.RowCounts[5046]
	pairs := pf.RowCounts[5000] + pf.RowCounts[5002]
	if decoys <= pairs {
		t.Errorf("decoy counts %d should exceed pair counts %d", decoys, pairs)
	}
}

// The probe must not leave device or trace state behind.
func TestActivationProbeIsSideEffectFree(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS3())
	if _, err := s.MeasureActivationRate(pattern.KnownGood(), Baseline(), 0, 5000, 20e6); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Dev.Flips()); n != 0 {
		t.Errorf("probe left %d flips", n)
	}
	if s.Dev.ActivationCount() != 0 {
		t.Error("probe left activation counters")
	}
	// Trace disarmed: later hammering must not accumulate commands.
	if _, err := s.HammerPattern(pattern.KnownGood(), Baseline(), 0, 5000, 50_000); err != nil {
		t.Fatal(err)
	}
	if n := len(s.Ctrl.Trace.Commands()); n != 0 {
		t.Errorf("trace still recording: %d commands", n)
	}
}
