package hammer

import (
	"rhohammer/internal/dram"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/obs"
)

// Observability surface of the hammering engine. The session keeps
// plain counters on its cold paths (per pattern, per program build —
// never per access) and flushes dram/memctrl deltas into the global
// obs registry at every completed hammer call, gated on obs.Enabled().

// SessionCounters is a cold snapshot of one session's activity: the
// attached device and controller counters plus the engine-level ones.
type SessionCounters struct {
	Dram dram.Counters  `json:"dram"`
	Ctrl memctrl.Stats  `json:"memctrl"`
	// PatternsHammered counts completed HammerPattern/HammerPatternFor
	// calls (pattern throughput = activations / simulated time, both
	// also recorded here via Dram.ACTs and the cpu results).
	PatternsHammered uint64 `json:"patterns_hammered"`
	// ProgramBuilds / ProgramCacheHits expose the lowering memoization
	// (a fuzzing campaign should build once per fresh pattern and hit
	// for every repeat trial).
	ProgramBuilds    uint64 `json:"program_builds"`
	ProgramCacheHits uint64 `json:"program_cache_hits"`
	// PayloadCompiles / PayloadCacheHits expose the compiled-payload
	// memoization one level below the program cache, and PayloadBatches
	// counts the activation batches the executor handed to the device.
	PayloadCompiles  uint64 `json:"payload_compiles"`
	PayloadCacheHits uint64 `json:"payload_cache_hits"`
	PayloadBatches   uint64 `json:"payload_batches"`
}

// Counters returns the session's current snapshot.
func (s *Session) Counters() SessionCounters {
	return SessionCounters{
		Dram:             s.Dev.Counters(),
		Ctrl:             s.Ctrl.Stats(),
		PatternsHammered: s.patternsHammered,
		ProgramBuilds:    s.progBuilds,
		ProgramCacheHits: s.progHits,
		PayloadCompiles:  s.payloadBuilds,
		PayloadCacheHits: s.payloadHits,
		PayloadBatches:   s.Eng.PayloadBatches(),
	}
}

// AttachTrace routes structured events from this session and its
// device into the given ring. NewSession attaches one automatically
// when global tracing (obs.EnableTracing) is armed.
func (s *Session) AttachTrace(t *obs.Trace) {
	s.trace = t
	s.Dev.SetTrace(t)
}

// noteHammer is the per-pattern cold boundary: it bumps the session
// counters, emits the pattern trace event, and — only when the obs
// layer is enabled — flushes the dram/memctrl deltas of this call into
// the global registry. Deltas are safe because Reset only happens
// between hammer calls, never inside one.
func (s *Session) noteHammer(devBefore dram.Counters, ctrlBefore memctrl.Stats, pbBefore uint64, res *Result) {
	s.patternsHammered++
	if s.trace != nil {
		s.trace.Emit(obs.Event{TimeNS: res.EndTime, Layer: "hammer", Kind: "pattern",
			N: int64(len(res.Flips))})
	}
	if !obs.Enabled() {
		return
	}
	dev := s.Dev.Counters()
	ctrl := s.Ctrl.Stats()
	obs.DramACTs.AddUint(dev.ACTs - devBefore.ACTs)
	obs.DramREFs.AddUint(dev.REFs - devBefore.REFs)
	obs.DramTRR.AddUint(dev.TRRTriggers - devBefore.TRRTriggers)
	obs.DramFlips.Add(int64(len(res.Flips)))
	obs.DramRFM.AddUint(dev.RFMEvents - devBefore.RFMEvents)
	obs.DramRowSwaps.AddUint(dev.RowSwapRelocations - devBefore.RowSwapRelocations)
	obs.CtrlAccesses.AddUint(ctrl.Accesses - ctrlBefore.Accesses)
	obs.CtrlRowHits.AddUint(ctrl.RowHits - ctrlBefore.RowHits)
	obs.CtrlConflicts.AddUint(ctrl.Conflicts - ctrlBefore.Conflicts)
	obs.CtrlDecodeHits.AddUint(ctrl.DecodeHits - ctrlBefore.DecodeHits)
	obs.CtrlDecodeMiss.AddUint(ctrl.DecodeMisses - ctrlBefore.DecodeMisses)
	obs.HammerPayloadBatches.AddUint(s.Eng.PayloadBatches() - pbBefore)
	obs.HammerPatterns.Inc()
}
