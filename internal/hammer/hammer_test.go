package hammer

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/cpu"
	"rhohammer/internal/pattern"
)

func newTestSession(t *testing.T, a *arch.Arch, d *arch.DIMM) *Session {
	t.Helper()
	s, err := NewSession(a, d, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionWiring(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS3())
	if s.Map.Banks() != 32 || s.Dev.Banks() != 32 {
		t.Error("mapping/device bank mismatch")
	}
	if s.Map.Name != "comet-rocket-16g" {
		t.Errorf("wrong mapping %s", s.Map.Name)
	}
}

func TestConfigValidation(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS3())
	pat := pattern.KnownGood()
	if _, err := s.HammerPattern(pat, Config{Banks: 1000}, 0, 5000, 1000); err == nil {
		t.Error("excessive bank count accepted")
	}
	if _, err := s.HammerPattern(pat, Config{Nops: -1}, 0, 5000, 1000); err == nil {
		t.Error("negative NOPs accepted")
	}
	if _, err := s.HammerPattern(pat, Config{Banks: 1}, 0, s.Map.Rows()-2, 1000); err == nil {
		t.Error("out-of-range base row accepted")
	}
	bad := &pattern.Pattern{Slots: 0}
	if _, err := s.HammerPattern(bad, Config{Banks: 1}, 0, 5000, 1000); err == nil {
		t.Error("invalid pattern accepted")
	}
}

func TestConfigStrings(t *testing.T) {
	c := RhoHammer(arch.RaptorLake(), 3, 240)
	s := c.String()
	if s == "" || c.Barrier != BarrierNop || !c.Obfuscate {
		t.Errorf("RhoHammer config: %s", s)
	}
	for _, b := range []Barrier{BarrierNone, BarrierNop, BarrierLFence, BarrierMFence, BarrierCPUID} {
		if b.String() == "" {
			t.Error("empty barrier name")
		}
	}
	for _, in := range []Instr{InstrLoad, InstrPrefetchT0, InstrPrefetchT1, InstrPrefetchT2, InstrPrefetchNTA} {
		if in.String() == "" {
			t.Error("empty instruction name")
		}
	}
	if InstrLoad.IsPrefetch() || !InstrPrefetchNTA.IsPrefetch() {
		t.Error("IsPrefetch classification")
	}
	if InstrPrefetchT0.Hint() != cpu.HintT0 || InstrPrefetchNTA.Hint() != cpu.HintNTA {
		t.Error("hint mapping")
	}
}

// The headline per-architecture behavior matrix of the paper:
// baselines flip on Comet/Rocket, die on Alder/Raptor; ρHammer's
// counter-speculation prefetching flips everywhere.
func TestAttackLandscape(t *testing.T) {
	if testing.Short() {
		t.Skip("long landscape test")
	}
	pat := pattern.KnownGood()
	for _, c := range []struct {
		arch       *arch.Arch
		blWorks    bool
		singleNops int
	}{
		{arch.CometLake(), true, 190},
		{arch.RocketLake(), true, 200},
		{arch.AlderLake(), false, 230},
		{arch.RaptorLake(), false, 260},
	} {
		s := newTestSession(t, c.arch, arch.DIMMS3())
		bl, err := s.HammerPatternFor(pat, Baseline(), 0, 5000, 200e6)
		if err != nil {
			t.Fatal(err)
		}
		s.ResetDevice()
		rho, err := s.HammerPatternFor(pat, RhoHammer(c.arch, 1, c.singleNops), 0, 5000, 200e6)
		if err != nil {
			t.Fatal(err)
		}
		if got := bl.FlipCount() > 0; got != c.blWorks {
			t.Errorf("%s: baseline flips=%d, want working=%v", c.arch.Name, bl.FlipCount(), c.blWorks)
		}
		if rho.FlipCount() == 0 {
			t.Errorf("%s: rhoHammer produced no flips", c.arch.Name)
		}
		if c.blWorks && rho.FlipCount() < bl.FlipCount() {
			t.Errorf("%s: rhoHammer (%d) should at least match baseline (%d)",
				c.arch.Name, rho.FlipCount(), bl.FlipCount())
		}
	}
}

// Load-based hammering must stay dead on Raptor Lake across the whole
// counter-speculation NOP range (§4.4).
func TestLoadCounterSpecStillFailsOnRaptor(t *testing.T) {
	if testing.Short() {
		t.Skip("long NOP scan")
	}
	pat := pattern.KnownGood()
	for _, nops := range []int{0, 100, 300, 600, 1000} {
		s := newTestSession(t, arch.RaptorLake(), arch.DIMMS3())
		cfg := Config{Instr: InstrLoad, Banks: 1, Barrier: BarrierNop, Nops: nops, Obfuscate: true}
		res, err := s.HammerPatternFor(pat, cfg, 0, 5000, 200e6)
		if err != nil {
			t.Fatal(err)
		}
		if res.FlipCount() > 0 {
			t.Errorf("load hammering with %d NOPs flipped %d bits on Raptor Lake", nops, res.FlipCount())
		}
	}
}

func TestUniformDoubleSidedDefeatedByTRR(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS4())
	res, err := s.HammerPatternFor(pattern.DoubleSided(64), Baseline(), 0, 5000, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlipCount() != 0 {
		t.Errorf("TRR failed against uniform double-sided: %d flips", res.FlipCount())
	}
	if s.Dev.TRREvents() == 0 {
		t.Error("TRR never fired")
	}
}

func TestMultiBankSpreadsActivations(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS3())
	pat := pattern.KnownGood()
	res, err := s.HammerPattern(pat, Config{Instr: InstrPrefetchT2, Banks: 3, Barrier: BarrierNop, Nops: 70, Obfuscate: true}, 0, 5000, 300_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.ACTs == 0 {
		t.Fatal("no activations")
	}
	for bank := 0; bank < 3; bank++ {
		if s.Dev.ActCount(bank, 5000) == 0 {
			t.Errorf("bank %d received no activations on the pattern base row", bank)
		}
	}
	if s.Dev.ActCount(3, 5000) != 0 {
		t.Error("bank outside the configured set was hammered")
	}
}

func TestHammerDeterministicInSeed(t *testing.T) {
	run := func() (uint64, int) {
		s := newTestSession(t, arch.RaptorLake(), arch.DIMMS3())
		res, err := s.HammerPatternFor(pattern.KnownGood(), RhoHammer(s.Arch, 1, 260), 0, 5000, 150e6)
		if err != nil {
			t.Fatal(err)
		}
		return res.ACTs, res.FlipCount()
	}
	a1, f1 := run()
	a2, f2 := run()
	if a1 != a2 || f1 != f2 {
		t.Errorf("same seed diverged: ACTs %d/%d flips %d/%d", a1, a2, f1, f2)
	}
}

func TestHammerForDurationBudget(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS3())
	res, err := s.HammerPatternFor(pattern.KnownGood(), Baseline(), 0, 5000, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeNS < 50e6 {
		t.Errorf("run shorter than budget: %.1fms", res.TimeNS/1e6)
	}
	if res.TimeNS > 75e6 {
		t.Errorf("run overshot budget badly: %.1fms", res.TimeNS/1e6)
	}
}

func TestResultAccessors(t *testing.T) {
	r := Result{}
	r.TimeNS = 1e9
	r.ACTs = 5_000_000
	if r.ActivationsPerSecond() != 5e6 {
		t.Errorf("act rate %v", r.ActivationsPerSecond())
	}
	if (Result{}).ActivationsPerSecond() != 0 {
		t.Error("zero-time act rate")
	}
	if r.FlipCount() != 0 {
		t.Error("FlipCount on empty")
	}
}

func TestPTRRSuppressesFlips(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS4())
	s.EnablePTRR(true)
	res, err := s.HammerPatternFor(pattern.KnownGood(), Baseline(), 0, 5000, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlipCount() != 0 {
		t.Errorf("pTRR enabled but %d flips observed", res.FlipCount())
	}
}

func TestTuneNopsFindsInteriorOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("long tuning sweep")
	}
	s := newTestSession(t, arch.RaptorLake(), arch.DIMMS3())
	base := Config{Instr: InstrPrefetchT2, Banks: 1, Obfuscate: true}
	tune, err := s.TuneNops(pattern.KnownGood(), base, 1000, 100, 150e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tune.BestFlips == 0 {
		t.Fatal("tuning found no flips at any NOP count")
	}
	if tune.BestNops == 0 || tune.BestNops == 1000 {
		t.Errorf("optimum at boundary (%d): expected interior inverted-U", tune.BestNops)
	}
	if tune.Curve[0].Flips != 0 {
		t.Errorf("zero NOPs should give zero flips on Raptor Lake, got %d", tune.Curve[0].Flips)
	}
	last := tune.Curve[len(tune.Curve)-1]
	if last.Flips > tune.BestFlips/2 {
		t.Errorf("flips at 1000 NOPs (%d) should fall well below optimum (%d)", last.Flips, tune.BestFlips)
	}
}

func TestFuzzReportConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign")
	}
	s := newTestSession(t, arch.CometLake(), arch.DIMMS4())
	rep, err := s.Fuzz(RhoHammer(s.Arch, 3, 70), FuzzOptions{Patterns: 6, Locations: 1, DurationNS: 120e6})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tried != 6 {
		t.Errorf("tried = %d", rep.Tried)
	}
	if rep.Effective > rep.Tried {
		t.Error("effective > tried")
	}
	if rep.Best.Flips > rep.TotalFlips {
		t.Error("best pattern exceeds total")
	}
	if rep.Effective > 0 && rep.Best.Pattern == nil {
		t.Error("effective patterns but no best recorded")
	}
}

func TestSyncRefreshAlignsStart(t *testing.T) {
	s := newTestSession(t, arch.CometLake(), arch.DIMMS3())
	// Desynchronize the engine's clock with a first short run.
	cfg := Config{Instr: InstrPrefetchT2, Banks: 1}
	if _, err := s.HammerPattern(pattern.KnownGood(), cfg, 0, 5000, 20_000); err != nil {
		t.Fatal(err)
	}
	before := s.Ctrl.NextRefresh()
	cfg.SyncRefresh = true
	res, err := s.HammerPattern(pattern.KnownGood(), cfg, 0, 5000, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	// The synchronized run must begin exactly at the REF boundary that
	// was pending when it was issued.
	if res.StartTime != before {
		t.Errorf("synchronized start %.1f != pending REF %.1f", res.StartTime, before)
	}
}

func TestRefineNeverRegresses(t *testing.T) {
	if testing.Short() {
		t.Skip("refinement rounds")
	}
	s := newTestSession(t, arch.CometLake(), arch.DIMMS4())
	cfg := RhoHammer(s.Arch, 3, 70)
	res, err := s.Refine(pattern.KnownGood(), cfg, 3, 2, 120e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Pattern == nil {
		t.Fatal("no best pattern recorded")
	}
	if res.Rounds == 0 {
		t.Error("no rounds executed")
	}
	// The refined pattern must score at least the baseline (hill
	// climbing never accepts regressions).
	if res.Improvements > 0 && res.Best.Pattern.ID == pattern.KnownGood().ID {
		t.Error("improvements recorded but pattern unchanged")
	}
	if err := res.Best.Pattern.Validate(); err != nil {
		t.Errorf("refined pattern invalid: %v", err)
	}
}
