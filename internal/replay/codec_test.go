package replay

import (
	"errors"
	"strings"
	"testing"
)

// s3opts decodes against the S3 module profile (32 banks, 2^16 rows).
func s3opts() Options { return Options{DIMM: "S3"} }

// TestDecodeFailureModes pins every rejection path of the codec: each
// malformed trace yields a typed *DecodeError carrying the offending
// line number — never a panic, never an untyped error.
func TestDecodeFailureModes(t *testing.T) {
	act := `{"seq":0,"layer":"dram","kind":"act","bank":1,"row":5}`
	cases := []struct {
		name  string
		trace string
		opts  Options
		kind  ErrorKind
		line  int
	}{
		{
			name:  "truncated JSON line",
			trace: act + "\n" + `{"seq":1,"layer":"dram","kind":"a`,
			opts:  s3opts(),
			kind:  ErrSyntax,
			line:  2,
		},
		{
			name:  "unknown field is strict",
			trace: `{"seq":0,"layer":"dram","kind":"act","bank":1,"row":5,"bogus":1}`,
			opts:  s3opts(),
			kind:  ErrSyntax,
			line:  1,
		},
		{
			name:  "wrong field type",
			trace: `{"seq":0,"layer":"dram","kind":"act","bank":"one","row":5}`,
			opts:  s3opts(),
			kind:  ErrSyntax,
			line:  1,
		},
		{
			name:  "unknown event kind",
			trace: act + "\n" + `{"seq":1,"layer":"dram","kind":"zap"}`,
			opts:  s3opts(),
			kind:  ErrUnknownKind,
			line:  2,
		},
		{
			name:  "missing kind",
			trace: `{"seq":0,"layer":"dram"}`,
			opts:  s3opts(),
			kind:  ErrUnknownKind,
			line:  1,
		},
		{
			name:  "bank out of range",
			trace: `{"seq":0,"layer":"dram","kind":"act","bank":32,"row":5}`,
			opts:  s3opts(),
			kind:  ErrBankRange,
			line:  1,
		},
		{
			name:  "negative bank",
			trace: `{"seq":0,"layer":"dram","kind":"act","bank":-1,"row":5}`,
			opts:  s3opts(),
			kind:  ErrBankRange,
			line:  1,
		},
		{
			name:  "row out of range",
			trace: `{"seq":0,"layer":"dram","kind":"act","bank":1,"row":65536}`,
			opts:  s3opts(),
			kind:  ErrRowRange,
			line:  1,
		},
		{
			name:  "flip annotation addresses are validated too",
			trace: act + "\n" + `{"seq":1,"layer":"dram","kind":"flip","bank":1,"row":70000,"n":3}`,
			opts:  s3opts(),
			kind:  ErrRowRange,
			line:  2,
		},
		{
			name:  "oversize line",
			trace: act + "\n" + `{"seq":1,"layer":"dram","kind":"act","bank":1,"row":5}` + strings.Repeat(" ", 300),
			opts:  Options{DIMM: "S3", MaxLineBytes: 128},
			kind:  ErrLineTooLong,
			line:  2,
		},
		{
			name:  "too many events",
			trace: act + "\n" + act + "\n" + act,
			opts:  Options{DIMM: "S3", MaxEvents: 2},
			kind:  ErrTooManyEvents,
			line:  3,
		},
		{
			name:  "truncated ring marker",
			trace: act + "\n" + `{"kind":"truncated","n":17}`,
			opts:  s3opts(),
			kind:  ErrTruncated,
			line:  2,
		},
		{
			name:  "empty trace",
			trace: "",
			opts:  s3opts(),
			kind:  ErrEmpty,
			line:  0,
		},
		{
			name:  "annotations only",
			trace: `{"seq":0,"layer":"hammer","kind":"pattern","n":3}`,
			opts:  s3opts(),
			kind:  ErrEmpty,
			line:  1,
		},
		{
			name: "mixed sessions without a selector",
			trace: `{"session":"session-a","seq":0,"layer":"dram","kind":"act","bank":1,"row":5}` + "\n" +
				`{"session":"session-b","seq":0,"layer":"dram","kind":"act","bank":1,"row":6}`,
			opts: s3opts(),
			kind: ErrMultiSession,
			line: 2,
		},
		{
			name:  "no module profile",
			trace: act,
			opts:  Options{},
			kind:  ErrDIMM,
			line:  1,
		},
		{
			name:  "unknown module profile",
			trace: act,
			opts:  Options{DIMM: "Z9"},
			kind:  ErrDIMM,
			line:  1,
		},
		{
			name:  "unsupported header version",
			trace: `{"rhohammer_trace":"v999","dimm":"S3"}` + "\n" + act,
			kind:  ErrVersion,
			line:  1,
		},
		{
			name:  "malformed header",
			trace: `{"rhohammer_trace":"v1","dimm":"S3","wat":true}` + "\n" + act,
			kind:  ErrHeader,
			line:  1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f, err := DecodeBytes([]byte(tc.trace), tc.opts)
			if err == nil {
				t.Fatalf("Decode accepted the trace: %+v", f)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("error is %T, want *DecodeError: %v", err, err)
			}
			if de.Kind != tc.kind {
				t.Errorf("kind = %q, want %q (%v)", de.Kind, tc.kind, de)
			}
			if de.Line != tc.line {
				t.Errorf("line = %d, want %d (%v)", de.Line, tc.line, de)
			}
		})
	}
}

// TestDecodeValidTraces pins the accepting paths: plain dumps, headered
// files, session selection, annotation bookkeeping, and the option/
// header precedence for DIMM and seed.
func TestDecodeValidTraces(t *testing.T) {
	seed := int64(99)
	t.Run("plain dump with options", func(t *testing.T) {
		trace := `{"seq":0,"t_ns":10,"layer":"dram","kind":"act","bank":1,"row":5}
{"seq":1,"t_ns":20,"layer":"dram","kind":"ref"}
{"seq":2,"layer":"dram","kind":"reset"}
{"seq":3,"t_ns":30,"layer":"dram","kind":"flip","bank":1,"row":6,"n":43}
{"seq":4,"layer":"hammer","kind":"pattern","n":2}
`
		f, err := DecodeBytes([]byte(trace), Options{DIMM: "S3", Seed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		if f.DIMMID != "S3" || f.Seed != 99 {
			t.Errorf("resolved (dimm, seed) = (%q, %d)", f.DIMMID, f.Seed)
		}
		want := []Cmd{
			{Kind: CmdAct, Bank: 1, Row: 5, At: 10},
			{Kind: CmdRef, At: 20},
			{Kind: CmdReset},
		}
		if len(f.Cmds) != len(want) {
			t.Fatalf("decoded %d commands, want %d", len(f.Cmds), len(want))
		}
		for i, c := range want {
			if f.Cmds[i] != c {
				t.Errorf("cmd %d = %+v, want %+v", i, f.Cmds[i], c)
			}
		}
		if len(f.RecordedFlips) != 1 || f.RecordedFlips[0] != (FlipKey{Bank: 1, Row: 6, N: 43, At: 30}) {
			t.Errorf("recorded flips = %+v", f.RecordedFlips)
		}
		if f.Annotations != 1 {
			t.Errorf("annotations = %d, want 1", f.Annotations)
		}
		if f.Hash == "" {
			t.Error("no content hash")
		}
	})
	t.Run("header supplies dimm and seed", func(t *testing.T) {
		trace := HeaderLine("S4", 1234) + `{"seq":0,"layer":"dram","kind":"act","bank":0,"row":1}` + "\n"
		f, err := DecodeBytes([]byte(trace), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if f.DIMMID != "S4" || f.Seed != 1234 {
			t.Errorf("resolved (dimm, seed) = (%q, %d), want (S4, 1234)", f.DIMMID, f.Seed)
		}
	})
	t.Run("options override the header", func(t *testing.T) {
		trace := HeaderLine("S4", 1234) + `{"seq":0,"layer":"dram","kind":"act","bank":0,"row":1}` + "\n"
		f, err := DecodeBytes([]byte(trace), Options{DIMM: "S1", Seed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		if f.DIMMID != "S1" || f.Seed != 99 {
			t.Errorf("resolved (dimm, seed) = (%q, %d), want (S1, 99)", f.DIMMID, f.Seed)
		}
	})
	t.Run("session selector filters a collector dump", func(t *testing.T) {
		trace := `{"session":"session-a","seq":0,"layer":"dram","kind":"act","bank":1,"row":5}
{"session":"session-b","seq":0,"layer":"dram","kind":"act","bank":2,"row":6}
{"session":"session-a","seq":1,"layer":"dram","kind":"ref"}
`
		f, err := DecodeBytes([]byte(trace), Options{DIMM: "S3", Session: "session-a"})
		if err != nil {
			t.Fatal(err)
		}
		if len(f.Cmds) != 2 || f.Cmds[0].Bank != 1 || f.Cmds[1].Kind != CmdRef {
			t.Errorf("selected commands = %+v", f.Cmds)
		}
	})
	t.Run("hash covers the replay parameters", func(t *testing.T) {
		trace := `{"seq":0,"layer":"dram","kind":"act","bank":1,"row":5}`
		a, err := DecodeBytes([]byte(trace), Options{DIMM: "S3"})
		if err != nil {
			t.Fatal(err)
		}
		b, err := DecodeBytes([]byte(trace), Options{DIMM: "S4"})
		if err != nil {
			t.Fatal(err)
		}
		c, err := DecodeBytes([]byte(trace), Options{DIMM: "S3", Seed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		if a.Hash == b.Hash || a.Hash == c.Hash {
			t.Errorf("hash ignores replay parameters: %s / %s / %s", a.Hash, b.Hash, c.Hash)
		}
		a2, err := DecodeBytes([]byte(trace), Options{DIMM: "S3"})
		if err != nil {
			t.Fatal(err)
		}
		if a.Hash != a2.Hash {
			t.Errorf("hash not stable: %s != %s", a.Hash, a2.Hash)
		}
	})
}
