// Package replay turns recorded ACT/REF traces into first-class
// workloads: a strict JSONL codec for the obs trace schema plus an
// engine that feeds a decoded trace into the dram substrate with the
// refmodel differential oracle attached, producing a deterministic
// verdict (flips, TRR triggers, counter snapshot, first-divergence
// report).
//
// Any frontend that can emit the schema — a live hammer session via
// internal/obs, a gem5-class simulator, a hardware ACT logger, a fuzzer
// — becomes a client of the repository's differential harness: given
// the same DIMM profile and device seed, a replay reproduces the
// recording session's exact flip set, and the reference model audits
// every refresh boundary on the way. internal/serve exposes the engine
// as POST /v1/replay; cmd/replay is the CLI.
package replay

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"rhohammer/internal/arch"
)

// Version is the trace format version the codec speaks. A trace file
// may open with one header line carrying it (see HeaderLine); files
// without a header — obs.Trace.WriteJSONL output — are implicitly
// this version and name their module profile via Options.DIMM.
const Version = "v1"

// Decode bounds, overridable per call via Options. They exist so a
// hostile or corrupted trace cannot balloon memory: the decoder fails
// with a typed error instead of buffering without limit.
const (
	// DefaultMaxEvents bounds the number of event lines accepted.
	DefaultMaxEvents = 1 << 20
	// DefaultMaxLineBytes bounds one JSONL line.
	DefaultMaxLineBytes = 1 << 16
)

// ErrorKind classifies a DecodeError. Every way a trace can be
// rejected has its own kind, so callers (and tests) can assert on the
// failure mode instead of matching message strings.
type ErrorKind string

const (
	// ErrSyntax is a line that is not a valid JSON event object
	// (truncated JSON, wrong field types, unknown fields).
	ErrSyntax ErrorKind = "syntax"
	// ErrHeader is a malformed header line.
	ErrHeader ErrorKind = "header"
	// ErrVersion is a header naming a version this codec does not speak.
	ErrVersion ErrorKind = "version"
	// ErrUnknownKind is an event kind outside the trace schema.
	ErrUnknownKind ErrorKind = "unknown-kind"
	// ErrBankRange / ErrRowRange are addresses outside the module
	// profile's geometry.
	ErrBankRange ErrorKind = "bank-range"
	ErrRowRange  ErrorKind = "row-range"
	// ErrLineTooLong is a line exceeding Options.MaxLineBytes.
	ErrLineTooLong ErrorKind = "line-too-long"
	// ErrTooManyEvents is a trace exceeding Options.MaxEvents.
	ErrTooManyEvents ErrorKind = "too-many-events"
	// ErrTruncated is a trace whose ring dropped events (the collector's
	// "truncated" marker): an incomplete command stream cannot replay to
	// the session's state, so it is refused rather than silently wrong.
	ErrTruncated ErrorKind = "truncated"
	// ErrDIMM means no module profile was resolvable (neither Options
	// nor a header named one, or the named ID is unknown).
	ErrDIMM ErrorKind = "dimm"
	// ErrEmpty is a trace with no act/ref commands at all.
	ErrEmpty ErrorKind = "empty"
	// ErrMultiSession is a collector dump mixing several sessions
	// without Options.Session selecting one.
	ErrMultiSession ErrorKind = "multi-session"
)

// DecodeError is the typed decode failure: the 1-based line number the
// trace was rejected at, the failure kind, and a human-readable detail.
type DecodeError struct {
	Line int
	Kind ErrorKind
	Msg  string
}

// Error implements error.
func (e *DecodeError) Error() string {
	if e.Line <= 0 {
		return fmt.Sprintf("replay: %s: %s", e.Kind, e.Msg)
	}
	return fmt.Sprintf("replay: line %d: %s: %s", e.Line, e.Kind, e.Msg)
}

// Options parameterizes Decode. The zero value accepts a headered
// single-session trace at the default bounds.
type Options struct {
	// DIMM names the module profile (arch.DIMMByID) the trace was
	// recorded against, overriding the header. Required when the trace
	// has no header (obs.Trace.WriteJSONL output).
	DIMM string
	// Seed is the dram.Device seed the trace was recorded against,
	// overriding the header. For a trace recorded from a hammer session
	// this is hammer.DeviceSeed(sessionSeed), not the session seed
	// itself. Nil falls back to the header, then to 0.
	Seed *int64
	// Session selects one session of a collector dump
	// (obs.Collector.WriteJSONL stamps each line with a "session" key);
	// lines of other sessions are skipped. Without it, a dump mixing
	// sessions is an ErrMultiSession.
	Session string
	// MaxEvents / MaxLineBytes override the Default* bounds (<= 0 keeps
	// the default).
	MaxEvents    int
	MaxLineBytes int
}

// CmdKind is a replayable substrate command.
type CmdKind uint8

const (
	// CmdAct is one ACT on (Bank, Row) at time At.
	CmdAct CmdKind = iota
	// CmdRef is one REF command at time At.
	CmdRef
	// CmdReset clears disturbance state and recorded flips (the
	// attacker re-initializing victim memory between trials).
	CmdReset
)

// Cmd is one decoded substrate command, in trace order.
type Cmd struct {
	Kind CmdKind
	Bank int
	Row  uint64
	At   float64
}

// FlipKey identifies one recorded flip annotation: the (bank, row)
// address, the obs encoding N = byte*8 + bit, and the simulation
// timestamp it fired at.
type FlipKey struct {
	Bank int     `json:"bank"`
	Row  uint64  `json:"row"`
	N    int64   `json:"n"`
	At   float64 `json:"t_ns"`
}

// File is one decoded trace: the resolved module profile and device
// seed, the replayable command stream, and the flip annotations the
// recording session observed (the oracle the round-trip is checked
// against).
type File struct {
	// Version is the trace format version ("v1").
	Version string
	// DIMM is the resolved module profile; DIMMID its arch ID.
	DIMM   *arch.DIMM
	DIMMID string
	// Seed is the dram.Device seed replays run under.
	Seed int64
	// Cmds is the replayable command stream in trace order.
	Cmds []Cmd
	// RecordedFlips are the trace's flip annotations, in trace order.
	RecordedFlips []FlipKey
	// Annotations counts the non-command, non-flip events retained for
	// bookkeeping (trr, blast, pattern, tune).
	Annotations int
	// Hash is the hex sha256 of the raw trace bytes plus the resolved
	// (dimm, seed) — the content identity replay jobs are named and
	// cached by.
	Hash string
}

// HeaderLine renders the optional first line of a trace file, binding
// the format version, module profile and device seed into the artifact
// itself so it replays without out-of-band options.
func HeaderLine(dimmID string, seed int64) string {
	return fmt.Sprintf("{\"rhohammer_trace\":%q,\"dimm\":%q,\"seed\":%d}\n", Version, dimmID, seed)
}

// eventLine is the wire shape of one trace line: obs.Event plus the
// collector's per-line session stamp. Decoding is strict — unknown
// fields are a syntax error, so schema drift is caught at the line it
// happens on.
type eventLine struct {
	Session string  `json:"session"`
	Seq     uint64  `json:"seq"`
	TimeNS  float64 `json:"t_ns"`
	Layer   string  `json:"layer"`
	Kind    string  `json:"kind"`
	Bank    int     `json:"bank"`
	Row     uint64  `json:"row"`
	N       int64   `json:"n"`
}

// DecodeBytes is Decode over an in-memory trace.
func DecodeBytes(data []byte, opts Options) (*File, error) {
	return Decode(bytes.NewReader(data), opts)
}

// Decode parses one JSONL trace under the given options. Any rejection
// is a *DecodeError carrying the offending line number and a typed
// kind; the decoder never panics on malformed input (FuzzTraceDecode
// pins this).
func Decode(r io.Reader, opts Options) (*File, error) {
	maxEvents := opts.MaxEvents
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	maxLine := opts.MaxLineBytes
	if maxLine <= 0 {
		maxLine = DefaultMaxLineBytes
	}

	hash := sha256.New()
	sc := bufio.NewScanner(io.TeeReader(r, hash))
	// The scanner's token limit is max(maxLine, cap(buf)), so the
	// initial buffer must not exceed the configured line bound.
	initial := 4096
	if initial > maxLine {
		initial = maxLine
	}
	sc.Buffer(make([]byte, 0, initial), maxLine)

	f := &File{Version: Version}
	var (
		line        int
		events      int
		seenContent bool
		headerDIMM  string
		headerSeed  *int64
		sessionSet  bool
		curSession  string
	)
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if !seenContent && bytes.Contains(raw, []byte(`"rhohammer_trace"`)) {
			seenContent = true
			var hd struct {
				Version string `json:"rhohammer_trace"`
				DIMM    string `json:"dimm"`
				Seed    *int64 `json:"seed"`
			}
			dec := json.NewDecoder(bytes.NewReader(raw))
			dec.DisallowUnknownFields()
			if err := dec.Decode(&hd); err != nil {
				return nil, &DecodeError{Line: line, Kind: ErrHeader, Msg: err.Error()}
			}
			if hd.Version != Version {
				return nil, &DecodeError{Line: line, Kind: ErrVersion,
					Msg: fmt.Sprintf("unsupported trace version %q (this codec speaks %q)", hd.Version, Version)}
			}
			headerDIMM, headerSeed = hd.DIMM, hd.Seed
			continue
		}
		seenContent = true

		var ev eventLine
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, &DecodeError{Line: line, Kind: ErrSyntax, Msg: err.Error()}
		}
		// Session routing: an explicit filter skips other sessions; with
		// no filter, the first event line fixes the session and any later
		// mix is an error (replaying interleaved sessions into one device
		// would be meaningless).
		if opts.Session != "" {
			if ev.Session != opts.Session {
				continue
			}
		} else if !sessionSet {
			sessionSet, curSession = true, ev.Session
		} else if ev.Session != curSession {
			return nil, &DecodeError{Line: line, Kind: ErrMultiSession,
				Msg: fmt.Sprintf("trace mixes sessions %q and %q (set Options.Session to select one)", curSession, ev.Session)}
		}

		events++
		if events > maxEvents {
			return nil, &DecodeError{Line: line, Kind: ErrTooManyEvents,
				Msg: fmt.Sprintf("trace exceeds %d events", maxEvents)}
		}

		// Geometry is resolved at the first event line so address range
		// checks can run as lines stream by.
		if f.DIMM == nil {
			if err := f.resolveDIMM(line, opts.DIMM, headerDIMM); err != nil {
				return nil, err
			}
		}

		switch ev.Kind {
		case "act":
			if err := f.checkAddr(line, ev.Bank, ev.Row); err != nil {
				return nil, err
			}
			f.Cmds = append(f.Cmds, Cmd{Kind: CmdAct, Bank: ev.Bank, Row: ev.Row, At: ev.TimeNS})
		case "ref":
			f.Cmds = append(f.Cmds, Cmd{Kind: CmdRef, At: ev.TimeNS})
		case "reset":
			f.Cmds = append(f.Cmds, Cmd{Kind: CmdReset, At: ev.TimeNS})
		case "flip":
			if err := f.checkAddr(line, ev.Bank, ev.Row); err != nil {
				return nil, err
			}
			f.RecordedFlips = append(f.RecordedFlips, FlipKey{Bank: ev.Bank, Row: ev.Row, N: ev.N, At: ev.TimeNS})
		case "trr", "blast":
			if err := f.checkAddr(line, ev.Bank, ev.Row); err != nil {
				return nil, err
			}
			f.Annotations++
		case "pattern", "tune":
			f.Annotations++
		case "truncated":
			return nil, &DecodeError{Line: line, Kind: ErrTruncated,
				Msg: fmt.Sprintf("trace ring dropped %d events; a truncated stream cannot replay to the session's state", ev.N)}
		default:
			return nil, &DecodeError{Line: line, Kind: ErrUnknownKind,
				Msg: fmt.Sprintf("unknown event kind %q", ev.Kind)}
		}
	}
	if err := sc.Err(); err != nil {
		if errors.Is(err, bufio.ErrTooLong) {
			return nil, &DecodeError{Line: line + 1, Kind: ErrLineTooLong,
				Msg: fmt.Sprintf("line exceeds %d bytes", maxLine)}
		}
		return nil, fmt.Errorf("replay: reading trace: %w", err)
	}
	if len(f.Cmds) == 0 {
		return nil, &DecodeError{Line: line, Kind: ErrEmpty, Msg: "trace contains no act/ref commands"}
	}

	switch {
	case opts.Seed != nil:
		f.Seed = *opts.Seed
	case headerSeed != nil:
		f.Seed = *headerSeed
	}
	// The content identity covers the raw bytes and the resolved
	// replay parameters: the same trace under a different profile or
	// seed is a different workload (and a different cache key).
	fmt.Fprintf(hash, "|dimm=%s|seed=%d", f.DIMMID, f.Seed)
	f.Hash = fmt.Sprintf("%x", hash.Sum(nil))
	return f, nil
}

// resolveDIMM fixes the module profile from the options or the header.
func (f *File) resolveDIMM(line int, optDIMM, headerDIMM string) error {
	id := optDIMM
	if id == "" {
		id = headerDIMM
	}
	if id == "" {
		return &DecodeError{Line: line, Kind: ErrDIMM,
			Msg: "no module profile: set Options.DIMM or add a header line (see HeaderLine)"}
	}
	d, ok := arch.DIMMByID(id)
	if !ok {
		return &DecodeError{Line: line, Kind: ErrDIMM, Msg: fmt.Sprintf("unknown dimm %q", id)}
	}
	f.DIMM, f.DIMMID = d, id
	return nil
}

// checkAddr validates an event's address against the module geometry.
func (f *File) checkAddr(line, bank int, row uint64) error {
	if banks := f.DIMM.TotalBanks(); bank < 0 || bank >= banks {
		return &DecodeError{Line: line, Kind: ErrBankRange,
			Msg: fmt.Sprintf("bank %d outside [0, %d)", bank, banks)}
	}
	if rows := f.DIMM.RowsPerBank; row >= rows {
		return &DecodeError{Line: line, Kind: ErrRowRange,
			Msg: fmt.Sprintf("row %d outside [0, %d)", row, rows)}
	}
	return nil
}
