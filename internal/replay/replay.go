package replay

import (
	"fmt"
	"io"

	"rhohammer/internal/campaign"
	"rhohammer/internal/dram"
	"rhohammer/internal/refmodel"
)

// verdictFlipCap bounds the per-flip detail carried in a Verdict so a
// long trace cannot balloon the envelope; FlipCount always holds the
// full total and FlipsTruncated records that the list was cut.
const verdictFlipCap = 512

// FlipRecord is one replayed bit flip.
type FlipRecord struct {
	Bank      int     `json:"bank"`
	Row       uint64  `json:"row"`
	Byte      int     `json:"byte"`
	Bit       int     `json:"bit"`
	OneToZero bool    `json:"one_to_zero"`
	TimeNS    float64 `json:"t_ns"`
}

// Verdict is the canonical replay outcome: what the command stream did
// to a fresh device under the differential oracle. It is deterministic
// in (trace, DIMM, seed) — the serve layer's byte-identity contract
// extends to replay jobs unchanged.
type Verdict struct {
	// DIMM and Seed echo the resolved replay parameters.
	DIMM string `json:"dimm"`
	Seed int64  `json:"seed"`
	// Commands / Acts / Refs / Resets count the replayed stream.
	Commands int `json:"commands"`
	Acts     int `json:"acts"`
	Refs     int `json:"refs"`
	Resets   int `json:"resets,omitempty"`
	// Counters is the substrate counter snapshot, accumulated across
	// reset boundaries so mid-trace resets do not erase history.
	Counters dram.Counters `json:"counters"`
	// FlipCount is the total replayed flips; Flips carries the first
	// verdictFlipCap of them in event order.
	FlipCount      int          `json:"flip_count"`
	Flips          []FlipRecord `json:"flips,omitempty"`
	FlipsTruncated bool         `json:"flips_truncated,omitempty"`
	// RecordedFlips is how many flip annotations the trace carried;
	// RecordedMissing how many of them the replay failed to reproduce
	// in order (0 = the recorded flip set is a subsequence of the
	// replayed one, i.e. the round-trip holds).
	RecordedFlips   int `json:"recorded_flips"`
	RecordedMissing int `json:"recorded_missing"`
	// Divergence is the refmodel auditor's first-divergence report, or
	// empty when the fast substrate and the reference model agree.
	Divergence string `json:"divergence,omitempty"`
}

// Run replays a decoded trace into a fresh dram.Device with the
// refmodel auditor attached and reports the verdict. It never errors:
// oracle disagreement is data (Verdict.Divergence), not a failure to
// replay.
func Run(f *File) *Verdict {
	dev := dram.NewDevice(f.DIMM, f.Seed)
	aud := refmodel.NewAuditor(dev)
	v := &Verdict{DIMM: f.DIMMID, Seed: f.Seed, Commands: len(f.Cmds)}

	var flips []dram.Flip
	var acc dram.Counters
	accumulate := func() {
		c := dev.Counters()
		acc.ACTs += c.ACTs
		acc.REFs += c.REFs
		acc.TRRTriggers += c.TRRTriggers
		acc.RFMEvents += c.RFMEvents
		acc.RowSwapRelocations += c.RowSwapRelocations
		acc.Flips += c.Flips
	}
	for _, c := range f.Cmds {
		switch c.Kind {
		case CmdAct:
			dev.Activate(c.Bank, c.Row, c.At)
			v.Acts++
		case CmdRef:
			dev.Refresh(c.At)
			v.Refs++
		case CmdReset:
			// Reset recycles the device's flip slice and zeroes its
			// counters, so both are snapshotted first.
			flips = append(flips, dev.Flips()...)
			accumulate()
			dev.Reset()
			v.Resets++
		}
	}
	flips = append(flips, dev.Flips()...)
	accumulate()
	if err := aud.Check(); err != nil {
		v.Divergence = err.Error()
	}

	v.Counters = acc
	v.FlipCount = len(flips)
	n := len(flips)
	if n > verdictFlipCap {
		n, v.FlipsTruncated = verdictFlipCap, true
	}
	for _, fl := range flips[:n] {
		v.Flips = append(v.Flips, FlipRecord{
			Bank: fl.Bank, Row: fl.Row, Byte: fl.ByteInRow, Bit: int(fl.Bit),
			OneToZero: fl.OneToZero, TimeNS: fl.Time,
		})
	}
	v.RecordedFlips = len(f.RecordedFlips)
	v.RecordedMissing = missingRecorded(f.RecordedFlips, flips)
	return v
}

// missingRecorded counts recorded flip annotations that the replayed
// flip sequence does not contain as an in-order subsequence. 0 means
// every flip the recording session logged reappeared, in order, in the
// replay.
func missingRecorded(rec []FlipKey, got []dram.Flip) int {
	missing, j := 0, 0
	for _, r := range rec {
		found := false
		for j < len(got) {
			g := got[j]
			j++
			if g.Bank == r.Bank && g.Row == r.Row &&
				int64(g.ByteInRow)*8+int64(g.Bit) == r.N && g.Time == r.At {
				found = true
				break
			}
		}
		if !found {
			missing++
		}
	}
	return missing
}

// Render implements experiments.Renderer so replay verdicts flow
// through the same text path as registered campaigns.
func (v *Verdict) Render(w io.Writer) {
	fmt.Fprintf(w, "replay: dimm=%s seed=%d commands=%d (%d acts, %d refs, %d resets)\n",
		v.DIMM, v.Seed, v.Commands, v.Acts, v.Refs, v.Resets)
	fmt.Fprintf(w, "  flips=%d recorded=%d missing=%d trr_triggers=%d\n",
		v.FlipCount, v.RecordedFlips, v.RecordedMissing, v.Counters.TRRTriggers)
	if v.Divergence != "" {
		fmt.Fprintf(w, "  DIVERGENCE: %s\n", v.Divergence)
	} else {
		fmt.Fprintf(w, "  oracle: fast substrate and reference model agree\n")
	}
}

// Spec wraps a decoded trace as a one-cell campaign spec named by the
// trace's content hash, so replays ride the existing campaign
// machinery untouched: the serve layer's sharding, cancellation,
// retention and result cache all apply, and the canonical envelope is
// byte-identical at any shard count because the single cell's seed
// derives from (spec seed, cell key) exactly like every other
// campaign.
func Spec(f *File) campaign.Spec {
	return campaign.Spec{
		Name: "replay/" + f.Hash[:12],
		Kind: campaign.KindAux,
		Seed: f.Seed,
		Cells: []campaign.Cell{{
			Key: "replay",
		}},
		Exec: func(campaign.Cell, int64) (any, error) {
			return Run(f), nil
		},
		Gather: func(results []any) any {
			return results[0]
		},
	}
}
