package replay

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/hammer"
	"rhohammer/internal/obs"
	"rhohammer/internal/pattern"
)

// recordSessionTrace hammers the vulnerable S4 module for 25 ms and
// returns the dumped trace plus the replay options that reproduce it —
// the shared fixture for the metamorphic properties below. 25 ms is the
// shortest run that reliably flips, so none of the properties hold
// vacuously.
func recordSessionTrace(t *testing.T) ([]byte, Options) {
	t.Helper()
	a := arch.RaptorLake()
	d := arch.DIMMS4()
	const seed = 12345
	s, err := hammer.NewSession(a, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(1 << 19)
	s.AttachTrace(tr)
	if _, err := s.HammerPatternFor(pattern.KnownGood(), hammer.RecommendedSingleBank(a), 0, 1000, 25e6); err != nil {
		t.Fatal(err)
	}
	if dr := tr.Dropped(); dr > 0 {
		t.Fatalf("trace ring dropped %d events", dr)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	devSeed := hammer.DeviceSeed(seed)
	return buf.Bytes(), Options{DIMM: d.ID, Seed: &devSeed}
}

// TestMetamorphicReplay checks the replay engine's metamorphic
// properties on a real recorded trace: determinism (same trace, same
// verdict, bit for bit), prefix monotonicity (replaying a prefix never
// reports flips the full replay lacks), and REF inertness (appending
// pure refresh commands after the last ACT adds no flips).
func TestMetamorphicReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("records a 25ms hammer session; skipped in -short")
	}
	trace, opts := recordSessionTrace(t)
	full := decodeAndRun(t, trace, opts)
	if full.FlipCount == 0 {
		t.Fatal("fixture trace replays to zero flips; properties would be vacuous")
	}

	t.Run("replay twice is bit-identical", func(t *testing.T) {
		again := decodeAndRun(t, trace, opts)
		a, err := json.Marshal(full)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("two replays of the same trace differ:\n%s\n%s", a, b)
		}
	})

	t.Run("prefix replay is a prefix of the full replay", func(t *testing.T) {
		lines := bytes.Split(bytes.TrimSuffix(trace, []byte("\n")), []byte("\n"))
		for _, frac := range []int{4, 2} {
			cut := len(lines) / frac * (frac - 1) // keep (frac-1)/frac of the lines
			prefix := append(bytes.Join(lines[:cut], []byte("\n")), '\n')
			// A prefix cut can strand flip annotations whose commands
			// follow the cut only in the other direction — annotations
			// trail their flips — so the decode stays well-formed.
			v := decodeAndRun(t, prefix, opts)
			if v.FlipCount > full.FlipCount {
				t.Fatalf("prefix (%d/%d lines) replayed %d flips, full replay only %d",
					cut, len(lines), v.FlipCount, full.FlipCount)
			}
			for i, fl := range v.Flips {
				if fl != full.Flips[i] {
					t.Errorf("prefix (%d/%d lines) flip %d = %+v diverges from full replay's %+v",
						cut, len(lines), i, fl, full.Flips[i])
				}
			}
		}
	})

	t.Run("appending pure REFs adds no flips", func(t *testing.T) {
		ext := append([]byte(nil), trace...)
		at := 30e6
		for i := 0; i < 1000; i++ {
			at += 7800
			ext = append(ext, fmt.Sprintf(`{"seq":%d,"t_ns":%g,"layer":"dram","kind":"ref"}`+"\n", 1<<30+i, at)...)
		}
		v := decodeAndRun(t, ext, opts)
		if v.Refs != full.Refs+1000 {
			t.Fatalf("extended trace replayed %d REFs, want %d", v.Refs, full.Refs+1000)
		}
		if v.FlipCount != full.FlipCount {
			t.Errorf("appending REFs changed the flip count: %d -> %d", full.FlipCount, v.FlipCount)
		}
		for i, fl := range v.Flips {
			if fl != full.Flips[i] {
				t.Errorf("appending REFs perturbed flip %d: %+v != %+v", i, fl, full.Flips[i])
			}
		}
		if v.Divergence != "" {
			t.Errorf("auditor diverged on the extended trace: %s", v.Divergence)
		}
	})
}

func decodeAndRun(t *testing.T, trace []byte, opts Options) *Verdict {
	t.Helper()
	f, err := DecodeBytes(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	return Run(f)
}
