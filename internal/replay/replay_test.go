package replay

import (
	"bytes"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/hammer"
	"rhohammer/internal/obs"
	"rhohammer/internal/pattern"
)

// TestRunAccumulatesAcrossResets pins the reset semantics of the
// engine: a reset command wipes the device mid-replay (as ResetDevice
// does between sweep locations), but the verdict's counters and flip
// set accumulate across every segment.
func TestRunAccumulatesAcrossResets(t *testing.T) {
	trace := `{"seq":0,"t_ns":1,"layer":"dram","kind":"act","bank":1,"row":5}
{"seq":1,"t_ns":2,"layer":"dram","kind":"act","bank":1,"row":7}
{"seq":2,"t_ns":3,"layer":"dram","kind":"ref"}
{"seq":3,"layer":"dram","kind":"reset"}
{"seq":4,"t_ns":4,"layer":"dram","kind":"act","bank":2,"row":9}
`
	f, err := DecodeBytes([]byte(trace), Options{DIMM: "S3"})
	if err != nil {
		t.Fatal(err)
	}
	v := Run(f)
	if v.Commands != 5 || v.Acts != 3 || v.Refs != 1 || v.Resets != 1 {
		t.Errorf("verdict tallies = (cmds %d, acts %d, refs %d, resets %d), want (5, 3, 1, 1)",
			v.Commands, v.Acts, v.Refs, v.Resets)
	}
	if v.Counters.ACTs != 3 || v.Counters.REFs != 1 {
		t.Errorf("device counters did not accumulate across the reset: %+v", v.Counters)
	}
	if v.Divergence != "" {
		t.Errorf("unexpected divergence: %s", v.Divergence)
	}
}

// TestSessionTraceRoundTrip is the tentpole property end to end: a
// trace dumped by obs.Trace.WriteJSONL from a live hammer session —
// including a mid-run device reset — replays on a fresh device to the
// exact flip sequence the session observed, with the reference-model
// auditor reporting zero divergence.
func TestSessionTraceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("two 25ms hammer segments; skipped in -short")
	}
	a := arch.RaptorLake()
	d := arch.DIMMS4()
	const seed = 12345
	s, err := hammer.NewSession(a, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTrace(1 << 20)
	s.AttachTrace(tr)
	cfg := hammer.RecommendedSingleBank(a)
	pat := pattern.KnownGood()

	var sessionFlips []dram.Flip
	var acts, trrs uint64
	if _, err := s.HammerPatternFor(pat, cfg, 0, 1000, 25e6); err != nil {
		t.Fatal(err)
	}
	sessionFlips = append(sessionFlips, s.Dev.Flips()...)
	acts += s.Dev.Counters().ACTs
	trrs += s.Dev.Counters().TRRTriggers
	s.ResetDevice()
	if _, err := s.HammerPatternFor(pat, cfg, 0, 2000, 25e6); err != nil {
		t.Fatal(err)
	}
	sessionFlips = append(sessionFlips, s.Dev.Flips()...)
	acts += s.Dev.Counters().ACTs
	trrs += s.Dev.Counters().TRRTriggers
	if len(sessionFlips) == 0 {
		t.Fatal("session produced no flips; the round-trip check would be vacuous")
	}
	if dr := tr.Dropped(); dr > 0 {
		t.Fatalf("trace ring dropped %d events; enlarge the test ring", dr)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	devSeed := hammer.DeviceSeed(seed)
	f, err := DecodeBytes(buf.Bytes(), Options{DIMM: d.ID, Seed: &devSeed})
	if err != nil {
		t.Fatal(err)
	}
	if f.Hash == "" {
		t.Error("decoded file has no content hash")
	}
	v := Run(f)

	if v.Divergence != "" {
		t.Fatalf("auditor divergence on replay: %s", v.Divergence)
	}
	if v.Resets != 1 {
		t.Errorf("replayed %d resets, want 1", v.Resets)
	}
	if v.Counters.ACTs != acts {
		t.Errorf("replayed %d ACTs, session issued %d", v.Counters.ACTs, acts)
	}
	if v.Counters.TRRTriggers != trrs {
		t.Errorf("replayed %d TRR triggers, session saw %d", v.Counters.TRRTriggers, trrs)
	}
	if v.RecordedMissing != 0 {
		t.Errorf("%d flips recorded in the trace were not reproduced", v.RecordedMissing)
	}
	if v.FlipCount != len(sessionFlips) {
		t.Fatalf("replayed %d flips, session observed %d", v.FlipCount, len(sessionFlips))
	}
	if v.FlipsTruncated {
		t.Fatalf("verdict truncated %d flips; test expects the full set", v.FlipCount)
	}
	for i, fl := range sessionFlips {
		got := v.Flips[i]
		want := FlipRecord{Bank: fl.Bank, Row: fl.Row, Byte: fl.ByteInRow, Bit: int(fl.Bit),
			OneToZero: fl.OneToZero, TimeNS: fl.Time}
		if got != want {
			t.Errorf("flip %d: replayed %+v, session observed %+v", i, got, want)
		}
	}
}
