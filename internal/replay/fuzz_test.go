package replay

import (
	"errors"
	"testing"
)

// FuzzTraceDecode feeds arbitrary bytes through the trace codec. The
// contract under fuzzing: Decode never panics, and every rejection is a
// typed *DecodeError with a usable line number. Small accepted traces
// are additionally replayed end to end, so the engine shares the
// no-panic guarantee on codec-accepted input.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte(`{"seq":0,"layer":"dram","kind":"act","bank":1,"row":5}` + "\n" +
		`{"seq":1,"layer":"dram","kind":"ref"}` + "\n"))
	f.Add([]byte(HeaderLine("S3", 42) + `{"seq":0,"t_ns":5,"layer":"dram","kind":"act","bank":0,"row":1000}` + "\n"))
	f.Add([]byte(`{"session":"session-0000000000000001","seq":0,"layer":"dram","kind":"act","bank":3,"row":9}` + "\n" +
		`{"session":"session-0000000000000001","kind":"truncated","n":4}` + "\n"))
	f.Add([]byte(`{"seq":0,"layer":"dram","kind":"zap"}`))
	f.Add([]byte(`{"rhohammer_trace":"v1"`))
	f.Add([]byte("\n\n{not json\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		f, err := DecodeBytes(data, Options{DIMM: "S3", MaxEvents: 4096, MaxLineBytes: 4096})
		if err != nil {
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("non-typed decode error %T: %v", err, err)
			}
			if de.Line < 0 {
				t.Fatalf("negative line number in %v", de)
			}
			return
		}
		if len(f.Cmds) == 0 {
			t.Fatal("accepted a trace with no commands")
		}
		// Codec-accepted traces must replay without panicking; keep the
		// command budget small so the fuzzer stays fast.
		if len(f.Cmds) <= 256 {
			v := Run(f)
			if v.Commands != len(f.Cmds) {
				t.Fatalf("verdict covers %d of %d commands", v.Commands, len(f.Cmds))
			}
		}
	})
}
