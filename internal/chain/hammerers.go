package chain

import (
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
)

// CompactPattern returns the TRR-bypassing pattern whose row footprint
// (14 rows) fits inside the 16-row per-bank window of a 4 MiB
// contiguous region — the pattern the paper's §5.3 templating uses.
func CompactPattern() *pattern.Pattern {
	return &pattern.Pattern{
		ID:    4,
		Slots: 160,
		Tuples: []pattern.Tuple{
			{Offsets: []int{12}, Freq: 36, Phase: 0, Amplitude: 1},
			{Offsets: []int{13}, Freq: 36, Phase: 2, Amplitude: 1},
			{Offsets: []int{0, 2}, Freq: 12, Phase: 1, Amplitude: 1},
			{Offsets: []int{4, 6}, Freq: 12, Phase: 5, Amplitude: 1},
			{Offsets: []int{8, 10}, Freq: 12, Phase: 9, Amplitude: 1},
		},
	}
}

// HugePattern returns a TRR-bypassing pattern compressed into a 6-row
// footprint (MaxOffset 5), so it fits the 8-row per-bank window of a
// 2 MiB THP region: two high-frequency decoy rows keep the sampler
// busy while two interleaved double-sided pairs do the damage.
func HugePattern() *pattern.Pattern {
	return &pattern.Pattern{
		ID:    5,
		Slots: 160,
		Tuples: []pattern.Tuple{
			{Offsets: []int{4}, Freq: 30, Phase: 0, Amplitude: 1},
			{Offsets: []int{5}, Freq: 30, Phase: 2, Amplitude: 1},
			{Offsets: []int{0, 2}, Freq: 12, Phase: 1, Amplitude: 1},
			{Offsets: []int{1, 3}, Freq: 12, Phase: 5, Amplitude: 1},
		},
	}
}

// PatternHammerer templates regions by hammering one fixed pattern
// under one fixed strategy — the shape both the ρHammer and the load
// baseline hammerers share; they differ only in Config (and, via Plan,
// in which pattern matches the allocator's region height).
type PatternHammerer struct {
	// Label is the hammerer's reporting name ("rho", "load").
	Label string
	// Pattern is the templating pattern; it must fit the region row
	// window or Template reports Skipped.
	Pattern *pattern.Pattern
	// Config is the hammering strategy.
	Config hammer.Config
}

// Name implements Hammerer.
func (h *PatternHammerer) Name() string { return h.Label }

// windowRows returns the number of consecutive rows a region spans in
// each bank it touches (16 for 4 MiB regions, 8 for 2 MiB huge pages
// on the evaluated 16 GiB mappings).
func windowRows(s *hammer.Session, r Region) uint64 {
	return r.Bytes * s.Map.Rows() / s.Map.Size()
}

// Template implements Hammerer: hammer the pattern at the region's row
// window in the region's base bank. Regions whose window cannot hold
// the pattern (aggressors at MaxOffset, victims two rows above) are
// Skipped, as are windows butting against the top of the bank.
func (h *PatternHammerer) Template(s *hammer.Session, r Region, durationNS float64) (Templating, error) {
	baseRow := s.Map.Row(r.Base)
	span := uint64(h.Pattern.MaxOffset() + 4)
	if baseRow+span+2 >= s.Map.Rows() {
		return Templating{Skipped: true}, nil
	}
	if uint64(h.Pattern.MaxOffset())+3 > windowRows(s, r) {
		return Templating{Skipped: true}, nil
	}
	bank := s.Map.Bank(r.Base)
	s.ResetDevice()
	hr, err := s.HammerPatternFor(h.Pattern, h.Config, bank, baseRow, durationNS)
	if err != nil {
		return Templating{}, err
	}
	out := Templating{TimeNS: hr.TimeNS}
	for _, f := range hr.Flips {
		cf := Flip{Flip: f, HammerBank: bank, HammerBaseRow: baseRow, Region: r}
		if pa, err := s.Map.PhysAddr(f.Bank, f.Row, uint64(f.ByteInRow)); err == nil {
			cf.PhysAddr = pa
		}
		out.Flips = append(out.Flips, cf)
	}
	return out, nil
}

// Retrigger implements Hammerer.
func (h *PatternHammerer) Retrigger(s *hammer.Session, bank int, baseRow uint64, durationNS float64) (hammer.Result, error) {
	s.ResetDevice()
	return s.HammerPatternFor(h.Pattern, h.Config, bank, baseRow, durationNS)
}
