package chain

import (
	"rhohammer/internal/hammer"
	"rhohammer/internal/mem"
)

// Modeled allocation costs, simulated nanoseconds per region.
const (
	// drainCostPerRegionNS is the buddy-exhaustion cost: allocating
	// everything below the maximum order so fresh order-10 splits are
	// forced, per obtained region (unchanged from the historical
	// exploit path).
	drainCostPerRegionNS = 0.9e9
	// hugeFaultCostPerRegionNS is the THP cost: faulting an anonymous
	// 2 MiB mapping and letting khugepaged back it with a huge page —
	// orders of magnitude cheaper than draining, the reason THP-enabled
	// systems are the softer target.
	hugeFaultCostPerRegionNS = 0.02e9
)

// BuddyAllocator performs the paper's allocator-exhaustion maneuver:
// drain every order below the maximum so subsequent allocations must
// come from freshly split order-10 blocks, then grab n contiguous
// 4 MiB regions.
type BuddyAllocator struct{}

// Name implements Allocator.
func (BuddyAllocator) Name() string { return "buddy" }

// Allocate implements Allocator.
func (BuddyAllocator) Allocate(s *hammer.Session, n int) (Allocation, error) {
	b := mem.NewBuddy(s.Map.Size(), s.Rand)
	bases, err := b.DrainToContiguous(n)
	if err != nil {
		return Allocation{}, err
	}
	out := Allocation{TimeNS: float64(len(bases)) * drainCostPerRegionNS}
	for _, base := range bases {
		out.Regions = append(out.Regions, Region{Base: base, Bytes: mem.BlockBytes(mem.MaxOrder)})
	}
	return out, nil
}

// THPAllocator obtains 2 MiB huge-page regions the transparent-huge-page
// way: no draining, just anonymous mappings the kernel backs with
// HugeOrder blocks. Cheaper and stealthier than exhaustion, but each
// region's row window is half as tall, so hammerers must bring a
// pattern that fits (see HugePattern).
type THPAllocator struct{}

// Name implements Allocator.
func (THPAllocator) Name() string { return "thp" }

// Allocate implements Allocator.
func (THPAllocator) Allocate(s *hammer.Session, n int) (Allocation, error) {
	b := mem.NewBuddy(s.Map.Size(), s.Rand)
	bases, err := b.AllocHugePages(n)
	if err != nil {
		return Allocation{}, err
	}
	out := Allocation{TimeNS: float64(len(bases)) * hugeFaultCostPerRegionNS}
	for _, base := range bases {
		out.Regions = append(out.Regions, Region{Base: base, Bytes: mem.BlockBytes(mem.HugeOrder)})
	}
	return out, nil
}
