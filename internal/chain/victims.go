package chain

import (
	"rhohammer/internal/hammer"
	"rhohammer/internal/mem"
)

// PTE field geometry (x86-64, 4 KiB pages).
const (
	pteSize = 8
	// PFNLo and PFNHi delimit the PTE bit sub-range the paper calls
	// exploitable ("a desired sub-range of PTE frame number, e.g.
	// [12, 19]"): flips here move the mapped frame by a small power of
	// two, which page-granular massaging can always arrange to hit an
	// attacker-chosen frame.
	PFNLo = 12
	PFNHi = 19
)

// Modeled costs of the victim machinery, simulated nanoseconds.
const (
	// ptpPlacementCostNS covers freeing the victim block and spraying
	// page-table pages until one lands on the victim frame.
	ptpPlacementCostNS = 2.2e9
	// verifyCostNS covers checking the corrupted mapping.
	verifyCostNS = 0.35e9
	// keyPlacementCostNS covers spraying key-bearing pages onto the
	// victim frame — page-cache massaging, cheaper than PTP spraying.
	keyPlacementCostNS = 1.1e9
	// keyVerifyCostNS covers one faulty-signature check against the
	// corrupted key.
	keyVerifyCostNS = 0.15e9
)

// PTEVictim is the §5.3 victim: massage a page-table page onto the
// flip's frame (Rubicon-style page-granular placement), re-trigger the
// flip and obtain a self-referencing PTE — attacker read/write access
// to its own page tables.
type PTEVictim struct {
	// BaseRow overrides the re-trigger placement for a flip; nil means
	// the flip's recorded HammerBaseRow (the templating placement, which
	// always re-covers the victim cell). The exploit compatibility
	// wrapper installs the historical 16-row-rounding formula here,
	// which mis-places the rare flip landing below its region's base row
	// — preserved there because the e2e goldens pin that behavior.
	BaseRow func(Flip) uint64
}

// Name implements Victim.
func (PTEVictim) Name() string { return "pte" }

// Classify implements Victim: exploitable flips sit inside the PTE
// frame-number sub-range [PFNLo, PFNHi].
func (PTEVictim) Classify(s *hammer.Session, flips []Flip) []Target {
	var out []Target
	for _, f := range flips {
		bit := (f.ByteInRow%pteSize)*8 + int(f.Bit)
		if bit >= PFNLo && bit <= PFNHi {
			out = append(out, Target{Flip: f, Bit: bit})
		}
	}
	return out
}

// Attempt implements Victim.
func (v PTEVictim) Attempt(s *hammer.Session, h Hammerer, t Target, durationNS float64) (Attempt, error) {
	at := Attempt{TimeNS: ptpPlacementCostNS}

	victimFrame := t.Flip.PhysAddr / mem.PageSize
	ptpBase := victimFrame * mem.PageSize

	// The flipped PTE will point at ptpFrame ^ (1 << (Bit-PFNLo)). The
	// attacker chooses the frame it maps through this PTE so that the
	// post-flip PFN equals the PTP's own frame — but the chosen frame
	// must have the right current bit value for the flip direction to
	// move it toward the PTP.
	mask := uint64(1) << uint(t.Bit-PFNLo)
	chosen := victimFrame ^ mask
	bitSet := chosen&mask != 0
	if t.Flip.OneToZero != bitSet {
		at.Note = "flip direction moves the PFN away from the PTP"
		return at, nil
	}

	// Re-trigger the flip at its templating placement to confirm
	// reproducibility (the vulnerability is location-stable).
	baseRow := t.Flip.HammerBaseRow
	if v.BaseRow != nil {
		baseRow = v.BaseRow(t.Flip)
	}
	hr, err := h.Retrigger(s, t.Flip.Bank, baseRow, durationNS)
	if err != nil {
		return at, err
	}
	at.TimeNS += hr.TimeNS + verifyCostNS
	if !Reproduced(hr.Flips, t.Flip.Flip) {
		at.Note = "flip did not reproduce on re-trigger"
		return at, nil
	}

	pteIndex := uint64(t.Flip.PhysAddr%mem.PageSize) / pteSize
	at.Success = true
	at.Addr = ptpBase + pteIndex*pteSize
	at.Value = (chosen^mask)<<12 | 0x67 // present|rw|user|accessed|dirty
	at.Frame = victimFrame
	return at, nil
}

// keyBytes is the modeled secret size: a 2048-bit private key at the
// start of its page. Only flips landing inside the key's page-offset
// range are placeable onto key material (the attacker controls page
// placement, not the offset within the page).
const keyBytes = 256

// KeyVictim models a Bellcore-style fault attack on co-located key
// material: spray key-bearing pages onto the flip's frame, re-trigger
// the flip to fault one key byte, and confirm via a faulty signature.
// Unlike the PTE victim there is no direction constraint — any
// reproducible flip inside the key window corrupts the secret — but
// the usable page-offset range is much narrower.
type KeyVictim struct{}

// Name implements Victim.
func (KeyVictim) Name() string { return "key" }

// Classify implements Victim: flips whose page offset falls inside the
// key's byte range, draining a charged cell (1→0 — the direction a
// known-plaintext faulty signature pins down unambiguously).
func (KeyVictim) Classify(s *hammer.Session, flips []Flip) []Target {
	var out []Target
	for _, f := range flips {
		off := f.PhysAddr % mem.PageSize
		if !f.OneToZero || off >= keyBytes {
			continue
		}
		out = append(out, Target{Flip: f, Bit: int(off)*8 + int(f.Bit)})
	}
	return out
}

// Attempt implements Victim.
func (KeyVictim) Attempt(s *hammer.Session, h Hammerer, t Target, durationNS float64) (Attempt, error) {
	at := Attempt{TimeNS: keyPlacementCostNS}
	hr, err := h.Retrigger(s, t.Flip.Bank, t.Flip.HammerBaseRow, durationNS)
	if err != nil {
		return at, err
	}
	at.TimeNS += hr.TimeNS + keyVerifyCostNS
	if !Reproduced(hr.Flips, t.Flip.Flip) {
		at.Note = "flip did not reproduce on re-trigger"
		return at, nil
	}
	at.Success = true
	at.Addr = t.Flip.PhysAddr
	at.Value = uint64(0xff &^ (1 << t.Flip.Bit)) // the drained key byte, bit cleared
	at.Frame = t.Flip.PhysAddr / mem.PageSize
	return at, nil
}
