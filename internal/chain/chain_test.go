package chain_test

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/chain"
	"rhohammer/internal/hammer"
)

func session(t *testing.T, a *arch.Arch, dimm string, seed int64) *hammer.Session {
	t.Helper()
	d, ok := arch.DIMMByID(dimm)
	if !ok {
		t.Fatalf("unknown DIMM %q", dimm)
	}
	s, err := hammer.NewSession(a, d, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPlanDefaultsAndKey(t *testing.T) {
	if got := (chain.Plan{}).Key(); got != "buddy-rho-pte" {
		t.Errorf("zero plan key = %q, want buddy-rho-pte", got)
	}
	if got := (chain.Plan{Allocator: "thp", Hammerer: "load", Victim: "key"}).Key(); got != "thp-load-key" {
		t.Errorf("key = %q, want thp-load-key", got)
	}
	if len(chain.Allocators()) != 2 || len(chain.Hammerers()) != 2 || len(chain.Victims()) != 2 {
		t.Errorf("stage listings %v/%v/%v: want 2 of each",
			chain.Allocators(), chain.Hammerers(), chain.Victims())
	}
}

func TestBuildRejectsUnknownStages(t *testing.T) {
	a := arch.RaptorLake()
	for _, p := range []chain.Plan{
		{Allocator: "slab"},
		{Hammerer: "clflush"},
		{Victim: "sudoers"},
	} {
		if _, err := p.Build(a); err == nil {
			t.Errorf("Build(%+v) accepted an unknown stage", p)
		}
	}
	for _, al := range chain.Allocators() {
		for _, h := range chain.Hammerers() {
			for _, v := range chain.Victims() {
				p := chain.Plan{Allocator: al, Hammerer: h, Victim: v}
				if _, err := p.Build(a); err != nil {
					t.Errorf("Build(%s): %v", p.Key(), err)
				}
			}
		}
	}
}

// TestAllocatorExhaustion drives both allocators past the map's
// capacity: the chain must fail in the allocation phase with a typed
// AllocError and report zero regions.
func TestAllocatorExhaustion(t *testing.T) {
	for _, al := range chain.Allocators() {
		s := session(t, arch.RaptorLake(), "S3", 1)
		p := chain.Plan{Allocator: al, Regions: 1 << 20}
		res, err := p.Run(s)
		var ae *chain.AllocError
		if !errors.As(err, &ae) {
			t.Fatalf("%s with 2^20 regions: err = %v, want AllocError", al, err)
		}
		if res.Regions != 0 || res.TotalFlips != 0 {
			t.Errorf("%s: partial result after alloc failure: %+v", al, res)
		}
	}
}

// TestNoUsableFlips covers the two flavors of NoTargetsError: a module
// that never flips (M1, zero templated flips), and templating that does
// flip paired with a victim that can use none of them.
func TestNoUsableFlips(t *testing.T) {
	s := session(t, arch.RaptorLake(), "M1", 42)
	res, err := (chain.Plan{Regions: 6, DurationPerLocationNS: 1e8}).Run(s)
	var nt *chain.NoTargetsError
	if !errors.As(err, &nt) {
		t.Fatalf("M1 chain: err = %v, want NoTargetsError", err)
	}
	if nt.TotalFlips != 0 || res.TotalFlips != 0 {
		t.Errorf("M1 templating flipped %d/%d bits, want 0", nt.TotalFlips, res.TotalFlips)
	}

	s = session(t, arch.RaptorLake(), "S3", 42)
	eng := chain.Engine{
		Allocator: chain.BuddyAllocator{},
		Hammerer:  &chain.PatternHammerer{Label: "rho", Pattern: chain.CompactPattern(), Config: hammer.RecommendedSingleBank(s.Arch)},
		Victim:    pickyVictim{},
	}
	res, err = eng.Run(s, chain.RunOptions{Regions: 6, DurationPerLocationNS: 1e8})
	if !errors.As(err, &nt) {
		t.Fatalf("picky victim: err = %v, want NoTargetsError", err)
	}
	if nt.TotalFlips == 0 || res.TotalFlips == 0 {
		t.Error("picky-victim case found no flips at all; the test wants flips the victim rejects")
	}
}

// TestExhaustedTargets uses a victim whose attempts always fail: the
// chain must try every target and return ExhaustedError.
func TestExhaustedTargets(t *testing.T) {
	s := session(t, arch.RaptorLake(), "S3", 42)
	eng := chain.Engine{
		Allocator: chain.BuddyAllocator{},
		Hammerer:  &chain.PatternHammerer{Label: "rho", Pattern: chain.CompactPattern(), Config: hammer.RecommendedSingleBank(s.Arch)},
		Victim:    hopelessVictim{},
	}
	res, err := eng.Run(s, chain.RunOptions{Regions: 6, DurationPerLocationNS: 1e8})
	var ex *chain.ExhaustedError
	if !errors.As(err, &ex) {
		t.Fatalf("err = %v, want ExhaustedError", err)
	}
	if res.Attempts != len(res.Targets) || ex.Attempts != res.Attempts {
		t.Errorf("attempts %d (err says %d), want one per target (%d)",
			res.Attempts, ex.Attempts, len(res.Targets))
	}
	if res.Success {
		t.Error("success flag set after exhaustion")
	}
}

// TestRetriggerErrorAborts uses a victim whose re-trigger machinery
// fails hard: the chain must abort with a typed RetriggerError that
// unwraps to the cause.
func TestRetriggerErrorAborts(t *testing.T) {
	s := session(t, arch.RaptorLake(), "S3", 42)
	cause := errors.New("device wedged")
	eng := chain.Engine{
		Allocator: chain.BuddyAllocator{},
		Hammerer:  &chain.PatternHammerer{Label: "rho", Pattern: chain.CompactPattern(), Config: hammer.RecommendedSingleBank(s.Arch)},
		Victim:    brokenVictim{cause: cause},
	}
	res, err := eng.Run(s, chain.RunOptions{Regions: 6, DurationPerLocationNS: 1e8})
	var re *chain.RetriggerError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RetriggerError", err)
	}
	if !errors.Is(err, cause) {
		t.Errorf("RetriggerError does not unwrap to the cause: %v", err)
	}
	if res.Attempts != 1 {
		t.Errorf("chain kept going after a re-trigger failure: %d attempts", res.Attempts)
	}
}

// TestCompactPatternSkippedOnTHP pins the window guard: the 14-row
// compact pattern cannot fit a 2 MiB region's 8-row window, so every
// THP region must be Skipped rather than hammered out of bounds.
func TestCompactPatternSkippedOnTHP(t *testing.T) {
	s := session(t, arch.RaptorLake(), "S3", 42)
	eng := chain.Engine{
		Allocator: chain.THPAllocator{},
		Hammerer:  &chain.PatternHammerer{Label: "rho", Pattern: chain.CompactPattern(), Config: hammer.RecommendedSingleBank(s.Arch)},
		Victim:    chain.PTEVictim{},
	}
	res, err := eng.Run(s, chain.RunOptions{Regions: 6, DurationPerLocationNS: 1e8})
	var nt *chain.NoTargetsError
	if !errors.As(err, &nt) {
		t.Fatalf("err = %v, want NoTargetsError (all regions skipped)", err)
	}
	if res.Skipped != res.Regions || res.TotalFlips != 0 {
		t.Errorf("skipped %d of %d regions with %d flips; want all skipped, none hammered",
			res.Skipped, res.Regions, res.TotalFlips)
	}
}

// TestHugePatternFitsTHPWindow pins the pattern/allocator pairing: the
// huge pattern's footprint (aggressors at MaxOffset, victims two rows
// above) must fit the 8-row window of a 2 MiB region.
func TestHugePatternFitsTHPWindow(t *testing.T) {
	for _, p := range []struct {
		name   string
		pat    interface{ MaxOffset() int }
		window int
	}{
		{"huge", chain.HugePattern(), 8},
		{"compact", chain.CompactPattern(), 16},
	} {
		if got := p.pat.MaxOffset() + 3; got > p.window {
			t.Errorf("%s pattern needs %d rows, window is %d", p.name, got, p.window)
		}
	}
	if err := chain.HugePattern().Validate(); err != nil {
		t.Errorf("huge pattern invalid: %v", err)
	}
}

// TestGridCompositionsSucceed runs the full 2x2x2 grid on the platform
// the chain campaign uses for its rho cells: every ρHammer composition
// must complete end to end (the load baseline is covered by the grid
// golden, where it fails on the new architecture by design).
func TestGridCompositionsSucceed(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end chains")
	}
	for _, al := range chain.Allocators() {
		for _, v := range chain.Victims() {
			p := chain.Plan{Allocator: al, Hammerer: "rho", Victim: v, Regions: 8}
			t.Run(p.Key(), func(t *testing.T) {
				s := session(t, arch.RaptorLake(), "S3", 42)
				res, err := p.Run(s)
				if err != nil {
					t.Fatalf("chain failed: %v (flips %d, targets %d)", err, res.TotalFlips, len(res.Targets))
				}
				if !res.Success || res.Frame == 0 {
					t.Errorf("no success: %+v", res)
				}
				if res.Phases.TotalNS() <= 0 || res.Phases.AllocNS <= 0 {
					t.Errorf("phase timings missing: %+v", res.Phases)
				}
			})
		}
	}
}

// TestPlanRunDeterminism pins the determinism contract at the plan
// level: identical (platform, DIMM, seed, plan) must produce deeply
// equal results in fresh sessions.
func TestPlanRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end chains")
	}
	p := chain.Plan{Allocator: "thp", Hammerer: "rho", Victim: "key", Regions: 6, DurationPerLocationNS: 1e8}
	a := session(t, arch.RaptorLake(), "S3", 7)
	b := session(t, arch.RaptorLake(), "S3", 7)
	ra, ea := p.Run(a)
	rb, eb := p.Run(b)
	if fmt.Sprint(ea) != fmt.Sprint(eb) {
		t.Fatalf("errors differ: %v vs %v", ea, eb)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Errorf("results differ across identical sessions:\n%+v\n%+v", ra, rb)
	}
}

// pickyVictim classifies nothing.
type pickyVictim struct{}

func (pickyVictim) Name() string                                            { return "picky" }
func (pickyVictim) Classify(*hammer.Session, []chain.Flip) []chain.Target   { return nil }
func (pickyVictim) Attempt(*hammer.Session, chain.Hammerer, chain.Target, float64) (chain.Attempt, error) {
	return chain.Attempt{}, nil
}

// hopelessVictim targets every flip but never succeeds.
type hopelessVictim struct{}

func (hopelessVictim) Name() string { return "hopeless" }
func (hopelessVictim) Classify(_ *hammer.Session, flips []chain.Flip) []chain.Target {
	out := make([]chain.Target, len(flips))
	for i, f := range flips {
		out[i] = chain.Target{Flip: f}
	}
	return out
}
func (hopelessVictim) Attempt(*hammer.Session, chain.Hammerer, chain.Target, float64) (chain.Attempt, error) {
	return chain.Attempt{TimeNS: 1}, nil
}

// brokenVictim fails its first re-trigger hard.
type brokenVictim struct{ cause error }

func (brokenVictim) Name() string { return "broken" }
func (brokenVictim) Classify(_ *hammer.Session, flips []chain.Flip) []chain.Target {
	out := make([]chain.Target, len(flips))
	for i, f := range flips {
		out[i] = chain.Target{Flip: f}
	}
	return out
}
func (v brokenVictim) Attempt(*hammer.Session, chain.Hammerer, chain.Target, float64) (chain.Attempt, error) {
	return chain.Attempt{}, v.cause
}
