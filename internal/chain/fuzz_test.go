package chain_test

import (
	"reflect"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/chain"
	"rhohammer/internal/hammer"
)

// FuzzChainPlan drives random plan compositions through the engine and
// checks the structural invariants no composition may violate: stage
// resolution either errors cleanly or the run terminates with a typed
// outcome, phase timings and counters stay consistent, and identical
// inputs replay to deeply equal results.
func FuzzChainPlan(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0), int64(42), uint8(2))
	f.Add(uint8(1), uint8(1), uint8(1), int64(7), uint8(3))
	f.Add(uint8(1), uint8(0), uint8(1), int64(1), uint8(1))
	f.Add(uint8(2), uint8(2), uint8(2), int64(9), uint8(2)) // unknown stage names
	f.Fuzz(func(t *testing.T, ai, hi, vi uint8, seed int64, regions uint8) {
		// Index 2 selects a deliberately bogus stage name, so name
		// resolution failures stay in the fuzzed surface.
		allocs := append(chain.Allocators(), "bogus")
		hams := append(chain.Hammerers(), "bogus")
		vics := append(chain.Victims(), "bogus")
		p := chain.Plan{
			Allocator:             allocs[int(ai)%len(allocs)],
			Hammerer:              hams[int(hi)%len(hams)],
			Victim:                vics[int(vi)%len(vics)],
			Regions:               int(regions)%3 + 1,
			DurationPerLocationNS: 2e7,
		}

		run := func() (chain.Result, error) {
			s, err := hammer.NewSession(arch.CometLake(), arch.DIMMS3(), seed)
			if err != nil {
				t.Fatal(err)
			}
			return p.Run(s)
		}
		res, err := run()

		if p.Allocator == "bogus" || p.Hammerer == "bogus" || p.Victim == "bogus" {
			if err == nil {
				t.Fatalf("plan %s resolved a bogus stage", p.Key())
			}
			return
		}
		if res.Regions != p.Regions {
			t.Errorf("plan %s: %d regions allocated, want %d", p.Key(), res.Regions, p.Regions)
		}
		if res.Skipped > res.Regions {
			t.Errorf("plan %s: skipped %d > %d regions", p.Key(), res.Skipped, res.Regions)
		}
		if res.Attempts > len(res.Targets) {
			t.Errorf("plan %s: %d attempts over %d targets", p.Key(), res.Attempts, len(res.Targets))
		}
		if len(res.Targets) > res.TotalFlips {
			t.Errorf("plan %s: %d targets from %d flips", p.Key(), len(res.Targets), res.TotalFlips)
		}
		if res.Phases.AllocNS < 0 || res.Phases.TemplateNS < 0 || res.Phases.VictimNS < 0 {
			t.Errorf("plan %s: negative phase timing %+v", p.Key(), res.Phases)
		}
		if res.Success != (err == nil) {
			t.Errorf("plan %s: success=%v with err=%v", p.Key(), res.Success, err)
		}
		if res.Success && res.Attempts == 0 {
			t.Errorf("plan %s: success without attempts", p.Key())
		}

		res2, err2 := run()
		if !reflect.DeepEqual(res, res2) || (err == nil) != (err2 == nil) {
			t.Errorf("plan %s seed %d: replay diverged", p.Key(), seed)
		}
	})
}
