package chain

import (
	"fmt"

	"rhohammer/internal/arch"
	"rhohammer/internal/hammer"
)

// Plan names a chain triple declaratively — the serializable form the
// chain-grid campaign cells, cmd/exploit's selection flags and the
// public facade all build engines from.
type Plan struct {
	// Allocator, Hammerer and Victim select the stage implementations by
	// name (see Allocators, Hammerers, Victims). Empty fields default to
	// the paper's §5.3 triple: buddy / rho / pte.
	Allocator string
	Hammerer  string
	Victim    string
	// Regions and DurationPerLocationNS bound the run (see RunOptions).
	Regions               int
	DurationPerLocationNS float64
	// Nops overrides the ρHammer counter-speculation NOP count; zero
	// means the platform-tuned value.
	Nops int
}

func (p Plan) withDefaults() Plan {
	if p.Allocator == "" {
		p.Allocator = "buddy"
	}
	if p.Hammerer == "" {
		p.Hammerer = "rho"
	}
	if p.Victim == "" {
		p.Victim = "pte"
	}
	return p
}

// Key returns the plan's canonical cell key, "allocator-hammerer-victim".
func (p Plan) Key() string {
	p = p.withDefaults()
	return p.Allocator + "-" + p.Hammerer + "-" + p.Victim
}

// Allocators lists the selectable allocator names.
func Allocators() []string { return []string{"buddy", "thp"} }

// Hammerers lists the selectable hammerer names.
func Hammerers() []string { return []string{"rho", "load"} }

// Victims lists the selectable victim names.
func Victims() []string { return []string{"pte", "key"} }

// Build resolves the plan's names into a runnable Engine for the given
// platform. The hammerer's pattern follows the allocator: buddy regions
// get the 14-row CompactPattern, THP regions the 6-row HugePattern —
// a pattern taller than the region's row window would only be Skipped.
func (p Plan) Build(a *arch.Arch) (Engine, error) {
	p = p.withDefaults()
	var e Engine

	switch p.Allocator {
	case "buddy":
		e.Allocator = BuddyAllocator{}
	case "thp":
		e.Allocator = THPAllocator{}
	default:
		return e, fmt.Errorf("chain: unknown allocator %q (have %v)", p.Allocator, Allocators())
	}

	pat := CompactPattern()
	if p.Allocator == "thp" {
		pat = HugePattern()
	}
	switch p.Hammerer {
	case "rho":
		cfg := hammer.RecommendedSingleBank(a)
		if p.Nops > 0 {
			cfg = hammer.RhoHammer(a, 1, p.Nops)
		}
		e.Hammerer = &PatternHammerer{Label: "rho", Pattern: pat, Config: cfg}
	case "load":
		e.Hammerer = &PatternHammerer{Label: "load", Pattern: pat, Config: hammer.Baseline()}
	default:
		return e, fmt.Errorf("chain: unknown hammerer %q (have %v)", p.Hammerer, Hammerers())
	}

	switch p.Victim {
	case "pte":
		e.Victim = PTEVictim{}
	case "key":
		e.Victim = KeyVictim{}
	default:
		return e, fmt.Errorf("chain: unknown victim %q (have %v)", p.Victim, Victims())
	}
	return e, nil
}

// Run builds the plan's engine for the session's platform and executes
// it.
func (p Plan) Run(s *hammer.Session) (Result, error) {
	e, err := p.Build(s.Arch)
	if err != nil {
		return Result{}, err
	}
	return e.Run(s, RunOptions{
		Regions:               p.Regions,
		DurationPerLocationNS: p.DurationPerLocationNS,
	})
}
