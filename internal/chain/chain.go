// Package chain decomposes the paper's §5.3 end-to-end attack into
// three swappable stages behind one engine, in the style of SWAGE's
// allocator/hammerer/victim traits:
//
//   - an Allocator yields physically contiguous victim regions from
//     internal/mem (buddy-exhaustion 4 MiB regions as in the paper, or
//     THP-style 2 MiB huge pages);
//   - a Hammerer templates bit flips over a region via internal/hammer
//     (ρHammer's prefetch + counter-speculation strategy, or the
//     conventional load baseline);
//   - a Victim interprets the templated flips and runs placement plus
//     flip re-triggering (PTE frame-number corruption as in §5.3, or
//     key/byte corruption in a sprayed secret buffer).
//
// An Engine composes any triple into one Result with per-phase
// simulated timings, so full attack chains multiply combinatorially
// instead of each costing a bespoke rewrite. The Plan type names a
// triple declaratively ("buddy-rho-pte"), which is what the registered
// chain-grid campaign, cmd/exploit's selection flags and the public
// rhohammer facade build from.
//
// Determinism contract: an Engine consumes the session's RNG streams in
// a fixed order (allocate, then template each region in address order,
// then attempt each target in templating order), so a chain's outcome
// is a pure function of (platform, DIMM, seed, plan). The legacy
// internal/exploit entry point is a thin wrapper over the
// buddy/rho/pte triple and its output bytes are pinned by goldens.
package chain

import (
	"fmt"

	"rhohammer/internal/dram"
	"rhohammer/internal/hammer"
)

// Region is one physically contiguous victim region an Allocator
// produced.
type Region struct {
	// Base is the region's physical base address.
	Base uint64
	// Bytes is the region's size.
	Bytes uint64
}

// Allocation is an Allocator's outcome: the regions obtained and the
// simulated cost of obtaining them.
type Allocation struct {
	Regions []Region
	// TimeNS is the simulated massaging time the allocation cost
	// (draining the allocator, faulting huge pages).
	TimeNS float64
}

// Allocator yields physically contiguous victim regions. Allocate
// consumes session RNG (physical placement is unpredictable to the
// attacker), so implementations must draw only from s.Rand.
type Allocator interface {
	Name() string
	// Allocate returns n regions, ascending by base address.
	Allocate(s *hammer.Session, n int) (Allocation, error)
}

// Flip is one templated bit flip annotated with the placement that
// produced it — everything a Victim needs to judge and re-trigger it.
type Flip struct {
	dram.Flip
	// PhysAddr is the physical byte address holding the flipped bit
	// (zero if the mapping could not invert the location).
	PhysAddr uint64
	// HammerBank and HammerBaseRow record the templating placement, so
	// the victim can re-trigger the flip at the exact same spot.
	HammerBank    int
	HammerBaseRow uint64
	// Region is the region the flip was templated in.
	Region Region
}

// Templating is a Hammerer's outcome for one region.
type Templating struct {
	// Flips are the raw templated flips, in device observation order.
	Flips []Flip
	// TimeNS is the simulated hammering time spent on the region.
	TimeNS float64
	// Skipped marks regions whose row window cannot hold the pattern
	// (no hammering was attempted; the engine moves on).
	Skipped bool
}

// Hammerer templates flips over a region and re-triggers them during
// victim placement.
type Hammerer interface {
	Name() string
	// Template hammers the region once and returns the flips observed.
	Template(s *hammer.Session, r Region, durationNS float64) (Templating, error)
	// Retrigger re-hammers at an explicit placement to confirm a flip
	// reproduces; the victim chooses the placement (normally the flip's
	// recorded HammerBank/HammerBaseRow).
	Retrigger(s *hammer.Session, bank int, baseRow uint64, durationNS float64) (hammer.Result, error)
}

// Target is one flip a Victim selected as exploitable.
type Target struct {
	Flip Flip
	// Bit is the flip's bit position within the victim object (the PTE
	// bit for the pte victim, the key bit for the key victim).
	Bit int
}

// Attempt is a Victim's outcome for one target.
type Attempt struct {
	// TimeNS is the simulated placement + re-trigger + verification
	// time, accumulated into the victim phase even on failure.
	TimeNS float64
	// Success marks a completed exploitation.
	Success bool
	// Addr, Value and Frame describe the corrupted object on success:
	// for the pte victim the corrupted PTE's address, its new value and
	// the attacker-reachable page-table frame; for the key victim the
	// faulted key byte's address, its corrupted value and the frame the
	// key page was massaged onto.
	Addr, Value, Frame uint64
	// Note explains a failed attempt ("direction mismatch", "did not
	// reproduce"), empty on success.
	Note string
}

// Victim interprets templated flips and exploits one of them.
type Victim interface {
	Name() string
	// Classify selects the flips this victim can exploit, preserving
	// templating order.
	Classify(s *hammer.Session, flips []Flip) []Target
	// Attempt massages the victim object onto the target and re-triggers
	// the flip through h. A non-nil error aborts the chain (re-trigger
	// machinery failure); an unsuccessful Attempt moves to the next
	// target.
	Attempt(s *hammer.Session, h Hammerer, t Target, durationNS float64) (Attempt, error)
}

// Reproduced reports whether the wanted flip appears in a re-hammer's
// flip list — the location-stability check every victim runs after a
// re-trigger.
func Reproduced(flips []dram.Flip, want dram.Flip) bool {
	for _, f := range flips {
		if f.Bank == want.Bank && f.Row == want.Row &&
			f.ByteInRow == want.ByteInRow && f.Bit == want.Bit {
			return true
		}
	}
	return false
}

// Typed chain errors. The engine wraps stage failures in these so
// callers (the exploit compatibility wrapper, the chain-grid campaign)
// can tell failure modes apart without string matching.

// AllocError reports an Allocator failure.
type AllocError struct{ Err error }

func (e *AllocError) Error() string { return fmt.Sprintf("chain: allocation: %v", e.Err) }

// Unwrap exposes the allocator's error.
func (e *AllocError) Unwrap() error { return e.Err }

// TemplateError reports a Hammerer failure on one region.
type TemplateError struct {
	Region uint64
	Err    error
}

func (e *TemplateError) Error() string {
	return fmt.Sprintf("chain: templating region %#x: %v", e.Region, e.Err)
}

// Unwrap exposes the hammerer's error.
func (e *TemplateError) Unwrap() error { return e.Err }

// NoTargetsError reports that templating produced flips but the victim
// classified none of them as exploitable (or produced no flips at all).
type NoTargetsError struct{ TotalFlips int }

func (e *NoTargetsError) Error() string {
	return fmt.Sprintf("chain: templating found %d flips but none the victim can use", e.TotalFlips)
}

// ExhaustedError reports that every classified target failed placement
// or re-triggering.
type ExhaustedError struct{ Attempts int }

func (e *ExhaustedError) Error() string {
	return fmt.Sprintf("chain: no target survived massaging (%d attempts)", e.Attempts)
}

// RetriggerError reports a re-trigger machinery failure during an
// attempt (not a reproduction failure, which is a normal miss).
type RetriggerError struct{ Err error }

func (e *RetriggerError) Error() string { return fmt.Sprintf("chain: re-trigger: %v", e.Err) }

// Unwrap exposes the underlying hammer error.
func (e *RetriggerError) Unwrap() error { return e.Err }
