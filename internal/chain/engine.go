package chain

import (
	"rhohammer/internal/hammer"
	"rhohammer/internal/obs"
)

// RunOptions bounds one chain run.
type RunOptions struct {
	// Regions is how many contiguous regions to allocate and template.
	// Default 12.
	Regions int
	// DurationPerLocationNS is the simulated hammer time per templated
	// spot (and per re-trigger). Default 150e6.
	DurationPerLocationNS float64
}

func (o RunOptions) withDefaults() RunOptions {
	if o.Regions == 0 {
		o.Regions = 12
	}
	if o.DurationPerLocationNS == 0 {
		o.DurationPerLocationNS = 150e6
	}
	return o
}

// Phases carries the per-phase simulated timings of one chain run.
type Phases struct {
	// AllocNS is the allocator's massaging cost.
	AllocNS float64
	// TemplateNS is the total hammering time across regions.
	TemplateNS float64
	// VictimNS is the placement + re-trigger + verification time across
	// attempts.
	VictimNS float64
}

// TotalNS returns the full simulated end-to-end runtime.
func (p Phases) TotalNS() float64 { return p.AllocNS + p.TemplateNS + p.VictimNS }

// Result is the outcome of one composed chain run.
type Result struct {
	// Regions is how many regions the allocator produced; Skipped how
	// many of them the hammerer's pattern could not fit.
	Regions int
	Skipped int
	// TotalFlips counts every templated flip; Targets are the ones the
	// victim classified as exploitable, in templating order.
	TotalFlips int
	Targets    []Target
	// Phases are the per-phase simulated timings.
	Phases Phases
	// Attempts is how many targets were tried before one succeeded.
	Attempts int
	// Success indicates the victim completed its exploitation; Addr,
	// Value and Frame are the successful Attempt's description.
	Success            bool
	Addr, Value, Frame uint64
}

// Engine composes an allocator, a hammerer and a victim into one
// end-to-end attack pipeline.
type Engine struct {
	Allocator Allocator
	Hammerer  Hammerer
	Victim    Victim
}

// Run executes the chain: allocate regions, template each one, classify
// the flips, then attempt targets until one succeeds. Stage failures
// return typed errors (AllocError, TemplateError, NoTargetsError,
// RetriggerError, ExhaustedError) alongside the partial Result.
//
// RNG-stream order is part of the contract: Allocate first, then one
// Template call per region in ascending address order, then one
// re-trigger per attempted target in templating order — the exact
// operation order of the historical exploit.Run, which keeps the legacy
// wrapper byte-identical.
func (e Engine) Run(s *hammer.Session, opt RunOptions) (Result, error) {
	opt = opt.withDefaults()
	var res Result
	res, err := e.run(s, opt)
	if obs.Enabled() {
		obs.ChainRuns.Inc()
		obs.ChainRegions.Add(int64(res.Regions))
		obs.ChainTemplateFlips.Add(int64(res.TotalFlips))
		obs.ChainTargets.Add(int64(len(res.Targets)))
		obs.ChainAttempts.Add(int64(res.Attempts))
		if res.Success {
			obs.ChainSuccesses.Inc()
		}
		obs.ChainAllocNS.Add(int64(res.Phases.AllocNS))
		obs.ChainTemplateNS.Add(int64(res.Phases.TemplateNS))
		obs.ChainVictimNS.Add(int64(res.Phases.VictimNS))
	}
	return res, err
}

func (e Engine) run(s *hammer.Session, opt RunOptions) (Result, error) {
	var res Result

	// Phase 0: allocation.
	alloc, err := e.Allocator.Allocate(s, opt.Regions)
	if err != nil {
		return res, &AllocError{Err: err}
	}
	res.Regions = len(alloc.Regions)
	res.Phases.AllocNS += alloc.TimeNS

	// Phase 1: template every region.
	var flips []Flip
	for _, r := range alloc.Regions {
		tm, err := e.Hammerer.Template(s, r, opt.DurationPerLocationNS)
		if err != nil {
			return res, &TemplateError{Region: r.Base, Err: err}
		}
		if tm.Skipped {
			res.Skipped++
			continue
		}
		res.Phases.TemplateNS += tm.TimeNS
		res.TotalFlips += len(tm.Flips)
		flips = append(flips, tm.Flips...)
	}

	// Phase 2: classification.
	res.Targets = e.Victim.Classify(s, flips)
	if len(res.Targets) == 0 {
		return res, &NoTargetsError{TotalFlips: res.TotalFlips}
	}

	// Phase 3: placement and re-triggering, target by target.
	for _, t := range res.Targets {
		res.Attempts++
		at, err := e.Victim.Attempt(s, e.Hammerer, t, opt.DurationPerLocationNS)
		res.Phases.VictimNS += at.TimeNS
		if err != nil {
			return res, &RetriggerError{Err: err}
		}
		if at.Success {
			res.Success = true
			res.Addr, res.Value, res.Frame = at.Addr, at.Value, at.Frame
			return res, nil
		}
	}
	return res, &ExhaustedError{Attempts: res.Attempts}
}
