package experiments

import (
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
	"rhohammer/internal/sweep"
)

// AblationRow is one counter-speculation variant's outcome.
type AblationRow struct {
	Arch     string
	Variant  string
	Flips    int
	MissRate float64
}

// AblationResult isolates the two counter-speculation ingredients of
// §4.4 — control-flow obfuscation and NOP pseudo-barriers — on the
// platforms where they matter. The paper presents them as a package;
// this ablation shows both are needed on Raptor Lake: obfuscation alone
// leaves the OoO share of the window open, and NOPs alone leave the
// branch-prediction share open (requiring far more NOPs at a rate cost).
type AblationResult struct{ Rows []AblationRow }

// AblationCounterSpec sweeps the best pattern under the four
// obfuscation/NOP combinations.
func AblationCounterSpec(cfg Config) *AblationResult {
	cfg = cfg.withDefaults()
	out := &AblationResult{}
	duration := float64(cfg.scaled(150, 100)) * 1e6
	locations := cfg.scaled(6, 3)
	type rowSpec struct {
		a    *arch.Arch
		name string
		hcfg hammer.Config
	}
	var specs []rowSpec
	for _, a := range []*arch.Arch{arch.AlderLake(), arch.RaptorLake()} {
		nops := TunedNops(a)
		specs = append(specs,
			rowSpec{a, "neither", hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1}},
			rowSpec{a, "obfuscation only", hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1, Obfuscate: true}},
			rowSpec{a, "nops only", hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1, Barrier: hammer.BarrierNop, Nops: nops}},
			rowSpec{a, "both (rhoHammer)", hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1, Barrier: hammer.BarrierNop, Nops: nops, Obfuscate: true}},
		)
	}
	out.Rows = parMap(len(specs), func(i int) AblationRow {
		sp := specs[i]
		s := newSession(sp.a, DefaultDIMM(), cfg.Seed)
		res, err := sweep.Run(s, pattern.KnownGood(), sp.hcfg, sweep.Options{
			Locations: locations, DurationPerLocationNS: duration, Bank: -1,
		})
		if err != nil {
			panic(fmt.Sprintf("ablation: %v", err))
		}
		var miss float64
		// Measure the configuration's ordering directly with a short
		// probe at a fresh location.
		probe, err := s.HammerPatternFor(pattern.KnownGood(), sp.hcfg, 0, 30000, 20e6)
		if err == nil {
			miss = probe.MissRate()
		}
		return AblationRow{Arch: sp.a.Name, Variant: sp.name, Flips: res.TotalFlips, MissRate: miss}
	})
	return out
}

// Render implements Renderer.
func (a *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Counter-speculation ablation (single-bank prefetch)\n")
	fmt.Fprintf(w, "%-12s %-18s %8s %10s\n", "Arch", "Variant", "Flips", "MissRate")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-12s %-18s %8d %10.2f\n", r.Arch, r.Variant, r.Flips, r.MissRate)
	}
}

// SamplerAblationRow is one TRR-sampler-capacity outcome.
type SamplerAblationRow struct {
	SamplerSize int
	Flips       int
}

// SamplerAblationResult probes how TRR sampler capacity affects
// ρHammer's yield — the design dimension DIMM vendors control.
type SamplerAblationResult struct {
	Arch string
	Rows []SamplerAblationRow
}

// AblationSamplerSize sweeps the DIMM's TRR sampler capacity.
func AblationSamplerSize(cfg Config) *SamplerAblationResult {
	cfg = cfg.withDefaults()
	a := arch.CometLake()
	out := &SamplerAblationResult{Arch: a.Name}
	duration := float64(cfg.scaled(150, 100)) * 1e6
	locations := cfg.scaled(4, 2)
	for _, size := range []int{2, 4, 6, 10, 16, 24} {
		d := DefaultDIMM()
		d.TRRSamplerSize = size
		s := newSession(a, d, cfg.Seed)
		res, err := sweep.Run(s, pattern.KnownGood(), RhoS(a), sweep.Options{
			Locations: locations, DurationPerLocationNS: duration, Bank: -1,
		})
		if err != nil {
			panic(fmt.Sprintf("sampler ablation: %v", err))
		}
		out.Rows = append(out.Rows, SamplerAblationRow{SamplerSize: size, Flips: res.TotalFlips})
	}
	return out
}

// Render implements Renderer.
func (s *SamplerAblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "TRR sampler capacity ablation on %s (rhoHammer, KnownGood pattern)\n", s.Arch)
	fmt.Fprintf(w, "%8s %8s\n", "Sampler", "Flips")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%8d %8d\n", r.SamplerSize, r.Flips)
	}
}
