package experiments

import (
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
	"rhohammer/internal/sweep"
)

// AblationRow is one counter-speculation variant's outcome.
type AblationRow struct {
	Arch     string
	Variant  string
	Flips    int
	MissRate float64
}

// AblationResult isolates the two counter-speculation ingredients of
// §4.4 — control-flow obfuscation and NOP pseudo-barriers — on the
// platforms where they matter. The paper presents them as a package;
// this ablation shows both are needed on Raptor Lake: obfuscation alone
// leaves the OoO share of the window open, and NOPs alone leave the
// branch-prediction share open (requiring far more NOPs at a rate cost).
type AblationResult struct{ Rows []AblationRow }

// AblationCounterSpec sweeps the best pattern under the four
// obfuscation/NOP combinations.
func AblationCounterSpec(cfg Config) *AblationResult {
	return runSpec[*AblationResult](cfg, "ablation-cs")
}

func ablationCSSpec(cfg Config) campaign.Spec {
	budget := campaign.Budget{
		Locations:  cfg.scaled(6, 3),
		DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
	}
	var cells []campaign.Cell
	for _, a := range []*arch.Arch{arch.AlderLake(), arch.RaptorLake()} {
		nops := TunedNops(a)
		for _, v := range []struct {
			name string
			hcfg hammer.Config
		}{
			{"neither", hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1}},
			{"obfuscation only", hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1, Obfuscate: true}},
			{"nops only", hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1, Barrier: hammer.BarrierNop, Nops: nops}},
			{"both (rhoHammer)", hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1, Barrier: hammer.BarrierNop, Nops: nops, Obfuscate: true}},
		} {
			cells = append(cells, campaign.Cell{
				Key:  a.Name + "/" + v.name,
				Arch: a, DIMM: DefaultDIMM(), Config: v.hcfg,
				Pattern: pattern.KnownGood(), Budget: budget, Aux: v.name,
			})
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: sweepCell(func(c campaign.Cell, s *hammer.Session, res sweep.Result) any {
			var miss float64
			// Measure the configuration's ordering directly with a short
			// probe at a fresh location.
			probe, err := s.HammerPatternFor(c.Pattern, c.Config, 0, 30000, 20e6)
			if err == nil {
				miss = probe.MissRate()
			}
			return AblationRow{
				Arch: c.Arch.Name, Variant: c.Aux.(string),
				Flips: res.TotalFlips, MissRate: miss,
			}
		}),
		Gather: func(rs []any) any { return &AblationResult{Rows: gather[AblationRow](rs)} },
	}
}

// Render implements Renderer.
func (a *AblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Counter-speculation ablation (single-bank prefetch)\n")
	fmt.Fprintf(w, "%-12s %-18s %8s %10s\n", "Arch", "Variant", "Flips", "MissRate")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-12s %-18s %8d %10.2f\n", r.Arch, r.Variant, r.Flips, r.MissRate)
	}
}

// SamplerAblationRow is one TRR-sampler-capacity outcome.
type SamplerAblationRow struct {
	SamplerSize int
	Flips       int
}

// SamplerAblationResult probes how TRR sampler capacity affects
// ρHammer's yield — the design dimension DIMM vendors control.
type SamplerAblationResult struct {
	Arch string
	Rows []SamplerAblationRow
}

// AblationSamplerSize sweeps the DIMM's TRR sampler capacity.
func AblationSamplerSize(cfg Config) *SamplerAblationResult {
	return runSpec[*SamplerAblationResult](cfg, "ablation-sampler")
}

func ablationSamplerSpec(cfg Config) campaign.Spec {
	a := arch.CometLake()
	budget := campaign.Budget{
		Locations:  cfg.scaled(4, 2),
		DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
	}
	var cells []campaign.Cell
	for _, size := range []int{2, 4, 6, 10, 16, 24} {
		d := DefaultDIMM()
		d.TRRSamplerSize = size
		cells = append(cells, campaign.Cell{
			Key:  fmt.Sprintf("sampler-%d", size),
			Arch: a, DIMM: d, Config: RhoS(a),
			Pattern: pattern.KnownGood(), Budget: budget, Aux: size,
		})
	}
	return campaign.Spec{
		Cells: cells,
		Exec: sweepCell(func(c campaign.Cell, _ *hammer.Session, res sweep.Result) any {
			return SamplerAblationRow{SamplerSize: c.Aux.(int), Flips: res.TotalFlips}
		}),
		Gather: func(rs []any) any {
			return &SamplerAblationResult{Arch: a.Name, Rows: gather[SamplerAblationRow](rs)}
		},
	}
}

// Render implements Renderer.
func (s *SamplerAblationResult) Render(w io.Writer) {
	fmt.Fprintf(w, "TRR sampler capacity ablation on %s (rhoHammer, KnownGood pattern)\n", s.Arch)
	fmt.Fprintf(w, "%8s %8s\n", "Sampler", "Flips")
	for _, r := range s.Rows {
		fmt.Fprintf(w, "%8d %8d\n", r.SamplerSize, r.Flips)
	}
}
