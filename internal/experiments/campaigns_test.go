package experiments

import "testing"

// The headline campaign results (Figs. 9, 11 and Table 6) take minutes
// at full scale; these tests run them at reduced scale and assert the
// qualitative claims the paper makes.

func TestFig9BankScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzzing campaign")
	}
	res := Fig9(Config{Seed: 42, Scale: 0.6})
	get := func(archName, instr string, banks int) int {
		for _, c := range res.Cells {
			if c.Arch == archName && c.Instr == instr && c.Banks == banks {
				return c.Flips
			}
		}
		t.Fatalf("missing cell %s/%s/%d", archName, instr, banks)
		return 0
	}
	// Comet Lake: prefetch effectiveness grows with banks and beats
	// loads at multi-bank widths.
	pfTotal, ldTotal := 0, 0
	for banks := 1; banks <= 4; banks++ {
		pfTotal += get("Comet Lake", "prefetcht2", banks)
		ldTotal += get("Comet Lake", "load", banks)
	}
	if pfTotal <= ldTotal {
		t.Errorf("Comet Lake: prefetch total %d should exceed load total %d", pfTotal, ldTotal)
	}
	if get("Comet Lake", "prefetcht2", 3) <= get("Comet Lake", "prefetcht2", 1) {
		t.Error("Comet Lake: multi-bank prefetch should beat single-bank")
	}
	// Raptor Lake without counter-speculation: loads produce nothing;
	// prefetching alone stays (near) dead — the §4.3 conclusion that
	// motivates §4.4.
	for banks := 1; banks <= 4; banks++ {
		if f := get("Raptor Lake", "load", banks); f != 0 {
			t.Errorf("Raptor Lake load at %d banks: %d flips", banks, f)
		}
	}
	raptorPF := 0
	for banks := 1; banks <= 4; banks++ {
		raptorPF += get("Raptor Lake", "prefetcht2", banks)
	}
	cometPF := pfTotal
	if raptorPF*2 > cometPF {
		t.Errorf("Raptor Lake prefetch w/o counter-spec (%d) should be far below Comet Lake (%d)",
			raptorPF, cometPF)
	}
}

func TestTable6Landscape(t *testing.T) {
	if testing.Short() {
		t.Skip("full fuzzing matrix")
	}
	res := Table6(Config{Seed: 42, Scale: 0.6})
	cell := func(archName, dimm, strategy string) Table6Cell {
		for _, c := range res.Cells {
			if c.Arch == archName && c.DIMM == dimm && c.Strategy == strategy {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s/%s", archName, dimm, strategy)
		return Table6Cell{}
	}

	// M1 never flips under any strategy on any platform.
	for _, a := range []string{"Comet Lake", "Rocket Lake", "Alder Lake", "Raptor Lake"} {
		for _, st := range []string{"BL-S", "BL-M", "rho-S", "rho-M"} {
			if c := cell(a, "M1", st); c.Total != 0 {
				t.Errorf("M1 flipped: %s/%s = %d", a, st, c.Total)
			}
		}
	}
	// Baselines on Alder/Raptor Lake: zero everywhere.
	for _, a := range []string{"Alder Lake", "Raptor Lake"} {
		for _, d := range []string{"S1", "S2", "S3", "S4", "S5", "H1"} {
			if c := cell(a, d, "BL-S"); c.Total != 0 {
				t.Errorf("%s/%s BL-S flipped %d", a, d, c.Total)
			}
		}
	}
	// ρHammer revives the vulnerable S-family modules on Raptor Lake.
	revived := 0
	for _, d := range []string{"S1", "S2", "S3", "S4"} {
		if cell("Raptor Lake", d, "rho-S").Total > 0 || cell("Raptor Lake", d, "rho-M").Total > 0 {
			revived++
		}
	}
	if revived < 3 {
		t.Errorf("rhoHammer revived only %d/4 vulnerable DIMMs on Raptor Lake", revived)
	}
	// rho-M beats rho-S in aggregate on every platform (the paper's
	// "ρ-M always outperforms ρ-S" observation, at campaign level).
	for _, a := range []string{"Comet Lake", "Rocket Lake", "Alder Lake", "Raptor Lake"} {
		sTot, mTot := 0, 0
		for _, d := range []string{"S1", "S2", "S3", "S4"} {
			sTot += cell(a, d, "rho-S").Total
			mTot += cell(a, d, "rho-M").Total
		}
		if mTot < sTot {
			t.Errorf("%s: rho-M total %d below rho-S total %d", a, mTot, sTot)
		}
	}
	// The DIMM vulnerability ordering on Comet Lake: S4+S3 above S1;
	// S5/H1 far below the S-family's vulnerable members.
	vulnerable := cell("Comet Lake", "S4", "rho-M").Total + cell("Comet Lake", "S3", "rho-M").Total
	weak := cell("Comet Lake", "S5", "rho-M").Total + cell("Comet Lake", "H1", "rho-M").Total
	if vulnerable <= weak {
		t.Errorf("vulnerability ordering broken: S3+S4=%d vs S5+H1=%d", vulnerable, weak)
	}
	// Best-pattern counts never exceed totals.
	for _, c := range res.Cells {
		if c.Best > c.Total {
			t.Errorf("%s/%s/%s: best %d > total %d", c.Arch, c.DIMM, c.Strategy, c.Best, c.Total)
		}
	}
}

func TestFig11Revival(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeping campaign")
	}
	res := Fig11(Config{Seed: 42, Scale: 0.5})
	rate := func(archName, strategy string) float64 {
		for _, s := range res.Series {
			if s.Arch == archName && s.Strategy == strategy {
				return s.PerMin
			}
		}
		t.Fatalf("missing series %s/%s", archName, strategy)
		return 0
	}
	// Comet/Rocket Lake: both work; rhoHammer is substantially faster.
	for _, a := range []string{"Comet Lake", "Rocket Lake"} {
		bl, rho := rate(a, "baseline"), rate(a, "rhoHammer")
		if bl <= 0 {
			t.Errorf("%s: baseline rate %.0f, want > 0", a, bl)
		}
		if rho < bl*2 {
			t.Errorf("%s: rho rate %.0f not clearly above baseline %.0f", a, rho, bl)
		}
	}
	// Alder/Raptor Lake: baseline zero, rhoHammer alive.
	for _, a := range []string{"Alder Lake", "Raptor Lake"} {
		if bl := rate(a, "baseline"); bl != 0 {
			t.Errorf("%s: baseline rate %.0f, want 0", a, bl)
		}
		if rho := rate(a, "rhoHammer"); rho <= 0 {
			t.Errorf("%s: rhoHammer rate %.0f, want > 0", a, rho)
		}
	}
	// The cumulative series must be non-decreasing and consistent.
	for _, s := range res.Series {
		sum := 0
		for _, p := range s.Points {
			sum += p.Flips
		}
		if sum != s.Total {
			t.Errorf("%s/%s: series sum %d != total %d", s.Arch, s.Strategy, sum, s.Total)
		}
	}
}
