package experiments

import (
	"runtime"
	"sync"
)

// parMap evaluates fn(0..n-1) concurrently on up to GOMAXPROCS workers
// and returns the results in index order. Every experiment cell builds
// its own session (own RNG, own device), so cells are independent and
// the output is bit-identical to the sequential loop — parallelism only
// changes wall-clock time. The heavyweight campaigns (Table 6, Fig. 9,
// Fig. 11) are matrix-shaped and dominated by independent hammering
// runs, which this speeds up by nearly the core count.
func parMap[T any](n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				out[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}
