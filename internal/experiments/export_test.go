package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONEnvelope(t *testing.T) {
	var buf bytes.Buffer
	res := Table1(small)
	if err := WriteJSON(&buf, "table1", small, res); err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if env["experiment"] != "table1" || env["seed"].(float64) != 42 {
		t.Errorf("envelope: %v", env)
	}
	if !strings.Contains(buf.String(), "Raptor Lake") {
		t.Error("result payload missing")
	}
}

// TestCanonicalEnvelopeIsSchedulingFree pins the canonical exporter:
// two runs of the same campaign at different worker counts produce
// byte-identical canonical envelopes even though their as-executed
// envelopes differ in wall times, and the canonical form zeroes only
// the scheduling fields (seeds, keys and result survive).
func TestCanonicalEnvelopeIsSchedulingFree(t *testing.T) {
	canon := func(workers int) []byte {
		cfg := Config{Seed: 42, Scale: 0.1, Workers: workers}
		res, out, err := RunOutcome("table2", cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteCanonicalOutcomeJSON(&buf, "table2", cfg, res, out); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := canon(1), canon(8)
	if !bytes.Equal(a, b) {
		t.Errorf("canonical envelopes differ across worker counts:\n%s\n%s", a, b)
	}
	var env map[string]any
	if err := json.Unmarshal(a, &env); err != nil {
		t.Fatal(err)
	}
	if _, has := env["workers"]; has {
		t.Error("canonical envelope still carries the resolved worker count")
	}
	if _, has := env["wall_ns"]; has {
		t.Error("canonical envelope still carries the campaign wall time")
	}
	cells := env["cells"].([]any)
	if len(cells) == 0 {
		t.Fatal("canonical envelope lost its cells")
	}
	cell := cells[0].(map[string]any)
	if cell["wall_ns"].(float64) != 0 {
		t.Error("canonical cell still carries a wall time")
	}
	if cell["key"] == "" || cell["seed"].(float64) == 0 {
		t.Errorf("canonical cell lost its identity: %v", cell)
	}
}

func TestFig4JSONMarshals(t *testing.T) {
	res := &Fig4Result{
		Archs: []string{"A"},
		Bits:  []uint{6, 7},
		Matrix: []map[[2]uint]float64{
			{{6, 7}: 120},
		},
		Thres: []float64{100},
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sbdr":true`) {
		t.Errorf("heatmap JSON: %s", data)
	}
}
