package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestWriteJSONEnvelope(t *testing.T) {
	var buf bytes.Buffer
	res := Table1(small)
	if err := WriteJSON(&buf, "table1", small, res); err != nil {
		t.Fatal(err)
	}
	var env map[string]any
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if env["experiment"] != "table1" || env["seed"].(float64) != 42 {
		t.Errorf("envelope: %v", env)
	}
	if !strings.Contains(buf.String(), "Raptor Lake") {
		t.Error("result payload missing")
	}
}

func TestFig4JSONMarshals(t *testing.T) {
	res := &Fig4Result{
		Archs: []string{"A"},
		Bits:  []uint{6, 7},
		Matrix: []map[[2]uint]float64{
			{{6, 7}: 120},
		},
		Thres: []float64{100},
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"sbdr":true`) {
		t.Errorf("heatmap JSON: %s", data)
	}
}
