// Package experiments regenerates every table and figure of the paper's
// evaluation on the simulated substrate. Each experiment is a pure
// function of (seed, scale) returning a structured result with a text
// renderer; cmd/experiments exposes them on the command line and the
// repository's top-level benchmarks time them.
//
// Scale trades fidelity for runtime: 1.0 approximates the paper's
// budgets (hours of simulated hammering), while the defaults used by
// tests and benchmarks run in seconds and preserve every qualitative
// conclusion. EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/hammer"
	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/stats"
	"rhohammer/internal/timing"
)

// Config selects the effort and determinism of an experiment run.
type Config struct {
	// Seed fixes all randomness (DIMM vulnerability maps, speculation,
	// fuzzing). The same seed reproduces identical numbers; each
	// campaign cell derives its own stream from the seed and its stable
	// cell key (see internal/campaign).
	Seed int64
	// Scale multiplies the default (CI-sized) workload budgets; 1 is
	// the fast default, larger values approach the paper's budgets.
	Scale float64
	// Workers bounds the campaign runner's worker pool; <= 0 means
	// GOMAXPROCS. Results are bit-identical for every value — Workers
	// only changes wall-clock time.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// scaled returns base*Scale, at least min.
func (c Config) scaled(base, min int) int {
	n := int(float64(base) * c.Scale)
	if n < min {
		n = min
	}
	return n
}

// Renderer is implemented by every experiment result.
type Renderer interface {
	Render(w io.Writer)
}

// DefaultDIMM is the module used by experiments that fix the DIMM (the
// paper's workhorse is the vendor-S family; S3 flips on every platform).
func DefaultDIMM() *arch.DIMM { return arch.DIMMS3() }

// newSession builds a hammer session or panics — experiment inputs are
// all static profiles, so a failure is a programming error.
func newSession(a *arch.Arch, d *arch.DIMM, seed int64) *hammer.Session {
	s, err := hammer.NewSession(a, d, seed)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return s
}

// newMeasurerFor builds the timing stack (device, controller, measurer,
// pool) for reverse-engineering experiments on a platform.
func newMeasurerFor(a *arch.Arch, d *arch.DIMM, seed int64) (*timing.Measurer, *mem.Pool) {
	truth, ok := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	if !ok {
		panic(fmt.Sprintf("experiments: no mapping for %s/%d GiB", a.MappingFamily, d.SizeGiB))
	}
	r := stats.NewRand(seed)
	dev := dram.NewDevice(d, seed)
	ctrl := memctrl.New(a, truth, dev)
	return timing.NewMeasurer(ctrl, r), mem.NewPool(truth.Size(), 0.7, r)
}

// TunedNops returns the tuned single-bank counter-speculation NOP count
// for an architecture. The constants live in internal/hammer (the same
// table Attack.RecommendedSingleBankConfig consumes);
// TestTunedNopsNearOptimum verifies they track the tuning phase.
func TunedNops(a *arch.Arch) int { return hammer.TunedNops(a) }

// TunedNopsMulti is the equivalent optimum for multi-bank hammering:
// bank interleaving already spreads each bank's accesses, so far fewer
// NOPs are needed before the rate penalty dominates.
func TunedNopsMulti(a *arch.Arch) int { return hammer.TunedNopsMulti(a) }

// OptimalBanks is the multi-bank width fuzzing identifies as optimal
// (Fig. 9 peaks at 3 banks on Comet Lake; the newer platforms behave
// alike on this substrate).
func OptimalBanks(a *arch.Arch) int { return hammer.OptimalBanks(a) }

// RhoS returns the ρHammer single-bank configuration for an
// architecture: prefetch hammering with counter-speculation.
func RhoS(a *arch.Arch) hammer.Config { return hammer.RecommendedSingleBank(a) }

// RhoM returns the ρHammer optimal multi-bank configuration.
func RhoM(a *arch.Arch) hammer.Config { return hammer.Recommended(a) }

// BaselineS returns the load-based single-bank baseline
// (Blacksmith-style).
func BaselineS() hammer.Config { return hammer.Baseline() }

// BaselineM returns the load-based multi-bank baseline
// (SledgeHammer-style).
func BaselineM(a *arch.Arch) hammer.Config {
	c := hammer.Baseline()
	c.Banks = OptimalBanks(a)
	return c
}

// instrNames maps Fig. 6 series names to hammer instructions.
var instrNames = []struct {
	Name  string
	Instr hammer.Instr
}{
	{"load", hammer.InstrLoad},
	{"prefetcht0", hammer.InstrPrefetchT0},
	{"prefetcht1", hammer.InstrPrefetchT1},
	{"prefetcht2", hammer.InstrPrefetchT2},
	{"prefetchnta", hammer.InstrPrefetchNTA},
}
