package experiments

import (
	"bytes"
	"testing"

	"rhohammer/internal/hammer"
)

// TestCampaignPayloadDifferential is the spec-level bit-identity check
// for the compiled-payload executor: registered hammering campaigns
// must render byte-identical output whether their sessions run compiled
// payloads (the default) or are forced onto the interpreted engine via
// RHOHAMMER_NOPAYLOAD. Together with the golden-hash tests (which pin
// the same bytes across history) this guarantees the fast path cannot
// regenerate any golden.
func TestCampaignPayloadDifferential(t *testing.T) {
	cfg := Config{Seed: 42, Scale: 0.2}
	names := []string{"table3"}
	if !testing.Short() {
		// mitigations exercises pTRR, DDR5 RFM and row swap inside real
		// campaign cells; fig10 sweeps the NOP pseudo-barrier count.
		names = append(names, "mitigations", "fig10")
	}

	base := map[string][]byte{}
	for _, n := range names {
		base[n] = renderBytes(t, n, cfg)
	}

	t.Setenv(hammer.NoPayloadEnv, "1")
	for _, n := range names {
		if got := renderBytes(t, n, cfg); !bytes.Equal(got, base[n]) {
			t.Errorf("%s rendered differently on the interpreted engine (%d vs %d bytes): compiled path diverges",
				n, len(got), len(base[n]))
		}
	}
}
