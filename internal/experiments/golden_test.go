package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
)

// Golden output hashes at Seed 42, Scale 0.5, captured after the
// campaign-engine refactor introduced per-cell seed derivation
// (stats.SplitSeed over "spec/cellKey"). That derivation changed every
// RNG stream once, intentionally; from here on the hashes again pin
// simulation results bit-for-bit. Any further divergence means a change
// altered results, not just speed or structure.
var goldenHashes = []struct {
	name string
	want string
}{
	{"table3", "2f84c61faa970673992c87c7caad8b41e80f626407b980ad17179b7bf495096e"},
	{"table6", "7520fe96c3ca4f393ceeb276d3db98c402c830d4011c7e3347edef539380a1d3"},
	{"fig9", "5c9d28b458cec9d43994d3300a47d00dcfe0a5e49707f1c32f4e7068897b63d2"},
}

// TestGoldenOutputs locks the rendered experiment output at a fixed
// (seed, scale) to the hashes above. Regenerate with `go run
// ./cmd/goldenhash` — but only after establishing that an output change
// is intended (e.g. a new seed-derivation scheme), never to make an
// optimization pass.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaigns are minutes long; skipped with -short")
	}
	cfg := Config{Seed: 42, Scale: 0.5}
	for _, g := range goldenHashes {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			r, err := Run(g.name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			r.Render(&buf)
			got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
			if got != g.want {
				t.Errorf("%s output hash = %s, want %s (simulation results changed)",
					g.name, got, g.want)
			}
		})
	}
}
