package experiments

import (
	"testing"
)

// TestGoldenOutputs locks the rendered experiment output at the golden
// configuration to the hashes in Goldens. Regenerate with `go run
// ./cmd/goldenhash` — but only after establishing that an output change
// is intended (e.g. a new seed-derivation scheme), never to make an
// optimization pass. `goldenhash -check` runs the same comparison from
// the command line.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaigns are minutes long; skipped with -short")
	}
	for _, g := range Goldens() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			t.Parallel()
			got, _, err := GoldenHash(g.Name)
			if err != nil {
				t.Fatal(err)
			}
			if got != g.SHA256 {
				t.Errorf("%s output hash = %s, want %s (simulation results changed)",
					g.Name, got, g.SHA256)
			}
		})
	}
}
