package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"
)

// Golden output hashes captured from the pre-optimization activation
// pipeline (commit 986e887) at Seed 42, Scale 0.5. The hot-path rewrite
// (flat row-state cache, neighbor pinning, epoch memoization, TRR
// log-and-replay, program caching) is required to be bit-identical: any
// divergence in these hashes means an optimization changed simulation
// results, not just speed.
var goldenHashes = []struct {
	name string
	run  func(Config) Renderer
	want string
}{
	{"Table3", func(c Config) Renderer { return Table3(c) },
		"b2a1eb860eb2acb0012bde66437617238bfc93b94064b59d7ed2e5dfccc7ad73"},
	{"Table6", func(c Config) Renderer { return Table6(c) },
		"2f48cdaf8c1129542ed95320a530592674cb8c3be3c87461c3c7912c6cb1d43e"},
	{"Fig9", func(c Config) Renderer { return Fig9(c) },
		"ea3a49c42efd55a8d998666d1394f350d4de4c0eaedca850c5600680455c83b5"},
}

// TestGoldenOutputs locks the rendered experiment output at a fixed
// (seed, scale) to the hashes above. Regenerate with `go run
// ./cmd/goldenhash` — but only after establishing that an output change
// is intended, never to make an optimization pass.
func TestGoldenOutputs(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaigns are minutes long; skipped with -short")
	}
	cfg := Config{Seed: 42, Scale: 0.5}
	for _, g := range goldenHashes {
		g := g
		t.Run(g.name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			g.run(cfg).Render(&buf)
			got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
			if got != g.want {
				t.Errorf("%s output hash = %s, want %s (simulation results changed)",
					g.name, got, g.want)
			}
		})
	}
}
