package experiments

import (
	"errors"
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/chain"
	"rhohammer/internal/hammer"
)

// ChainRow is one allocator/hammerer/victim combination's end-to-end
// outcome.
type ChainRow struct {
	Cell      string
	Allocator string
	Hammerer  string
	Victim    string
	Regions   int
	Skipped   int
	Flips     int
	Targets   int
	Attempts  int
	Secs      float64
	Success   bool
	// Note names the failed stage on failure (empty on success).
	Note string
}

// ChainResult is the full attack-chain grid: every composition of the
// chain layer's allocators, hammerers and victims run end to end on one
// platform.
type ChainResult struct{ Rows []ChainRow }

// ChainGrid runs the 2x2x2 allocator x hammerer x victim grid.
func ChainGrid(cfg Config) *ChainResult { return runSpec[*ChainResult](cfg, "chain") }

func chainSpec(cfg Config) campaign.Spec {
	a := arch.RaptorLake()
	var cells []campaign.Cell
	for _, al := range chain.Allocators() {
		for _, h := range chain.Hammerers() {
			for _, v := range chain.Victims() {
				p := chain.Plan{Allocator: al, Hammerer: h, Victim: v}
				cells = append(cells, campaign.Cell{
					Key: p.Key(), Arch: a, DIMM: DefaultDIMM(),
					// The floors keep tiny scales genuinely tiny (the race-
					// detector determinism run uses scale 0.1); at the golden
					// scale 0.5 these resolve to 6 regions x 100ms.
					Budget: campaign.Budget{
						Locations:  cfg.scaled(12, 2),
						DurationNS: float64(cfg.scaled(200, 20)) * 1e6,
					},
					Aux: p,
				})
			}
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
			if err != nil {
				return nil, err
			}
			p := c.Aux.(chain.Plan)
			p.Regions = c.Budget.Locations
			p.DurationPerLocationNS = c.Budget.DurationNS
			// A failed chain is a reportable row, not a cell error — the
			// grid's point is which compositions survive which stage.
			res, rerr := p.Run(s)
			row := ChainRow{
				Cell:      p.Key(),
				Allocator: p.Allocator,
				Hammerer:  p.Hammerer,
				Victim:    p.Victim,
				Regions:   res.Regions,
				Skipped:   res.Skipped,
				Flips:     res.TotalFlips,
				Targets:   len(res.Targets),
				Attempts:  res.Attempts,
				Secs:      res.Phases.TotalNS() / 1e9,
				Success:   res.Success,
			}
			if rerr != nil {
				row.Note = chainNote(rerr)
			}
			return row, nil
		},
		Gather: func(rs []any) any { return &ChainResult{Rows: gather[ChainRow](rs)} },
	}
}

// chainNote maps a chain's typed stage errors onto short table notes.
func chainNote(err error) string {
	var (
		allocErr  *chain.AllocError
		tmplErr   *chain.TemplateError
		noTargets *chain.NoTargetsError
		exhausted *chain.ExhaustedError
		retrigger *chain.RetriggerError
	)
	switch {
	case errors.As(err, &allocErr):
		return "allocation failed"
	case errors.As(err, &tmplErr):
		return "templating failed"
	case errors.As(err, &noTargets):
		return "no usable flips"
	case errors.As(err, &exhausted):
		return "all targets failed"
	case errors.As(err, &retrigger):
		return "re-trigger failed"
	}
	return err.Error()
}

// Render implements Renderer.
func (e *ChainResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Attack-chain grid: allocator x hammerer x victim\n")
	fmt.Fprintf(w, "%-14s %7s %7s %7s %7s %8s %8s %s\n",
		"Chain", "Regions", "Flips", "Targets", "Tries", "Time(s)", "Result", "Note")
	for _, r := range e.Rows {
		result := "FAILED"
		if r.Success {
			result = "OK"
		}
		fmt.Fprintf(w, "%-14s %7d %7d %7d %7d %8.1f %8s %s\n",
			r.Cell, r.Regions, r.Flips, r.Targets, r.Attempts, r.Secs, result, r.Note)
	}
}
