package experiments

import "rhohammer/internal/campaign"

// Wire registration for the distributed fabric: every concrete type a
// registered Spec.Exec can return is registered with the campaign gob
// codec here, so worker nodes can ship per-cell results back to the
// coordinator losslessly (see SCALING.md). TestWireRoundTripsEverySpec
// pins this list against the registry — a new spec whose cell type is
// missing here fails that test, not a production lease.
func init() {
	for _, v := range []any{
		// Single-cell campaigns return their full result as the one cell.
		(*Table1Result)(nil),
		(*Table2Result)(nil),
		(*Fig3Result)(nil),
		(*Fig10Result)(nil),
		// Grid campaigns return one row/point/cell per campaign cell.
		Fig4ArchMap{},
		Fig6Cell{},
		Fig8Point{},
		Fig9Cell{},
		Fig11Series{},
		Table3Row{},
		Table4Row{},
		Table5Cell{},
		Table6Cell{},
		ChainRow{},
		E2ERow{},
		MitigationRow{},
		AblationRow{},
		SamplerAblationRow{},
		ReplayRoundTripRow{},
	} {
		campaign.RegisterResultType(v)
	}
}
