package experiments

import (
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/hammer"
	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/pattern"
	"rhohammer/internal/reverse"
	"rhohammer/internal/stats"
	"rhohammer/internal/sweep"
	"rhohammer/internal/timing"
)

// ---------------------------------------------------------------- Table 1

// Table1Result lists the machine setups.
type Table1Result struct{ Archs []*arch.Arch }

// Table1 reproduces the Table 1 inventory from the architecture
// profiles.
func Table1(cfg Config) *Table1Result { return runSpec[*Table1Result](cfg, "table1") }

func table1Spec(Config) campaign.Spec {
	return campaign.Spec{
		Cells: []campaign.Cell{{Key: "inventory"}},
		Exec: func(campaign.Cell, int64) (any, error) {
			return &Table1Result{Archs: arch.All()}, nil
		},
		Gather: single,
	}
}

// Render implements Renderer.
func (t *Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 1: desktop machine setups\n")
	fmt.Fprintf(w, "%-12s %-12s %s\n", "Arch", "CPU", "Max Mem Freq")
	for _, a := range t.Archs {
		fmt.Fprintf(w, "%-12s %-12s %d\n", a.Name, a.CPU, a.MemFreqMHz)
	}
}

// ---------------------------------------------------------------- Table 2

// Table2Result lists the DIMMs.
type Table2Result struct{ DIMMs []*arch.DIMM }

// Table2 reproduces the Table 2 inventory from the DIMM profiles.
func Table2(cfg Config) *Table2Result { return runSpec[*Table2Result](cfg, "table2") }

func table2Spec(Config) campaign.Spec {
	return campaign.Spec{
		Cells: []campaign.Cell{{Key: "inventory"}},
		Exec: func(campaign.Cell, int64) (any, error) {
			return &Table2Result{DIMMs: arch.AllDIMMs()}, nil
		},
		Gather: single,
	}
}

// Render implements Renderer.
func (t *Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2: DDR4 UDIMMs\n")
	fmt.Fprintf(w, "%-4s %-10s %-6s %-6s %s\n", "ID", "Date", "Freq", "Size", "Geometry (RK, BK, R)")
	for _, d := range t.DIMMs {
		fmt.Fprintf(w, "%-4s %-10s %-6d %-6d (%d, %d, 2^%d)\n",
			d.ID, d.ProductionDate, d.FreqMHz, d.SizeGiB, d.Ranks, d.BanksPerRank, log2(d.RowsPerBank))
	}
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one barrier strategy's outcome on one architecture.
type Table3Row struct {
	Arch    string
	Barrier string
	Flips   int
	TimeMS  float64
}

// Table3Result compares barrier strategies on Alder and Raptor Lake.
type Table3Result struct{ Rows []Table3Row }

// Table3 sweeps the best pattern under the six barrier strategies of
// the paper: no barrier, CPUID, MFENCE, LFENCE with loads, LFENCE with
// prefetches, and ρHammer's NOP pseudo-barrier — all with control-flow
// obfuscation enabled, as in the paper.
func Table3(cfg Config) *Table3Result { return runSpec[*Table3Result](cfg, "table3") }

func table3Spec(cfg Config) campaign.Spec {
	budget := campaign.Budget{
		Locations:  cfg.scaled(8, 3),
		DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
	}
	var cells []campaign.Cell
	for _, a := range []*arch.Arch{arch.AlderLake(), arch.RaptorLake()} {
		for _, b := range []struct {
			label string
			hcfg  hammer.Config
		}{
			{"None", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierNone, Banks: 1, Obfuscate: true}},
			{"CPUID", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierCPUID, Banks: 1, Obfuscate: true}},
			{"MFENCE", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierMFence, Banks: 1, Obfuscate: true}},
			{"LFENCE (load)", hammer.Config{Instr: hammer.InstrLoad, Barrier: hammer.BarrierLFence, Banks: 1, Obfuscate: true}},
			{"LFENCE (prefetch)", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierLFence, Banks: 1, Obfuscate: true}},
			{"NOP", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierNop, Nops: TunedNops(a), Banks: 1, Obfuscate: true}},
		} {
			cells = append(cells, campaign.Cell{
				Key:  a.Name + "/" + b.label,
				Arch: a, DIMM: DefaultDIMM(), Config: b.hcfg,
				Pattern: pattern.KnownGood(), Budget: budget, Aux: b.label,
			})
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: sweepCell(func(c campaign.Cell, _ *hammer.Session, res sweep.Result) any {
			return Table3Row{
				Arch: c.Arch.Name, Barrier: c.Aux.(string),
				Flips: res.TotalFlips, TimeMS: res.TimeNS / 1e6,
			}
		}),
		Gather: func(rs []any) any { return &Table3Result{Rows: gather[Table3Row](rs)} },
	}
}

// Render implements Renderer.
func (t *Table3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 3: barrier comparison (flips / time in ms)\n")
	fmt.Fprintf(w, "%-12s %-18s %8s %10s\n", "Arch", "Barrier", "Flips", "Time(ms)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-12s %-18s %8d %10.1f\n", r.Arch, r.Barrier, r.Flips, r.TimeMS)
	}
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one recovered mapping.
type Table4Row struct {
	Family    string
	SizeGiB   int
	Recovered *mapping.Mapping
	Truth     *mapping.Mapping
	Correct   bool
	Seconds   float64
}

// Table4Result reports the recovered DRAM address mappings.
type Table4Result struct{ Rows []Table4Row }

// Table4 runs Algorithm 1 against every platform family and DIMM
// geometry of the paper's Table 4 and verifies the results against the
// ground-truth mappings.
func Table4(cfg Config) *Table4Result { return runSpec[*Table4Result](cfg, "table4") }

func table4Spec(Config) campaign.Spec {
	var cells []campaign.Cell
	for _, c := range []struct {
		a    *arch.Arch
		size int
	}{
		{arch.CometLake(), 8}, {arch.CometLake(), 16}, {arch.RocketLake(), 32},
		{arch.AlderLake(), 8}, {arch.RaptorLake(), 16}, {arch.RaptorLake(), 32},
	} {
		cells = append(cells, campaign.Cell{
			Key:  fmt.Sprintf("%s/%dGiB", c.a.Name, c.size),
			Arch: c.a, DIMM: dimmWithSize(c.size),
		})
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			truth, _ := mapping.ForPlatform(c.Arch.MappingFamily, c.DIMM.SizeGiB)
			meas, pool := newMeasurerFor(c.Arch, c.DIMM, seed)
			res := reverse.Recover(meas, pool, reverse.Options{})
			row := Table4Row{
				Family: c.Arch.MappingFamily, SizeGiB: c.DIMM.SizeGiB,
				Truth: truth, Seconds: res.Seconds(),
			}
			if res.OK() {
				row.Recovered = res.Mapping
				row.Correct = res.Mapping.Equal(truth)
			}
			return row, nil
		},
		Gather: func(rs []any) any { return &Table4Result{Rows: gather[Table4Row](rs)} },
	}
}

// dimmWithSize returns a DIMM profile of the requested capacity.
func dimmWithSize(sizeGiB int) *arch.DIMM {
	for _, d := range arch.AllDIMMs() {
		if d.SizeGiB == sizeGiB {
			return d
		}
	}
	panic(fmt.Sprintf("experiments: no DIMM of %d GiB", sizeGiB))
}

// Render implements Renderer.
func (t *Table4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 4: reverse-engineered DRAM address mappings\n")
	for _, r := range t.Rows {
		status := "FAILED"
		if r.Recovered != nil {
			if r.Correct {
				status = "correct"
			} else {
				status = "INCORRECT"
			}
		}
		fmt.Fprintf(w, "%-14s %2d GiB [%s, %.1fs]\n", r.Family, r.SizeGiB, status, r.Seconds)
		if r.Recovered != nil {
			fmt.Fprintf(w, "    %s\n", r.Recovered)
		}
	}
}

// ---------------------------------------------------------------- Table 5

// Table5Cell is one (tool, architecture) outcome.
type Table5Cell struct {
	Tool     string
	Arch     string
	Runs     int
	Correct  int
	MeanSecs float64 // over successful runs; 0 when none
}

// Table5Result compares reverse-engineering tools across architectures.
type Table5Result struct{ Cells []Table5Cell }

// Table5 runs each tool `runs` times per architecture (the paper uses
// 50 independent runs) and reports accuracy and mean runtime.
func Table5(cfg Config) *Table5Result { return runSpec[*Table5Result](cfg, "table5") }

// reverseTool maps a Table 5 tool name to its recovery entry point.
func reverseTool(name string) func(*timing.Measurer, *mem.Pool) reverse.Result {
	switch name {
	case "DRAMA":
		return func(m *timing.Measurer, p *mem.Pool) reverse.Result { return reverse.RecoverDRAMA(m, p, reverse.Options{}) }
	case "DRAMDig":
		return func(m *timing.Measurer, p *mem.Pool) reverse.Result { return reverse.RecoverDRAMDig(m, p, reverse.Options{}) }
	case "DARE":
		return func(m *timing.Measurer, p *mem.Pool) reverse.Result { return reverse.RecoverDARE(m, p, reverse.Options{}) }
	case "rhoHammer":
		return func(m *timing.Measurer, p *mem.Pool) reverse.Result { return reverse.Recover(m, p, reverse.Options{}) }
	default:
		panic(fmt.Sprintf("experiments: unknown reverse-engineering tool %q", name))
	}
}

func table5Spec(cfg Config) campaign.Spec {
	budget := campaign.Budget{Runs: cfg.scaled(6, 3)}
	var cells []campaign.Cell
	for _, tool := range []string{"DRAMA", "DRAMDig", "DARE", "rhoHammer"} {
		for _, a := range arch.All() {
			cells = append(cells, campaign.Cell{
				Key:  tool + "/" + a.Name,
				Arch: a, DIMM: DefaultDIMM(), Budget: budget, Aux: tool,
			})
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			tool := c.Aux.(string)
			run := reverseTool(tool)
			truth, _ := mapping.ForPlatform(c.Arch.MappingFamily, c.DIMM.SizeGiB)
			cell := Table5Cell{Tool: tool, Arch: c.Arch.Name, Runs: c.Budget.Runs}
			var secs float64
			for r := 0; r < c.Budget.Runs; r++ {
				meas, pool := newMeasurerFor(c.Arch, c.DIMM, stats.SplitSeed(seed, fmt.Sprintf("run/%d", r)))
				res := run(meas, pool)
				if res.OK() && sameFuncs(res.Mapping, truth) {
					cell.Correct++
					secs += res.Seconds()
				}
			}
			if cell.Correct > 0 {
				cell.MeanSecs = secs / float64(cell.Correct)
			}
			return cell, nil
		},
		Gather: func(rs []any) any { return &Table5Result{Cells: gather[Table5Cell](rs)} },
	}
}

// sameFuncs compares only the bank-function sets: DRAMA and DARE do not
// recover row ranges exactly, and the paper scores them on functions.
func sameFuncs(got, want *mapping.Mapping) bool {
	g, t := got.Canonical(), want.Canonical()
	if len(g.Funcs) != len(t.Funcs) {
		return false
	}
	for i := range g.Funcs {
		if g.Funcs[i] != t.Funcs[i] {
			return false
		}
	}
	return true
}

// Render implements Renderer.
func (t *Table5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 5: reverse-engineering tool comparison\n")
	fmt.Fprintf(w, "%-10s %-12s %10s %10s\n", "Tool", "Arch", "Accuracy", "Time(s)")
	for _, c := range t.Cells {
		timeStr := "-"
		if c.Correct > 0 {
			timeStr = fmt.Sprintf("%.1f", c.MeanSecs)
			if c.Correct < c.Runs {
				timeStr += "*" // partially non-deterministic
			}
		}
		fmt.Fprintf(w, "%-10s %-12s %7d/%-2d %10s\n", c.Tool, c.Arch, c.Correct, c.Runs, timeStr)
	}
	fmt.Fprintf(w, "(*) partially non-deterministic, (-) no correct result\n")
}

// ---------------------------------------------------------------- Table 6

// Table6Cell is one (DIMM, arch, strategy) fuzzing outcome.
type Table6Cell struct {
	Arch     string
	DIMM     string
	Strategy string // "BL-S", "BL-M", "rho-S", "rho-M"
	Total    int
	Best     int
}

// Table6Result is the 2-hour fuzzing matrix.
type Table6Result struct{ Cells []Table6Cell }

// Table6 runs the fuzzing campaign for every architecture, DIMM and
// strategy combination. The paper's 2-hour budget is represented by a
// scaled number of candidate patterns.
func Table6(cfg Config) *Table6Result { return runSpec[*Table6Result](cfg, "table6") }

// strategies enumerates the Table 6 columns for one architecture.
func strategies(a *arch.Arch) []struct {
	label string
	hcfg  hammer.Config
} {
	return []struct {
		label string
		hcfg  hammer.Config
	}{
		{"BL-S", BaselineS()},
		{"BL-M", BaselineM(a)},
		{"rho-S", RhoS(a)},
		{"rho-M", RhoM(a)},
	}
}

func table6Spec(cfg Config) campaign.Spec {
	budget := campaign.Budget{
		Patterns:   cfg.scaled(10, 5),
		Locations:  1,
		DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
	}
	var cells []campaign.Cell
	for _, a := range arch.All() {
		for _, d := range arch.AllDIMMs() {
			for _, st := range strategies(a) {
				cells = append(cells, campaign.Cell{
					Key:  a.Name + "/" + d.ID + "/" + st.label,
					Arch: a, DIMM: d, Config: st.hcfg, Budget: budget, Aux: st.label,
				})
			}
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			rep, err := fuzzCell(c, seed)
			if err != nil {
				return nil, err
			}
			return Table6Cell{
				Arch: c.Arch.Name, DIMM: c.DIMM.ID, Strategy: c.Aux.(string),
				Total: rep.TotalFlips, Best: rep.Best.Flips,
			}, nil
		},
		Gather: func(rs []any) any { return &Table6Result{Cells: gather[Table6Cell](rs)} },
	}
}

// Render implements Renderer.
func (t *Table6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 6: fuzzing bit-flip counts (total, best pattern)\n")
	fmt.Fprintf(w, "%-12s %-5s %8s %8s %8s %8s\n", "Arch", "DIMM", "BL-S", "BL-M", "rho-S", "rho-M")
	type key struct{ arch, dimm string }
	grid := map[key]map[string]Table6Cell{}
	var order []key
	for _, c := range t.Cells {
		k := key{c.Arch, c.DIMM}
		if grid[k] == nil {
			grid[k] = map[string]Table6Cell{}
			order = append(order, k)
		}
		grid[k][c.Strategy] = c
	}
	for _, k := range order {
		row := grid[k]
		fmt.Fprintf(w, "%-12s %-5s", k.arch, k.dimm)
		for _, st := range []string{"BL-S", "BL-M", "rho-S", "rho-M"} {
			c := row[st]
			fmt.Fprintf(w, " %4d,%-4d", c.Total, c.Best)
		}
		fmt.Fprintln(w)
	}
}
