package experiments

import (
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/hammer"
	"rhohammer/internal/mapping"
	"rhohammer/internal/pattern"
	"rhohammer/internal/reverse"
	"rhohammer/internal/sweep"
)

// ---------------------------------------------------------------- Table 1

// Table1Result lists the machine setups.
type Table1Result struct{ Archs []*arch.Arch }

// Table1 reproduces the Table 1 inventory from the architecture
// profiles.
func Table1(Config) *Table1Result { return &Table1Result{Archs: arch.All()} }

// Render implements Renderer.
func (t *Table1Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 1: desktop machine setups\n")
	fmt.Fprintf(w, "%-12s %-12s %s\n", "Arch", "CPU", "Max Mem Freq")
	for _, a := range t.Archs {
		fmt.Fprintf(w, "%-12s %-12s %d\n", a.Name, a.CPU, a.MemFreqMHz)
	}
}

// ---------------------------------------------------------------- Table 2

// Table2Result lists the DIMMs.
type Table2Result struct{ DIMMs []*arch.DIMM }

// Table2 reproduces the Table 2 inventory from the DIMM profiles.
func Table2(Config) *Table2Result { return &Table2Result{DIMMs: arch.AllDIMMs()} }

// Render implements Renderer.
func (t *Table2Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 2: DDR4 UDIMMs\n")
	fmt.Fprintf(w, "%-4s %-10s %-6s %-6s %s\n", "ID", "Date", "Freq", "Size", "Geometry (RK, BK, R)")
	for _, d := range t.DIMMs {
		fmt.Fprintf(w, "%-4s %-10s %-6d %-6d (%d, %d, 2^%d)\n",
			d.ID, d.ProductionDate, d.FreqMHz, d.SizeGiB, d.Ranks, d.BanksPerRank, log2(d.RowsPerBank))
	}
}

func log2(v uint64) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// ---------------------------------------------------------------- Table 3

// Table3Row is one barrier strategy's outcome on one architecture.
type Table3Row struct {
	Arch    string
	Barrier string
	Flips   int
	TimeMS  float64
}

// Table3Result compares barrier strategies on Alder and Raptor Lake.
type Table3Result struct{ Rows []Table3Row }

// Table3 sweeps the best pattern under the six barrier strategies of
// the paper: no barrier, CPUID, MFENCE, LFENCE with loads, LFENCE with
// prefetches, and ρHammer's NOP pseudo-barrier — all with control-flow
// obfuscation enabled, as in the paper.
func Table3(cfg Config) *Table3Result {
	cfg = cfg.withDefaults()
	out := &Table3Result{}
	pat := pattern.KnownGood()
	locations := cfg.scaled(8, 3)
	duration := float64(cfg.scaled(150, 100)) * 1e6
	type rowSpec struct {
		a    *arch.Arch
		name string
		hcfg hammer.Config
	}
	var specs []rowSpec
	for _, a := range []*arch.Arch{arch.AlderLake(), arch.RaptorLake()} {
		specs = append(specs,
			rowSpec{a, "None", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierNone, Banks: 1, Obfuscate: true}},
			rowSpec{a, "CPUID", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierCPUID, Banks: 1, Obfuscate: true}},
			rowSpec{a, "MFENCE", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierMFence, Banks: 1, Obfuscate: true}},
			rowSpec{a, "LFENCE (load)", hammer.Config{Instr: hammer.InstrLoad, Barrier: hammer.BarrierLFence, Banks: 1, Obfuscate: true}},
			rowSpec{a, "LFENCE (prefetch)", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierLFence, Banks: 1, Obfuscate: true}},
			rowSpec{a, "NOP", hammer.Config{Instr: hammer.InstrPrefetchT2, Barrier: hammer.BarrierNop, Nops: TunedNops(a), Banks: 1, Obfuscate: true}},
		)
	}
	out.Rows = parMap(len(specs), func(i int) Table3Row {
		sp := specs[i]
		s := newSession(sp.a, DefaultDIMM(), cfg.Seed)
		res, err := sweep.Run(s, pat, sp.hcfg, sweep.Options{
			Locations:             locations,
			DurationPerLocationNS: duration,
			Bank:                  -1,
		})
		if err != nil {
			panic(fmt.Sprintf("table3: %v", err))
		}
		return Table3Row{
			Arch: sp.a.Name, Barrier: sp.name,
			Flips: res.TotalFlips, TimeMS: res.TimeNS / 1e6,
		}
	})
	return out
}

// Render implements Renderer.
func (t *Table3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 3: barrier comparison (flips / time in ms)\n")
	fmt.Fprintf(w, "%-12s %-18s %8s %10s\n", "Arch", "Barrier", "Flips", "Time(ms)")
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-12s %-18s %8d %10.1f\n", r.Arch, r.Barrier, r.Flips, r.TimeMS)
	}
}

// ---------------------------------------------------------------- Table 4

// Table4Row is one recovered mapping.
type Table4Row struct {
	Family    string
	SizeGiB   int
	Recovered *mapping.Mapping
	Truth     *mapping.Mapping
	Correct   bool
	Seconds   float64
}

// Table4Result reports the recovered DRAM address mappings.
type Table4Result struct{ Rows []Table4Row }

// Table4 runs Algorithm 1 against every platform family and DIMM
// geometry of the paper's Table 4 and verifies the results against the
// ground-truth mappings.
func Table4(cfg Config) *Table4Result {
	cfg = cfg.withDefaults()
	out := &Table4Result{}
	for _, c := range []struct {
		a    *arch.Arch
		size int
	}{
		{arch.CometLake(), 8}, {arch.CometLake(), 16}, {arch.RocketLake(), 32},
		{arch.AlderLake(), 8}, {arch.RaptorLake(), 16}, {arch.RaptorLake(), 32},
	} {
		d := dimmWithSize(c.size)
		truth, _ := mapping.ForPlatform(c.a.MappingFamily, c.size)
		meas, pool := newMeasurerFor(c.a, d, cfg.Seed)
		res := reverse.Recover(meas, pool, reverse.Options{})
		row := Table4Row{
			Family: c.a.MappingFamily, SizeGiB: c.size,
			Truth: truth, Seconds: res.Seconds(),
		}
		if res.OK() {
			row.Recovered = res.Mapping
			row.Correct = res.Mapping.Equal(truth)
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// dimmWithSize returns a DIMM profile of the requested capacity.
func dimmWithSize(sizeGiB int) *arch.DIMM {
	for _, d := range arch.AllDIMMs() {
		if d.SizeGiB == sizeGiB {
			return d
		}
	}
	panic(fmt.Sprintf("experiments: no DIMM of %d GiB", sizeGiB))
}

// Render implements Renderer.
func (t *Table4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 4: reverse-engineered DRAM address mappings\n")
	for _, r := range t.Rows {
		status := "FAILED"
		if r.Recovered != nil {
			if r.Correct {
				status = "correct"
			} else {
				status = "INCORRECT"
			}
		}
		fmt.Fprintf(w, "%-14s %2d GiB [%s, %.1fs]\n", r.Family, r.SizeGiB, status, r.Seconds)
		if r.Recovered != nil {
			fmt.Fprintf(w, "    %s\n", r.Recovered)
		}
	}
}

// ---------------------------------------------------------------- Table 5

// Table5Cell is one (tool, architecture) outcome.
type Table5Cell struct {
	Tool     string
	Arch     string
	Runs     int
	Correct  int
	MeanSecs float64 // over successful runs; 0 when none
}

// Table5Result compares reverse-engineering tools across architectures.
type Table5Result struct{ Cells []Table5Cell }

// Table5 runs each tool `runs` times per architecture (the paper uses
// 50 independent runs) and reports accuracy and mean runtime.
func Table5(cfg Config) *Table5Result {
	cfg = cfg.withDefaults()
	runs := cfg.scaled(6, 3)
	out := &Table5Result{}
	tools := []struct {
		name string
		run  func(*arch.Arch, *arch.DIMM, int64) reverse.Result
	}{
		{"DRAMA", func(a *arch.Arch, d *arch.DIMM, seed int64) reverse.Result {
			m, p := newMeasurerFor(a, d, seed)
			return reverse.RecoverDRAMA(m, p, reverse.Options{})
		}},
		{"DRAMDig", func(a *arch.Arch, d *arch.DIMM, seed int64) reverse.Result {
			m, p := newMeasurerFor(a, d, seed)
			return reverse.RecoverDRAMDig(m, p, reverse.Options{})
		}},
		{"DARE", func(a *arch.Arch, d *arch.DIMM, seed int64) reverse.Result {
			m, p := newMeasurerFor(a, d, seed)
			return reverse.RecoverDARE(m, p, reverse.Options{})
		}},
		{"rhoHammer", func(a *arch.Arch, d *arch.DIMM, seed int64) reverse.Result {
			m, p := newMeasurerFor(a, d, seed)
			return reverse.Recover(m, p, reverse.Options{})
		}},
	}
	type cellSpec struct {
		toolIdx int
		a       *arch.Arch
	}
	var specs []cellSpec
	for ti := range tools {
		for _, a := range arch.All() {
			specs = append(specs, cellSpec{ti, a})
		}
	}
	out.Cells = parMap(len(specs), func(i int) Table5Cell {
		sp := specs[i]
		tool := tools[sp.toolIdx]
		d := DefaultDIMM()
		truth, _ := mapping.ForPlatform(sp.a.MappingFamily, d.SizeGiB)
		cell := Table5Cell{Tool: tool.name, Arch: sp.a.Name, Runs: runs}
		var secs float64
		for r := 0; r < runs; r++ {
			res := tool.run(sp.a, d, cfg.Seed+int64(r)*7919)
			if res.OK() && sameFuncs(res.Mapping, truth) {
				cell.Correct++
				secs += res.Seconds()
			}
		}
		if cell.Correct > 0 {
			cell.MeanSecs = secs / float64(cell.Correct)
		}
		return cell
	})
	return out
}

// sameFuncs compares only the bank-function sets: DRAMA and DARE do not
// recover row ranges exactly, and the paper scores them on functions.
func sameFuncs(got, want *mapping.Mapping) bool {
	g, t := got.Canonical(), want.Canonical()
	if len(g.Funcs) != len(t.Funcs) {
		return false
	}
	for i := range g.Funcs {
		if g.Funcs[i] != t.Funcs[i] {
			return false
		}
	}
	return true
}

// Render implements Renderer.
func (t *Table5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 5: reverse-engineering tool comparison\n")
	fmt.Fprintf(w, "%-10s %-12s %10s %10s\n", "Tool", "Arch", "Accuracy", "Time(s)")
	for _, c := range t.Cells {
		timeStr := "-"
		if c.Correct > 0 {
			timeStr = fmt.Sprintf("%.1f", c.MeanSecs)
			if c.Correct < c.Runs {
				timeStr += "*" // partially non-deterministic
			}
		}
		fmt.Fprintf(w, "%-10s %-12s %7d/%-2d %10s\n", c.Tool, c.Arch, c.Correct, c.Runs, timeStr)
	}
	fmt.Fprintf(w, "(*) partially non-deterministic, (-) no correct result\n")
}

// ---------------------------------------------------------------- Table 6

// Table6Cell is one (DIMM, arch, strategy) fuzzing outcome.
type Table6Cell struct {
	Arch     string
	DIMM     string
	Strategy string // "BL-S", "BL-M", "rho-S", "rho-M"
	Total    int
	Best     int
}

// Table6Result is the 2-hour fuzzing matrix.
type Table6Result struct{ Cells []Table6Cell }

// Table6 runs the fuzzing campaign for every architecture, DIMM and
// strategy combination. The paper's 2-hour budget is represented by a
// scaled number of candidate patterns.
func Table6(cfg Config) *Table6Result {
	cfg = cfg.withDefaults()
	out := &Table6Result{}
	opt := hammer.FuzzOptions{
		Patterns:   cfg.scaled(10, 5),
		Locations:  1,
		DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
	}
	type cellSpec struct {
		a        *arch.Arch
		d        *arch.DIMM
		strategy string
		hcfg     hammer.Config
	}
	var specs []cellSpec
	for _, a := range arch.All() {
		for _, d := range arch.AllDIMMs() {
			specs = append(specs,
				cellSpec{a, d, "BL-S", BaselineS()},
				cellSpec{a, d, "BL-M", BaselineM(a)},
				cellSpec{a, d, "rho-S", RhoS(a)},
				cellSpec{a, d, "rho-M", RhoM(a)},
			)
		}
	}
	out.Cells = parMap(len(specs), func(i int) Table6Cell {
		sp := specs[i]
		s := newSession(sp.a, sp.d, cfg.Seed)
		rep, err := s.Fuzz(sp.hcfg, opt)
		if err != nil {
			panic(fmt.Sprintf("table6: %v", err))
		}
		return Table6Cell{
			Arch: sp.a.Name, DIMM: sp.d.ID, Strategy: sp.strategy,
			Total: rep.TotalFlips, Best: rep.Best.Flips,
		}
	})
	return out
}

// Render implements Renderer.
func (t *Table6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 6: fuzzing bit-flip counts (total, best pattern)\n")
	fmt.Fprintf(w, "%-12s %-5s %8s %8s %8s %8s\n", "Arch", "DIMM", "BL-S", "BL-M", "rho-S", "rho-M")
	type key struct{ arch, dimm string }
	grid := map[key]map[string]Table6Cell{}
	var order []key
	for _, c := range t.Cells {
		k := key{c.Arch, c.DIMM}
		if grid[k] == nil {
			grid[k] = map[string]Table6Cell{}
			order = append(order, k)
		}
		grid[k][c.Strategy] = c
	}
	for _, k := range order {
		row := grid[k]
		fmt.Fprintf(w, "%-12s %-5s", k.arch, k.dimm)
		for _, st := range []string{"BL-S", "BL-M", "rho-S", "rho-M"} {
			c := row[st]
			fmt.Fprintf(w, " %4d,%-4d", c.Total, c.Best)
		}
		fmt.Fprintln(w)
	}
}
