package experiments

import (
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/exploit"
	"rhohammer/internal/hammer"
)

// E2ERow is one architecture's end-to-end attack outcome.
type E2ERow struct {
	Arch           string
	TotalFlips     int
	Exploitable    int
	TemplateSecs   float64
	EndToEndSecs   float64
	Attempts       int
	Success        bool
	CorruptPTEAddr uint64
}

// E2EResult reproduces the §5.3 end-to-end PTE-corruption runs.
type E2EResult struct{ Rows []E2ERow }

// E2E performs the full templating + massaging + exploitation pipeline
// on Alder and Raptor Lake (the platforms the paper demonstrates).
func E2E(cfg Config) *E2EResult { return runSpec[*E2EResult](cfg, "e2e") }

func e2eSpec(cfg Config) campaign.Spec {
	var cells []campaign.Cell
	for _, a := range []*arch.Arch{arch.AlderLake(), arch.RaptorLake()} {
		cells = append(cells, campaign.Cell{
			Key: a.Name, Arch: a, DIMM: DefaultDIMM(),
			Config: RhoS(a),
			Budget: campaign.Budget{
				Locations:  cfg.scaled(12, 6),
				DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
			},
		})
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
			if err != nil {
				return nil, err
			}
			// A failed exploit attempt is a reportable row, not a cell
			// error — the paper's table includes failures.
			res, rerr := exploit.Run(s, exploit.Options{
				Config:                c.Config,
				Regions:               c.Budget.Locations,
				DurationPerLocationNS: c.Budget.DurationNS,
			})
			row := E2ERow{
				Arch:         c.Arch.Name,
				TotalFlips:   res.TotalFlips,
				Exploitable:  len(res.Exploitable),
				TemplateSecs: res.TemplateTimeNS / 1e9,
				EndToEndSecs: res.TotalTimeNS() / 1e9,
				Attempts:     res.Attempts,
				Success:      res.Success,
			}
			if rerr != nil && !res.Success {
				row.Success = false
			}
			row.CorruptPTEAddr = res.VictimPTEAddr
			return row, nil
		},
		Gather: func(rs []any) any { return &E2EResult{Rows: gather[E2ERow](rs)} },
	}
}

// Render implements Renderer.
func (e *E2EResult) Render(w io.Writer) {
	fmt.Fprintf(w, "End-to-end PTE corruption (Rubicon-style massaging)\n")
	fmt.Fprintf(w, "%-12s %8s %8s %10s %10s %8s %s\n",
		"Arch", "Flips", "Exploit", "Templ(s)", "Total(s)", "Attempts", "Result")
	for _, r := range e.Rows {
		result := "FAILED"
		if r.Success {
			result = fmt.Sprintf("page-table R/W via PTE %#x", r.CorruptPTEAddr)
		}
		fmt.Fprintf(w, "%-12s %8d %8d %10.1f %10.1f %8d %s\n",
			r.Arch, r.TotalFlips, r.Exploitable, r.TemplateSecs, r.EndToEndSecs, r.Attempts, result)
	}
}
