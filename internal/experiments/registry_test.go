package experiments

import (
	"bytes"
	"testing"

	"rhohammer/internal/campaign"
)

// expectedCampaigns is the full surface of exported Table*/Fig* (plus
// aux) experiments, each of which must be registered exactly once under
// this name. Extending the package means extending this list — the
// test is the reminder.
var expectedCampaigns = []string{
	"table1", "table2", "table3", "table4", "table5", "table6",
	"fig3", "fig4", "fig6", "fig8", "fig9", "fig10", "fig11",
	"e2e", "chain", "mitigations", "ablation-cs", "ablation-sampler",
	"replay-roundtrip",
}

func TestRegistryCoversEveryExperiment(t *testing.T) {
	names := Registry.Names()
	seen := map[string]int{}
	for _, n := range names {
		seen[n]++
	}
	for _, want := range expectedCampaigns {
		if seen[want] != 1 {
			t.Errorf("campaign %q registered %d times, want exactly once", want, seen[want])
		}
	}
	if len(names) != len(expectedCampaigns) {
		t.Errorf("registry has %d entries, expected list has %d — keep them in sync",
			len(names), len(expectedCampaigns))
	}
}

// TestListSortedOrder pins the listing order surfaced by
// `experiments -list` and serverd's GET /v1/specs: lexical by name and
// independent of registration order, which tracks the paper's
// narrative instead.
func TestListSortedOrder(t *testing.T) {
	entries := Registry.SortedEntries()
	if len(entries) != len(expectedCampaigns) {
		t.Fatalf("SortedEntries has %d entries, want %d", len(entries), len(expectedCampaigns))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Name >= entries[i].Name {
			t.Errorf("SortedEntries out of order at %d: %q >= %q", i, entries[i-1].Name, entries[i].Name)
		}
	}
	for _, e := range entries {
		if e.Title == "" {
			t.Errorf("entry %s lost its description in the sorted listing", e.Name)
		}
	}
}

// TestRegistryResolvesEveryName is what `experiments -only <name>`
// relies on: every registered entry must build a well-formed spec.
func TestRegistryResolvesEveryName(t *testing.T) {
	for _, name := range expectedCampaigns {
		e, ok := Registry.Lookup(name)
		if !ok {
			t.Errorf("Lookup(%q) failed", name)
			continue
		}
		spec := e.Build(campaign.Params{Seed: 42, Scale: 0.1})
		if spec.Name != name {
			t.Errorf("%s: built spec named %q", name, spec.Name)
		}
		if spec.Kind != e.Kind {
			t.Errorf("%s: spec kind %v != entry kind %v", name, spec.Kind, e.Kind)
		}
		if spec.Exec == nil {
			t.Errorf("%s: spec has no Exec", name)
		}
		if len(spec.Cells) == 0 {
			t.Errorf("%s: spec has no cells", name)
		}
		keys := map[string]bool{}
		for _, c := range spec.Cells {
			if c.Key == "" {
				t.Errorf("%s: cell with empty key", name)
			}
			if keys[c.Key] {
				t.Errorf("%s: duplicate cell key %q", name, c.Key)
			}
			keys[c.Key] = true
		}
	}
}

// TestCampaignWorkerDeterminism is the contract the runner sells: the
// rendered bytes of a real table and a real figure are identical
// whether the grid runs on one worker or eight. `make verify` runs this
// under -race, which also shakes out any shared mutable state between
// cells.
func TestCampaignWorkerDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Scale: 0.1}
	for _, name := range []string{"table3", "fig6", "chain"} {
		name := name
		t.Run(name, func(t *testing.T) {
			serial := renderCampaign(t, name, cfg, 1)
			parallel := renderCampaign(t, name, cfg, 8)
			if !bytes.Equal(serial, parallel) {
				t.Errorf("%s: output differs between -parallel 1 (%d bytes) and -parallel 8 (%d bytes)",
					name, len(serial), len(parallel))
			}
		})
	}
}

func renderCampaign(t *testing.T, name string, cfg Config, workers int) []byte {
	t.Helper()
	cfg.Workers = workers
	r, err := Run(name, cfg)
	if err != nil {
		t.Fatalf("%s at %d workers: %v", name, workers, err)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	return buf.Bytes()
}
