package experiments

import (
	"bytes"
	"testing"

	"rhohammer/internal/obs"
)

// renderBytes runs the named campaign and returns its rendered bytes.
func renderBytes(t *testing.T, name string, cfg Config) []byte {
	t.Helper()
	r, err := Run(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	r.Render(&buf)
	return buf.Bytes()
}

// withObsEnabled runs fn with counters and tracing globally armed,
// restoring the disabled default afterwards.
func withObsEnabled(t *testing.T, traceCap int, fn func()) {
	t.Helper()
	obs.SetEnabled(true)
	obs.EnableTracing(traceCap)
	defer func() {
		obs.SetEnabled(false)
		obs.DisableTracing()
		obs.Default.Reset()
	}()
	fn()
}

// TestObsDoesNotPerturbResults is the observability contract at the
// experiment level: enabling counters and tracing must not change a
// single rendered byte, because observation never touches an RNG
// stream. It covers a pure-inventory table, a measurement figure, and
// a hammering campaign (which exercises dram/memctrl/hammer emission
// and ring overwrite via the tiny capacity).
func TestObsDoesNotPerturbResults(t *testing.T) {
	cfg := Config{Seed: 42, Scale: 0.2}
	names := []string{"table1", "fig3"}
	if !testing.Short() {
		// The hammering campaign doubles the test's cost; under -race
		// -short it would dominate the package budget, and the golden
		// re-check below already covers hammering at full scale.
		names = append(names, "table3")
	}

	base := map[string][]byte{}
	for _, n := range names {
		base[n] = renderBytes(t, n, cfg)
	}

	withObsEnabled(t, 64, func() {
		for _, n := range names {
			if got := renderBytes(t, n, cfg); !bytes.Equal(got, base[n]) {
				t.Errorf("%s rendered differently with obs enabled (%d vs %d bytes)",
					n, len(got), len(base[n]))
			}
		}
		if !testing.Short() {
			// The hammering campaign above ran on the compiled-payload
			// fast path (nothing armed a controller trace), so the byte
			// equality just checked is the proof that the payload
			// executor perturbs no RNG stream. Pin that the fast path
			// was actually exercised, not silently skipped.
			if obs.HammerPayloadCompiles.Load() == 0 {
				t.Error("hammering campaign compiled no payloads (fast path not exercised)")
			}
			if obs.HammerPayloadBatches.Load() == 0 {
				t.Error("hammering campaign executed no activation batches")
			}
		}
	})
}

// TestGoldenHashWithObsEnabled re-checks one pinned golden hash with
// the full observability stack armed — the same contract as above, but
// against the repository's bit-exactness anchor at golden scale.
func TestGoldenHashWithObsEnabled(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaigns are minutes long; skipped with -short")
	}
	var want string
	for _, g := range Goldens() {
		if g.Name == "table3" {
			want = g.SHA256
		}
	}
	if want == "" {
		t.Fatal("table3 missing from Goldens()")
	}
	withObsEnabled(t, obs.DefaultTraceCap, func() {
		got, _, err := GoldenHash("table3")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("table3 hash with obs enabled = %s, want %s (observation perturbed the simulation)", got, want)
		}
	})
}

// TestOutcomeCellStats checks that RunOutcome surfaces the per-cell
// execution stats the manifest and -json envelope depend on: every
// cell appears with its derived seed, a positive wall time, and one
// attempt.
func TestOutcomeCellStats(t *testing.T) {
	_, out, err := RunOutcome("fig3", Config{Seed: 42, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if out == nil || len(out.Cells) == 0 {
		t.Fatal("RunOutcome returned no cell stats")
	}
	for _, c := range out.Cells {
		if c.Key == "" {
			t.Error("cell stat with empty key")
		}
		if c.Seed == 0 {
			t.Errorf("cell %s: seed not derived", c.Key)
		}
		if c.Wall <= 0 {
			t.Errorf("cell %s: wall time %v not positive", c.Key, c.Wall)
		}
		if c.Attempts != 1 {
			t.Errorf("cell %s: attempts = %d, want 1", c.Key, c.Attempts)
		}
		if c.Err != "" {
			t.Errorf("cell %s: unexpected error %q", c.Key, c.Err)
		}
	}
	if out.Busy <= 0 || out.Occupancy() <= 0 {
		t.Errorf("busy %v / occupancy %v not positive", out.Busy, out.Occupancy())
	}
}
