package experiments

import (
	"testing"

	"rhohammer/internal/arch"
)

func TestMitigationsBlockRhoHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("mitigation matrix")
	}
	res := Mitigations(Config{Seed: 42, Scale: 0.5})
	get := func(mit, strat string) MitigationRow {
		for _, r := range res.Rows {
			if r.Mitigation == mit && r.Strategy == strat {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", mit, strat)
		return MitigationRow{}
	}
	// Undefended DDR4: rhoHammer flips, baseline does not (Raptor Lake).
	if get("DDR4 TRR only", "rhoHammer").Flips == 0 {
		t.Error("rhoHammer produced no flips on the undefended platform")
	}
	if get("DDR4 TRR only", "baseline").Flips != 0 {
		t.Error("baseline flipped bits on Raptor Lake")
	}
	// Every §6 defense shuts rhoHammer down.
	for _, mit := range []string{"DDR4 + pTRR (BIOS)", "DDR4 + row swap", "DDR5 (RFM)"} {
		if r := get(mit, "rhoHammer"); r.Flips != 0 {
			t.Errorf("%s failed to stop rhoHammer: %d flips", mit, r.Flips)
		}
		if r := get(mit, "rhoHammer"); r.Events == 0 {
			t.Errorf("%s took no mitigation actions", mit)
		}
	}
}

func TestAblationBothIngredientsNeeded(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation matrix")
	}
	res := AblationCounterSpec(Config{Seed: 42, Scale: 0.5})
	for _, archName := range []string{"Alder Lake", "Raptor Lake"} {
		get := func(variant string) AblationRow {
			for _, r := range res.Rows {
				if r.Arch == archName && r.Variant == variant {
					return r
				}
			}
			t.Fatalf("row %s/%s missing", archName, variant)
			return AblationRow{}
		}
		if get("both (rhoHammer)").Flips == 0 {
			t.Errorf("%s: full counter-speculation produced no flips", archName)
		}
		for _, partial := range []string{"neither", "obfuscation only", "nops only"} {
			if f := get(partial).Flips; f >= get("both (rhoHammer)").Flips {
				t.Errorf("%s: %q (%d flips) should underperform the full technique", archName, partial, f)
			}
		}
		// The ordering story: nops alone restore much order but not
		// all; obfuscation alone restores almost none.
		if get("nops only").MissRate <= get("obfuscation only").MissRate {
			t.Errorf("%s: nops-only should order far more than obfuscation-only", archName)
		}
		if get("both (rhoHammer)").MissRate < get("nops only").MissRate {
			t.Errorf("%s: the full technique should order at least as much as nops alone", archName)
		}
	}
}

func TestSamplerSizeAblationMonotoneRegion(t *testing.T) {
	if testing.Short() {
		t.Skip("sampler sweep")
	}
	res := AblationSamplerSize(Config{Seed: 42, Scale: 0.5})
	if len(res.Rows) < 4 {
		t.Fatal("too few points")
	}
	// KnownGood's two decoys need a sampler large enough to track them
	// plus the leading pairs; tiny samplers get distracted trivially
	// (flips), mid sizes track faithfully (flips), and the pattern
	// remains effective as capacity grows because decoy counts stay
	// dominant. The invariant we check: capacity >= 6 always flips.
	for _, r := range res.Rows {
		if r.SamplerSize >= 6 && r.Flips == 0 {
			t.Errorf("sampler %d: pattern unexpectedly defeated", r.SamplerSize)
		}
	}
}

func TestDDR5SessionGeometry(t *testing.T) {
	s := newSession(arch.RaptorLake(), arch.DIMMD1(), 42)
	if s.Map.Banks() != 64 {
		t.Errorf("DDR5 mapping addresses %d banks, want 64 (sub-channel function)", s.Map.Banks())
	}
	if s.Dev.Banks() != 64 {
		t.Errorf("DDR5 device has %d banks", s.Dev.Banks())
	}
}
