package experiments

import (
	"fmt"

	"rhohammer/internal/campaign"
	"rhohammer/internal/hammer"
	"rhohammer/internal/sweep"
)

// Registry maps every paper table and figure to its declarative
// campaign Spec. cmd/experiments drives it for -list/-only and
// selection; the exported Table*/Fig* functions run through the same
// entries, so there is exactly one execution path per artifact.
var Registry = campaign.NewRegistry()

func init() {
	// Registration order is rendering order for `experiments all`:
	// cheap inventories first, then measurements, then the heavyweight
	// hammering campaigns, matching the paper's narrative.
	register("table1", campaign.KindTable, "desktop machine setups", table1Spec)
	register("table2", campaign.KindTable, "DDR4 UDIMM inventory", table2Spec)
	register("fig3", campaign.KindFigure, "access-latency density and SBDR threshold", fig3Spec)
	register("fig4", campaign.KindFigure, "duet heatmap of T_SBDR bit pairs", fig4Spec)
	register("table4", campaign.KindTable, "reverse-engineered DRAM address mappings", table4Spec)
	register("table5", campaign.KindTable, "reverse-engineering tool comparison", table5Spec)
	register("fig6", campaign.KindFigure, "attack completion time per hammer instruction", fig6Spec)
	register("fig8", campaign.KindFigure, "miss rate and attack time vs bank count", fig8Spec)
	register("fig9", campaign.KindFigure, "fuzzing flip totals by instruction and banks", fig9Spec)
	register("fig10", campaign.KindFigure, "bit flips vs NOP pseudo-barrier count", fig10Spec)
	register("table3", campaign.KindTable, "barrier strategy comparison", table3Spec)
	register("table6", campaign.KindTable, "2-hour fuzzing matrix", table6Spec)
	register("fig11", campaign.KindFigure, "cumulative flips over sweeping", fig11Spec)
	register("e2e", campaign.KindAux, "end-to-end PTE corruption", e2eSpec)
	register("chain", campaign.KindAux, "attack-chain grid: allocator x hammerer x victim", chainSpec)
	register("mitigations", campaign.KindAux, "§6 mitigations vs rhoHammer", mitigationsSpec)
	register("ablation-cs", campaign.KindAux, "counter-speculation ingredient ablation", ablationCSSpec)
	register("ablation-sampler", campaign.KindAux, "TRR sampler capacity ablation", ablationSamplerSpec)
	register("replay-roundtrip", campaign.KindAux, "session traces replayed through the differential oracle", replayRoundTripSpec)
}

// register wires one spec builder into the Registry, stamping the
// entry's name, kind and base seed onto the built Spec so cell-seed
// derivation is always keyed by the registry name.
func register(name string, kind campaign.Kind, title string, build func(Config) campaign.Spec) {
	Registry.Register(campaign.Entry{
		Name: name, Kind: kind, Title: title,
		Build: func(p campaign.Params) campaign.Spec {
			cfg := Config{Seed: p.Seed, Scale: p.Scale}.withDefaults()
			s := build(cfg)
			s.Name, s.Kind, s.Seed = name, kind, cfg.Seed
			return s
		},
	})
}

// Run executes the named campaign under cfg and returns its rendered
// result — the registry-driven entry point cmd/experiments and
// cmd/bench use. Unknown names are the only expected error; execution
// failures indicate a broken profile and surface as errors too.
func Run(name string, cfg Config) (Renderer, error) {
	r, _, err := RunOutcome(name, cfg)
	return r, err
}

// RunOutcome is Run plus the campaign Outcome: per-cell wall times,
// seeds and error stats for the run manifest and the -json envelope.
// The Outcome is non-nil whenever the campaign executed, even when some
// cells failed.
func RunOutcome(name string, cfg Config) (Renderer, *campaign.Outcome, error) {
	e, ok := Registry.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown campaign %q", name)
	}
	out, err := campaign.Runner{Workers: cfg.Workers}.Run(e.Build(campaign.Params{Seed: cfg.Seed, Scale: cfg.Scale}))
	if err != nil {
		return nil, out, err
	}
	r, ok := out.Result.(Renderer)
	if !ok {
		return nil, out, fmt.Errorf("experiments: campaign %q result %T does not render", name, out.Result)
	}
	return r, out, nil
}

// runSpec executes a registered campaign under the config's worker
// budget and panics on error — experiment inputs are static profiles,
// so a failure is a programming error (matching the historical
// inline-loop behavior of the Table*/Fig* functions).
func runSpec[T any](cfg Config, name string) T {
	e, ok := Registry.Lookup(name)
	if !ok {
		panic(fmt.Sprintf("experiments: campaign %q not registered", name))
	}
	spec := e.Build(campaign.Params{Seed: cfg.Seed, Scale: cfg.Scale})
	out, err := campaign.Runner{Workers: cfg.Workers}.Run(spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: %v", err))
	}
	return out.Result.(T)
}

// gather converts the runner's index-ordered cell results into a typed
// slice.
func gather[T any](results []any) []T {
	out := make([]T, len(results))
	for i, r := range results {
		out[i] = r.(T)
	}
	return out
}

// single wraps a one-cell experiment's Exec so its sole result becomes
// the campaign result.
func single(results []any) any { return results[0] }

// sweepCell returns an Exec for grid cells whose work is "sweep the
// cell's pattern under its config across Budget.Locations": it builds
// the cell's own session from the derived seed, runs the sweep, and
// lets row convert the outcome (with the session still available for
// follow-up probes).
func sweepCell(row func(c campaign.Cell, s *hammer.Session, res sweep.Result) any) func(campaign.Cell, int64) (any, error) {
	return func(c campaign.Cell, seed int64) (any, error) {
		s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
		if err != nil {
			return nil, err
		}
		res, err := sweep.Run(s, c.Pattern, c.Config, sweep.Options{
			Locations:             c.Budget.Locations,
			DurationPerLocationNS: c.Budget.DurationNS,
			Bank:                  -1,
		})
		if err != nil {
			return nil, err
		}
		return row(c, s, res), nil
	}
}

// fuzzCell runs a fuzzing campaign over the cell's config and budget in
// a fresh session.
func fuzzCell(c campaign.Cell, seed int64) (hammer.FuzzReport, error) {
	s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
	if err != nil {
		return hammer.FuzzReport{}, err
	}
	return s.Fuzz(c.Config, hammer.FuzzOptions{
		Patterns:   c.Budget.Patterns,
		Locations:  c.Budget.Locations,
		DurationNS: c.Budget.DurationNS,
	})
}
