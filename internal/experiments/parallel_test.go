package experiments

import "testing"

func TestParMapOrderAndCompleteness(t *testing.T) {
	got := parMap(100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d = %d", i, v)
		}
	}
	if parMap(0, func(i int) int { return i }) != nil {
		t.Error("empty parMap")
	}
}

func TestParMapDeterministicResults(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated campaign")
	}
	// A campaign cell result depends only on its inputs, so two
	// parallel executions must agree exactly despite scheduling.
	first := Table3(Config{Seed: 42, Scale: 0.3})
	second := Table3(Config{Seed: 42, Scale: 0.3})
	if len(first.Rows) != len(second.Rows) {
		t.Fatal("row counts differ")
	}
	for i := range first.Rows {
		if first.Rows[i] != second.Rows[i] {
			t.Errorf("row %d: %+v vs %+v", i, first.Rows[i], second.Rows[i])
		}
	}
}
