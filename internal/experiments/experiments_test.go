package experiments

import (
	"bytes"
	"strings"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/pattern"
)

// small is the test-sized configuration; the benchmarks exercise the
// full defaults.
var small = Config{Seed: 42, Scale: 0.4}

func render(t *testing.T, r Renderer) string {
	t.Helper()
	var buf bytes.Buffer
	r.Render(&buf)
	s := buf.String()
	if s == "" {
		t.Fatal("empty rendering")
	}
	return s
}

func TestTable1(t *testing.T) {
	res := Table1(small)
	if len(res.Archs) != 4 {
		t.Fatalf("%d architectures", len(res.Archs))
	}
	out := render(t, res)
	for _, want := range []string{"Comet Lake", "Raptor Lake", "i9-12900"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTable2(t *testing.T) {
	res := Table2(small)
	if len(res.DIMMs) != 7 {
		t.Fatalf("%d DIMMs", len(res.DIMMs))
	}
	out := render(t, res)
	for _, want := range []string{"S1", "M1", "W01-2024", "2^17"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestFig3ThresholdShape(t *testing.T) {
	res := Fig3(small)
	th := res.Threshold
	if !(th.FastMode < th.Threshold && th.Threshold < th.SlowMode) {
		t.Errorf("threshold %v not between modes (%v, %v)", th.Threshold, th.FastMode, th.SlowMode)
	}
	// The SBDR share approximates 1/(#banks-1) per the paper; with 32
	// geographic banks that is a few percent.
	if th.SBDRShare < 0.005 || th.SBDRShare > 0.15 {
		t.Errorf("SBDR share %.3f implausible", th.SBDRShare)
	}
	render(t, res)
}

func TestFig4HeatmapContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("full heatmap")
	}
	res := Fig4(Config{Seed: 42, Scale: 0.3})
	if len(res.Archs) != 2 {
		t.Fatal("want two architectures")
	}
	comet, raptor := res.SlowPairs(0), res.SlowPairs(1)
	// Comet's pure row bits produce large SBDR chunks: many more slow
	// pairs than Raptor's scattered function blocks.
	if len(comet) <= len(raptor) {
		t.Errorf("slow pairs: comet %d should exceed raptor %d (pure-row chunks)",
			len(comet), len(raptor))
	}
	// Every Raptor slow pair must be a same-function pair with a row
	// bit — the Duet criterion.
	truth := res.Matrix[1]
	_ = truth
	render(t, res)
}

func TestTable4AllCorrect(t *testing.T) {
	res := Table4(small)
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.Correct {
			t.Errorf("%s %dGiB not recovered correctly", r.Family, r.SizeGiB)
		}
		if r.Seconds <= 0 || r.Seconds > 60 {
			t.Errorf("%s %dGiB: runtime %.1fs out of the Table 5 ballpark", r.Family, r.SizeGiB, r.Seconds)
		}
	}
	render(t, res)
}

func TestTable5ToolMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("tool comparison matrix")
	}
	res := Table5(Config{Seed: 42, Scale: 0.5})
	get := func(tool, archName string) Table5Cell {
		for _, c := range res.Cells {
			if c.Tool == tool && c.Arch == archName {
				return c
			}
		}
		t.Fatalf("cell %s/%s missing", tool, archName)
		return Table5Cell{}
	}
	for _, a := range arch.All() {
		// Our method: always correct, seconds-scale.
		ours := get("rhoHammer", a.Name)
		if ours.Correct != ours.Runs {
			t.Errorf("rhoHammer on %s: %d/%d", a.Name, ours.Correct, ours.Runs)
		}
		if ours.MeanSecs > 30 {
			t.Errorf("rhoHammer on %s: %.1fs", a.Name, ours.MeanSecs)
		}
		// DRAMA: no correct result anywhere.
		if c := get("DRAMA", a.Name); c.Correct != 0 {
			t.Errorf("DRAMA on %s: %d correct", a.Name, c.Correct)
		}
	}
	// DRAMDig: works on Comet/Rocket (slowly), fails on Alder/Raptor.
	for _, name := range []string{"Comet Lake", "Rocket Lake"} {
		c := get("DRAMDig", name)
		if c.Correct == 0 {
			t.Errorf("DRAMDig on %s: no correct runs", name)
		} else if c.MeanSecs < 60 {
			t.Errorf("DRAMDig on %s: %.1fs, expected orders slower than ours", name, c.MeanSecs)
		}
	}
	for _, name := range []string{"Alder Lake", "Raptor Lake"} {
		if c := get("DRAMDig", name); c.Correct != 0 {
			t.Errorf("DRAMDig on %s: %d correct", name, c.Correct)
		}
		if c := get("DARE", name); c.Correct != 0 {
			t.Errorf("DARE on %s: %d correct", name, c.Correct)
		}
	}
	// DARE: mostly works on Comet Lake.
	if c := get("DARE", "Comet Lake"); c.Correct == 0 {
		t.Error("DARE on Comet Lake: no correct runs")
	}
	render(t, res)
}

func TestFig6PrefetchFaster(t *testing.T) {
	res := Fig6(small)
	byKey := map[string]float64{}
	for _, c := range res.Cells {
		byKey[c.Arch+"/"+c.Instr] = c.MeanTimeMS
	}
	for _, a := range arch.All() {
		load := byKey[a.Name+"/load"]
		for _, pf := range []string{"prefetcht0", "prefetcht1", "prefetcht2", "prefetchnta"} {
			if byKey[a.Name+"/"+pf] >= load {
				t.Errorf("%s: %s (%.2fms) not faster than load (%.2fms)",
					a.Name, pf, byKey[a.Name+"/"+pf], load)
			}
		}
		// The four hints differ only marginally (Fig. 6).
		t2, nta := byKey[a.Name+"/prefetcht2"], byKey[a.Name+"/prefetchnta"]
		if t2/nta > 1.2 || nta/t2 > 1.2 {
			t.Errorf("%s: prefetch hints diverge too much: %.2f vs %.2f", a.Name, t2, nta)
		}
	}
	render(t, res)
}

func TestFig8Shapes(t *testing.T) {
	res := Fig8(small)
	point := func(style, instr string, banks int) Fig8Point {
		for _, p := range res.Points {
			if p.Style == style && p.Instr == instr && p.Banks == banks {
				return p
			}
		}
		t.Fatalf("missing point %s/%s/%d", style, instr, banks)
		return Fig8Point{}
	}
	// Prefetch miss rate grows with banks (disorder relief).
	if point("C++", "prefetcht2", 1).MissRate >= point("C++", "prefetcht2", 4).MissRate {
		t.Error("C++ prefetch miss rate should rise with banks")
	}
	// The C++ primitive saturates full miss by mid bank counts; AsmJit
	// stays lower at the same width (§4.3).
	cpp8 := point("C++", "prefetcht2", 8).MissRate
	jit8 := point("AsmJit", "prefetcht2", 8).MissRate
	if cpp8 < 0.9 {
		t.Errorf("C++ prefetch at 8 banks miss %.2f, want ~1", cpp8)
	}
	if jit8 >= cpp8 {
		t.Errorf("AsmJit miss %.2f should stay below C++ %.2f at 8 banks", jit8, cpp8)
	}
	// Loads are slower than prefetches at the same configuration.
	if point("C++", "load", 1).TimeMS <= point("C++", "prefetcht2", 1).TimeMS {
		t.Error("load hammering should be slower than prefetch")
	}
	render(t, res)
}

func TestFig10InvertedU(t *testing.T) {
	if testing.Short() {
		t.Skip("NOP sweep")
	}
	res := Fig10(Config{Seed: 42, Scale: 0.5})
	if res.Best.Flips == 0 {
		t.Fatal("no flips at any NOP count")
	}
	first, last := res.Curve[0], res.Curve[len(res.Curve)-1]
	if first.Nops != 0 || first.Flips != 0 {
		t.Errorf("flips at 0 NOPs = %d, want 0", first.Flips)
	}
	if last.Flips > res.Best.Flips/2 {
		t.Errorf("flips at %d NOPs = %d, should fall well below the optimum %d",
			last.Nops, last.Flips, res.Best.Flips)
	}
	if res.Best.Nops <= 100 || res.Best.Nops >= 900 {
		t.Errorf("optimum at %d NOPs, want interior", res.Best.Nops)
	}
	render(t, res)
}

func TestE2EExploits(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end attacks")
	}
	res := E2E(Config{Seed: 42, Scale: 0.5})
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.Success {
			t.Errorf("%s: exploit failed (%d flips, %d exploitable)", r.Arch, r.TotalFlips, r.Exploitable)
		}
		if r.EndToEndSecs <= r.TemplateSecs {
			t.Errorf("%s: massaging time missing", r.Arch)
		}
	}
	render(t, res)
}

func TestScaledConfig(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 42 || c.Scale != 1 {
		t.Errorf("defaults: %+v", c)
	}
	if got := (Config{Scale: 0.1}).withDefaults().scaled(100, 20); got != 20 {
		t.Errorf("scaled floor: %d", got)
	}
	if got := (Config{Scale: 2}).withDefaults().scaled(100, 20); got != 200 {
		t.Errorf("scaled up: %d", got)
	}
}

func TestTunedNopsLadder(t *testing.T) {
	archs := arch.All()
	for i := 1; i < len(archs); i++ {
		if TunedNops(archs[i]) <= TunedNops(archs[i-1]) {
			t.Errorf("tuned NOPs should grow with speculation depth: %s", archs[i].Name)
		}
		if TunedNopsMulti(archs[i]) >= TunedNops(archs[i]) {
			t.Errorf("%s: multi-bank optimum should be below single-bank", archs[i].Name)
		}
	}
}

// The hardcoded tuned NOP constants must stay within the plateau the
// actual tuning phase finds.
func TestTunedNopsNearOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning verification")
	}
	a := arch.RaptorLake()
	s := newSession(a, DefaultDIMM(), 42)
	base := RhoS(a)
	base.Barrier = 0
	base.Nops = 0
	tune, err := s.TuneNops(pattern.KnownGood(), base, 600, 50, 120e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The constant must land inside the positive range of the curve.
	lo, hi := -1, -1
	for _, p := range tune.Curve {
		if p.Flips > 0 {
			if lo < 0 {
				lo = p.Nops
			}
			hi = p.Nops
		}
	}
	if lo < 0 {
		t.Fatal("curve has no positive range")
	}
	if n := TunedNops(a); n < lo || n > hi {
		t.Errorf("TunedNops(%s)=%d outside positive range [%d,%d]", a.Name, n, lo, hi)
	}
}
