package experiments

import (
	"encoding/json"
	"fmt"
	"io"

	"rhohammer/internal/campaign"
)

// JSON export: every experiment result marshals to a stable JSON form so
// the figures can be replotted with external tooling. The structured
// result types already carry json-friendly fields; this file provides
// the uniform envelope and the writer used by cmd/experiments -json.

// Envelope wraps one experiment's result with its identity, the
// configuration that produced it, and (when the campaign Outcome is
// supplied) the per-cell execution stats.
type Envelope struct {
	Experiment string  `json:"experiment"`
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Workers    int     `json:"workers,omitempty"`
	WallNS     int64   `json:"wall_ns,omitempty"`
	// Cells surfaces per-cell wall time, derived seed, attempts and
	// error text (campaign.CellStat); every cell is individually
	// replayable from its seed.
	Cells  []campaign.CellStat `json:"cells,omitempty"`
	Result any                 `json:"result"`
}

// WriteJSON emits one experiment result as indented JSON.
func WriteJSON(w io.Writer, experiment string, cfg Config, result any) error {
	return WriteOutcomeJSON(w, experiment, cfg, result, nil)
}

// WriteCanonicalOutcomeJSON is WriteOutcomeJSON with every
// scheduling-dependent field zeroed: the resolved worker count, the
// campaign wall time, and the per-cell wall times. What remains is a
// pure function of (experiment, seed, scale) — byte-identical across
// runs, worker counts and machines — which is the envelope serverd's
// result endpoint serves and the determinism tests diff. The cell
// seeds, keys, attempt counts and the result itself are untouched;
// timings live on in the run manifest, which exists to record one
// particular execution rather than the reproducible artifact.
func WriteCanonicalOutcomeJSON(w io.Writer, experiment string, cfg Config, result any, out *campaign.Outcome) error {
	if out != nil {
		canon := *out
		canon.Workers = 0
		canon.Wall = 0
		canon.Cells = make([]campaign.CellStat, len(out.Cells))
		copy(canon.Cells, out.Cells)
		for i := range canon.Cells {
			canon.Cells[i].Wall = 0
		}
		out = &canon
	}
	return WriteOutcomeJSON(w, experiment, cfg, result, out)
}

// WriteOutcomeJSON is WriteJSON plus the campaign outcome's per-cell
// stats (omitted when out is nil).
func WriteOutcomeJSON(w io.Writer, experiment string, cfg Config, result any, out *campaign.Outcome) error {
	cfg = cfg.withDefaults()
	env := Envelope{
		Experiment: experiment,
		Seed:       cfg.Seed,
		Scale:      cfg.Scale,
		Result:     result,
	}
	if out != nil {
		env.Workers = out.Workers
		env.WallNS = int64(out.Wall)
		env.Cells = out.Cells
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(env); err != nil {
		return fmt.Errorf("experiments: encoding %s: %w", experiment, err)
	}
	return nil
}

// fig4JSON flattens Fig4Result's map-keyed matrix for serialization.
type fig4JSON struct {
	Archs []string     `json:"archs"`
	Bits  []uint       `json:"bits"`
	Cells [][]fig4Cell `json:"cells"`
	Thres []float64    `json:"thresholds_ns"`
}

type fig4Cell struct {
	BX   uint    `json:"bx"`
	BY   uint    `json:"by"`
	NS   float64 `json:"latency_ns"`
	Slow bool    `json:"sbdr"`
}

// MarshalJSON implements json.Marshaler for the heatmap result (maps
// with array keys are not directly serializable).
func (f *Fig4Result) MarshalJSON() ([]byte, error) {
	out := fig4JSON{Archs: f.Archs, Bits: f.Bits, Thres: f.Thres}
	for ai := range f.Archs {
		var cells []fig4Cell
		for k, v := range f.Matrix[ai] {
			cells = append(cells, fig4Cell{BX: k[0], BY: k[1], NS: v, Slow: v > f.Thres[ai]})
		}
		out.Cells = append(out.Cells, cells)
	}
	return json.Marshal(out)
}
