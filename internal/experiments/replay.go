package experiments

import (
	"bytes"
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/dram"
	"rhohammer/internal/hammer"
	"rhohammer/internal/obs"
	"rhohammer/internal/pattern"
	"rhohammer/internal/replay"
)

// replayTraceCap sizes the per-cell trace ring for the round-trip
// campaign: it must hold every event the hammer session emits, because
// a ring that wraps loses the command prefix and the replay codec
// (correctly) refuses truncated traces. 25 ms of single-bank prefetch
// hammering emits ~440k events, leaving ~15% headroom.
const replayTraceCap = 1 << 19

// ReplayRoundTripRow is one cell of the replay-roundtrip campaign: a
// live hammer session's trace replayed through the differential
// oracle, with the replayed flip set checked against the session's.
type ReplayRoundTripRow struct {
	Key             string `json:"key"`
	Acts            uint64 `json:"acts"`
	SessionFlips    int    `json:"session_flips"`
	ReplayedFlips   int    `json:"replayed_flips"`
	RecordedMissing int    `json:"recorded_missing"`
	TRRTriggers     uint64 `json:"trr_triggers"`
	// Match is the round-trip property: the replay reproduced exactly
	// the session's flip sequence and TRR trigger count, with zero
	// auditor divergence.
	Match      bool   `json:"match"`
	Divergence string `json:"divergence,omitempty"`
}

// ReplayRoundTripResult renders the replay-roundtrip campaign.
type ReplayRoundTripResult struct {
	Rows []ReplayRoundTripRow `json:"rows"`
}

// replayRoundTripSpec builds the replay-roundtrip campaign: for each
// (arch, DIMM) cell, hammer a known-good pattern in a live session
// with a trace ring attached, dump the trace via obs.Trace.WriteJSONL,
// decode it with internal/replay, replay it into a fresh device with
// the refmodel auditor attached, and pin that the replayed flip set is
// exactly the session's. This is the CI anchor for the trace-replay
// contract (and a golden-pinnable artifact like every other campaign).
func replayRoundTripSpec(cfg Config) campaign.Spec {
	a := arch.RaptorLake()
	// The duration is deliberately scale-independent: 25 ms is the
	// shortest single-location run that reliably produces flips on the
	// vulnerable modules (so the round-trip pins a non-empty flip set)
	// while still fitting the trace ring; scaling it up would overflow
	// the ring and scaling it down would leave the property vacuous.
	budget := campaign.Budget{DurationNS: 25e6}
	var cells []campaign.Cell
	for _, d := range []*arch.DIMM{arch.DIMMS3(), arch.DIMMS4()} {
		cells = append(cells, campaign.Cell{
			Key: a.Name + "/" + d.ID, Arch: a, DIMM: d,
			Config:  hammer.RecommendedSingleBank(a),
			Pattern: pattern.KnownGood(),
			Budget:  budget,
		})
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
			if err != nil {
				return nil, err
			}
			tr := obs.NewTrace(replayTraceCap)
			s.AttachTrace(tr)
			if _, err := s.HammerPatternFor(c.Pattern, c.Config, 0, 1000, c.Budget.DurationNS); err != nil {
				return nil, err
			}
			sessionFlips := append([]dram.Flip(nil), s.Dev.Flips()...)
			sessionCounters := s.Dev.Counters()
			if d := tr.Dropped(); d > 0 {
				return nil, fmt.Errorf("replay-roundtrip %s: trace ring dropped %d events; raise replayTraceCap", c.Key, d)
			}
			var buf bytes.Buffer
			if err := tr.WriteJSONL(&buf); err != nil {
				return nil, err
			}
			devSeed := hammer.DeviceSeed(seed)
			f, err := replay.DecodeBytes(buf.Bytes(), replay.Options{DIMM: c.DIMM.ID, Seed: &devSeed})
			if err != nil {
				return nil, err
			}
			v := replay.Run(f)
			row := ReplayRoundTripRow{
				Key:             c.Key,
				Acts:            v.Counters.ACTs,
				SessionFlips:    len(sessionFlips),
				ReplayedFlips:   v.FlipCount,
				RecordedMissing: v.RecordedMissing,
				TRRTriggers:     v.Counters.TRRTriggers,
				Divergence:      v.Divergence,
			}
			row.Match = v.Divergence == "" &&
				v.RecordedMissing == 0 &&
				v.FlipCount == len(sessionFlips) &&
				v.Counters.TRRTriggers == sessionCounters.TRRTriggers
			return row, nil
		},
		Gather: func(rs []any) any { return &ReplayRoundTripResult{Rows: gather[ReplayRoundTripRow](rs)} },
	}
}

// Render implements Renderer.
func (r *ReplayRoundTripResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Replay round-trip: recorded session traces through the differential oracle\n")
	fmt.Fprintf(w, "%-18s %9s %7s %7s %8s %6s %s\n", "Cell", "ACTs", "Flips", "Replay", "Missing", "TRR", "Match")
	for _, row := range r.Rows {
		match := "OK"
		if !row.Match {
			match = "MISMATCH"
			if row.Divergence != "" {
				match = "DIVERGED"
			}
		}
		fmt.Fprintf(w, "%-18s %9d %7d %7d %8d %6d %s\n",
			row.Key, row.Acts, row.SessionFlips, row.ReplayedFlips,
			row.RecordedMissing, row.TRRTriggers, match)
	}
}
