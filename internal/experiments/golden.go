package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
)

// The golden contract: the pinned campaigns rendered at a fixed
// (seed, scale) must hash to known values. Any change to an RNG stream,
// the simulation physics, or the rendering shows up here; speed and
// structure changes do not. TestGoldenOutputs enforces the contract in
// the test suite and `goldenhash -check` enforces it from the command
// line.

// Golden pins one campaign's rendered output hash.
type Golden struct {
	Name   string
	SHA256 string
}

// GoldenConfig is the fixed configuration the golden hashes were
// captured at.
func GoldenConfig() Config { return Config{Seed: 42, Scale: 0.5} }

// Goldens returns the pinned campaigns and their expected output
// hashes, captured after the campaign-engine refactor introduced
// per-cell seed derivation (stats.SplitSeed over "spec/cellKey"). That
// derivation changed every RNG stream once, intentionally; from here on
// the hashes again pin simulation results bit-for-bit. The chain
// refactor added e2e (pinning the legacy exploit wrapper's output
// byte-for-byte across the decomposition) and chain (pinning the
// allocator x hammerer x victim grid). The trace-replay PR added
// replay-roundtrip: live session traces decoded and replayed through
// the differential oracle, pinning the trace schema, the codec and the
// replay engine alongside the physics.
func Goldens() []Golden {
	return []Golden{
		{"table3", "2f84c61faa970673992c87c7caad8b41e80f626407b980ad17179b7bf495096e"},
		{"table6", "7520fe96c3ca4f393ceeb276d3db98c402c830d4011c7e3347edef539380a1d3"},
		{"fig9", "5c9d28b458cec9d43994d3300a47d00dcfe0a5e49707f1c32f4e7068897b63d2"},
		{"e2e", "c7fcaa6323a0c9c57d56ce5e93a27a7a705c2ad9e6e64e0721ef6b9c9d4fcbd0"},
		{"chain", "5071e8202b325c2452733047602cfa11ae2cb3da98837c49ba70d9bbd1d0d8a4"},
		{"replay-roundtrip", "2299acc49b1c92061b7eac245a7b41edfe618619f2bab6eb1eda722d27d7dc92"},
	}
}

// GoldenHash runs the named campaign at the golden configuration and
// returns the hex sha256 of its rendered bytes and their length.
func GoldenHash(name string) (hash string, size int, err error) {
	r, err := Run(name, GoldenConfig())
	if err != nil {
		return "", 0, err
	}
	var buf bytes.Buffer
	r.Render(&buf)
	return fmt.Sprintf("%x", sha256.Sum256(buf.Bytes())), buf.Len(), nil
}
