package experiments

import (
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
	"rhohammer/internal/sweep"
)

// MitigationRow is one (mitigation, strategy) outcome.
type MitigationRow struct {
	Mitigation string
	Strategy   string
	Flips      int
	Events     uint64 // mitigation actions taken (TRR/pTRR/RFM/swap)
}

// MitigationsResult reproduces the §6 discussion: how the platform pTRR
// option, DDR5 refresh management and randomized row-swapping fare
// against ρHammer's strongest configuration on Raptor Lake.
type MitigationsResult struct{ Rows []MitigationRow }

// mitigationSetup carries a cell's defense knobs through Aux: the
// session-level switches Exec must flip after construction.
type mitigationSetup struct {
	defense  string
	strategy string
	ptrr     bool
	rowSwap  int // swap period; 0 disables
}

// Mitigations runs ρHammer and the baseline against each §6 defense.
func Mitigations(cfg Config) *MitigationsResult {
	return runSpec[*MitigationsResult](cfg, "mitigations")
}

func mitigationsSpec(cfg Config) campaign.Spec {
	a := arch.RaptorLake()
	budget := campaign.Budget{
		Locations:  cfg.scaled(6, 3),
		DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
	}
	setups := []struct {
		name    string
		dimm    *arch.DIMM
		ptrr    bool
		rowSwap int
	}{
		{"DDR4 TRR only", DefaultDIMM(), false, 0},
		{"DDR4 + pTRR (BIOS)", DefaultDIMM(), true, 0},
		{"DDR4 + row swap", DefaultDIMM(), false, 4096},
		{"DDR5 (RFM)", arch.DIMMD1(), false, 0},
	}
	strategies := []struct {
		name string
		cfg  hammer.Config
	}{
		{"baseline", BaselineS()},
		{"rhoHammer", RhoS(a)},
	}
	var cells []campaign.Cell
	for _, st := range setups {
		for _, strat := range strategies {
			cells = append(cells, campaign.Cell{
				Key:  st.name + "/" + strat.name,
				Arch: a, DIMM: st.dimm, Config: strat.cfg,
				Pattern: pattern.KnownGood(), Budget: budget,
				Aux: mitigationSetup{
					defense: st.name, strategy: strat.name,
					ptrr: st.ptrr, rowSwap: st.rowSwap,
				},
			})
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			setup := c.Aux.(mitigationSetup)
			s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
			if err != nil {
				return nil, err
			}
			s.EnablePTRR(setup.ptrr)
			if setup.rowSwap > 0 {
				s.Dev.EnableRowSwap(uint64(setup.rowSwap))
			}
			res, err := sweep.Run(s, c.Pattern, c.Config, sweep.Options{
				Locations:             c.Budget.Locations,
				DurationPerLocationNS: c.Budget.DurationNS,
				Bank:                  -1,
			})
			if err != nil {
				return nil, err
			}
			events := s.Dev.TRREvents()
			if s.Dev.RFMEvents() > 0 {
				events = s.Dev.RFMEvents()
			}
			if s.Dev.RowSwapEvents() > 0 {
				events = s.Dev.RowSwapEvents()
			}
			return MitigationRow{
				Mitigation: setup.defense, Strategy: setup.strategy,
				Flips: res.TotalFlips, Events: events,
			}, nil
		},
		Gather: func(rs []any) any { return &MitigationsResult{Rows: gather[MitigationRow](rs)} },
	}
}

// Render implements Renderer.
func (m *MitigationsResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Mitigations (§6) vs rhoHammer on Raptor Lake\n")
	fmt.Fprintf(w, "%-20s %-10s %8s %12s\n", "Defense", "Strategy", "Flips", "Actions")
	for _, r := range m.Rows {
		fmt.Fprintf(w, "%-20s %-10s %8d %12d\n", r.Mitigation, r.Strategy, r.Flips, r.Events)
	}
}
