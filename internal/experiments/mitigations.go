package experiments

import (
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
	"rhohammer/internal/sweep"
)

// MitigationRow is one (mitigation, strategy) outcome.
type MitigationRow struct {
	Mitigation string
	Strategy   string
	Flips      int
	Events     uint64 // mitigation actions taken (TRR/pTRR/RFM/swap)
}

// MitigationsResult reproduces the §6 discussion: how the platform pTRR
// option, DDR5 refresh management and randomized row-swapping fare
// against ρHammer's strongest configuration on Raptor Lake.
type MitigationsResult struct{ Rows []MitigationRow }

// Mitigations runs ρHammer and the baseline against each §6 defense.
func Mitigations(cfg Config) *MitigationsResult {
	cfg = cfg.withDefaults()
	a := arch.RaptorLake()
	out := &MitigationsResult{}
	duration := float64(cfg.scaled(150, 100)) * 1e6
	locations := cfg.scaled(6, 3)

	type setup struct {
		name  string
		build func() *hammer.Session
		dimm  *arch.DIMM
	}
	setups := []setup{
		{"DDR4 TRR only", func() *hammer.Session {
			return newSession(a, DefaultDIMM(), cfg.Seed)
		}, DefaultDIMM()},
		{"DDR4 + pTRR (BIOS)", func() *hammer.Session {
			s := newSession(a, DefaultDIMM(), cfg.Seed)
			s.EnablePTRR(true)
			return s
		}, DefaultDIMM()},
		{"DDR4 + row swap", func() *hammer.Session {
			s := newSession(a, DefaultDIMM(), cfg.Seed)
			s.Dev.EnableRowSwap(4096)
			return s
		}, DefaultDIMM()},
		{"DDR5 (RFM)", func() *hammer.Session {
			return newSession(a, arch.DIMMD1(), cfg.Seed)
		}, arch.DIMMD1()},
	}

	strategies := []struct {
		name string
		cfg  hammer.Config
	}{
		{"baseline", BaselineS()},
		{"rhoHammer", RhoS(a)},
	}
	type rowSpec struct {
		setupIdx, stratIdx int
	}
	var specs []rowSpec
	for si := range setups {
		for gi := range strategies {
			specs = append(specs, rowSpec{si, gi})
		}
	}
	out.Rows = parMap(len(specs), func(i int) MitigationRow {
		sp := specs[i]
		st, strat := setups[sp.setupIdx], strategies[sp.stratIdx]
		s := st.build()
		res, err := sweep.Run(s, pattern.KnownGood(), strat.cfg, sweep.Options{
			Locations: locations, DurationPerLocationNS: duration, Bank: -1,
		})
		if err != nil {
			panic(fmt.Sprintf("mitigations: %v", err))
		}
		events := s.Dev.TRREvents()
		if s.Dev.RFMEvents() > 0 {
			events = s.Dev.RFMEvents()
		}
		if s.Dev.RowSwapEvents() > 0 {
			events = s.Dev.RowSwapEvents()
		}
		return MitigationRow{
			Mitigation: st.name, Strategy: strat.name,
			Flips: res.TotalFlips, Events: events,
		}
	})
	return out
}

// Render implements Renderer.
func (m *MitigationsResult) Render(w io.Writer) {
	fmt.Fprintf(w, "Mitigations (§6) vs rhoHammer on Raptor Lake\n")
	fmt.Fprintf(w, "%-20s %-10s %8s %12s\n", "Defense", "Strategy", "Flips", "Actions")
	for _, r := range m.Rows {
		fmt.Fprintf(w, "%-20s %-10s %8d %12d\n", r.Mitigation, r.Strategy, r.Flips, r.Events)
	}
}
