package experiments

import (
	"fmt"
	"io"

	"rhohammer/internal/arch"
	"rhohammer/internal/campaign"
	"rhohammer/internal/cpu"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
	"rhohammer/internal/stats"
	"rhohammer/internal/sweep"
	"rhohammer/internal/timing"
)

// ---------------------------------------------------------------- Fig. 3

// Fig3Result is the latency density distribution with the derived SBDR
// threshold.
type Fig3Result struct {
	Arch      string
	Threshold timing.ThresholdResult
}

// Fig3 reproduces the threshold-finding density plot: random address
// pairs from the allocated pool, their latency density, the two
// assembly areas, and the threshold between them.
func Fig3(cfg Config) *Fig3Result { return runSpec[*Fig3Result](cfg, "fig3") }

func fig3Spec(cfg Config) campaign.Spec {
	a := arch.CometLake()
	return campaign.Spec{
		Cells: []campaign.Cell{{
			Key: a.Name, Arch: a, DIMM: DefaultDIMM(),
			Budget: campaign.Budget{Probes: cfg.scaled(3000, 800)},
		}},
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			meas, pool := newMeasurerFor(c.Arch, c.DIMM, seed)
			res := meas.FindThreshold(pool.RandomPair, c.Budget.Probes, 8)
			return &Fig3Result{Arch: c.Arch.Name, Threshold: res}, nil
		},
		Gather: single,
	}
}

// Render implements Renderer.
func (f *Fig3Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 3: access-latency density on %s\n", f.Arch)
	fmt.Fprintf(w, "fast mode %.1f ns | slow (SBDR) mode %.1f ns | threshold %.1f ns | SBDR share %.3f\n",
		f.Threshold.FastMode, f.Threshold.SlowMode, f.Threshold.Threshold, f.Threshold.SBDRShare)
	fmt.Fprint(w, f.Threshold.Hist.String())
}

// ---------------------------------------------------------------- Fig. 4

// Fig4Result holds the two duet heatmaps (Comet vs Raptor Lake).
type Fig4Result struct {
	Archs  []string
	Bits   []uint
	Matrix []map[[2]uint]float64 // per arch: (bx, by) -> avg latency ns
	Thres  []float64
}

// Fig4ArchMap is one architecture's heatmap — the per-cell result the
// gather step assembles into a Fig4Result. Fields are exported so the
// distributed fabric's gob codec can carry it over the wire.
type Fig4ArchMap struct {
	Arch   string
	Bits   []uint
	Matrix map[[2]uint]float64
	Thres  float64
}

// Fig4 measures T_SBDR(M, {bx, by}) for all bit pairs on the
// traditional (Comet Lake) and recent (Raptor Lake) mappings — the
// heatmaps whose contrast motivates the layout-agnostic algorithm.
func Fig4(cfg Config) *Fig4Result { return runSpec[*Fig4Result](cfg, "fig4") }

func fig4Spec(cfg Config) campaign.Spec {
	var cells []campaign.Cell
	for _, a := range []*arch.Arch{arch.CometLake(), arch.RaptorLake()} {
		cells = append(cells, campaign.Cell{
			Key: a.Name, Arch: a, DIMM: DefaultDIMM(),
			Budget: campaign.Budget{Probes: cfg.scaled(10, 4)},
		})
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			meas, pool := newMeasurerFor(c.Arch, c.DIMM, seed)
			thres := meas.FindThreshold(pool.RandomPair, 600, 8)
			maxBit := uint(33)
			var bits []uint
			for b := uint(6); b <= maxBit; b++ {
				bits = append(bits, b)
			}
			m := map[[2]uint]float64{}
			for i := 0; i < len(bits); i++ {
				for j := i + 1; j < len(bits); j++ {
					mask := uint64(1)<<bits[i] | uint64(1)<<bits[j]
					var sum float64
					n := 0
					for k := 0; k < 4; k++ {
						x, y, ok := pool.PairDifferingIn(mask)
						if !ok {
							continue
						}
						sum += meas.TimePair(x, y, c.Budget.Probes)
						n++
					}
					if n > 0 {
						m[[2]uint{bits[i], bits[j]}] = sum / float64(n)
					}
				}
			}
			return Fig4ArchMap{Arch: c.Arch.Name, Bits: bits, Matrix: m, Thres: thres.Threshold}, nil
		},
		Gather: func(rs []any) any {
			out := &Fig4Result{}
			for _, am := range gather[Fig4ArchMap](rs) {
				out.Archs = append(out.Archs, am.Arch)
				out.Bits = am.Bits
				out.Matrix = append(out.Matrix, am.Matrix)
				out.Thres = append(out.Thres, am.Thres)
			}
			return out
		},
	}
}

// SlowPairs returns the bit pairs measuring above threshold for arch
// index i — the highlighted blocks of the heatmap.
func (f *Fig4Result) SlowPairs(i int) [][2]uint {
	var out [][2]uint
	for k, v := range f.Matrix[i] {
		if v > f.Thres[i] {
			out = append(out, k)
		}
	}
	return out
}

// Render implements Renderer.
func (f *Fig4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 4: duet heatmap T_SBDR(bx,by); '#' marks SBDR (slow) pairs\n")
	for ai, name := range f.Archs {
		fmt.Fprintf(w, "--- %s (threshold %.0f ns)\n    ", name, f.Thres[ai])
		for _, b := range f.Bits {
			fmt.Fprintf(w, "%2d ", b%100)
		}
		fmt.Fprintln(w)
		for i, by := range f.Bits {
			fmt.Fprintf(w, "%2d  ", by)
			for j, bx := range f.Bits {
				switch {
				case j >= i:
					fmt.Fprint(w, "   ")
				case f.Matrix[ai][[2]uint{bx, by}] > f.Thres[ai]:
					fmt.Fprint(w, " # ")
				default:
					fmt.Fprint(w, " . ")
				}
			}
			fmt.Fprintln(w)
		}
	}
}

// ---------------------------------------------------------------- Fig. 6

// Fig6Cell is the mean attack time for one instruction on one arch.
type Fig6Cell struct {
	Arch       string
	Instr      string
	MeanTimeMS float64
}

// Fig6Result compares hammering-instruction attack times.
type Fig6Result struct{ Cells []Fig6Cell }

// Fig6 executes random patterns to a fixed access budget with each
// hammer instruction (load and the four prefetch hints) and reports the
// average completion time — prefetching is consistently ~2x faster.
func Fig6(cfg Config) *Fig6Result { return runSpec[*Fig6Result](cfg, "fig6") }

func fig6Spec(cfg Config) campaign.Spec {
	budget := campaign.Budget{
		Patterns:    cfg.scaled(10, 4),
		Activations: cfg.scaled(500_000, 100_000),
	}
	var cells []campaign.Cell
	for _, a := range arch.All() {
		for _, in := range instrNames {
			cells = append(cells, campaign.Cell{
				Key:  a.Name + "/" + in.Name,
				Arch: a, DIMM: DefaultDIMM(),
				Config: hammer.Config{Instr: in.Instr, Banks: 1},
				Budget: budget, Aux: in.Name,
			})
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, _ int64) (any, error) {
			// Controlled comparison: every instruction on an arch must
			// time the SAME session and pattern stream (the paper varies
			// only the hammer instruction), so the streams derive from
			// the arch alone, not the per-cell seed.
			seed := stats.SplitSeed(cfg.Seed, "fig6/"+c.Arch.Name)
			s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
			if err != nil {
				return nil, err
			}
			fz := pattern.NewFuzzer(pattern.FuzzParams{}, stats.NewRand(stats.SplitSeed(seed, "fuzzer")))
			var total float64
			for p := 0; p < c.Budget.Patterns; p++ {
				pat := fz.Next()
				res, err := s.HammerPattern(pat, c.Config, p%s.Map.Banks(), uint64(600+p*128), c.Budget.Activations)
				if err != nil {
					return nil, err
				}
				total += res.TimeNS
			}
			return Fig6Cell{
				Arch: c.Arch.Name, Instr: c.Aux.(string),
				MeanTimeMS: total / float64(c.Budget.Patterns) / 1e6,
			}, nil
		},
		Gather: func(rs []any) any { return &Fig6Result{Cells: gather[Fig6Cell](rs)} },
	}
}

// Render implements Renderer.
func (f *Fig6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 6: average attack completion time per pattern (ms)\n")
	fmt.Fprintf(w, "%-12s %-12s %10s\n", "Arch", "Instr", "Time(ms)")
	for _, c := range f.Cells {
		fmt.Fprintf(w, "%-12s %-12s %10.2f\n", c.Arch, c.Instr, c.MeanTimeMS)
	}
}

// ---------------------------------------------------------------- Fig. 8

// Fig8Point is one (primitive style, instruction, banks) measurement.
type Fig8Point struct {
	Style    string
	Instr    string
	Banks    int
	MissRate float64
	TimeMS   float64
}

// Fig8Result holds the multi-bank miss-rate and time curves.
type Fig8Result struct {
	Arch   string
	Points []Fig8Point
}

// Fig8 measures cache miss rate and attack time for the C++/AsmJit
// primitives with load/prefetch hammering across 1-8 banks on Comet
// Lake.
func Fig8(cfg Config) *Fig8Result { return runSpec[*Fig8Result](cfg, "fig8") }

func fig8Spec(cfg Config) campaign.Spec {
	a := arch.CometLake()
	budget := campaign.Budget{Activations: cfg.scaled(400_000, 100_000)}
	var cells []campaign.Cell
	for _, style := range []cpu.Style{cpu.StyleCPP, cpu.StyleAsmJit} {
		for _, in := range []hammer.Instr{hammer.InstrLoad, hammer.InstrPrefetchT2} {
			for banks := 1; banks <= 8; banks++ {
				cells = append(cells, campaign.Cell{
					Key:  fmt.Sprintf("%s/%s/%d", style, in, banks),
					Arch: a, DIMM: DefaultDIMM(),
					Config:  hammer.Config{Instr: in, Style: style, Banks: banks},
					Pattern: pattern.KnownGood(), Budget: budget,
				})
			}
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
			if err != nil {
				return nil, err
			}
			res, err := s.HammerPattern(c.Pattern, c.Config, 0, 700, c.Budget.Activations)
			if err != nil {
				return nil, err
			}
			return Fig8Point{
				Style: c.Config.Style.String(), Instr: c.Config.Instr.String(), Banks: c.Config.Banks,
				MissRate: res.MissRate(), TimeMS: res.TimeNS / 1e6,
			}, nil
		},
		Gather: func(rs []any) any {
			return &Fig8Result{Arch: a.Name, Points: gather[Fig8Point](rs)}
		},
	}
}

// Render implements Renderer.
func (f *Fig8Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 8: miss rate and attack time vs banks on %s\n", f.Arch)
	fmt.Fprintf(w, "%-8s %-12s %6s %10s %10s\n", "Style", "Instr", "Banks", "MissRate", "Time(ms)")
	for _, p := range f.Points {
		fmt.Fprintf(w, "%-8s %-12s %6d %10.2f %10.2f\n", p.Style, p.Instr, p.Banks, p.MissRate, p.TimeMS)
	}
}

// ---------------------------------------------------------------- Fig. 9

// Fig9Cell is one fuzzing total for (arch, instr, banks).
type Fig9Cell struct {
	Arch  string
	Instr string
	Banks int
	Flips int
}

// Fig9Result holds the fuzzing effectiveness across bank counts.
type Fig9Result struct{ Cells []Fig9Cell }

// Fig9 fuzzes with load- and prefetch-based hammering across 1-4 banks
// on all four architectures — without counter-speculation, matching the
// §4.3 setting where Alder/Raptor Lake still yield nothing.
func Fig9(cfg Config) *Fig9Result { return runSpec[*Fig9Result](cfg, "fig9") }

func fig9Spec(cfg Config) campaign.Spec {
	budget := campaign.Budget{
		Patterns:   cfg.scaled(10, 5),
		Locations:  1,
		DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
	}
	var cells []campaign.Cell
	for _, a := range arch.All() {
		for _, in := range []hammer.Instr{hammer.InstrLoad, hammer.InstrPrefetchT2} {
			for banks := 1; banks <= 4; banks++ {
				cells = append(cells, campaign.Cell{
					Key:  fmt.Sprintf("%s/%s/%d", a.Name, in, banks),
					Arch: a, DIMM: DefaultDIMM(),
					Config: hammer.Config{Instr: in, Banks: banks},
					Budget: budget,
				})
			}
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			rep, err := fuzzCell(c, seed)
			if err != nil {
				return nil, err
			}
			return Fig9Cell{
				Arch: c.Arch.Name, Instr: c.Config.Instr.String(),
				Banks: c.Config.Banks, Flips: rep.TotalFlips,
			}, nil
		},
		Gather: func(rs []any) any { return &Fig9Result{Cells: gather[Fig9Cell](rs)} },
	}
}

// Render implements Renderer.
func (f *Fig9Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 9: fuzzing flip totals by instruction and bank count\n")
	fmt.Fprintf(w, "%-12s %-12s %6s %8s\n", "Arch", "Instr", "Banks", "Flips")
	for _, c := range f.Cells {
		fmt.Fprintf(w, "%-12s %-12s %6d %8d\n", c.Arch, c.Instr, c.Banks, c.Flips)
	}
}

// --------------------------------------------------------------- Fig. 10

// Fig10Result is the NOP-count sweep on Raptor Lake.
type Fig10Result struct {
	Arch  string
	Curve []hammer.TunePoint
	Best  hammer.TunePoint
}

// Fig10 sweeps the pseudo-barrier NOP count over [0, 1000] with the
// best pattern on Raptor Lake: zero flips at both extremes, an optimum
// in the interior.
func Fig10(cfg Config) *Fig10Result { return runSpec[*Fig10Result](cfg, "fig10") }

func fig10Spec(cfg Config) campaign.Spec {
	a := arch.RaptorLake()
	return campaign.Spec{
		Cells: []campaign.Cell{{
			Key: a.Name, Arch: a, DIMM: DefaultDIMM(),
			Config:  hammer.Config{Instr: hammer.InstrPrefetchT2, Banks: 1, Obfuscate: true},
			Pattern: pattern.KnownGood(),
			Budget: campaign.Budget{
				DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
				Runs:       cfg.scaled(2, 1),
			},
		}},
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			s, err := hammer.NewSession(c.Arch, c.DIMM, seed)
			if err != nil {
				return nil, err
			}
			tune, err := s.TuneNops(c.Pattern, c.Config, 1000, 50, c.Budget.DurationNS, c.Budget.Runs)
			if err != nil {
				return nil, err
			}
			return &Fig10Result{
				Arch:  c.Arch.Name,
				Curve: tune.Curve,
				Best:  hammer.TunePoint{Nops: tune.BestNops, Flips: tune.BestFlips},
			}, nil
		},
		Gather: single,
	}
}

// Render implements Renderer.
func (f *Fig10Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 10: bit flips vs NOP count on %s (best: %d NOPs -> %d flips)\n",
		f.Arch, f.Best.Nops, f.Best.Flips)
	maxF := 1
	for _, p := range f.Curve {
		if p.Flips > maxF {
			maxF = p.Flips
		}
	}
	for _, p := range f.Curve {
		bar := p.Flips * 50 / maxF
		fmt.Fprintf(w, "%5d | %s %d\n", p.Nops, repeat('#', bar), p.Flips)
	}
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

// --------------------------------------------------------------- Fig. 11

// Fig11Series is one architecture's cumulative sweep series.
type Fig11Series struct {
	Arch     string
	Strategy string
	Points   []sweep.Point
	Total    int
	PerMin   float64
}

// Fig11Result holds the sweeping flip-rate comparison.
type Fig11Result struct{ Series []Fig11Series }

// Fig11 sweeps the best pattern over a large set of non-repeating
// locations on each architecture for both ρHammer and the baseline,
// producing the cumulative flip series and the per-minute rates the
// paper headlines (112x / 47x on Comet/Rocket; baseline zero on
// Alder/Raptor).
func Fig11(cfg Config) *Fig11Result { return runSpec[*Fig11Result](cfg, "fig11") }

func fig11Spec(cfg Config) campaign.Spec {
	budget := campaign.Budget{
		Locations:  cfg.scaled(24, 8),
		DurationNS: float64(cfg.scaled(150, 100)) * 1e6,
	}
	var cells []campaign.Cell
	for _, a := range arch.All() {
		for _, st := range []struct {
			label string
			hcfg  hammer.Config
		}{
			{"baseline", BaselineS()},
			{"rhoHammer", RhoM(a)},
		} {
			cells = append(cells, campaign.Cell{
				Key:  a.Name + "/" + st.label,
				Arch: a, DIMM: DefaultDIMM(), Config: st.hcfg,
				Pattern: pattern.KnownGood(), Budget: budget, Aux: st.label,
			})
		}
	}
	return campaign.Spec{
		Cells: cells,
		Exec: sweepCell(func(c campaign.Cell, _ *hammer.Session, res sweep.Result) any {
			return Fig11Series{
				Arch: c.Arch.Name, Strategy: c.Aux.(string),
				Points: res.Series, Total: res.TotalFlips, PerMin: res.FlipsPerMinute(),
			}
		}),
		Gather: func(rs []any) any { return &Fig11Result{Series: gather[Fig11Series](rs)} },
	}
}

// Render implements Renderer.
func (f *Fig11Result) Render(w io.Writer) {
	fmt.Fprintf(w, "Fig. 11: cumulative flips over sweeping\n")
	fmt.Fprintf(w, "%-12s %-10s %8s %12s\n", "Arch", "Strategy", "Flips", "Flips/min")
	for _, s := range f.Series {
		fmt.Fprintf(w, "%-12s %-10s %8d %12.0f\n", s.Arch, s.Strategy, s.Total, s.PerMin)
	}
}
