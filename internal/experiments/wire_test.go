package experiments

import (
	"reflect"
	"testing"

	"rhohammer/internal/campaign"
)

// TestWireRoundTripsEverySpec executes one cell of every registered
// spec and pushes its result through the distributed fabric's gob codec,
// requiring a DeepEqual round trip. This is the gate that keeps
// internal/experiments/wire.go's registration list in sync with the
// registry: a new spec whose cell-result type is unregistered (or not
// gob-encodable) fails here, long before a multi-node run would.
func TestWireRoundTripsEverySpec(t *testing.T) {
	if testing.Short() {
		t.Skip("executes one real cell per registered spec")
	}
	for _, e := range Registry.SortedEntries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			spec := e.Build(campaign.Params{Seed: 42, Scale: 0.05})
			if len(spec.Cells) == 0 {
				t.Fatalf("spec %s has no cells", e.Name)
			}
			c := spec.Cells[0]
			result, err := spec.Exec(c, spec.CellSeed(c.Key))
			if err != nil {
				t.Fatalf("exec cell %s: %v", c.Key, err)
			}
			data, err := campaign.EncodeResult(result)
			if err != nil {
				t.Fatalf("encode %T: %v", result, err)
			}
			back, err := campaign.DecodeResult(data)
			if err != nil {
				t.Fatalf("decode %T: %v", result, err)
			}
			if !reflect.DeepEqual(result, back) {
				t.Errorf("cell result of type %T did not survive the wire:\n got %#v\nwant %#v", result, back, result)
			}
		})
	}
}
