package timing

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
	"rhohammer/internal/mem"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/stats"
)

func testMeasurer(seed int64) (*Measurer, *mem.Pool, *mapping.Mapping) {
	a := arch.CometLake()
	d := arch.DIMMS3()
	m, _ := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	r := stats.NewRand(seed)
	ctrl := memctrl.New(a, m, dram.NewDevice(d, seed))
	return NewMeasurer(ctrl, r), mem.NewPool(m.Size(), 0.7, r), m
}

func TestSBDRPairsSlower(t *testing.T) {
	meas, _, m := testMeasurer(1)
	a1, _ := m.PhysAddr(2, 100, 0)
	a2, _ := m.PhysAddr(2, 5000, 0) // same bank, different row
	b1, _ := m.PhysAddr(3, 100, 0)
	b2, _ := m.PhysAddr(4, 5000, 0) // different banks

	sbdr := meas.TimePair(a1, a2, 50)
	db := meas.TimePair(b1, b2, 50)
	if sbdr <= db+15 {
		t.Errorf("SBDR pair %.1f should clearly exceed DB pair %.1f", sbdr, db)
	}
}

func TestSameRowPairsFast(t *testing.T) {
	meas, _, m := testMeasurer(2)
	a1, _ := m.PhysAddr(2, 100, 0)
	a2, _ := m.PhysAddr(2, 100, 256) // same bank, same row
	sr := meas.TimePair(a1, a2, 50)
	b1, _ := m.PhysAddr(2, 100, 0)
	b2, _ := m.PhysAddr(2, 7000, 0)
	sbdr := meas.TimePair(b1, b2, 50)
	if sr >= sbdr-15 {
		t.Errorf("same-row pair %.1f should be much faster than SBDR %.1f", sr, sbdr)
	}
}

func TestTrimmedMeanRejectsSpikes(t *testing.T) {
	meas, _, m := testMeasurer(3)
	meas.SpikeProb = 0.5 // extreme interrupt pollution
	meas.SpikeMeanNS = 500
	b1, _ := m.PhysAddr(3, 100, 0)
	b2, _ := m.PhysAddr(4, 5000, 0)
	lat := meas.TimePair(b1, b2, 50)
	if lat > 150 {
		t.Errorf("trimmed mean %.1f polluted by spikes", lat)
	}
}

func TestMeasurementAccounting(t *testing.T) {
	meas, _, m := testMeasurer(4)
	before := meas.Accesses()
	t0 := meas.Now()
	a1, _ := m.PhysAddr(2, 100, 0)
	a2, _ := m.PhysAddr(2, 5000, 0)
	meas.TimePair(a1, a2, 10)
	if meas.Accesses()-before != 20 {
		t.Errorf("accesses delta = %d, want 20", meas.Accesses()-before)
	}
	if meas.Now() <= t0 {
		t.Error("measurement did not advance time")
	}
}

func TestFindThreshold(t *testing.T) {
	meas, pool, _ := testMeasurer(5)
	res := meas.FindThreshold(pool.RandomPair, 1200, 8)
	if res.FastMode <= 0 || res.SlowMode <= res.FastMode {
		t.Fatalf("modes: fast %.1f slow %.1f", res.FastMode, res.SlowMode)
	}
	if res.Threshold <= res.FastMode || res.Threshold >= res.SlowMode {
		t.Errorf("threshold %.1f not between modes (%.1f, %.1f)",
			res.Threshold, res.FastMode, res.SlowMode)
	}
	// Random pairs hit the same bank with probability ~1/(banks), so
	// the SBDR share should be small but positive.
	if res.SBDRShare <= 0 || res.SBDRShare > 0.2 {
		t.Errorf("SBDR share = %.3f, want small positive", res.SBDRShare)
	}
	if res.Hist == nil || res.Hist.Total != 1200 {
		t.Error("histogram not populated")
	}
}

// The derived threshold must correctly separate known pair classes.
func TestThresholdSeparatesClasses(t *testing.T) {
	meas, pool, m := testMeasurer(6)
	res := meas.FindThreshold(pool.RandomPair, 1200, 8)
	for i := uint64(0); i < 20; i++ {
		sb1, _ := m.PhysAddr(int(i%32), 100+i, 0)
		sb2, _ := m.PhysAddr(int(i%32), 9000+i, 0)
		if lat := meas.TimePair(sb1, sb2, 16); lat <= res.Threshold {
			t.Errorf("SBDR pair %d measured %.1f below threshold %.1f", i, lat, res.Threshold)
		}
		db1, _ := m.PhysAddr(int(i%32), 100+i, 0)
		db2, _ := m.PhysAddr(int((i+1)%32), 9000+i, 0)
		if lat := meas.TimePair(db1, db2, 16); lat > res.Threshold {
			t.Errorf("DB pair %d measured %.1f above threshold %.1f", i, lat, res.Threshold)
		}
	}
}

func TestTimePairZeroRounds(t *testing.T) {
	meas, _, m := testMeasurer(7)
	a1, _ := m.PhysAddr(2, 100, 0)
	a2, _ := m.PhysAddr(2, 5000, 0)
	if lat := meas.TimePair(a1, a2, 0); lat <= 0 {
		t.Errorf("zero rounds should clamp to one: %.1f", lat)
	}
}
