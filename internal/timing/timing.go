// Package timing implements the timing side-channel measurement layer
// used by the reverse-engineering algorithms: the pairwise T_SBDR
// primitive (flush both addresses, access them back-to-back, time the
// round trip with RDTSCP-equivalent resolution) and the probability-
// distribution threshold finder of Figure 3.
package timing

import (
	"rhohammer/internal/memctrl"
	"rhohammer/internal/stats"
)

// Measurer performs noisy latency measurements against one controller.
type Measurer struct {
	Ctrl *memctrl.Controller
	Rand *stats.Rand

	// NoiseSigmaNS is the standard deviation of the measurement noise
	// added per access pair (timer jitter, interconnect contention).
	NoiseSigmaNS float64

	// SpikeProb and SpikeMeanNS model heavy-tailed latency outliers
	// (timer interrupts, SMM, page walks): each timing round suffers
	// an exponential spike with this probability. Averaging over many
	// rounds suppresses them; thrifty tools like DARE do not.
	SpikeProb   float64
	SpikeMeanNS float64

	// now is the measurer's private notion of time; it advances with
	// every access so that refresh machinery keeps running.
	now float64

	accesses uint64
}

// NewMeasurer returns a measurer with realistic default noise.
func NewMeasurer(ctrl *memctrl.Controller, r *stats.Rand) *Measurer {
	return &Measurer{Ctrl: ctrl, Rand: r, NoiseSigmaNS: 9, SpikeProb: 0.01, SpikeMeanNS: 120}
}

// Accesses reports how many DRAM accesses have been issued for
// measurement purposes — the basis for the simulated runtimes in
// Table 5.
func (m *Measurer) Accesses() uint64 { return m.accesses }

// Now returns the measurer's current simulated time in nanoseconds.
func (m *Measurer) Now() float64 { return m.now }

// TimePairOnce flushes and accesses the two physical addresses
// back-to-back and returns the measured latency of the pair in
// nanoseconds, including noise. The pattern matches the classic row-
// conflict probe: access a, then b, uncached, in program order.
func (m *Measurer) TimePairOnce(a, b uint64) float64 {
	// Ensure both lines come from DRAM (clflush in the real tool).
	start := m.now
	ca, _ := m.Ctrl.Access(a, m.now)
	m.now = ca
	cb, _ := m.Ctrl.Access(b, m.now)
	m.now = cb + 30 // post-measurement serialization (cpuid+rdtscp)
	m.accesses += 2
	lat := cb - start
	if m.NoiseSigmaNS > 0 {
		lat += stats.Gaussian(m.Rand, 0, m.NoiseSigmaNS)
	}
	if m.SpikeProb > 0 && m.Rand.Float64() < m.SpikeProb {
		lat += m.Rand.ExpFloat64() * m.SpikeMeanNS
	}
	return lat
}

// outlierCapNS rejects rounds polluted by refresh blocking (tRFC adds
// ~350 ns) or interrupt spikes; every real tool filters these with
// min/median statistics.
const outlierCapNS = 240

// TimePair measures a pair `rounds` times and returns the trimmed mean
// latency: rounds above outlierCapNS are discarded unless everything is.
// The paper uses 50 rounds per pair.
func (m *Measurer) TimePair(a, b uint64, rounds int) float64 {
	if rounds <= 0 {
		rounds = 1
	}
	var sum, sumAll float64
	kept := 0
	for i := 0; i < rounds; i++ {
		v := m.TimePairOnce(a, b)
		sumAll += v
		if v <= outlierCapNS {
			sum += v
			kept++
		}
	}
	if kept == 0 {
		return sumAll / float64(rounds)
	}
	return sum / float64(kept)
}

// ThresholdResult carries the output of the Figure 3 threshold finder.
type ThresholdResult struct {
	Threshold float64          // latency separating SBDR from non-SBDR
	FastMode  float64          // center of the fast (non-conflict) cluster
	SlowMode  float64          // center of the slow (row-conflict) cluster
	SBDRShare float64          // fraction of sampled pairs above threshold
	Hist      *stats.Histogram // full latency density
}

// FindThreshold implements Step 0 of Algorithm 1: sample random address
// pairs from the pool, build the latency density, locate the two
// assembly areas, and place the threshold in the valley between them.
//
// pairs is a generator returning a random physical address pair on each
// call; samples is the number of pairs to time (each timed `rounds`
// times).
func (m *Measurer) FindThreshold(pairs func() (uint64, uint64), samples, rounds int) ThresholdResult {
	hist := stats.NewHistogram(0, 400, 100)
	lat := make([]float64, 0, samples)
	for i := 0; i < samples; i++ {
		a, b := pairs()
		v := m.TimePair(a, b, rounds)
		hist.Add(v)
		lat = append(lat, v)
	}
	lo, hi, ok := hist.Modes()
	res := ThresholdResult{FastMode: lo, SlowMode: hi, Hist: hist}
	if !ok {
		// Degenerate distribution (e.g. a pool confined to one bank):
		// fall back to a high percentile cut.
		s := stats.Summarize(lat)
		res.Threshold = (s.P50 + s.Max) / 2
		return res
	}
	// The two assembly areas are tight around their means (each T_SBDR
	// primitive averages many rounds), so the midpoint separates them
	// robustly even when the valley bins are sparsely populated.
	res.Threshold = (lo + hi) / 2
	above := 0
	for _, v := range lat {
		if v > res.Threshold {
			above++
		}
	}
	res.SBDRShare = float64(above) / float64(len(lat))
	return res
}
