package sweep

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
)

func session(t *testing.T) *hammer.Session {
	t.Helper()
	s, err := hammer.NewSession(arch.CometLake(), arch.DIMMS4(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSweepSeries(t *testing.T) {
	s := session(t)
	res, err := Run(s, pattern.KnownGood(), hammer.Baseline(), Options{
		Locations: 6, DurationPerLocationNS: 100e6, Bank: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 6 {
		t.Fatalf("series length %d", len(res.Series))
	}
	total := 0
	var elapsed float64
	rows := map[uint64]bool{}
	for i, p := range res.Series {
		total += p.Flips
		elapsed += p.TimeNS
		if p.ElapsedNS != elapsed {
			t.Errorf("point %d cumulative time inconsistent", i)
		}
		if rows[p.BaseRow] && p.Bank == res.Series[0].Bank {
			t.Errorf("location %d reuses base row %d in same bank", i, p.BaseRow)
		}
		rows[p.BaseRow] = true
	}
	if total != res.TotalFlips {
		t.Errorf("series total %d != %d", total, res.TotalFlips)
	}
	if len(res.Flips) != res.TotalFlips {
		t.Errorf("flip records %d != total %d", len(res.Flips), res.TotalFlips)
	}
	if res.TimeNS != elapsed {
		t.Error("total time inconsistent")
	}
}

func TestSweepBankRotation(t *testing.T) {
	s := session(t)
	res, err := Run(s, pattern.KnownGood(), hammer.Baseline(), Options{
		Locations: 4, DurationPerLocationNS: 40e6, Bank: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range res.Series {
		if p.Bank != i%s.Map.Banks() {
			t.Errorf("location %d bank %d, want rotation", i, p.Bank)
		}
	}
	res2, err := Run(s, pattern.KnownGood(), hammer.Baseline(), Options{
		Locations: 3, DurationPerLocationNS: 40e6, Bank: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res2.Series {
		if p.Bank != 5 {
			t.Errorf("fixed bank ignored: %d", p.Bank)
		}
	}
}

func TestSweepFlipRate(t *testing.T) {
	r := Result{TotalFlips: 120, TimeNS: 6e10} // one simulated minute
	if r.FlipsPerMinute() != 120 {
		t.Errorf("flips/min = %v", r.FlipsPerMinute())
	}
	if (&Result{}).FlipsPerMinute() != 0 {
		t.Error("empty rate")
	}
}

func TestSweepValidatesInput(t *testing.T) {
	s := session(t)
	if _, err := Run(s, &pattern.Pattern{Slots: 0}, hammer.Baseline(), Options{}); err == nil {
		t.Error("invalid pattern accepted")
	}
	if _, err := Run(s, pattern.KnownGood(), hammer.Baseline(), Options{StartRow: 1 << 62}); err == nil {
		t.Error("out-of-range start row accepted")
	}
}

func TestSweepWrapsAtEndOfBank(t *testing.T) {
	s := session(t)
	rows := s.Map.Rows()
	_, err := Run(s, pattern.KnownGood(), hammer.Baseline(), Options{
		Locations: 3, DurationPerLocationNS: 20e6,
		StartRow: rows - 200, Bank: -1,
	})
	if err != nil {
		t.Fatalf("sweep did not wrap: %v", err)
	}
}

// ρHammer's sweep rate must beat the baseline's on the same platform —
// the Fig. 11 comparison in miniature.
func TestSweepRhoBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("comparative sweep")
	}
	opt := Options{Locations: 5, DurationPerLocationNS: 150e6, Bank: -1}
	s1 := session(t)
	bl, err := Run(s1, pattern.KnownGood(), hammer.Baseline(), opt)
	if err != nil {
		t.Fatal(err)
	}
	s2 := session(t)
	rho, err := Run(s2, pattern.KnownGood(), hammer.RhoHammer(s2.Arch, 3, 70), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rho.TotalFlips <= bl.TotalFlips {
		t.Errorf("rho flips %d <= baseline %d", rho.TotalFlips, bl.TotalFlips)
	}
	if rho.FlipsPerMinute() <= bl.FlipsPerMinute() {
		t.Errorf("rho rate %.0f <= baseline %.0f", rho.FlipsPerMinute(), bl.FlipsPerMinute())
	}
}
