// Package sweep implements the sweeping (templating) operation of §4.1
// and §5.3: re-applying one effective non-uniform pattern at a large set
// of distinct physical locations to harvest every reachable bit flip.
// Sweeping is what converts a fuzzing discovery into exploitable
// templates, and its flip rate (flips per simulated minute) is the
// paper's headline practicality metric (Fig. 11).
package sweep

import (
	"fmt"

	"rhohammer/internal/dram"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
)

// Options configures a sweep.
type Options struct {
	// Locations is the number of distinct base rows to hammer.
	Locations int
	// DurationPerLocationNS is the simulated hammer time per location;
	// a fixed time budget keeps strategy comparisons fair (the paper
	// bounds sweeps by wall clock).
	DurationPerLocationNS float64
	// StartRow is the first base row; successive locations advance by
	// the pattern's footprint so locations never overlap.
	StartRow uint64
	// Bank rotates across locations when < 0; otherwise fixed.
	Bank int
}

func (o Options) withDefaults() Options {
	if o.Locations == 0 {
		o.Locations = 50
	}
	if o.DurationPerLocationNS == 0 {
		o.DurationPerLocationNS = 150e6
	}
	if o.StartRow == 0 {
		o.StartRow = 64
	}
	return o
}

// Point is one location's outcome in the sweep time series.
type Point struct {
	Location  int
	BaseRow   uint64
	Bank      int
	Flips     int
	TimeNS    float64 // simulated time consumed at this location
	ElapsedNS float64 // cumulative simulated time at completion
}

// Result aggregates a sweep.
type Result struct {
	TotalFlips int
	// Flips collects every individual flip with its location metadata.
	Flips []dram.Flip
	// Series is the per-location time series behind Fig. 11.
	Series []Point
	// TimeNS is the total simulated duration.
	TimeNS float64
}

// FlipsPerMinute returns the average flip rate over the sweep.
func (r *Result) FlipsPerMinute() float64 {
	if r.TimeNS <= 0 {
		return 0
	}
	return float64(r.TotalFlips) / (r.TimeNS / 6e10)
}

// Run sweeps the pattern under cfg across opt.Locations distinct
// non-overlapping physical locations of the session's DIMM, resetting
// victim memory between locations like the real templating loop does.
func Run(s *hammer.Session, pat *pattern.Pattern, cfg hammer.Config, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if err := pat.Validate(); err != nil {
		return Result{}, err
	}
	span := uint64(pat.MaxOffset() + 8)
	rows := s.Map.Rows()
	if opt.StartRow+span >= rows {
		return Result{}, fmt.Errorf("sweep: start row %d out of range", opt.StartRow)
	}
	var res Result
	row := opt.StartRow
	for loc := 0; loc < opt.Locations; loc++ {
		if row+span+4 >= rows {
			row = opt.StartRow // wrap to the start; banks rotate below
		}
		bank := opt.Bank
		if bank < 0 {
			bank = loc % s.Map.Banks()
		}
		s.ResetDevice()
		hr, err := s.HammerPatternFor(pat, cfg, bank, row, opt.DurationPerLocationNS)
		if err != nil {
			return res, fmt.Errorf("sweep: location %d: %w", loc, err)
		}
		res.TotalFlips += hr.FlipCount()
		res.Flips = append(res.Flips, hr.Flips...)
		res.TimeNS += hr.TimeNS
		res.Series = append(res.Series, Point{
			Location: loc, BaseRow: row, Bank: bank,
			Flips: hr.FlipCount(), TimeNS: hr.TimeNS, ElapsedNS: res.TimeNS,
		})
		row += span
	}
	return res, nil
}
