package dram

import "rhohammer/internal/obs"

// Observability surface of the device. Two faces, both free when
// unused:
//
//   - Counters() is a cold snapshot of the plain internal counters the
//     hot path already maintains — no atomics or indirection are added
//     to Activate/Refresh for it.
//   - SetTrace attaches a bounded obs.Trace ring; the hot paths then
//     emit structured events behind a single nil check (the same
//     pattern as the simcheck shadow).

// Counters is a snapshot of the device's activity since the last
// Reset. TRRTriggers counts targeted refreshes from both the in-DRAM
// sampler and the platform pTRR sweep (they share the refresh action).
type Counters struct {
	ACTs               uint64 `json:"acts"`
	REFs               uint64 `json:"refs"`
	TRRTriggers        uint64 `json:"trr_triggers"`
	RFMEvents          uint64 `json:"rfm_events"`
	RowSwapRelocations uint64 `json:"rowswap_relocations"`
	Flips              uint64 `json:"flips"`
}

// Counters returns the current snapshot. Cold path only.
func (d *Device) Counters() Counters {
	return Counters{
		ACTs:               d.actCount,
		REFs:               d.refCount,
		TRRTriggers:        d.trrEvents,
		RFMEvents:          d.rfmEvents,
		RowSwapRelocations: d.rowSwapEvents,
		Flips:              uint64(len(d.flips)),
	}
}

// SetTrace attaches (or, with nil, detaches) a structured event trace.
// The device emits:
//
//	act   — one per ACT command (pre-swap logical address)
//	ref   — one per REF command
//	reset — one per Reset (disturbance state and flips cleared)
//	trr   — one per targeted refresh (TRR sampler or pTRR sweep)
//	flip  — one per bit flip, N = byte*8+bit of the flipped cell
//	blast — a row's weak-cell population materialized under pressure,
//	        N = number of weak cells drawn
//
// The act/ref/reset events are the replayable command stream
// internal/replay consumes. Tracing never touches an RNG stream;
// enabling it cannot perturb simulation results.
func (d *Device) SetTrace(t *obs.Trace) { d.trace = t }
