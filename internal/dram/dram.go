// Package dram models a DDR4 DRAM device at the granularity RowHammer
// cares about: per-row activation-disturbance accumulation within refresh
// windows, per-cell flip thresholds, regular refresh, and the in-DRAM
// Target Row Refresh (TRR) mitigation plus the platform-level pTRR option
// discussed in §6 of the paper.
//
// The model deliberately ignores columns and data transfer (the paper
// excludes RowPress and column addressing): an activation is the unit of
// disturbance, and a bit flip is a (bank, row, byte, bit, direction)
// tuple.
package dram

import (
	"fmt"
	"math"
	"sort"

	"rhohammer/internal/arch"
)

// Timing constants of the refresh machinery (DDR4 defaults).
const (
	TREFIns       = 7800.0 // average refresh command interval, ns
	RefreshSlices = 8192   // tREFW / tREFI: each row refreshed every 8192 REFs
	RowBytes      = 8192   // bytes per row (8 KB typical for x8 DDR4)
)

// Flip records one observed bit flip.
type Flip struct {
	Bank      int
	Row       uint64
	ByteInRow int
	Bit       uint8
	// Direction is true for a 1->0 flip (charged cell drained), false
	// for 0->1. Whether a flip is *observable* depends on the data
	// pattern the attacker initialized the victim row with.
	OneToZero bool
	// Time is the simulation timestamp (ns) at which the cell crossed
	// its disturbance threshold.
	Time float64
}

// VisibleUnder reports whether the flip would be observable when the
// victim row was initialized with the given repeating byte pattern: a
// cell can only be seen flipping 1->0 if the pattern stored a 1 there,
// and 0->1 if it stored a 0. Real templating scans with complementary
// patterns (e.g. 0x55 then 0xAA) to expose both directions.
func (f Flip) VisibleUnder(dataPattern byte) bool {
	storedOne := dataPattern&(1<<f.Bit) != 0
	return storedOne == f.OneToZero
}

// String implements fmt.Stringer.
func (f Flip) String() string {
	dir := "0->1"
	if f.OneToZero {
		dir = "1->0"
	}
	return fmt.Sprintf("bank %d row %d byte %d bit %d (%s)", f.Bank, f.Row, f.ByteInRow, f.Bit, dir)
}

// weakCell is one flippable cell of a row, pre-drawn deterministically
// from the DIMM's vulnerability distribution.
type weakCell struct {
	threshold float64 // activations-within-window needed to flip
	byteInRow int
	bit       uint8
	oneToZero bool
	flipped   bool
}

// rowState tracks the RowHammer-relevant state of one row that has seen
// neighbor activity. Rows are materialized lazily; an idle device uses no
// per-row memory.
type rowState struct {
	disturbance  float64 // accumulated neighbor activations this window
	minThresh    float64 // cheapest threshold among unflipped weak cells
	epoch        uint64  // refresh epoch at the last disturbance update
	materialized bool    // weak-cell population drawn
	cells        []weakCell
}

// materializeFloor defers drawing a row's weak-cell population until its
// in-window disturbance reaches this level. Real thresholds are tens of
// thousands, so the deferral never changes behaviour — it only keeps
// casually touched rows (e.g. during timing measurements) cheap.
const materializeFloor = 512

// Device is one simulated DIMM attached to a memory controller.
type Device struct {
	DIMM *arch.DIMM
	Seed int64

	// PTRR enables the platform pseudo-TRR mitigation ("Rowhammer
	// Prevention" BIOS option, §6): the memory controller tracks the
	// most-activated rows with near-perfect fidelity and preemptively
	// refreshes their neighborhoods at every REF.
	PTRR bool

	banks    int
	rows     uint64
	rowsMask uint64

	// touched maps bank -> row -> state, for rows adjacent to any
	// activated row.
	touched []map[uint64]*rowState

	// trr holds the per-bank TRR sampler state (cleared every REF);
	// real DDR4 TRR logic operates independently per bank.
	trr []trrSampler

	// ptrrCounts tracks per-REF activation counts for the pTRR model.
	ptrrCounts map[uint64]int

	flips     []Flip
	refCount  uint64 // total REF commands issued
	actCount  uint64
	trrEvents uint64

	// actCounts tracks per-row activation totals for diagnostics and
	// the experiment harness (cleared by Reset).
	actCounts map[uint64]uint64

	// rfm holds the DDR5 refresh-management state (nil on DDR4).
	rfm       []rfmState
	rfmEvents uint64

	// rowSwap holds the randomized row-swap mitigation state (§6).
	rowSwap       rowSwapState
	rowSwapEvents uint64

	// OnTRR, if set, is invoked for every targeted refresh with the
	// identified aggressor. Diagnostics and tests only.
	OnTRR func(bank int, row uint64)

	// OnRefresh, if set, is invoked at each REF with the bank-0 sampler
	// snapshot (keys and counts). Diagnostics and tests only.
	OnRefresh func(keys []uint64, counts []int)
}

// NewDevice builds a device for the given DIMM profile. Seed fixes the
// per-cell vulnerability map: two devices with the same DIMM and seed
// flip the exact same cells, which is how the paper's "flips depend on
// physical location" observation (Orosa et al.) is reproduced.
func NewDevice(d *arch.DIMM, seed int64) *Device {
	dev := &Device{
		DIMM:     d,
		Seed:     seed,
		banks:    d.TotalBanks(),
		rows:     d.RowsPerBank,
		rowsMask: d.RowsPerBank - 1,
	}
	dev.touched = make([]map[uint64]*rowState, dev.banks)
	for i := range dev.touched {
		dev.touched[i] = make(map[uint64]*rowState)
	}
	dev.trr = make([]trrSampler, dev.banks)
	for i := range dev.trr {
		dev.trr[i] = newTRRSampler(d.TRRSamplerSize)
	}
	dev.ptrrCounts = make(map[uint64]int)
	dev.actCounts = make(map[uint64]uint64)
	dev.initRFM()
	return dev
}

// Banks returns the number of geographic banks.
func (d *Device) Banks() int { return d.banks }

// Rows returns the number of rows per bank.
func (d *Device) Rows() uint64 { return d.rows }

// ActivationCount returns the total number of ACT commands seen.
func (d *Device) ActivationCount() uint64 { return d.actCount }

// TRREvents returns how many targeted refreshes TRR has issued.
func (d *Device) TRREvents() uint64 { return d.trrEvents }

// blast returns the disturbance one activation deposits on a neighbor at
// the given row distance. Distance-2 coupling is an order of magnitude
// weaker (Half-Double-style far aggressors are out of scope but the
// coupling keeps double-sided patterns realistically stronger than
// single-sided ones).
func blast(dist int) float64 {
	switch dist {
	case 1:
		return 1.0
	case 2:
		return 0.08
	default:
		return 0
	}
}

// Activate registers one ACT on (bank, row) at simulation time now (ns).
// It deposits disturbance on the neighboring rows and records any cells
// whose thresholds are crossed.
func (d *Device) Activate(bank int, row uint64, now float64) {
	d.actCount++
	d.actCounts[row|uint64(bank)<<48]++
	if d.rowSwap.enabled {
		// The swap layer sits between the address and the physical
		// array: everything below — disturbance, TRR sampling, RFM —
		// sees the row's current physical location.
		d.rowSwapObserve(bank, row)
		row = d.swapTarget(bank, row)
	}
	d.trr[bank].observe(row)
	if d.PTRR {
		d.ptrrCounts[row|uint64(bank)<<48]++
	}
	if d.DIMM.DDR5 {
		d.rfmObserve(bank, row)
	}
	for dist := 1; dist <= 2; dist++ {
		w := blast(dist)
		if row >= uint64(dist) {
			d.disturb(bank, row-uint64(dist), w, now)
		}
		if row+uint64(dist) < d.rows {
			d.disturb(bank, row+uint64(dist), w, now)
		}
	}
}

// rowEpoch returns how many times the row's refresh slice has been
// refreshed so far; a change since the last update means the row was
// refreshed in between and its window accumulator restarts.
func (d *Device) rowEpoch(row uint64) uint64 {
	rowsPerSlice := d.rows / RefreshSlices
	if rowsPerSlice == 0 {
		rowsPerSlice = 1
	}
	slice := row / rowsPerSlice
	if slice >= RefreshSlices {
		slice = RefreshSlices - 1
	}
	return (d.refCount + RefreshSlices - 1 - slice) / RefreshSlices
}

// disturb adds disturbance w to a victim row and fires flips.
func (d *Device) disturb(bank int, row uint64, w float64, now float64) {
	st := d.touched[bank][row]
	if st == nil {
		st = &rowState{minThresh: math.Inf(1)}
		d.touched[bank][row] = st
	}
	if e := d.rowEpoch(row); e != st.epoch {
		// The row's regular refresh passed since the last update:
		// its disturbance window restarted.
		st.epoch = e
		st.disturbance = 0
	}
	st.disturbance += w
	if !st.materialized {
		if st.disturbance < materializeFloor {
			return
		}
		d.materializeRow(bank, row, st)
	}
	if st.disturbance < st.minThresh {
		return
	}
	// One or more cells crossed their thresholds.
	next := math.Inf(1)
	for i := range st.cells {
		c := &st.cells[i]
		if c.flipped {
			continue
		}
		if st.disturbance >= c.threshold {
			c.flipped = true
			d.flips = append(d.flips, Flip{
				Bank: bank, Row: row,
				ByteInRow: c.byteInRow, Bit: c.bit,
				OneToZero: c.oneToZero, Time: now,
			})
		} else if c.threshold < next {
			next = c.threshold
		}
	}
	st.minThresh = next
}

// materializeRow draws the weak-cell population of a row from the
// DIMM's vulnerability distribution, deterministically in (seed, bank,
// row) — the same cells appear no matter when or in which run the row
// is first pressured.
func (d *Device) materializeRow(bank int, row uint64, st *rowState) {
	st.materialized = true
	st.minThresh = math.Inf(1)
	if !d.DIMM.Flippable {
		return
	}
	h := newHashRand(d.Seed, uint64(bank), row)
	n := h.poisson(d.DIMM.WeakCellsPerRowLambda)
	if n == 0 {
		return
	}
	st.cells = make([]weakCell, n)
	for i := range st.cells {
		c := &st.cells[i]
		c.threshold = math.Exp(h.norm()*d.DIMM.ThresholdSigma + d.DIMM.ThresholdMu)
		c.byteInRow = int(h.next() % RowBytes)
		c.bit = uint8(h.next() % 8)
		c.oneToZero = h.next()&1 == 0
		if c.threshold < st.minThresh {
			st.minThresh = c.threshold
		}
	}
}

// Refresh executes one REF command at simulation time now: the rotating
// 1/8192 slice of every bank is refreshed, TRR fires its targeted
// refreshes, and (if enabled) pTRR refreshes the hottest neighborhoods.
func (d *Device) Refresh(now float64) {
	// Regular refresh of the rotating row slice is applied lazily via
	// rowEpoch; only the counter advances here.
	d.refCount++

	if d.OnRefresh != nil {
		d.OnRefresh(d.trr[0].keys, d.trr[0].counts)
	}

	// TRR: each bank's logic proactively refreshes the neighborhood of
	// its sampler's top candidates, then clears for the next interval.
	for bank := range d.trr {
		for _, row := range d.trr[bank].top(d.DIMM.TRRRefreshPerREF) {
			d.refreshNeighborhood(bank, row)
		}
		d.trr[bank].clear()
	}

	if d.PTRR {
		d.ptrrSweep()
	}
}

// refreshNeighborhood resets the disturbance of rows adjacent to an
// identified aggressor (the TRR action).
func (d *Device) refreshNeighborhood(bank int, row uint64) {
	d.trrEvents++
	if d.OnTRR != nil {
		d.OnTRR(bank, row)
	}
	for dist := uint64(1); dist <= 2; dist++ {
		if row >= dist {
			if st := d.touched[bank][row-dist]; st != nil {
				st.disturbance = 0
			}
		}
		if row+dist < d.rows {
			if st := d.touched[bank][row+dist]; st != nil {
				st.disturbance = 0
			}
		}
	}
}

// ptrrSweep is the platform mitigation: unlike the capacity-limited DRAM
// sampler it sees every activation, so it reliably neutralizes all
// heavily hammered rows each interval.
func (d *Device) ptrrSweep() {
	type rc struct {
		key uint64
		n   int
	}
	var hot []rc
	for k, n := range d.ptrrCounts {
		if n >= 3 {
			hot = append(hot, rc{k, n})
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i].n > hot[j].n })
	if len(hot) > 64 {
		hot = hot[:64]
	}
	for _, h := range hot {
		d.refreshNeighborhood(int(h.key>>48), h.key&d.rowsMask)
	}
	clear(d.ptrrCounts)
}

// Flips returns all flips recorded since the last Reset.
func (d *Device) Flips() []Flip { return d.flips }

// Reset clears disturbance state and recorded flips, modeling the
// attacker re-initializing victim memory between trials. The per-cell
// vulnerability map (seeded) is preserved.
func (d *Device) Reset() {
	for bank := range d.touched {
		for _, st := range d.touched[bank] {
			st.disturbance = 0
			st.epoch = 0
			if !st.materialized {
				continue
			}
			next := math.Inf(1)
			for i := range st.cells {
				st.cells[i].flipped = false
				if st.cells[i].threshold < next {
					next = st.cells[i].threshold
				}
			}
			st.minThresh = next
		}
	}
	d.flips = nil
	for i := range d.trr {
		d.trr[i].clear()
	}
	clear(d.ptrrCounts)
	d.refCount = 0
	d.actCount = 0
	d.trrEvents = 0
	clear(d.actCounts)
	d.resetRFM()
	d.resetRowSwap()
}

// ActCount reports the total activations a row has received since the
// last Reset.
func (d *Device) ActCount(bank int, row uint64) uint64 {
	return d.actCounts[row|uint64(bank)<<48]
}

// RowDisturbance reports the current in-window disturbance of a row,
// mainly for tests and diagnostics.
func (d *Device) RowDisturbance(bank int, row uint64) float64 {
	if st := d.touched[bank][row]; st != nil {
		return st.disturbance
	}
	return 0
}

// WeakCellCount reports how many weak cells a row holds (materializing
// it if needed) — used by tests and the templating analysis.
func (d *Device) WeakCellCount(bank int, row uint64) int {
	st := d.touched[bank][row]
	if st == nil {
		st = &rowState{minThresh: math.Inf(1)}
		d.touched[bank][row] = st
	}
	if !st.materialized {
		d.materializeRow(bank, row, st)
	}
	return len(st.cells)
}
