// Package dram models a DDR4 DRAM device at the granularity RowHammer
// cares about: per-row activation-disturbance accumulation within refresh
// windows, per-cell flip thresholds, regular refresh, and the in-DRAM
// Target Row Refresh (TRR) mitigation plus the platform-level pTRR option
// discussed in §6 of the paper.
//
// The model deliberately ignores columns and data transfer (the paper
// excludes RowPress and column addressing): an activation is the unit of
// disturbance, and a bit flip is a (bank, row, byte, bit, direction)
// tuple.
//
// Hot-path layout: a hammering campaign revisits the same ~dozen
// aggressor rows tens of millions of times, so the per-activation path is
// organized around a direct-mapped (bank,row)→state cache backed by the
// lazy per-bank maps, and all per-REF bookkeeping (TRR sampling, pTRR
// counting) is batched so refresh boundaries — not individual
// activations — pay the aggregation costs.
package dram

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"rhohammer/internal/arch"
	"rhohammer/internal/obs"
)

// Timing constants of the refresh machinery (DDR4 defaults).
const (
	TREFIns       = 7800.0 // average refresh command interval, ns
	RefreshSlices = 8192   // tREFW / tREFI: each row refreshed every 8192 REFs
	RowBytes      = 8192   // bytes per row (8 KB typical for x8 DDR4)
)

// Flip records one observed bit flip.
type Flip struct {
	Bank      int
	Row       uint64
	ByteInRow int
	Bit       uint8
	// Direction is true for a 1->0 flip (charged cell drained), false
	// for 0->1. Whether a flip is *observable* depends on the data
	// pattern the attacker initialized the victim row with.
	OneToZero bool
	// Time is the simulation timestamp (ns) at which the cell crossed
	// its disturbance threshold.
	Time float64
}

// VisibleUnder reports whether the flip would be observable when the
// victim row was initialized with the given repeating byte pattern: a
// cell can only be seen flipping 1->0 if the pattern stored a 1 there,
// and 0->1 if it stored a 0. Real templating scans with complementary
// patterns (e.g. 0x55 then 0xAA) to expose both directions.
func (f Flip) VisibleUnder(dataPattern byte) bool {
	storedOne := dataPattern&(1<<f.Bit) != 0
	return storedOne == f.OneToZero
}

// String implements fmt.Stringer.
func (f Flip) String() string {
	dir := "0->1"
	if f.OneToZero {
		dir = "1->0"
	}
	return fmt.Sprintf("bank %d row %d byte %d bit %d (%s)", f.Bank, f.Row, f.ByteInRow, f.Bit, dir)
}

// weakCell is one flippable cell of a row, pre-drawn deterministically
// from the DIMM's vulnerability distribution.
type weakCell struct {
	threshold float64 // activations-within-window needed to flip
	byteInRow int
	bit       uint8
	oneToZero bool
	flipped   bool
}

// rowState tracks the RowHammer-relevant state of one row that has seen
// neighbor activity or been activated itself. Rows are materialized
// lazily; an idle device uses no per-row memory.
type rowState struct {
	disturbance float64 // accumulated neighbor activations this window
	minThresh   float64 // cheapest threshold among unflipped weak cells
	// gate is the disturbance level at which the slow path must run:
	// materializeFloor while the weak-cell population is undrawn,
	// minThresh afterwards. A single comparison against it keeps the
	// steady-state disturb fast path inlineable.
	gate  float64
	epoch uint64 // refresh epoch at the last disturbance update
	// epochRef is the device refCount when epoch was last derived; the
	// epoch is a pure function of (row, refCount), so while refCount is
	// unchanged the derivation can be skipped entirely.
	epochRef     uint64
	acts         uint64 // activations of this row itself since Reset
	materialized bool   // weak-cell population drawn
	// nbr caches the states of the four blast-radius neighbors
	// (row-1, row+1, row-2, row+2; nil = off the edge of the bank),
	// filled on the row's first activation. States are created once and
	// never replaced, so the pointers stay valid for the device's
	// lifetime — Activate touches one cache line instead of four
	// row-cache probes.
	nbrOK bool
	nbr   [4]*rowState
	cells []weakCell
}

// materializeFloor defers drawing a row's weak-cell population until its
// in-window disturbance reaches this level. Real thresholds are tens of
// thousands, so the deferral never changes behaviour — it only keeps
// casually touched rows (e.g. during timing measurements) cheap.
const materializeFloor = 512

// Direct-mapped row-state cache geometry. The aggressor working set of
// any pattern is a few dozen (bank,row) pairs, so a 4096-entry cache
// makes the steady-state Activate path hash-free; conflicting keys
// simply fall back to the per-bank maps.
const (
	rowCacheBits = 12
	rowCacheSize = 1 << rowCacheBits
	rowCacheMask = rowCacheSize - 1
	rowCacheTag  = uint64(1) << 63 // valid marker OR'ed into cached keys
)

// rowCacheEntry is one slot of the direct-mapped (bank,row)→state cache.
type rowCacheEntry struct {
	key uint64 // row | bank<<48 | rowCacheTag; 0 = empty
	st  *rowState
}

// Device is one simulated DIMM attached to a memory controller.
type Device struct {
	DIMM *arch.DIMM
	Seed int64

	// PTRR enables the platform pseudo-TRR mitigation ("Rowhammer
	// Prevention" BIOS option, §6): the memory controller tracks the
	// most-activated rows with near-perfect fidelity and preemptively
	// refreshes their neighborhoods at every REF.
	PTRR bool

	banks    int
	rows     uint64
	rowsMask uint64

	// rowsPerSlice is rows/RefreshSlices (min 1), precomputed so the
	// per-victim epoch check never divides; when it is a power of two
	// (every profile in arch), sliceShift replaces even the cached
	// division with a shift.
	rowsPerSlice uint64
	sliceShift   uint
	sliceByShift bool

	// touched maps bank -> row -> state, for rows adjacent to any
	// activated row and for activated rows themselves (act counting).
	touched []map[uint64]*rowState

	// rowCache short-circuits the touched-map lookups for the hot
	// working set. Entries are never invalidated: states are created
	// exactly once and mutated in place, so a cached pointer stays
	// correct for the device's lifetime.
	rowCache []rowCacheEntry

	// trr holds the per-bank TRR sampler state (cleared every REF);
	// real DDR4 TRR logic operates independently per bank.
	trr []trrSampler

	// trrLog buffers the (post-swap) activated rows of each bank within
	// the current refresh interval; Refresh replays it into the sampler
	// in order, so per-activation cost is one append instead of a
	// sampler scan and the REF boundary pays the aggregation.
	trrLog [][]uint32

	// ptrrCounts tracks per-REF activation counts for the pTRR model in
	// a flat open-addressing table cleared at every REF.
	ptrrCounts ptrrTable

	flips     []Flip
	refCount  uint64 // total REF commands issued
	actCount  uint64
	trrEvents uint64

	// rfm holds the DDR5 refresh-management state (nil on DDR4).
	rfm       []rfmState
	rfmEvents uint64

	// rowSwap holds the randomized row-swap mitigation state (§6).
	rowSwap       rowSwapState
	rowSwapEvents uint64

	// shadow, when non-nil, receives a copy of every Activate, Refresh
	// and Reset (the simcheck audit mode, see audit.go). auditTRR logs
	// targeted-refresh events while a shadow is attached.
	shadow   Shadow
	auditTRR []TRRTrigger

	// trace, when non-nil, receives structured observability events
	// (see SetTrace in obs.go). Costs one nil check per hot-path event
	// when detached.
	trace *obs.Trace

	// OnTRR, if set, is invoked for every targeted refresh with the
	// identified aggressor. Diagnostics and tests only.
	OnTRR func(bank int, row uint64)

	// OnRefresh, if set, is invoked at each REF with the bank-0 sampler
	// snapshot (keys and counts). Diagnostics and tests only.
	OnRefresh func(keys []uint64, counts []int)

	// stateSlab is the bump allocator behind stateSlow: row states are
	// carved from fixed-size chunks instead of allocated one by one.
	// Mapping-recovery campaigns touch ~10⁵ distinct rows per run, and
	// per-row allocation was the top object-count site in the table6 /
	// recovery heap profiles. States never free individually (touched
	// pins them for the device's lifetime), so a slab retains nothing
	// beyond what the maps already hold. Kept at the end of the struct
	// so the hot fields above keep their cache-line placement.
	stateSlab []rowState
}

// NewDevice builds a device for the given DIMM profile. Seed fixes the
// per-cell vulnerability map: two devices with the same DIMM and seed
// flip the exact same cells, which is how the paper's "flips depend on
// physical location" observation (Orosa et al.) is reproduced.
func NewDevice(d *arch.DIMM, seed int64) *Device {
	dev := &Device{
		DIMM:     d,
		Seed:     seed,
		banks:    d.TotalBanks(),
		rows:     d.RowsPerBank,
		rowsMask: d.RowsPerBank - 1,
	}
	dev.rowsPerSlice = dev.rows / RefreshSlices
	if dev.rowsPerSlice == 0 {
		dev.rowsPerSlice = 1
	}
	if dev.rowsPerSlice&(dev.rowsPerSlice-1) == 0 {
		dev.sliceShift = uint(bits.TrailingZeros64(dev.rowsPerSlice))
		dev.sliceByShift = true
	}
	dev.touched = make([]map[uint64]*rowState, dev.banks)
	for i := range dev.touched {
		dev.touched[i] = make(map[uint64]*rowState)
	}
	dev.rowCache = make([]rowCacheEntry, rowCacheSize)
	dev.trr = make([]trrSampler, dev.banks)
	for i := range dev.trr {
		dev.trr[i] = newTRRSampler(d.TRRSamplerSize)
	}
	dev.trrLog = make([][]uint32, dev.banks)
	dev.ptrrCounts.init()
	dev.initRFM()
	return dev
}

// Banks returns the number of geographic banks.
func (d *Device) Banks() int { return d.banks }

// Rows returns the number of rows per bank.
func (d *Device) Rows() uint64 { return d.rows }

// ActivationCount returns the total number of ACT commands seen.
func (d *Device) ActivationCount() uint64 { return d.actCount }

// TRREvents returns how many targeted refreshes TRR has issued.
func (d *Device) TRREvents() uint64 { return d.trrEvents }

// blastWeights[dist] is the disturbance one activation deposits on a
// neighbor at the given row distance. Distance-2 coupling is an order of
// magnitude weaker (Half-Double-style far aggressors are out of scope
// but the coupling keeps double-sided patterns realistically stronger
// than single-sided ones).
var blastWeights = [3]float64{0, 1.0, 0.08}

// blast returns the disturbance weight at the given row distance.
func blast(dist int) float64 {
	if dist < 0 || dist >= len(blastWeights) {
		return 0
	}
	return blastWeights[dist]
}

// rowKey packs a (bank, row) pair into the 64-bit key used by the state
// store and the pTRR table.
func rowKey(bank int, row uint64) uint64 { return row | uint64(bank)<<48 }

// state returns the row's state, creating it on first touch. The
// direct-mapped cache serves the steady-state working set without
// hashing; misses fall back to (and refill from) the per-bank map. The
// fast path is kept small enough to inline into Activate and disturb.
func (d *Device) state(bank int, row uint64) *rowState {
	e := &d.rowCache[(row^uint64(bank)<<6)&rowCacheMask]
	if e.key == rowKey(bank, row)|rowCacheTag {
		return e.st
	}
	return d.stateSlow(bank, row)
}

// stateSlabChunk is the slab granularity: big enough to amortize the
// allocation, small enough that a short-lived device wastes little.
const stateSlabChunk = 1024

// stateSlow is the cache-miss path of state.
func (d *Device) stateSlow(bank int, row uint64) *rowState {
	st := d.touched[bank][row]
	if st == nil {
		if len(d.stateSlab) == 0 {
			d.stateSlab = make([]rowState, stateSlabChunk)
		}
		st = &d.stateSlab[0]
		d.stateSlab = d.stateSlab[1:]
		st.minThresh = math.Inf(1)
		st.gate = materializeFloor
		d.touched[bank][row] = st
	}
	e := &d.rowCache[(row^uint64(bank)<<6)&rowCacheMask]
	e.key = rowKey(bank, row) | rowCacheTag
	e.st = st
	return st
}

// peek returns the row's state without creating one, refilling the cache
// on a map hit.
func (d *Device) peek(bank int, row uint64) *rowState {
	key := rowKey(bank, row) | rowCacheTag
	e := &d.rowCache[(row^uint64(bank)<<6)&rowCacheMask]
	if e.key == key {
		return e.st
	}
	st := d.touched[bank][row]
	if st != nil {
		e.key = key
		e.st = st
	}
	return st
}

// Activate registers one ACT on (bank, row) at simulation time now (ns).
// It deposits disturbance on the neighboring rows and records any cells
// whose thresholds are crossed.
func (d *Device) Activate(bank int, row uint64, now float64) {
	if d.shadow != nil {
		// Forwarded before any mutation: the shadow models the same
		// substrate input (pre-row-swap logical address).
		d.shadow.Activate(bank, row, now)
	}
	d.actCount++
	if d.trace != nil {
		// Pre-swap logical address, like the shadow: the trace records
		// the substrate's input stream.
		d.trace.Emit(obs.Event{TimeNS: now, Layer: "dram", Kind: "act", Bank: bank, Row: row})
	}
	st := d.state(bank, row)
	st.acts++
	if d.rowSwap.enabled {
		// The swap layer sits between the address and the physical
		// array: everything below — disturbance, TRR sampling, RFM —
		// sees the row's current physical location.
		d.rowSwapObserve(bank, row)
		row = d.swapTarget(bank, row)
		st = d.state(bank, row)
	}
	d.trrLog[bank] = append(d.trrLog[bank], uint32(row))
	if d.PTRR {
		d.ptrrCounts.add(rowKey(bank, row))
	}
	if d.DIMM.DDR5 {
		d.rfmObserve(bank, row)
	}
	if !st.nbrOK {
		d.fillNeighbors(bank, row, st)
	}
	// Victim order (near pair before far pair) matches the original
	// dist-loop so the flip log sequence is bit-identical.
	if n := st.nbr[0]; n != nil {
		d.disturb(n, bank, row-1, blastWeights[1], now)
	}
	if n := st.nbr[1]; n != nil {
		d.disturb(n, bank, row+1, blastWeights[1], now)
	}
	if n := st.nbr[2]; n != nil {
		d.disturb(n, bank, row-2, blastWeights[2], now)
	}
	if n := st.nbr[3]; n != nil {
		d.disturb(n, bank, row+2, blastWeights[2], now)
	}
}

// fillNeighbors resolves and pins the blast-radius neighbor states of a
// row on its first activation.
func (d *Device) fillNeighbors(bank int, row uint64, st *rowState) {
	st.nbrOK = true
	if row >= 1 {
		st.nbr[0] = d.state(bank, row-1)
	}
	if row+1 < d.rows {
		st.nbr[1] = d.state(bank, row+1)
	}
	if row >= 2 {
		st.nbr[2] = d.state(bank, row-2)
	}
	if row+2 < d.rows {
		st.nbr[3] = d.state(bank, row+2)
	}
}

// rowEpoch returns how many times the row's refresh slice has been
// refreshed so far; a change since the last update means the row was
// refreshed in between and its window accumulator restarts.
func (d *Device) rowEpoch(row uint64) uint64 {
	var slice uint64
	if d.sliceByShift {
		slice = row >> d.sliceShift
	} else {
		slice = row / d.rowsPerSlice
	}
	if slice >= RefreshSlices {
		slice = RefreshSlices - 1
	}
	return (d.refCount + RefreshSlices - 1 - slice) / RefreshSlices
}

// disturb adds disturbance w to the victim row's (pre-resolved) state
// and fires flips. The body is the steady-state fast path — same epoch,
// gate not reached — kept small enough to inline into Activate; anything
// else goes to disturbSlow.
func (d *Device) disturb(st *rowState, bank int, row uint64, w float64, now float64) {
	if st.epochRef == d.refCount && st.disturbance+w < st.gate {
		st.disturbance += w
		return
	}
	d.disturbSlow(st, bank, row, w, now)
}

// disturbSlow handles epoch rollover, materialization, and threshold
// crossings; it is the pre-split disturb body, bit-for-bit.
func (d *Device) disturbSlow(st *rowState, bank int, row uint64, w float64, now float64) {
	if st.epochRef != d.refCount {
		// A REF happened since this row's last update; re-derive its
		// refresh epoch. (While refCount is unchanged the epoch cannot
		// change, so the steady state skips the derivation.)
		st.epochRef = d.refCount
		if e := d.rowEpoch(row); e != st.epoch {
			// The row's regular refresh passed since the last update:
			// its disturbance window restarted.
			st.epoch = e
			st.disturbance = 0
		}
	}
	st.disturbance += w
	if !st.materialized {
		if st.disturbance < materializeFloor {
			return
		}
		d.materializeRow(bank, row, st)
	}
	if st.disturbance < st.minThresh {
		return
	}
	// One or more cells crossed their thresholds.
	next := math.Inf(1)
	for i := range st.cells {
		c := &st.cells[i]
		if c.flipped {
			continue
		}
		if st.disturbance >= c.threshold {
			c.flipped = true
			d.flips = append(d.flips, Flip{
				Bank: bank, Row: row,
				ByteInRow: c.byteInRow, Bit: c.bit,
				OneToZero: c.oneToZero, Time: now,
			})
			if d.trace != nil {
				d.trace.Emit(obs.Event{TimeNS: now, Layer: "dram", Kind: "flip",
					Bank: bank, Row: row, N: int64(c.byteInRow)*8 + int64(c.bit)})
			}
		} else if c.threshold < next {
			next = c.threshold
		}
	}
	st.minThresh = next
	st.gate = next
}

// materializeRow draws the weak-cell population of a row from the
// DIMM's vulnerability distribution, deterministically in (seed, bank,
// row) — the same cells appear no matter when or in which run the row
// is first pressured.
func (d *Device) materializeRow(bank int, row uint64, st *rowState) {
	st.materialized = true
	st.minThresh = math.Inf(1)
	st.gate = math.Inf(1)
	if !d.DIMM.Flippable {
		return
	}
	h := newHashRand(d.Seed, uint64(bank), row)
	n := h.poisson(d.DIMM.WeakCellsPerRowLambda)
	if n == 0 {
		return
	}
	st.cells = make([]weakCell, n)
	for i := range st.cells {
		c := &st.cells[i]
		c.threshold = math.Exp(h.norm()*d.DIMM.ThresholdSigma + d.DIMM.ThresholdMu)
		c.byteInRow = int(h.next() % RowBytes)
		c.bit = uint8(h.next() % 8)
		c.oneToZero = h.next()&1 == 0
		if c.threshold < st.minThresh {
			st.minThresh = c.threshold
		}
	}
	st.gate = st.minThresh
	if d.trace != nil {
		// Blast-radius event: this row came under enough neighbor
		// pressure to enter the vulnerable population.
		d.trace.Emit(obs.Event{Layer: "dram", Kind: "blast", Bank: bank, Row: row, N: int64(n)})
	}
}

// Refresh executes one REF command at simulation time now: the rotating
// 1/8192 slice of every bank is refreshed, TRR fires its targeted
// refreshes, and (if enabled) pTRR refreshes the hottest neighborhoods.
func (d *Device) Refresh(now float64) {
	// Regular refresh of the rotating row slice is applied lazily via
	// rowEpoch; only the counter advances here.
	d.refCount++
	if d.trace != nil {
		d.trace.Emit(obs.Event{TimeNS: now, Layer: "dram", Kind: "ref"})
	}

	// Replay the interval's buffered activations into the per-bank
	// samplers, in original order — bit-identical to sampling at
	// activation time, but the scan cost is paid once per REF.
	for bank := range d.trrLog {
		log := d.trrLog[bank]
		if len(log) == 0 {
			continue
		}
		s := &d.trr[bank]
		for _, row := range log {
			s.observe(uint64(row))
		}
		d.trrLog[bank] = log[:0]
	}

	if d.OnRefresh != nil {
		d.OnRefresh(d.trr[0].keys, d.trr[0].counts)
	}

	// TRR: each bank's logic proactively refreshes the neighborhood of
	// its sampler's top candidates, then clears for the next interval.
	for bank := range d.trr {
		for _, row := range d.trr[bank].top(d.DIMM.TRRRefreshPerREF) {
			d.refreshNeighborhood(bank, row)
		}
		d.trr[bank].clear()
	}

	if d.PTRR {
		d.ptrrSweep()
	}

	if d.shadow != nil {
		// Forwarded after the REF is fully processed, so a diffing
		// shadow compares both models past the same event.
		d.shadow.Refresh(now)
	}
}

// refreshNeighborhood resets the disturbance of rows adjacent to an
// identified aggressor (the TRR action).
func (d *Device) refreshNeighborhood(bank int, row uint64) {
	d.trrEvents++
	if d.trace != nil {
		d.trace.Emit(obs.Event{Layer: "dram", Kind: "trr", Bank: bank, Row: row})
	}
	if d.shadow != nil {
		d.auditTRR = append(d.auditTRR, TRRTrigger{Bank: bank, Row: row})
	}
	if d.OnTRR != nil {
		d.OnTRR(bank, row)
	}
	for dist := uint64(1); dist <= 2; dist++ {
		if row >= dist {
			if st := d.peek(bank, row-dist); st != nil {
				st.disturbance = 0
			}
		}
		if row+dist < d.rows {
			if st := d.peek(bank, row+dist); st != nil {
				st.disturbance = 0
			}
		}
	}
}

// ptrrSweep is the platform mitigation: unlike the capacity-limited DRAM
// sampler it sees every activation, so it reliably neutralizes all
// heavily hammered rows each interval.
func (d *Device) ptrrSweep() {
	hot := d.ptrrCounts.hot(3)
	// Stable sort on count with insertion order breaking ties, so the
	// top-64 cut is deterministic (the map-based predecessor broke ties
	// by map iteration order).
	sort.SliceStable(hot, func(i, j int) bool { return hot[i].count > hot[j].count })
	if len(hot) > 64 {
		hot = hot[:64]
	}
	for _, h := range hot {
		d.refreshNeighborhood(int(h.key>>48), h.key&d.rowsMask)
	}
	d.ptrrCounts.clear()
}

// Flips returns all flips recorded since the last Reset. The returned
// slice is only valid until the next Reset, which recycles its backing
// array; callers that retain flips across trials must copy them (the
// hammer session result path already does).
func (d *Device) Flips() []Flip { return d.flips }

// Reset clears disturbance state and recorded flips, modeling the
// attacker re-initializing victim memory between trials. The per-cell
// vulnerability map (seeded) is preserved, as are the lazily built
// per-row states and the row cache (pointers stay valid — states are
// mutated in place, never replaced).
func (d *Device) Reset() {
	if d.trace != nil {
		// Reset is a substrate command like ACT/REF: without it in the
		// trace, a replay would carry disturbance across trial
		// boundaries the recording session cleared.
		d.trace.Emit(obs.Event{Layer: "dram", Kind: "reset"})
	}
	for bank := range d.touched {
		for _, st := range d.touched[bank] {
			st.disturbance = 0
			st.epoch = 0
			st.epochRef = 0
			st.acts = 0
			if !st.materialized {
				continue
			}
			next := math.Inf(1)
			for i := range st.cells {
				st.cells[i].flipped = false
				if st.cells[i].threshold < next {
					next = st.cells[i].threshold
				}
			}
			st.minThresh = next
			st.gate = next
		}
	}
	d.flips = d.flips[:0]
	for i := range d.trr {
		d.trr[i].clear()
	}
	for i := range d.trrLog {
		d.trrLog[i] = d.trrLog[i][:0]
	}
	d.ptrrCounts.clear()
	d.refCount = 0
	d.actCount = 0
	d.trrEvents = 0
	d.resetRFM()
	d.resetRowSwap()
	if d.shadow != nil {
		d.auditTRR = d.auditTRR[:0]
		d.shadow.Reset()
	}
}

// ActCount reports the total activations a row has received since the
// last Reset.
func (d *Device) ActCount(bank int, row uint64) uint64 {
	if st := d.peek(bank, row); st != nil {
		return st.acts
	}
	return 0
}

// RowDisturbance reports the current in-window disturbance of a row,
// mainly for tests and diagnostics.
func (d *Device) RowDisturbance(bank int, row uint64) float64 {
	if st := d.peek(bank, row); st != nil {
		return st.disturbance
	}
	return 0
}

// WeakCellCount reports how many weak cells a row holds (materializing
// it if needed) — used by tests and the templating analysis.
func (d *Device) WeakCellCount(bank int, row uint64) int {
	st := d.state(bank, row)
	if !st.materialized {
		d.materializeRow(bank, row, st)
	}
	return len(st.cells)
}
