package dram

import "sort"

// Audit-mode plumbing ("simcheck"): an optional Shadow receives a copy
// of every substrate-level event the device processes, so an independent
// reference implementation (internal/refmodel) can replay the exact same
// event stream and diff its state against this device at every refresh
// boundary. The hooks are nil-gated: with no shadow attached the only
// cost is one predictable branch per event, and none of the accessors
// below run.

// Shadow receives the device's substrate events. Activate is forwarded
// before the device mutates any state (with the pre-row-swap logical
// address, which is the substrate's input); Refresh and Reset are
// forwarded after the device has fully processed them, so a shadow that
// diffs at refresh boundaries sees both models past the same event.
type Shadow interface {
	Activate(bank int, row uint64, now float64)
	Refresh(now float64)
	Reset()
}

// AttachShadow connects a shadow model. Passing nil detaches it.
func (d *Device) AttachShadow(s Shadow) {
	d.shadow = s
	d.auditTRR = nil
}

// RefreshCount returns the number of REF commands processed since the
// last Reset.
func (d *Device) RefreshCount() uint64 { return d.refCount }

// TRRTrigger records one targeted-refresh event: the neighborhood of
// (Bank, Row) was proactively refreshed, by DDR4 TRR, pTRR, or DDR5 RFM.
type TRRTrigger struct {
	Bank int
	Row  uint64
}

// TakeTRRTriggers drains the targeted-refresh log accumulated since the
// last call. The log is only maintained while a shadow is attached.
func (d *Device) TakeTRRTriggers() []TRRTrigger {
	t := d.auditTRR
	d.auditTRR = nil
	return t
}

// VisitRows calls fn for every materialized row state, in (bank, row)
// order. The reported disturbance is the row's effective in-window value:
// a row whose refresh slice has passed since its last update reports 0,
// exactly what the next disturb would observe after the lazy epoch
// rollover. Audit and diagnostics only — the traversal sorts every bank's
// touched set.
func (d *Device) VisitRows(fn func(bank int, row uint64, disturbance float64, acts uint64)) {
	rows := make([]uint64, 0, 64)
	for bank := range d.touched {
		rows = rows[:0]
		for r := range d.touched[bank] {
			rows = append(rows, r)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i] < rows[j] })
		for _, r := range rows {
			st := d.touched[bank][r]
			fn(bank, r, d.effectiveDisturbance(r, st), st.acts)
		}
	}
}

// effectiveDisturbance returns the disturbance the next disturb of the
// row would start from: the stored accumulator, unless the row's refresh
// slice has been refreshed since the last update (the lazy window
// restart disturbSlow applies on its next visit).
func (d *Device) effectiveDisturbance(row uint64, st *rowState) float64 {
	if st.epochRef != d.refCount && d.rowEpoch(row) != st.epoch {
		return 0
	}
	return st.disturbance
}

// RowSwapConfig reports whether the row-swap mitigation is enabled and
// its swap period, so a shadow model can mirror the configuration.
func (d *Device) RowSwapConfig() (enabled bool, period uint64) {
	return d.rowSwap.enabled, d.rowSwap.period
}
