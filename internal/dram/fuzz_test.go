package dram

import (
	"sort"
	"testing"
)

// Differential fuzzing of the two scratch-buffer data structures on the
// device hot path, each against a naive re-derivation written in the
// plainest possible style. The production implementations earn their
// speed with reused buffers (trrSampler) and open addressing
// (ptrrTable); these fuzzers are what licenses that complexity.

// naiveSampler mirrors trrSampler's policy with fresh allocations and a
// straight sort: first-capacity-distinct tracking, top-n by (count
// desc, position asc), swap-with-last removal.
type naiveSampler struct {
	capacity int
	keys     []uint64
	counts   []int
}

func (s *naiveSampler) observe(key uint64) {
	for i, k := range s.keys {
		if k == key {
			s.counts[i]++
			return
		}
	}
	if len(s.keys) < s.capacity {
		s.keys = append(s.keys, key)
		s.counts = append(s.counts, 1)
	}
}

func (s *naiveSampler) top(n int) []uint64 {
	if n <= 0 || len(s.keys) == 0 {
		return nil
	}
	if n > len(s.keys) {
		n = len(s.keys)
	}
	pos := make([]int, len(s.keys))
	for i := range pos {
		pos[i] = i
	}
	sort.Slice(pos, func(a, b int) bool {
		i, j := pos[a], pos[b]
		if s.counts[i] != s.counts[j] {
			return s.counts[i] > s.counts[j]
		}
		return i < j
	})
	out := make([]uint64, n)
	for k := range out {
		out[k] = s.keys[pos[k]]
	}
	return out
}

func (s *naiveSampler) popTop(n int) []uint64 {
	out := s.top(n)
	for _, key := range out {
		for i, k := range s.keys {
			if k == key {
				last := len(s.keys) - 1
				s.keys[i], s.keys[last] = s.keys[last], s.keys[i]
				s.counts[i], s.counts[last] = s.counts[last], s.counts[i]
				s.keys = s.keys[:last]
				s.counts = s.counts[:last]
				break
			}
		}
	}
	return out
}

func (s *naiveSampler) clear() {
	s.keys = s.keys[:0]
	s.counts = s.counts[:0]
}

func sameKeys(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzTRRSampler drives trrSampler and naiveSampler through the same
// op stream — observe / top / popTop / clear — and requires identical
// selections at every step.
func FuzzTRRSampler(f *testing.F) {
	f.Add([]byte{0x01, 0x01, 0x11, 0x21, 0x02, 0x01, 0x03})
	f.Add([]byte{0x41, 0x41, 0x51, 0x51, 0x51, 0x12, 0x41, 0x22})
	f.Add([]byte{0x01, 0x11, 0x21, 0x31, 0x41, 0x51, 0x61, 0x71, 0x06, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		capacity := 1 + int(data[0]%12)
		fast := newTRRSampler(capacity)
		ref := naiveSampler{capacity: capacity}
		for i := 1; i < len(data); i++ {
			b := data[i]
			switch b & 3 {
			case 0:
				// top must not mutate: compare, then compare again.
				n := int(b>>2) % 6
				got := append([]uint64(nil), fast.top(n)...)
				want := ref.top(n)
				if !sameKeys(got, want) {
					t.Fatalf("op %d: top(%d) = %v, naive = %v", i, n, got, want)
				}
			case 1:
				key := uint64(b >> 2 & 15)
				fast.observe(key)
				ref.observe(key)
			case 2:
				n := int(b>>2) % 6
				got := append([]uint64(nil), fast.popTop(n)...)
				want := ref.popTop(n)
				if !sameKeys(got, want) {
					t.Fatalf("op %d: popTop(%d) = %v, naive = %v", i, n, got, want)
				}
				if fast.size() != len(ref.keys) {
					t.Fatalf("op %d: sizes diverged after popTop: %d vs %d", i, fast.size(), len(ref.keys))
				}
			case 3:
				fast.clear()
				ref.clear()
			}
		}
		if got, want := fast.top(16), ref.top(16); !sameKeys(got, want) {
			t.Fatalf("final top(16) = %v, naive = %v", got, want)
		}
	})
}

// FuzzPTRRTable drives the open-addressing ptrrTable and a map+log
// naive counter through the same add / hot / clear stream. Keys are
// masked below the ptrrTag bit, which real (bank,row) keys never set.
func FuzzPTRRTable(f *testing.F) {
	f.Add([]byte{0x05, 0x05, 0x15, 0x02, 0x05, 0x03})
	f.Add([]byte{0x45, 0x45, 0x45, 0x55, 0x55, 0x65, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fast ptrrTable
		fast.init()
		naiveCounts := map[uint64]int32{}
		var naiveOrder []uint64
		for i := 0; i < len(data); i++ {
			b := data[i]
			switch b & 3 {
			case 0:
				floor := int32(b>>2) % 5
				got := fast.hot(floor)
				var want []ptrrEntry
				for _, k := range naiveOrder {
					if naiveCounts[k] >= floor {
						want = append(want, ptrrEntry{key: k, count: naiveCounts[k]})
					}
				}
				if len(got) != len(want) {
					t.Fatalf("op %d: hot(%d) has %d entries, naive %d", i, floor, len(got), len(want))
				}
				for j := range got {
					if got[j] != want[j] {
						t.Fatalf("op %d: hot(%d)[%d] = %+v, naive %+v", i, floor, j, got[j], want[j])
					}
				}
			case 3:
				fast.clear()
				naiveCounts = map[uint64]int32{}
				naiveOrder = naiveOrder[:0]
			default:
				// Spread keys across both the row bits and the bank
				// bits the table hashes on; bit 63 (ptrrTag) stays 0.
				key := uint64(b>>2) | uint64(b&0x30)<<44
				fast.add(key)
				if naiveCounts[key] == 0 {
					naiveOrder = append(naiveOrder, key)
				}
				naiveCounts[key]++
			}
		}
	})
}

// TestPTRRTableGrowth forces the open-addressing table through several
// grow() cycles and checks insertion order and counts survive.
func TestPTRRTableGrowth(t *testing.T) {
	var tab ptrrTable
	tab.init()
	const n = 4000 // > ptrrInitSize/2, forces multiple doublings
	for round := 0; round < 3; round++ {
		for i := 0; i < n; i++ {
			tab.add(uint64(i))
			tab.add(uint64(i))
		}
		hot := tab.hot(2)
		if len(hot) != n {
			t.Fatalf("round %d: hot(2) has %d entries, want %d", round, len(hot), n)
		}
		for i, e := range hot {
			if e.key != uint64(i) || e.count != 2 {
				t.Fatalf("round %d: hot[%d] = %+v, want key=%d count=2", round, i, e, i)
			}
		}
		tab.clear()
		if got := tab.hot(0); len(got) != 0 {
			t.Fatalf("round %d: table not empty after clear: %d entries", round, len(got))
		}
	}
}
