package dram

import (
	"math"
	"testing"
)

func TestHashRandDeterminism(t *testing.T) {
	a := newHashRand(1, 2, 3)
	b := newHashRand(1, 2, 3)
	for i := 0; i < 50; i++ {
		if a.next() != b.next() {
			t.Fatal("same key diverged")
		}
	}
}

func TestHashRandKeySeparation(t *testing.T) {
	base := newHashRand(1, 2, 3)
	variants := []hashRand{
		newHashRand(2, 2, 3),
		newHashRand(1, 3, 3),
		newHashRand(1, 2, 4),
	}
	b0 := base.next()
	for i, v := range variants {
		if v.next() == b0 {
			t.Errorf("variant %d produced the base stream's first value", i)
		}
	}
}

func TestHashRandFloatRange(t *testing.T) {
	h := newHashRand(9, 9, 9)
	for i := 0; i < 10000; i++ {
		f := h.float64()
		if f < 0 || f >= 1 {
			t.Fatalf("float64 out of [0,1): %v", f)
		}
	}
}

func TestHashRandNormMoments(t *testing.T) {
	h := newHashRand(5, 5, 5)
	n := 20000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := h.norm()
		sum += x
		ss += x * x
	}
	mean := sum / float64(n)
	variance := ss/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("norm mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("norm variance = %v", variance)
	}
}

func TestHashRandPoisson(t *testing.T) {
	h := newHashRand(6, 6, 6)
	if h.poisson(0) != 0 {
		t.Error("poisson(0) != 0")
	}
	if h.poisson(-1) != 0 {
		t.Error("poisson(-1) != 0")
	}
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(h.poisson(2.5))
	}
	mean := sum / float64(n)
	if math.Abs(mean-2.5) > 0.1 {
		t.Errorf("poisson mean = %v, want ~2.5", mean)
	}
}

func TestMix64NotIdentity(t *testing.T) {
	if mix64(0) == 0 && mix64(1) == 1 {
		t.Error("mix64 looks like identity")
	}
	if mix64(42) == mix64(43) {
		t.Error("mix64 collision on adjacent inputs")
	}
}
