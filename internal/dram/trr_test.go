package dram

import "testing"

func TestSamplerFirstComeTracking(t *testing.T) {
	s := newTRRSampler(3)
	for _, k := range []uint64{1, 2, 3, 4, 5} {
		s.observe(k)
	}
	if s.size() != 3 {
		t.Fatalf("sampler size = %d, want 3 (capacity)", s.size())
	}
	// Only the first 3 distinct rows are tracked; later rows go
	// unobserved.
	s.observe(1)
	s.observe(1)
	s.observe(4)
	top := s.top(1)
	if len(top) != 1 || top[0] != 1 {
		t.Errorf("top(1) = %v, want [1]", top)
	}
}

func TestSamplerCountOrdering(t *testing.T) {
	s := newTRRSampler(6)
	for i := 0; i < 5; i++ {
		s.observe(10)
	}
	for i := 0; i < 3; i++ {
		s.observe(20)
	}
	s.observe(30)
	top := s.top(2)
	if len(top) != 2 || top[0] != 10 || top[1] != 20 {
		t.Errorf("top(2) = %v, want [10 20]", top)
	}
}

func TestSamplerTieBreakEarlierWins(t *testing.T) {
	s := newTRRSampler(4)
	s.observe(7)
	s.observe(8)
	s.observe(7)
	s.observe(8) // both have count 2; 7 was inserted first
	top := s.top(1)
	if top[0] != 7 {
		t.Errorf("tie break: top = %v, want 7", top[0])
	}
}

func TestSamplerTopBounds(t *testing.T) {
	s := newTRRSampler(4)
	if got := s.top(2); got != nil {
		t.Errorf("top on empty sampler = %v", got)
	}
	s.observe(1)
	if got := s.top(5); len(got) != 1 {
		t.Errorf("top(5) with one entry = %v", got)
	}
	if got := s.top(0); got != nil {
		t.Errorf("top(0) = %v", got)
	}
}

func TestSamplerClear(t *testing.T) {
	s := newTRRSampler(4)
	s.observe(1)
	s.observe(2)
	s.clear()
	if s.size() != 0 {
		t.Error("clear left entries")
	}
	// Capacity is fresh after clear.
	for _, k := range []uint64{5, 6, 7, 8} {
		s.observe(k)
	}
	if s.size() != 4 {
		t.Errorf("size after refill = %d", s.size())
	}
}

func TestSamplerMinimumCapacity(t *testing.T) {
	s := newTRRSampler(0)
	s.observe(1)
	if s.size() != 1 {
		t.Error("zero capacity should clamp to 1")
	}
}

func TestSamplerPopTop(t *testing.T) {
	s := newTRRSampler(6)
	for i := 0; i < 5; i++ {
		s.observe(10)
	}
	for i := 0; i < 3; i++ {
		s.observe(20)
	}
	s.observe(30)
	got := s.popTop(2)
	if len(got) != 2 || got[0] != 10 || got[1] != 20 {
		t.Fatalf("popTop = %v", got)
	}
	if s.size() != 1 {
		t.Errorf("size after pop = %d, want 1", s.size())
	}
	// The survivor keeps its count and rises to the top — the
	// fair-service property RFM depends on.
	if top := s.top(1); len(top) != 1 || top[0] != 30 {
		t.Errorf("survivor not promoted: %v", top)
	}
	// Freed capacity is reusable.
	s.observe(40)
	s.observe(40)
	if top := s.popTop(1); top[0] != 40 {
		t.Errorf("new entry not tracked after pop: %v", top)
	}
}
