package dram

import (
	"math"
	"testing"

	"rhohammer/internal/arch"
)

// vulnerableDIMM returns a test DIMM with low, tight thresholds so
// deterministic small-scale hammering crosses them.
func vulnerableDIMM() *arch.DIMM {
	d := arch.DIMMS4()
	d.ThresholdMu = math.Log(1000)
	d.ThresholdSigma = 0.05
	d.WeakCellsPerRowLambda = 3
	return d
}

func TestActivationBookkeeping(t *testing.T) {
	dev := NewDevice(arch.DIMMS1(), 1)
	if dev.Banks() != 32 || dev.Rows() != 1<<16 {
		t.Fatalf("geometry %d banks %d rows", dev.Banks(), dev.Rows())
	}
	dev.Activate(3, 100, 0)
	dev.Activate(3, 100, 10)
	dev.Activate(4, 100, 20)
	if dev.ActivationCount() != 3 {
		t.Errorf("activation count = %d", dev.ActivationCount())
	}
	if dev.ActCount(3, 100) != 2 || dev.ActCount(4, 100) != 1 {
		t.Errorf("per-row act counts wrong")
	}
}

func TestBlastRadius(t *testing.T) {
	dev := NewDevice(arch.DIMMS1(), 1)
	dev.Activate(0, 100, 0)
	if d := dev.RowDisturbance(0, 99); d != 1 {
		t.Errorf("distance-1 victim disturbance = %v, want 1", d)
	}
	if d := dev.RowDisturbance(0, 101); d != 1 {
		t.Errorf("distance-1 victim disturbance = %v, want 1", d)
	}
	if d := dev.RowDisturbance(0, 98); d != 0.08 {
		t.Errorf("distance-2 victim disturbance = %v, want 0.08", d)
	}
	if d := dev.RowDisturbance(0, 103); d != 0 {
		t.Errorf("distance-3 row disturbed: %v", d)
	}
	if d := dev.RowDisturbance(1, 99); d != 0 {
		t.Errorf("wrong bank disturbed: %v", d)
	}
}

func TestBlastEdgeRows(t *testing.T) {
	dev := NewDevice(arch.DIMMS1(), 1)
	// Must not panic or wrap at the array edges.
	dev.Activate(0, 0, 0)
	dev.Activate(0, dev.Rows()-1, 0)
	if d := dev.RowDisturbance(0, 1); d != 1 {
		t.Errorf("edge neighbor disturbance = %v", d)
	}
}

func TestFlipAtThreshold(t *testing.T) {
	dev := NewDevice(vulnerableDIMM(), 7)
	// Hammer row 1000's neighbors until its weak cells flip.
	for i := 0; i < 3000; i++ {
		dev.Activate(0, 999, float64(i))
		dev.Activate(0, 1001, float64(i))
	}
	flips := dev.Flips()
	if len(flips) == 0 {
		t.Fatal("no flips despite disturbance far above threshold")
	}
	for _, f := range flips {
		if f.Bank != 0 {
			t.Errorf("flip in wrong bank: %v", f)
		}
		if f.ByteInRow < 0 || f.ByteInRow >= RowBytes || f.Bit > 7 {
			t.Errorf("flip coordinates out of range: %v", f)
		}
	}
}

func TestFlipFiresOncePerCell(t *testing.T) {
	dev := NewDevice(vulnerableDIMM(), 7)
	for i := 0; i < 6000; i++ {
		dev.Activate(0, 999, 0)
		dev.Activate(0, 1001, 0)
	}
	n := len(dev.Flips())
	for i := 0; i < 6000; i++ {
		dev.Activate(0, 999, 0)
	}
	// Row 1000's cells already flipped; only new rows (998/1002 side
	// effects) may add flips, never duplicates.
	_ = n
	seen := map[[4]int]bool{}
	for _, f := range dev.Flips() {
		key := [4]int{f.Bank, int(f.Row), f.ByteInRow, int(f.Bit)}
		if seen[key] {
			t.Fatalf("duplicate flip %v", f)
		}
		seen[key] = true
	}
}

func TestVulnerabilityDeterminism(t *testing.T) {
	a := NewDevice(vulnerableDIMM(), 99)
	b := NewDevice(vulnerableDIMM(), 99)
	for i := 0; i < 4000; i++ {
		a.Activate(2, 500, float64(i))
		b.Activate(2, 500, float64(i))
	}
	fa, fb := a.Flips(), b.Flips()
	if len(fa) == 0 {
		t.Fatal("expected flips")
	}
	if len(fa) != len(fb) {
		t.Fatalf("flip counts differ: %d vs %d", len(fa), len(fb))
	}
	for i := range fa {
		if fa[i].Row != fb[i].Row || fa[i].ByteInRow != fb[i].ByteInRow || fa[i].Bit != fb[i].Bit {
			t.Errorf("flip %d differs: %v vs %v", i, fa[i], fb[i])
		}
	}
	// A different seed produces a different cell population.
	c := NewDevice(vulnerableDIMM(), 100)
	for i := 0; i < 4000; i++ {
		c.Activate(2, 500, float64(i))
	}
	fc := c.Flips()
	same := len(fa) == len(fc)
	if same {
		for i := range fa {
			if fa[i].ByteInRow != fc[i].ByteInRow {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical vulnerability maps")
	}
}

func TestRegularRefreshResetsWindow(t *testing.T) {
	dev := NewDevice(arch.DIMMS1(), 1)
	dev.Activate(0, 100, 0)
	if dev.RowDisturbance(0, 101) != 1 {
		t.Fatal("setup failed")
	}
	// Drive a full refresh window: every row's slice is refreshed once.
	for i := 0; i < RefreshSlices; i++ {
		dev.Refresh(float64(i) * TREFIns)
	}
	// The reset is lazy: it must be visible at the next disturbance.
	dev.Activate(0, 100, 1e9)
	if d := dev.RowDisturbance(0, 101); d != 1 {
		t.Errorf("disturbance after full refresh window = %v, want 1 (reset + one new)", d)
	}
}

func TestTRRCatchesUniformAggressor(t *testing.T) {
	dev := NewDevice(vulnerableDIMM(), 3)
	// A classic double-sided pattern: only two rows hammered. TRR must
	// identify them and keep the victim refreshed: no flips even far
	// beyond the cell threshold count.
	for ref := 0; ref < 400; ref++ {
		for i := 0; i < 40; i++ {
			dev.Activate(0, 999, 0)
			dev.Activate(0, 1001, 0)
		}
		dev.Refresh(float64(ref) * TREFIns)
	}
	if n := len(dev.Flips()); n != 0 {
		t.Errorf("TRR failed to stop uniform double-sided hammering: %d flips", n)
	}
	if dev.TRREvents() == 0 {
		t.Error("TRR never fired")
	}
}

func TestTRREvadedByDecoys(t *testing.T) {
	dev := NewDevice(vulnerableDIMM(), 3)
	// Non-uniform: two decoy rows with dominant counts protect the
	// true pair (999, 1001).
	for ref := 0; ref < 400; ref++ {
		for i := 0; i < 40; i++ {
			dev.Activate(0, 2000, 0) // decoys: 2x the count
			dev.Activate(0, 3000, 0)
			if i%2 == 0 {
				dev.Activate(0, 999, 0)
				dev.Activate(0, 1001, 0)
			}
		}
		dev.Refresh(float64(ref) * TREFIns)
	}
	if n := len(dev.Flips()); n == 0 {
		t.Error("decoy-protected hammering produced no flips")
	}
}

func TestPTRRStopsDecoyPattern(t *testing.T) {
	dev := NewDevice(vulnerableDIMM(), 3)
	dev.PTRR = true
	for ref := 0; ref < 400; ref++ {
		for i := 0; i < 40; i++ {
			dev.Activate(0, 2000, 0)
			dev.Activate(0, 3000, 0)
			if i%2 == 0 {
				dev.Activate(0, 999, 0)
				dev.Activate(0, 1001, 0)
			}
		}
		dev.Refresh(float64(ref) * TREFIns)
	}
	if n := len(dev.Flips()); n != 0 {
		t.Errorf("pTRR failed: %d flips", n)
	}
}

func TestM1NeverFlips(t *testing.T) {
	dev := NewDevice(arch.DIMMM1(), 3)
	for i := 0; i < 500000; i++ {
		dev.Activate(0, 999, 0)
		dev.Activate(0, 1001, 0)
	}
	if n := len(dev.Flips()); n != 0 {
		t.Errorf("M1 flipped %d cells", n)
	}
}

func TestResetClearsState(t *testing.T) {
	dev := NewDevice(vulnerableDIMM(), 7)
	for i := 0; i < 4000; i++ {
		dev.Activate(0, 999, 0)
		dev.Activate(0, 1001, 0)
	}
	if len(dev.Flips()) == 0 {
		t.Fatal("setup: no flips")
	}
	first := len(dev.Flips())
	dev.Reset()
	if len(dev.Flips()) != 0 || dev.ActivationCount() != 0 || dev.TRREvents() != 0 {
		t.Error("Reset left residual state")
	}
	// The same hammering flips the same cells again (location-stable
	// vulnerability).
	for i := 0; i < 4000; i++ {
		dev.Activate(0, 999, 0)
		dev.Activate(0, 1001, 0)
	}
	if len(dev.Flips()) != first {
		t.Errorf("reproducibility after Reset: %d vs %d flips", len(dev.Flips()), first)
	}
}

func TestWeakCellCountDeterministic(t *testing.T) {
	dev := NewDevice(arch.DIMMS3(), 5)
	a := dev.WeakCellCount(1, 777)
	b := dev.WeakCellCount(1, 777)
	if a != b {
		t.Errorf("WeakCellCount not stable: %d vs %d", a, b)
	}
	dev2 := NewDevice(arch.DIMMS3(), 5)
	if dev2.WeakCellCount(1, 777) != a {
		t.Error("WeakCellCount differs across devices with same seed")
	}
}

func TestOnTRRHook(t *testing.T) {
	dev := NewDevice(vulnerableDIMM(), 3)
	var hits int
	dev.OnTRR = func(bank int, row uint64) { hits++ }
	for i := 0; i < 50; i++ {
		dev.Activate(0, 999, 0)
	}
	dev.Refresh(0)
	if hits == 0 {
		t.Error("OnTRR not invoked")
	}
}

func TestRowEpochAdvances(t *testing.T) {
	dev := NewDevice(arch.DIMMS1(), 1)
	e0 := dev.rowEpoch(0)
	for i := 0; i < RefreshSlices; i++ {
		dev.Refresh(0)
	}
	if dev.rowEpoch(0) != e0+1 {
		t.Errorf("epoch did not advance by 1 after a full refresh cycle")
	}
}

func TestFlipVisibleUnder(t *testing.T) {
	oneToZero := Flip{Bit: 3, OneToZero: true}
	zeroToOne := Flip{Bit: 3, OneToZero: false}
	allOnes, allZeros := byte(0xFF), byte(0x00)
	if !oneToZero.VisibleUnder(allOnes) || oneToZero.VisibleUnder(allZeros) {
		t.Error("1->0 flip visibility")
	}
	if zeroToOne.VisibleUnder(allOnes) || !zeroToOne.VisibleUnder(allZeros) {
		t.Error("0->1 flip visibility")
	}
	// Complementary stripe patterns together expose every flip.
	for _, f := range []Flip{oneToZero, zeroToOne, {Bit: 0, OneToZero: true}, {Bit: 7}} {
		if !f.VisibleUnder(0x55) && !f.VisibleUnder(0xAA) {
			t.Errorf("flip %v invisible under both stripes", f)
		}
	}
}
