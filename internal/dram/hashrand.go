package dram

import "math"

// hashRand is a tiny deterministic random stream keyed by (seed, bank,
// row). It lets the device materialize a row's weak-cell population
// lazily while guaranteeing the same cells appear no matter when — or in
// which run — the row is first touched. splitmix64 is used as the mixer;
// it is statistically strong enough for this purpose and extremely fast.
type hashRand struct {
	state uint64
}

func newHashRand(seed int64, bank, row uint64) hashRand {
	s := uint64(seed)
	s = mix64(s ^ 0x9e3779b97f4a7c15)
	s = mix64(s ^ bank*0xbf58476d1ce4e5b9)
	s = mix64(s ^ row*0x94d049bb133111eb)
	return hashRand{state: s}
}

func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next returns the next 64-bit value of the stream.
func (h *hashRand) next() uint64 {
	h.state += 0x9e3779b97f4a7c15
	z := h.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0, 1).
func (h *hashRand) float64() float64 {
	return float64(h.next()>>11) / (1 << 53)
}

// norm returns a standard normal deviate (Box-Muller).
func (h *hashRand) norm() float64 {
	u1 := h.float64()
	for u1 == 0 {
		u1 = h.float64()
	}
	u2 := h.float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// poisson draws a Poisson(lambda) count using Knuth's method; lambda is
// always small (< ~3) in this codebase so the loop is short.
func (h *hashRand) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= h.float64()
		if p <= l {
			return k
		}
		k++
		if k > 64 { // safety net; unreachable for sane lambda
			return k
		}
	}
}
