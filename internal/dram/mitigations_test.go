package dram

import (
	"testing"

	"rhohammer/internal/arch"
)

// ddr5Test returns a weak-celled DDR5 module so that any RFM lapse would
// immediately show up as flips.
func ddr5Test() *arch.DIMM {
	d := arch.DIMMD1()
	d.ThresholdMu = 7 // ~1100 activations
	d.ThresholdSigma = 0.05
	d.WeakCellsPerRowLambda = 3
	return d
}

// The decoy pattern that defeats DDR4 TRR must fail against DDR5 RFM:
// the per-RAAIMT mitigation window is too tight and the tracker too deep
// for decoys to shield anything.
func TestRFMStopsDecoyPattern(t *testing.T) {
	dev := NewDevice(ddr5Test(), 3)
	for ref := 0; ref < 800; ref++ {
		for i := 0; i < 40; i++ {
			dev.Activate(0, 2000, 0)
			dev.Activate(0, 3000, 0)
			if i%2 == 0 {
				dev.Activate(0, 999, 0)
				dev.Activate(0, 1001, 0)
			}
		}
		dev.Refresh(float64(ref) * TREFIns)
	}
	if n := len(dev.Flips()); n != 0 {
		t.Errorf("RFM failed against decoy pattern: %d flips", n)
	}
	if dev.RFMEvents() == 0 {
		t.Error("no RFM sweeps recorded")
	}
}

// The same pattern against the same cells WITHOUT RFM flips — proving
// the suppression above comes from RFM, not from the test setup.
func TestRFMCounterfactual(t *testing.T) {
	d := ddr5Test()
	d.DDR5 = false // same cells, no refresh management
	dev := NewDevice(d, 3)
	for ref := 0; ref < 800; ref++ {
		for i := 0; i < 40; i++ {
			dev.Activate(0, 2000, 0)
			dev.Activate(0, 3000, 0)
			if i%2 == 0 {
				dev.Activate(0, 999, 0)
				dev.Activate(0, 1001, 0)
			}
		}
		dev.Refresh(float64(ref) * TREFIns)
	}
	if len(dev.Flips()) == 0 {
		t.Error("counterfactual produced no flips; RFM test is vacuous")
	}
}

func TestRFMStateResets(t *testing.T) {
	dev := NewDevice(ddr5Test(), 3)
	for i := 0; i < 500; i++ {
		dev.Activate(0, 999, 0)
	}
	if dev.RFMEvents() == 0 {
		t.Fatal("no RFM events")
	}
	dev.Reset()
	if dev.RFMEvents() != 0 {
		t.Error("RFM events survive Reset")
	}
}

func TestRowSwapDisperses(t *testing.T) {
	d := arch.DIMMS4()
	// The threshold must exceed the dose a victim collects while its
	// aggressor stays at one physical location between swaps —
	// otherwise relocation just mints new victims. Real thresholds
	// (tens of thousands) are far above it; ~4000 keeps the unit test
	// fast while preserving the relationship.
	d.ThresholdMu = 8.3
	d.ThresholdSigma = 0.05
	d.WeakCellsPerRowLambda = 3

	// Without row swap the pattern flips.
	plain := NewDevice(d, 5)
	hammerDecoys := func(dev *Device) {
		for ref := 0; ref < 800; ref++ {
			for i := 0; i < 40; i++ {
				dev.Activate(0, 2000, 0)
				dev.Activate(0, 3000, 0)
				if i%2 == 0 {
					dev.Activate(0, 999, 0)
					dev.Activate(0, 1001, 0)
				}
			}
			dev.Refresh(float64(ref) * TREFIns)
		}
	}
	hammerDecoys(plain)
	if len(plain.Flips()) == 0 {
		t.Fatal("setup: no flips without row swap")
	}

	swapped := NewDevice(d, 5)
	swapped.EnableRowSwap(2048)
	hammerDecoys(swapped)
	if len(swapped.Flips()) >= len(plain.Flips())/4 {
		t.Errorf("row swap barely helped: %d vs %d flips", len(swapped.Flips()), len(plain.Flips()))
	}
	if swapped.RowSwapEvents() == 0 {
		t.Error("no swaps recorded")
	}
}

func TestRowSwapRemapConsistency(t *testing.T) {
	d := arch.DIMMS4()
	dev := NewDevice(d, 5)
	dev.EnableRowSwap(10)
	// Drive enough activations to force swaps; the remap table must
	// stay a permutation on the touched set (no two logical rows
	// mapping to the same physical row).
	for i := 0; i < 5000; i++ {
		dev.Activate(0, uint64(1000+i%50), 0)
	}
	seen := map[uint64]uint64{}
	for logical, phys := range dev.rowSwap.remap[0] {
		if prev, dup := seen[phys]; dup {
			t.Fatalf("physical row %d claimed by logical %d and %d", phys, prev, logical)
		}
		seen[phys] = logical
	}
}

func TestDDR5ProfileGeometry(t *testing.T) {
	d := arch.DIMMD1()
	if !d.DDR5 || d.RAAIMT == 0 || d.RFMSamplerSize == 0 {
		t.Error("DDR5 profile incomplete")
	}
	if d.TotalBanks() != 64 {
		t.Errorf("DDR5 banks = %d, want 64", d.TotalBanks())
	}
}
