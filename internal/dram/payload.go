package dram

import "rhohammer/internal/obs"

// Batch-activation surface for the compiled-payload executor
// (internal/cpu). The executor buffers the ACTs of a compiled schedule
// and hands them to ActivateBatch in original issue order, flushing the
// buffer before every REF and at the end of every run — so the device
// processes the exact event sequence the per-call Activate path would
// have seen, and every observable (flip log, TRR triggers, samplers,
// counters, the simcheck shadow stream) stays bit-identical.
//
// What batching buys: the (bank,row)→state resolution, the neighbor
// pinning and the per-call overhead are hoisted to compile time via
// PrepareAct, and the remaining per-ACT work runs in a tight loop over
// a flat entry slice instead of being interleaved with CPU-model
// bookkeeping. Per-bank aggregation stays exactly where it already
// was: the trrLog append per ACT, replayed once per REF.
//
// Rules the executor must follow:
//
//   - Entries are appended in the order the interpreted path would have
//     called Activate. ActivateBatch never reorders them.
//   - The buffer is flushed before any Refresh reaches the device and
//     before anything reads device state (flips, counters, row state).
//   - Eager state creation in PrepareAct is safe: a row state that
//     exists with zero disturbance and zero acts is observationally
//     identical to an absent one (the audit's row diff treats absent
//     rows as zero).

// ActRef is one payload line's preresolved activation target: the
// pinned row state plus the identifiers every mitigation hook needs.
// Valid for the device's lifetime — states are created once and mutated
// in place, never replaced, even across Reset.
type ActRef struct {
	st   *rowState
	key  uint64 // rowKey(bank, row), for the pTRR table
	row  uint64
	bank int32
}

// PrepareAct resolves (bank, row) to a pinned activation target,
// creating the row state and its blast-radius neighborhood eagerly.
// Compile-time only.
func (d *Device) PrepareAct(bank int, row uint64) ActRef {
	st := d.state(bank, row)
	if !st.nbrOK {
		d.fillNeighbors(bank, row, st)
	}
	return ActRef{st: st, key: rowKey(bank, row), row: row, bank: int32(bank)}
}

// ActEntry is one buffered ACT: a preresolved target and its issue time.
type ActEntry struct {
	Ref *ActRef
	At  float64
}

// ActivateBatch applies a buffered run of ACTs in order. Semantically
// equivalent to calling Activate(bank, row, at) for each entry; the
// configuration checks are hoisted out of the loop and the hot
// configuration (no shadow, no trace, no pTRR, no DDR5 RFM, no row
// swap) runs a lean loop over the pinned states.
func (d *Device) ActivateBatch(entries []ActEntry) {
	if d.rowSwap.enabled {
		// Row swap remaps addresses dynamically between ACTs, so the
		// pinned pre-swap states cannot be used; take the full per-call
		// path, which is bit-identical by construction.
		for i := range entries {
			e := &entries[i]
			d.Activate(int(e.Ref.bank), e.Ref.row, e.At)
		}
		return
	}
	if d.shadow != nil || d.trace != nil || d.PTRR || d.DIMM.DDR5 {
		d.activateBatchGeneral(entries)
		return
	}
	// No REF can occur inside a batch, so the refresh epoch check of the
	// disturb fast path is loop-invariant; with it hoisted, the
	// steady-state victim update is a compare and an add, hand-inlined
	// (the compiler declines to inline disturb into this loop).
	if len(entries) == 0 {
		return
	}
	rc := d.refCount
	w1, w2 := blastWeights[1], blastWeights[2]
	// Hammer batches are dominated by same-bank runs, so the per-bank
	// TRR log is held in a local and written back only on bank switches
	// (and once at the end), saving a slice-header load/store per ACT.
	// Per-bank append order and cross-bank interleaving are unchanged.
	curBank := entries[0].Ref.bank
	log := d.trrLog[curBank]
	for i := range entries {
		e := &entries[i]
		ref := e.Ref
		st := ref.st
		st.acts++
		bank := ref.bank
		if bank != curBank {
			d.trrLog[curBank] = log
			curBank = bank
			log = d.trrLog[curBank]
		}
		log = append(log, uint32(ref.row))
		// Victim order (near pair before far pair) matches Activate so
		// the flip log sequence is bit-identical.
		if n := st.nbr[0]; n != nil {
			if n.epochRef == rc && n.disturbance+w1 < n.gate {
				n.disturbance += w1
			} else {
				d.disturbSlow(n, int(bank), ref.row-1, w1, e.At)
			}
		}
		if n := st.nbr[1]; n != nil {
			if n.epochRef == rc && n.disturbance+w1 < n.gate {
				n.disturbance += w1
			} else {
				d.disturbSlow(n, int(bank), ref.row+1, w1, e.At)
			}
		}
		if n := st.nbr[2]; n != nil {
			if n.epochRef == rc && n.disturbance+w2 < n.gate {
				n.disturbance += w2
			} else {
				d.disturbSlow(n, int(bank), ref.row-2, w2, e.At)
			}
		}
		if n := st.nbr[3]; n != nil {
			if n.epochRef == rc && n.disturbance+w2 < n.gate {
				n.disturbance += w2
			} else {
				d.disturbSlow(n, int(bank), ref.row+2, w2, e.At)
			}
		}
	}
	d.trrLog[curBank] = log
	// No observer sees actCount between entries in this configuration,
	// so the counter advances once per batch.
	d.actCount += uint64(len(entries))
}

// activateBatchGeneral is the batch loop with every per-ACT observer
// hook in place, mirroring Activate's statement order exactly (minus
// the row-swap step, which forces the fallback above).
func (d *Device) activateBatchGeneral(entries []ActEntry) {
	for i := range entries {
		e := &entries[i]
		ref := e.Ref
		bank := int(ref.bank)
		row := ref.row
		if d.shadow != nil {
			d.shadow.Activate(bank, row, e.At)
		}
		d.actCount++
		if d.trace != nil {
			d.trace.Emit(obs.Event{TimeNS: e.At, Layer: "dram", Kind: "act", Bank: bank, Row: row})
		}
		st := ref.st
		st.acts++
		d.trrLog[bank] = append(d.trrLog[bank], uint32(row))
		if d.PTRR {
			d.ptrrCounts.add(ref.key)
		}
		if d.DIMM.DDR5 {
			d.rfmObserve(bank, row)
		}
		if n := st.nbr[0]; n != nil {
			d.disturb(n, bank, row-1, blastWeights[1], e.At)
		}
		if n := st.nbr[1]; n != nil {
			d.disturb(n, bank, row+1, blastWeights[1], e.At)
		}
		if n := st.nbr[2]; n != nil {
			d.disturb(n, bank, row-2, blastWeights[2], e.At)
		}
		if n := st.nbr[3]; n != nil {
			d.disturb(n, bank, row+2, blastWeights[2], e.At)
		}
	}
}
