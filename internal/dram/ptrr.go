package dram

// ptrrTable is the flat per-REF activation counter behind the platform
// pTRR mitigation: an open-addressing hash table keyed by the packed
// (bank,row) key, with an insertion-order slot log so the per-REF sweep
// and clear touch only the occupied slots. It replaces a Go map on the
// per-activation path — the steady-state add() is one probe with no
// hashing allocations, and clearing is O(rows seen this interval), not
// O(table).
type ptrrTable struct {
	keys   []uint64 // key | ptrrTag; 0 = empty slot
	counts []int32
	slots  []int32 // occupied slot indices, insertion order
}

const (
	ptrrInitSize = 1024
	ptrrTag      = uint64(1) << 63 // distinguishes key 0 from an empty slot
)

// ptrrEntry is one (key, count) pair returned by hot.
type ptrrEntry struct {
	key   uint64
	count int32
}

func (t *ptrrTable) init() {
	t.keys = make([]uint64, ptrrInitSize)
	t.counts = make([]int32, ptrrInitSize)
	t.slots = t.slots[:0]
}

// add counts one activation of key.
func (t *ptrrTable) add(key uint64) {
	tagged := key | ptrrTag
	mask := uint64(len(t.keys) - 1)
	i := (key ^ key>>48) & mask
	for {
		switch t.keys[i] {
		case tagged:
			t.counts[i]++
			return
		case 0:
			if len(t.slots) > len(t.keys)/2 {
				t.grow()
				t.add(key)
				return
			}
			t.keys[i] = tagged
			t.counts[i] = 1
			t.slots = append(t.slots, int32(i))
			return
		}
		i = (i + 1) & mask
	}
}

// grow doubles the table, preserving insertion order.
func (t *ptrrTable) grow() {
	oldKeys, oldCounts, oldSlots := t.keys, t.counts, t.slots
	t.keys = make([]uint64, 2*len(oldKeys))
	t.counts = make([]int32, 2*len(oldCounts))
	t.slots = make([]int32, 0, 2*cap(oldSlots))
	mask := uint64(len(t.keys) - 1)
	for _, s := range oldSlots {
		tagged := oldKeys[s]
		key := tagged &^ ptrrTag
		i := (key ^ key>>48) & mask
		for t.keys[i] != 0 {
			i = (i + 1) & mask
		}
		t.keys[i] = tagged
		t.counts[i] = oldCounts[s]
		t.slots = append(t.slots, int32(i))
	}
}

// hot returns the entries with count >= floor, in insertion order.
func (t *ptrrTable) hot(floor int32) []ptrrEntry {
	var out []ptrrEntry
	for _, s := range t.slots {
		if t.counts[s] >= floor {
			out = append(out, ptrrEntry{key: t.keys[s] &^ ptrrTag, count: t.counts[s]})
		}
	}
	return out
}

// clear empties the table, touching only occupied slots.
func (t *ptrrTable) clear() {
	for _, s := range t.slots {
		t.keys[s] = 0
		t.counts[s] = 0
	}
	t.slots = t.slots[:0]
}
