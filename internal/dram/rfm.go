package dram

// DDR5 refresh management (RFM), the §6 "Towards Future Research on
// DDR5" mechanism. JESD79-5 requires the memory controller to track a
// rolling accumulated ACT (RAA) counter per bank and to issue an RFM
// command once it reaches the RAAIMT threshold. Each RFM command hands
// the device a guaranteed mitigation opportunity.
//
// Because the opportunity recurs every RAAIMT activations — dozens, not
// the ~160 ACTs a DDR4 tREFI admits — and the device-side tracker is
// deep enough to hold every row in a hammering pattern, decoy tuples can
// no longer shield the true aggressors: every heavily activated row's
// neighborhood is refreshed long before any cell approaches its
// threshold. This is why neither the paper nor Posthammer found any
// effective non-uniform pattern on DDR5, and this model reproduces that
// outcome for every strategy in this repository.

// rfmState is the per-bank refresh-management bookkeeping.
type rfmState struct {
	raa     int // rolling accumulated ACT counter since last RFM
	sampler trrSampler
}

// initRFM prepares per-bank RFM state for a DDR5 device.
func (d *Device) initRFM() {
	if !d.DIMM.DDR5 {
		return
	}
	d.rfm = make([]rfmState, d.banks)
	for i := range d.rfm {
		d.rfm[i].sampler = newTRRSampler(d.DIMM.RFMSamplerSize)
	}
}

// rfmObserve accounts one activation against the bank's RAA counter and
// fires the mitigation sweep when the RAAIMT threshold is reached.
func (d *Device) rfmObserve(bank int, row uint64) {
	st := &d.rfm[bank]
	st.sampler.observe(row)
	st.raa++
	if st.raa < d.DIMM.RAAIMT {
		return
	}
	// RFM command: the device refreshes the neighborhoods of its
	// top-tracked aggressors and REMOVES them from the queue, while
	// every other tracked row keeps its accumulated priority. This
	// fair-service policy is what distinguishes RFM-era mitigations
	// from the DDR4 samplers that decoy patterns game: a true
	// aggressor's priority only ever grows until it is serviced.
	for _, r := range st.sampler.popTop(d.DIMM.RFMRefreshPerSweep) {
		d.refreshNeighborhood(bank, r)
	}
	st.raa = 0
	d.rfmEvents++
}

// RFMEvents reports how many RFM mitigation sweeps the device has
// performed (0 for DDR4 modules).
func (d *Device) RFMEvents() uint64 { return d.rfmEvents }

// resetRFM clears RFM state on Device.Reset.
func (d *Device) resetRFM() {
	for i := range d.rfm {
		d.rfm[i].raa = 0
		d.rfm[i].sampler.clear()
	}
	d.rfmEvents = 0
}
