package dram

import (
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/obs"
)

// TestCountersExact drives the device through a scripted command
// sequence and requires the counter snapshot to match it exactly — the
// counters are bookkeeping the hot path already does, so any drift is
// a real accounting bug, not sampling noise.
func TestCountersExact(t *testing.T) {
	dev := NewDevice(arch.DIMMS1(), 1)
	const acts, refs = 137, 9
	now := 0.0
	for i := 0; i < acts; i++ {
		dev.Activate(i%4, uint64(100+i%3), now)
		now += 50
	}
	for i := 0; i < refs; i++ {
		dev.Refresh(now)
		now += 100
	}
	c := dev.Counters()
	if c.ACTs != acts {
		t.Errorf("Counters().ACTs = %d, want %d", c.ACTs, acts)
	}
	if c.REFs != refs {
		t.Errorf("Counters().REFs = %d, want %d", c.REFs, refs)
	}
	if c.Flips != uint64(len(dev.Flips())) {
		t.Errorf("Counters().Flips = %d, device has %d", c.Flips, len(dev.Flips()))
	}
}

// TestTraceEventsMatchCounters attaches a large ring, hammers until
// flips appear, and checks that the per-kind event totals agree with
// the counter snapshot: one act event per ACT, one flip event per
// recorded flip, and at least one blast event (the weak-cell
// materialization that precedes any flip).
func TestTraceEventsMatchCounters(t *testing.T) {
	dev := NewDevice(vulnerableDIMM(), 7)
	tr := obs.NewTrace(1 << 16)
	dev.SetTrace(tr)
	for i := 0; i < 3000; i++ {
		dev.Activate(0, 999, float64(i))
		dev.Activate(0, 1001, float64(i))
	}
	if len(dev.Flips()) == 0 {
		t.Fatal("no flips despite disturbance far above threshold")
	}
	kinds := map[string]int{}
	var lastSeq uint64
	for i, e := range tr.Events() {
		kinds[e.Kind]++
		if i > 0 && e.Seq <= lastSeq {
			t.Fatalf("event %d out of order: seq %d after %d", i, e.Seq, lastSeq)
		}
		lastSeq = e.Seq
	}
	c := dev.Counters()
	if kinds["act"] != int(c.ACTs) {
		t.Errorf("act events = %d, Counters().ACTs = %d", kinds["act"], c.ACTs)
	}
	if kinds["flip"] != int(c.Flips) {
		t.Errorf("flip events = %d, Counters().Flips = %d", kinds["flip"], c.Flips)
	}
	if kinds["blast"] == 0 {
		t.Error("no blast events despite materialized weak cells")
	}
	if tr.Dropped() != 0 {
		t.Errorf("ring dropped %d events despite generous capacity", tr.Dropped())
	}
}

// TestTraceDoesNotPerturbSimulation runs the same hammering sequence
// with and without an attached trace and requires identical flips —
// the obs contract says observation never touches an RNG stream.
func TestTraceDoesNotPerturbSimulation(t *testing.T) {
	run := func(traced bool) []Flip {
		dev := NewDevice(vulnerableDIMM(), 7)
		if traced {
			dev.SetTrace(obs.NewTrace(64)) // tiny ring: exercises overwrite too
		}
		for i := 0; i < 3000; i++ {
			dev.Activate(0, 999, float64(i))
			dev.Activate(0, 1001, float64(i))
		}
		return dev.Flips()
	}
	plain, traced := run(false), run(true)
	if len(plain) != len(traced) {
		t.Fatalf("flip count differs: plain %d, traced %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("flip %d differs: plain %+v, traced %+v", i, plain[i], traced[i])
		}
	}
}
