package dram

import "sort"

// Randomized row-swap, one of the academic mitigations discussed in §6
// (Saileshwar et al., Woo et al., Wi et al.): the device periodically
// exchanges the contents of row pairs behind an internal remap table, so
// that an attacker's activations stop concentrating disturbance on the
// same physical victims. Following the RRS-style proposals, the row
// selected for relocation is the most-activated one of the current
// interval, and its partner is drawn (pseudo-)randomly; the remap layer
// sits between the address and the array, so TRR and the disturbance
// physics both see post-swap locations.
//
// The paper expects this class of defenses to break TRR-bypassing
// patterns by dispersing activations; enabling it on any device in this
// repository does exactly that (see the Mitigations experiment).

// rowSwapState holds the per-device remap table and swap schedule.
type rowSwapState struct {
	enabled bool
	period  uint64 // ACTs between swap opportunities, per device
	counter uint64
	// remap holds the sparse per-bank logical->physical row remapping;
	// absent entries map to themselves.
	remap []map[uint64]uint64
	// counts tracks per-bank activation counts within the current
	// swap interval; the hottest row is the one relocated.
	counts []map[uint64]uint64
}

// EnableRowSwap turns on row-swapping with the given swap period
// (activations between swap opportunities). A period of a few thousand
// ACTs corresponds to the papers' lightweight configurations.
func (d *Device) EnableRowSwap(period uint64) {
	if period == 0 {
		period = 2048
	}
	d.rowSwap.enabled = true
	d.rowSwap.period = period
	d.rowSwap.remap = make([]map[uint64]uint64, d.banks)
	d.rowSwap.counts = make([]map[uint64]uint64, d.banks)
	for i := range d.rowSwap.remap {
		d.rowSwap.remap[i] = make(map[uint64]uint64)
		d.rowSwap.counts[i] = make(map[uint64]uint64)
	}
}

// swapTarget resolves a logical row through the remap table.
func (d *Device) swapTarget(bank int, row uint64) uint64 {
	if !d.rowSwap.enabled {
		return row
	}
	if phys, ok := d.rowSwap.remap[bank][row]; ok {
		return phys
	}
	return row
}

// rowSwapObserve records an activation; when the swap period elapses,
// the interval's hottest row is exchanged with a pseudo-random partner,
// so its accumulated pressure stops landing on the same neighbors.
func (d *Device) rowSwapObserve(bank int, row uint64) {
	rs := &d.rowSwap
	rs.counts[bank][row]++
	rs.counter++
	if rs.counter%rs.period != 0 {
		return
	}
	// Relocate every row whose in-interval count crossed the swap
	// threshold — the RRS-style trigger. A pure hottest-row policy
	// would chase the decoys and never move the true aggressors.
	threshold := rs.period / 32
	if threshold < 4 {
		threshold = 4
	}
	// Collect the qualifying rows and relocate them in ascending row
	// order: map iteration order is random, and with it both the top-8
	// cut and the remap write order (which matters when one row is
	// another's partner) would vary run to run — breaking the seed-
	// determinism contract the simcheck harness audits.
	var hot []uint64
	for r, n := range rs.counts[bank] {
		if n >= threshold {
			hot = append(hot, r)
		}
	}
	sort.Slice(hot, func(i, j int) bool { return hot[i] < hot[j] })
	if len(hot) > 8 {
		hot = hot[:8]
	}
	for _, r := range hot {
		h := newHashRand(d.Seed^0x505A, uint64(bank)<<32|r, rs.counter)
		partner := h.next() % d.rows
		va, pa := d.swapTarget(bank, r), d.swapTarget(bank, partner)
		rs.remap[bank][r] = pa
		rs.remap[bank][partner] = va
		d.rowSwapEvents++
	}
	clear(rs.counts[bank])
}

// RowSwapEvents reports how many swaps have occurred.
func (d *Device) RowSwapEvents() uint64 { return d.rowSwapEvents }

// resetRowSwap clears swap counters on Device.Reset (the remap table
// persists — it is device-internal and survives attacker re-runs).
func (d *Device) resetRowSwap() {
	d.rowSwap.counter = 0
	d.rowSwapEvents = 0
	for i := range d.rowSwap.counts {
		clear(d.rowSwap.counts[i])
	}
}
