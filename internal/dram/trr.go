package dram

// trrSampler models the in-DRAM TRR aggressor sampler: a small table of
// candidate aggressor rows with activation counters, maintained between
// REF commands and cleared at each REF.
//
// The policy follows what TRRespass/Blacksmith reverse-engineered for
// vendor samplers: the table tracks the first C distinct rows activated
// after a REF (a hit increments the row's counter; when the table is
// full, new rows are simply not tracked), and at the next REF the
// neighborhoods of the top-counted entries are proactively refreshed.
//
// This deterministic, capacity-limited behaviour is exactly what
// non-uniform hammering exploits: decoy rows activated early and often
// in every interval own the table and the top-count slots, so the true
// aggressors — tracked but with strictly lower counts, or not tracked at
// all — are never selected for a targeted refresh. Conversely, when
// speculative disorder randomly drops a large fraction of accesses, the
// per-interval counts become noisy, the decoys' dominance breaks in some
// intervals, and the victims get refreshed often enough that no cell
// ever reaches its flip threshold — the mechanism by which disorder
// kills hammering on Alder/Raptor Lake.
type trrSampler struct {
	capacity int
	keys     []uint64
	counts   []int
	// idx and topBuf are scratch buffers reused by top(); the table is
	// consulted at every REF, so top() must not allocate.
	idx    []int
	topBuf []uint64
}

func newTRRSampler(capacity int) trrSampler {
	if capacity < 1 {
		capacity = 1
	}
	return trrSampler{
		capacity: capacity,
		keys:     make([]uint64, 0, capacity),
		counts:   make([]int, 0, capacity),
		idx:      make([]int, 0, capacity),
		topBuf:   make([]uint64, 0, capacity),
	}
}

// observe records one activation of the row identified by key.
func (s *trrSampler) observe(key uint64) {
	for i, k := range s.keys {
		if k == key {
			s.counts[i]++
			return
		}
	}
	if len(s.keys) < s.capacity {
		s.keys = append(s.keys, key)
		s.counts = append(s.counts, 1)
	}
	// Table full: the activation goes unobserved.
}

// top returns up to n tracked keys with the highest counts. Ties go to
// the earlier-inserted (earlier-activated) row. The returned slice is a
// scratch buffer owned by the sampler, valid until the next top call.
func (s *trrSampler) top(n int) []uint64 {
	if n <= 0 || len(s.keys) == 0 {
		return nil
	}
	if n > len(s.keys) {
		n = len(s.keys)
	}
	// Selection sort over an index scratch: insertion position doubles
	// as the tie-break order, exactly as before.
	idx := s.idx[:0]
	for i := range s.keys {
		idx = append(idx, i)
	}
	s.idx = idx
	out := s.topBuf[:0]
	for k := 0; k < n; k++ {
		best := k
		for i := k + 1; i < len(idx); i++ {
			if s.counts[idx[i]] > s.counts[idx[best]] ||
				(s.counts[idx[i]] == s.counts[idx[best]] && idx[i] < idx[best]) {
				best = i
			}
		}
		idx[k], idx[best] = idx[best], idx[k]
		out = append(out, s.keys[idx[k]])
	}
	s.topBuf = out
	return out
}

// popTop returns the top-n keys like top and removes them from the
// table, leaving the remaining entries' counts intact. The DDR5 RFM
// model uses this for fair service: once an aggressor's neighborhood is
// refreshed it leaves the queue, and everything else keeps accumulating
// priority — so no activation-count ordering can starve a row of
// mitigation forever.
func (s *trrSampler) popTop(n int) []uint64 {
	out := s.top(n)
	for _, key := range out {
		for i, k := range s.keys {
			if k == key {
				last := len(s.keys) - 1
				s.keys[i], s.keys[last] = s.keys[last], s.keys[i]
				s.counts[i], s.counts[last] = s.counts[last], s.counts[i]
				s.keys = s.keys[:last]
				s.counts = s.counts[:last]
				break
			}
		}
	}
	return out
}

// clear resets the sampler for the next refresh interval.
func (s *trrSampler) clear() {
	s.keys = s.keys[:0]
	s.counts = s.counts[:0]
}

// size reports the number of tracked rows (tests only).
func (s *trrSampler) size() int { return len(s.keys) }
