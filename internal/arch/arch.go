// Package arch defines the platform profiles the simulator runs on: the
// four Intel desktop architectures of the paper's Table 1 and the seven
// DDR4 UDIMMs of Table 2.
//
// An architecture profile carries the microarchitectural parameters that
// drive every effect in §4 of the paper: the speculative reorder depth
// for prefetches and loads (which grows sharply Comet → Raptor and is the
// reason baseline attacks die on Alder/Raptor Lake), the share of that
// disorder attributable to branch prediction (removable by control-flow
// obfuscation), ROB drain per NOP (the pseudo-barrier mechanism), issue
// costs, and memory-parallelism limits (LFBs vs the load queue — the
// root of prefetching's throughput advantage, §4.5).
//
// Values are behavioral calibrations, not datasheet numbers: they are
// chosen so the simulated platform reproduces the paper's measured
// shapes (Figs. 6, 8, 9, 10; Tables 3, 5, 6).
package arch

import "fmt"

// Arch is a CPU architecture profile (one row of Table 1).
type Arch struct {
	Name       string // "Comet Lake", ...
	CPU        string // "i7-10700K", ...
	Generation int    // 10, 11, 12, 14
	MemFreqMHz int    // max supported DDR4 transfer rate

	// MappingFamily selects the DRAM address mapping scheme:
	// "comet-rocket" or "alder-raptor".
	MappingFamily string

	// --- Speculative execution model ---

	// WindowPF is the speculative reorder window for prefetch
	// instructions, in micro-ops: a prefetch may effectively issue up
	// to this many older µops early, racing flushes to the same line
	// (Fig. 7). It grows dramatically on Alder/Raptor Lake, tracking
	// their ROB/scheduler growth. Because NOPs occupy ROB slots, every
	// NOP between two hammer instructions widens their µop distance
	// and thus shrinks the window's reach — the pseudo-barrier
	// mechanism of §4.4 falls out of this accounting.
	WindowPF float64

	// WindowLD is the equivalent window for ordinary loads. Loads are
	// also reordered, but far less aggressively than prefetches
	// (§4.2: prefetches retire at dispatch, giving the scheduler much
	// more freedom).
	WindowLD float64

	// BranchSpecShare is the fraction of the reorder window contributed
	// by branch prediction across loop iterations. Control-flow
	// obfuscation (§4.4) removes this share.
	BranchSpecShare float64

	// ROBSize and LoadQueueSize bound in-flight instructions; LFBCount
	// bounds outstanding L1 fill requests (prefetches included).
	ROBSize       int
	LoadQueueSize int
	LFBCount      int

	// LoadMLP is the effective number of hammer loads the core keeps
	// in flight at once. It is far below LFBCount because a load holds
	// its load-queue entry until data returns (§4.5), while the
	// interleaved flushes keep the LQ congested.
	LoadMLP int

	// LoadReplayShare is the fraction of loads subject to load-queue
	// replay speculation (memory disambiguation, 4K-aliasing replays):
	// such a load reissues out of order regardless of ROB pressure, so
	// no NOP count can restore its ordering. It is the reason
	// load-based hammering cannot be revived by counter-speculation on
	// Alder/Raptor Lake (§4.4). Prefetches bypass the load queue and
	// are unaffected.
	LoadReplayShare float64

	// LoadSerializeNS is the extra round-trip serialization per load
	// miss (retirement, flush ordering in the ROB) on top of the DRAM
	// latency — the §4.5 reason a single thread of loads cannot
	// saturate even one bank's activation budget.
	LoadSerializeNS float64

	// --- Issue/latency costs, nanoseconds ---

	IssueCostPF    float64 // front-end cost of one prefetch
	IssueCostLD    float64 // front-end cost of one load (excl. miss wait)
	IssueCostFlush float64 // front-end cost of one clflushopt
	FlushLatencyNS float64 // time until a flush's eviction takes effect
	NopCostNS      float64 // issue cost of one NOP
	LFenceNS       float64 // latency of LFENCE
	MFenceNS       float64 // latency of MFENCE
	CPUIDNS        float64 // latency of CPUID serialization
	ObfuscationNS  float64 // per-iteration cost of control-flow obfuscation
}

// String implements fmt.Stringer.
func (a *Arch) String() string {
	return fmt.Sprintf("%s (%s, DDR4-%d)", a.Name, a.CPU, a.MemFreqMHz)
}

// MemCycleNS returns the DRAM clock period in nanoseconds (the transfer
// rate is 2x the clock).
func (a *Arch) MemCycleNS() float64 {
	return 2000.0 / float64(a.MemFreqMHz)
}

// CometLake returns the 10th-gen profile (i7-10700K). The oldest
// platform: shallow speculation, so even unordered hammering mostly
// retains its access order and the baseline attack still works well.
func CometLake() *Arch {
	return &Arch{
		Name:          "Comet Lake",
		CPU:           "i7-10700K",
		Generation:    10,
		MemFreqMHz:    2933,
		MappingFamily: "comet-rocket",

		WindowPF:        64,
		WindowLD:        14,
		BranchSpecShare: 0.50,
		ROBSize:         224,
		LoadQueueSize:   72,
		LFBCount:        10,
		LoadMLP:         1,
		LoadReplayShare: 0,
		LoadSerializeNS: 30,

		IssueCostPF:    1.3,
		IssueCostLD:    2.2,
		IssueCostFlush: 1.6,
		FlushLatencyNS: 28,
		NopCostNS:      0.26,
		LFenceNS:       50,
		MFenceNS:       24,
		CPUIDNS:        205,
		ObfuscationNS:  3.2,
	}
}

// RocketLake returns the 11th-gen profile (i7-11700): a wider core with
// deeper speculation than Comet Lake.
func RocketLake() *Arch {
	return &Arch{
		Name:          "Rocket Lake",
		CPU:           "i7-11700",
		Generation:    11,
		MemFreqMHz:    2933,
		MappingFamily: "comet-rocket",

		WindowPF:        88,
		WindowLD:        16,
		BranchSpecShare: 0.52,
		ROBSize:         352,
		LoadQueueSize:   128,
		LFBCount:        12,
		LoadMLP:         1,
		LoadReplayShare: 0,
		LoadSerializeNS: 30,

		IssueCostPF:    1.2,
		IssueCostLD:    2.1,
		IssueCostFlush: 1.5,
		FlushLatencyNS: 27,
		NopCostNS:      0.25,
		LFenceNS:       49,
		MFenceNS:       25,
		CPUIDNS:        208,
		ObfuscationNS:  3.0,
	}
}

// AlderLake returns the 12th-gen profile (i9-12900). Golden Cove P-cores
// speculate far more aggressively; unmitigated prefetch disorder is
// severe enough to suppress almost all bit flips.
func AlderLake() *Arch {
	return &Arch{
		Name:          "Alder Lake",
		CPU:           "i9-12900",
		Generation:    12,
		MemFreqMHz:    3200,
		MappingFamily: "alder-raptor",

		WindowPF:        384,
		WindowLD:        120,
		BranchSpecShare: 0.58,
		ROBSize:         512,
		LoadQueueSize:   192,
		LFBCount:        16,
		LoadMLP:         1,
		LoadReplayShare: 0.30,
		LoadSerializeNS: 28,

		IssueCostPF:    1.1,
		IssueCostLD:    2.0,
		IssueCostFlush: 1.4,
		FlushLatencyNS: 26,
		NopCostNS:      0.22,
		LFenceNS:       48,
		MFenceNS:       26,
		CPUIDNS:        210,
		ObfuscationNS:  2.8,
	}
}

// RaptorLake returns the 14th-gen profile (i7-14700K): the deepest
// speculation of the four; the baseline produces zero flips here and
// only counter-speculation prefetch hammering succeeds.
func RaptorLake() *Arch {
	return &Arch{
		Name:          "Raptor Lake",
		CPU:           "i7-14700K",
		Generation:    14,
		MemFreqMHz:    3200,
		MappingFamily: "alder-raptor",

		WindowPF:        480,
		WindowLD:        160,
		BranchSpecShare: 0.60,
		ROBSize:         512,
		LoadQueueSize:   192,
		LFBCount:        16,
		LoadMLP:         1,
		LoadReplayShare: 0.38,
		LoadSerializeNS: 27,

		IssueCostPF:    1.05,
		IssueCostLD:    1.9,
		IssueCostFlush: 1.35,
		FlushLatencyNS: 25,
		NopCostNS:      0.21,
		LFenceNS:       47,
		MFenceNS:       26,
		CPUIDNS:        212,
		ObfuscationNS:  2.7,
	}
}

// All returns the four tested architectures in Table 1 order.
func All() []*Arch {
	return []*Arch{CometLake(), RocketLake(), AlderLake(), RaptorLake()}
}

// ByName returns the architecture profile with the given name
// (case-sensitive, e.g. "Raptor Lake").
func ByName(name string) (*Arch, bool) {
	for _, a := range All() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}
