package arch

import (
	"strings"
	"testing"
)

func TestAllArchsOrderedByGeneration(t *testing.T) {
	archs := All()
	if len(archs) != 4 {
		t.Fatalf("got %d architectures, want 4", len(archs))
	}
	wantGens := []int{10, 11, 12, 14} // 13th-gen skipped, as in the paper
	for i, a := range archs {
		if a.Generation != wantGens[i] {
			t.Errorf("arch %d generation = %d, want %d", i, a.Generation, wantGens[i])
		}
	}
}

func TestTable1Inventory(t *testing.T) {
	cases := []struct {
		name string
		cpu  string
		freq int
	}{
		{"Comet Lake", "i7-10700K", 2933},
		{"Rocket Lake", "i7-11700", 2933},
		{"Alder Lake", "i9-12900", 3200},
		{"Raptor Lake", "i7-14700K", 3200},
	}
	for _, c := range cases {
		a, ok := ByName(c.name)
		if !ok {
			t.Fatalf("ByName(%q) not found", c.name)
		}
		if a.CPU != c.cpu || a.MemFreqMHz != c.freq {
			t.Errorf("%s: got (%s, %d), want (%s, %d)", c.name, a.CPU, a.MemFreqMHz, c.cpu, c.freq)
		}
	}
	if _, ok := ByName("Zen 4"); ok {
		t.Error("unknown architecture resolved")
	}
}

// The speculative reorder windows must grow strictly across generations
// — the paper's core observation about why attacks die on newer parts.
func TestSpeculationGrowsAcrossGenerations(t *testing.T) {
	archs := All()
	for i := 1; i < len(archs); i++ {
		if archs[i].WindowPF <= archs[i-1].WindowPF {
			t.Errorf("WindowPF not increasing: %s (%v) <= %s (%v)",
				archs[i].Name, archs[i].WindowPF, archs[i-1].Name, archs[i-1].WindowPF)
		}
		if archs[i].WindowLD < archs[i-1].WindowLD {
			t.Errorf("WindowLD decreasing: %s < %s", archs[i].Name, archs[i-1].Name)
		}
	}
}

// Prefetches must be reordered more aggressively than loads everywhere
// (§4.2).
func TestPrefetchWindowExceedsLoadWindow(t *testing.T) {
	for _, a := range All() {
		if a.WindowPF <= a.WindowLD {
			t.Errorf("%s: WindowPF %v <= WindowLD %v", a.Name, a.WindowPF, a.WindowLD)
		}
	}
}

// Load-queue replay (the reason counter-speculation cannot revive loads)
// exists only on the hybrid-core generations.
func TestLoadReplayOnlyOnNewArchs(t *testing.T) {
	for _, a := range All() {
		hasReplay := a.LoadReplayShare > 0
		isNew := a.Generation >= 12
		if hasReplay != isNew {
			t.Errorf("%s: LoadReplayShare = %v (generation %d)", a.Name, a.LoadReplayShare, a.Generation)
		}
	}
}

func TestArchProfileSanity(t *testing.T) {
	for _, a := range All() {
		if a.LFBCount <= 0 || a.LoadMLP <= 0 || a.ROBSize <= 0 {
			t.Errorf("%s: non-positive structure sizes", a.Name)
		}
		if a.IssueCostPF <= 0 || a.IssueCostLD <= a.IssueCostPF {
			t.Errorf("%s: load issue cost should exceed prefetch issue cost", a.Name)
		}
		if a.CPUIDNS <= a.MFenceNS || a.MFenceNS <= 0 {
			t.Errorf("%s: serialization cost ordering broken", a.Name)
		}
		if a.BranchSpecShare <= 0 || a.BranchSpecShare >= 1 {
			t.Errorf("%s: BranchSpecShare %v out of (0,1)", a.Name, a.BranchSpecShare)
		}
		if a.MappingFamily != "comet-rocket" && a.MappingFamily != "alder-raptor" {
			t.Errorf("%s: unknown mapping family %q", a.Name, a.MappingFamily)
		}
	}
}

func TestMemCycle(t *testing.T) {
	a := RaptorLake()
	if got := a.MemCycleNS(); got != 0.625 {
		t.Errorf("MemCycleNS = %v, want 0.625 for DDR4-3200", got)
	}
}

func TestArchString(t *testing.T) {
	if s := CometLake().String(); !strings.Contains(s, "i7-10700K") {
		t.Errorf("String() = %q", s)
	}
}

func TestTable2Inventory(t *testing.T) {
	dimms := AllDIMMs()
	if len(dimms) != 7 {
		t.Fatalf("got %d DIMMs, want 7", len(dimms))
	}
	wantIDs := []string{"S1", "S2", "S3", "S4", "S5", "H1", "M1"}
	for i, d := range dimms {
		if d.ID != wantIDs[i] {
			t.Errorf("DIMM %d id = %s, want %s", i, d.ID, wantIDs[i])
		}
	}
}

func TestDIMMGeometry(t *testing.T) {
	cases := []struct {
		id    string
		size  int
		ranks int
		rows  uint64
	}{
		{"S1", 16, 2, 1 << 16},
		{"S2", 8, 1, 1 << 16},
		{"M1", 32, 2, 1 << 17},
	}
	for _, c := range cases {
		d, ok := DIMMByID(c.id)
		if !ok {
			t.Fatalf("DIMM %s not found", c.id)
		}
		if d.SizeGiB != c.size || d.Ranks != c.ranks || d.RowsPerBank != c.rows {
			t.Errorf("%s geometry: %+v", c.id, d)
		}
		if d.TotalBanks() != d.Ranks*d.BanksPerRank {
			t.Errorf("%s TotalBanks inconsistent", c.id)
		}
	}
	if _, ok := DIMMByID("X9"); ok {
		t.Error("unknown DIMM resolved")
	}
}

// M1 never flipped in the paper under any strategy.
func TestM1NotFlippable(t *testing.T) {
	d := DIMMM1()
	if d.Flippable {
		t.Error("M1 must not be flippable")
	}
	if d.WeakCellsPerRowLambda != 0 {
		t.Error("M1 must have no weak cells")
	}
}

// The DIMM vulnerability ordering of Table 6: S4 >= S3 > S2 > S1 >> S5,
// H1 (expressed through thresholds and weak-cell density).
func TestDIMMVulnerabilityOrdering(t *testing.T) {
	get := func(id string) *DIMM {
		d, _ := DIMMByID(id)
		return d
	}
	order := []string{"S4", "S3", "S2", "S1", "S5", "H1"}
	for i := 1; i < len(order); i++ {
		hi, lo := get(order[i-1]), get(order[i])
		if hi.ThresholdMu > lo.ThresholdMu {
			t.Errorf("%s threshold mu %v > %s %v (should be more vulnerable)",
				order[i-1], hi.ThresholdMu, order[i], lo.ThresholdMu)
		}
		if hi.WeakCellsPerRowLambda < lo.WeakCellsPerRowLambda {
			t.Errorf("%s lambda %v < %s %v", order[i-1], hi.WeakCellsPerRowLambda,
				order[i], lo.WeakCellsPerRowLambda)
		}
	}
}

func TestDIMMString(t *testing.T) {
	if s := DIMMS1().String(); !strings.Contains(s, "W35-2023") {
		t.Errorf("String() = %q", s)
	}
}

func TestDIMMSamplerConfigSane(t *testing.T) {
	for _, d := range AllDIMMs() {
		if d.TRRSamplerSize < 1 || d.TRRRefreshPerREF < 1 {
			t.Errorf("%s: TRR config %d/%d", d.ID, d.TRRSamplerSize, d.TRRRefreshPerREF)
		}
		if d.TRRRefreshPerREF > d.TRRSamplerSize {
			t.Errorf("%s: refreshes more rows than it samples", d.ID)
		}
	}
}
