package arch

import "fmt"

// DIMM describes one DDR4 UDIMM under test (one row of Table 2), plus
// the behavioral vulnerability parameters the DRAM model needs.
type DIMM struct {
	ID             string // "S1" .. "S5", "H1", "M1"
	Vendor         string // anonymized vendor family, per the paper
	ProductionDate string // "W35-2023" etc.
	FreqMHz        int
	SizeGiB        int
	Ranks          int
	BanksPerRank   int
	RowsPerBank    uint64

	// --- RowHammer vulnerability model ---

	// Flippable marks whether the DIMM exhibits activation-induced bit
	// flips at all under any strategy tested. M1 never flipped in the
	// paper (its 2024-era cells are simply too strong), and is modeled
	// as not flippable.
	Flippable bool

	// WeakCellsPerRowLambda is the Poisson mean of flippable cells per
	// row. Together with the threshold distribution it sets the
	// DIMM's overall flip yield (Table 6 column magnitudes).
	WeakCellsPerRowLambda float64

	// ThresholdMu and ThresholdSigma parameterize the log-normal
	// distribution of per-cell disturbance thresholds, in aggressor
	// activations within one refresh window.
	ThresholdMu    float64
	ThresholdSigma float64

	// --- TRR model ---

	// TRRSamplerSize is the number of candidate aggressor rows the
	// in-DRAM sampler tracks between refresh commands.
	TRRSamplerSize int

	// TRRRefreshPerREF is how many sampled aggressors have their
	// neighborhood proactively refreshed at each REF.
	TRRRefreshPerREF int

	// --- DDR5 refresh management (RFM), §6 ---

	// DDR5 marks a DDR5 module: doubled refresh rate, on-die ECC, and
	// the RFM mitigation below. The paper observed no effective
	// pattern on any DDR5 setup.
	DDR5 bool

	// RAAIMT is the rolling accumulated ACT initial management
	// threshold: after this many activations a bank must receive an
	// RFM command, giving the device a mitigation opportunity.
	RAAIMT int

	// RFMSamplerSize and RFMRefreshPerSweep parameterize the per-bank
	// aggressor tracking the device performs between RFM commands —
	// far deeper than DDR4 TRR, which is why decoy patterns stop
	// working.
	RFMSamplerSize     int
	RFMRefreshPerSweep int
}

// TotalBanks returns the number of geographic banks (ranks x banks).
func (d *DIMM) TotalBanks() int { return d.Ranks * d.BanksPerRank }

// String implements fmt.Stringer.
func (d *DIMM) String() string {
	gen := "DDR4"
	if d.DDR5 {
		gen = "DDR5"
	}
	return fmt.Sprintf("%s (%s, %s-%d, %dGiB, RK=%d BK=%d R=%d)",
		d.ID, d.ProductionDate, gen, d.FreqMHz, d.SizeGiB, d.Ranks, d.BanksPerRank, d.RowsPerBank)
}

// The seven DIMMs of Table 2. Vulnerability calibrations follow the
// ordering observed in Table 6: S4 >= S3 > S1 ~ S2 >> S5 > H1 >> M1 (0).

// DIMMS1 returns vendor-S DIMM S1 (W35-2023, 16 GiB dual-rank).
func DIMMS1() *DIMM {
	return &DIMM{
		ID: "S1", Vendor: "S", ProductionDate: "W35-2023",
		FreqMHz: 3200, SizeGiB: 16, Ranks: 2, BanksPerRank: 16, RowsPerBank: 1 << 16,
		Flippable:             true,
		WeakCellsPerRowLambda: 0.9,
		ThresholdMu:           11.22, ThresholdSigma: 0.22,
		TRRSamplerSize: 6, TRRRefreshPerREF: 2,
	}
}

// DIMMS2 returns vendor-S DIMM S2 (W33-2021, 8 GiB single-rank).
func DIMMS2() *DIMM {
	return &DIMM{
		ID: "S2", Vendor: "S", ProductionDate: "W33-2021",
		FreqMHz: 3200, SizeGiB: 8, Ranks: 1, BanksPerRank: 16, RowsPerBank: 1 << 16,
		Flippable:             true,
		WeakCellsPerRowLambda: 1.3,
		ThresholdMu:           11.16, ThresholdSigma: 0.22,
		TRRSamplerSize: 6, TRRRefreshPerREF: 2,
	}
}

// DIMMS3 returns vendor-S DIMM S3 (W30-2020, 16 GiB dual-rank).
func DIMMS3() *DIMM {
	return &DIMM{
		ID: "S3", Vendor: "S", ProductionDate: "W30-2020",
		FreqMHz: 2933, SizeGiB: 16, Ranks: 2, BanksPerRank: 16, RowsPerBank: 1 << 16,
		Flippable:             true,
		WeakCellsPerRowLambda: 2.1,
		ThresholdMu:           11.05, ThresholdSigma: 0.25,
		TRRSamplerSize: 6, TRRRefreshPerREF: 2,
	}
}

// DIMMS4 returns vendor-S DIMM S4 (W49-2018, 16 GiB dual-rank), the most
// flip-prone module in the paper.
func DIMMS4() *DIMM {
	return &DIMM{
		ID: "S4", Vendor: "S", ProductionDate: "W49-2018",
		FreqMHz: 2666, SizeGiB: 16, Ranks: 2, BanksPerRank: 16, RowsPerBank: 1 << 16,
		Flippable:             true,
		WeakCellsPerRowLambda: 2.4,
		ThresholdMu:           11.00, ThresholdSigma: 0.26,
		TRRSamplerSize: 6, TRRRefreshPerREF: 2,
	}
}

// DIMMS5 returns vendor-S DIMM S5 (W22-2017, 16 GiB dual-rank), an older
// but much less vulnerable module.
func DIMMS5() *DIMM {
	return &DIMM{
		ID: "S5", Vendor: "S", ProductionDate: "W22-2017",
		FreqMHz: 2400, SizeGiB: 16, Ranks: 2, BanksPerRank: 16, RowsPerBank: 1 << 16,
		Flippable:             true,
		WeakCellsPerRowLambda: 0.15,
		ThresholdMu:           11.42, ThresholdSigma: 0.20,
		TRRSamplerSize: 8, TRRRefreshPerREF: 2,
	}
}

// DIMMH1 returns vendor-H DIMM H1 (W13-2020, 16 GiB dual-rank).
func DIMMH1() *DIMM {
	return &DIMM{
		ID: "H1", Vendor: "H", ProductionDate: "W13-2020",
		FreqMHz: 2666, SizeGiB: 16, Ranks: 2, BanksPerRank: 16, RowsPerBank: 1 << 16,
		Flippable:             true,
		WeakCellsPerRowLambda: 0.10,
		ThresholdMu:           11.45, ThresholdSigma: 0.20,
		TRRSamplerSize: 10, TRRRefreshPerREF: 2,
	}
}

// DIMMM1 returns vendor-M DIMM M1 (W01-2024, 32 GiB dual-rank with 2^17
// rows). No strategy in the paper produced a single flip on it.
func DIMMM1() *DIMM {
	return &DIMM{
		ID: "M1", Vendor: "M", ProductionDate: "W01-2024",
		FreqMHz: 3200, SizeGiB: 32, Ranks: 2, BanksPerRank: 16, RowsPerBank: 1 << 17,
		Flippable:             false,
		WeakCellsPerRowLambda: 0,
		ThresholdMu:           13.0, ThresholdSigma: 0.2,
		TRRSamplerSize: 12, TRRRefreshPerREF: 4,
	}
}

// DIMMD1 returns a DDR5 UDIMM in the spirit of the paper's §6 DDR5
// setups: cells as weak as a mid-vulnerability DDR4 module, but guarded
// by refresh management (RFM). No hammering strategy in this repository
// produces a flip on it — reproducing the paper's (and Posthammer's)
// DDR5 observation.
func DIMMD1() *DIMM {
	return &DIMM{
		ID: "D1", Vendor: "S", ProductionDate: "W20-2024",
		FreqMHz: 4800, SizeGiB: 16, Ranks: 2, BanksPerRank: 32, RowsPerBank: 1 << 16,
		Flippable:             true,
		WeakCellsPerRowLambda: 1.5,
		ThresholdMu:           11.05, ThresholdSigma: 0.25,
		TRRSamplerSize: 8, TRRRefreshPerREF: 2,
		DDR5:   true,
		RAAIMT: 64, RFMSamplerSize: 24, RFMRefreshPerSweep: 4,
	}
}

// AllDIMMs returns the seven modules in Table 2 order. The DDR5 module
// D1 (§6) is deliberately excluded: the paper's evaluation matrix is
// DDR4-only.
func AllDIMMs() []*DIMM {
	return []*DIMM{DIMMS1(), DIMMS2(), DIMMS3(), DIMMS4(), DIMMS5(), DIMMH1(), DIMMM1()}
}

// DIMMByID returns the DIMM profile with the given ID ("S1".."M1",
// plus the DDR5 module "D1").
func DIMMByID(id string) (*DIMM, bool) {
	if id == "D1" {
		return DIMMD1(), true
	}
	for _, d := range AllDIMMs() {
		if d.ID == id {
			return d, true
		}
	}
	return nil, false
}
