package campaign

import (
	"reflect"
	"testing"
)

func TestCellQueueOrderedPop(t *testing.T) {
	var q CellQueue
	q.Push(3, 0, 2, 1)
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	if got := q.Pop(2); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Fatalf("Pop(2) = %v, want [0 1]", got)
	}
	if got := q.Pop(10); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Fatalf("Pop(10) = %v, want [2 3]", got)
	}
	if got := q.Pop(1); got != nil {
		t.Fatalf("Pop on empty = %v, want nil", got)
	}
}

func TestCellQueueReclaimOrdering(t *testing.T) {
	// A reclaim pushes a dead worker's low indices back after higher
	// ones were already queued; the next pop must start at the lowest
	// index, not at the back of the queue.
	var q CellQueue
	q.Push(4, 5, 6, 7)
	q.Push(1, 2) // reclaimed lease
	if got := q.Pop(3); !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Fatalf("Pop(3) = %v, want [1 2 4]", got)
	}
}

func TestCellQueueDedup(t *testing.T) {
	var q CellQueue
	q.Push(2, 2, 1)
	q.Push(1)
	if got := q.Drain(); !reflect.DeepEqual(got, []int{1, 2}) {
		t.Fatalf("Drain = %v, want [1 2]", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len after Drain = %d, want 0", q.Len())
	}
}
