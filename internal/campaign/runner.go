package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"rhohammer/internal/obs"
)

// Runner executes a Spec's cells across a bounded worker pool.
//
// The zero value is ready to use and sizes the pool to GOMAXPROCS.
// Results are bit-identical for every worker count: cell seeds derive
// from stable keys, results land at their cell's index, and Gather runs
// once after all cells complete.
type Runner struct {
	// Workers bounds the number of cells executing concurrently;
	// values <= 0 mean GOMAXPROCS.
	Workers int
	// Retries is how many extra attempts a failing cell gets before its
	// error is recorded. Retried cells rerun with the same derived seed,
	// so a success on any attempt is bit-identical to a first-try
	// success; retries exist for transient faults (e.g. a panicking
	// profile under memory pressure), not for flaky simulations.
	Retries int
	// OnCell, when non-nil, is called once per cell right after the
	// cell finishes (successfully or not), with the cell's index in
	// Spec.Cells and its final stats. It is invoked from worker
	// goroutines — potentially concurrently — and must not block for
	// long: it exists for progress reporting (the serve layer's
	// partial-results view), never for result collection, and cannot
	// perturb results because it observes stats only.
	OnCell func(index int, stat CellStat)
}

// CellStat records how one cell's execution went — the per-cell wall
// time and error information that used to vanish after a run. The
// manifest written by cmd/experiments and the -json envelope both embed
// it; Seed makes any single cell replayable in isolation.
type CellStat struct {
	// Key is the cell's stable key within its Spec.
	Key string `json:"key"`
	// Seed is the derived per-cell seed (Spec.CellSeed(Key)).
	Seed int64 `json:"seed"`
	// Wall is the cell's total execution time across all attempts.
	Wall time.Duration `json:"wall_ns"`
	// Attempts is how many times the cell ran (1 + retries used).
	Attempts int `json:"attempts"`
	// Err is the final attempt's error, "" on success.
	Err string `json:"error,omitempty"`
}

// Outcome is one campaign execution.
type Outcome struct {
	// Name echoes the Spec.
	Name string
	// Workers is the resolved pool size the run used.
	Workers int
	// Results holds the per-cell results in cell order.
	Results []any
	// Result is Gather's assembly of Results (Results itself when the
	// Spec has no Gather).
	Result any
	// Cells holds per-cell execution stats, in cell order. Only the
	// Wall and Attempts fields vary with scheduling; Key/Seed/Err are
	// deterministic.
	Cells []CellStat
	// Wall is the campaign's wall-clock duration.
	Wall time.Duration
	// Busy is the summed per-cell wall time; Busy/(Workers*Wall) is the
	// pool's occupancy.
	Busy time.Duration
}

// Occupancy returns the fraction of the pool's capacity that executed
// cells (1.0 = every worker busy for the whole campaign). With
// campaign-sized cells a low value means the grid is too coarse for
// the pool, the signal to shard cells before scaling workers.
func (o *Outcome) Occupancy() float64 {
	if o.Workers <= 0 || o.Wall <= 0 {
		return 0
	}
	return float64(o.Busy) / (float64(o.Workers) * float64(o.Wall))
}

// Run executes every cell of the spec and gathers the results. A cell
// failure (returned error or panic) does not stop, skew, or reorder the
// other cells; all failures are joined into the returned error, each
// naming its cell. On error the Outcome is still returned with every
// successful cell's result at its index (failed cells hold nil) and
// with complete per-cell stats, so a caller can salvage partial grids;
// Gather is not run on partial results — Outcome.Result is nil whenever
// the error is non-nil.
func (r Runner) Run(s Spec) (*Outcome, error) {
	return r.RunContext(context.Background(), s)
}

// RunContext is Run with cooperative cancellation: when ctx is
// cancelled the runner stops dispatching new cells, lets the cells
// already executing finish (Exec does not take a context — cells are
// meant to be fine-grained), and records ctx's error as the stat of
// every cell that never started. Cancellation cannot skew results:
// every cell that did run used its derived seed, so a partial grid is a
// prefix-consistent subset of the full run.
func (r Runner) RunContext(ctx context.Context, s Spec) (*Outcome, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := len(s.Cells)
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now()
	results := make([]any, n)
	stats := make([]CellStat, n)
	if workers == 1 {
		for i := range s.Cells {
			if ctx.Err() != nil {
				break
			}
			results[i], stats[i] = r.runCell(ctx, s, i)
			r.notify(i, stats[i])
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], stats[i] = r.runCell(ctx, s, i)
					r.notify(i, stats[i])
				}
			}()
		}
	dispatch:
		for i := 0; i < n; i++ {
			select {
			case next <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(next)
		wg.Wait()
	}
	if err := ctx.Err(); err != nil {
		// Cells the dispatch loop never handed out carry the context
		// error so the caller can tell "not run" from "ran and failed".
		for i := range stats {
			if stats[i].Attempts == 0 {
				stats[i] = CellStat{Key: s.Cells[i].Key, Seed: s.CellSeed(s.Cells[i].Key), Err: err.Error()}
			}
		}
	}

	return assembleOutcome(s, workers, time.Since(start), results, stats)
}

// AssembleOutcome builds an Outcome from index-ordered results and
// stats that were executed elsewhere — the distributed coordinator's
// merge step (internal/serve) feeds it cells completed on worker
// nodes. Semantics are exactly the Runner's tail: per-cell errors are
// joined (Gather never runs on a partial grid), busy/retry accounting
// and the obs campaign counters are identical, so an Outcome assembled
// from remote cells is indistinguishable from a local run.
func AssembleOutcome(s Spec, workers int, wall time.Duration, results []any, stats []CellStat) (*Outcome, error) {
	return assembleOutcome(s, workers, wall, results, stats)
}

// assembleOutcome builds the Outcome shared by Runner and Pool from the
// index-ordered results and stats: joined per-cell errors (Gather is
// never run on a partial grid), busy/retry accounting, and the obs
// campaign counters.
func assembleOutcome(s Spec, workers int, wall time.Duration, results []any, stats []CellStat) (*Outcome, error) {
	out := &Outcome{
		Name:    s.Name,
		Workers: workers,
		Results: results,
		Cells:   stats,
		Wall:    wall,
	}
	var errs []error
	var retries int64
	for i := range stats {
		out.Busy += stats[i].Wall
		retries += int64(stats[i].Attempts - 1)
		if stats[i].Err != "" {
			errs = append(errs, fmt.Errorf("campaign %s: cell %s: %s", s.Name, stats[i].Key, stats[i].Err))
		}
	}
	if obs.Enabled() {
		obs.CampaignCells.Add(int64(len(stats)))
		obs.CampaignFailures.Add(int64(len(errs)))
		obs.CampaignRetries.Add(retries)
		obs.CampaignBusyNS.Add(int64(out.Busy))
		obs.CampaignWallNS.Add(int64(out.Wall))
	}
	if len(errs) > 0 {
		return out, errors.Join(errs...)
	}

	if s.Gather != nil {
		out.Result = s.Gather(results)
	} else {
		out.Result = results
	}
	return out, nil
}

// notify invokes the OnCell hook when one is installed.
func (r Runner) notify(i int, stat CellStat) {
	if r.OnCell != nil {
		r.OnCell(i, stat)
	}
}

// runCell executes one cell with the runner's retry budget.
func (r Runner) runCell(ctx context.Context, s Spec, i int) (any, CellStat) {
	return runCellAttempts(ctx, s, i, r.Retries)
}

// runCellAttempts executes one cell (with a retry budget), timing it
// and converting a panic into an error so a failing cell reports its
// key instead of killing the process from a worker goroutine. A
// cancelled context stops the retry loop between attempts but never
// interrupts an attempt in flight. Shared by Runner and Pool, so both
// schedulers have identical per-cell semantics.
func runCellAttempts(ctx context.Context, s Spec, i, retries int) (any, CellStat) {
	c := s.Cells[i]
	stat := CellStat{Key: c.Key, Seed: s.CellSeed(c.Key)}
	t0 := time.Now()
	var result any
	var err error
	for attempt := 0; attempt <= retries; attempt++ {
		stat.Attempts++
		result, err = execCell(s, c, stat.Seed)
		if err == nil {
			break
		}
		result = nil
		if ctx.Err() != nil {
			break
		}
	}
	stat.Wall = time.Since(t0)
	if err != nil {
		stat.Err = err.Error()
	}
	return result, stat
}

// execCell runs one attempt, recovering panics into errors.
func execCell(s Spec, c Cell, seed int64) (result any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return s.Exec(c, seed)
}
