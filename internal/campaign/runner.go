package campaign

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Runner executes a Spec's cells across a bounded worker pool.
//
// The zero value is ready to use and sizes the pool to GOMAXPROCS.
// Results are bit-identical for every worker count: cell seeds derive
// from stable keys, results land at their cell's index, and Gather runs
// once after all cells complete.
type Runner struct {
	// Workers bounds the number of cells executing concurrently;
	// values <= 0 mean GOMAXPROCS.
	Workers int
}

// Outcome is one campaign execution.
type Outcome struct {
	// Name echoes the Spec.
	Name string
	// Workers is the resolved pool size the run used.
	Workers int
	// Results holds the per-cell results in cell order.
	Results []any
	// Result is Gather's assembly of Results (Results itself when the
	// Spec has no Gather).
	Result any
	// Wall is the campaign's wall-clock duration — the only field that
	// varies with Workers.
	Wall time.Duration
}

// Run executes every cell of the spec and gathers the results. A cell
// failure (returned error or panic) does not stop, skew, or reorder the
// other cells; all failures are joined into the returned error, each
// naming its cell. On error the Outcome is still returned with every
// successful cell's result at its index (failed cells hold nil) so a
// caller can salvage partial grids; Gather is not run on partial
// results — Outcome.Result is nil whenever the error is non-nil.
func (r Runner) Run(s Spec) (*Outcome, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	n := len(s.Cells)
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	start := time.Now()
	results := make([]any, n)
	cellErrs := make([]error, n)
	if workers == 1 {
		for i := range s.Cells {
			results[i], cellErrs[i] = runCell(s, i)
		}
	} else {
		next := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					results[i], cellErrs[i] = runCell(s, i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
		wg.Wait()
	}

	out := &Outcome{
		Name:    s.Name,
		Workers: workers,
		Results: results,
		Wall:    time.Since(start),
	}

	var errs []error
	for i, err := range cellErrs {
		if err != nil {
			errs = append(errs, fmt.Errorf("campaign %s: cell %s: %w", s.Name, s.Cells[i].Key, err))
		}
	}
	if len(errs) > 0 {
		return out, errors.Join(errs...)
	}

	if s.Gather != nil {
		out.Result = s.Gather(results)
	} else {
		out.Result = results
	}
	return out, nil
}

// runCell executes one cell, converting a panic into an error so a
// failing cell reports its key instead of killing the process from a
// worker goroutine.
func runCell(s Spec, i int) (result any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	c := s.Cells[i]
	return s.Exec(c, s.CellSeed(c.Key))
}
