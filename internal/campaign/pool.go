package campaign

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"rhohammer/internal/obs"
)

// Pool is a shared work-stealing cell scheduler: one fixed set of
// workers executing the cells of every campaign submitted to it,
// concurrently. Where a Runner dedicates its whole worker pool to one
// Spec, a Pool interleaves the cells of many Specs — the serving
// layer's shard problem ("one large job serializes behind its shard
// while the other shards idle") disappears because scheduling happens
// at cell granularity.
//
// Each worker owns a deque. Submitting a run spreads its cells across
// the deques round-robin; a worker pops work from the front of its own
// deque and, when empty, steals the back half of the fullest deque
// (steal-half keeps thieves and victims both busy without rebalancing
// on every pop). Every cell is scheduled exactly once — moving between
// deques never duplicates it.
//
// Determinism is inherited, not re-proved: a cell's seed derives from
// its stable key (Spec.CellSeed), results land at the cell's index, and
// Gather runs once after the last cell — so which worker ran a cell,
// or whether it was stolen, cannot change result bytes. The pool
// preserves the Runner's whole contract: per-cell retries, panic
// recovery, OnCell notification, cooperative cancellation, and the
// partial-grid error shape.
type Pool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	deques [][]poolItem // one per worker; owner pops front, thieves take the back half
	next   int          // round-robin submission cursor
	closed bool

	workers int
	wg      sync.WaitGroup
}

// poolItem is one scheduled cell: a run and an index into its grid.
type poolItem struct {
	run *poolRun
	idx int
}

// poolRun is one campaign executing on the pool. results/stats entries
// are written by exactly one worker each (per-index ownership); the
// remaining counter and done channel are guarded by the pool mutex.
type poolRun struct {
	ctx     context.Context
	spec    Spec
	retries int
	onCell  func(int, CellStat)

	results   []any
	stats     []CellStat
	remaining int
	done      chan struct{}
}

// RunOpts carries the per-run options a Pool accepts — the same knobs
// Runner exposes as fields, minus Workers (the pool's size is fixed at
// construction and shared by every run).
type RunOpts struct {
	// Retries is the per-cell retry budget (Runner.Retries).
	Retries int
	// OnCell, when non-nil, is invoked once per executed cell, from
	// worker goroutines (Runner.OnCell).
	OnCell func(index int, stat CellStat)
}

// NewPool starts a pool of the given size; workers <= 0 means
// GOMAXPROCS. Close releases the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		deques:  make([][]poolItem, workers),
		workers: workers,
	}
	p.cond = sync.NewCond(&p.mu)
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go p.worker(w)
	}
	return p
}

// Workers returns the pool's fixed worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers after the cells already queued have run.
// Runs still waiting in RunContext complete normally first; submitting
// after Close returns an error.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
	p.wg.Wait()
}

// Run executes every cell of the spec on the pool and gathers the
// results, with Runner.Run's exact error contract.
func (p *Pool) Run(s Spec, opts RunOpts) (*Outcome, error) {
	return p.RunContext(context.Background(), s, opts)
}

// RunContext is Run with cooperative cancellation: when ctx is
// cancelled, this run's still-queued cells are withdrawn from the
// deques (recording ctx's error as their stat), cells already executing
// finish, and the call returns once nothing of the run remains in
// flight. Other runs sharing the pool are unaffected.
func (p *Pool) RunContext(ctx context.Context, s Spec, opts RunOpts) (*Outcome, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := len(s.Cells)
	run := &poolRun{
		ctx:     ctx,
		spec:    s,
		retries: opts.Retries,
		onCell:  opts.OnCell,

		results:   make([]any, n),
		stats:     make([]CellStat, n),
		remaining: n,
		done:      make(chan struct{}),
	}
	start := time.Now()

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("campaign: pool is closed")
	}
	if n == 0 {
		close(run.done)
	}
	for i := 0; i < n; i++ {
		w := (p.next + i) % p.workers
		p.deques[w] = append(p.deques[w], poolItem{run: run, idx: i})
	}
	p.next = (p.next + n) % p.workers
	p.mu.Unlock()
	p.cond.Broadcast()

	select {
	case <-run.done:
	case <-ctx.Done():
		p.withdraw(run)
		<-run.done
	}
	return assembleOutcome(s, p.workers, time.Since(start), run.results, run.stats)
}

// withdraw removes a cancelled run's still-queued cells from every
// deque, recording the context error as their stat. Cells a worker has
// already popped are left to finish (the worker records them itself).
func (p *Pool) withdraw(run *poolRun) {
	err := run.ctx.Err()
	p.mu.Lock()
	defer p.mu.Unlock()
	for w := range p.deques {
		kept := p.deques[w][:0]
		for _, it := range p.deques[w] {
			if it.run != run {
				kept = append(kept, it)
				continue
			}
			c := run.spec.Cells[it.idx]
			run.stats[it.idx] = CellStat{Key: c.Key, Seed: run.spec.CellSeed(c.Key), Err: err.Error()}
			p.finishItemLocked(run)
		}
		p.deques[w] = kept
	}
}

// finishItemLocked marks one cell of a run handled, closing done on the
// last. Caller holds p.mu.
func (p *Pool) finishItemLocked(run *poolRun) {
	run.remaining--
	if run.remaining == 0 {
		close(run.done)
	}
}

// worker is one pool goroutine: pop own deque, steal when empty, exit
// when the pool is closed and no work remains anywhere.
func (p *Pool) worker(id int) {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.deques[id]) == 0 {
			if p.stealLocked(id) {
				break
			}
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
		}
		item := p.deques[id][0]
		p.deques[id] = p.deques[id][1:]
		p.mu.Unlock()

		p.execute(item)
	}
}

// stealLocked moves the back half (round up) of the fullest other deque
// onto this worker's deque. Returns whether anything was stolen. Caller
// holds p.mu.
func (p *Pool) stealLocked(id int) bool {
	victim, max := -1, 0
	for w := range p.deques {
		if w != id && len(p.deques[w]) > max {
			victim, max = w, len(p.deques[w])
		}
	}
	if victim < 0 {
		return false
	}
	take := (max + 1) / 2
	keep := max - take
	p.deques[id] = append(p.deques[id], p.deques[victim][keep:]...)
	p.deques[victim] = p.deques[victim][:keep]
	if obs.Enabled() {
		obs.CampaignSteals.Inc()
		obs.CampaignStolenCells.Add(int64(take))
	}
	// The thief now holds more than one item; wake siblings so a chain
	// of steals can fan freshly submitted work across the pool.
	if take > 1 {
		p.cond.Broadcast()
	}
	return true
}

// execute runs one popped cell: cancelled runs record the context error
// without executing, everything else goes through the shared
// runCellAttempts (retries, panic recovery, timing).
func (p *Pool) execute(it poolItem) {
	run := it.run
	if err := run.ctx.Err(); err != nil {
		c := run.spec.Cells[it.idx]
		run.stats[it.idx] = CellStat{Key: c.Key, Seed: run.spec.CellSeed(c.Key), Err: err.Error()}
	} else {
		result, stat := runCellAttempts(run.ctx, run.spec, it.idx, run.retries)
		run.results[it.idx] = result
		run.stats[it.idx] = stat
		if run.onCell != nil {
			run.onCell(it.idx, stat)
		}
	}
	p.mu.Lock()
	p.finishItemLocked(run)
	p.mu.Unlock()
}
