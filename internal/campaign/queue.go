package campaign

import "sort"

// CellQueue is an ordered queue of pending cell indices — the
// scheduling structure the distributed coordinator (internal/serve)
// keeps per job, and the shape the durable store (internal/store)
// re-queues on recovery.
//
// The invariant is ascending index order: the queue always hands out
// the lowest-indexed pending cell first, no matter how cells were
// pushed. Initial fill pushes 0..n-1, a lease reclaim pushes a dead
// worker's indices back, and a coordinator restart pushes whichever
// cells the journal shows incomplete — in every case the next lease
// starts at the earliest unfinished grid index. Ordering cannot change
// result bytes (cell seeds derive from stable keys, results land at
// their index), but it makes progress monotone front-to-back and makes
// the lease schedule after a reclaim or a restart the same schedule an
// uninterrupted run would have used, which keeps operational behavior
// (progress counters, manifest fill order) predictable.
//
// CellQueue is not goroutine-safe; the serve layer guards it with the
// server mutex like the rest of the job state.
type CellQueue struct {
	idx []int
}

// Push inserts indices, keeping ascending order. Indices already
// pending are ignored, so re-pushing after an ambiguous failure
// (a reclaim racing a partial completion, a double-replayed journal
// record) is idempotent.
func (q *CellQueue) Push(indices ...int) {
	for _, i := range indices {
		at := sort.SearchInts(q.idx, i)
		if at < len(q.idx) && q.idx[at] == i {
			continue
		}
		q.idx = append(q.idx, 0)
		copy(q.idx[at+1:], q.idx[at:])
		q.idx[at] = i
	}
}

// Pop removes and returns up to n indices from the front (the lowest
// pending indices). It returns a fresh slice; an empty queue returns
// nil.
func (q *CellQueue) Pop(n int) []int {
	if n > len(q.idx) {
		n = len(q.idx)
	}
	if n <= 0 {
		return nil
	}
	out := make([]int, n)
	copy(out, q.idx[:n])
	q.idx = q.idx[:copy(q.idx, q.idx[n:])]
	return out
}

// Len returns the number of pending indices.
func (q *CellQueue) Len() int { return len(q.idx) }

// Drain removes and returns every pending index in order.
func (q *CellQueue) Drain() []int { return q.Pop(len(q.idx)) }
