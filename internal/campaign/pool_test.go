package campaign

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolDeterminism is the Pool's core contract, mirroring
// TestRunnerDeterminism: the gathered result is identical for every
// pool size, stolen or not. make verify runs it under -race.
func TestPoolDeterminism(t *testing.T) {
	spec := syntheticSpec(42, 64)
	base, err := Runner{Workers: 1}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8, 64} {
		p := NewPool(workers)
		got, err := p.Run(spec, RunOpts{})
		p.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Result, base.Result) {
			t.Errorf("pool workers=%d: result diverged from serial Runner", workers)
		}
		if !reflect.DeepEqual(got.Results, base.Results) {
			t.Errorf("pool workers=%d: per-cell results diverged", workers)
		}
	}
}

// TestPoolRunsEveryCellExactlyOnce pins the central stealing invariant:
// a cell moved between deques is still executed exactly once, under
// heavy cross-run contention.
func TestPoolRunsEveryCellExactlyOnce(t *testing.T) {
	p := NewPool(8)
	defer p.Close()

	const runs, cells = 6, 40
	counts := make([]int64, runs*cells)
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		r := r
		spec := Spec{Name: fmt.Sprintf("count/%d", r), Seed: int64(r)}
		for i := 0; i < cells; i++ {
			spec.Cells = append(spec.Cells, Cell{Key: fmt.Sprintf("c/%d", i), Aux: r*cells + i})
		}
		spec.Exec = func(c Cell, seed int64) (any, error) {
			atomic.AddInt64(&counts[c.Aux.(int)], 1)
			return c.Key, nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := p.Run(spec, RunOpts{}); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for i, n := range counts {
		if n != 1 {
			t.Errorf("cell %d executed %d times, want exactly 1", i, n)
		}
	}
}

// TestPoolStealHalf pins the steal policy at the deque level: a thief
// takes the back half (rounded up) of the fullest victim, the victim
// keeps the front, and nothing is duplicated or dropped.
func TestPoolStealHalf(t *testing.T) {
	// A pool with no worker goroutines: manipulate deques directly.
	p := &Pool{deques: make([][]poolItem, 3), workers: 3}
	p.cond = sync.NewCond(&p.mu)
	run := &poolRun{}
	for i := 0; i < 7; i++ {
		p.deques[1] = append(p.deques[1], poolItem{run: run, idx: i})
	}
	p.deques[2] = []poolItem{{run: run, idx: 100}}

	p.mu.Lock()
	stole := p.stealLocked(0)
	p.mu.Unlock()
	if !stole {
		t.Fatal("steal with work available returned false")
	}
	// Victim must be deque 1 (fullest); thief takes ceil(7/2)=4 from the
	// back, victim keeps the front 3.
	if got := len(p.deques[0]); got != 4 {
		t.Fatalf("thief holds %d items, want 4", got)
	}
	if got := len(p.deques[1]); got != 3 {
		t.Fatalf("victim keeps %d items, want 3", got)
	}
	if len(p.deques[2]) != 1 {
		t.Fatal("steal touched a non-victim deque")
	}
	for i, it := range p.deques[1] {
		if it.idx != i {
			t.Errorf("victim kept idx %d at position %d, want the front of its deque", it.idx, i)
		}
	}
	for i, it := range p.deques[0] {
		if it.idx != 3+i {
			t.Errorf("thief got idx %d at position %d, want the back half in order", it.idx, i)
		}
	}

	// No other work: stealing must report empty-handed.
	p.deques[0], p.deques[1], p.deques[2] = nil, nil, nil
	p.mu.Lock()
	stole = p.stealLocked(0)
	p.mu.Unlock()
	if stole {
		t.Error("steal with no work returned true")
	}
}

// TestPoolInterleavesRuns is the scheduling win the pool exists for:
// while a large run's cells are blocked, a small run submitted later
// still completes, because scheduling is per cell, not per job.
func TestPoolInterleavesRuns(t *testing.T) {
	p := NewPool(4)
	defer p.Close()

	release := make(chan struct{})
	big := Spec{Name: "big", Seed: 1}
	for i := 0; i < 3; i++ {
		big.Cells = append(big.Cells, Cell{Key: fmt.Sprintf("b/%d", i)})
	}
	big.Exec = func(c Cell, seed int64) (any, error) { <-release; return c.Key, nil }

	bigDone := make(chan struct{})
	go func() { defer close(bigDone); p.Run(big, RunOpts{}) }()

	small := Spec{
		Name: "small", Seed: 2, Cells: []Cell{{Key: "s"}},
		Exec: func(c Cell, seed int64) (any, error) { return "done", nil },
	}
	smallDone := make(chan error, 1)
	go func() {
		_, err := p.Run(small, RunOpts{})
		smallDone <- err
	}()

	select {
	case err := <-smallDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("small run starved behind a blocked large run")
	}
	close(release)
	<-bigDone
}

// TestPoolOnCellAndStats checks the OnCell hook and per-cell stats
// survive the pool path with Runner semantics.
func TestPoolOnCellAndStats(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	spec := syntheticSpec(7, 10)

	var mu sync.Mutex
	seen := map[int]CellStat{}
	out, err := p.Run(spec, RunOpts{OnCell: func(i int, stat CellStat) {
		mu.Lock()
		seen[i] = stat
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(spec.Cells) {
		t.Fatalf("OnCell fired %d times for %d cells", len(seen), len(spec.Cells))
	}
	for i, c := range spec.Cells {
		stat := seen[i]
		if stat.Key != c.Key || stat.Seed != spec.CellSeed(c.Key) || stat.Attempts != 1 {
			t.Errorf("cell %d stat %+v inconsistent", i, stat)
		}
		if out.Cells[i] != stat {
			t.Errorf("cell %d: OnCell stat and Outcome stat diverge", i)
		}
	}
	if out.Workers != 3 {
		t.Errorf("Outcome.Workers = %d, want the pool size", out.Workers)
	}
}

// TestPoolJoinsFailuresAndRetries checks error joining, panic recovery
// and the retry budget ride through the shared cell executor.
func TestPoolJoinsFailuresAndRetries(t *testing.T) {
	p := NewPool(2)
	defer p.Close()

	spec := Spec{
		Name: "failing", Seed: 1,
		Cells: []Cell{{Key: "ok"}, {Key: "errs"}, {Key: "panics"}},
		Exec: func(c Cell, seed int64) (any, error) {
			switch c.Key {
			case "errs":
				return nil, fmt.Errorf("deliberate failure")
			case "panics":
				panic("deliberate panic")
			}
			return 1, nil
		},
	}
	out, err := p.Run(spec, RunOpts{Retries: 2})
	if err == nil {
		t.Fatal("no error from failing grid")
	}
	for _, want := range []string{"cell errs", "deliberate failure", "cell panics", "panic: deliberate panic"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
	if out.Result != nil {
		t.Error("Gather ran on a partial grid")
	}
	for _, stat := range out.Cells {
		want := 1
		if stat.Err != "" {
			want = 3 // 1 + Retries
		}
		if stat.Attempts != want {
			t.Errorf("cell %s: %d attempts, want %d", stat.Key, stat.Attempts, want)
		}
	}
}

// TestPoolCancellation: cancelling one run's context withdraws its
// queued cells (recording the context error) without touching a
// concurrent run on the same pool.
func TestPoolCancellation(t *testing.T) {
	p := NewPool(1) // single worker so queued cells stay queued
	defer p.Close()

	started := make(chan struct{})
	release := make(chan struct{})
	blocked := Spec{Name: "blocked", Seed: 1, Cells: []Cell{{Key: "gate"}, {Key: "q1"}, {Key: "q2"}}}
	var once sync.Once
	blocked.Exec = func(c Cell, seed int64) (any, error) {
		once.Do(func() { close(started) })
		<-release
		return c.Key, nil
	}

	ctx, cancel := context.WithCancel(context.Background())
	outc := make(chan *Outcome, 1)
	errc := make(chan error, 1)
	go func() {
		out, err := p.RunContext(ctx, blocked, RunOpts{})
		outc <- out
		errc <- err
	}()
	<-started
	cancel()
	// The executing cell is still blocked; queued cells must already be
	// withdrawn, but RunContext only returns after the in-flight cell
	// finishes.
	close(release)
	out, err := <-outc, <-errc
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("error %q does not carry the context error", err)
	}
	canceled := 0
	for _, stat := range out.Cells {
		if stat.Err == context.Canceled.Error() && stat.Attempts == 0 {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("no queued cell recorded the context error")
	}

	// The pool must still run fresh work after a cancellation.
	small := Spec{Name: "after", Seed: 2, Cells: []Cell{{Key: "s"}},
		Exec: func(c Cell, seed int64) (any, error) { return "ok", nil }}
	if _, err := p.Run(small, RunOpts{}); err != nil {
		t.Fatalf("pool broken after cancellation: %v", err)
	}
}

// TestPoolClose: Close drains queued work, and submitting afterwards
// fails cleanly.
func TestPoolClose(t *testing.T) {
	p := NewPool(2)
	spec := syntheticSpec(3, 8)
	if _, err := p.Run(spec, RunOpts{}); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if _, err := p.Run(spec, RunOpts{}); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("submit after Close: %v, want closed error", err)
	}
}

// TestPoolValidatesSpecs: the pool applies the same spec validation as
// the Runner.
func TestPoolValidatesSpecs(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	if _, err := p.Run(Spec{}, RunOpts{}); err == nil || !strings.Contains(err.Error(), "no name") {
		t.Errorf("invalid spec: %v", err)
	}
	out, err := p.Run(Spec{Name: "empty", Exec: func(Cell, int64) (any, error) { return nil, nil }}, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 0 {
		t.Errorf("%d results from empty grid", len(out.Results))
	}
}
