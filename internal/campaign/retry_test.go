package campaign

import (
	"fmt"
	"sync"
	"testing"
)

// flakySpec builds a grid where the named cells fail their first
// attempts. attempts records every Exec call per key.
func flakySpec(failFirst map[string]int, attempts *sync.Map) Spec {
	var cells []Cell
	for i := 0; i < 6; i++ {
		cells = append(cells, Cell{Key: fmt.Sprintf("cell-%d", i)})
	}
	return Spec{
		Name:  "flaky",
		Seed:  9,
		Cells: cells,
		Exec: func(c Cell, seed int64) (any, error) {
			n, _ := attempts.LoadOrStore(c.Key, new(int))
			count := n.(*int)
			*count++
			if *count <= failFirst[c.Key] {
				return nil, fmt.Errorf("transient fault %d", *count)
			}
			return seed, nil
		},
	}
}

// TestRetriesRecoverTransientFaults checks the retry contract: a cell
// that fails within the retry budget succeeds with the same seed and
// its Attempts count reflects the reruns; a cell that exhausts the
// budget surfaces its last error.
func TestRetriesRecoverTransientFaults(t *testing.T) {
	var attempts sync.Map
	out, err := Runner{Workers: 1, Retries: 2}.Run(
		flakySpec(map[string]int{"cell-1": 2, "cell-4": 5}, &attempts))
	if err == nil {
		t.Fatal("cell-4 exhausts the retry budget; Run must report it")
	}

	byKey := map[string]CellStat{}
	for _, c := range out.Cells {
		byKey[c.Key] = c
	}
	if c := byKey["cell-1"]; c.Attempts != 3 || c.Err != "" {
		t.Errorf("cell-1: attempts=%d err=%q, want 3 attempts and recovery", c.Attempts, c.Err)
	}
	if c := byKey["cell-4"]; c.Attempts != 3 || c.Err == "" {
		t.Errorf("cell-4: attempts=%d err=%q, want 3 failed attempts", c.Attempts, c.Err)
	}
	if c := byKey["cell-0"]; c.Attempts != 1 {
		t.Errorf("cell-0: attempts=%d, want 1", c.Attempts)
	}

	// The recovered cell's result must match a never-failing run: the
	// seed is derived from the key, not the attempt.
	var clean sync.Map
	ref, err := Runner{Workers: 1}.Run(flakySpec(nil, &clean))
	if err != nil {
		t.Fatal(err)
	}
	if out.Results[1] != ref.Results[1] {
		t.Errorf("retried cell result %v differs from clean run %v", out.Results[1], ref.Results[1])
	}
}
