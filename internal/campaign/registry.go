package campaign

import (
	"fmt"
	"sort"
)

// Params is the experiment-level configuration a registry entry needs
// to materialize its Spec: the base seed and the workload scale. It
// deliberately excludes execution concerns (worker counts) — those
// belong to the Runner, and a Spec must describe identical work for any
// of them.
type Params struct {
	// Seed fixes all randomness.
	Seed int64
	// Scale multiplies the default (CI-sized) budgets.
	Scale float64
}

// Entry names one buildable campaign.
type Entry struct {
	// Name is the command-line and registry identity (e.g. "fig9").
	Name string
	// Kind classifies the artifact.
	Kind Kind
	// Title is a one-line human description for listings.
	Title string
	// Build materializes the Spec for the given parameters. Building is
	// cheap (it only constructs the cell grid); no cell runs until a
	// Runner executes the Spec.
	Build func(p Params) Spec
}

// Registry maps campaign names to their Specs. Registration happens at
// package init time; lookups afterwards are read-only, so the type
// needs no locking.
type Registry struct {
	entries []Entry
	byName  map[string]int
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// Register adds an entry, panicking on structural misuse (empty name,
// nil Build, duplicate registration) — registries are assembled in
// init functions where a panic is an immediate programming-error
// signal, matching gob.Register and http.Handle.
func (r *Registry) Register(e Entry) {
	if e.Name == "" {
		panic("campaign: registering entry with empty name")
	}
	if e.Build == nil {
		panic(fmt.Sprintf("campaign: entry %q has no Build", e.Name))
	}
	if _, dup := r.byName[e.Name]; dup {
		panic(fmt.Sprintf("campaign: entry %q registered twice", e.Name))
	}
	r.byName[e.Name] = len(r.entries)
	r.entries = append(r.entries, e)
}

// Lookup returns the entry with the given name.
func (r *Registry) Lookup(name string) (Entry, bool) {
	i, ok := r.byName[name]
	if !ok {
		return Entry{}, false
	}
	return r.entries[i], true
}

// Entries returns every entry in registration order.
func (r *Registry) Entries() []Entry {
	out := make([]Entry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Names returns every registered name in registration order.
func (r *Registry) Names() []string {
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.Name
	}
	return out
}

// SortedNames returns every registered name in lexical order, for
// stable usage/error listings.
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}

// SortedEntries returns every entry in lexical name order — the stable
// listing order user-facing surfaces (`experiments -list`, serverd's
// GET /v1/specs) present regardless of registration order, which is
// free to track the paper's narrative instead.
func (r *Registry) SortedEntries() []Entry {
	out := r.Entries()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
