// Package campaign turns the paper's evaluation grids into declarative,
// deterministically parallel campaigns.
//
// The evaluation (Tables 3–7, Figs. 6–12) is a collection of grids:
// every table or figure is a cartesian product of independent cells —
// (architecture, DIMM, hammer configuration, pattern, budget) — whose
// results are then assembled into one rendered artifact. A Spec
// describes such a grid declaratively, a Registry names every Spec the
// repository knows how to build, and a Runner executes a Spec's cells
// across a bounded worker pool.
//
// Determinism is the package's core contract: each cell derives its own
// RNG seed from the campaign seed and the cell's stable key
// (stats.SplitSeed), never from shared RNG state, worker identity, or
// completion order. Consequently the gathered result is bit-identical
// for every worker count — parallelism changes wall-clock time and
// nothing else — and any future workload (a new DIMM profile, a
// mitigation sweep, the DDR5 outlook) plugs into the same engine as one
// more Spec.
package campaign

import (
	"fmt"

	"rhohammer/internal/arch"
	"rhohammer/internal/hammer"
	"rhohammer/internal/pattern"
	"rhohammer/internal/stats"
)

// Kind classifies a campaign by the paper artifact it regenerates.
type Kind uint8

const (
	// KindTable campaigns regenerate a numbered table.
	KindTable Kind = iota
	// KindFigure campaigns regenerate a numbered figure.
	KindFigure
	// KindAux campaigns regenerate supplementary artifacts (ablations,
	// mitigation studies, end-to-end runs).
	KindAux
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindFigure:
		return "figure"
	case KindAux:
		return "aux"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Budget bounds one cell's workload. Spec builders scale these from the
// experiment configuration; Exec functions read them instead of
// recomputing scaled values, so a cell is fully described by its struct.
type Budget struct {
	// Locations is the number of physical locations swept or regions
	// templated.
	Locations int
	// Patterns is the number of fuzzing candidates tried.
	Patterns int
	// Runs is the number of independent repetitions (Table 5's 50-run
	// accuracy protocol).
	Runs int
	// Probes is the number of measurement samples (latency pairs,
	// timing rounds).
	Probes int
	// Activations is the per-pattern activation budget.
	Activations int
	// DurationNS is the simulated hammering time per location/pattern.
	DurationNS float64
}

// Cell is one independent grid point of a campaign. The declarative
// fields name the platform, module, strategy, pattern and effort; Aux
// carries any experiment-specific remainder (a strategy label, a tool
// name). Cells must not share mutable state: every Exec call builds its
// own hammer.Session (sessions are single-goroutine by contract).
type Cell struct {
	// Key identifies the cell within its Spec. It must be unique and
	// stable across runs: the cell's RNG seed is derived from it, so
	// renaming a cell intentionally changes its random stream.
	Key string
	// Arch is the platform profile, nil when the cell is not
	// platform-specific.
	Arch *arch.Arch
	// DIMM is the memory module profile, nil when not module-specific.
	DIMM *arch.DIMM
	// Config is the hammering strategy; the zero value when the cell
	// does not hammer (e.g. reverse-engineering cells).
	Config hammer.Config
	// Pattern is the access pattern, nil when the cell fuzzes or does
	// not hammer.
	Pattern *pattern.Pattern
	// Budget bounds the cell's workload.
	Budget Budget
	// Aux carries experiment-specific data beyond the declarative
	// fields.
	Aux any
}

// Spec declaratively describes one campaign: a named grid of
// independent cells, how to execute one cell, and how to assemble the
// per-cell results into the final artifact.
type Spec struct {
	// Name is the campaign's registry name (e.g. "table6").
	Name string
	// Kind classifies the regenerated artifact.
	Kind Kind
	// Seed is the campaign base seed; per-cell seeds derive from
	// (Seed, Name, Cell.Key) via stats.SplitSeed.
	Seed int64
	// Cells is the grid, in rendering order: the Runner preserves this
	// order in its results regardless of completion order.
	Cells []Cell
	// Exec runs one cell with its derived seed and returns the cell's
	// result. It is called from worker goroutines and must not share
	// mutable state across cells.
	Exec func(c Cell, seed int64) (any, error)
	// Gather assembles the index-ordered per-cell results into the
	// campaign result (typically a Renderer). When nil the Runner
	// returns the raw slice.
	Gather func(results []any) any
}

// CellSeed returns the deterministic seed for the cell with the given
// key: a pure function of (Seed, Name, key), independent of worker
// count and scheduling.
func (s Spec) CellSeed(key string) int64 {
	return stats.SplitSeed(s.Seed, s.Name+"/"+key)
}

// Validate reports structural misuse of a Spec — a missing name or
// Exec, empty or duplicate cell keys — before any cell runs. Runner
// calls it on every run; callers that build Specs from untrusted input
// (the serve layer's inline grids) call it early to turn misuse into a
// client error instead of a failed run.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("campaign: spec has no name")
	}
	if s.Exec == nil {
		return fmt.Errorf("campaign %s: spec has no Exec", s.Name)
	}
	seen := make(map[string]struct{}, len(s.Cells))
	for i, c := range s.Cells {
		if c.Key == "" {
			return fmt.Errorf("campaign %s: cell %d has an empty key", s.Name, i)
		}
		if _, dup := seen[c.Key]; dup {
			return fmt.Errorf("campaign %s: duplicate cell key %q", s.Name, c.Key)
		}
		seen[c.Key] = struct{}{}
	}
	return nil
}
