package campaign

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
)

// failingSpec builds a grid where the named cells fail in the given way
// and every other cell hammers a real device and reports its flip and
// activation counts — close enough to a production campaign that
// sibling skew would show.
func failingSpec(name string, fail map[string]string) Spec {
	var cells []Cell
	for i := 0; i < 12; i++ {
		cells = append(cells, Cell{Key: fmt.Sprintf("cell-%02d", i)})
	}
	return Spec{
		Name:  name,
		Seed:  77,
		Cells: cells,
		Exec: func(c Cell, seed int64) (any, error) {
			switch fail[c.Key] {
			case "error":
				return nil, fmt.Errorf("profile exploded")
			case "panic":
				panic("cell panicked mid-hammer")
			}
			dev := dram.NewDevice(arch.DIMMS4(), seed)
			now := 0.0
			for i := 0; i < 70_000; i++ {
				dev.Activate(0, 500, now)
				dev.Activate(0, 502, now+3)
				now += 6
			}
			return fmt.Sprintf("flips=%d acts=%d", len(dev.Flips()), dev.ActivationCount()), nil
		},
	}
}

// TestRunSurfacesFailingCellKeys checks the failure contract end to
// end: an erroring cell and a panicking cell each surface their own
// cell key in the joined error, the run terminates (no hang on any
// worker count), and the sibling cells' results are byte-identical to
// a fully healthy run — a failure must not skew anyone else's stream.
func TestRunSurfacesFailingCellKeys(t *testing.T) {
	fail := map[string]string{"cell-03": "error", "cell-07": "panic"}

	healthy, err := Runner{Workers: 1}.Run(failingSpec("healthy", nil))
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			done := make(chan struct{})
			var out *Outcome
			var runErr error
			go func() {
				defer close(done)
				out, runErr = Runner{Workers: workers}.Run(failingSpec("healthy", fail))
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Minute):
				t.Fatal("campaign with failing cells hung")
			}

			if runErr == nil {
				t.Fatal("failing cells produced no error")
			}
			msg := runErr.Error()
			for _, want := range []string{"cell cell-03", "profile exploded", "cell cell-07", "panic: cell panicked mid-hammer"} {
				if !strings.Contains(msg, want) {
					t.Errorf("joined error missing %q:\n%s", want, msg)
				}
			}
			if strings.Contains(msg, "cell-04") {
				t.Errorf("error blames a healthy cell:\n%s", msg)
			}

			if out == nil {
				t.Fatal("no partial outcome returned alongside the error")
			}
			if out.Result != nil {
				t.Error("Gather must not run on partial results")
			}
			for i, r := range out.Results {
				key := fmt.Sprintf("cell-%02d", i)
				if fail[key] != "" {
					if r != nil {
						t.Errorf("failed %s has a result: %v", key, r)
					}
					continue
				}
				if !reflect.DeepEqual(r, healthy.Results[i]) {
					t.Errorf("%s skewed by sibling failure: %v vs healthy %v", key, r, healthy.Results[i])
				}
			}
		})
	}
}

// TestDeterminismDeviceBackedCells is the worker-count metamorphic
// invariant on real substrate state: cells that build their own DRAM
// device from the cell seed produce identical flip/activation summaries
// for every worker pool size.
func TestDeterminismDeviceBackedCells(t *testing.T) {
	results := map[int][]any{}
	for _, workers := range []int{1, 3, 8} {
		out, err := Runner{Workers: workers}.Run(failingSpec("device-grid", nil))
		if err != nil {
			t.Fatal(err)
		}
		results[workers] = out.Results
	}
	for _, workers := range []int{3, 8} {
		if !reflect.DeepEqual(results[1], results[workers]) {
			t.Errorf("device-backed results differ between 1 and %d workers:\n%v\n%v",
				workers, results[1], results[workers])
		}
	}
}
