package campaign_test

import (
	"fmt"
	"strings"

	"rhohammer/internal/campaign"
)

// Example builds a small grid and runs it at two pool sizes,
// demonstrating the package contract: each cell's seed derives from
// the campaign seed and the cell's stable key, so the gathered result
// is bit-identical for every worker count.
func Example() {
	spec := campaign.Spec{
		Name: "demo", Kind: campaign.KindAux, Seed: 7,
		Cells: []campaign.Cell{{Key: "a"}, {Key: "b"}, {Key: "c"}, {Key: "d"}},
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			// Stand-in for a simulation: any pure function of the
			// derived cell seed.
			return fmt.Sprintf("%s#%d", c.Key, seed&0xff), nil
		},
		Gather: func(results []any) any {
			parts := make([]string, len(results))
			for i, r := range results {
				parts[i] = r.(string)
			}
			return strings.Join(parts, " ")
		},
	}

	serial, err := campaign.Runner{Workers: 1}.Run(spec)
	if err != nil {
		panic(err)
	}
	pooled, err := campaign.Runner{Workers: 8}.Run(spec)
	if err != nil {
		panic(err)
	}
	fmt.Println(serial.Result == pooled.Result)
	fmt.Println(len(serial.Cells), "cells, attempts:", serial.Cells[0].Attempts)
	// Output:
	// true
	// 4 cells, attempts: 1
}

// ExamplePool shares one work-stealing worker set across several
// campaigns: cells — not jobs — are the scheduling unit, so a small
// grid never waits behind a large one, and the result is still
// bit-identical to a serial Runner because each cell's seed derives
// from its stable key.
func ExamplePool() {
	spec := campaign.Spec{
		Name: "demo", Kind: campaign.KindAux, Seed: 7,
		Cells: []campaign.Cell{{Key: "a"}, {Key: "b"}, {Key: "c"}, {Key: "d"}},
		Exec: func(c campaign.Cell, seed int64) (any, error) {
			return fmt.Sprintf("%s#%d", c.Key, seed&0xff), nil
		},
		Gather: func(results []any) any {
			parts := make([]string, len(results))
			for i, r := range results {
				parts[i] = r.(string)
			}
			return strings.Join(parts, " ")
		},
	}

	pool := campaign.NewPool(8)
	defer pool.Close()

	pooled, err := pool.Run(spec, campaign.RunOpts{})
	if err != nil {
		panic(err)
	}
	serial, err := campaign.Runner{Workers: 1}.Run(spec)
	if err != nil {
		panic(err)
	}
	fmt.Println(pooled.Result == serial.Result)
	fmt.Println(pooled.Workers, "pool workers,", len(pooled.Cells), "cells")
	// Output:
	// true
	// 8 pool workers, 4 cells
}

// ExampleRegistry names specs and lists them in the stable sorted
// order every user-facing listing (cmd/experiments -list, the serve
// layer's /v1/specs) reports.
func ExampleRegistry() {
	reg := campaign.NewRegistry()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		reg.Register(campaign.Entry{
			Name: name, Kind: campaign.KindAux, Title: strings.ToUpper(name),
			Build: func(p campaign.Params) campaign.Spec {
				return campaign.Spec{
					Name: name, Seed: p.Seed,
					Cells: []campaign.Cell{{Key: "only"}},
					Exec:  func(c campaign.Cell, seed int64) (any, error) { return nil, nil },
				}
			},
		})
	}
	for _, e := range reg.SortedEntries() {
		fmt.Println(e.Name, "—", e.Title)
	}
	// Output:
	// alpha — ALPHA
	// mid — MID
	// zeta — ZETA
}
