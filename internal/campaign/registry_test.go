package campaign

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestSortedEntriesStableOrder pins the listing bugfix: names, kinds
// and titles come back in lexical name order no matter how the
// registry was assembled. `experiments -list` and serverd's
// GET /v1/specs both present this order.
func TestSortedEntriesStableOrder(t *testing.T) {
	build := func(p Params) Spec {
		return Spec{Cells: []Cell{{Key: "k"}}, Exec: func(Cell, int64) (any, error) { return nil, nil }}
	}
	orders := [][]string{
		{"fig9", "ablation", "table6", "e2e"},
		{"table6", "e2e", "fig9", "ablation"},
		{"e2e", "table6", "ablation", "fig9"},
	}
	want := []string{"ablation", "e2e", "fig9", "table6"}
	for _, order := range orders {
		r := NewRegistry()
		for _, name := range order {
			r.Register(Entry{Name: name, Kind: KindAux, Title: "title of " + name, Build: build})
		}
		entries := r.SortedEntries()
		var names []string
		for _, e := range entries {
			names = append(names, e.Name)
			if e.Title != "title of "+e.Name {
				t.Errorf("registered in order %v: entry %s lost its title (%q)", order, e.Name, e.Title)
			}
		}
		if fmt.Sprint(names) != fmt.Sprint(want) {
			t.Errorf("registered in order %v: SortedEntries = %v, want %v", order, names, want)
		}
		// Registration order stays available for rendering.
		if fmt.Sprint(r.Names()) != fmt.Sprint(order) {
			t.Errorf("Names() = %v, want registration order %v", r.Names(), order)
		}
	}
}

// TestRunContextCancelStopsDispatch proves cooperative cancellation:
// once the context is cancelled the runner dispatches no further
// cells, the never-started cells report the context error with their
// deterministic key and seed, and the cells that did run kept their
// results.
func TestRunContextCancelStopsDispatch(t *testing.T) {
	const n = 50
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	s := Spec{
		Name: "cancelgrid",
		Exec: func(c Cell, seed int64) (any, error) {
			if started.Add(1) == 3 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return seed, nil
		},
	}
	for i := 0; i < n; i++ {
		s.Cells = append(s.Cells, Cell{Key: fmt.Sprintf("c%02d", i)})
	}

	out, err := Runner{Workers: 2}.RunContext(ctx, s)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("error %q does not mention the context", err)
	}
	if out == nil {
		t.Fatal("cancelled run returned nil outcome")
	}
	if out.Result != nil {
		t.Error("Gather ran on a partial grid")
	}
	ran, skipped := 0, 0
	for i, st := range out.Cells {
		switch {
		case st.Attempts > 0 && st.Err == "":
			ran++
			if out.Results[i] == nil {
				t.Errorf("cell %s ran but has no result", st.Key)
			}
		case st.Attempts == 0:
			skipped++
			if st.Err != context.Canceled.Error() {
				t.Errorf("skipped cell %s: err = %q, want %q", st.Key, st.Err, context.Canceled)
			}
			if st.Key == "" || st.Seed != s.CellSeed(st.Key) {
				t.Errorf("skipped cell %d lost its identity: %+v", i, st)
			}
		}
	}
	if ran == 0 {
		t.Error("no cell ran before cancellation")
	}
	if skipped == 0 {
		t.Error("cancellation skipped no cells — it landed after the grid finished")
	}
}

// TestOnCellReportsEveryCell pins the progress hook: it fires exactly
// once per cell with the cell's index and final stats, for both the
// single-worker and pooled paths.
func TestOnCellReportsEveryCell(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := Spec{
			Name: "hookgrid",
			Exec: func(c Cell, seed int64) (any, error) {
				if c.Key == "c3" {
					return nil, fmt.Errorf("boom")
				}
				return seed, nil
			},
		}
		for i := 0; i < 8; i++ {
			s.Cells = append(s.Cells, Cell{Key: fmt.Sprintf("c%d", i)})
		}
		seen := make([]CellStat, len(s.Cells))
		var calls atomic.Int32
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		r := Runner{Workers: workers, OnCell: func(i int, st CellStat) {
			<-mu
			seen[i] = st
			mu <- struct{}{}
			calls.Add(1)
		}}
		_, err := r.Run(s)
		if err == nil || !strings.Contains(err.Error(), "c3") {
			t.Fatalf("workers=%d: expected c3 failure, got %v", workers, err)
		}
		if got := calls.Load(); got != int32(len(s.Cells)) {
			t.Errorf("workers=%d: OnCell fired %d times, want %d", workers, got, len(s.Cells))
		}
		for i, st := range seen {
			if st.Key != s.Cells[i].Key {
				t.Errorf("workers=%d: index %d saw key %q, want %q", workers, i, st.Key, s.Cells[i].Key)
			}
		}
		if seen[3].Err == "" || seen[3].Attempts != 1 {
			t.Errorf("workers=%d: failing cell stat = %+v", workers, seen[3])
		}
	}
}
