package campaign

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Wire codec for per-cell results. The distributed fabric (see
// SCALING.md) executes cells on worker nodes and gathers on the
// coordinator, so the `any` a Spec.Exec returns must round-trip
// losslessly — Gather runs on the decoded values and its output feeds
// the canonical envelope, so any codec lossiness would break node-count
// byte-equality. JSON cannot do this (concrete types erase to
// map[string]any; array-keyed maps don't marshal at all), so cells
// travel as gob with every concrete result type registered up front via
// RegisterResultType.
//
// The value is wrapped in a single-field struct so interface-typed nils
// and primitive values encode uniformly; gob's type registry (seeded by
// RegisterResultType from the experiments package's init) recovers the
// concrete type on decode.

// wireCell is the envelope gob actually encodes: a struct wrapper so
// the interface value's concrete type travels with it.
type wireCell struct {
	Result any
}

// Primitive cell results (ad-hoc and test specs) are wire-safe out of
// the box; experiment structs register in internal/experiments/wire.go.
func init() {
	for _, v := range []any{"", int(0), int64(0), float64(0), false, []any(nil), map[string]any(nil)} {
		gob.Register(v)
	}
}

// RegisterResultType registers a concrete cell-result type with the
// wire codec. Every type a registered Spec.Exec can return must be
// registered (in an init function) before cells cross the wire;
// EncodeResult fails loudly otherwise. The zero value's concrete type
// is what's registered, so pass e.g. MyRow{} or (*MyResult)(nil).
func RegisterResultType(v any) {
	gob.Register(v)
}

// EncodeResult serializes one cell result for the wire.
func EncodeResult(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wireCell{Result: v}); err != nil {
		return nil, fmt.Errorf("campaign: encode cell result (%T): %w", v, err)
	}
	return buf.Bytes(), nil
}

// DecodeResult recovers a cell result encoded by EncodeResult. The
// concrete type must have been registered with RegisterResultType in
// this process too.
func DecodeResult(data []byte) (any, error) {
	var w wireCell
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("campaign: decode cell result: %w", err)
	}
	return w.Result, nil
}
