package campaign

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"rhohammer/internal/stats"
)

// syntheticSpec builds an RNG-dependent grid: each cell draws from its
// derived seed, so any seed-derivation or ordering bug shows up as a
// result mismatch across worker counts.
func syntheticSpec(seed int64, cells int) Spec {
	s := Spec{Name: "synthetic", Kind: KindAux, Seed: seed}
	for i := 0; i < cells; i++ {
		s.Cells = append(s.Cells, Cell{Key: fmt.Sprintf("cell/%d", i)})
	}
	s.Exec = func(c Cell, seed int64) (any, error) {
		r := stats.NewRand(seed)
		sum := 0.0
		for i := 0; i < 1000; i++ {
			sum += r.Float64()
		}
		return [2]any{c.Key, sum}, nil
	}
	s.Gather = func(results []any) any {
		out := make([]any, len(results))
		copy(out, results)
		return out
	}
	return s
}

// TestRunnerDeterminism is the package's core contract: the gathered
// result is identical for every worker count. make verify runs it under
// -race (the runner is the repository's concurrent hot path).
func TestRunnerDeterminism(t *testing.T) {
	spec := syntheticSpec(42, 64)
	base, err := Runner{Workers: 1}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 64, 0} {
		got, err := Runner{Workers: workers}.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Result, base.Result) {
			t.Errorf("workers=%d: result diverged from serial run", workers)
		}
		if !reflect.DeepEqual(got.Results, base.Results) {
			t.Errorf("workers=%d: per-cell results diverged", workers)
		}
	}
	// A different base seed must change the results.
	other, err := Runner{Workers: 4}.Run(syntheticSpec(43, 64))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(other.Result, base.Result) {
		t.Error("seed 43 reproduced seed 42's results")
	}
}

func TestCellSeedIsPure(t *testing.T) {
	a := Spec{Name: "x", Seed: 42}
	b := Spec{Name: "x", Seed: 42}
	if a.CellSeed("k") != b.CellSeed("k") {
		t.Error("CellSeed not a pure function of (seed, name, key)")
	}
	if a.CellSeed("k") == a.CellSeed("l") {
		t.Error("sibling cells share a seed")
	}
	if a.CellSeed("k") == (Spec{Name: "y", Seed: 42}).CellSeed("k") {
		t.Error("same key in different campaigns shares a seed")
	}
}

func TestRunnerPreservesCellOrder(t *testing.T) {
	spec := syntheticSpec(1, 16)
	out, err := Runner{Workers: 8}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range out.Results {
		if key := r.([2]any)[0].(string); key != spec.Cells[i].Key {
			t.Errorf("result %d came from cell %s", i, key)
		}
	}
}

func TestRunnerJoinsCellFailures(t *testing.T) {
	spec := Spec{
		Name: "failing", Seed: 1,
		Cells: []Cell{{Key: "ok"}, {Key: "errs"}, {Key: "panics"}},
		Exec: func(c Cell, seed int64) (any, error) {
			switch c.Key {
			case "errs":
				return nil, fmt.Errorf("deliberate failure")
			case "panics":
				panic("deliberate panic")
			}
			return 1, nil
		},
	}
	for _, workers := range []int{1, 3} {
		_, err := Runner{Workers: workers}.Run(spec)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		for _, want := range []string{"cell errs", "deliberate failure", "cell panics", "panic: deliberate panic"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("workers=%d: error %q missing %q", workers, err, want)
			}
		}
	}
}

func TestRunnerValidatesSpecs(t *testing.T) {
	exec := func(Cell, int64) (any, error) { return nil, nil }
	for _, tc := range []struct {
		name string
		spec Spec
		want string
	}{
		{"unnamed", Spec{Exec: exec}, "no name"},
		{"no exec", Spec{Name: "x"}, "no Exec"},
		{"empty key", Spec{Name: "x", Exec: exec, Cells: []Cell{{}}}, "empty key"},
		{"dup key", Spec{Name: "x", Exec: exec, Cells: []Cell{{Key: "a"}, {Key: "a"}}}, "duplicate cell key"},
	} {
		if _, err := (Runner{}).Run(tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestRunnerEmptyGrid(t *testing.T) {
	out, err := Runner{}.Run(Spec{Name: "empty", Exec: func(Cell, int64) (any, error) { return nil, nil }})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 0 {
		t.Errorf("%d results from empty grid", len(out.Results))
	}
}

func TestRunnerWithoutGatherReturnsResults(t *testing.T) {
	spec := Spec{
		Name: "raw", Seed: 1, Cells: []Cell{{Key: "a"}, {Key: "b"}},
		Exec: func(c Cell, seed int64) (any, error) { return c.Key, nil },
	}
	out, err := Runner{}.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Result, out.Results) {
		t.Error("nil Gather should surface the raw results")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	build := func(p Params) Spec { return Spec{Name: "t1", Seed: p.Seed} }
	r.Register(Entry{Name: "t1", Kind: KindTable, Title: "first", Build: build})
	r.Register(Entry{Name: "f2", Kind: KindFigure, Title: "second", Build: build})

	if got := r.Names(); !reflect.DeepEqual(got, []string{"t1", "f2"}) {
		t.Errorf("Names() = %v", got)
	}
	if got := r.SortedNames(); !reflect.DeepEqual(got, []string{"f2", "t1"}) {
		t.Errorf("SortedNames() = %v", got)
	}
	e, ok := r.Lookup("f2")
	if !ok || e.Kind != KindFigure || e.Title != "second" {
		t.Errorf("Lookup(f2) = %+v, %v", e, ok)
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
	if spec := e.Build(Params{Seed: 9, Scale: 1}); spec.Seed != 9 {
		t.Errorf("built spec seed %d", spec.Seed)
	}

	for name, register := range map[string]func(){
		"duplicate": func() { r.Register(Entry{Name: "t1", Build: build}) },
		"empty":     func() { r.Register(Entry{Build: build}) },
		"nil build": func() { r.Register(Entry{Name: "x"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("registering %s entry did not panic", name)
				}
			}()
			register()
		}()
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindTable: "table", KindFigure: "figure", KindAux: "aux", Kind(9): "Kind(9)"} {
		if got := k.String(); got != want {
			t.Errorf("Kind %d = %q, want %q", k, got, want)
		}
	}
}
