package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rhohammer/internal/campaign"
)

// open is Open with test fatalities.
func open(t *testing.T, dir string) (*Store, *State) {
	t.Helper()
	st, state, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { st.Close() })
	return st, state
}

// seedJob journals one job with two completed cells into st.
func seedJob(t *testing.T, st *Store, id string) {
	t.Helper()
	if err := st.AppendJob(JobMeta{
		ID: id, Spec: "tiny", Seed: 42, Scale: 1, Parallel: 2,
		Created: time.Unix(0, 1000).UTC(),
	}); err != nil {
		t.Fatal(err)
	}
	for i, key := range []string{"a", "b"} {
		res, err := campaign.EncodeResult(key + "#result")
		if err != nil {
			t.Fatal(err)
		}
		if err := st.AppendCell(id, CellResult{
			Index: i, Key: key, Node: "w-001",
			Stat:   campaign.CellStat{Key: key, Seed: int64(i), Attempts: 1},
			Result: res,
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, state := open(t, dir)
	if len(state.Jobs) != 0 || len(state.Snapshots) != 0 || len(state.Warnings) != 0 {
		t.Fatalf("fresh store not empty: %+v", state)
	}
	seedJob(t, st, "job-000001")
	st.Close()

	_, state2 := open(t, dir)
	if len(state2.Jobs) != 1 {
		t.Fatalf("recovered %d in-flight jobs, want 1", len(state2.Jobs))
	}
	j := state2.Jobs[0]
	want := JobMeta{ID: "job-000001", Spec: "tiny", Seed: 42, Scale: 1, Parallel: 2,
		Created: time.Unix(0, 1000).UTC()}
	if !reflect.DeepEqual(j.Meta, want) {
		t.Fatalf("recovered meta = %+v, want %+v", j.Meta, want)
	}
	if len(j.Cells) != 2 {
		t.Fatalf("recovered %d cells, want 2", len(j.Cells))
	}
	c := j.Cells[1]
	if c.Key != "b" || c.Node != "w-001" || c.Stat.Attempts != 1 {
		t.Fatalf("cell 1 = %+v", c)
	}
	got, err := campaign.DecodeResult(c.Result)
	if err != nil {
		t.Fatal(err)
	}
	if got != "b#result" {
		t.Fatalf("cell 1 result = %v, want b#result", got)
	}
}

func TestTerminalJobMovesToSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := open(t, dir)
	seedJob(t, st, "job-000001")
	snap := &Snapshot{
		ID: "job-000001", Spec: "tiny", Seed: 42, Scale: 1, Parallel: 2,
		State: "done", CellsDone: 2,
		Created:  time.Unix(0, 1000).UTC(),
		Finished: time.Unix(0, 2000).UTC(),
		Canonical: []byte(`{"ok":true}`),
	}
	if err := st.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendDone("job-000001", "done", ""); err != nil {
		t.Fatal(err)
	}
	st.Close()

	_, state := open(t, dir)
	if len(state.Jobs) != 0 {
		t.Fatalf("terminal job still in-flight: %+v", state.Jobs)
	}
	if len(state.Snapshots) != 1 {
		t.Fatalf("recovered %d snapshots, want 1", len(state.Snapshots))
	}
	s := state.Snapshots[0]
	if s.ID != "job-000001" || s.State != "done" || string(s.Canonical) != `{"ok":true}` {
		t.Fatalf("snapshot = %+v", s)
	}

	// Compaction dropped the terminal job's records from the journal.
	data, err := os.ReadFile(filepath.Join(dir, journalName))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "job-000001") {
		t.Fatalf("compacted journal still mentions the terminal job:\n%s", data)
	}
}

func TestTruncatedTailIgnored(t *testing.T) {
	dir := t.TempDir()
	st, _ := open(t, dir)
	seedJob(t, st, "job-000001")
	st.Close()

	// Simulate a crash mid-append: a torn, non-JSON final line.
	jpath := filepath.Join(dir, journalName)
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"done","job":"job-000001","sta`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	_, state := open(t, dir)
	if len(state.Jobs) != 1 || len(state.Jobs[0].Cells) != 2 {
		t.Fatalf("recovery with torn tail lost state: %+v", state.Jobs)
	}
	// The compacted journal no longer carries the torn bytes — the job
	// recovered as in-flight, not as the done the tail almost claimed.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"done"`) {
		t.Fatalf("torn tail survived compaction:\n%s", data)
	}
}

func TestCorruptMidLogIsTypedError(t *testing.T) {
	dir := t.TempDir()
	st, _ := open(t, dir)
	seedJob(t, st, "job-000001")
	st.Close()

	// Corrupt a mid-file line (line 3: the first cell record), leaving
	// valid content after it — this is real corruption, not a torn tail.
	jpath := filepath.Join(dir, journalName)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	lines[2] = "{\"kind\":\"cell\",garbage}\n"
	if err := os.WriteFile(jpath, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(dir)
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("Open = %v, want *DecodeError", err)
	}
	if de.Kind != ErrSyntax || de.Line != 3 {
		t.Fatalf("DecodeError = kind %q line %d, want %q line 3", de.Kind, de.Line, ErrSyntax)
	}
	if !strings.Contains(de.Error(), "line 3") {
		t.Fatalf("error text %q does not name the line", de.Error())
	}
}

func TestDoubleReplayIdempotence(t *testing.T) {
	dir := t.TempDir()
	st, _ := open(t, dir)
	seedJob(t, st, "job-000001")
	st.Close()

	// Duplicate every record in the journal — the state a crash between
	// append and acknowledgment can leave behind — and recover.
	jpath := filepath.Join(dir, journalName)
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	header, rest, _ := strings.Cut(string(data), "\n")
	doubled := header + "\n" + rest + rest
	if err := os.WriteFile(jpath, []byte(doubled), 0o644); err != nil {
		t.Fatal(err)
	}

	_, state := open(t, dir)
	if len(state.Jobs) != 1 {
		t.Fatalf("doubled journal recovered %d jobs, want 1", len(state.Jobs))
	}
	if n := len(state.Jobs[0].Cells); n != 2 {
		t.Fatalf("doubled journal recovered %d cells, want 2", n)
	}

	// And recovery itself is idempotent: a second Open over the
	// compacted journal yields the same state.
	_, state2 := open(t, dir)
	if !reflect.DeepEqual(state.Jobs, state2.Jobs) {
		t.Fatalf("second replay diverged:\n%+v\nvs\n%+v", state.Jobs, state2.Jobs)
	}
}

func TestHeaderErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		body string
		kind ErrorKind
	}{
		{"missing", `{"kind":"job","id":"j","spec":"s","seed":1,"scale":1,"parallel":1,"created_ns":1}` + "\n", ErrHeader},
		{"wrong-version", `{"kind":"header","version":"v9"}` + "\n", ErrVersion},
		{"unknown-kind", "{\"kind\":\"header\",\"version\":\"v1\"}\n{\"kind\":\"lease\"}\n{\"kind\":\"done\",\"job\":\"j\",\"state\":\"done\"}\n", ErrUnknownKind},
		{"unknown-job", "{\"kind\":\"header\",\"version\":\"v1\"}\n{\"kind\":\"done\",\"job\":\"ghost\",\"state\":\"done\"}\n{\"kind\":\"header\",\"version\":\"v1\"}\n", ErrUnknownJob},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, journalName), []byte(tc.body), 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := Open(dir)
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("Open = %v, want *DecodeError", err)
			}
			if de.Kind != tc.kind {
				t.Fatalf("kind = %q, want %q", de.Kind, tc.kind)
			}
		})
	}
}

func TestTornHeaderRecoversEmpty(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, journalName), []byte(`{"kind":"hea`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, state := open(t, dir)
	if len(state.Jobs) != 0 {
		t.Fatalf("torn header recovered jobs: %+v", state.Jobs)
	}
}

func TestCorruptSnapshotIsWarning(t *testing.T) {
	dir := t.TempDir()
	st, _ := open(t, dir)
	if err := st.WriteSnapshot(&Snapshot{ID: "job-000001", Spec: "tiny", State: "done"}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	bad := filepath.Join(dir, snapshotDirName, "job-000002.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, state := open(t, dir)
	if len(state.Snapshots) != 1 || state.Snapshots[0].ID != "job-000001" {
		t.Fatalf("snapshots = %+v", state.Snapshots)
	}
	if len(state.Warnings) != 1 || !strings.Contains(state.Warnings[0], "job-000002") {
		t.Fatalf("warnings = %v, want one naming job-000002", state.Warnings)
	}
}

func TestDeleteSnapshot(t *testing.T) {
	dir := t.TempDir()
	st, _ := open(t, dir)
	if err := st.WriteSnapshot(&Snapshot{ID: "job-000001", Spec: "tiny", State: "done"}); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteSnapshot("job-000001"); err != nil {
		t.Fatal(err)
	}
	if err := st.DeleteSnapshot("job-000001"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	st.Close()
	_, state := open(t, dir)
	if len(state.Snapshots) != 0 {
		t.Fatalf("snapshots after delete = %+v", state.Snapshots)
	}
}

func TestClosedStoreRefusesAppends(t *testing.T) {
	dir := t.TempDir()
	st, _ := open(t, dir)
	st.Close()
	if err := st.AppendJob(JobMeta{ID: "j", Spec: "s"}); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := st.WriteSnapshot(&Snapshot{ID: "j"}); err == nil {
		t.Fatal("snapshot after Close succeeded")
	}
}
