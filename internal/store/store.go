// Package store is the coordinator's crash-safe job store: a
// versioned JSONL append journal of job/cell/done state transitions
// plus a snapshot directory of terminal job envelopes, stdlib only.
//
// The write path is a commit log. Every state transition the serving
// layer must not lose — a job admitted, a cell completed (its stats
// and gob-encoded result via the campaign wire codec), a job reaching
// a terminal state — is one appended JSONL record followed by fsync,
// so the record is durable before the transition is acknowledged
// anywhere else. Terminal jobs additionally snapshot their canonical
// and timed envelopes plus manifest to snapshots/<job-id>.json
// (written atomically via rename), which is what lets retention
// survive restarts without replaying result bytes out of the journal.
//
// The read path is replay-on-boot. Open replays the journal into
// per-job state, tolerates a torn final line (crash mid-append: the
// unacknowledged record is dropped), rejects real corruption with
// typed *DecodeError values naming the offending line (the
// internal/replay codec contract), loads the snapshot directory, and
// then compacts: the journal is rewritten to hold only in-flight
// jobs, since terminal jobs live in their snapshots. Replay is
// idempotent — duplicated records re-apply to the same state — so a
// journal surviving a crash between append and acknowledgment still
// recovers exactly once.
//
// internal/serve threads this store through the coordinator (see
// OPERATIONS.md for the runbook view): recovered in-flight jobs
// re-queue their incomplete cells and keep completed results, merging
// to the same canonical envelope bytes as an uninterrupted run.
package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"rhohammer/internal/campaign"
)

// journalName is the append log's file name inside the store dir.
const journalName = "journal.jsonl"

// snapshotDirName is the terminal-snapshot directory inside the store
// dir.
const snapshotDirName = "snapshots"

// JobMeta is the identity of one persisted job — everything needed to
// rebuild it against the spec registry after a restart.
type JobMeta struct {
	ID       string
	Spec     string
	Seed     int64
	Scale    float64
	Parallel int
	Created  time.Time
}

// CellResult is one durably completed cell: its grid index, stable
// key, the worker node that executed it (empty for local execution),
// its execution stats, and the gob-encoded result bytes from the
// campaign wire codec.
type CellResult struct {
	Index  int
	Key    string
	Node   string
	Stat   campaign.CellStat
	Result []byte
}

// Job is one journaled job as replay reconstructs it: metadata, the
// completed cells by index, and — once a done record lands — its
// terminal state.
type Job struct {
	Meta  JobMeta
	Cells map[int]CellResult
	// State is the terminal state from the done record, "" while the
	// job is still in flight.
	State string
	// Error is the terminal error string, "" on success.
	Error string
}

// Snapshot is the durable form of one terminal job: enough to serve
// GET /v1/jobs/{id}/status, /result (canonical and timed), and
// /manifest after a restart without re-running anything.
type Snapshot struct {
	Version   string    `json:"version"`
	ID        string    `json:"id"`
	Spec      string    `json:"spec"`
	Seed      int64     `json:"seed"`
	Scale     float64   `json:"scale"`
	Parallel  int       `json:"parallel"`
	State      string    `json:"state"`
	Error      string    `json:"error,omitempty"`
	CellsTotal int       `json:"cells_total"`
	CellsDone  int       `json:"cells_done"`
	Created   time.Time `json:"created"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Canonical and Timed are the result envelopes exactly as the serve
	// layer would write them (base64 in the JSON encoding); Manifest is
	// the obs run manifest. All optional: a canceled job has none.
	Canonical []byte `json:"canonical,omitempty"`
	Timed     []byte `json:"timed,omitempty"`
	Manifest  []byte `json:"manifest,omitempty"`
}

// State is everything Open recovered from the store directory.
type State struct {
	// Jobs are the in-flight jobs (no terminal record yet) in
	// first-journaled order — the jobs the coordinator must resume.
	Jobs []*Job
	// Snapshots are the terminal jobs, sorted by finish time then ID —
	// the retention window the coordinator re-serves.
	Snapshots []*Snapshot
	// Warnings are non-fatal recovery notes (an unreadable snapshot
	// file, a terminal job missing its snapshot). The caller should log
	// them loudly; recovery proceeds without the affected artifact.
	Warnings []string
}

// Store is an open, append-ready job store. All methods are safe for
// concurrent use. After Close, appends fail — the crash-simulation
// hook the restart tests rely on.
type Store struct {
	dir string

	mu     sync.Mutex
	f      *os.File
	closed bool
}

// Open recovers the store directory (creating it if absent), compacts
// the journal down to in-flight jobs, and returns the store opened
// for append plus everything it recovered. Corruption anywhere but a
// torn final line is a *DecodeError; a torn tail is dropped silently
// because its fsync never acknowledged.
func Open(dir string) (*Store, *State, error) {
	if dir == "" {
		return nil, nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, snapshotDirName), 0o755); err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}

	jpath := filepath.Join(dir, journalName)
	data, err := os.ReadFile(jpath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	rs, rerr := replayJournal(data)
	if rerr != nil {
		return nil, nil, rerr
	}

	st := &State{}
	snaps, warns := loadSnapshots(filepath.Join(dir, snapshotDirName))
	st.Snapshots, st.Warnings = snaps, warns
	snapIDs := make(map[string]bool, len(snaps))
	for _, s := range snaps {
		snapIDs[s.ID] = true
	}
	var inflight []*Job
	for _, id := range rs.order {
		j := rs.jobs[id]
		if j.State == "" {
			inflight = append(inflight, j)
			continue
		}
		if !snapIDs[id] {
			st.Warnings = append(st.Warnings,
				fmt.Sprintf("job %s is terminal (%s) but has no snapshot; dropping from retention", id, j.State))
		}
	}
	st.Jobs = inflight

	// Compaction: rewrite the journal to exactly the in-flight jobs'
	// records. Terminal jobs live in their snapshots; duplicates and a
	// torn tail are normalized away. The rename is the commit point.
	if err := writeCompacted(jpath, inflight); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, f: f}, st, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the journal handle. Further appends fail. Close is
// idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// AppendJob journals a newly admitted job. The fsync inside is the
// commit point: once AppendJob returns, a restarted coordinator will
// resume the job.
func (s *Store) AppendJob(m JobMeta) error {
	return s.append(jobRecord{
		Kind: "job", ID: m.ID, Spec: m.Spec, Seed: m.Seed, Scale: m.Scale,
		Parallel: m.Parallel, CreatedNS: m.Created.UnixNano(),
	})
}

// AppendCell journals one completed cell for jobID. Once it returns,
// a restarted coordinator keeps this cell's result instead of
// re-running it.
func (s *Store) AppendCell(jobID string, c CellResult) error {
	return s.append(cellRecord{
		Kind: "cell", Job: jobID, Index: c.Index, Key: c.Key, Node: c.Node,
		Stat: c.Stat, Result: c.Result,
	})
}

// AppendDone journals a job's terminal transition. The caller writes
// the snapshot first (WriteSnapshot), then marks done: a crash between
// the two recovers the job as in-flight with all cells complete, which
// converges to the same terminal state on resume.
func (s *Store) AppendDone(jobID, state, errMsg string) error {
	return s.append(doneRecord{Kind: "done", Job: jobID, State: state, Error: errMsg})
}

// append marshals one record, writes it as a line, and fsyncs.
func (s *Store) append(rec any) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: marshal record: %w", err)
	}
	data = append(data, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if _, err := s.f.Write(data); err != nil {
		return fmt.Errorf("store: append: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: fsync: %w", err)
	}
	return nil
}

// WriteSnapshot durably writes one terminal job snapshot, atomically
// via a temp file and rename.
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	snap.Version = Version
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("store: marshal snapshot: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	dir := filepath.Join(s.dir, snapshotDirName)
	tmp, err := os.CreateTemp(dir, snap.ID+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, snap.ID+".json")); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// DeleteSnapshot removes one terminal snapshot — the retention
// eviction path. Deleting an absent snapshot is not an error.
func (s *Store) DeleteSnapshot(id string) error {
	err := os.Remove(filepath.Join(s.dir, snapshotDirName, id+".json"))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// loadSnapshots reads every *.json under dir, skipping unreadable or
// version-mismatched files with a warning instead of failing recovery.
func loadSnapshots(dir string) ([]*Snapshot, []string) {
	var snaps []*Snapshot
	var warns []string
	paths, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			warns = append(warns, fmt.Sprintf("snapshot %s: %v", filepath.Base(p), err))
			continue
		}
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			warns = append(warns, fmt.Sprintf("snapshot %s: %v", filepath.Base(p), err))
			continue
		}
		if snap.Version != Version {
			warns = append(warns, fmt.Sprintf("snapshot %s: unsupported version %q", filepath.Base(p), snap.Version))
			continue
		}
		if snap.ID == "" || !strings.HasSuffix(p, snap.ID+".json") {
			warns = append(warns, fmt.Sprintf("snapshot %s: file name does not match job id %q", filepath.Base(p), snap.ID))
			continue
		}
		snaps = append(snaps, &snap)
	}
	sort.Slice(snaps, func(i, k int) bool {
		if !snaps[i].Finished.Equal(snaps[k].Finished) {
			return snaps[i].Finished.Before(snaps[k].Finished)
		}
		return snaps[i].ID < snaps[k].ID
	})
	return snaps, warns
}

// writeCompacted rewrites the journal as header + the given jobs'
// records (cells in index order), atomically via rename.
func writeCompacted(jpath string, jobs []*Job) error {
	dir := filepath.Dir(jpath)
	tmp, err := os.CreateTemp(dir, journalName+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	defer os.Remove(tmp.Name())

	write := func(rec any) error {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		_, err = tmp.Write(append(data, '\n'))
		return err
	}
	werr := write(headerRecord{Kind: "header", Version: Version})
	for _, j := range jobs {
		if werr != nil {
			break
		}
		werr = write(jobRecord{
			Kind: "job", ID: j.Meta.ID, Spec: j.Meta.Spec, Seed: j.Meta.Seed,
			Scale: j.Meta.Scale, Parallel: j.Meta.Parallel,
			CreatedNS: j.Meta.Created.UnixNano(),
		})
		idxs := make([]int, 0, len(j.Cells))
		for i := range j.Cells {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			if werr != nil {
				break
			}
			c := j.Cells[i]
			werr = write(cellRecord{
				Kind: "cell", Job: j.Meta.ID, Index: c.Index, Key: c.Key,
				Node: c.Node, Stat: c.Stat, Result: c.Result,
			})
		}
	}
	if werr != nil {
		tmp.Close()
		return fmt.Errorf("store: compact: %w", werr)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compact fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp.Name(), jpath); err != nil {
		return fmt.Errorf("store: compact rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
// Best-effort: some filesystems refuse directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
