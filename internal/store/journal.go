package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"rhohammer/internal/campaign"
)

// Version is the journal format version. The first line of every
// journal is a header record carrying it; a journal written by a
// different format version is refused with a typed error instead of
// being half-understood.
const Version = "v1"

// ErrorKind classifies a DecodeError. Every way a journal can be
// rejected has its own kind, so callers (and the failure-mode tests)
// can assert on the failure mode instead of matching message strings —
// the same contract the replay trace codec keeps.
type ErrorKind string

const (
	// ErrSyntax is a journal line that is not a valid JSON record
	// (wrong field types, unknown fields) anywhere except the final
	// line — a torn final line is crash debris and is dropped, not an
	// error (see Open).
	ErrSyntax ErrorKind = "syntax"
	// ErrHeader is a missing or malformed header line.
	ErrHeader ErrorKind = "header"
	// ErrVersion is a header naming a version this store does not speak.
	ErrVersion ErrorKind = "version"
	// ErrUnknownKind is a record kind outside the journal schema.
	ErrUnknownKind ErrorKind = "unknown-kind"
	// ErrUnknownJob is a cell or done record naming a job the journal
	// never introduced with a job record.
	ErrUnknownJob ErrorKind = "unknown-job"
)

// DecodeError is the typed journal decode failure: the 1-based line
// number the journal was rejected at, the failure kind, and a
// human-readable detail.
type DecodeError struct {
	Line int
	Kind ErrorKind
	Msg  string
}

// Error implements error.
func (e *DecodeError) Error() string {
	if e.Line <= 0 {
		return fmt.Sprintf("store: %s: %s", e.Kind, e.Msg)
	}
	return fmt.Sprintf("store: line %d: %s: %s", e.Line, e.Kind, e.Msg)
}

// The journal is JSONL: one JSON record per line, first line a header.
// Three record kinds follow the header, mirroring the three commit
// points of a job's life:
//
//	{"kind":"header","version":"v1"}
//	{"kind":"job","id":...,"spec":...,"seed":...,"scale":...,"parallel":...,"created_ns":...}
//	{"kind":"cell","job":...,"index":...,"key":...,"node":...,"stat":{...},"result":"<base64 gob>"}
//	{"kind":"done","job":...,"state":...,"error":...}
//
// Records are idempotent under replay: a duplicated job record
// re-applies the same metadata, a duplicated cell record overwrites the
// same index with the same bytes, a duplicated done record re-marks the
// same terminal state. Replaying a journal twice therefore yields the
// same state as replaying it once.

type headerRecord struct {
	Kind    string `json:"kind"`
	Version string `json:"version"`
}

type jobRecord struct {
	Kind      string  `json:"kind"`
	ID        string  `json:"id"`
	Spec      string  `json:"spec"`
	Seed      int64   `json:"seed"`
	Scale     float64 `json:"scale"`
	Parallel  int     `json:"parallel"`
	CreatedNS int64   `json:"created_ns"`
}

type cellRecord struct {
	Kind   string            `json:"kind"`
	Job    string            `json:"job"`
	Index  int               `json:"index"`
	Key    string            `json:"key"`
	Node   string            `json:"node,omitempty"`
	Stat   campaign.CellStat `json:"stat"`
	Result []byte            `json:"result,omitempty"`
}

type doneRecord struct {
	Kind  string `json:"kind"`
	Job   string `json:"job"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// kindProbe is the first decode pass: only the record kind, so the
// second pass can decode the full kind-specific shape strictly.
type kindProbe struct {
	Kind string `json:"kind"`
}

// decodeStrict decodes one journal line into v with unknown fields
// rejected, so schema drift is caught at the line it happens on.
func decodeStrict(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// replayState is the outcome of replaying one journal: every job the
// journal introduced (terminal or not) keyed by ID, in first-seen
// order.
type replayState struct {
	jobs  map[string]*Job
	order []string
}

// replayJournal decodes and applies a whole journal. A torn final line
// (no further non-blank content after it) is tolerated as crash debris:
// replay stops at the last valid record and reports how many bytes of
// valid prefix it consumed, so Open can drop the tail. Any other
// malformed line is a *DecodeError naming its line number.
func replayJournal(data []byte) (*replayState, error) {
	st := &replayState{jobs: make(map[string]*Job)}
	line := 0
	off := 0
	sawHeader := false
	for off < len(data) {
		end := bytes.IndexByte(data[off:], '\n')
		last := end < 0
		var raw []byte
		if last {
			raw = data[off:]
			off = len(data)
		} else {
			raw = data[off : off+end]
			off += end + 1
		}
		line++
		raw = bytes.TrimSpace(raw)
		if len(raw) == 0 {
			continue
		}

		// A final line that is not even valid JSON is the torn tail of a
		// crashed append: the fsync that would have acknowledged it never
		// returned, so the writer never observed it as committed. Drop it
		// and recover. A complete-but-wrong line (valid JSON failing the
		// schema), or garbage followed by more content, is real
		// corruption and errors below.
		if tailBlank(data[off:]) && !json.Valid(raw) {
			return st, nil
		}

		if !sawHeader {
			var hd headerRecord
			if err := decodeStrict(raw, &hd); err != nil || hd.Kind != "header" {
				return nil, &DecodeError{Line: line, Kind: ErrHeader,
					Msg: fmt.Sprintf("journal does not open with a header record: %s", firstOf(err, "wrong kind"))}
			}
			if hd.Version != Version {
				return nil, &DecodeError{Line: line, Kind: ErrVersion,
					Msg: fmt.Sprintf("unsupported journal version %q (this store speaks %q)", hd.Version, Version)}
			}
			sawHeader = true
			continue
		}

		if err := st.apply(line, raw); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// apply decodes one post-header record and folds it into the state.
func (st *replayState) apply(line int, raw []byte) error {
	var probe kindProbe
	if err := json.Unmarshal(raw, &probe); err != nil {
		return &DecodeError{Line: line, Kind: ErrSyntax, Msg: err.Error()}
	}
	switch probe.Kind {
	case "job":
		var r jobRecord
		if err := decodeStrict(raw, &r); err != nil {
			return &DecodeError{Line: line, Kind: ErrSyntax, Msg: err.Error()}
		}
		j, ok := st.jobs[r.ID]
		if !ok {
			j = &Job{Cells: make(map[int]CellResult)}
			st.jobs[r.ID] = j
			st.order = append(st.order, r.ID)
		}
		j.Meta = JobMeta{
			ID: r.ID, Spec: r.Spec, Seed: r.Seed, Scale: r.Scale,
			Parallel: r.Parallel, Created: time.Unix(0, r.CreatedNS).UTC(),
		}
	case "cell":
		var r cellRecord
		if err := decodeStrict(raw, &r); err != nil {
			return &DecodeError{Line: line, Kind: ErrSyntax, Msg: err.Error()}
		}
		j, ok := st.jobs[r.Job]
		if !ok {
			return &DecodeError{Line: line, Kind: ErrUnknownJob,
				Msg: fmt.Sprintf("cell record for job %q the journal never introduced", r.Job)}
		}
		j.Cells[r.Index] = CellResult{Index: r.Index, Key: r.Key, Node: r.Node, Stat: r.Stat, Result: r.Result}
	case "done":
		var r doneRecord
		if err := decodeStrict(raw, &r); err != nil {
			return &DecodeError{Line: line, Kind: ErrSyntax, Msg: err.Error()}
		}
		j, ok := st.jobs[r.Job]
		if !ok {
			return &DecodeError{Line: line, Kind: ErrUnknownJob,
				Msg: fmt.Sprintf("done record for job %q the journal never introduced", r.Job)}
		}
		j.State, j.Error = r.State, r.Error
	default:
		return &DecodeError{Line: line, Kind: ErrUnknownKind,
			Msg: fmt.Sprintf("unknown record kind %q", probe.Kind)}
	}
	return nil
}

// tailBlank reports whether rest holds no further content — the
// condition under which a malformed line is the journal's torn tail
// rather than mid-log corruption.
func tailBlank(rest []byte) bool {
	return len(bytes.TrimSpace(rest)) == 0
}

// firstOf renders err, falling back to alt when err is nil.
func firstOf(err error, alt string) string {
	if err != nil {
		return err.Error()
	}
	return alt
}
