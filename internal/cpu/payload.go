package cpu

import (
	"fmt"

	"rhohammer/internal/dram"
	"rhohammer/internal/memctrl"
)

// Compiled payloads: the flat-schedule fast path of the hammering hot
// loop (the LiteX payload-executor idiom). Compile lowers a memoized
// Program under one execution Config into a Payload — a flat slot
// array with every per-op decision already taken: issue costs and
// reorder windows multiplied out, NOP/obfuscation ROB-and-time deltas
// folded into the next slot, flushes of the just-accessed line fused
// into its access slot, and every line's address translation and DRAM
// row state preresolved. RunPayload then executes the schedule with the
// memory controller's bank state machine inlined and DRAM activations
// buffered into batches, producing bit-identical results to Run.
//
// Determinism policy — why compiled ≡ interpreted, exactly:
//
//   - RNG draws: the executor reproduces servedFromCache's draw
//     conditions and order verbatim (a speculation-skew draw only when
//     unfenced with a positive window, then a load-replay draw only for
//     still-unserved loads). Same draws, same order, same stream.
//   - Floating point: time deltas are applied in program order, one add
//     per original op (two folded delta slots per slot, defaulting to
//     +0.0 which is exact for the non-negative clock), and every
//     compile-time constant is the same single expression the
//     interpreter evaluates per call — never an algebraic refactoring.
//   - Event order: the controller's decode-cache, refresh and bank
//     bookkeeping runs at the same decision points; buffered ACTs are
//     flushed to the device before any REF and at run end, preserving
//     the device's event call order (ACT timestamps may legitimately
//     exceed the CPU clock, so order — not time — is the contract).
//
// Fallbacks stay on the interpreted path: the session only compiles
// when no command trace is armed (the executor does not record per-
// command traces); row-swap, pTRR, DDR5-RFM, obs tracing and the
// simcheck shadow are handled inside dram.ActivateBatch per entry.

// slotKind enumerates the compiled schedule's operations.
type slotKind uint8

const (
	// slotAccess is a load or prefetch, optionally fused with the
	// flush of the same line that follows it.
	slotAccess slotKind = iota
	// slotFlush is an unfused CLFLUSHOPT.
	slotFlush
	// slotLFence, slotMFence, slotCPUID are the barrier instructions.
	slotLFence
	slotMFence
	slotCPUID
	// slotAdvance only applies its folded clock/ROB deltas (trailing
	// NOP runs, or delta runs too long to fold into one slot).
	slotAdvance
)

// slot is one compiled schedule entry. preUop/pre1/pre2 carry the ROB
// and clock deltas of the pure-advance ops (NOPs, obfuscation
// preambles) that preceded this op, applied in program order before the
// op itself.
type slot struct {
	pre1     float64 // first folded clock delta (+0.0 when none)
	pre2     float64 // second folded clock delta (+0.0 when none)
	hitCost  float64 // clock advance when served from cache
	missCost float64 // clock advance when the access reaches DRAM
	window   float64 // effective reorder window for this access kind
	preUop   int64   // folded ROB delta
	line     int32   // line index (slotAccess, slotFlush)
	kind     slotKind
	isLoad   bool
	flushAfter bool // fused flush of the same line follows the access
}

// payloadLine is one program line with its translation preresolved: the
// controller decode and the device activation target.
type payloadLine struct {
	pd  memctrl.PreDecoded
	act dram.ActRef
}

// Payload is one compiled (Program, Config) pair. It is immutable after
// Compile and, like the Program it was lowered from, reusable across
// runs; all mutable execution state lives in the Engine.
type Payload struct {
	slots []slot
	lines []payloadLine

	// distinctSlots records that no two lines share a decode-cache slot.
	// When it holds, only a line's first DRAM-reaching access of a run
	// can miss the decode cache (nothing else touches the cache during a
	// run, and distinct slots cannot evict each other), so the executor
	// checks the table once per line and counts the rest as hits without
	// the table lookup.
	distinctSlots bool

	// Per-run constants, multiplied out under the compiled Config.
	flushCost    float64 // IssueCostFlush * issueScale
	flushLatency float64
	lfenceCost   float64
	mfenceCost   float64
	cpuidCost    float64
	loadReplay   float64
	serializeNS  float64
	mlp, lfb     int
	lfSetsPF     bool // LFENCE also fences prefetches (C++ style)
}

// Slots reports the compiled schedule length (diagnostics and tests).
func (pl *Payload) Slots() int { return len(pl.slots) }

// actBufSize bounds the executor's activation buffer: large enough to
// amortize the batch call, small enough to stay cache-resident.
const actBufSize = 512

// Compile lowers a program under cfg. The result is bound to this
// engine's controller and device (line translations are preresolved
// against them) and to cfg (windows and issue costs are baked in).
func (e *Engine) Compile(p *Program, cfg Config) (*Payload, error) {
	if len(p.Lines) == 0 || len(p.Ops) == 0 {
		return nil, fmt.Errorf("cpu: cannot compile empty program")
	}
	issueScale := 1.0
	if cfg.Style == StyleAsmJit {
		issueScale = asmJitIssueFactor
	}
	wPF := e.window(e.Arch.WindowPF, cfg)
	wLD := e.window(e.Arch.WindowLD, cfg)

	pl := &Payload{
		flushCost:    e.Arch.IssueCostFlush * issueScale,
		flushLatency: e.Arch.FlushLatencyNS,
		lfenceCost:   e.Arch.LFenceNS,
		mfenceCost:   e.Arch.MFenceNS,
		cpuidCost:    e.Arch.CPUIDNS,
		loadReplay:   e.Arch.LoadReplayShare,
		serializeNS:  e.Arch.LoadSerializeNS,
		mlp:          e.Arch.LoadMLP,
		lfb:          e.Arch.LFBCount,
		lfSetsPF:     cfg.Style == StyleCPP,
	}

	pl.lines = make([]payloadLine, len(p.Lines))
	pl.distinctSlots = true
	for i, pa := range p.Lines {
		pd := e.Ctrl.Predecode(pa)
		pl.lines[i] = payloadLine{
			pd:  pd,
			act: e.Ctrl.Dev.PrepareAct(int(pd.Bank), uint64(pd.Row)),
		}
		for j := 0; j < i; j++ {
			if pl.lines[j].pd.Slot == pd.Slot {
				pl.distinctSlots = false
				break
			}
		}
	}
	// Size the schedule exactly: pure-advance ops (NOPs, iteration
	// markers) fold into their successor and emit no slot of their own,
	// except when a delta run spills (handled by append growth, rare).
	nSlots := 0
	for i := range p.Ops {
		switch p.Ops[i].Kind {
		case OpNop, OpIterStart:
		case OpFlush:
			// Usually fused into the preceding access; count separately
			// only when unfused (conservative overcount is one slot).
			nSlots++
		default:
			nSlots++
		}
	}
	pl.slots = make([]slot, 0, nSlots)

	// Pending pure-advance deltas, folded into the next slot. At most
	// two clock deltas fold into one slot; longer runs spill into
	// dedicated advance slots so every add keeps its program order.
	var preUop int64
	var pre [2]float64
	preN := 0
	flush := func() {
		if preUop != 0 || preN > 0 {
			pl.slots = append(pl.slots, slot{kind: slotAdvance, preUop: preUop, pre1: pre[0], pre2: pre[1]})
		}
		preUop, pre[0], pre[1], preN = 0, 0, 0, 0
	}
	pushDelta := func(d float64) {
		if preN == 2 {
			flush()
		}
		pre[preN] = d
		preN++
	}
	take := func(s slot) slot {
		s.preUop, s.pre1, s.pre2 = preUop, pre[0], pre[1]
		preUop, pre[0], pre[1], preN = 0, 0, 0, 0
		return s
	}

	for i := 0; i < len(p.Ops); i++ {
		op := &p.Ops[i]
		switch op.Kind {
		case OpLoad, OpPrefetch:
			isLoad := op.Kind == OpLoad
			s := slot{kind: slotAccess, line: op.Line, isLoad: isLoad}
			if isLoad {
				s.window = wLD
				s.hitCost = (e.Arch.IssueCostLD + 1.0) * issueScale
				s.missCost = e.Arch.IssueCostLD * issueScale
			} else {
				s.window = wPF
				c := (e.Arch.IssueCostPF + hintCost(op.Hint)) * issueScale
				s.hitCost = c
				s.missCost = c
			}
			if i+1 < len(p.Ops) && p.Ops[i+1].Kind == OpFlush && p.Ops[i+1].Line == op.Line {
				s.flushAfter = true
				i++
			}
			pl.slots = append(pl.slots, take(s))
		case OpFlush:
			pl.slots = append(pl.slots, take(slot{kind: slotFlush, line: op.Line}))
		case OpNop:
			r := int64(float64(op.N)*nopRobShare + 0.5)
			if r < 1 {
				r = 1
			}
			preUop += r
			pushDelta(float64(op.N) * e.Arch.NopCostNS)
		case OpLFence:
			pl.slots = append(pl.slots, take(slot{kind: slotLFence}))
		case OpMFence:
			pl.slots = append(pl.slots, take(slot{kind: slotMFence}))
		case OpCPUID:
			pl.slots = append(pl.slots, take(slot{kind: slotCPUID}))
		case OpIterStart:
			if cfg.Obfuscate {
				preUop += obfUops
				pushDelta(e.Arch.ObfuscationNS)
			}
		default:
			return nil, fmt.Errorf("cpu: cannot compile op kind %d", op.Kind)
		}
	}
	flush()
	return pl, nil
}

// PayloadBatches reports how many activation batches this engine has
// handed to the device (cumulative; the session snapshots deltas).
func (e *Engine) PayloadBatches() uint64 { return e.payloadBatches }

// RunPayload executes a compiled payload `iterations` times. Must be
// called with a payload compiled by this engine (its line translations
// are bound to this controller and device); results are bit-identical
// to Run of the source program under the compiled Config.
func (e *Engine) RunPayload(pl *Payload, iterations int) Result {
	if len(pl.slots) == 0 {
		return Result{StartTime: e.now, EndTime: e.now}
	}
	if cap(e.lines) >= len(pl.lines) {
		e.lines = e.lines[:len(pl.lines)]
	} else {
		e.lines = make([]lineState, len(pl.lines))
	}
	for i := range e.lines {
		e.lines[i] = lineState{flushEff: -1, flushUop: -1}
	}
	e.fills.reset()
	e.loads.reset()
	if cap(e.actBuf) == 0 {
		e.actBuf = make([]dram.ActEntry, 0, actBufSize)
	}

	start := e.now

	// Hot state in locals; written back in the epilogue.
	now := e.now
	uop := e.uop
	fenceLD, fencePF := false, false
	var accesses, hits, misses uint64
	var rowHits, rowEmpty, conflicts uint64
	var decodeHits uint64
	var batches uint64

	ctrl := e.Ctrl
	dev := ctrl.Dev
	hot := ctrl.Hot()
	banks := hot.Banks
	decode, auditing := hot.Decode, hot.Audit
	// With distinct slots and no audit, the decode table is touched once
	// per line per run; every later touch is a provable hit.
	onceDecode := pl.distinctSlots && !auditing
	tCL, tRCD, tRP, tRC, tBus, tCtrl := hot.T.TCL, hot.T.TRCD, hot.T.TRP, hot.T.TRC, hot.T.TBus, hot.T.TCtrl
	nextREF := ctrl.NextRefresh()
	buf := e.actBuf[:0]
	rnd := e.Rand
	lines := e.lines
	slots := pl.slots

	for it := 0; it < iterations; it++ {
		for si := range slots {
			s := &slots[si]
			uop += s.preUop
			now += s.pre1
			now += s.pre2
			switch s.kind {
			case slotAccess:
				accesses++
				uop++
				ls := &lines[s.line]
				var fenced bool
				if s.isLoad {
					fenced, fenceLD = fenceLD, false
				} else {
					fenced, fencePF = fencePF, false
				}
				served := false
				if ls.filled {
					if now < ls.fillDone || ls.flushUop < 0 || now < ls.flushEff {
						served = true
					} else {
						if !fenced && s.window > 0 {
							if rnd.Float64()*s.window > float64(uop-ls.flushUop) {
								served = true
							}
						}
						if !served && s.isLoad && pl.loadReplay > 0 && rnd.Float64() < pl.loadReplay {
							served = true
						}
					}
				}
				if served {
					hits++
					now += s.hitCost
				} else {
					misses++
					if s.isLoad {
						e.loads.waitForSlot(pl.mlp, &now)
					} else {
						e.fills.waitForSlot(pl.lfb, &now)
					}
					if nextREF <= now {
						if len(buf) > 0 {
							dev.ActivateBatch(buf)
							buf = buf[:0]
							batches++
						}
						ctrl.AdvanceRefresh(now)
						nextREF = ctrl.NextRefresh()
					}
					pline := &pl.lines[s.line]
					// Decode-cache hit check inlined from decodeAddr; the
					// slow path replays its miss/audit bookkeeping. Once a
					// line's slot is warm it cannot be evicted within the
					// run (distinct slots), so the table lookup drops out.
					if onceDecode && ls.decoded {
						decodeHits++
					} else if de := &decode[pline.pd.Slot]; de.OK && de.PA == pline.pd.PA && !auditing {
						decodeHits++
						ls.decoded = true
					} else {
						ctrl.DecodeTouchSlow(&pline.pd)
						ls.decoded = true
					}
					bk := &banks[pline.pd.Bank]
					row := pline.pd.Row
					st := now
					if bk.BusyUnit > st {
						st = bk.BusyUnit
					}
					var complete float64
					switch {
					case bk.OpenRow == row:
						rowHits++
						complete = st + tCL
						bk.BusyUnit = st + tBus
					case bk.OpenRow == -1:
						rowEmpty++
						actAt := st
						if tMin := bk.LastACT + tRC; actAt < tMin {
							actAt = tMin
						}
						buf = append(buf, dram.ActEntry{Ref: &pline.act, At: actAt})
						if len(buf) == actBufSize {
							dev.ActivateBatch(buf)
							buf = buf[:0]
							batches++
						}
						bk.LastACT = actAt
						bk.OpenRow = row
						complete = actAt + tRCD + tCL
						bk.BusyUnit = actAt + tRCD + tBus
					default:
						conflicts++
						preAt := st
						actAt := preAt + tRP
						if tMin := bk.LastACT + tRC; actAt < tMin {
							actAt = tMin
						}
						buf = append(buf, dram.ActEntry{Ref: &pline.act, At: actAt})
						if len(buf) == actBufSize {
							dev.ActivateBatch(buf)
							buf = buf[:0]
							batches++
						}
						bk.LastACT = actAt
						bk.OpenRow = row
						complete = actAt + tRCD + tCL
						bk.BusyUnit = actAt + tRCD + tBus
					}
					complete += tCtrl
					if s.isLoad {
						e.loads.push(complete + pl.serializeNS)
					} else {
						e.fills.push(complete)
					}
					now += s.missCost
					ls.filled = true
					ls.fillDone = complete
					ls.flushEff = -1
					ls.flushUop = -1
				}
				if s.flushAfter {
					uop++
					now += pl.flushCost
					if ls.filled {
						eff := now + pl.flushLatency
						if ls.fillDone+1 > eff {
							eff = ls.fillDone + 1
						}
						ls.flushEff = eff
						ls.flushUop = uop
					}
				}
			case slotFlush:
				uop++
				now += pl.flushCost
				ls := &lines[s.line]
				if ls.filled {
					eff := now + pl.flushLatency
					if ls.fillDone+1 > eff {
						eff = ls.fillDone + 1
					}
					ls.flushEff = eff
					ls.flushUop = uop
				}
			case slotLFence:
				uop++
				now += pl.lfenceCost
				e.loads.drainAll(&now)
				fenceLD = true
				if pl.lfSetsPF {
					fencePF = true
				}
			case slotMFence:
				uop++
				now += pl.mfenceCost
				e.loads.drainAll(&now)
				e.fills.drainAll(&now)
				fenceLD = true
			case slotCPUID:
				uop++
				now += pl.cpuidCost
				e.loads.drainAll(&now)
				e.fills.drainAll(&now)
				fenceLD, fencePF = true, true
			case slotAdvance:
				// Deltas already applied above.
			}
		}
	}

	if len(buf) > 0 {
		dev.ActivateBatch(buf)
		buf = buf[:0]
		batches++
	}
	e.actBuf = buf

	e.now = now
	e.uop = uop
	e.fenceLD, e.fencePF = fenceLD, fencePF
	e.accesses, e.hits, e.misses = accesses, hits, misses
	e.payloadBatches += batches
	ctrl.AddAccessStats(misses, rowHits, rowEmpty, conflicts, decodeHits)

	return Result{
		TimeNS:    now - start,
		Accesses:  accesses,
		Hits:      hits,
		Misses:    misses,
		ACTs:      rowEmpty + conflicts,
		StartTime: start,
		EndTime:   now,
	}
}
