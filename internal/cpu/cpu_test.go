package cpu

import (
	"math"
	"testing"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/mapping"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/stats"
)

// testEngine builds an engine over a Comet Lake platform with n distinct
// cache lines, each in the same bank but a different row.
func testEngine(t *testing.T, a *arch.Arch, lines int) (*Engine, *Program) {
	t.Helper()
	d := arch.DIMMS3()
	m, _ := mapping.ForPlatform(a.MappingFamily, d.SizeGiB)
	ctrl := memctrl.New(a, m, dram.NewDevice(d, 1))
	e := NewEngine(a, ctrl, stats.NewRand(1))
	p := &Program{}
	for i := 0; i < lines; i++ {
		pa, err := m.PhysAddr(0, uint64(1000+4*i), 0)
		if err != nil {
			t.Fatal(err)
		}
		p.Lines = append(p.Lines, pa)
	}
	return e, p
}

// hammerBody appends one access+flush pair per line, with optional NOPs.
func hammerBody(p *Program, kind OpKind, nops int32) {
	p.Ops = append(p.Ops, Op{Kind: OpIterStart})
	for i := range p.Lines {
		p.Ops = append(p.Ops, Op{Kind: kind, Line: int32(i), Hint: HintT2})
		p.Ops = append(p.Ops, Op{Kind: OpFlush, Line: int32(i)})
		if nops > 0 {
			p.Ops = append(p.Ops, Op{Kind: OpNop, N: nops})
		}
	}
}

func TestInOrderLoadsAllMiss(t *testing.T) {
	e, p := testEngine(t, arch.CometLake(), 12)
	hammerBody(p, OpLoad, 0)
	res := e.Run(p, 500, Config{Style: StyleCPP})
	if res.MissRate() < 0.99 {
		t.Errorf("in-order widely spaced loads miss rate = %.3f, want ~1", res.MissRate())
	}
	if res.ACTs == 0 {
		t.Error("no activations issued")
	}
}

func TestPrefetchFasterThanLoad(t *testing.T) {
	e, p := testEngine(t, arch.CometLake(), 12)
	hammerBody(p, OpLoad, 0)
	loadRes := e.Run(p, 2000, Config{Style: StyleCPP})

	e2, p2 := testEngine(t, arch.CometLake(), 12)
	hammerBody(p2, OpPrefetch, 200) // paced just above the bank cycle
	pfRes := e2.Run(p2, 2000, Config{Style: StyleCPP})

	loadRate := float64(loadRes.ACTs) / loadRes.TimeNS
	pfRate := float64(pfRes.ACTs) / pfRes.TimeNS
	if pfRate < loadRate*1.5 {
		t.Errorf("prefetch activation rate %.3f should be >=1.5x load rate %.3f (§4.5)",
			pfRate*1e3, loadRate*1e3)
	}
}

// The Fig. 7 mechanism: on a deep-speculation core, unordered prefetches
// race their flushes and are dropped; NOP pseudo-barriers restore them.
func TestSpeculativeDropsAndNopRecovery(t *testing.T) {
	raptor := arch.RaptorLake()

	e, p := testEngine(t, raptor, 12)
	hammerBody(p, OpPrefetch, 0)
	unordered := e.Run(p, 500, Config{Style: StyleCPP, Obfuscate: true})

	e2, p2 := testEngine(t, raptor, 12)
	hammerBody(p2, OpPrefetch, 300)
	ordered := e2.Run(p2, 500, Config{Style: StyleCPP, Obfuscate: true})

	if unordered.MissRate() > 0.6 {
		t.Errorf("unordered prefetch miss rate %.2f, expected heavy drops", unordered.MissRate())
	}
	if ordered.MissRate() < 0.95 {
		t.Errorf("NOP-barriered prefetch miss rate %.2f, expected ~1", ordered.MissRate())
	}
}

// Drops must be much rarer on Comet Lake than Raptor Lake for identical
// programs — the reorder-window ladder.
func TestDisorderGrowsWithGeneration(t *testing.T) {
	rates := map[string]float64{}
	for _, a := range arch.All() {
		e, p := testEngine(t, a, 12)
		hammerBody(p, OpPrefetch, 0)
		res := e.Run(p, 500, Config{Style: StyleCPP})
		rates[a.Name] = res.MissRate()
	}
	if rates["Comet Lake"] <= rates["Raptor Lake"] {
		t.Errorf("miss rates: comet %.2f should exceed raptor %.2f",
			rates["Comet Lake"], rates["Raptor Lake"])
	}
}

// AsmJit's immediate addressing removes the dependency chain: more
// reordering, fewer misses, faster run (§4.2).
func TestAsmJitMoreDisorderedThanCPP(t *testing.T) {
	a := arch.CometLake()
	e, p := testEngine(t, a, 6)
	hammerBody(p, OpPrefetch, 0)
	cpp := e.Run(p, 1000, Config{Style: StyleCPP})

	e2, p2 := testEngine(t, a, 6)
	hammerBody(p2, OpPrefetch, 0)
	jit := e2.Run(p2, 1000, Config{Style: StyleAsmJit})

	if jit.MissRate() > cpp.MissRate() {
		t.Errorf("AsmJit miss %.3f should not exceed C++ miss %.3f", jit.MissRate(), cpp.MissRate())
	}
	if jit.TimeNS > cpp.TimeNS {
		t.Errorf("AsmJit time %.1f should not exceed C++ time %.1f", jit.TimeNS, cpp.TimeNS)
	}
}

// Obfuscation removes the branch predictor's share of the window.
func TestObfuscationReducesDrops(t *testing.T) {
	a := arch.AlderLake()
	e, p := testEngine(t, a, 12)
	hammerBody(p, OpPrefetch, 60)
	plain := e.Run(p, 500, Config{Style: StyleCPP})

	e2, p2 := testEngine(t, a, 12)
	hammerBody(p2, OpPrefetch, 60)
	obf := e2.Run(p2, 500, Config{Style: StyleCPP, Obfuscate: true})

	if obf.MissRate() < plain.MissRate() {
		t.Errorf("obfuscation should not reduce miss rate: %.3f vs %.3f",
			obf.MissRate(), plain.MissRate())
	}
}

// LFENCE orders loads everywhere, and prefetches only through the C++
// primitive's address-generation chain (§4.4 / Table 3).
func TestLFenceSemantics(t *testing.T) {
	a := arch.RaptorLake()
	body := func(p *Program, kind OpKind) {
		for i := range p.Lines {
			p.Ops = append(p.Ops, Op{Kind: kind, Line: int32(i), Hint: HintT2})
			p.Ops = append(p.Ops, Op{Kind: OpFlush, Line: int32(i)})
			p.Ops = append(p.Ops, Op{Kind: OpLFence})
		}
	}

	e, p := testEngine(t, a, 12)
	body(p, OpPrefetch)
	cppPF := e.Run(p, 500, Config{Style: StyleCPP})
	if cppPF.MissRate() < 0.9 {
		t.Errorf("LFENCE+C++ prefetch miss %.2f, want ~1 (indirect ordering)", cppPF.MissRate())
	}

	e2, p2 := testEngine(t, a, 12)
	body(p2, OpPrefetch)
	jitPF := e2.Run(p2, 500, Config{Style: StyleAsmJit})
	if jitPF.MissRate() > 0.8 {
		t.Errorf("LFENCE+AsmJit prefetch miss %.2f: immediate addressing must defeat the fence", jitPF.MissRate())
	}

	e3, p3 := testEngine(t, a, 12)
	body(p3, OpLoad)
	ld := e3.Run(p3, 500, Config{Style: StyleAsmJit})
	if ld.MissRate() < 0.55 {
		t.Errorf("LFENCE load miss %.2f: loads must be ordered regardless of style", ld.MissRate())
	}
}

// MFENCE does not order prefetches (Intel SDM; Table 3's zero flips);
// CPUID does.
func TestMFenceVsCPUIDForPrefetch(t *testing.T) {
	a := arch.RaptorLake()
	body := func(p *Program, barrier OpKind) {
		for i := range p.Lines {
			p.Ops = append(p.Ops, Op{Kind: OpPrefetch, Line: int32(i), Hint: HintT2})
			p.Ops = append(p.Ops, Op{Kind: OpFlush, Line: int32(i)})
			p.Ops = append(p.Ops, Op{Kind: barrier})
		}
	}
	e, p := testEngine(t, a, 12)
	body(p, OpMFence)
	mf := e.Run(p, 400, Config{Style: StyleAsmJit})

	e2, p2 := testEngine(t, a, 12)
	body(p2, OpCPUID)
	id := e2.Run(p2, 400, Config{Style: StyleAsmJit})

	if id.MissRate() < 0.95 {
		t.Errorf("CPUID-serialized prefetch miss %.2f, want ~1", id.MissRate())
	}
	if mf.MissRate() > id.MissRate()-0.2 {
		t.Errorf("MFENCE (%.2f) should order prefetches much less than CPUID (%.2f)",
			mf.MissRate(), id.MissRate())
	}
	if id.TimeNS < mf.TimeNS {
		t.Error("CPUID must be slower than MFENCE")
	}
}

// Loads replay out of order on Raptor Lake no matter the barrier — the
// reason counter-speculation cannot revive load hammering.
func TestLoadReplayFloor(t *testing.T) {
	a := arch.RaptorLake()
	e, p := testEngine(t, a, 12)
	hammerBody(p, OpLoad, 500)
	res := e.Run(p, 400, Config{Style: StyleCPP, Obfuscate: true})
	want := 1 - a.LoadReplayShare
	if math.Abs(res.MissRate()-want) > 0.06 {
		t.Errorf("heavily barriered Raptor loads miss %.3f, want ~%.2f (replay floor)",
			res.MissRate(), want)
	}
}

// Back-to-back accesses to the same line merge in the fill buffers and
// produce one activation.
func TestFillBufferMerging(t *testing.T) {
	e, p := testEngine(t, arch.CometLake(), 1)
	for i := 0; i < 8; i++ {
		p.Ops = append(p.Ops, Op{Kind: OpPrefetch, Line: 0, Hint: HintT2})
	}
	res := e.Run(p, 1, Config{})
	if res.Misses != 1 {
		t.Errorf("8 back-to-back prefetches produced %d misses, want 1 (LFB merge)", res.Misses)
	}
}

// NOP cost: pure time, proportional to the count.
func TestNopTiming(t *testing.T) {
	a := arch.CometLake()
	e, _ := testEngine(t, a, 1)
	p := &Program{Lines: []uint64{0}, Ops: []Op{{Kind: OpNop, N: 1000}}}
	res := e.Run(p, 10, Config{})
	want := 10 * 1000 * a.NopCostNS
	if math.Abs(res.TimeNS-want) > 1 {
		t.Errorf("NOP time %.1f, want %.1f", res.TimeNS, want)
	}
}

func TestEmptyProgram(t *testing.T) {
	e, _ := testEngine(t, arch.CometLake(), 1)
	res := e.Run(&Program{}, 100, Config{})
	if res.Accesses != 0 || res.TimeNS != 0 {
		t.Errorf("empty program did work: %+v", res)
	}
}

func TestEngineTimeMonotonic(t *testing.T) {
	e, p := testEngine(t, arch.CometLake(), 4)
	hammerBody(p, OpPrefetch, 10)
	t0 := e.Now()
	e.Run(p, 100, Config{})
	t1 := e.Now()
	e.Run(p, 100, Config{})
	t2 := e.Now()
	if !(t0 < t1 && t1 < t2) {
		t.Errorf("engine time not monotonic: %v %v %v", t0, t1, t2)
	}
}

func TestResultMissRate(t *testing.T) {
	r := Result{Accesses: 10, Misses: 4}
	if r.MissRate() != 0.4 {
		t.Errorf("MissRate = %v", r.MissRate())
	}
	if (Result{}).MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
}

func TestProgramAccesses(t *testing.T) {
	p := &Program{Ops: []Op{
		{Kind: OpLoad}, {Kind: OpPrefetch}, {Kind: OpFlush}, {Kind: OpNop, N: 5},
	}}
	if p.Accesses() != 2 {
		t.Errorf("Accesses = %d", p.Accesses())
	}
}

func TestHintAndStyleStrings(t *testing.T) {
	if HintT0.String() != "PREFETCHT0" || HintNTA.String() != "PREFETCHNTA" {
		t.Error("hint strings")
	}
	if StyleCPP.String() != "C++" || StyleAsmJit.String() != "AsmJit" {
		t.Error("style strings")
	}
	if hintCost(HintT0) <= hintCost(HintNTA) {
		t.Error("T0 should cost more than NTA (cache pollution)")
	}
}

func TestFifoTimes(t *testing.T) {
	var f fifoTimes
	f.push(1)
	f.push(2)
	f.push(3)
	if f.len() != 3 || f.oldest() != 1 {
		t.Fatalf("fifo state: len %d oldest %v", f.len(), f.oldest())
	}
	f.drainUntil(2)
	if f.len() != 1 || f.oldest() != 3 {
		t.Errorf("drainUntil: len %d oldest %v", f.len(), f.oldest())
	}
	now := 0.0
	f.drainAll(&now)
	if f.len() != 0 || now != 3 {
		t.Errorf("drainAll: len %d now %v", f.len(), now)
	}
	if !math.IsInf(f.oldest(), -1) {
		t.Error("oldest on empty fifo")
	}

	// waitForSlot advances time to free a slot.
	f.reset()
	f.push(100)
	f.push(200)
	now = 0
	f.waitForSlot(2, &now)
	if now != 100 || f.len() != 1 {
		t.Errorf("waitForSlot: now %v len %d", now, f.len())
	}
}

func TestFifoCompaction(t *testing.T) {
	var f fifoTimes
	for i := 0; i < 500; i++ {
		f.push(float64(i))
		if i%2 == 0 {
			f.drainUntil(float64(i))
		}
	}
	if f.len() == 0 {
		t.Fatal("fifo drained completely")
	}
	if len(f.buf) > 400 {
		t.Errorf("fifo buffer not compacted: %d", len(f.buf))
	}
}
