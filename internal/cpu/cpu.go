// Package cpu is a behavioral model of the speculative execution core
// that executes hammering programs: out-of-order early issue of memory
// operations bounded by a µop reorder window, branch-prediction
// speculation across loop iterations, line-fill-buffer and load-queue
// occupancy, the interaction of prefetches with in-flight cache flushes
// (Fig. 7 of the paper), NOP-based ROB pressure, and the x86
// fence/serialization instructions.
//
// The model is not cycle-accurate; it reproduces the causal mechanisms
// the paper identifies:
//
//   - A memory access may effectively issue up to W µops earlier than
//     its program position (W = the architecture's reorder window, far
//     larger for prefetches than for loads and growing sharply on
//     Alder/Raptor Lake). If that early issue reorders the access
//     before the older flush of the same line, the access sees the
//     line still cached and performs no DRAM activation — the prefetch
//     is dropped (Fig. 7).
//   - NOP sleds occupy ROB slots: N NOPs between a flush and the next
//     access to the same line push their µop distance beyond W, which
//     restores ordering at a tiny time cost — the pseudo-barrier of
//     §4.4. The optimal N balances restored order against lost
//     activation rate (Fig. 10's inverted U).
//   - Loads hold a load-queue entry until data returns, capping
//     memory-level parallelism; prefetches retire at dispatch and only
//     occupy a line-fill buffer, so they saturate DRAM bank timing
//     (§4.5 — the root of the prefetch throughput advantage).
//   - An access issued while the same line's fill is still in flight
//     merges with the outstanding fill buffer entry and produces no
//     extra activation — which is why effective patterns need their
//     aggressor revisits spread out.
//   - Control-flow obfuscation removes the branch-predictor's share of
//     the reorder window at a small per-iteration cost.
//   - LFENCE orders loads; it orders prefetches only indirectly, via
//     the address-generation dependency of the indexed ("C++ style")
//     primitive — with immediate addressing (the "AsmJit style") it
//     does not (§4.4, Table 3). MFENCE and CPUID serialize at much
//     higher cost; only CPUID orders prefetches architecturally.
package cpu

import (
	"fmt"
	"math"

	"rhohammer/internal/arch"
	"rhohammer/internal/dram"
	"rhohammer/internal/memctrl"
	"rhohammer/internal/stats"
)

// OpKind enumerates the micro-operations a hammering program consists of.
type OpKind uint8

const (
	// OpLoad is an ordinary memory read (x86 MOV).
	OpLoad OpKind = iota
	// OpPrefetch is a software prefetch (PREFETCHT0/T1/T2/NTA).
	OpPrefetch
	// OpFlush is CLFLUSHOPT of one cache line.
	OpFlush
	// OpNop is a run of `N` NOP instructions.
	OpNop
	// OpLFence, OpMFence, OpCPUID are the barrier instructions of
	// Table 3.
	OpLFence
	OpMFence
	OpCPUID
	// OpIterStart marks a loop iteration boundary carrying the
	// control-flow obfuscation work (rdrand/rdtscp mixing) when the
	// run has obfuscation enabled.
	OpIterStart
)

// Hint selects the prefetch locality hint. The paper finds the
// differences marginal (Fig. 6) with T2/NTA slightly preferable; the
// model reflects that with small per-hint issue-cost deltas.
type Hint uint8

const (
	HintT0 Hint = iota
	HintT1
	HintT2
	HintNTA
)

// String implements fmt.Stringer.
func (h Hint) String() string {
	switch h {
	case HintT0:
		return "PREFETCHT0"
	case HintT1:
		return "PREFETCHT1"
	case HintT2:
		return "PREFETCHT2"
	case HintNTA:
		return "PREFETCHNTA"
	default:
		return fmt.Sprintf("Hint(%d)", uint8(h))
	}
}

// hintCost is the extra issue+pollution cost of a hint relative to
// PREFETCHNTA: fetching into more cache levels costs slightly more.
func hintCost(h Hint) float64 {
	switch h {
	case HintT0:
		return 0.22
	case HintT1:
		return 0.12
	case HintT2:
		return 0.02
	default:
		return 0
	}
}

// Op is one micro-operation of a program.
type Op struct {
	Kind OpKind
	Line int32 // index into the program's line table
	N    int32 // NOP repeat count (OpNop only)
	Hint Hint  // prefetch hint (OpPrefetch only)

	// robUops memoizes the NOP ROB-share conversion (a pure function of
	// N, always >= 1); 0 means not yet computed. Filled on first
	// execution so program builders don't need to know about it.
	robUops int32
}

// Program is the per-iteration body of a hammering loop plus the line
// table mapping line handles to physical addresses.
type Program struct {
	Ops   []Op
	Lines []uint64 // line handle -> physical address (64B aligned)
}

// Accesses returns the number of memory accesses (loads or prefetches)
// per iteration.
func (p *Program) Accesses() int {
	n := 0
	for _, op := range p.Ops {
		if op.Kind == OpLoad || op.Kind == OpPrefetch {
			n++
		}
	}
	return n
}

// Style distinguishes the two primitive implementations compared in
// §4.2: the C++ loop with indexed addressing (whose idx dependency chain
// throttles speculation) and the AsmJit-unrolled variant with immediate
// addresses (which the scheduler reorders aggressively).
type Style uint8

const (
	// StyleCPP is the indexed-addressing loop of Listing 1.
	StyleCPP Style = iota
	// StyleAsmJit is the loop-unrolled, immediate-address variant.
	StyleAsmJit
)

// String implements fmt.Stringer.
func (s Style) String() string {
	if s == StyleCPP {
		return "C++"
	}
	return "AsmJit"
}

// cppDepFactor scales the reorder window under the C++ primitive's
// address dependency chain.
const cppDepFactor = 0.42

// asmJitIssueFactor scales issue costs for the unrolled JIT code, which
// has no loop or indexing overhead.
const asmJitIssueFactor = 0.72

// obfUops is the ROB footprint of one obfuscation preamble.
const obfUops = 10

// nopRobShare is the fraction of NOPs that actually occupy scheduler
// resources: modern renamers eliminate most NOPs, so hundreds of NOPs
// are needed to exert real ROB pressure — which is why the optimal
// pseudo-barrier count in Fig. 10 sits in the hundreds.
const nopRobShare = 0.1

// Config selects the execution conditions of one run.
type Config struct {
	Style     Style
	Obfuscate bool // control-flow obfuscation enabled
}

// Result summarizes one program run.
type Result struct {
	TimeNS    float64 // CPU time consumed
	Accesses  uint64  // loads + prefetches executed
	Hits      uint64  // accesses served without DRAM activity
	Misses    uint64  // accesses that reached DRAM
	ACTs      uint64  // row activations issued (from the controller)
	StartTime float64 // controller time at run start
	EndTime   float64 // controller time at run end
}

// MissRate returns Misses/Accesses, the quantity plotted in Fig. 8.
func (r Result) MissRate() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return float64(r.Misses) / float64(r.Accesses)
}

// lineState tracks the cache residency of one line.
type lineState struct {
	filled   bool
	decoded  bool    // payload executor: this run already touched the decode slot
	fillDone float64 // when the last fill completed (may be in flight)
	flushEff float64 // when the last flush takes effect; <0 = none
	flushUop int64   // µop index of the last flush; <0 = none
}

// Engine executes programs against one memory controller.
type Engine struct {
	Arch *arch.Arch
	Ctrl *memctrl.Controller
	Rand *stats.Rand

	now     float64
	uop     int64 // µop index, monotonically increasing
	lines   []lineState
	fills   fifoTimes // outstanding line fills (LFB entries)
	loads   fifoTimes // outstanding loads (effective MLP slots)
	fenceLD bool      // next load issues in order (post-fence)
	fencePF bool      // next prefetch issues in order

	accesses uint64
	hits     uint64
	misses   uint64

	// actBuf and payloadBatches belong to the compiled-payload executor
	// (payload.go): the deferred activation buffer, reused across runs,
	// and the cumulative count of batches handed to the device.
	actBuf         []dram.ActEntry
	payloadBatches uint64
}

// NewEngine builds an engine bound to a controller. The engine keeps its
// own clock, which advances monotonically across Run calls so the
// DRAM-side refresh machinery sees continuous time.
func NewEngine(a *arch.Arch, ctrl *memctrl.Controller, r *stats.Rand) *Engine {
	return &Engine{Arch: a, Ctrl: ctrl, Rand: r}
}

// Now returns the engine's current time in nanoseconds.
func (e *Engine) Now() float64 { return e.now }

// SyncToRefresh advances the engine's clock to the next REF boundary —
// the refresh synchronization step at the top of the paper's hammering
// primitive (Listing 1), which anchors the pattern's phase against the
// TRR sampler's observation intervals.
func (e *Engine) SyncToRefresh() {
	if t := e.Ctrl.NextRefresh(); t > e.now {
		e.now = t
	}
}

// Run executes the program body `iterations` times under cfg and returns
// the aggregate result. Line residency state is reset at the start of
// the run (the attacker flushes all aggressors before hammering).
func (e *Engine) Run(p *Program, iterations int, cfg Config) Result {
	if len(p.Lines) == 0 || len(p.Ops) == 0 {
		return Result{StartTime: e.now, EndTime: e.now}
	}
	// Reuse the line-state scratch across runs: HammerPatternFor calls
	// Run once per chunk, and the steady state must not allocate.
	if cap(e.lines) >= len(p.Lines) {
		e.lines = e.lines[:len(p.Lines)]
	} else {
		e.lines = make([]lineState, len(p.Lines))
	}
	for i := range e.lines {
		e.lines[i] = lineState{flushEff: -1, flushUop: -1}
	}
	e.fills.reset()
	e.loads.reset()
	e.fenceLD, e.fencePF = false, false
	e.accesses, e.hits, e.misses = 0, 0, 0

	start := e.now
	actsBefore := e.Ctrl.Stats().ACTs()

	issueScale := 1.0
	if cfg.Style == StyleAsmJit {
		issueScale = asmJitIssueFactor
	}
	wPF := e.window(e.Arch.WindowPF, cfg)
	wLD := e.window(e.Arch.WindowLD, cfg)

	for it := 0; it < iterations; it++ {
		for i := range p.Ops {
			op := &p.Ops[i]
			switch op.Kind {
			case OpLoad:
				e.access(p.Lines[op.Line], op, wLD, issueScale, true)
			case OpPrefetch:
				e.access(p.Lines[op.Line], op, wPF, issueScale, false)
			case OpFlush:
				e.uop++
				e.now += e.Arch.IssueCostFlush * issueScale
				ls := &e.lines[op.Line]
				if ls.filled {
					// A flush racing an in-flight fill takes effect
					// just after the fill lands; otherwise after the
					// eviction latency.
					eff := e.now + e.Arch.FlushLatencyNS
					if ls.fillDone+1 > eff {
						eff = ls.fillDone + 1
					}
					ls.flushEff = eff
					ls.flushUop = e.uop
				}
			case OpNop:
				if op.robUops == 0 {
					r := int32(float64(op.N)*nopRobShare + 0.5)
					if r < 1 {
						r = 1
					}
					op.robUops = r
				}
				e.uop += int64(op.robUops)
				e.now += float64(op.N) * e.Arch.NopCostNS
			case OpLFence:
				e.uop++
				e.now += e.Arch.LFenceNS
				e.loads.drainAll(&e.now)
				e.fenceLD = true
				if cfg.Style == StyleCPP {
					// The fence stalls the address-generation loads
					// the indexed primitive feeds prefetches with,
					// ordering them indirectly (§4.4).
					e.fencePF = true
				}
			case OpMFence:
				e.uop++
				e.now += e.Arch.MFenceNS
				e.loads.drainAll(&e.now)
				e.fills.drainAll(&e.now)
				e.fenceLD = true
				// Prefetches are architecturally NOT ordered by
				// MFENCE (Intel SDM; Table 3's zero-flip column).
			case OpCPUID:
				e.uop++
				e.now += e.Arch.CPUIDNS
				e.loads.drainAll(&e.now)
				e.fills.drainAll(&e.now)
				e.fenceLD, e.fencePF = true, true
			case OpIterStart:
				if cfg.Obfuscate {
					e.uop += obfUops
					e.now += e.Arch.ObfuscationNS
				}
			}
		}
	}

	acts := e.Ctrl.Stats().ACTs() - actsBefore
	return Result{
		TimeNS:    e.now - start,
		Accesses:  e.accesses,
		Hits:      e.hits,
		Misses:    e.misses,
		ACTs:      acts,
		StartTime: start,
		EndTime:   e.now,
	}
}

// window computes the effective reorder window in µops for a run.
func (e *Engine) window(base float64, cfg Config) float64 {
	w := base
	if cfg.Style == StyleCPP {
		w *= cppDepFactor
	}
	if cfg.Obfuscate {
		w *= 1 - e.Arch.BranchSpecShare
	}
	return w
}

// access executes one load or prefetch of the line at physical address
// pa. window is the run's effective reorder window for this access kind.
func (e *Engine) access(pa uint64, op *Op, window, issueScale float64, isLoad bool) {
	e.accesses++
	e.uop++

	ls := &e.lines[op.Line]
	if e.servedFromCache(ls, window, isLoad) {
		e.hits++
		if isLoad {
			e.now += (e.Arch.IssueCostLD + 1.0) * issueScale
		} else {
			e.now += (e.Arch.IssueCostPF + hintCost(op.Hint)) * issueScale
		}
		return
	}

	// Miss: the access goes to DRAM.
	e.misses++
	var complete float64
	if isLoad {
		// A load occupies an MLP slot until data returns; with the
		// interleaved flushes of the hammer pair the ROB keeps the
		// effective parallelism at LoadMLP (§4.5).
		e.loads.waitForSlot(e.Arch.LoadMLP, &e.now)
		complete, _ = e.Ctrl.Access(pa, e.now)
		e.loads.push(complete + e.Arch.LoadSerializeNS)
		e.now += e.Arch.IssueCostLD * issueScale
	} else {
		e.fills.waitForSlot(e.Arch.LFBCount, &e.now)
		complete, _ = e.Ctrl.Access(pa, e.now)
		e.fills.push(complete)
		e.now += (e.Arch.IssueCostPF + hintCost(op.Hint)) * issueScale
	}
	ls.filled = true
	ls.fillDone = complete
	ls.flushEff = -1
	ls.flushUop = -1
}

// servedFromCache decides whether an access is served without DRAM
// activity. It consumes a pending fence flag and may draw a speculation
// skew, so it must be called exactly once per access.
func (e *Engine) servedFromCache(ls *lineState, window float64, isLoad bool) bool {
	fenced := false
	if isLoad {
		fenced = e.fenceLD
		e.fenceLD = false
	} else {
		fenced = e.fencePF
		e.fencePF = false
	}

	if !ls.filled {
		return false // never fetched: compulsory miss
	}
	if e.now < ls.fillDone {
		return true // fill still in flight: merges with the LFB entry
	}
	if ls.flushUop < 0 {
		return true // resident, never flushed since the fill
	}
	if e.now < ls.flushEff {
		return true // flush not yet taken effect: still resident
	}
	// The line was evicted in program order. Speculative early issue
	// may still reorder this access before the flush (Fig. 7): it then
	// sees the stale resident line and is dropped.
	if !fenced && window > 0 {
		skew := e.Rand.Float64() * window
		if skew > float64(e.uop-ls.flushUop) {
			return true
		}
	}
	// Load-queue replay speculation reissues a fraction of loads out
	// of order no matter how saturated the ROB is — fences and NOPs
	// cannot drain it (§4.4: counter-speculation does not revive
	// load-based hammering on the newest cores).
	if isLoad && e.Arch.LoadReplayShare > 0 && e.Rand.Float64() < e.Arch.LoadReplayShare {
		return true
	}
	return false
}

// fifoTimes is a small FIFO of completion timestamps used for the LFB
// and load-queue occupancy models. Occupancy is architecturally bounded:
// every push is preceded by waitForSlot(capSlots) with capSlots ≤
// LFBCount, so a fixed power-of-two ring holds the queue with no
// allocation, no compaction and mask-only index arithmetic. The FIFO
// values and pop order are unchanged from the slice version, so the
// timing results are bit-identical.
const (
	fifoRingSize = 64 // > max LFBCount across all arch models
	fifoRingMask = fifoRingSize - 1
)

type fifoTimes struct {
	buf  [fifoRingSize]float64
	head uint32
	tail uint32
}

func (f *fifoTimes) reset() { f.head, f.tail = 0, 0 }

func (f *fifoTimes) len() int { return int(f.tail - f.head) }

func (f *fifoTimes) push(t float64) {
	if f.tail-f.head == fifoRingSize {
		panic("cpu: fifoTimes overflow (occupancy bound violated)")
	}
	f.buf[f.tail&fifoRingMask] = t
	f.tail++
}

func (f *fifoTimes) oldest() float64 {
	if f.head == f.tail {
		return math.Inf(-1)
	}
	return f.buf[f.head&fifoRingMask]
}

// drainUntil pops every entry completing at or before t.
func (f *fifoTimes) drainUntil(t float64) {
	for f.head != f.tail && f.buf[f.head&fifoRingMask] <= t {
		f.head++
	}
}

// drainAll advances *now past the last outstanding completion and
// empties the queue (a full fence).
func (f *fifoTimes) drainAll(now *float64) {
	for f.head != f.tail {
		if v := f.buf[f.head&fifoRingMask]; v > *now {
			*now = v
		}
		f.head++
	}
}

// waitForSlot blocks until fewer than cap entries remain outstanding,
// advancing *now as needed.
func (f *fifoTimes) waitForSlot(capSlots int, now *float64) {
	f.drainUntil(*now)
	for int(f.tail-f.head) >= capSlots {
		if v := f.buf[f.head&fifoRingMask]; v > *now {
			*now = v
		}
		f.head++
	}
}
