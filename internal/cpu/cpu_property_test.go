package cpu

import (
	"testing"
	"testing/quick"

	"rhohammer/internal/arch"
)

// Property: accounting identities hold for arbitrary programs — every
// access is either a hit or a miss, activations never exceed misses,
// and time moves forward.
func TestRunAccountingProperty(t *testing.T) {
	f := func(lineSel []uint8, nopRaw uint8, archSel uint8) bool {
		archs := arch.All()
		a := archs[int(archSel)%len(archs)]
		e, p := propEngine(t, a, 8)
		if len(lineSel) == 0 {
			lineSel = []uint8{0}
		}
		for _, s := range lineSel {
			line := int32(s) % 8
			kind := OpPrefetch
			if s%3 == 0 {
				kind = OpLoad
			}
			p.Ops = append(p.Ops, Op{Kind: kind, Line: line, Hint: Hint(s % 4)})
			p.Ops = append(p.Ops, Op{Kind: OpFlush, Line: line})
			if nopRaw > 0 {
				p.Ops = append(p.Ops, Op{Kind: OpNop, N: int32(nopRaw)})
			}
		}
		res := e.Run(p, 20, Config{Style: Style(archSel % 2)})
		if res.Hits+res.Misses != res.Accesses {
			return false
		}
		if res.ACTs > res.Misses {
			return false
		}
		if res.TimeNS < 0 || res.EndTime < res.StartTime {
			return false
		}
		return res.Accesses == uint64(20*len(lineSel))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: adding NOPs never decreases the miss rate of a prefetch
// hammer loop (ordering monotonicity of the pseudo-barrier).
func TestNopMonotonicityProperty(t *testing.T) {
	a := arch.RaptorLake()
	missAt := func(nops int32) float64 {
		e, p := propEngine(t, a, 10)
		for i := 0; i < 10; i++ {
			p.Ops = append(p.Ops, Op{Kind: OpPrefetch, Line: int32(i), Hint: HintT2})
			p.Ops = append(p.Ops, Op{Kind: OpFlush, Line: int32(i)})
			if nops > 0 {
				p.Ops = append(p.Ops, Op{Kind: OpNop, N: nops})
			}
		}
		return e.Run(p, 400, Config{Style: StyleCPP, Obfuscate: true}).MissRate()
	}
	prev := missAt(0)
	for _, n := range []int32{50, 150, 300, 600} {
		cur := missAt(n)
		if cur+0.05 < prev { // tolerate stochastic wiggle
			t.Errorf("miss rate decreased from %.3f to %.3f at %d NOPs", prev, cur, n)
		}
		prev = cur
	}
}

// propEngine builds an engine without failing the property closure.
func propEngine(t *testing.T, a *arch.Arch, lines int) (*Engine, *Program) {
	t.Helper()
	e, p := testEngine(t, a, lines)
	return e, p
}
