package obs

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
)

// Manifest records everything needed to reproduce one command
// invocation byte-for-byte: the build identity, the full configuration
// (seed, scale, workers, raw argv), per-campaign and per-cell timings
// with the derived cell seeds, and a final counter snapshot. Any
// rendered table or figure can be re-run from its manifest alone:
// `experiments -seed <seed> -scale <scale> <name>` reproduces the
// artifact, and each cell's recorded seed pins its RNG stream.
type Manifest struct {
	Tool      string   `json:"tool"`
	Args      []string `json:"args,omitempty"`
	GitRev    string   `json:"git_rev,omitempty"`
	GoVersion string   `json:"go_version"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Date      string   `json:"date,omitempty"`

	Seed    int64   `json:"seed"`
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`

	Runs     []RunRecord      `json:"runs"`
	Nodes    []NodeRecord     `json:"nodes,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// NodeRecord is one worker node's contribution to a distributed run
// (serve's coordinator mode): how many cells it completed across how
// many leases. Placement is pure scheduling noise — the canonical
// envelope is identical however cells land on nodes — so node records
// live only here, in the as-executed manifest.
type NodeRecord struct {
	Name   string `json:"name"`
	Leases int    `json:"leases,omitempty"`
	Cells  int    `json:"cells,omitempty"`
}

// RunRecord is one campaign execution within the run.
type RunRecord struct {
	Name    string       `json:"name"`
	WallNS  int64        `json:"wall_ns"`
	Workers int          `json:"workers"`
	Err     string       `json:"error,omitempty"`
	Cells   []CellRecord `json:"cells,omitempty"`
}

// CellRecord is one grid cell of a campaign: its stable key, the seed
// derived from it (sufficient to replay the cell's RNG streams), its
// wall time and how it ended.
type CellRecord struct {
	Key      string `json:"key"`
	Seed     int64  `json:"seed"`
	WallNS   int64  `json:"wall_ns"`
	Attempts int    `json:"attempts,omitempty"`
	Err      string `json:"error,omitempty"`
	// Node names the worker that ran the cell in a distributed run
	// (empty for local execution).
	Node string `json:"node,omitempty"`
}

// NewManifest fills the build-identity fields for the named tool.
func NewManifest(tool string, args []string) *Manifest {
	return &Manifest{
		Tool:      tool,
		Args:      args,
		GitRev:    GitRev(),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// GitRev returns the VCS revision stamped into the binary by the Go
// toolchain, with a "+dirty" suffix for modified trees, or "" when the
// build carries no VCS info (e.g. `go test` binaries).
func GitRev() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, modified string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	return rev + modified
}

// WriteFile writes the manifest as indented JSON.
func (m *Manifest) WriteFile(path string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
