package obs_test

import (
	"fmt"
	"os"

	"rhohammer/internal/obs"
)

// ExampleRegistry shows the counter/gauge surface: counters are
// registered once and bumped lock-free from hot paths; gauges poll
// live state at snapshot time; WritePrometheus renders both in the
// text exposition format, sorted by name.
func ExampleRegistry() {
	reg := obs.NewRegistry()
	acts := reg.Counter("demo_activations_total")
	flips := reg.Counter("demo_flips_total")
	reg.Gauge("demo_rows_live", func() int64 { return 3 })

	acts.Add(128)
	flips.Inc()

	reg.WritePrometheus(os.Stdout)
	// Output:
	// # TYPE demo_activations_total counter
	// demo_activations_total 128
	// # TYPE demo_flips_total counter
	// demo_flips_total 1
	// # TYPE demo_rows_live gauge
	// demo_rows_live 3
}

// ExampleNewManifest builds the run record every command (and every
// serverd job) emits: enough configuration to re-run the campaign
// byte-identically from the manifest alone.
func ExampleNewManifest() {
	m := obs.NewManifest("example", []string{"-seed", "7", "demo"})
	m.Seed, m.Scale, m.Workers = 7, 1, 4
	m.Runs = []obs.RunRecord{{
		Name: "demo",
		Cells: []obs.CellRecord{
			{Key: "a", Seed: 1111, Attempts: 1},
			{Key: "b", Seed: 2222, Attempts: 1},
		},
	}}

	fmt.Println(m.Tool, m.Seed)
	for _, c := range m.Runs[0].Cells {
		fmt.Println(c.Key, c.Seed)
	}
	// Output:
	// example 7
	// a 1111
	// b 2222
}
